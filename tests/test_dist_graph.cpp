// Tests of the DistGraph partition object, quality metrics and the
// validator itself (including that the validator actually catches broken
// partition sets — failure injection).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "core/dist_graph.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"

namespace cusp::core {
namespace {

std::vector<DistGraph> makeParts(const graph::CsrGraph& g,
                                 const std::string& policy, uint32_t hosts) {
  const auto file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = hosts;
  return partitionGraph(file, makePolicy(policy), config).partitions;
}

TEST(DistGraphTest, LocalGlobalMapping) {
  const auto g = graph::generateErdosRenyi(100, 600, 31);
  const auto parts = makeParts(g, "CVC", 4);
  for (const auto& part : parts) {
    for (uint64_t lid = 0; lid < part.numLocalNodes(); ++lid) {
      const auto back = part.localIdOf(part.globalId(lid));
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, lid);
    }
    EXPECT_FALSE(part.localIdOf(g.numNodes() + 5).has_value());
    EXPECT_EQ(part.numLocalNodes(), part.numMasters + part.numMirrors());
  }
}

TEST(DistGraphTest, EdgesWithGlobalIdsMatchesInput) {
  const auto g = graph::generateErdosRenyi(150, 900, 37);
  const auto parts = makeParts(g, "HVC", 3);
  auto expected = g.toEdges();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(gatherAllEdges(parts), expected);
}

TEST(QualityTest, SingleHostIsReplicationFreeAndBalanced) {
  const auto g = graph::generateErdosRenyi(100, 500, 41);
  const auto parts = makeParts(g, "EEC", 1);
  const auto q = computeQuality(parts);
  EXPECT_DOUBLE_EQ(q.avgReplicationFactor, 1.0);
  EXPECT_DOUBLE_EQ(q.nodeImbalance, 1.0);
  EXPECT_DOUBLE_EQ(q.edgeImbalance, 1.0);
  EXPECT_EQ(q.totalMasters, g.numNodes());
}

TEST(QualityTest, VertexCutReplicatesMoreThanItsEdgeCutSibling) {
  // HVC redirects hub edges to destination masters, creating mirrors; EEC
  // on the same graph replicates only destinations.
  const auto g = graph::generateWebCrawl(
      {.numNodes = 2000, .avgOutDegree = 10.0, .seed = 43});
  const auto eec = computeQuality(makeParts(g, "EEC", 4));
  EXPECT_GE(eec.avgReplicationFactor, 1.0);
  EXPECT_LE(eec.avgReplicationFactor, 4.0);
  const auto hvc = computeQuality(makeParts(g, "HVC", 4));
  EXPECT_GE(hvc.avgReplicationFactor, 1.0);
}

TEST(QualityTest, EmptyPartitionsListYieldsZeros) {
  const auto q = computeQuality(std::span<const DistGraph>{});
  EXPECT_EQ(q.totalProxies, 0u);
  EXPECT_DOUBLE_EQ(q.avgReplicationFactor, 0.0);
}

// ---------------------------------------------------------------------------
// Partition serialization (.cdg).
// ---------------------------------------------------------------------------

class DistGraphFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cusp_cdg_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(DistGraphFiles, SaveLoadRoundTripsEntirePartitionSet) {
  graph::CsrGraph g = graph::generateWebCrawl(
      {.numNodes = 400, .avgOutDegree = 6.0, .seed = 71});
  g = graph::withRandomWeights(g, 9, 5);
  const auto parts = makeParts(g, "CVC", 4);
  std::vector<DistGraph> reloaded;
  for (const auto& part : parts) {
    const std::string file = path("p" + std::to_string(part.hostId) + ".cdg");
    saveDistGraph(file, part);
    reloaded.push_back(loadDistGraph(file));
  }
  // The reloaded set must satisfy every structural invariant, including
  // the cross-host mirror pairing and the full edge multiset.
  EXPECT_NO_THROW(validatePartitions(g, reloaded));
  for (uint32_t h = 0; h < 4; ++h) {
    EXPECT_EQ(reloaded[h].graph, parts[h].graph);
    EXPECT_EQ(reloaded[h].localToGlobal, parts[h].localToGlobal);
    EXPECT_EQ(reloaded[h].mirrorsOnHost, parts[h].mirrorsOnHost);
    EXPECT_EQ(reloaded[h].isTransposed, parts[h].isTransposed);
  }
}

TEST_F(DistGraphFiles, TransposedPartitionRoundTrips) {
  const auto g = graph::generateErdosRenyi(100, 500, 73);
  const auto file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 2;
  config.buildTranspose = true;
  const auto parts =
      partitionGraph(file, makePolicy("EEC"), config).partitions;
  saveDistGraph(path("t.cdg"), parts[0]);
  const auto reloaded = loadDistGraph(path("t.cdg"));
  EXPECT_TRUE(reloaded.isTransposed);
  EXPECT_EQ(reloaded.graph, parts[0].graph);
}

TEST_F(DistGraphFiles, RejectsMissingCorruptAndTruncatedFiles) {
  EXPECT_THROW(loadDistGraph(path("missing.cdg")), std::runtime_error);
  {
    std::ofstream bad(path("bad.cdg"), std::ios::binary);
    bad << "garbage garbage garbage garbage garbage garbage";
  }
  EXPECT_THROW(loadDistGraph(path("bad.cdg")), std::runtime_error);
  const auto g = graph::makePath(10);
  const auto parts = makeParts(g, "EEC", 2);
  saveDistGraph(path("ok.cdg"), parts[0]);
  const auto full = std::filesystem::file_size(path("ok.cdg"));
  std::filesystem::resize_file(path("ok.cdg"), full - 7);
  EXPECT_THROW(loadDistGraph(path("ok.cdg")), std::runtime_error);
}

TEST_F(DistGraphFiles, ChecksumCatchesSilentPayloadCorruption) {
  const auto g = graph::generateErdosRenyi(100, 500, 73);
  const auto parts = makeParts(g, "HVC", 2);
  saveDistGraph(path("crc.cdg"), parts[0]);
  // Flip one payload byte; the CRC footer must reject the file even though
  // the flipped value may parse fine.
  std::fstream f(path("crc.cdg"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(32);
  const char byte = static_cast<char>(f.get());
  f.seekp(32);
  f.put(static_cast<char>(byte ^ 0x01));
  f.close();
  try {
    loadDistGraph(path("crc.cdg"));
    FAIL() << "expected checksum error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST_F(DistGraphFiles, LegacyFileWithoutFooterStillLoads) {
  const auto g = graph::generateErdosRenyi(100, 500, 73);
  const auto parts = makeParts(g, "HVC", 2);
  saveDistGraph(path("legacy.cdg"), parts[0]);
  const auto full = std::filesystem::file_size(path("legacy.cdg"));
  std::filesystem::resize_file(path("legacy.cdg"), full - 16);
  const auto reloaded = loadDistGraph(path("legacy.cdg"));
  EXPECT_EQ(reloaded.graph, parts[0].graph);
  EXPECT_EQ(reloaded.localToGlobal, parts[0].localToGlobal);
}

// ---------------------------------------------------------------------------
// Failure injection: the validator must catch corrupted partition sets.
// ---------------------------------------------------------------------------

class ValidatorInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = graph::generateErdosRenyi(80, 400, 47);
    parts_ = makeParts(graph_, "CVC", 4);
    ASSERT_NO_THROW(validatePartitions(graph_, parts_));
  }

  graph::CsrGraph graph_;
  std::vector<DistGraph> parts_;
};

TEST_F(ValidatorInjection, DetectsDuplicateMaster) {
  // Promote one of host 1's mirrors to "master" by lying about its owner.
  auto& part = parts_[1];
  ASSERT_GT(part.numMirrors(), 0u);
  ++part.numMasters;  // absorbs the first mirror into the master segment
  part.masterHostOfLocal[part.numMasters - 1] = part.hostId;
  EXPECT_THROW(validatePartitions(graph_, parts_), std::logic_error);
}

TEST_F(ValidatorInjection, DetectsMissingEdge) {
  auto& part = parts_[0];
  ASSERT_GT(part.numLocalEdges(), 0u);
  // Rebuild host 0's local graph with one edge dropped.
  auto edges = part.graph.toEdges();
  edges.pop_back();
  part.graph = graph::CsrGraph::fromEdges(part.graph.numNodes(), edges);
  EXPECT_THROW(validatePartitions(graph_, parts_), std::logic_error);
}

TEST_F(ValidatorInjection, DetectsWrongMasterHostOnMirror) {
  for (auto& part : parts_) {
    if (part.numMirrors() > 0) {
      auto& owner = part.masterHostOfLocal[part.numMasters];
      owner = (owner + 1) % part.numHosts;
      if (owner == part.hostId) {
        owner = (owner + 1) % part.numHosts;
      }
      break;
    }
  }
  EXPECT_THROW(validatePartitions(graph_, parts_), std::logic_error);
}

TEST_F(ValidatorInjection, DetectsBrokenSyncMetadata) {
  for (auto& part : parts_) {
    for (auto& list : part.mirrorsOnHost) {
      if (!list.empty()) {
        list.pop_back();
        EXPECT_THROW(validatePartitions(graph_, parts_), std::logic_error);
        return;
      }
    }
  }
  GTEST_SKIP() << "no mirrors to corrupt";
}

TEST_F(ValidatorInjection, DetectsHostIdMismatch) {
  std::swap(parts_[0].hostId, parts_[1].hostId);
  EXPECT_THROW(validatePartitions(graph_, parts_), std::logic_error);
}

TEST_F(ValidatorInjection, EdgeCheckCanBeSkipped) {
  auto& part = parts_[0];
  auto edges = part.graph.toEdges();
  if (edges.empty()) {
    GTEST_SKIP();
  }
  edges.pop_back();
  part.graph = graph::CsrGraph::fromEdges(part.graph.numNodes(), edges);
  EXPECT_NO_THROW(
      validatePartitions(graph_, parts_, /*checkEdgeMultiset=*/false));
}

}  // namespace
}  // namespace cusp::core
