// Tests of the XtraPulp-style offline baseline partitioner.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analytics/algorithms.h"
#include "analytics/reference.h"
#include "core/partitioner.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "support/random.h"
#include "xtrapulp/xtrapulp.h"

namespace cusp::xtrapulp {
namespace {

TEST(XtraPulpTest, ProducesValidMap) {
  const auto g = graph::generateErdosRenyi(500, 3000, 11);
  XtraPulpConfig config;
  config.numParts = 4;
  const auto result = partition(g, config);
  ASSERT_EQ(result.partOf.size(), g.numNodes());
  for (uint32_t p : result.partOf) {
    EXPECT_LT(p, config.numParts);
  }
}

TEST(XtraPulpTest, UsesAllPartitions) {
  const auto g = graph::generateErdosRenyi(400, 2000, 13);
  XtraPulpConfig config;
  config.numParts = 4;
  const auto result = partition(g, config);
  std::set<uint32_t> used(result.partOf.begin(), result.partOf.end());
  EXPECT_EQ(used.size(), 4u);
}

TEST(XtraPulpTest, RespectsVertexBalanceCap) {
  const auto g = graph::generateWebCrawl(
      {.numNodes = 2000, .avgOutDegree = 8.0, .seed = 15});
  XtraPulpConfig config;
  config.numParts = 4;
  config.vertexBalance = 1.10;
  const auto result = partition(g, config);
  const uint64_t cap = static_cast<uint64_t>(
      config.vertexBalance * (g.numNodes() / config.numParts) + 1);
  EXPECT_LE(result.maxPartVertices, cap);
}

TEST(XtraPulpTest, RefinementBeatsBlockedInitializationCut) {
  // Label propagation should cut fewer edges than the naive blocked start
  // on a locality-free random graph... on a community-structured graph.
  // Build two dense clusters interleaved across the id space so blocked
  // initialization is bad.
  std::vector<graph::Edge> edges;
  support::Rng rng(77);
  const uint64_t n = 400;
  for (uint64_t i = 0; i < 6000; ++i) {
    // Even ids form one community, odd ids the other.
    const uint64_t parity = i % 2;
    const uint64_t a = rng.nextBounded(n / 2) * 2 + parity;
    const uint64_t b = rng.nextBounded(n / 2) * 2 + parity;
    edges.push_back({a, b, 0});
  }
  const auto g = graph::CsrGraph::fromEdges(n, edges);
  // Blocked initialization cut:
  std::vector<uint32_t> blocked(n);
  for (uint64_t v = 0; v < n; ++v) {
    blocked[v] = static_cast<uint32_t>(v / (n / 2));
  }
  const uint64_t blockedCut = countCutEdges(g, blocked);
  XtraPulpConfig config;
  config.numParts = 2;
  const auto result = partition(g, config);
  EXPECT_LT(result.cutEdges, blockedCut);
}

TEST(XtraPulpTest, SinglePartitionHasNoCut) {
  const auto g = graph::generateErdosRenyi(100, 600, 19);
  XtraPulpConfig config;
  config.numParts = 1;
  const auto result = partition(g, config);
  EXPECT_EQ(result.cutEdges, 0u);
}

TEST(XtraPulpTest, EmptyGraph) {
  const auto g = graph::CsrGraph::fromEdges(0, std::vector<graph::Edge>{});
  XtraPulpConfig config;
  config.numParts = 3;
  const auto result = partition(g, config);
  EXPECT_TRUE(result.partOf.empty());
  EXPECT_EQ(result.cutEdges, 0u);
}

TEST(XtraPulpTest, InvalidConfigThrows) {
  const auto g = graph::makePath(4);
  XtraPulpConfig config;
  config.numParts = 0;
  EXPECT_THROW(partition(g, config), std::invalid_argument);
  config.numParts = 2;
  config.vertexBalance = 0.5;
  EXPECT_THROW(partition(g, config), std::invalid_argument);
}

TEST(CountCutEdgesTest, CountsDirectedCrossings) {
  const auto g = graph::makePath(4);  // 0->1->2->3
  EXPECT_EQ(countCutEdges(g, {0, 0, 1, 1}), 1u);
  EXPECT_EQ(countCutEdges(g, {0, 1, 0, 1}), 3u);
  EXPECT_EQ(countCutEdges(g, {0, 0, 0, 0}), 0u);
  EXPECT_THROW(countCutEdges(g, {0, 1}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Distributed implementation.
// ---------------------------------------------------------------------------

class DistXtraPulpHosts : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DistXtraPulpHosts, ProducesValidBalancedMap) {
  const uint32_t hosts = GetParam();
  const auto g = graph::generateWebCrawl(
      {.numNodes = 1500, .avgOutDegree = 8.0, .seed = 51});
  const auto file = graph::GraphFile::fromCsr(g);
  XtraPulpConfig config;
  config.numParts = hosts;
  const auto result = partitionDistributed(file, config);
  ASSERT_EQ(result.partOf.size(), g.numNodes());
  for (uint32_t p : result.partOf) {
    EXPECT_LT(p, hosts);
  }
  EXPECT_EQ(result.cutEdges, countCutEdges(g, result.partOf));
  EXPECT_GT(result.seconds, 0.0);
}

TEST_P(DistXtraPulpHosts, CutIsCompetitiveWithSingleImage) {
  const uint32_t hosts = GetParam();
  const auto g = graph::generateWebCrawl(
      {.numNodes = 1200, .avgOutDegree = 6.0, .seed = 53});
  XtraPulpConfig config;
  config.numParts = hosts;
  const auto central = partition(g, config);
  const auto file = graph::GraphFile::fromCsr(g);
  const auto dist = partitionDistributed(file, config);
  // Asynchronous label exchange loses a bit of quality vs the sequential
  // sweep but must stay in the same ballpark.
  EXPECT_LE(dist.cutEdges, central.cutEdges * 2 + 100);
}

INSTANTIATE_TEST_SUITE_P(Hosts, DistXtraPulpHosts,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(DistXtraPulpTest, EmptyGraphAndBadConfig) {
  const auto empty = graph::GraphFile::fromCsr(
      graph::CsrGraph::fromEdges(0, std::vector<graph::Edge>{}));
  XtraPulpConfig config;
  config.numParts = 3;
  EXPECT_TRUE(partitionDistributed(empty, config).partOf.empty());
  config.numParts = 0;
  EXPECT_THROW(partitionDistributed(empty, config), std::invalid_argument);
}

TEST(DistXtraPulpTest, SlowerThanStreamingCuspOnSameCluster) {
  // The headline comparison of the paper (Fig. 3): the offline multi-pass
  // partitioner takes longer than streaming CuSP on the same cluster.
  const auto g = graph::generateWebCrawl(
      {.numNodes = 8000, .avgOutDegree = 30.0, .seed = 55});
  const auto file = graph::GraphFile::fromCsr(g);
  const uint32_t hosts = 8;
  XtraPulpConfig xc;
  xc.numParts = hosts;
  const auto xp = partitionDistributed(file, xc);
  core::PartitionerConfig pc;
  pc.numHosts = hosts;
  const auto cusp = core::partitionGraph(file, core::makePolicy("CVC"), pc);
  EXPECT_GT(xp.seconds, cusp.totalSeconds);
}

// ---------------------------------------------------------------------------
// Adapter: XtraPulp map -> DistGraph partitions via CuSP machinery.
// ---------------------------------------------------------------------------

TEST(XtraPulpAdapter, PartitionsAreValidEdgeCuts) {
  const auto g = graph::generateWebCrawl(
      {.numNodes = 600, .avgOutDegree = 6.0, .seed = 23});
  XtraPulpConfig config;
  config.numParts = 4;
  const auto xp = partition(g, config);
  auto map = std::make_shared<std::vector<uint32_t>>(xp.partOf);

  const auto file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig pc;
  pc.numHosts = 4;
  const auto result =
      core::partitionGraph(file, makeXtraPulpPolicy(map), pc);
  EXPECT_NO_THROW(core::validatePartitions(g, result.partitions));
  // Edge-cut property: every vertex's out-edges live with its master.
  for (const auto& part : result.partitions) {
    for (uint64_t lid = 0; lid < part.numLocalNodes(); ++lid) {
      if (part.graph.outDegree(lid) > 0) {
        EXPECT_TRUE(part.isMaster(lid));
      }
    }
  }
  // Master placement matches the map.
  for (const auto& part : result.partitions) {
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      EXPECT_EQ(xp.partOf[part.globalId(lid)], part.hostId);
    }
  }
}

TEST(XtraPulpAdapter, AnalyticsMatchReferenceOnXtraPulpPartitions) {
  const auto g = graph::generateErdosRenyi(300, 1800, 29);
  XtraPulpConfig config;
  config.numParts = 3;
  const auto xp = partition(g, config);
  auto map = std::make_shared<std::vector<uint32_t>>(xp.partOf);
  const auto file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig pc;
  pc.numHosts = 3;
  const auto parts =
      core::partitionGraph(file, makeXtraPulpPolicy(map), pc).partitions;
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(parts, source),
            analytics::bfsReference(g, source));
}

}  // namespace
}  // namespace cusp::xtrapulp
