// Randomized property tests: for seeded-random graphs, configurations and
// policies, the partitioner must always produce structurally valid
// partitions and the analytics engine must always match the single-image
// reference. Each seed drives every random choice, so failures replay
// exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include <unistd.h>

#include "analytics/algorithms.h"
#include "analytics/reference.h"
#include "comm/fault.h"
#include "core/checkpoint.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "support/random.h"
#include "support/storage.h"

namespace cusp {
namespace {

struct FuzzCase {
  graph::CsrGraph graph;
  std::string policy;
  core::PartitionerConfig config;
};

FuzzCase makeCase(uint64_t seed) {
  support::Rng rng(seed * 2654435761u + 17);
  FuzzCase fuzz;
  // Random graph family and shape.
  const uint64_t family = rng.nextBounded(4);
  const uint64_t nodes = 20 + rng.nextBounded(600);
  const uint64_t edges = rng.nextBounded(8 * nodes + 1);
  switch (family) {
    case 0:
      fuzz.graph = graph::generateErdosRenyi(nodes, edges, seed);
      break;
    case 1: {
      graph::WebCrawlParams params;
      params.numNodes = nodes;
      params.avgOutDegree = 1.0 + static_cast<double>(rng.nextBounded(12));
      params.seed = seed;
      fuzz.graph = graph::generateWebCrawl(params);
      break;
    }
    case 2: {
      graph::RmatParams params;
      params.scale = 5 + static_cast<uint32_t>(rng.nextBounded(5));
      params.numEdges = edges;
      params.seed = seed;
      fuzz.graph = graph::generateRmat(params);
      break;
    }
    default:
      fuzz.graph = graph::makeGrid(2 + rng.nextBounded(20),
                                   2 + rng.nextBounded(20));
  }
  if (rng.nextBounded(2) == 1) {
    fuzz.graph = graph::withRandomWeights(fuzz.graph, 16, seed + 1);
  }
  const auto& catalog = core::extendedPolicyCatalog();
  fuzz.policy = catalog[rng.nextBounded(catalog.size())];
  fuzz.config.numHosts = 1 + static_cast<uint32_t>(rng.nextBounded(9));
  fuzz.config.stateSyncRounds = 1 + static_cast<uint32_t>(rng.nextBounded(40));
  fuzz.config.messageBufferThreshold = rng.nextBounded(64 << 10);
  fuzz.config.threadsPerHost = 1 + static_cast<unsigned>(rng.nextBounded(2));
  fuzz.config.disablePureMasterOptimization = rng.nextBounded(4) == 0;
  fuzz.config.compressEdgeBatches = rng.nextBounded(2) == 1;
  fuzz.config.windowSize = static_cast<uint32_t>(rng.nextBounded(48));
  return fuzz;
}

class PartitionerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionerFuzz, RandomCaseIsValidAndAnalyticsCorrect) {
  const FuzzCase fuzz = makeCase(GetParam());
  SCOPED_TRACE("policy=" + fuzz.policy +
               " hosts=" + std::to_string(fuzz.config.numHosts) +
               " nodes=" + std::to_string(fuzz.graph.numNodes()) +
               " edges=" + std::to_string(fuzz.graph.numEdges()));
  const graph::GraphFile file = graph::GraphFile::fromCsr(fuzz.graph);
  core::PartitionPolicy policy = core::makePolicy(fuzz.policy);
  if (policy.edge.usesNodeMasks && fuzz.config.windowSize > 1) {
    policy.edge = core::withWindowScore(policy.edge);  // exercise windowing
  }
  const auto result = core::partitionGraph(file, policy, fuzz.config);
  ASSERT_NO_THROW(core::validatePartitions(fuzz.graph, result.partitions));
  if (fuzz.graph.numNodes() == 0) {
    return;
  }
  const uint64_t source = analytics::maxOutDegreeNode(fuzz.graph);
  EXPECT_EQ(analytics::runBfs(result.partitions, source),
            analytics::bfsReference(fuzz.graph, source));
  EXPECT_EQ(analytics::runSssp(result.partitions, source),
            analytics::ssspReference(fuzz.graph, source));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionerFuzz,
                         ::testing::Range<uint64_t>(0, 48));

// Random traffic storm over the network: every host fires seeded-random
// tagged messages at random destinations, then all hosts drain exactly
// what was sent (announced via a final count exchange). Verifies payload
// integrity, per-channel FIFO and the absence of loss under load.
class NetworkFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetworkFuzz, RandomStormDeliversEverythingIntact) {
  const uint64_t seed = GetParam();
  support::Rng shapeRng(seed + 99);
  const uint32_t hosts = 2 + static_cast<uint32_t>(shapeRng.nextBounded(7));
  const uint32_t messagesPerHost =
      1 + static_cast<uint32_t>(shapeRng.nextBounded(200));
  comm::Network net(hosts);
  std::atomic<uint64_t> receivedChecksum{0};
  std::atomic<uint64_t> sentChecksum{0};
  comm::runHosts(net, [&](comm::HostId me) {
    support::Rng rng(seed * 31 + me);
    std::vector<uint64_t> sentTo(hosts, 0);
    for (uint32_t i = 0; i < messagesPerHost; ++i) {
      const auto dst =
          static_cast<comm::HostId>(rng.nextBounded(hosts));
      const uint64_t value = rng.next();
      support::SendBuffer buf;
      support::serialize(buf, value);
      sentChecksum.fetch_add(value);
      net.send(me, dst, comm::kTagGeneric, std::move(buf));
      ++sentTo[dst];
    }
    // Announce counts, then drain exactly the announced total.
    for (comm::HostId h = 0; h < hosts; ++h) {
      if (h != me) {
        support::SendBuffer buf;
        support::serialize(buf, sentTo[h]);
        net.send(me, h, comm::kTagGeneric + 1, std::move(buf));
      }
    }
    uint64_t expected = sentTo[me];
    for (comm::HostId h = 0; h < hosts; ++h) {
      if (h != me) {
        auto msg = net.recvFrom(me, h, comm::kTagGeneric + 1);
        uint64_t count = 0;
        support::deserialize(msg.payload, count);
        expected += count;
      }
    }
    for (uint64_t i = 0; i < expected; ++i) {
      auto msg = net.recv(me, comm::kTagGeneric);
      uint64_t value = 0;
      support::deserialize(msg.payload, value);
      receivedChecksum.fetch_add(value);
    }
    // Nothing left over.
    EXPECT_FALSE(net.tryRecv(me, comm::kTagGeneric).has_value());
  });
  EXPECT_EQ(receivedChecksum.load(), sentChecksum.load());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz,
                         ::testing::Range<uint64_t>(0, 16));

// Fault-plan fuzzing: under seeded-random drop/duplicate/delay/corrupt/crash
// schedules — including PERMANENT crashes and repeated delay faults — every
// resilient run must either complete with valid partitions (possibly over a
// shrunk host set when degraded mode evicted a permanently-lost host) or
// fail with one of the structured fault errors — never hang (the recv
// timeout backstop turns hangs into NetworkStalled) and never return a
// wrong answer.
class FaultPlanFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultPlanFuzz, CompletesValidlyOrFailsStructured) {
  const uint64_t seed = GetParam();
  support::Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  const uint32_t hosts = 2 + static_cast<uint32_t>(rng.nextBounded(7));
  const uint64_t nodes = 40 + rng.nextBounded(300);
  graph::CsrGraph g =
      graph::generateErdosRenyi(nodes, rng.nextBounded(4 * nodes), seed);
  if (rng.nextBounded(2) == 1) {
    g = graph::withRandomWeights(g, 16, seed + 1);
  }
  const auto& catalog = core::extendedPolicyCatalog();
  const std::string policyName = catalog[rng.nextBounded(catalog.size())];

  core::PartitionerConfig config;
  config.numHosts = hosts;
  config.stateSyncRounds = 1 + static_cast<uint32_t>(rng.nextBounded(20));
  config.messageBufferThreshold = rng.nextBounded(8 << 10);
  config.threadsPerHost = 1 + static_cast<unsigned>(rng.nextBounded(2));

  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const core::PartitionPolicy policy = core::makePolicy(policyName);
  const auto baseline = core::partitionGraph(file, policy, config);

  char tmpl[] = "/tmp/cusp_fuzz_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  // Up to two crashes, roughly a third of them permanent; repeated delay
  // faults (repeat > 1) and sustained per-host slowdowns are part of the
  // random plan space too.
  auto plan = std::make_shared<comm::FaultPlan>(comm::randomFaultPlan(
      seed, hosts, /*maxMessageFaults=*/6, /*maxCrashes=*/2,
      /*allowPermanent=*/true, /*maxSlowdowns=*/2));
  config.resilience.faultPlan = plan;
  config.resilience.enableCheckpoints = rng.nextBounded(4) != 0;
  config.resilience.checkpointDir = dir;
  config.resilience.recvTimeoutSeconds = 5.0;  // turns any hang into a stall
  config.resilience.maxRecoveryAttempts =
      1 + static_cast<uint32_t>(rng.nextBounded(3));
  config.resilience.degradedMode = rng.nextBounded(2) == 1;
  config.resilience.buddyReplication =
      config.resilience.enableCheckpoints && rng.nextBounded(2) == 1;
  // Straggler deadlines join about half the schedules (drawn after every
  // historical config draw, so old seeds keep their exact plans). The soft
  // deadline is tight enough to fire under the random slowdowns; the hard
  // deadline, when armed, may legitimately evict a slowed host.
  if (rng.nextBounded(2) == 1) {
    config.resilience.straggler.softDeadlineSeconds = 0.05;
    if (rng.nextBounded(2) == 1) {
      config.resilience.straggler.hardDeadlineSeconds = 0.5;
    }
  }
  // Random storage faults over the checkpoint store: torn/failed/unrenamed
  // writes, ENOSPC, read failures and bit rot, attached for the whole
  // resilient run (the clean baseline above ran without them).
  support::ScopedStorageFaults storageFaults(
      support::randomStorageFaultPlan(seed, hosts, /*maxFaults=*/3));

  // Send-aggregation policy randomized alongside the fault plan (drawn
  // after every historical draw, so old seeds keep their exact schedules):
  // packet caps from tiny — every protocol message straddles and seals its
  // own packet — to far past any message size, with the receiver-side age
  // pull armed on half the schedules. The bit-identity assertion against
  // the fault-free baseline below (which runs on the process default)
  // doubles as the invariance check: no cap or age choice may change what
  // a deterministic policy produces.
  comm::AggregationPolicy agg;
  agg.packetBytes = 64 + rng.nextBounded(1 << 15);
  agg.maxAgeSeconds = rng.nextBounded(2) == 1 ? 0.01 : 0.0;
  config.aggregation = agg;

  bool hasPermanent = false;
  for (const auto& crash : plan->crashes) {
    hasPermanent = hasPermanent || crash.permanent;
  }
  SCOPED_TRACE("policy=" + policyName + " hosts=" + std::to_string(hosts) +
               " nodes=" + std::to_string(g.numNodes()) +
               " edges=" + std::to_string(g.numEdges()) + " degraded=" +
               std::to_string(config.resilience.degradedMode) +
               " permanent=" + std::to_string(hasPermanent));

  try {
    core::RecoveryReport report;
    const auto result =
        core::partitionGraphResilient(file, policy, config, &report);
    // Completed: the result must be valid — injected faults may cost time,
    // never correctness. Degraded completions legitimately span fewer
    // hosts; otherwise the host count must match, and for deterministic
    // policies (pure master rule, no edge state — the stateful ones assign
    // by asynchronously synchronized scores, so their outcome is
    // timing-dependent even without faults) the full-membership result must
    // further be bit-identical to the fault-free run.
    ASSERT_NO_THROW(core::validatePartitions(g, result.partitions));
    ASSERT_EQ(result.partitions.size(), hosts - report.evictions.size());
    if (!report.evictions.empty()) {
      EXPECT_TRUE(config.resilience.degradedMode);
      // Evictions come from permanent crashes or, when the hard straggler
      // deadline is armed, from condemned slow hosts.
      EXPECT_TRUE(hasPermanent ||
                  config.resilience.straggler.hardEnabled());
      // Shrunk but still correct end to end.
      if (g.numNodes() > 0) {
        const uint64_t source = analytics::maxOutDegreeNode(g);
        EXPECT_EQ(analytics::runBfs(result.partitions, source),
                  analytics::bfsReference(g, source));
      }
    } else if (policy.master.isPure() && !policy.edge.usesState) {
      for (size_t h = 0; h < baseline.partitions.size(); ++h) {
        support::SendBuffer a;
        support::SendBuffer b;
        core::serializeDistGraph(a, baseline.partitions[h]);
        core::serializeDistGraph(b, result.partitions[h]);
        EXPECT_EQ(a.release(), b.release()) << "host " << h;
      }
    }
  } catch (const comm::HostFailure&) {      // structured: crash budget spent
  } catch (const comm::NetworkStalled&) {   // structured: bounded wait
  } catch (const comm::SendRetriesExhausted&) {  // structured: retry budget
  } catch (const comm::HostEvicted&) {      // structured: membership change
  } catch (const comm::MessageCorrupt&) {   // structured: persistent corruption
  } catch (const comm::StragglerDeadline&) {  // structured: condemned laggard
  } catch (const comm::MinorityPartition&) {  // structured: quorum fencing
  } catch (const support::StorageError&) {  // structured: storage fault
  }
  // Any other exception type escapes and fails the test.

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // epoch subdirs + replicas too
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultPlanFuzz,
                         ::testing::Range<uint64_t>(0, 32));

// Graph-file fuzzing: seeded-random truncations and byte flips of valid
// .cgr / .gr files must either load successfully or fail with the
// structured GraphFileError — never crash, never allocate from a garbage
// header, never throw anything else.
class GraphFileFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphFileFuzz, MutatedFilesLoadOrFailStructured) {
  const uint64_t seed = GetParam();
  support::Rng rng(seed * 0x9E3779B97F4A7C15ull + 3);

  char tmpl[] = "/tmp/cusp_gffuzz_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string cgrPath = std::string(dir) + "/g.cgr";
  const std::string grPath = std::string(dir) + "/g.gr";

  graph::CsrGraph g = graph::generateErdosRenyi(
      40 + rng.nextBounded(200), rng.nextBounded(1500), seed);
  if (rng.nextBounded(2) == 1) {
    g = graph::withRandomWeights(g, 16, seed + 1);
  }
  graph::GraphFile::save(cgrPath, g);
  graph::GraphFile::saveGalois(grPath, g);

  auto readAll = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  auto mutateAndTry = [&](const std::string& p, bool galois) {
    std::vector<char> bytes = readAll(p);
    ASSERT_FALSE(bytes.empty());
    // Truncate, flip bytes, or both — garbage headers included.
    if (rng.nextBounded(2) == 0) {
      bytes.resize(rng.nextBounded(bytes.size() + 1));
    }
    const uint64_t flips = rng.nextBounded(9);
    for (uint64_t i = 0; i < flips && !bytes.empty(); ++i) {
      bytes[rng.nextBounded(bytes.size())] ^=
          static_cast<char>(1 + rng.nextBounded(255));
    }
    {
      std::ofstream out(p, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    try {
      if (galois) {
        graph::GraphFile::loadGalois(p);
      } else {
        graph::GraphFile::load(p);
      }
      // A mutation the validation cannot distinguish from a legal file
      // (e.g. flips confined to ignorable padding) may load; that is fine.
    } catch (const graph::GraphFileError&) {  // the one allowed failure mode
    }
  };
  for (int round = 0; round < 8; ++round) {
    graph::GraphFile::save(cgrPath, g);
    mutateAndTry(cgrPath, /*galois=*/false);
    graph::GraphFile::saveGalois(grPath, g);
    mutateAndTry(grPath, /*galois=*/true);
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFileFuzz,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace cusp
