// Differential and property tests of the buffered (aggregated) send path.
//
// The aggregation layer (comm/network.h "send aggregation") must be
// invisible to everything above it: a resilient partition run under any
// seeded fault schedule has to produce bit-identical partitions, the same
// recovery report, and the same framing-excluded traffic volume whether
// commits ship eagerly (legacy, aggregation disabled) or ride packed
// multi-message frames. The differential suite below locks that in across
// a sweep of fault plans — drops, duplicates, delays, corrupted frames,
// link faults, slowdowns, healing partitions, transient crashes — and the
// property tests pin the flush policy itself: packet-boundary behavior,
// the age bound for idle senders, pressure flushes ahead of a memory
// budget overdraft, zero residual after an explicit flushAll, and the
// cached mailbox-backlog counter staying exact through duplicate
// suppression and eviction purges.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include <unistd.h>

#include "comm/fault.h"
#include "comm/network.h"
#include "core/checkpoint.h"
#include "core/dist_graph.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "support/memory.h"
#include "support/random.h"

namespace cusp {
namespace {

using comm::AggregationPolicy;
using comm::FaultAction;
using comm::FaultPlan;
using comm::FlushCause;
using comm::Network;
using support::SendBuffer;

// RAII temp directory for checkpoint files.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cusp_commbuf_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~TempDir() {
    for (uint32_t h = 0; h < 16; ++h) {
      core::removeCheckpoints(path_, h, 5);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> serializedBytes(const core::DistGraph& part) {
  SendBuffer buf;
  core::serializeDistGraph(buf, part);
  return buf.release();
}

// --- differential suite: buffered vs legacy under seeded fault plans ---

constexpr uint32_t kDiffHosts = 4;

// One seeded fault schedule mixing every fault family the injector knows.
// The mix is keyed off the seed so the 18 instantiated plans cover drops,
// duplicates, delays, corrupted frames, asymmetric link faults, straggler
// pacing, a healing network partition, and a transient crash recovered
// without losing determinism.
//
// Every message fault names a SPECIFIC (src, dst, tag) shape: its
// occurrence counter then only advances in that one sender thread's
// program order, which the buffered path preserves commit for send. A
// kAnyHost/kAnyTag wildcard would instead count sends of EVERY host on a
// shared counter, making the targeted message a thread-interleaving race —
// two legacy runs of the same plan already disagree on which message gets
// hit (and a corrupted attempt accounts an extra framed transmission, so
// even the volume totals wobble). Differential testing needs the plan
// itself to be deterministic.
std::shared_ptr<FaultPlan> makeFaultPlan(uint64_t seed) {
  auto plan = std::make_shared<FaultPlan>();
  support::Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC0FFEEull);

  // Protocol tags that actually cross hosts, with a safe occurrence bound
  // (how deep a per-pair channel reliably gets before the fault must have
  // had a chance to fire).
  struct TagChoice {
    comm::Tag tag;
    uint64_t maxOccurrence;
  };
  static constexpr TagChoice kTargets[] = {
      {comm::kTagMasterRequest, 1}, {comm::kTagMasterAssign, 1},
      {comm::kTagMasterList, 0},    {comm::kTagEdgeCounts, 0},
      {comm::kTagMirrorFlags, 0},   {comm::kTagMirrorToMaster, 0},
      {comm::kTagEdgeBatch, 2},     {comm::kTagStateReduce, 3},
  };

  const uint64_t noise = 4 + seed % 4;
  for (uint64_t i = 0; i < noise; ++i) {
    comm::MessageFault fault;
    fault.src = static_cast<comm::HostId>(rng.nextBounded(kDiffHosts));
    fault.dst = static_cast<comm::HostId>(
        (fault.src + 1 + rng.nextBounded(kDiffHosts - 1)) % kDiffHosts);
    const TagChoice& target = kTargets[rng.nextBounded(std::size(kTargets))];
    fault.tag = target.tag;
    fault.occurrence = rng.nextBounded(target.maxOccurrence + 1);
    fault.repeat = 1 + static_cast<uint32_t>(rng.nextBounded(2));
    switch (rng.nextBounded(4)) {
      case 0:
        fault.action = FaultAction::kDrop;
        break;
      case 1:
        fault.action = FaultAction::kDuplicate;
        break;
      case 2:
        fault.action = FaultAction::kCorrupt;
        break;
      default:
        fault.action = FaultAction::kDelay;
        fault.delayScans = 1 + static_cast<uint32_t>(rng.nextBounded(3));
        break;
    }
    plan->messageFaults.push_back(fault);
  }

  switch (seed % 4) {
    case 1: {
      comm::LinkFault link;
      link.src = static_cast<comm::HostId>(rng.nextBounded(kDiffHosts));
      link.dst = static_cast<comm::HostId>(
          (link.src + 1 + rng.nextBounded(kDiffHosts - 1)) % kDiffHosts);
      link.dropRate = 0.2;
      link.degradeFactor = 1.5;
      plan->linkFaults.push_back(link);
      break;
    }
    case 2: {
      comm::HostSlowdown slow;
      slow.host = static_cast<comm::HostId>(rng.nextBounded(kDiffHosts));
      slow.factor = 1.5;
      slow.opMicros = 20;
      plan->slowdowns.push_back(slow);
      break;
    }
    case 3: {
      comm::PartitionEvent split;
      split.groupOf.assign(kDiffHosts, 0);
      split.groupOf[rng.nextBounded(kDiffHosts)] = 1;  // 1-vs-3, minority loses
      split.phase = 2 + static_cast<uint32_t>(rng.nextBounded(3));
      split.heals = true;
      plan->partitions.push_back(split);
      break;
    }
    default:
      break;
  }

  if (seed % 5 == 0) {
    comm::HostCrash crash;
    crash.host = 1 + static_cast<comm::HostId>(rng.nextBounded(kDiffHosts - 1));
    crash.phase = 1 + static_cast<uint32_t>(rng.nextBounded(5));
    crash.opsIntoPhase = rng.nextBounded(3);
    crash.permanent = false;
    plan->crashes.push_back(crash);
  }
  return plan;
}

// Everything a run exposes that the aggregation layer must not change:
// the partitions bit for bit, the recovery report, and the per-tag payload
// volume (framing bytes deliberately excluded — packed frames carry one
// CRC footer per packet instead of one per message, so framing is the one
// number ALLOWED to differ).
struct RunOutcome {
  bool threw = false;
  std::string exceptionType;
  std::vector<std::vector<uint8_t>> partitionBytes;
  uint32_t attempts = 0;
  std::vector<std::string> failureKinds;
  uint32_t resumedFromPhase = 0;
  size_t evictions = 0;
  uint32_t finalNumHosts = 0;
  std::vector<uint64_t> tagBytes;
  std::vector<uint64_t> tagMessages;
  uint64_t collectiveBytes = 0;
  uint64_t collectiveMessages = 0;
};

RunOutcome runDifferential(uint64_t seed, const AggregationPolicy& agg) {
  comm::ScopedAggregation scoped(agg);
  TempDir dir;

  const auto graph = graph::generateErdosRenyi(220, 900, 17 * seed + 3);
  const auto file = graph::GraphFile::fromCsr(graph);
  static const char* kPolicies[] = {"CVC", "HVC", "EEC"};
  const auto policy = core::makePolicy(kPolicies[seed % 3]);

  core::PartitionerConfig config;
  config.numHosts = kDiffHosts;
  config.stateSyncRounds = 5;
  config.resilience.faultPlan = makeFaultPlan(seed);
  config.resilience.checkpointDir = dir.path();
  config.resilience.enableCheckpoints = (seed % 2 == 0);
  config.resilience.recvTimeoutSeconds = 20.0;
  config.resilience.maxRecoveryAttempts = 6;
  config.resilience.degradedMode = true;

  RunOutcome out;
  core::RecoveryReport report;
  try {
    const auto result =
        core::partitionGraphResilient(file, policy, config, &report);
    out.partitionBytes.reserve(result.partitions.size());
    for (const auto& part : result.partitions) {
      out.partitionBytes.push_back(serializedBytes(part));
    }
    out.tagBytes.assign(std::begin(result.volume.bytes),
                        std::end(result.volume.bytes));
    out.tagMessages.assign(std::begin(result.volume.messages),
                           std::end(result.volume.messages));
    out.collectiveBytes = result.volume.collectiveBytes;
    out.collectiveMessages = result.volume.collectiveMessages;
  } catch (const std::exception& e) {
    out.threw = true;
    out.exceptionType = typeid(e).name();
  }
  out.attempts = report.attempts;
  out.failureKinds = report.failureKinds;
  out.resumedFromPhase = report.resumedFromPhase;
  out.evictions = report.evictions.size();
  out.finalNumHosts = report.finalNumHosts;
  return out;
}

// Which side of a severed link fails first — the sender burning its retry
// budget (SendRetriesExhausted) or the fenced minority detecting the cut
// (MinorityPartition, via the same enforceQuorumOnFailure) — is a
// wall-clock race between host threads that exists in the legacy path
// already; buffering legitimately shifts it by moving the minority host's
// transmissions to its flush points. Both classify the same link-level
// event, so the differential collapses them into one equivalence class;
// the failure COUNT and every other kind must still match exactly.
std::vector<std::string> normalizedKinds(std::vector<std::string> kinds) {
  for (auto& kind : kinds) {
    if (kind == "MinorityPartition") {
      kind = "SendRetriesExhausted";
    }
  }
  return kinds;
}

void expectSameOutcome(const RunOutcome& legacy, const RunOutcome& buffered) {
  ASSERT_EQ(legacy.threw, buffered.threw);
  EXPECT_EQ(legacy.exceptionType, buffered.exceptionType);
  EXPECT_EQ(legacy.attempts, buffered.attempts);
  EXPECT_EQ(normalizedKinds(legacy.failureKinds),
            normalizedKinds(buffered.failureKinds));
  EXPECT_EQ(legacy.resumedFromPhase, buffered.resumedFromPhase);
  EXPECT_EQ(legacy.evictions, buffered.evictions);
  EXPECT_EQ(legacy.finalNumHosts, buffered.finalNumHosts);
  ASSERT_EQ(legacy.partitionBytes.size(), buffered.partitionBytes.size());
  for (size_t h = 0; h < legacy.partitionBytes.size(); ++h) {
    EXPECT_EQ(legacy.partitionBytes[h], buffered.partitionBytes[h])
        << "partition for host " << h << " diverged";
  }
  EXPECT_EQ(legacy.tagBytes, buffered.tagBytes);
  EXPECT_EQ(legacy.tagMessages, buffered.tagMessages);
  EXPECT_EQ(legacy.collectiveBytes, buffered.collectiveBytes);
  EXPECT_EQ(legacy.collectiveMessages, buffered.collectiveMessages);
}

class BufferedDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferedDifferential, MatchesLegacyUnderSeededFaults) {
  const uint64_t seed = GetParam();
  const RunOutcome legacy =
      runDifferential(seed, AggregationPolicy{.enabled = false});
  const RunOutcome buffered = runDifferential(seed, AggregationPolicy{});
  expectSameOutcome(legacy, buffered);
}

// Odd packet caps exercise straddle-prefix flushes at unusual boundaries;
// the outcome still may not move.
TEST_P(BufferedDifferential, PacketCapDoesNotChangeOutcome) {
  const uint64_t seed = GetParam();
  if (seed % 3 != 0) {
    GTEST_SKIP() << "cap sweep runs on a third of the seeds";
  }
  const RunOutcome legacy =
      runDifferential(seed, AggregationPolicy{.enabled = false});
  const RunOutcome tiny = runDifferential(
      seed, AggregationPolicy{.enabled = true, .packetBytes = 96});
  const RunOutcome huge = runDifferential(
      seed, AggregationPolicy{.enabled = true, .packetBytes = 1 << 20});
  expectSameOutcome(legacy, tiny);
  expectSameOutcome(legacy, huge);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferedDifferential,
                         ::testing::Range<uint64_t>(1, 19));

// --- flush-policy property tests ---

// Replays the documented flush policy for a sequence of sendPacked message
// lengths and predicts the exact packet count: a message at or over the cap
// ships alone (after flushing whatever is pending), a message that would
// straddle the cap seals the pending prefix first, and reaching the cap
// seals immediately.
struct FlushModel {
  size_t cap;
  size_t pending = 0;
  uint64_t packets = 0;
  uint64_t oversized = 0;

  void commit(size_t len) {
    if (len >= cap) {
      if (pending > 0) {
        ++packets;
        pending = 0;
      }
      ++packets;
      if (len > cap) {
        ++oversized;
      }
      return;
    }
    if (pending > 0 && pending + len > cap) {
      ++packets;
      pending = 0;
    }
    pending += len;
    if (pending >= cap) {
      ++packets;
      pending = 0;
    }
  }
  void flush() {
    if (pending > 0) {
      ++packets;
      pending = 0;
    }
  }
};

TEST(FlushPolicy, NoStraddleAndOverCapPacketsAreExactlyOversizedMessages) {
  constexpr size_t kCap = 256;
  Network net(2);
  net.setAggregation({.enabled = true, .packetBytes = kCap});

  support::Rng rng(991);
  FlushModel model{kCap};
  std::vector<std::vector<uint8_t>> sent;
  for (uint64_t i = 0; i < 300; ++i) {
    // Sizes sweep well below, around, exactly at, and above the cap.
    const size_t body = 1 + rng.nextBounded(2 * kCap);
    std::vector<uint8_t> payload(body);
    for (size_t j = 0; j < body; ++j) {
      payload[j] = static_cast<uint8_t>((i * 31 + j) & 0xFF);
    }
    SendBuffer buf;
    support::serializeAll(buf, i, payload);
    model.commit(buf.size());
    sent.push_back(std::move(payload));
    SendBuffer wire;
    support::serializeAll(wire, i, sent.back());
    net.sendPacked(0, 1, comm::kTagGeneric, std::move(wire));
  }
  net.flushAggregated(0);
  model.flush();

  const auto snap = net.aggSnapshot();
  EXPECT_EQ(snap.pendingBytes, 0u);
  EXPECT_EQ(snap.packedMessages, 300u);
  EXPECT_EQ(snap.packets, model.packets);
  EXPECT_EQ(snap.oversizedMessages, model.oversized);
  // A packet exceeds the cap if and only if it carries a single message
  // that itself exceeds the cap — i.e. nothing ever straddles a boundary
  // and small messages are never co-packed past the cap.
  EXPECT_EQ(snap.overCapPackets, snap.oversizedMessages);

  // Reassembly: the packed frames must come apart into the original
  // messages, in order, byte for byte.
  for (uint64_t i = 0; i < 300; ++i) {
    auto msg = net.tryRecv(1, comm::kTagGeneric);
    ASSERT_TRUE(msg.has_value()) << "message " << i << " missing";
    uint64_t index = 0;
    std::vector<uint8_t> payload;
    support::deserializeAll(msg->payload, index, payload);
    EXPECT_EQ(index, i);
    EXPECT_EQ(payload, sent[i]);
  }
  EXPECT_FALSE(net.tryRecv(1, comm::kTagGeneric).has_value());
}

TEST(FlushPolicy, AgeFlushBoundsIdleSenderLatency) {
  Network net(2);
  net.setAggregation(
      {.enabled = true, .packetBytes = 1 << 16, .maxAgeSeconds = 0.05});

  const auto start = std::chrono::steady_clock::now();
  comm::runHosts(net, [&](comm::HostId me) {
    if (me == 0) {
      // Commit one message far below the cap, then go idle in a blocking
      // receive: nothing on the sender side will ever flush it.
      auto writer = net.packedWriter(0, 1, comm::kTagGeneric);
      support::serialize(writer, uint64_t{42});
      writer.commit();
      auto ack = net.recvFrom(0, 1, comm::kTagGeneric);
      uint64_t value = 0;
      support::deserialize(ack.payload, value);
      EXPECT_EQ(value, 43u);
    } else {
      // The blocked receiver's age pull is the only delivery path.
      auto msg = net.recvFrom(1, 0, comm::kTagGeneric);
      uint64_t value = 0;
      support::deserialize(msg.payload, value);
      EXPECT_EQ(value, 42u);
      SendBuffer ack;
      support::serialize(ack, uint64_t{43});
      net.send(1, 0, comm::kTagGeneric, std::move(ack));
    }
  });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto snap = net.aggSnapshot();
  EXPECT_GE(snap.flushes[static_cast<size_t>(FlushCause::kAge)], 1u);
  EXPECT_EQ(snap.pendingBytes, 0u);
  // The age bound is 50ms; anything near the 5s mark would mean the pull
  // never fired and a timeout bailed us out instead.
  EXPECT_LT(elapsed, 5.0);
}

TEST(FlushPolicy, PressureFlushFiresBeforeBudgetOverdraft) {
  // Budget pre-loaded past the 87.5% pressure threshold: every commit must
  // ship immediately instead of parking bytes the budget cannot cover.
  support::ScopedMemoryBudget scoped(1 << 14);
  scoped.budget()->reserveOverdraft(15000);

  Network net(2);
  net.setAggregation({.enabled = true, .packetBytes = 1 << 16});
  for (uint64_t i = 0; i < 8; ++i) {
    auto writer = net.packedWriter(0, 1, comm::kTagGeneric);
    support::serialize(writer, i);
    writer.commit();
    // Nothing may linger while the budget is under pressure.
    EXPECT_EQ(net.aggSnapshot().pendingBytes, 0u);
  }
  const auto snap = net.aggSnapshot();
  EXPECT_GE(snap.flushes[static_cast<size_t>(FlushCause::kPressure)], 8u);
  EXPECT_EQ(snap.packedMessages, 8u);

  scoped.budget()->release(15000);
}

TEST(FlushPolicy, FlushAllLeavesZeroResidual) {
  obs::ScopedObservability obs;  // attach BEFORE the Network resolves cells
  Network net(3);
  net.setAggregation({.enabled = true, .packetBytes = 1 << 16});

  comm::BufferedSender sender(net, 0, comm::kTagEdgeBatch, 1 << 20);
  for (uint64_t i = 0; i < 50; ++i) {
    sender.append(1, i);
    sender.append(2, i * 3);
  }
  sender.flushAll();

  const auto snap = net.aggSnapshot();
  EXPECT_EQ(snap.pendingBytes, 0u);
  EXPECT_GE(snap.flushes[static_cast<size_t>(FlushCause::kBarrier)], 1u);
  EXPECT_EQ(snap.packedMessages, 2u);  // one packed frame per destination

  // The mirrored gauge must agree with the internal counter.
  const auto metrics = obs.metrics().snapshot();
  bool sawGauge = false;
  for (const auto& gauge : metrics.gauges) {
    if (gauge.name == "cusp.net.agg.pending_bytes") {
      sawGauge = true;
      EXPECT_EQ(gauge.value, 0.0);
    }
  }
  EXPECT_TRUE(sawGauge);
  EXPECT_GE(metrics.counterValue("cusp.net.agg.packets"), 2u);
}

// --- cached mailbox backlog stays exact ---

TEST(BacklogCache, ExactAcrossDuplicateDropAndEvictionPurge) {
  auto plan = std::make_shared<FaultPlan>();
  // First generic-tag message out of host 0 is duplicated in flight; the
  // receiver's dedup scan drops the copy.
  plan->messageFaults.push_back({.src = 0,
                                 .dst = 1,
                                 .tag = comm::kTagGeneric,
                                 .occurrence = 0,
                                 .repeat = 1,
                                 .action = FaultAction::kDuplicate});
  Network net(3);
  net.setFaultInjector(std::make_shared<comm::FaultInjector>(*plan));
  net.setAggregation({.enabled = true, .packetBytes = 1 << 16});

  // Stage 1: bare sends, including the duplicated one — the cached counter
  // must account both copies while they sit in the mailbox.
  for (uint64_t i = 0; i < 6; ++i) {
    SendBuffer buf;
    support::serialize(buf, i);
    net.send(0, 1, comm::kTagGeneric, std::move(buf));
  }
  EXPECT_EQ(net.mailboxBacklogBytes(), net.mailboxBacklogBytesExact());
  EXPECT_GT(net.mailboxBacklogBytes(), 0u);

  // Stage 2: a packed frame unpacks into per-message mailbox entries.
  for (uint64_t i = 0; i < 4; ++i) {
    auto writer = net.packedWriter(0, 2, comm::kTagGeneric);
    support::serialize(writer, i);
    writer.commit();
  }
  net.flushAggregated(0);
  EXPECT_EQ(net.mailboxBacklogBytes(), net.mailboxBacklogBytesExact());

  // Stage 3: draining host 1 walks the dedup scan over the duplicated
  // entry (suppressed copy decremented without delivery).
  uint64_t received = 0;
  while (auto msg = net.tryRecv(1, comm::kTagGeneric)) {
    uint64_t value = 0;
    support::deserialize(msg->payload, value);
    EXPECT_EQ(value, received++);
  }
  EXPECT_EQ(received, 6u);
  EXPECT_EQ(net.mailboxBacklogBytes(), net.mailboxBacklogBytesExact());

  // Stage 4: stage unflushed commits toward host 2, then evict it — both
  // its mailbox backlog and the pending aggregation bytes must be purged.
  for (uint64_t i = 0; i < 4; ++i) {
    auto writer = net.packedWriter(0, 2, comm::kTagGeneric);
    support::serialize(writer, 100 + i);
    writer.commit();
  }
  EXPECT_GT(net.aggSnapshot().pendingBytes, 0u);
  net.evict(2);
  EXPECT_EQ(net.aggSnapshot().pendingBytes, 0u);
  EXPECT_EQ(net.mailboxBacklogBytes(), net.mailboxBacklogBytesExact());
  EXPECT_EQ(net.mailboxBacklogBytesExact(), 0u);
}

}  // namespace
}  // namespace cusp
