// Tests of the distributed analytics engine over CuSP partitions.
//
// The central property: for EVERY partitioning policy, host count, and
// input graph, the distributed bfs/cc/pagerank/sssp results must equal the
// single-image reference implementation — this is what "partitions are
// correct for analytics" means. Parameterized sweeps cover the matrix;
// targeted tests cover reference correctness on hand-checked graphs, sync
// traffic structure (CVC's restricted partners), and edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "analytics/algorithms.h"
#include "analytics/engine.h"
#include "analytics/reference.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "testutil.h"

namespace cusp {
namespace {

using analytics::kInfinity;
using core::DistGraph;

std::vector<DistGraph> partitions(const graph::CsrGraph& g,
                                  const std::string& policy, uint32_t hosts) {
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig config;
  config.numHosts = hosts;
  return core::partitionGraph(file, core::makePolicy(policy), config)
      .partitions;
}

// ---------------------------------------------------------------------------
// Reference implementations on hand-checked graphs.
// ---------------------------------------------------------------------------

TEST(ReferenceBfs, PathDistances) {
  const auto g = graph::makePath(5);
  const auto dist = analytics::bfsReference(g, 0);
  EXPECT_EQ(dist, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ReferenceBfs, UnreachableIsInfinity) {
  const auto g = graph::makePath(4);
  const auto dist = analytics::bfsReference(g, 2);
  EXPECT_EQ(dist[0], kInfinity);
  EXPECT_EQ(dist[1], kInfinity);
  EXPECT_EQ(dist[2], 0u);
  EXPECT_EQ(dist[3], 1u);
}

TEST(ReferenceBfs, RejectsBadSource) {
  const auto g = graph::makePath(4);
  EXPECT_THROW(analytics::bfsReference(g, 4), std::out_of_range);
}

TEST(ReferenceSssp, WeightedTriangleTakesCheaperPath) {
  // 0 -> 1 (10), 0 -> 2 (1), 2 -> 1 (2): shortest 0->1 is 3 via 2.
  std::vector<graph::Edge> edges = {{0, 1, 10}, {0, 2, 1}, {2, 1, 2}};
  const auto g = graph::CsrGraph::fromEdges(3, edges, true);
  const auto dist = analytics::ssspReference(g, 0);
  EXPECT_EQ(dist, (std::vector<uint64_t>{0, 3, 1}));
}

TEST(ReferenceCc, TwoComponentsOnSymmetricGraph) {
  std::vector<graph::Edge> edges = {{0, 1, 0}, {1, 0, 0}, {1, 2, 0},
                                    {2, 1, 0}, {3, 4, 0}, {4, 3, 0}};
  const auto g = graph::CsrGraph::fromEdges(5, edges);
  const auto label = analytics::ccReference(g);
  EXPECT_EQ(label, (std::vector<uint64_t>{0, 0, 0, 3, 3}));
}

TEST(ReferencePageRank, SumsToAboutOneOnCycle) {
  // On a cycle every node has in/out degree 1; ranks are uniform.
  const auto g = graph::makeCycle(10);
  const auto rank = analytics::pageRankReference(g);
  double sum = 0;
  for (double r : rank) {
    EXPECT_NEAR(r, 0.1, 1e-9);
    sum += r;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MaxOutDegreeNode, PicksTheHub) {
  const auto g = graph::makeStar(12);
  EXPECT_EQ(analytics::maxOutDegreeNode(g), 0u);
}

TEST(ReferenceKCore, CompleteGraphSurvivesUpToItsDegree) {
  const auto g = graph::makeComplete(6);  // every vertex has degree 5
  EXPECT_EQ(analytics::kCoreReference(g, 5),
            std::vector<uint64_t>(6, 1));
  EXPECT_EQ(analytics::kCoreReference(g, 6),
            std::vector<uint64_t>(6, 0));
}

TEST(ReferenceKCore, PathPeelsCompletelyAtTwo) {
  // Symmetric path: endpoints have degree 1, so the 2-core unravels fully.
  const auto g = graph::makePath(10).symmetrized();
  EXPECT_EQ(analytics::kCoreReference(g, 2),
            std::vector<uint64_t>(10, 0));
  // Symmetric cycle: every vertex has degree 2; the 2-core is everything.
  const auto c = graph::makeCycle(10).symmetrized();
  EXPECT_EQ(analytics::kCoreReference(c, 2),
            std::vector<uint64_t>(10, 1));
}

TEST(ReferenceKCore, CliqueWithTailKeepsOnlyTheClique) {
  // Clique {0..4} plus a tail 4-5-6: the 4-core is exactly the clique.
  std::vector<graph::Edge> edges;
  for (uint64_t i = 0; i < 5; ++i) {
    for (uint64_t j = 0; j < 5; ++j) {
      if (i != j) {
        edges.push_back({i, j, 0});
      }
    }
  }
  edges.push_back({4, 5, 0});
  edges.push_back({5, 4, 0});
  edges.push_back({5, 6, 0});
  edges.push_back({6, 5, 0});
  const auto g = graph::CsrGraph::fromEdges(7, edges);
  EXPECT_EQ(analytics::kCoreReference(g, 4),
            (std::vector<uint64_t>{1, 1, 1, 1, 1, 0, 0}));
}

TEST(ReferenceTriangles, HandCheckedCounts) {
  // Complete graph K_n has C(n, 3) triangles.
  EXPECT_EQ(analytics::triangleCountReference(graph::makeComplete(4)), 4u);
  EXPECT_EQ(analytics::triangleCountReference(graph::makeComplete(6)), 20u);
  // A symmetric cycle has none (for n > 3); a triangle has one.
  EXPECT_EQ(analytics::triangleCountReference(
                graph::makeCycle(10).simpleSymmetrized()),
            0u);
  EXPECT_EQ(analytics::triangleCountReference(
                graph::makeCycle(3).simpleSymmetrized()),
            1u);
  // Two triangles sharing an edge: 0-1-2 and 1-2-3.
  std::vector<graph::Edge> edges = {{0, 1, 0}, {0, 2, 0}, {1, 2, 0},
                                    {1, 3, 0}, {2, 3, 0}};
  const auto g = graph::CsrGraph::fromEdges(4, edges).simpleSymmetrized();
  EXPECT_EQ(analytics::triangleCountReference(g), 2u);
}

// ---------------------------------------------------------------------------
// Distributed == reference, across the policy/graph/host matrix.
// ---------------------------------------------------------------------------

using AlgoParam = std::tuple<std::string, std::string, uint32_t>;

class AnalyticsSweep : public ::testing::TestWithParam<AlgoParam> {
 protected:
  graph::CsrGraph graphFor(const std::string& name) {
    for (auto& named : testutil::testGraphCatalog()) {
      if (named.name == name) {
        return std::move(named.graph);
      }
    }
    throw std::runtime_error("unknown test graph " + name);
  }
};

TEST_P(AnalyticsSweep, BfsMatchesReference) {
  const auto& [policy, graphName, hosts] = GetParam();
  const graph::CsrGraph g = graphFor(graphName);
  const uint64_t source = analytics::maxOutDegreeNode(g);
  const auto expected = analytics::bfsReference(g, source);
  const auto parts = partitions(g, policy, hosts);
  const auto actual = analytics::runBfs(parts, source);
  EXPECT_EQ(actual, expected);
}

TEST_P(AnalyticsSweep, SsspMatchesReference) {
  const auto& [policy, graphName, hosts] = GetParam();
  graph::CsrGraph g = graphFor(graphName);
  g = graph::withRandomWeights(g, 20, 91);
  const uint64_t source = analytics::maxOutDegreeNode(g);
  const auto expected = analytics::ssspReference(g, source);
  const auto parts = partitions(g, policy, hosts);
  const auto actual = analytics::runSssp(parts, source);
  EXPECT_EQ(actual, expected);
}

TEST_P(AnalyticsSweep, CcMatchesReferenceOnSymmetrizedGraph) {
  const auto& [policy, graphName, hosts] = GetParam();
  const graph::CsrGraph g = graphFor(graphName).symmetrized();
  const auto expected = analytics::ccReference(g);
  const auto parts = partitions(g, policy, hosts);
  const auto actual = analytics::runCc(parts);
  EXPECT_EQ(actual, expected);
}

TEST_P(AnalyticsSweep, PageRankMatchesReference) {
  const auto& [policy, graphName, hosts] = GetParam();
  const graph::CsrGraph g = graphFor(graphName);
  analytics::PageRankParams params;
  params.maxIterations = 30;
  params.tolerance = 1e-9;  // fixed iteration count for exact comparability
  const auto expected = analytics::pageRankReference(g, params);
  const auto parts = partitions(g, policy, hosts);
  const auto actual = analytics::runPageRank(parts, params);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(actual[v], expected[v], 1e-10) << "node " << v;
  }
}

TEST_P(AnalyticsSweep, KCoreMatchesReferenceOnSymmetrizedGraph) {
  const auto& [policy, graphName, hosts] = GetParam();
  const graph::CsrGraph g = graphFor(graphName).symmetrized();
  for (uint64_t k : {2ull, 4ull}) {
    const auto expected = analytics::kCoreReference(g, k);
    const auto parts = partitions(g, policy, hosts);
    const auto actual = analytics::runKCore(parts, k);
    EXPECT_EQ(actual, expected) << "k=" << k;
  }
}

TEST_P(AnalyticsSweep, TriangleCountMatchesReference) {
  const auto& [policy, graphName, hosts] = GetParam();
  const graph::CsrGraph g = graphFor(graphName).simpleSymmetrized();
  const uint64_t expected = analytics::triangleCountReference(g);
  const auto parts = partitions(g, policy, hosts);
  EXPECT_EQ(analytics::runTriangleCount(parts), expected);
}

std::vector<AlgoParam> algoParams() {
  std::vector<AlgoParam> params;
  const std::vector<std::string> graphs = {"path16", "star33", "grid6x5",
                                           "rmat8", "web400"};
  for (const auto& policy : core::extendedPolicyCatalog()) {
    for (const auto& graphName : graphs) {
      for (uint32_t hosts : {2u, 4u}) {
        params.emplace_back(policy, graphName, hosts);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, AnalyticsSweep, ::testing::ValuesIn(algoParams()),
    [](const ::testing::TestParamInfo<AlgoParam>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_h" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// SyncContext in isolation: a hand-built two-host partition with one shared
// vertex, exercising reduce/broadcast semantics directly.
// ---------------------------------------------------------------------------

namespace handbuilt {

// Global graph: vertices {0, 1}; host 0 masters vertex 0, host 1 masters
// vertex 1; each host holds a mirror of the other's vertex.
std::vector<DistGraph> twoHostsOneSharedVertexEach() {
  std::vector<DistGraph> parts(2);
  for (uint32_t h = 0; h < 2; ++h) {
    DistGraph& part = parts[h];
    part.hostId = h;
    part.numHosts = 2;
    part.numGlobalNodes = 2;
    part.numGlobalEdges = 0;
    part.numMasters = 1;
    part.localToGlobal = {h, 1 - h};  // local 0 = my master, local 1 = mirror
    part.globalToLocal = {{h, 0}, {1 - h, 1}};
    part.masterHostOfLocal = {h, 1 - h};
    part.graph = graph::CsrGraph({0, 0, 0}, {});
    part.mirrorsOnHost.assign(2, {});
    part.myMirrorsByOwner.assign(2, {});
    part.mirrorsOnHost[1 - h] = {0};     // my master has a mirror on peer
    part.myMirrorsByOwner[1 - h] = {1};  // my mirror is owned by peer
  }
  return parts;
}

}  // namespace handbuilt

TEST(SyncContextTest, ReduceAppliesCombineAndFlagsChanges) {
  const auto parts = handbuilt::twoHostsOneSharedVertexEach();
  comm::Network net(2);
  std::vector<std::vector<uint64_t>> finals(2);
  comm::runHosts(net, [&](comm::HostId me) {
    analytics::SyncContext sync(net, me, parts[me]);
    // Host 0: master=10, mirror-of-1=99 (dirty). Host 1: master=50,
    // mirror-of-0=5 (dirty). Min-reduce: host0's master becomes 5; host1's
    // master stays 50 (99 is larger).
    std::vector<uint64_t> values = {me == 0 ? 10ull : 50ull,
                                    me == 0 ? 99ull : 5ull};
    support::DynamicBitset dirty(2);
    dirty.set(1);
    support::DynamicBitset changed(2);
    sync.reduceToMasters<uint64_t>(
        values, dirty,
        [](uint64_t& acc, uint64_t in) {
          if (in < acc) {
            acc = in;
            return true;
          }
          return false;
        },
        changed);
    if (me == 0) {
      EXPECT_EQ(values[0], 5u);
      EXPECT_TRUE(changed.test(0));
    } else {
      EXPECT_EQ(values[0], 50u);
      EXPECT_FALSE(changed.test(0));
    }
    EXPECT_FALSE(dirty.test(1)) << "reduce consumes mirror dirty flags";
    finals[me] = values;
  });
}

TEST(SyncContextTest, BroadcastOverwritesMirrors) {
  const auto parts = handbuilt::twoHostsOneSharedVertexEach();
  comm::Network net(2);
  comm::runHosts(net, [&](comm::HostId me) {
    analytics::SyncContext sync(net, me, parts[me]);
    std::vector<uint64_t> values = {me * 100ull + 7, 0ull};
    support::DynamicBitset dirtyMasters(2);
    dirtyMasters.set(0);
    support::DynamicBitset mirrorUpdated(2);
    sync.broadcastToMirrors<uint64_t>(values, dirtyMasters, mirrorUpdated);
    // My mirror (local 1) now holds the peer's master value.
    EXPECT_EQ(values[1], (1 - me) * 100ull + 7);
    EXPECT_TRUE(mirrorUpdated.test(1));
  });
}

TEST(SyncContextTest, CleanBitsetsMoveNoData) {
  const auto parts = handbuilt::twoHostsOneSharedVertexEach();
  comm::Network net(2);
  comm::runHosts(net, [&](comm::HostId me) {
    analytics::SyncContext sync(net, me, parts[me]);
    std::vector<uint64_t> values = {1, 2};
    support::DynamicBitset dirty(2);  // nothing dirty
    support::DynamicBitset changed(2);
    sync.reduceToMasters<uint64_t>(
        values, dirty,
        [](uint64_t&, uint64_t) { return true; }, changed);
    EXPECT_FALSE(changed.any());
    EXPECT_EQ(values, (std::vector<uint64_t>{1, 2}));
  });
  // Messages still flow (partner lists are non-empty) but carry no pairs.
  EXPECT_EQ(net.bytesSent(comm::kTagAppReduce), 2u * 16);  // two empty vecs
}

// ---------------------------------------------------------------------------
// Engine structure.
// ---------------------------------------------------------------------------

TEST(AnalyticsEngine, CvcTalksToFewerPartnersThanHvc) {
  // CVC mirrors live only on row/column partners, so each host exchanges
  // sync messages with a strict subset of the cluster; HVC (general vertex
  // cut) has no such structure. Compare partner counts from the metadata.
  const graph::CsrGraph g = graph::generateWebCrawl(
      {.numNodes = 2000, .avgOutDegree = 12.0, .seed = 5});
  const uint32_t hosts = 9;  // 3 x 3 grid
  auto partnerCount = [&](const std::string& policy) {
    const auto parts = partitions(g, policy, hosts);
    uint64_t partners = 0;
    for (const DistGraph& part : parts) {
      for (uint32_t h = 0; h < hosts; ++h) {
        if (h != part.hostId && (!part.mirrorsOnHost[h].empty() ||
                                 !part.myMirrorsByOwner[h].empty())) {
          ++partners;
        }
      }
    }
    return partners;
  };
  const uint64_t cvcPartners = partnerCount("CVC");
  const uint64_t hvcPartners = partnerCount("HVC");
  // 3x3 CVC: each host shares proxies with at most 2 row + 2 col partners.
  EXPECT_LE(cvcPartners, hosts * 4ull);
  EXPECT_GT(hvcPartners, cvcPartners);
}

TEST(AnalyticsEngine, RejectsCscPartitions) {
  const graph::CsrGraph g = graph::makePath(8);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig config;
  config.numHosts = 2;
  config.buildTranspose = true;
  auto parts =
      core::partitionGraph(file, core::makePolicy("EEC"), config).partitions;
  EXPECT_THROW(analytics::runBfs(parts, 0), std::invalid_argument);
}

TEST(AnalyticsEngine, StatsReportRoundsAndTraffic) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1800, 61);
  const auto parts = partitions(g, "CVC", 4);
  analytics::RunStats stats;
  const uint64_t source = analytics::maxOutDegreeNode(g);
  analytics::runBfs(parts, source, &stats);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_GT(stats.syncMessages, 0u);
}

TEST(AnalyticsEngine, BfsOnSingleHostNeedsNoSync) {
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 1000, 67);
  const auto parts = partitions(g, "EEC", 1);
  analytics::RunStats stats;
  const auto actual = analytics::runBfs(parts, 0, &stats);
  EXPECT_EQ(actual, analytics::bfsReference(g, 0));
  EXPECT_EQ(stats.syncBytes, 0u);
}

}  // namespace
}  // namespace cusp
