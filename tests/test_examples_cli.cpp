// Driver test for the examples' CLI contract: every example rejects an
// unknown flag with a structured one-line error naming the flag, prints its
// usage text, and exits 2 — no silent ignoring, no crash, no accidental
// run. CUSP_EXAMPLES_DIR points at the build directory holding the example
// binaries (wired in tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace {

struct RunResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr combined
};

RunResult runExample(const std::string& binary, const std::string& args) {
  const std::string cmd =
      std::string(CUSP_EXAMPLES_DIR) + "/" + binary + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 4096> chunk;
  while (size_t n = std::fread(chunk.data(), 1, chunk.size(), pipe)) {
    result.output.append(chunk.data(), n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) {
    result.exitCode = WEXITSTATUS(status);
  }
  return result;
}

void expectUnknownFlagRejection(const std::string& binary,
                                const std::string& args,
                                const std::string& flag) {
  const RunResult result = runExample(binary, args);
  EXPECT_EQ(result.exitCode, 2) << binary << " " << args << "\n"
                                << result.output;
  EXPECT_NE(result.output.find("error"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find(flag), std::string::npos)
      << binary << " did not name the offending flag:\n"
      << result.output;
  EXPECT_NE(result.output.find("usage"), std::string::npos) << result.output;
}

TEST(ExamplesCliTest, CuspdRejectsUnknownFlag) {
  expectUnknownFlagRejection("cuspd", "--bogus-flag", "--bogus-flag");
}

TEST(ExamplesCliTest, CuspdMissingFlagValueIsStructured) {
  const RunResult result = runExample("cuspd", "--jobs");
  EXPECT_EQ(result.exitCode, 2) << result.output;
  EXPECT_NE(result.output.find("needs a value"), std::string::npos)
      << result.output;
}

TEST(ExamplesCliTest, CuspdKillWithoutJournalIsStructured) {
  const RunResult result = runExample("cuspd", "--kill-after-events 5");
  EXPECT_EQ(result.exitCode, 2) << result.output;
  EXPECT_NE(result.output.find("--journal-dir"), std::string::npos)
      << result.output;
}

TEST(ExamplesCliTest, CuspdHelpExitsZero) {
  const RunResult result = runExample("cuspd", "--help");
  EXPECT_EQ(result.exitCode, 0) << result.output;
  EXPECT_NE(result.output.find("usage"), std::string::npos) << result.output;
}

TEST(ExamplesCliTest, PartitionToolRejectsUnknownFlag) {
  // The flag scan runs before any file I/O, so the input path need not
  // exist for the rejection path.
  expectUnknownFlagRejection("partition_tool", "in.cgr EEC 4 --frobnicate",
                             "--frobnicate");
}

TEST(ExamplesCliTest, AnalyticsPipelineRejectsUnknownFlag) {
  expectUnknownFlagRejection("analytics_pipeline", "--bogus", "--bogus");
}

TEST(ExamplesCliTest, AnalyticsPipelineRejectsExtraPositional) {
  const RunResult result = runExample("analytics_pipeline", "50000 60000");
  EXPECT_EQ(result.exitCode, 2) << result.output;
  EXPECT_NE(result.output.find("60000"), std::string::npos) << result.output;
}

TEST(ExamplesCliTest, ConvertGraphRejectsUnknownFlag) {
  expectUnknownFlagRejection("convert_graph", "--fast", "--fast");
}

TEST(ExamplesCliTest, GenerateGraphRejectsUnknownFlag) {
  expectUnknownFlagRejection(
      "generate_graph", "standin kron 100 /tmp/unused.cgr --turbo", "--turbo");
}

TEST(ExamplesCliTest, QuickstartRejectsAnyArgument) {
  expectUnknownFlagRejection("quickstart", "--verbose", "--verbose");
}

TEST(ExamplesCliTest, CustomPolicyRejectsAnyArgument) {
  expectUnknownFlagRejection("custom_policy", "--verbose", "--verbose");
}

}  // namespace
