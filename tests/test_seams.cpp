// Concurrent attach/detach of the process-wide seams.
//
// The service layer turned the seams — storage-fault injector, memory
// budget, write fence, observability sink — from per-run scoped state into
// infrastructure shared by every concurrent job in the process. The
// documented contract (service/engine.h) is attach-once-per-process, but
// the seam machinery itself must stay data-race-free even when scopes
// attach, restore, and get consulted from many threads at once: a TSan run
// of this suite is the proof. Interleaved restores from different threads
// may leave an arbitrary (stale) seam attached — that ordering is
// explicitly unspecified — so these tests assert absence of races and
// crashes, then detach explicitly to leave the process clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/obs.h"
#include "support/memory.h"
#include "support/storage.h"

namespace cusp {
namespace {

constexpr int kAttachThreads = 4;
constexpr int kUserThreads = 4;
constexpr int kAttachIters = 200;
constexpr int kUserIters = 600;

// Runs `attach` in kAttachThreads loops and `use` in kUserThreads loops
// concurrently; any data race in the seam's attach/consult paths is TSan's
// to report.
template <typename AttachFn, typename UseFn>
void hammer(AttachFn attach, UseFn use) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kAttachThreads + kUserThreads);
  for (int t = 0; t < kAttachThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAttachIters; ++i) {
        attach(t, i);
      }
    });
  }
  for (int t = 0; t < kUserThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kUserIters && !stop.load(); ++i) {
        use(t, i);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
}

TEST(SeamConcurrencyTest, StorageFaultScopesRaceFree) {
  char tmpl[] = "/tmp/cusp_seams_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  hammer(
      [](int, int) {
        support::ScopedStorageFaults scope{support::StorageFaultPlan{}};
        (void)scope.stats();
      },
      [&](int t, int i) {
        // One probe file per writer thread: the atomic-write staging path
        // is per-target, so concurrent writers need distinct targets.
        const uint8_t byte = static_cast<uint8_t>(i);
        support::atomicWriteFile(dir + "/probe" + std::to_string(t), &byte,
                                 1);
        const auto injector = support::storageFaults();
        if (injector) {
          (void)injector->stats();
        }
      });

  support::detachStorageFaults();
  EXPECT_EQ(support::storageFaults(), nullptr);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(SeamConcurrencyTest, MemoryBudgetScopesRaceFree) {
  hammer(
      [](int, int) {
        support::ScopedMemoryBudget scope(64ull << 20);
        (void)scope.stats();
      },
      [](int, int) {
        if (support::memoryBudgetAttached()) {
          const auto budget = support::memoryBudget();
          if (budget) {
            (void)budget->stats();
          }
        }
      });

  support::detachMemoryBudget();
  EXPECT_FALSE(support::memoryBudgetAttached());
}

TEST(SeamConcurrencyTest, WriteFenceScopesRaceFree) {
  hammer(
      [](int t, int i) {
        support::ScopedWriteFence scope;
        scope.fence()->advance(static_cast<uint64_t>(t * kAttachIters + i));
      },
      [](int, int i) {
        const auto fence = support::writeFence();
        if (fence) {
          fence->advance(static_cast<uint64_t>(i));
          (void)fence->isFenced(static_cast<uint32_t>(i % 8));
          (void)fence->epoch();
          (void)fence->fencedWriteAttempts();
        }
      });

  support::detachWriteFence();
  EXPECT_EQ(support::writeFence(), nullptr);
}

TEST(SeamConcurrencyTest, ObservabilityScopesRaceFree) {
  hammer(
      [](int, int) {
        obs::ScopedObservability scope;
        scope.metrics().counter("test.seams.attach").add();
      },
      [](int, int i) {
        if (const auto sink = obs::sink()) {
          sink.metrics->counter("test.seams.use").add();
          sink.metrics->gauge("test.seams.gauge")
              .set(static_cast<double>(i));
        }
      });

  obs::detach();
  EXPECT_FALSE(obs::attached());
}

TEST(SeamConcurrencyTest, AllSeamsTogetherRaceFree) {
  // The daemon's real shape: every seam cycling at once while users consult
  // all four — cross-seam interleavings included.
  hammer(
      [](int t, int i) {
        switch ((t + i) % 4) {
          case 0: {
            support::ScopedStorageFaults s{support::StorageFaultPlan{}};
            break;
          }
          case 1: {
            support::ScopedMemoryBudget s(32ull << 20);
            break;
          }
          case 2: {
            support::ScopedWriteFence s;
            break;
          }
          default: {
            obs::ScopedObservability s;
            break;
          }
        }
      },
      [](int, int i) {
        if (const auto sink = obs::sink()) {
          sink.metrics->counter("test.seams.mixed").add();
        }
        if (support::memoryBudgetAttached()) {
          if (const auto budget = support::memoryBudget()) {
            (void)budget->stats();
          }
        }
        if (const auto fence = support::writeFence()) {
          (void)fence->epoch();
        }
        if (const auto injector = support::storageFaults()) {
          (void)injector->stats();
        }
        (void)i;
      });

  support::detachStorageFaults();
  support::detachMemoryBudget();
  support::detachWriteFence();
  obs::detach();
}

}  // namespace
}  // namespace cusp
