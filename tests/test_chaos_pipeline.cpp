// Chaos pipeline: the full partition -> analytics pipeline runs under a
// continuous seeded fault schedule — drops, duplicates, delays, corrupted
// frames, one transient crash (partitioning leg) and one permanent crash
// (analytics leg) — and the final BFS / PageRank outputs must still match
// the single-host reference. This is the end-to-end acceptance test of the
// resilience stack: wire framing, sendReliable retransmission, receiver
// dedup, phase and superstep checkpointing, rollback, and degraded
// continuation all firing in one run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "analytics/reference.h"
#include "analytics/resilient.h"
#include "comm/fault.h"
#include "core/dist_graph.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "support/random.h"
#include "support/storage.h"
#include "testutil.h"

namespace cusp {
namespace {

using comm::FaultAction;
using comm::FaultPlan;
using comm::kAnyHost;
using comm::kAnyTag;

class ChaosDir {
 public:
  ChaosDir() {
    char tmpl[] = "/tmp/cusp_chaos_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~ChaosDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

// Seeded message-fault noise: drops, duplicates, delays and corrupted
// frames sprinkled over the whole tag space with assorted repeats.
void addMessageNoise(FaultPlan& plan, uint64_t seed, uint64_t count) {
  support::Rng rng(seed * 0x2545F4914F6CDD1Dull + 11);
  for (uint64_t i = 0; i < count; ++i) {
    comm::MessageFault fault;
    fault.src = kAnyHost;
    fault.dst = kAnyHost;
    fault.tag = kAnyTag;
    fault.occurrence = rng.nextBounded(120);
    fault.repeat = 1 + static_cast<uint32_t>(rng.nextBounded(2));
    switch (rng.nextBounded(4)) {
      case 0:
        fault.action = FaultAction::kDrop;
        break;
      case 1:
        fault.action = FaultAction::kDuplicate;
        break;
      case 2:
        fault.action = FaultAction::kCorrupt;
        break;
      default:
        fault.action = FaultAction::kDelay;
        fault.delayScans = 2 + static_cast<uint32_t>(rng.nextBounded(4));
        break;
    }
    plan.messageFaults.push_back(fault);
  }
}

struct ChaosOutcome {
  core::PartitionResult partitions;
  core::RecoveryReport partitionReport;
};

// Partitioning leg: message noise plus one TRANSIENT crash mid-pipeline,
// recovered through phase checkpoints; the partitions that come out are
// verified against the fault-free run bit for bit.
ChaosOutcome partitionUnderChaos(const graph::GraphFile& file,
                                 const std::string& policyName,
                                 uint32_t hosts, uint64_t seed,
                                 const std::string& checkpointDir) {
  const auto policy = core::makePolicy(policyName);
  core::PartitionerConfig config;
  config.numHosts = hosts;
  const core::PartitionResult baseline =
      core::partitionGraph(file, policy, config);

  auto plan = std::make_shared<FaultPlan>();
  addMessageNoise(*plan, seed, /*count=*/10);
  plan->crashes.push_back({/*host=*/1, /*phase=*/3, /*opsIntoPhase=*/0,
                           /*permanent=*/false});
  config.resilience.faultPlan = plan;
  config.resilience.checkpointDir = checkpointDir;
  config.resilience.enableCheckpoints = true;
  config.resilience.recvTimeoutSeconds = 20.0;

  ChaosOutcome outcome;
  outcome.partitions = core::partitionGraphResilient(
      file, policy, config, &outcome.partitionReport);

  EXPECT_EQ(outcome.partitions.partitions.size(),
            baseline.partitions.size());
  for (size_t h = 0; h < baseline.partitions.size(); ++h) {
    support::SendBuffer a;
    support::SendBuffer b;
    core::serializeDistGraph(a, baseline.partitions[h]);
    core::serializeDistGraph(b, outcome.partitions.partitions[h]);
    EXPECT_EQ(a.release(), b.release())
        << "partition of host " << h << " diverged under chaos";
  }
  EXPECT_GE(outcome.partitionReport.attempts, 2u) << "crash must have fired";
  return outcome;
}

// Analytics leg fault environment: message noise plus one PERMANENT crash;
// degraded mode continues on the survivors from the superstep checkpoints.
analytics::ResilienceOptions chaosAnalyticsOptions(
    uint64_t seed, const std::string& checkpointDir) {
  auto plan = std::make_shared<FaultPlan>();
  addMessageNoise(*plan, seed + 1, /*count=*/10);
  plan->crashes.push_back({/*host=*/2, /*phase=*/0, /*opsIntoPhase=*/30,
                           /*permanent=*/true});
  analytics::ResilienceOptions options;
  options.faultPlan = plan;
  options.checkpointDir = checkpointDir;
  options.enableCheckpoints = true;
  options.checkpointInterval = 2;
  options.buddyReplication = true;
  options.degradedMode = true;
  options.recvTimeoutSeconds = 20.0;
  return options;
}

TEST(ChaosPipelineTest, PartitionThenBfsMatchesReferenceExactly) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1500, 23);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const uint64_t seed = 7;
  const uint32_t hosts = 4;
  ChaosDir dir;

  ChaosOutcome outcome =
      partitionUnderChaos(file, "HVC", hosts, seed, dir.sub("part"));

  const uint64_t source = analytics::maxOutDegreeNode(g);
  analytics::ResilienceOptions options =
      chaosAnalyticsOptions(seed, dir.sub("bfs"));
  analytics::ResilienceReport report;
  const auto got = analytics::runBfsResilient(
      outcome.partitions.partitions, source, options, &report);

  EXPECT_EQ(got, analytics::bfsReference(g, source))
      << "chaos must cost time, never correctness";
  EXPECT_EQ(report.evictions, std::vector<comm::HostId>{2});
  EXPECT_EQ(report.finalAliveHosts, hosts - 1);
  // The schedule's corrupt faults hit real traffic in at least one leg.
  EXPECT_GT(outcome.partitions.volume.corruptionsRecovered +
                report.corruptionsRecovered,
            0u);
}

TEST(ChaosPipelineTest, PartitionThenPageRankMatchesReference) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1500, 23);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const uint64_t seed = 19;
  const uint32_t hosts = 4;
  ChaosDir dir;

  ChaosOutcome outcome =
      partitionUnderChaos(file, "EEC", hosts, seed, dir.sub("part"));

  analytics::PageRankParams params;
  params.maxIterations = 30;
  params.tolerance = 1e-9;
  const auto expected = analytics::pageRankReference(g, params);

  analytics::ResilienceOptions options =
      chaosAnalyticsOptions(seed, dir.sub("pr"));
  analytics::ResilienceReport report;
  const auto got = analytics::runPageRankResilient(
      outcome.partitions.partitions, params, options, &report);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-10) << "node " << i;
  }
  EXPECT_EQ(report.evictions, std::vector<comm::HostId>{2});
  EXPECT_EQ(report.finalAliveHosts, hosts - 1);
}

TEST(ChaosPipelineTest, SeededScheduleSweepStaysExactForBfs) {
  // A small sweep of seeds over the full pipeline: different noise
  // placements, same invariant.
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 900, 31);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const uint64_t source = analytics::maxOutDegreeNode(g);
  const auto expected = analytics::bfsReference(g, source);

  for (uint64_t seed : {101ull, 202ull, 303ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ChaosDir dir;
    ChaosOutcome outcome =
        partitionUnderChaos(file, "CVC", 4, seed, dir.sub("part"));
    analytics::ResilienceOptions options =
        chaosAnalyticsOptions(seed, dir.sub("bfs"));
    analytics::ResilienceReport report;
    const auto got = analytics::runBfsResilient(
        outcome.partitions.partitions, source, options, &report);
    EXPECT_EQ(got, expected);
    EXPECT_EQ(report.finalAliveHosts, 3u);
  }
}

TEST(ChaosPipelineTest, CombinedStorageStragglerNetworkChaosStaysExact) {
  // The everything-at-once acceptance run: an 8-host partition + BFS
  // pipeline under (a) seeded network noise with drops, duplicates, delays
  // and corrupted frames, (b) torn checkpoint writes hitting both legs'
  // stores, (c) one transient crash mid-partitioning that forces a restore
  // over the damaged store, and (d) one host running at a sustained 10x
  // slowdown through the analytics leg. The output must be bit-identical
  // to the clean run, the straggler must be evicted through the hard
  // deadline within the algorithm's own superstep budget, and the whole
  // story must be visible in the observability counters.
  const graph::CsrGraph g = graph::generateErdosRenyi(400, 2200, 61);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const uint32_t hosts = 8;
  const auto policy = core::makePolicy("EEC");
  core::PartitionerConfig cleanConfig;
  cleanConfig.numHosts = hosts;
  const core::PartitionResult baseline =
      core::partitionGraph(file, policy, cleanConfig);
  const uint64_t source = analytics::maxOutDegreeNode(g);
  const auto expected = analytics::bfsReference(g, source);
  uint64_t maxLevel = 0;
  for (uint64_t d : expected) {
    if (d != UINT64_MAX) {
      maxLevel = std::max(maxLevel, d);
    }
  }

  ChaosDir dir;
  obs::ScopedObservability obsScope;
  // Torn checkpoint writes: every third matching commit from the third on
  // silently truncates to 16 bytes, in both the partitioner's and the
  // analytics stores. CRC/size validation must keep them out of recovery.
  support::StorageFaultPlan storagePlan;
  storagePlan.faults.push_back(
      support::StorageFault{support::StorageFaultKind::kTornWrite, ".ckpt",
                            /*occurrence=*/2, /*repeat=*/3,
                            /*tornBytes=*/16});
  support::ScopedStorageFaults storage(storagePlan);

  core::PartitionerConfig config;
  config.numHosts = hosts;
  auto partPlan = std::make_shared<FaultPlan>();
  addMessageNoise(*partPlan, /*seed=*/61, /*count=*/12);
  partPlan->crashes.push_back({/*host=*/1, /*phase=*/3, /*opsIntoPhase=*/0,
                               /*permanent=*/false});
  config.resilience.faultPlan = partPlan;
  config.resilience.checkpointDir = dir.sub("part");
  config.resilience.enableCheckpoints = true;
  config.resilience.recvTimeoutSeconds = 30.0;
  core::RecoveryReport partReport;
  const core::PartitionResult chaosParts =
      core::partitionGraphResilient(file, policy, config, &partReport);
  ASSERT_EQ(chaosParts.partitions.size(), baseline.partitions.size());
  for (size_t h = 0; h < baseline.partitions.size(); ++h) {
    support::SendBuffer a;
    support::SendBuffer b;
    core::serializeDistGraph(a, baseline.partitions[h]);
    core::serializeDistGraph(b, chaosParts.partitions[h]);
    EXPECT_EQ(a.release(), b.release())
        << "partition of host " << h << " diverged under combined chaos";
  }
  EXPECT_GE(partReport.attempts, 2u) << "transient crash must have fired";

  analytics::ResilienceOptions options;
  options.checkpointDir = dir.sub("bfs");
  options.enableCheckpoints = true;
  options.checkpointInterval = 1;
  options.buddyReplication = true;
  options.degradedMode = true;
  options.recvTimeoutSeconds = 60.0;
  auto bfsPlan = std::make_shared<FaultPlan>();
  addMessageNoise(*bfsPlan, /*seed=*/62, /*count=*/10);
  // Host 5 runs every network op 10x slower, paced at 90 ms per crossing —
  // a straggler, not a crash: it keeps answering, just far too slowly.
  bfsPlan->slowdowns.push_back(
      comm::HostSlowdown{/*host=*/5, /*factor=*/10.0, /*opMicros=*/10000,
                         /*fromPhase=*/0});
  options.faultPlan = bfsPlan;
  options.straggler.softDeadlineSeconds = 0.02;
  options.straggler.hardDeadlineSeconds = 1.0;
  options.straggler.hardDeadlineMedianFactor = 4.0;

  analytics::ResilienceReport report;
  const auto got =
      analytics::runBfsResilient(chaosParts.partitions, source, options,
                                 &report);
  EXPECT_EQ(got, expected) << "combined chaos must never cost correctness";
  ASSERT_EQ(report.evictions, std::vector<comm::HostId>{5});
  EXPECT_EQ(report.finalAliveHosts, hosts - 1);
  ASSERT_FALSE(report.failureKinds.empty());
  EXPECT_EQ(report.failureKinds[0], "StragglerDeadline");
  // Bounded eviction: condemnation lands within a couple of attempts and
  // the surviving cohort finishes inside the algorithm's superstep budget.
  EXPECT_LE(report.failures.size(), 2u);
  EXPECT_LE(report.supersteps, static_cast<uint32_t>(maxLevel) + 3u);

  EXPECT_GE(storage.stats().tornWrites, 1u)
      << "the torn-write schedule must have hit a checkpoint commit";
  const auto snap = obsScope.sink().metrics->snapshot();
  EXPECT_GE(snap.counterValue("cusp.straggler.hard_evictions",
                              {{"host", "5"}}),
            1u);
  EXPECT_GE(snap.counterValue("cusp.straggler.soft_reports",
                              {{"host", "5"}}),
            1u);
}

}  // namespace
}  // namespace cusp
