// Unit tests for the in-memory CSR graph substrate and generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "testutil.h"

namespace cusp::graph {
namespace {

// ---------------------------------------------------------------------------
// CsrGraph construction and accessors
// ---------------------------------------------------------------------------

TEST(CsrGraphTest, FromEdgesBuildsCorrectAdjacency) {
  std::vector<Edge> edges = {{1, 0, 0}, {0, 2, 0}, {0, 1, 0}, {2, 1, 0}};
  const auto g = CsrGraph::fromEdges(3, edges);
  EXPECT_EQ(g.numNodes(), 3u);
  EXPECT_EQ(g.numEdges(), 4u);
  EXPECT_EQ(g.outDegree(0), 2u);
  EXPECT_EQ(g.outDegree(1), 1u);
  EXPECT_EQ(g.outDegree(2), 1u);
  // Stable within a source: 0->2 appears before 0->1 (input order).
  const auto n0 = g.outNeighbors(0);
  EXPECT_EQ(n0[0], 2u);
  EXPECT_EQ(n0[1], 1u);
}

TEST(CsrGraphTest, EmptyGraph) {
  const auto g = CsrGraph::fromEdges(0, std::vector<Edge>{});
  EXPECT_EQ(g.numNodes(), 0u);
  EXPECT_EQ(g.numEdges(), 0u);
}

TEST(CsrGraphTest, NodesWithoutEdges) {
  const auto g = CsrGraph::fromEdges(5, std::vector<Edge>{{1, 3, 0}});
  EXPECT_EQ(g.numNodes(), 5u);
  EXPECT_EQ(g.outDegree(0), 0u);
  EXPECT_EQ(g.outDegree(4), 0u);
  EXPECT_TRUE(g.outNeighbors(0).empty());
}

TEST(CsrGraphTest, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(CsrGraph::fromEdges(2, std::vector<Edge>{{0, 2, 0}}),
               std::invalid_argument);
  EXPECT_THROW(CsrGraph::fromEdges(2, std::vector<Edge>{{5, 0, 0}}),
               std::invalid_argument);
}

TEST(CsrGraphTest, RejectsMalformedRawArrays) {
  EXPECT_THROW(CsrGraph({}, {}), std::invalid_argument);
  EXPECT_THROW(CsrGraph({0, 2}, {0}), std::invalid_argument);       // frame
  EXPECT_THROW(CsrGraph({0, 2, 1}, {0, 0}), std::invalid_argument); // sorted
  EXPECT_THROW(CsrGraph({0, 1}, {5}), std::invalid_argument);       // range
  EXPECT_THROW(CsrGraph({0, 1}, {0}, {1, 2}), std::invalid_argument);
}

TEST(CsrGraphTest, EdgeDataKeptWhenRequested) {
  std::vector<Edge> edges = {{0, 1, 7}, {1, 0, 9}};
  const auto with = CsrGraph::fromEdges(2, edges, true);
  EXPECT_TRUE(with.hasEdgeData());
  EXPECT_EQ(with.edgeData(with.edgeBegin(0)), 7u);
  const auto without = CsrGraph::fromEdges(2, edges, false);
  EXPECT_FALSE(without.hasEdgeData());
  EXPECT_EQ(without.edgeData(0), 0u);
}

TEST(CsrGraphTest, ToEdgesRoundTrips) {
  const auto g = generateErdosRenyi(50, 200, 1);
  const auto edges = g.toEdges();
  const auto rebuilt = CsrGraph::fromEdges(50, edges);
  EXPECT_EQ(g, rebuilt);
}

// ---------------------------------------------------------------------------
// Transpose
// ---------------------------------------------------------------------------

TEST(TransposeTest, ReversesEdges) {
  const auto g = makePath(4);  // 0->1->2->3
  const auto t = g.transpose();
  EXPECT_EQ(t.outDegree(0), 0u);
  EXPECT_EQ(t.outDegree(1), 1u);
  EXPECT_EQ(t.outNeighbors(1)[0], 0u);
  EXPECT_EQ(t.outNeighbors(3)[0], 2u);
}

TEST(TransposeTest, DoubleTransposeIsIdentityOnSortedRows) {
  // fromEdges with sorted input yields sorted rows, for which transpose is
  // an involution.
  auto edges = generateErdosRenyi(80, 400, 3).toEdges();
  std::sort(edges.begin(), edges.end());
  const auto g = CsrGraph::fromEdges(80, edges);
  EXPECT_EQ(g.transpose().transpose(), g);
}

TEST(TransposeTest, PreservesEdgeData) {
  std::vector<Edge> edges = {{0, 1, 11}, {2, 1, 22}};
  const auto g = CsrGraph::fromEdges(3, edges, true);
  const auto t = g.transpose();
  ASSERT_EQ(t.outDegree(1), 2u);
  EXPECT_EQ(t.edgeData(t.edgeBegin(1)), 11u);
  EXPECT_EQ(t.edgeData(t.edgeBegin(1) + 1), 22u);
}

TEST(TransposeTest, EdgeCountConserved) {
  const auto g = generateWebCrawl({.numNodes = 300, .avgOutDegree = 6.0, .seed = 2});
  EXPECT_EQ(g.transpose().numEdges(), g.numEdges());
}

// ---------------------------------------------------------------------------
// Symmetrize & stats
// ---------------------------------------------------------------------------

TEST(SimpleSymmetrizeTest, DropsSelfLoopsAndDuplicates) {
  const auto g = testutil::awkwardGraph();  // has a self loop and a dup edge
  const auto s = g.simpleSymmetrized();
  auto edges = s.toEdges();
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
  for (const Edge& e : edges) {
    EXPECT_NE(e.src, e.dst);
    // Every edge has its reverse.
    EXPECT_TRUE(std::binary_search(edges.begin(), edges.end(),
                                   Edge{e.dst, e.src, 0}));
  }
}

TEST(SymmetrizeTest, DoublesEdgesAndContainsBothDirections) {
  const auto g = makePath(3);
  const auto s = g.symmetrized();
  EXPECT_EQ(s.numEdges(), 2 * g.numEdges());
  auto edges = s.toEdges();
  std::sort(edges.begin(), edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{1, 0, 0}),
            edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{0, 1, 0}),
            edges.end());
}

TEST(StatsTest, CountsDegreesAndIsolatedNodes) {
  const auto g = testutil::awkwardGraph();
  const auto stats = computeStats(g);
  EXPECT_EQ(stats.numNodes, 8u);
  EXPECT_EQ(stats.numEdges, 9u);
  EXPECT_EQ(stats.numIsolatedNodes, 3u);  // 3, 4, 7
  EXPECT_EQ(stats.maxOutDegree, 3u);  // node 0: 0->1, 0->2, 0->1 (dup)
  EXPECT_EQ(stats.maxInDegree, 2u);
}

TEST(StatsTest, StarDegrees) {
  const auto stats = computeStats(makeStar(10));
  EXPECT_EQ(stats.maxOutDegree, 10u);
  EXPECT_EQ(stats.maxInDegree, 1u);
  EXPECT_EQ(stats.numIsolatedNodes, 0u);
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(GeneratorsTest, StructuredShapes) {
  EXPECT_EQ(makePath(10).numEdges(), 9u);
  EXPECT_EQ(makeCycle(10).numEdges(), 10u);
  EXPECT_EQ(makeStar(10).numEdges(), 10u);
  EXPECT_EQ(makeComplete(5).numEdges(), 20u);
  EXPECT_EQ(makeGrid(3, 4).numEdges(), 3 * 3 + 2 * 4);
  EXPECT_EQ(makeGrid(3, 4).numNodes(), 12u);
}

TEST(GeneratorsTest, RmatDeterministicAndSized) {
  RmatParams params;
  params.scale = 9;
  params.numEdges = 4000;
  params.seed = 5;
  const auto a = generateRmat(params);
  const auto b = generateRmat(params);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.numNodes(), 1u << 9);
  EXPECT_EQ(a.numEdges(), 4000u);
  params.seed = 6;
  EXPECT_NE(generateRmat(params), a);
}

TEST(GeneratorsTest, RmatIsSkewed) {
  RmatParams params;
  params.scale = 10;
  params.numEdges = 16'000;
  const auto stats = computeStats(generateRmat(params));
  // graph500 weights concentrate mass heavily; max degree far above mean.
  EXPECT_GT(static_cast<double>(stats.maxOutDegree),
            5.0 * stats.avgOutDegree);
}

TEST(GeneratorsTest, RmatOptionsRespected) {
  RmatParams params;
  params.scale = 6;
  params.numEdges = 2000;
  params.removeSelfLoops = true;
  const auto g = generateRmat(params);
  for (const Edge& e : g.toEdges()) {
    EXPECT_NE(e.src, e.dst);
  }
  params.dedupe = true;
  const auto d = generateRmat(params);
  auto edges = d.toEdges();
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
}

TEST(GeneratorsTest, RmatValidatesParameters) {
  RmatParams params;
  params.a = 0.9;  // weights no longer sum to 1
  EXPECT_THROW(generateRmat(params), std::invalid_argument);
  RmatParams params2;
  params2.scale = 0;
  EXPECT_THROW(generateRmat(params2), std::invalid_argument);
}

TEST(GeneratorsTest, WebCrawlHasWebLikeShape) {
  WebCrawlParams params;
  params.numNodes = 5000;
  params.avgOutDegree = 20.0;
  params.seed = 10;
  const auto g = generateWebCrawl(params);
  const auto stats = computeStats(g);
  EXPECT_EQ(stats.numNodes, 5000u);
  // Mean out-degree near request.
  EXPECT_NEAR(stats.avgOutDegree, 20.0, 8.0);
  // Web-crawl signature (paper Table III): max in-degree far above max
  // out-degree.
  EXPECT_GT(stats.maxInDegree, 4 * stats.maxOutDegree);
}

TEST(GeneratorsTest, WebCrawlDeterministic) {
  WebCrawlParams params;
  params.numNodes = 500;
  params.seed = 3;
  EXPECT_EQ(generateWebCrawl(params), generateWebCrawl(params));
}

TEST(GeneratorsTest, WebCrawlValidatesParameters) {
  WebCrawlParams params;
  params.localFraction = 1.5;
  EXPECT_THROW(generateWebCrawl(params), std::invalid_argument);
}

TEST(GeneratorsTest, ErdosRenyiSizedAndDeterministic) {
  const auto g = generateErdosRenyi(100, 700, 9);
  EXPECT_EQ(g.numNodes(), 100u);
  EXPECT_EQ(g.numEdges(), 700u);
  EXPECT_EQ(g, generateErdosRenyi(100, 700, 9));
  EXPECT_THROW(generateErdosRenyi(0, 5, 1), std::invalid_argument);
}

TEST(GeneratorsTest, RandomWeightsInRange) {
  const auto g = withRandomWeights(makeCycle(50), 7, 13);
  EXPECT_TRUE(g.hasEdgeData());
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    EXPECT_GE(g.edgeData(e), 1u);
    EXPECT_LE(g.edgeData(e), 7u);
  }
  EXPECT_THROW(withRandomWeights(makeCycle(3), 0, 1), std::invalid_argument);
}

TEST(GeneratorsTest, BarabasiAlbertShapeAndSkew) {
  const auto g = graph::generateBarabasiAlbert(3000, 3, 7);
  EXPECT_EQ(g.numNodes(), 3000u);
  EXPECT_EQ(g.numEdges(), (3000u - 1) * 3);
  const auto stats = computeStats(g);
  // Preferential attachment: early vertices accumulate in-degree far above
  // the mean (power-law tail).
  EXPECT_GT(stats.maxInDegree, 20 * 3u);
  EXPECT_EQ(g, graph::generateBarabasiAlbert(3000, 3, 7)) << "deterministic";
  EXPECT_THROW(graph::generateBarabasiAlbert(10, 0, 1),
               std::invalid_argument);
}

TEST(GeneratorsTest, WattsStrogatzLatticeAndRewiring) {
  // p = 0: the pure ring lattice, fully regular.
  const auto lattice = graph::generateWattsStrogatz(100, 2, 0.0, 3);
  EXPECT_EQ(lattice.numEdges(), 200u);
  for (uint64_t v = 0; v < 100; ++v) {
    EXPECT_EQ(lattice.outDegree(v), 2u);
    EXPECT_EQ(lattice.outNeighbors(v)[0], (v + 1) % 100);
    EXPECT_EQ(lattice.outNeighbors(v)[1], (v + 2) % 100);
  }
  // p = 1: everything rewired; degrees stay regular but targets scatter.
  const auto random = graph::generateWattsStrogatz(100, 2, 1.0, 3);
  EXPECT_EQ(random.numEdges(), 200u);
  EXPECT_NE(random, lattice);
  EXPECT_THROW(graph::generateWattsStrogatz(10, 1, 1.5, 1),
               std::invalid_argument);
}

TEST(GeneratorsTest, PermuteNodeIdsPreservesStructure) {
  const auto g = withRandomWeights(generateErdosRenyi(200, 1000, 9), 7, 2);
  const auto p = graph::permuteNodeIds(g, 5);
  EXPECT_EQ(p.numNodes(), g.numNodes());
  EXPECT_EQ(p.numEdges(), g.numEdges());
  EXPECT_NE(p, g);
  // Degree multiset is invariant under relabeling.
  std::vector<uint64_t> degG, degP;
  for (uint64_t v = 0; v < g.numNodes(); ++v) {
    degG.push_back(g.outDegree(v));
    degP.push_back(p.outDegree(v));
  }
  std::sort(degG.begin(), degG.end());
  std::sort(degP.begin(), degP.end());
  EXPECT_EQ(degG, degP);
  // Deterministic in the seed.
  EXPECT_EQ(p, graph::permuteNodeIds(g, 5));
}

TEST(GeneratorsTest, StandInCatalogMatchesPaperInputs) {
  const auto& catalog = standInCatalog();
  ASSERT_EQ(catalog.size(), 5u);
  EXPECT_EQ(catalog[0].name, "kron");
  EXPECT_EQ(catalog[4].name, "wdc");
  for (const auto& info : catalog) {
    const auto g = makeStandIn(info.name, 20'000);
    EXPECT_GT(g.numEdges(), 10'000u) << info.name;
    // |E|/|V| tracks the Table III ratio loosely (generators are random).
    const double ratio = static_cast<double>(g.numEdges()) /
                         static_cast<double>(g.numNodes());
    EXPECT_GT(ratio, info.edgesPerNode * 0.4) << info.name;
    EXPECT_LT(ratio, info.edgesPerNode * 2.5) << info.name;
  }
  EXPECT_THROW(makeStandIn("nosuch", 1000), std::invalid_argument);
}

}  // namespace
}  // namespace cusp::graph
