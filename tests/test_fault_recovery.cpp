// Crash-recovery tests: a host crash injected into any of the five
// pipeline phases must recover through partitionGraphResilient and produce
// a DistGraph bit-identical to the fault-free run, whether the re-run
// resumes from checkpoints or restarts from scratch.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "comm/fault.h"
#include "core/checkpoint.h"
#include "core/dist_graph.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "testutil.h"

namespace cusp {
namespace {

using core::DistGraph;
using core::PartitionerConfig;
using core::PartitionResult;
using core::RecoveryReport;

// RAII temp directory for checkpoint files.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cusp_ckpt_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~TempDir() {
    for (uint32_t h = 0; h < 16; ++h) {
      core::removeCheckpoints(path_, h, 5);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> serializedBytes(const DistGraph& part) {
  support::SendBuffer buf;
  core::serializeDistGraph(buf, part);
  return buf.release();
}

void expectBitIdentical(const PartitionResult& baseline,
                        const PartitionResult& recovered) {
  ASSERT_EQ(baseline.partitions.size(), recovered.partitions.size());
  for (size_t h = 0; h < baseline.partitions.size(); ++h) {
    EXPECT_EQ(serializedBytes(baseline.partitions[h]),
              serializedBytes(recovered.partitions[h]))
        << "partition of host " << h << " diverged after recovery";
  }
}

// ---------------------------------------------------------------------------
// Crash sweep: phase x policy x hosts.
// ---------------------------------------------------------------------------

using CrashParam = std::tuple<uint32_t, std::string, uint32_t>;

class CrashRecoverySweep : public ::testing::TestWithParam<CrashParam> {};

TEST_P(CrashRecoverySweep, RecoveredPartitionIsBitIdentical) {
  const auto& [crashPhase, policyName, hosts] = GetParam();
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy(policyName);

  PartitionerConfig config;
  config.numHosts = hosts;

  const PartitionResult baseline = core::partitionGraph(file, policy, config);

  TempDir dir;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/1, /*phase=*/crashPhase, /*opsIntoPhase=*/0});
  config.resilience.faultPlan = plan;
  config.resilience.checkpointDir = dir.path();
  config.resilience.enableCheckpoints = true;
  config.resilience.recvTimeoutSeconds = 20.0;  // backstop against hangs

  RecoveryReport report;
  const PartitionResult recovered =
      core::partitionGraphResilient(file, policy, config, &report);

  expectBitIdentical(baseline, recovered);
  EXPECT_EQ(report.attempts, 2u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].find("crash of host 1"), std::string::npos)
      << report.failures[0];
  EXPECT_NE(report.failures[0].find("phase " + std::to_string(crashPhase)),
            std::string::npos)
      << report.failures[0];
  // Crashing at the entry of phase P leaves checkpoints for 1..P-1 on every
  // host, so the re-run resumes right below the crash.
  EXPECT_EQ(report.resumedFromPhase, crashPhase - 1);
}

std::vector<CrashParam> crashParams() {
  std::vector<CrashParam> params;
  for (uint32_t phase = 1; phase <= 5; ++phase) {
    for (const char* policy : {"EEC", "HVC", "CVC"}) {
      for (uint32_t hosts : {4u, 8u}) {
        params.emplace_back(phase, policy, hosts);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    PhasesPoliciesHosts, CrashRecoverySweep,
    ::testing::ValuesIn(crashParams()),
    [](const ::testing::TestParamInfo<CrashParam>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param) + "_h" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Recovery variants.
// ---------------------------------------------------------------------------

TEST(FaultRecoveryTest, RecoversWithoutCheckpointsByFullRestart) {
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 900, 3);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("HVC");

  PartitionerConfig config;
  config.numHosts = 4;
  const PartitionResult baseline = core::partitionGraph(file, policy, config);

  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back({/*host=*/2, /*phase=*/3, /*opsIntoPhase=*/0});
  config.resilience.faultPlan = plan;
  config.resilience.recvTimeoutSeconds = 20.0;

  RecoveryReport report;
  const PartitionResult recovered =
      core::partitionGraphResilient(file, policy, config, &report);
  expectBitIdentical(baseline, recovered);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.resumedFromPhase, 0u);
}

TEST(FaultRecoveryTest, MidPhaseCrashRecovers) {
  // A crash a few network crossings into the construction phase (not at
  // its entry) still recovers bit-identically.
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("CVC");

  PartitionerConfig config;
  config.numHosts = 4;
  config.messageBufferThreshold = 256;  // many small batches -> crossings
  const PartitionResult baseline = core::partitionGraph(file, policy, config);

  TempDir dir;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back({/*host=*/0, /*phase=*/5, /*opsIntoPhase=*/7});
  config.resilience.faultPlan = plan;
  config.resilience.checkpointDir = dir.path();
  config.resilience.enableCheckpoints = true;
  config.resilience.recvTimeoutSeconds = 20.0;

  RecoveryReport report;
  const PartitionResult recovered =
      core::partitionGraphResilient(file, policy, config, &report);
  expectBitIdentical(baseline, recovered);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.resumedFromPhase, 4u);
}

TEST(FaultRecoveryTest, UnrecoverablePlanSurfacesStructuredError) {
  // More crashes than recovery attempts: the driver gives up and rethrows
  // the last HostFailure instead of hanging or returning garbage.
  const graph::CsrGraph g = graph::generateErdosRenyi(100, 400, 5);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");

  PartitionerConfig config;
  config.numHosts = 4;
  auto plan = std::make_shared<comm::FaultPlan>();
  for (uint32_t i = 0; i < 3; ++i) {
    plan->crashes.push_back({/*host=*/1, /*phase=*/1, /*opsIntoPhase=*/0});
  }
  config.resilience.faultPlan = plan;
  config.resilience.maxRecoveryAttempts = 2;
  config.resilience.recvTimeoutSeconds = 20.0;

  RecoveryReport report;
  EXPECT_THROW(core::partitionGraphResilient(file, policy, config, &report),
               comm::HostFailure);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.failures.size(), 2u);
}

TEST(FaultRecoveryTest, DropsAndDuplicatesAreTransparent) {
  // Message-level faults alone (no crash) are absorbed by sendReliable and
  // receiver-side dedup: same bits, no recovery attempt consumed.
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 900, 3);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("HVC");

  PartitionerConfig config;
  config.numHosts = 4;
  const PartitionResult baseline = core::partitionGraph(file, policy, config);

  auto plan = std::make_shared<comm::FaultPlan>();
  plan->messageFaults.push_back({comm::kAnyHost, comm::kAnyHost,
                                 comm::kAnyTag, /*occurrence=*/3,
                                 /*repeat=*/2, comm::FaultAction::kDrop});
  plan->messageFaults.push_back({comm::kAnyHost, comm::kAnyHost,
                                 comm::kAnyTag, /*occurrence=*/10,
                                 /*repeat=*/3, comm::FaultAction::kDuplicate});
  plan->messageFaults.push_back({comm::kAnyHost, comm::kAnyHost,
                                 comm::kAnyTag, /*occurrence=*/20,
                                 /*repeat=*/2, comm::FaultAction::kDelay,
                                 /*delayScans=*/3});
  config.resilience.faultPlan = plan;
  config.resilience.recvTimeoutSeconds = 20.0;

  RecoveryReport report;
  const PartitionResult recovered =
      core::partitionGraphResilient(file, policy, config, &report);
  expectBitIdentical(baseline, recovered);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_TRUE(report.failures.empty());
}

// ---------------------------------------------------------------------------
// Checkpoint file format.
// ---------------------------------------------------------------------------

TEST(CheckpointTest, SaveLoadRoundTrip) {
  TempDir dir;
  support::SendBuffer payload;
  support::serializeAll(payload, uint64_t{7}, std::vector<uint32_t>{1, 2, 3});
  core::saveCheckpoint(dir.path(), /*host=*/2, /*numHosts=*/4, /*phase=*/3,
                       payload);

  auto loaded = core::loadCheckpoint(dir.path(), 2, 4, 3);
  ASSERT_TRUE(loaded.has_value());
  support::RecvBuffer buf(std::move(*loaded));
  uint64_t a = 0;
  std::vector<uint32_t> b;
  support::deserializeAll(buf, a, b);
  EXPECT_EQ(a, 7u);
  EXPECT_EQ(b, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(buf.exhausted());
}

TEST(CheckpointTest, IdentityMismatchIsRejected) {
  TempDir dir;
  support::SendBuffer payload;
  support::serialize(payload, uint64_t{1});
  core::saveCheckpoint(dir.path(), 1, 4, 2, payload);
  EXPECT_TRUE(core::loadCheckpoint(dir.path(), 1, 4, 2).has_value());
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 0, 4, 2).has_value());
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 1, 8, 2).has_value());
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 1, 4, 3).has_value());
}

TEST(CheckpointTest, CorruptedFileIsTreatedAsAbsent) {
  TempDir dir;
  support::SendBuffer payload;
  support::serialize(payload, std::vector<uint64_t>(64, 9));
  core::saveCheckpoint(dir.path(), 0, 2, 4, payload);

  const std::string path = core::checkpointPath(dir.path(), 0, 4);
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);  // flip a payload byte
  int c = std::fgetc(f);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);

  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 0, 2, 4).has_value());
  EXPECT_EQ(core::latestValidCheckpoint(dir.path(), 0, 2, 5), 0u);
}

TEST(CheckpointTest, LatestValidCheckpointScansDownward) {
  TempDir dir;
  support::SendBuffer payload;
  support::serialize(payload, uint64_t{1});
  EXPECT_EQ(core::latestValidCheckpoint(dir.path(), 0, 4, 5), 0u);
  core::saveCheckpoint(dir.path(), 0, 4, 1, payload);
  core::saveCheckpoint(dir.path(), 0, 4, 3, payload);
  EXPECT_EQ(core::latestValidCheckpoint(dir.path(), 0, 4, 5), 3u);
  EXPECT_EQ(core::latestValidCheckpoint(dir.path(), 0, 4, 2), 1u);
  core::removeCheckpoints(dir.path(), 0, 5);
  EXPECT_EQ(core::latestValidCheckpoint(dir.path(), 0, 4, 5), 0u);
}

}  // namespace
}  // namespace cusp
