// The partition service layer (src/service/): journal crash consistency,
// engine validation/admission/caching, and the daemon's overload story —
// structured sheds, deadlines, cooperative cancel, retry with backoff,
// job-level fault isolation, graceful drain, and crash-consistent restart.
//
// The acceptance invariants this suite pins down:
//  * every refused submit carries a structured JobError (kind + message) —
//    the daemon never throws at a client and never crashes;
//  * a >=50-job seeded chaos soak under the combined ServiceFaultPlan +
//    comm/storage/memory fault plans runs to completion with every accepted
//    job reaching a terminal state;
//  * a daemon killed mid-soak and restarted on the same journal requeues or
//    reports every journaled job exactly once — no loss, no duplication;
//  * partition sets computed through the service are bit-identical to
//    standalone core::partitionGraph runs, including jobs that recovered
//    from transient comm faults on the way.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "comm/fault.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "service/daemon.h"
#include "support/memory.h"
#include "support/serialize.h"
#include "support/storage.h"

namespace cusp {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cusp_service_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

graph::CsrGraph smallWeightedGraph(uint64_t seed) {
  graph::WebCrawlParams params;
  params.numNodes = 400;
  params.avgOutDegree = 8.0;
  params.seed = seed;
  return graph::withRandomWeights(graph::generateWebCrawl(params), 64, 7);
}

std::shared_ptr<service::Engine> makeEngine(const std::string& workDir = "",
                                            uint32_t hostPoolSize = 16) {
  service::EngineOptions options;
  options.hostPoolSize = hostPoolSize;
  options.workDir = workDir;
  auto engine = std::make_shared<service::Engine>(options);
  engine->registerGraph("web",
                        graph::GraphFile::fromCsr(smallWeightedGraph(13)));
  engine->registerGraph("crawl",
                        graph::GraphFile::fromCsr(smallWeightedGraph(29)));
  return engine;
}

service::JobSpec makeSpec(service::JobType type = service::JobType::kPartition,
                          const std::string& graphId = "web",
                          const std::string& policy = "EEC",
                          uint32_t hosts = 4) {
  service::JobSpec spec;
  spec.type = type;
  spec.graphId = graphId;
  spec.policy = policy;
  spec.numHosts = hosts;
  spec.sourceGid = 3;
  return spec;
}

// A comm plan whose transient crash reliably fires in phase 3 of a 4-host
// partition run (same coordinates the chaos-pipeline suite uses).
std::shared_ptr<const comm::FaultPlan> transientCrashPlan() {
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back({/*host=*/1, /*phase=*/3, /*opsIntoPhase=*/0,
                           /*permanent=*/false});
  return plan;
}

std::vector<uint8_t> serializePartitions(
    const std::vector<core::DistGraph>& parts) {
  support::SendBuffer buf;
  for (const core::DistGraph& part : parts) {
    core::serializeDistGraph(buf, part);
  }
  return buf.release();
}

// ---------------------------------------------------------------------------
// Journal: durable round trip, torn-record tolerance, per-job newest-wins.
// ---------------------------------------------------------------------------

service::JournalRecord makeRecord(uint64_t jobId, service::JournalEvent event,
                                  uint32_t runs = 0) {
  service::JournalRecord rec;
  rec.jobId = jobId;
  rec.event = event;
  rec.spec = makeSpec();
  rec.runs = runs;
  return rec;
}

TEST(ServiceJournalTest, RecoversNewestValidRecordPerJob) {
  TempDir dir;
  {
    service::Journal journal(dir.path());
    journal.append(makeRecord(1, service::JournalEvent::kSubmitted));
    journal.append(makeRecord(1, service::JournalEvent::kStarted, 1));
    journal.append(makeRecord(1, service::JournalEvent::kSucceeded, 1));
    journal.append(makeRecord(2, service::JournalEvent::kSubmitted));
    journal.append(makeRecord(3, service::JournalEvent::kSubmitted));
    journal.append(makeRecord(3, service::JournalEvent::kStarted, 1));
  }
  service::Journal reopened(dir.path());
  std::map<uint64_t, service::JournalRecord> byJob;
  for (const auto& rec : reopened.recovered()) {
    ASSERT_EQ(byJob.count(rec.jobId), 0u)
        << "job " << rec.jobId << " recovered twice";
    byJob[rec.jobId] = rec;
  }
  ASSERT_EQ(byJob.size(), 3u);
  EXPECT_EQ(byJob[1].event, service::JournalEvent::kSucceeded);
  EXPECT_EQ(byJob[1].runs, 1u);
  EXPECT_EQ(byJob[2].event, service::JournalEvent::kSubmitted);
  EXPECT_EQ(byJob[3].event, service::JournalEvent::kStarted);
  // The spec's plain fields survive the round trip.
  EXPECT_EQ(byJob[1].spec.graphId, "web");
  EXPECT_EQ(byJob[1].spec.policy, "EEC");
  EXPECT_EQ(byJob[1].spec.numHosts, 4u);
  EXPECT_EQ(byJob[1].spec.type, service::JobType::kPartition);
}

TEST(ServiceJournalTest, TornNewestRecordFallsBackToPreviousValid) {
  TempDir dir;
  {
    service::Journal journal(dir.path());
    journal.append(makeRecord(7, service::JournalEvent::kSubmitted));
    journal.append(makeRecord(7, service::JournalEvent::kSucceeded, 1));
  }
  // Tear the newest record (highest sequence number) mid-file: recovery
  // must drop it and fall back to the submitted record — i.e. requeue.
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  ASSERT_EQ(files.size(), 2u);
  const std::string& newest = files.back();
  const auto size = std::filesystem::file_size(newest);
  std::filesystem::resize_file(newest, size / 2);

  service::Journal reopened(dir.path());
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered()[0].jobId, 7u);
  EXPECT_EQ(reopened.recovered()[0].event, service::JournalEvent::kSubmitted);
}

TEST(ServiceJournalTest, CorruptPayloadIsRejectedByChecksum) {
  TempDir dir;
  {
    service::Journal journal(dir.path());
    journal.append(makeRecord(5, service::JournalEvent::kSubmitted));
  }
  std::string file;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    file = entry.path().string();
  }
  ASSERT_FALSE(file.empty());
  // Flip one payload byte; the CRC32 footer must reject the record, and a
  // job with no valid record at all was never durably acknowledged.
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    char byte = 0;
    f.seekg(4);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(4);
    f.write(&byte, 1);
  }
  service::Journal reopened(dir.path());
  EXPECT_TRUE(reopened.recovered().empty());
}

TEST(ServiceJournalTest, SequenceNumbersContinueAcrossReopen) {
  TempDir dir;
  {
    service::Journal journal(dir.path());
    journal.append(makeRecord(4, service::JournalEvent::kSubmitted));
    journal.append(makeRecord(4, service::JournalEvent::kStarted, 1));
  }
  {
    service::Journal reopened(dir.path());
    // An append after reopen must not overwrite the old records' files.
    reopened.append(makeRecord(4, service::JournalEvent::kSucceeded, 1));
  }
  service::Journal last(dir.path());
  ASSERT_EQ(last.recovered().size(), 1u);
  EXPECT_EQ(last.recovered()[0].event, service::JournalEvent::kSucceeded);
  EXPECT_EQ(
      std::distance(std::filesystem::directory_iterator(dir.path()),
                    std::filesystem::directory_iterator{}),
      3);
}

// ---------------------------------------------------------------------------
// Engine: structured validation, memory admission, partition cache.
// ---------------------------------------------------------------------------

TEST(ServiceEngineTest, ValidateReturnsStructuredRejections) {
  auto engine = makeEngine("", /*hostPoolSize=*/8);

  EXPECT_EQ(engine->validate(makeSpec()).kind, service::JobErrorKind::kNone);

  auto unknownGraph = makeSpec();
  unknownGraph.graphId = "no-such-graph";
  EXPECT_EQ(engine->validate(unknownGraph).kind,
            service::JobErrorKind::kUnknownGraph);

  auto unknownPolicy = makeSpec();
  unknownPolicy.policy = "NOT-A-POLICY";
  EXPECT_EQ(engine->validate(unknownPolicy).kind,
            service::JobErrorKind::kUnknownPolicy);

  auto zeroHosts = makeSpec();
  zeroHosts.numHosts = 0;
  EXPECT_EQ(engine->validate(zeroHosts).kind,
            service::JobErrorKind::kBadRequest);

  auto overPool = makeSpec();
  overPool.numHosts = 9;  // pool is 8
  EXPECT_EQ(engine->validate(overPool).kind,
            service::JobErrorKind::kBadRequest);

  auto badSource = makeSpec(service::JobType::kBfs);
  badSource.sourceGid = 1'000'000;
  EXPECT_EQ(engine->validate(badSource).kind,
            service::JobErrorKind::kBadRequest);

  auto badType = makeSpec();
  badType.type = static_cast<service::JobType>(99);
  EXPECT_EQ(engine->validate(badType).kind,
            service::JobErrorKind::kBadRequest);

  // Every rejection names its cause.
  EXPECT_FALSE(engine->validate(unknownGraph).message.empty());
  EXPECT_FALSE(engine->validate(overPool).message.empty());
}

TEST(ServiceEngineTest, SsspRequiresWeights) {
  auto engine = makeEngine();
  graph::WebCrawlParams params;
  params.numNodes = 100;
  params.avgOutDegree = 4.0;
  params.seed = 3;
  engine->registerGraph(
      "plain", graph::GraphFile::fromCsr(graph::generateWebCrawl(params)));
  auto spec = makeSpec(service::JobType::kSssp, "plain");
  EXPECT_EQ(engine->validate(spec).kind, service::JobErrorKind::kBadRequest);
  EXPECT_EQ(engine->validate(makeSpec(service::JobType::kSssp)).kind,
            service::JobErrorKind::kNone);
}

TEST(ServiceEngineTest, AdmissionShedsAgainstTightBudgetOnly) {
  auto engine = makeEngine();
  const auto spec = makeSpec();
  EXPECT_GT(engine->estimateFootprintBytes(spec), 0u);
  // No budget attached: everything is admitted.
  EXPECT_FALSE(engine->admit(spec).has_value());
  {
    // A 1 MB budget cannot fit the >= 4 MB per-host overhead estimate.
    support::ScopedMemoryBudget budget(1ull << 20);
    const auto refused = engine->admit(spec);
    ASSERT_TRUE(refused.has_value());
    EXPECT_EQ(refused->kind, service::JobErrorKind::kShedMemory);
    EXPECT_FALSE(refused->message.empty());
  }
  EXPECT_FALSE(engine->admit(spec).has_value());
}

TEST(ServiceEngineTest, PartitionCacheIsKeyedAndShared) {
  auto engine = makeEngine();
  auto cancel = std::make_shared<support::CancelToken>();
  const auto spec = makeSpec();

  const auto first = engine->run(spec, /*jobId=*/1, cancel);
  EXPECT_FALSE(first.partitionCacheHit);
  const auto second = engine->run(spec, /*jobId=*/2, cancel);
  EXPECT_TRUE(second.partitionCacheHit);
  EXPECT_EQ(first.partitions.get(), second.partitions.get());

  // Analytics on the same key rides the cache; a different key misses.
  const auto bfs = engine->run(makeSpec(service::JobType::kBfs), 3, cancel);
  EXPECT_TRUE(bfs.partitionCacheHit);
  EXPECT_FALSE(bfs.intValues.empty());
  const auto other =
      engine->run(makeSpec(service::JobType::kPartition, "crawl"), 4, cancel);
  EXPECT_FALSE(other.partitionCacheHit);

  EXPECT_EQ(engine->cacheHits(), 2u);
  EXPECT_EQ(engine->cacheMisses(), 2u);
  EXPECT_NE(engine->cachedPartitions("web", "EEC", 4), nullptr);
  EXPECT_EQ(engine->cachedPartitions("web", "EEC", 8), nullptr);
}

// ---------------------------------------------------------------------------
// Daemon: mixed workloads, structured sheds, deadlines, cancel, isolation.
// ---------------------------------------------------------------------------

TEST(ServiceDaemonTest, MixedJobsRunToSuccess) {
  auto engine = makeEngine();
  service::DaemonOptions options;
  options.workers = 3;
  service::Daemon daemon(engine, options);

  const service::JobType types[] = {
      service::JobType::kPartition, service::JobType::kBfs,
      service::JobType::kSssp, service::JobType::kCc,
      service::JobType::kPageRank};
  std::vector<uint64_t> ids;
  for (const auto type : types) {
    for (const char* graphId : {"web", "crawl"}) {
      const auto outcome = daemon.submit(makeSpec(type, graphId));
      ASSERT_TRUE(outcome.accepted) << outcome.error.message;
      ids.push_back(outcome.jobId);
    }
  }
  for (uint64_t id : ids) {
    const auto result = daemon.wait(id);
    EXPECT_EQ(result.state, service::JobState::kSucceeded)
        << "job " << id << ": " << result.error.message;
    EXPECT_GT(result.latencySeconds, 0.0);
    if (result.spec.type == service::JobType::kBfs ||
        result.spec.type == service::JobType::kSssp ||
        result.spec.type == service::JobType::kCc) {
      EXPECT_FALSE(result.intValues.empty());
    }
    if (result.spec.type == service::JobType::kPageRank) {
      EXPECT_FALSE(result.doubleValues.empty());
    }
  }
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.accepted, ids.size());
  EXPECT_EQ(stats.succeeded, ids.size());
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ServiceDaemonTest, MalformedRequestsBounceWithExactKinds) {
  auto engine = makeEngine();
  service::Daemon daemon(engine);

  auto unknownGraph = makeSpec();
  unknownGraph.graphId = "ghost";
  auto o1 = daemon.submit(unknownGraph);
  EXPECT_FALSE(o1.accepted);
  EXPECT_EQ(o1.error.kind, service::JobErrorKind::kUnknownGraph);
  EXPECT_EQ(o1.jobId, 0u);

  auto unknownPolicy = makeSpec();
  unknownPolicy.policy = "GHOST";
  auto o2 = daemon.submit(unknownPolicy);
  EXPECT_FALSE(o2.accepted);
  EXPECT_EQ(o2.error.kind, service::JobErrorKind::kUnknownPolicy);

  // The daemon is unharmed: a clean job still runs.
  const auto ok = daemon.submit(makeSpec());
  ASSERT_TRUE(ok.accepted);
  EXPECT_EQ(daemon.wait(ok.jobId).state, service::JobState::kSucceeded);
  EXPECT_EQ(daemon.stats().rejected, 2u);
}

TEST(ServiceDaemonTest, ZeroDepthQueueShedsEverySubmit) {
  auto engine = makeEngine();
  service::DaemonOptions options;
  options.maxQueueDepth = 0;
  service::Daemon daemon(engine, options);
  const auto outcome = daemon.submit(makeSpec());
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.error.kind, service::JobErrorKind::kShedQueueFull);
  EXPECT_FALSE(outcome.error.message.empty());
  EXPECT_EQ(daemon.stats().shed, 1u);
}

TEST(ServiceDaemonTest, TightMemoryBudgetShedsAtAdmission) {
  support::ScopedMemoryBudget budget(1ull << 20);
  auto engine = makeEngine();
  service::Daemon daemon(engine);
  const auto outcome = daemon.submit(makeSpec());
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.error.kind, service::JobErrorKind::kShedMemory);
  EXPECT_FALSE(outcome.error.message.empty());
}

TEST(ServiceDaemonTest, DrainStopsAdmissionsAndFinishesAccepted) {
  auto engine = makeEngine();
  service::Daemon daemon(engine);
  const auto accepted = daemon.submit(makeSpec());
  ASSERT_TRUE(accepted.accepted);
  daemon.drain();
  EXPECT_EQ(daemon.wait(accepted.jobId).state, service::JobState::kSucceeded);
  const auto refused = daemon.submit(makeSpec());
  EXPECT_FALSE(refused.accepted);
  EXPECT_EQ(refused.error.kind, service::JobErrorKind::kShedDraining);
}

TEST(ServiceDaemonTest, DeadlineExceededIsStructuredAndCooperative) {
  auto engine = makeEngine();
  service::Daemon daemon(engine);
  auto spec = makeSpec();
  spec.deadlineSeconds = 1e-9;  // expires before any worker can dequeue it
  const auto outcome = daemon.submit(spec);
  ASSERT_TRUE(outcome.accepted);
  const auto result = daemon.wait(outcome.jobId);
  EXPECT_EQ(result.state, service::JobState::kCancelled);
  EXPECT_EQ(result.error.kind, service::JobErrorKind::kDeadlineExceeded);
  // The worker survives to run the next job.
  const auto next = daemon.submit(makeSpec());
  ASSERT_TRUE(next.accepted);
  EXPECT_EQ(daemon.wait(next.jobId).state, service::JobState::kSucceeded);
}

TEST(ServiceDaemonTest, CancelledQueuedJobNeverRuns) {
  auto engine = makeEngine();
  service::DaemonOptions options;
  options.workers = 1;
  service::Daemon daemon(engine, options);
  // One worker: the first job occupies it, the second sits queued long
  // enough for the cancel to land before it starts.
  const auto running = daemon.submit(makeSpec());
  const auto queued =
      daemon.submit(makeSpec(service::JobType::kPartition, "crawl", "CVC"));
  ASSERT_TRUE(running.accepted);
  ASSERT_TRUE(queued.accepted);
  EXPECT_TRUE(daemon.cancel(queued.jobId));
  EXPECT_FALSE(daemon.cancel(99999));  // unknown id

  const auto result = daemon.wait(queued.jobId);
  EXPECT_EQ(result.state, service::JobState::kCancelled);
  EXPECT_EQ(result.error.kind, service::JobErrorKind::kCancelled);
  EXPECT_EQ(daemon.wait(running.jobId).state, service::JobState::kSucceeded);
}

TEST(ServiceDaemonTest, FaultedJobIsRetriedThenIsolated) {
  auto engine = makeEngine();
  service::DaemonOptions options;
  options.workers = 2;
  options.retryBackoffSeconds = 0.0005;
  service::Daemon daemon(engine, options);

  // Zero recovery attempts turns the injected transient crash into a
  // classified failure on every run; maxRetries bounds the daemon's re-runs.
  auto faulty = makeSpec();
  faulty.faultPlan = transientCrashPlan();
  faulty.maxRecoveryAttempts = 0;
  faulty.maxRetries = 1;
  const auto bad = daemon.submit(faulty);
  const auto good =
      daemon.submit(makeSpec(service::JobType::kPartition, "crawl"));
  ASSERT_TRUE(bad.accepted);
  ASSERT_TRUE(good.accepted);

  const auto badResult = daemon.wait(bad.jobId);
  EXPECT_EQ(badResult.state, service::JobState::kFailed);
  EXPECT_EQ(badResult.error.kind,
            service::JobErrorKind::kResilienceExhausted);
  EXPECT_FALSE(badResult.error.message.empty());
  EXPECT_EQ(badResult.runs, 2u);  // first run + one retry

  // Isolation: the sibling job and the daemon are untouched.
  EXPECT_EQ(daemon.wait(good.jobId).state, service::JobState::kSucceeded);
  EXPECT_EQ(daemon.stats().retries, 1u);
}

TEST(ServiceDaemonTest, TransientFaultRecoversInsideTheLadder) {
  auto engine = makeEngine();
  service::Daemon daemon(engine);
  auto spec = makeSpec(service::JobType::kPartition, "web", "CVC");
  spec.faultPlan = transientCrashPlan();
  spec.maxRecoveryAttempts = 4;
  const auto outcome = daemon.submit(spec);
  ASSERT_TRUE(outcome.accepted);
  const auto result = daemon.wait(outcome.jobId);
  EXPECT_EQ(result.state, service::JobState::kSucceeded)
      << result.error.message;
}

TEST(ServiceDaemonTest, BurstFloodsAdmissionDeterministically) {
  auto engine = makeEngine();
  service::DaemonOptions options;
  options.maxQueueDepth = 0;  // every admission decision is a shed
  options.faultPlan.bursts.push_back({/*submitIndex=*/0, /*extraCopies=*/3});
  service::Daemon daemon(engine, options);
  const auto outcome = daemon.submit(makeSpec());
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.error.kind, service::JobErrorKind::kShedQueueFull);
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.submitted, 4u);  // the submit plus three burst copies
  EXPECT_EQ(stats.shed, 4u);
}

TEST(ServiceDaemonTest, DisconnectedClientDoesNotWedgeAWorker) {
  auto engine = makeEngine();
  service::DaemonOptions options;
  options.workers = 1;
  options.faultPlan.disconnects.push_back({/*submitIndex=*/0});
  service::Daemon daemon(engine, options);
  const auto ghost = daemon.submit(makeSpec());
  ASSERT_TRUE(ghost.accepted);
  const auto live = daemon.submit(makeSpec(service::JobType::kBfs));
  ASSERT_TRUE(live.accepted);
  EXPECT_EQ(daemon.wait(ghost.jobId).state, service::JobState::kCancelled);
  EXPECT_EQ(daemon.wait(live.jobId).state, service::JobState::kSucceeded);
}

TEST(ServiceDaemonTest, InjectedMalformedRequestsBounceStructurally) {
  auto engine = makeEngine();
  service::DaemonOptions options;
  options.faultPlan.malformed.push_back(
      {/*submitIndex=*/0, service::MalformKind::kUnknownGraph});
  options.faultPlan.malformed.push_back(
      {/*submitIndex=*/1, service::MalformKind::kZeroHosts});
  service::Daemon daemon(engine, options);
  const auto first = daemon.submit(makeSpec());
  EXPECT_FALSE(first.accepted);
  EXPECT_EQ(first.error.kind, service::JobErrorKind::kUnknownGraph);
  const auto second = daemon.submit(makeSpec());
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.error.kind, service::JobErrorKind::kBadRequest);
  const auto third = daemon.submit(makeSpec());
  ASSERT_TRUE(third.accepted);
  EXPECT_EQ(daemon.wait(third.jobId).state, service::JobState::kSucceeded);
  EXPECT_EQ(daemon.stats().rejected, 2u);
}

// ---------------------------------------------------------------------------
// Bit-identity: the service produces the same partitions as the standalone
// entry point, byte for byte — including after transient-fault recovery.
// ---------------------------------------------------------------------------

TEST(ServiceDaemonTest, PartitionsBitIdenticalToStandaloneRuns) {
  TempDir work;
  auto engine = makeEngine(work.path() + "/scratch");
  service::Daemon daemon(engine);

  struct Case {
    std::string policy;
    bool faulted;
  };
  const Case cases[] = {{"EEC", false}, {"CVC", false}, {"EEC", true}};
  // The faulted EEC run lands on the cache entry of the clean one (same
  // key), so it gets its own host count to force a real faulted pipeline.
  for (const auto& c : cases) {
    auto spec = makeSpec(service::JobType::kPartition, "web", c.policy,
                         c.faulted ? 3u : 4u);
    if (c.faulted) {
      spec.faultPlan = transientCrashPlan();
      spec.maxRecoveryAttempts = 4;
    }
    const auto outcome = daemon.submit(spec);
    ASSERT_TRUE(outcome.accepted) << outcome.error.message;
    const auto result = daemon.wait(outcome.jobId);
    ASSERT_EQ(result.state, service::JobState::kSucceeded)
        << result.error.message;

    const auto cached =
        engine->cachedPartitions("web", c.policy, spec.numHosts);
    ASSERT_NE(cached, nullptr);

    core::PartitionerConfig config;
    config.numHosts = spec.numHosts;
    const auto standalone = core::partitionGraph(
        graph::GraphFile::fromCsr(smallWeightedGraph(13)),
        core::makePolicy(c.policy), config);
    EXPECT_EQ(serializePartitions(*cached),
              serializePartitions(standalone.partitions))
        << c.policy << " hosts=" << spec.numHosts
        << (c.faulted ? " (transient faults)" : " (clean)");
  }
}

// ---------------------------------------------------------------------------
// Chaos soak + crash-consistent restart (the service-label acceptance).
// ---------------------------------------------------------------------------

std::vector<service::JobSpec> soakMix(uint64_t seed, size_t numJobs) {
  const auto policies = core::policyCatalog();
  std::mt19937_64 rng(seed);
  std::vector<service::JobSpec> specs;
  specs.reserve(numJobs);
  for (size_t i = 0; i < numJobs; ++i) {
    service::JobSpec spec;
    spec.type = static_cast<service::JobType>(rng() % 5);
    spec.graphId = rng() % 2 == 0 ? "web" : "crawl";
    spec.policy = policies[rng() % policies.size()];
    spec.numHosts = 4;
    spec.sourceGid = rng() % 64;
    if (rng() % 2 == 0) {
      spec.faultPlan = std::make_shared<const comm::FaultPlan>(
          comm::randomFaultPlan(seed + i, spec.numHosts, 3, 1,
                                /*allowPermanent=*/false));
      spec.maxRecoveryAttempts = 4;
    }
    if (rng() % 4 == 0) {
      spec.memoryFaultPlan = std::make_shared<const support::MemoryFaultPlan>(
          support::randomMemoryFaultPlan(seed + 31 * i, spec.numHosts, 2));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(ServiceSoakTest, FiftyJobChaosSoakSurvivesCombinedFaultPlans) {
  constexpr size_t kJobs = 56;
  TempDir journal;
  obs::ScopedObservability scope;
  support::ScopedMemoryBudget budget(512ull << 20);
  support::ScopedStorageFaults storage(
      support::randomStorageFaultPlan(/*seed=*/91, /*numHosts=*/4, 4));

  auto engine = makeEngine(journal.path() + "/scratch");
  service::DaemonOptions options;
  options.workers = 4;
  options.maxQueueDepth = 16;
  options.journalDir = journal.path() + "/journal";
  options.faultPlan = service::randomServiceFaultPlan(
      /*seed=*/77, kJobs, /*maxBursts=*/2, /*maxDisconnects=*/4,
      /*maxMalformed=*/3);
  service::Daemon daemon(engine, options);

  std::vector<uint64_t> accepted;
  size_t refused = 0;
  for (const auto& spec : soakMix(/*seed=*/101, kJobs)) {
    const auto outcome = daemon.submit(spec);
    if (outcome.accepted) {
      EXPECT_GT(outcome.jobId, 0u);
      accepted.push_back(outcome.jobId);
    } else {
      // Every refusal is structured: a concrete kind plus a message.
      EXPECT_NE(outcome.error.kind, service::JobErrorKind::kNone);
      EXPECT_FALSE(outcome.error.message.empty());
      ++refused;
    }
  }
  size_t succeeded = 0;
  for (uint64_t id : accepted) {
    const auto result = daemon.wait(id);
    EXPECT_TRUE(service::isTerminal(result.state))
        << "job " << id << " stuck in " << jobStateName(result.state);
    if (result.state == service::JobState::kFailed) {
      EXPECT_NE(result.error.kind, service::JobErrorKind::kNone);
      EXPECT_FALSE(result.error.message.empty());
    }
    succeeded += result.state == service::JobState::kSucceeded ? 1 : 0;
  }
  daemon.drain();
  EXPECT_FALSE(daemon.killed());
  EXPECT_GT(succeeded, 0u);
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.accepted, accepted.size());
  EXPECT_GE(stats.submitted, kJobs);  // bursts add copies
  EXPECT_EQ(stats.succeeded + stats.failed + stats.cancelled,
            accepted.size());
}

// Send-aggregation invariance through the whole service stack: the same
// deterministic job mix — transient comm faults included — must produce
// bit-identical accepted-job results whether the engine's networks run the
// default buffered policy, a randomized packet cap, or the receiver-side
// age pull. Stateful policies are excluded for the same reason the fuzz
// suite skips their bit-identity check: their scores synchronize
// asynchronously, so their output is timing-dependent even without faults.
TEST(ServiceSoakTest, AggregationPolicyNeverChangesAcceptedJobResults) {
  constexpr size_t kJobs = 32;
  auto mix = soakMix(/*seed=*/101, kJobs);
  std::vector<service::JobSpec> specs;
  for (auto& spec : mix) {
    const auto policy = core::makePolicy(spec.policy);
    if (policy.master.isPure() && !policy.edge.usesState) {
      // Memory-fault plans ride the chaos soak above; here every
      // divergence must be attributable to the aggregation layer alone.
      spec.memoryFaultPlan = nullptr;
      specs.push_back(std::move(spec));
    }
  }
  ASSERT_GE(specs.size(), 6u);

  struct JobOutcome {
    bool accepted = false;
    service::JobState state = service::JobState::kQueued;
    service::JobErrorKind errorKind = service::JobErrorKind::kNone;
    std::vector<uint64_t> intValues;
    std::vector<double> doubleValues;
    bool operator==(const JobOutcome&) const = default;
  };
  struct SoakOutcome {
    std::vector<JobOutcome> jobs;
    // Serialized partition sets by cache key, for the partition jobs.
    std::map<std::string, std::vector<uint8_t>> partitionSets;
  };

  const auto runSoak = [&](const comm::AggregationPolicy& agg) {
    comm::ScopedAggregation scoped(agg);
    TempDir root;
    auto engine = makeEngine(root.path() + "/scratch");
    service::DaemonOptions options;
    options.workers = 1;  // serial execution: cache hits in program order
    options.maxQueueDepth = 256;
    options.journalDir = root.path() + "/journal";
    service::Daemon daemon(engine, options);
    SoakOutcome out;
    for (const auto& spec : specs) {
      const auto submitted = daemon.submit(spec);
      JobOutcome job;
      job.accepted = submitted.accepted;
      if (submitted.accepted) {
        const auto result = daemon.wait(submitted.jobId);
        job.state = result.state;
        job.errorKind = result.error.kind;
        job.intValues = result.intValues;
        job.doubleValues = result.doubleValues;
        if (spec.type == service::JobType::kPartition &&
            result.state == service::JobState::kSucceeded) {
          const auto cached = engine->cachedPartitions(spec.graphId,
                                                       spec.policy,
                                                       spec.numHosts);
          if (cached != nullptr) {
            out.partitionSets[spec.graphId + "/" + spec.policy] =
                serializePartitions(*cached);
          }
        }
      }
      out.jobs.push_back(std::move(job));
    }
    daemon.drain();
    return out;
  };

  const SoakOutcome baseline = runSoak(comm::AggregationPolicy{});
  std::mt19937_64 rng(4242);
  for (int round = 0; round < 3; ++round) {
    comm::AggregationPolicy agg;
    agg.packetBytes = 64 + rng() % (1 << 14);
    agg.maxAgeSeconds = round == 2 ? 0.01 : 0.0;
    SCOPED_TRACE("packetBytes=" + std::to_string(agg.packetBytes) +
                 " maxAgeSeconds=" + std::to_string(agg.maxAgeSeconds));
    const SoakOutcome probe = runSoak(agg);
    ASSERT_EQ(probe.jobs.size(), baseline.jobs.size());
    for (size_t i = 0; i < baseline.jobs.size(); ++i) {
      EXPECT_TRUE(probe.jobs[i] == baseline.jobs[i]) << "job " << i;
    }
    EXPECT_EQ(probe.partitionSets, baseline.partitionSets);
  }
}

TEST(ServiceSoakTest, KillMidSoakThenRestartLosesAndDuplicatesNothing) {
  constexpr size_t kJobs = 50;
  TempDir root;
  const std::string journalDir = root.path() + "/journal";

  auto engine = makeEngine(root.path() + "/scratch");
  service::DaemonOptions options;
  options.workers = 3;
  options.maxQueueDepth = 256;  // accept everything: the kill is the fault
  options.journalDir = journalDir;
  options.faultPlan.killPoints.push_back(
      {/*afterJournalRecords=*/kJobs + 10});

  std::map<uint64_t, service::JobState> preKill;
  std::set<uint64_t> accepted;
  {
    service::Daemon daemon(engine, options);
    for (const auto& spec : soakMix(/*seed=*/55, kJobs)) {
      const auto outcome = daemon.submit(spec);
      if (outcome.accepted) {
        accepted.insert(outcome.jobId);
      } else {
        // The kill can land mid-submission (workers journal concurrently);
        // submits after it shed with the structured draining error.
        EXPECT_EQ(outcome.error.kind, service::JobErrorKind::kShedDraining)
            << outcome.error.message;
      }
    }
    for (uint64_t id : accepted) {
      // Returns on terminal OR on kill; record what was terminal pre-kill.
      const auto result = daemon.wait(id);
      if (service::isTerminal(result.state)) {
        preKill[id] = result.state;
      }
    }
    EXPECT_TRUE(daemon.killed());
    // The kill point sits far enough in for a healthy accepted prefix.
    ASSERT_GE(accepted.size(), 10u);
  }

  // Restart on the same journal: every accepted job was journaled durably
  // before its ack, so every one must come back — exactly once.
  service::DaemonOptions restartOptions;
  restartOptions.workers = 3;
  restartOptions.maxQueueDepth = 256;
  restartOptions.journalDir = journalDir;
  service::Daemon restarted(engine, restartOptions);

  const auto& recovered = restarted.recoveredJobIds();
  std::set<uint64_t> unique(recovered.begin(), recovered.end());
  EXPECT_EQ(unique.size(), recovered.size()) << "duplicated recovered ids";
  // Exactly the accepted set comes back: acceptance was journaled durably
  // before each ack, and nothing else was ever promised.
  EXPECT_EQ(unique, accepted) << "journaled jobs lost or invented";
  const auto stats = restarted.stats();
  EXPECT_EQ(stats.recoveredRequeued + stats.recoveredTerminal,
            accepted.size());
  EXPECT_GT(stats.recoveredRequeued, 0u)
      << "kill point fired too late to leave unfinished jobs";

  for (uint64_t id : recovered) {
    const auto result = restarted.wait(id);
    EXPECT_TRUE(service::isTerminal(result.state));
    const auto it = preKill.find(id);
    if (it != preKill.end() && result.recovered) {
      // Terminal before the kill and reconstructed from the journal: the
      // restarted daemon reports the same outcome without re-running it.
      EXPECT_EQ(result.state, it->second);
    }
    if (result.state == service::JobState::kFailed) {
      EXPECT_NE(result.error.kind, service::JobErrorKind::kNone);
    }
  }
  restarted.drain();
  EXPECT_FALSE(restarted.killed());
}

}  // namespace
}  // namespace cusp
