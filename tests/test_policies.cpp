// Unit tests of the getMaster / getEdgeOwner rules and the policy factory.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "comm/network.h"
#include "core/policies.h"
#include "core/properties.h"
#include "core/state.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "support/threading.h"

namespace cusp::core {
namespace {

struct RuleHarness {
  explicit RuleHarness(const graph::CsrGraph& g, uint32_t parts)
      : file(graph::GraphFile::fromCsr(g)), prop(file, parts) {}

  uint32_t master(const MasterRule& rule, uint64_t node,
                  const MasterLookup& lookup = {}) {
    ensureState(rule.stateCounters);
    return rule.fn(prop, node, state, lookup);
  }

  uint32_t owner(const EdgeRule& rule, uint64_t src, uint64_t dst,
                 uint32_t srcMaster, uint32_t dstMaster) {
    ensureState(rule.stateCounters);
    return rule.fn(prop, src, dst, srcMaster, dstMaster, state);
  }

  void ensureState(const std::vector<std::string>& counters) {
    if (!stateReady) {
      for (const auto& name : counters) {
        state.registerCounter(name);
      }
      state.initialize(prop.getNumPartitions());
      stateReady = true;
    }
  }

  graph::GraphFile file;
  GraphProperties prop;
  PartitionState state;
  bool stateReady = false;
};

// ---------------------------------------------------------------------------
// GraphProperties
// ---------------------------------------------------------------------------

TEST(GraphPropertiesTest, ExposesGraphShape) {
  const auto g = graph::makeStar(4);
  RuleHarness h(g, 3);
  EXPECT_EQ(h.prop.getNumNodes(), 5u);
  EXPECT_EQ(h.prop.getNumEdges(), 4u);
  EXPECT_EQ(h.prop.getNumPartitions(), 3u);
  EXPECT_EQ(h.prop.getNodeOutDegree(0), 4u);
  EXPECT_EQ(h.prop.getNodeOutDegree(2), 0u);
  EXPECT_EQ(h.prop.getNodeOutEdge(0, 0), 0u);
  EXPECT_EQ(h.prop.getNodeOutEdge(0, 2), 2u);
  EXPECT_EQ(h.prop.getNodeOutNeighbors(0).size(), 4u);
}

// ---------------------------------------------------------------------------
// Contiguous / ContiguousEB
// ---------------------------------------------------------------------------

TEST(ContiguousRule, EqualNodeBlocks) {
  const auto g = graph::makePath(12);
  RuleHarness h(g, 3);
  const auto rule = masterContiguous();
  EXPECT_TRUE(rule.isPure());
  // blockSize = ceil(12/3) = 4.
  for (uint64_t v = 0; v < 12; ++v) {
    EXPECT_EQ(h.master(rule, v), v / 4);
  }
}

TEST(ContiguousRule, LastBlockClamped) {
  const auto g = graph::makePath(10);
  RuleHarness h(g, 3);  // blockSize = 4: nodes 8..9 -> partition 2
  const auto rule = masterContiguous();
  EXPECT_EQ(h.master(rule, 9), 2u);
}

TEST(ContiguousEbRule, BalancesByFirstEdgeId) {
  // Star: node 0 holds all 90 edges; everything with firstEdgeId past the
  // block boundary goes to later partitions.
  const auto g = graph::makeStar(90);
  RuleHarness h(g, 3);
  const auto rule = masterContiguousEB();
  EXPECT_TRUE(rule.isPure());
  EXPECT_EQ(h.master(rule, 0), 0u);
  // All leaves have firstOutEdge == 90 (they have no edges); block size =
  // ceil(91/3) = 31, so floor(90/31) = 2.
  for (uint64_t v = 1; v <= 90; ++v) {
    EXPECT_EQ(h.master(rule, v), 2u);
  }
}

TEST(ContiguousEbRule, CoversAllPartitionsOnUniformGraph) {
  const auto g = graph::makeCycle(100);
  RuleHarness h(g, 4);
  const auto rule = masterContiguousEB();
  std::set<uint32_t> seen;
  for (uint64_t v = 0; v < 100; ++v) {
    seen.insert(h.master(rule, v));
  }
  EXPECT_EQ(seen.size(), 4u);
}

// ---------------------------------------------------------------------------
// Fennel / FennelEB
// ---------------------------------------------------------------------------

TEST(FennelRule, DeclaresStateAndNeighbors) {
  const auto rule = masterFennel();
  EXPECT_TRUE(rule.usesState);
  EXPECT_TRUE(rule.usesNeighborMasters);
  EXPECT_FALSE(rule.isPure());
  EXPECT_EQ(rule.stateCounters, std::vector<std::string>{"nodes"});
}

TEST(FennelRule, PrefersPartitionWithNeighbors) {
  const auto g = graph::makeComplete(6);
  RuleHarness h(g, 3);
  const auto rule = masterFennel();
  // Pretend all of node 0's neighbors are on partition 1.
  MasterLookup lookup = [](uint64_t) -> uint32_t { return 1; };
  EXPECT_EQ(h.master(rule, 0, lookup), 1u);
}

TEST(FennelRule, AvoidsOverloadedPartition) {
  const auto g = graph::makeComplete(6);
  RuleHarness h(g, 2);
  const auto rule = masterFennel();
  h.ensureState(rule.stateCounters);
  // Overload partition 0 heavily; with no neighbor signal the score must
  // pick partition 1.
  h.state.add(h.state.counterId("nodes"), 0, 1000);
  MasterLookup noneAssigned = [](uint64_t) { return kNoMaster; };
  EXPECT_EQ(h.master(rule, 0, noneAssigned), 1u);
}

TEST(FennelRule, UpdatesStateOnAssignment) {
  const auto g = graph::makeComplete(4);
  RuleHarness h(g, 2);
  const auto rule = masterFennel();
  h.ensureState(rule.stateCounters);
  const auto counter = h.state.counterId("nodes");
  MasterLookup none = [](uint64_t) { return kNoMaster; };
  const uint32_t part = h.master(rule, 0, none);
  EXPECT_EQ(h.state.read(counter, part), 1);
}

TEST(FennelEbRule, HighDegreeFallsBackToContiguousEB) {
  FennelParams params;
  params.degreeThreshold = 5;
  const auto g = graph::makeStar(50);  // node 0 degree 50 > 5
  RuleHarness h(g, 2);
  const auto fennelEb = masterFennelEB(params);
  const auto contiguousEb = masterContiguousEB();
  EXPECT_EQ(h.master(fennelEb, 0), h.master(contiguousEb, 0));
}

TEST(FennelEbRule, BalancesLoadIncludingEdges) {
  const auto g = graph::generateErdosRenyi(100, 800, 2);
  RuleHarness h(g, 2);
  const auto rule = masterFennelEB();
  h.ensureState(rule.stateCounters);
  // Overload partition 0's edge counter; new nodes should land on 1.
  h.state.add(h.state.counterId("edges"), 0, 100000);
  h.state.add(h.state.counterId("nodes"), 0, 100);
  MasterLookup none = [](uint64_t) { return kNoMaster; };
  EXPECT_EQ(h.master(rule, 0, none), 1u);
  // And the assignment bumps both counters.
  EXPECT_GE(h.state.read(h.state.counterId("nodes"), 1), 1);
  EXPECT_GE(h.state.read(h.state.counterId("edges"), 1),
            static_cast<int64_t>(h.prop.getNodeOutDegree(0)));
}

// ---------------------------------------------------------------------------
// Hash / LDG master rules
// ---------------------------------------------------------------------------

TEST(HashRule, PureDeterministicAndSpread) {
  const auto g = graph::makeCycle(1000);
  RuleHarness h(g, 8);
  const auto rule = masterHash();
  EXPECT_TRUE(rule.isPure());
  std::vector<uint64_t> perPart(8, 0);
  for (uint64_t v = 0; v < 1000; ++v) {
    const uint32_t a = h.master(rule, v);
    EXPECT_EQ(a, h.master(rule, v));
    ++perPart[a];
  }
  for (uint64_t count : perPart) {
    EXPECT_NEAR(static_cast<double>(count), 125.0, 50.0);
  }
  // Different seeds give different placements.
  const auto other = masterHash(123);
  int same = 0;
  for (uint64_t v = 0; v < 100; ++v) {
    same += h.master(rule, v) == h.master(other, v);
  }
  EXPECT_LT(same, 40);
}

TEST(LdgRule, PrefersNeighborPartitionUntilFull) {
  const auto g = graph::makeComplete(8);
  RuleHarness h(g, 2);
  const auto rule = masterLdg();
  h.ensureState(rule.stateCounters);
  // All neighbors on partition 1 and partition 1 nearly empty: choose 1.
  MasterLookup allOn1 = [](uint64_t) -> uint32_t { return 1; };
  EXPECT_EQ(h.master(rule, 0, allOn1), 1u);
  // Fill partition 1 to capacity (n/k = 4): the capacity weight hits zero
  // and the smaller partition wins despite the neighbors.
  h.state.add(h.state.counterId("nodes"), 1, 4);
  EXPECT_EQ(h.master(rule, 1, allOn1), 0u);
}

TEST(LdgRule, NoNeighborsFallsBackToSmallest) {
  const auto g = graph::makePath(10);
  RuleHarness h(g, 3);
  const auto rule = masterLdg();
  h.ensureState(rule.stateCounters);
  h.state.add(h.state.counterId("nodes"), 0, 5);
  h.state.add(h.state.counterId("nodes"), 1, 2);
  MasterLookup none = [](uint64_t) { return kNoMaster; };
  EXPECT_EQ(h.master(rule, 9, none), 2u);  // node 9 has no out-neighbors
}

// ---------------------------------------------------------------------------
// DBH / HDRF / Greedy edge rules
// ---------------------------------------------------------------------------

TEST(DbhRule, HashesTheLowerDegreeEndpoint) {
  const auto g = graph::makeStar(40);  // node 0: degree 40; leaves: 0
  RuleHarness h(g, 4);
  const auto rule = edgeDbh();
  const auto hashRule = masterHash();
  // Edge (0, leaf): leaf has the smaller degree, so the owner is the
  // leaf's hash — i.e. different leaves land on different partitions.
  for (uint64_t leaf = 1; leaf <= 40; ++leaf) {
    EXPECT_EQ(h.owner(rule, 0, leaf, 9, 9), h.master(hashRule, leaf));
  }
}

TEST(HdrfRule, KeepsLowDegreeEndpointLocal) {
  // Hub 0 -> leaves. After placing (0, 1) somewhere, a second edge (0, 2)
  // should NOT be forced to follow the hub if balance pulls elsewhere —
  // but an edge sharing the low-degree endpoint must score its partition
  // highest.
  const auto g = graph::makeStar(20);
  RuleHarness h(g, 4);
  const auto rule = edgeHdrf();
  h.ensureState(rule.stateCounters);
  h.state.enableNodeMasks();  // normally done by the partitioner
  h.state.initialize(4);
  const uint32_t first = h.owner(rule, 0, 1, 9, 9);
  // Same edge again: both replicas exist on `first`, so it wins again.
  EXPECT_EQ(h.owner(rule, 0, 1, 9, 9), first);
}

TEST(HdrfRule, BalanceTermSpreadsHubEdges) {
  const auto g = graph::makeStar(64);
  RuleHarness h(g, 4);
  const auto rule = edgeHdrf(HdrfParams{.lambda = 4.0});
  h.ensureState(rule.stateCounters);
  h.state.enableNodeMasks();
  h.state.initialize(4);
  std::set<uint32_t> used;
  for (uint64_t leaf = 1; leaf <= 64; ++leaf) {
    used.insert(h.owner(rule, 0, leaf, 9, 9));
  }
  // With a strong balance term the hub's edges spread over partitions
  // (high-degree endpoint replicated first — the rule's namesake).
  EXPECT_GE(used.size(), 3u);
}

TEST(GreedyRule, PrefersIntersectionThenUnionThenLeastLoaded) {
  const auto g = graph::makePath(10);
  RuleHarness h(g, 4);
  const auto rule = edgeGreedy();
  h.ensureState(rule.stateCounters);
  h.state.enableNodeMasks();
  h.state.initialize(4);
  // Nothing placed: least-loaded (all equal -> partition 0).
  EXPECT_EQ(h.owner(rule, 0, 1, 9, 9), 0u);
  // Now 0 and 1 both have replicas on partition 0; edge (1, 2): only
  // endpoint 1 is placed -> its partition wins over empty ones.
  EXPECT_EQ(h.owner(rule, 1, 2, 9, 9), 0u);
  // Plant replicas so that (3, 4) intersect on partition 2.
  h.state.orNodeMask(3, 1ull << 2 | 1ull << 1);
  h.state.orNodeMask(4, 1ull << 2 | 1ull << 3);
  EXPECT_EQ(h.owner(rule, 3, 4, 9, 9), 2u);
}

TEST(PolicyFactoryExtended, LiteraturePoliciesConstruct) {
  EXPECT_EQ(makePolicy("LDG").master.name, "LDG");
  EXPECT_EQ(makePolicy("LDG").edge.name, "Source");
  EXPECT_EQ(makePolicy("DBH").master.name, "Hash");
  EXPECT_EQ(makePolicy("DBH").edge.name, "DBH");
  EXPECT_EQ(makePolicy("HDRF").edge.name, "HDRF");
  EXPECT_TRUE(makePolicy("HDRF").edge.usesNodeMasks);
  EXPECT_EQ(makePolicy("greedy").edge.name, "Greedy");
  EXPECT_EQ(extendedPolicyCatalog().size(), 10u);
}

// ---------------------------------------------------------------------------
// masterFromMap
// ---------------------------------------------------------------------------

TEST(FromMapRule, ReturnsMappedPartition) {
  const auto g = graph::makePath(4);
  RuleHarness h(g, 3);
  auto map = std::make_shared<std::vector<uint32_t>>(
      std::vector<uint32_t>{2, 0, 1, 2});
  const auto rule = masterFromMap(map);
  EXPECT_TRUE(rule.isPure());
  EXPECT_EQ(h.master(rule, 0), 2u);
  EXPECT_EQ(h.master(rule, 2), 1u);
}

TEST(FromMapRule, RejectsBadInputs) {
  EXPECT_THROW(masterFromMap(nullptr), std::invalid_argument);
  const auto g = graph::makePath(4);
  RuleHarness h(g, 2);
  auto shortMap = std::make_shared<std::vector<uint32_t>>(
      std::vector<uint32_t>{0, 1});
  auto rule = masterFromMap(shortMap);
  EXPECT_THROW(h.master(rule, 3), std::out_of_range);
  auto badPart = std::make_shared<std::vector<uint32_t>>(
      std::vector<uint32_t>{0, 9, 0, 0});
  rule = masterFromMap(badPart);
  EXPECT_THROW(h.master(rule, 1), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Edge rules
// ---------------------------------------------------------------------------

TEST(EdgeRules, SourceAndDest) {
  const auto g = graph::makePath(4);
  RuleHarness h(g, 4);
  EXPECT_EQ(h.owner(edgeSource(), 0, 1, 2, 3), 2u);
  EXPECT_EQ(h.owner(edgeDest(), 0, 1, 2, 3), 3u);
}

TEST(EdgeRules, HybridSwitchesOnSourceDegree) {
  const auto g = graph::makeStar(20);  // node 0: degree 20; leaves: 0
  RuleHarness h(g, 4);
  const auto rule = edgeHybrid(/*threshold=*/10);
  // High-degree source: edge goes to destination's master.
  EXPECT_EQ(h.owner(rule, 0, 1, 2, 3), 3u);
  // Low-degree source keeps its edge.
  EXPECT_EQ(h.owner(rule, 5, 1, 2, 3), 2u);
  // Exactly at threshold is NOT above it.
  const auto atThreshold = edgeHybrid(20);
  EXPECT_EQ(h.owner(atThreshold, 0, 1, 2, 3), 2u);
}

TEST(CartesianGridTest, FactorizesCloseToSquare) {
  EXPECT_EQ(cartesianGrid(1), (std::pair<uint32_t, uint32_t>{1, 1}));
  EXPECT_EQ(cartesianGrid(4), (std::pair<uint32_t, uint32_t>{2, 2}));
  EXPECT_EQ(cartesianGrid(6), (std::pair<uint32_t, uint32_t>{3, 2}));
  EXPECT_EQ(cartesianGrid(12), (std::pair<uint32_t, uint32_t>{4, 3}));
  EXPECT_EQ(cartesianGrid(7), (std::pair<uint32_t, uint32_t>{7, 1}));
  EXPECT_THROW(cartesianGrid(0), std::invalid_argument);
}

TEST(EdgeRules, CartesianFormula) {
  const auto g = graph::makePath(4);
  RuleHarness h(g, 6);  // grid: 3 rows x 2 cols
  const auto rule = edgeCartesian();
  // owner = floor(srcMaster / 2) * 2 + dstMaster % 2.
  EXPECT_EQ(h.owner(rule, 0, 1, /*srcMaster=*/0, /*dstMaster=*/0), 0u);
  EXPECT_EQ(h.owner(rule, 0, 1, 0, 1), 1u);
  EXPECT_EQ(h.owner(rule, 0, 1, 0, 5), 1u);
  EXPECT_EQ(h.owner(rule, 0, 1, 3, 0), 2u);
  EXPECT_EQ(h.owner(rule, 0, 1, 5, 4), 4u);
  EXPECT_EQ(h.owner(rule, 0, 1, 5, 5), 5u);
}

TEST(EdgeRules, CartesianRestrictsOwnersToRowOrColumn) {
  const auto g = graph::makePath(4);
  const uint32_t k = 8;
  RuleHarness h(g, k);
  const auto [pRows, pCols] = cartesianGrid(k);
  const auto rule = edgeCartesian();
  for (uint32_t sm = 0; sm < k; ++sm) {
    for (uint32_t dm = 0; dm < k; ++dm) {
      const uint32_t owner = h.owner(rule, 0, 1, sm, dm);
      // Owner shares the source master's row...
      EXPECT_EQ(owner / pCols, sm / pCols);
      // ...and the destination master's column.
      EXPECT_EQ(owner % pCols, dm % pCols);
    }
  }
}

// ---------------------------------------------------------------------------
// Policy factory
// ---------------------------------------------------------------------------

TEST(PolicyFactory, TableTwoCombinations) {
  EXPECT_EQ(makePolicy("EEC").master.name, "ContiguousEB");
  EXPECT_EQ(makePolicy("EEC").edge.name, "Source");
  EXPECT_EQ(makePolicy("HVC").edge.name, "Hybrid");
  EXPECT_EQ(makePolicy("CVC").edge.name, "Cartesian");
  EXPECT_EQ(makePolicy("FEC").master.name, "FennelEB");
  EXPECT_EQ(makePolicy("FEC").edge.name, "Source");
  EXPECT_EQ(makePolicy("GVC").edge.name, "Hybrid");
  EXPECT_EQ(makePolicy("SVC").master.name, "FennelEB");
  EXPECT_EQ(makePolicy("SVC").edge.name, "Cartesian");
}

TEST(PolicyFactory, CaseInsensitiveAndUnknownRejected) {
  EXPECT_EQ(makePolicy("cvc").name, "CVC");
  EXPECT_THROW(makePolicy("METIS"), std::invalid_argument);
}

TEST(PolicyFactory, CatalogHasSixPolicies) {
  EXPECT_EQ(policyCatalog().size(), 6u);
  for (const auto& name : policyCatalog()) {
    EXPECT_NO_THROW(makePolicy(name));
  }
}

// ---------------------------------------------------------------------------
// PartitionState
// ---------------------------------------------------------------------------

TEST(PartitionStateTest, RegisterReadAdd) {
  PartitionState state;
  const auto nodes = state.registerCounter("nodes");
  const auto edges = state.registerCounter("edges");
  EXPECT_NE(nodes, edges);
  EXPECT_EQ(state.registerCounter("nodes"), nodes) << "idempotent";
  state.initialize(3);
  EXPECT_EQ(state.read(nodes, 0), 0);
  state.add(nodes, 1, 5);
  state.add(edges, 1, 7);
  EXPECT_EQ(state.read(nodes, 1), 5);
  EXPECT_EQ(state.read(edges, 1), 7);
  EXPECT_EQ(state.read(nodes, 2), 0);
}

TEST(PartitionStateTest, EmptyStateIsNoop) {
  PartitionState state;
  EXPECT_TRUE(state.empty());
  state.initialize(4);
  comm::Network net(2);
  comm::runHosts(net, [&](comm::HostId me) {
    PartitionState local;
    local.initialize(4);
    local.synchronize(net, me);  // must not communicate or deadlock
  });
  EXPECT_EQ(net.statsSnapshot().totalBytes(), 0u);
}

TEST(PartitionStateTest, OutOfRangeThrows) {
  PartitionState state;
  const auto c = state.registerCounter("x");
  state.initialize(2);
  EXPECT_THROW(state.read(c, 5), std::out_of_range);
  EXPECT_THROW(state.read(99, 0), std::out_of_range);
  EXPECT_EQ(state.counterId("nope"), PartitionState::kInvalidCounter);
}

TEST(PartitionStateTest, SynchronizeSumsDeltasAcrossHosts) {
  comm::Network net(3);
  std::vector<int64_t> views(3);
  comm::runHosts(net, [&](comm::HostId me) {
    PartitionState state;
    const auto c = state.registerCounter("nodes");
    state.initialize(2);
    state.add(c, 0, static_cast<int64_t>(me) + 1);  // 1 + 2 + 3 = 6
    state.synchronize(net, me);
    views[me] = state.read(c, 0);
  });
  EXPECT_EQ(views, (std::vector<int64_t>{6, 6, 6}));
}

TEST(PartitionStateTest, SecondSyncOnlyShipsNewDeltas) {
  comm::Network net(2);
  std::vector<int64_t> views(2);
  comm::runHosts(net, [&](comm::HostId me) {
    PartitionState state;
    const auto c = state.registerCounter("n");
    state.initialize(1);
    state.add(c, 0, 10);
    state.synchronize(net, me);  // 20 total
    state.add(c, 0, me == 0 ? 1 : 0);
    state.synchronize(net, me);  // 21 total
    views[me] = state.read(c, 0);
  });
  EXPECT_EQ(views, (std::vector<int64_t>{21, 21}));
}

TEST(PartitionStateTest, ResetRestoresInitialValues) {
  PartitionState state;
  const auto c = state.registerCounter("n");
  state.initialize(2);
  state.add(c, 0, 42);
  state.reset();
  EXPECT_EQ(state.read(c, 0), 0);
}

TEST(PartitionStateTest, NodeMasksOrAndRead) {
  PartitionState state;
  state.enableNodeMasks();
  state.initialize(8);
  EXPECT_EQ(state.nodeMask(42), 0u);
  state.orNodeMask(42, 1ull << 3);
  state.orNodeMask(42, 1ull << 5);
  EXPECT_EQ(state.nodeMask(42), (1ull << 3) | (1ull << 5));
  state.reset();
  EXPECT_EQ(state.nodeMask(42), 0u);
}

TEST(PartitionStateTest, NodeMasksRejectTooManyPartitions) {
  PartitionState state;
  state.enableNodeMasks();
  EXPECT_THROW(state.initialize(65), std::invalid_argument);
  EXPECT_NO_THROW(state.initialize(64));
}

TEST(PartitionStateTest, NodeMasksSynchronizeWithOrMerge) {
  comm::Network net(3);
  std::vector<uint64_t> views(3);
  comm::runHosts(net, [&](comm::HostId me) {
    PartitionState state;
    state.enableNodeMasks();
    state.initialize(4);
    state.orNodeMask(7, 1ull << me);  // each host contributes its own bit
    state.synchronize(net, me);
    views[me] = state.nodeMask(7);
  });
  EXPECT_EQ(views, (std::vector<uint64_t>{7, 7, 7}));
}

TEST(PartitionStateTest, MasksWithoutEnableStayEmptyState) {
  PartitionState state;
  EXPECT_TRUE(state.empty());
  state.enableNodeMasks();
  EXPECT_FALSE(state.empty());
}

TEST(PartitionStateTest, ConcurrentAddsAreAtomic) {
  PartitionState state;
  const auto c = state.registerCounter("n");
  state.initialize(1);
  support::parallelFor(0, 10'000, [&](uint64_t) { state.add(c, 0, 1); }, 4);
  EXPECT_EQ(state.read(c, 0), 10'000);
}

}  // namespace
}  // namespace cusp::core
