// Wire-level corruption tests: CRC32 framing, MessageCorrupt detection,
// transparent sendReliable recovery, and end-to-end bit-identity of the
// partitioner and the resilient analytics drivers under corrupted traffic
// on every protocol tag.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "analytics/engine.h"
#include "analytics/reference.h"
#include "analytics/resilient.h"
#include "comm/fault.h"
#include "comm/network.h"
#include "core/checkpoint.h"
#include "core/dist_graph.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "support/crc32.h"
#include "testutil.h"

namespace cusp {
namespace {

using comm::FaultAction;
using comm::FaultPlan;
using comm::HostId;
using comm::kAnyHost;
using comm::kAnyTag;
using comm::MessageCorrupt;
using comm::Network;
using core::DistGraph;
using support::RecvBuffer;
using support::SendBuffer;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cusp_corrupt_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~TempDir() {
    // Epoch subdirectories and buddy replicas nest under the root; blanket
    // removal is the only cleanup that stays correct as the layout grows.
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SendBuffer bufferWith(const std::vector<uint64_t>& values) {
  SendBuffer buf;
  support::serialize(buf, values);
  return buf;
}

std::shared_ptr<FaultPlan> corruptPlan(comm::Tag tag, uint64_t occurrence,
                                       uint32_t repeat = 1) {
  auto plan = std::make_shared<FaultPlan>();
  plan->messageFaults.push_back({kAnyHost, kAnyHost, tag, occurrence, repeat,
                                 FaultAction::kCorrupt});
  return plan;
}

// ---------------------------------------------------------------------------
// Framing mechanics.
// ---------------------------------------------------------------------------

TEST(FramingTest, OffByDefaultAndAutoEnabledByInjector) {
  Network net(2);
  EXPECT_FALSE(net.crcFraming());
  net.setFaultInjector(
      std::make_shared<comm::FaultInjector>(*corruptPlan(kAnyTag, 99)));
  EXPECT_TRUE(net.crcFraming());
  net.setFaultInjector(nullptr);
  EXPECT_FALSE(net.crcFraming());
}

TEST(FramingTest, FooterBytesAccountedSeparately) {
  // Framing on (no faults): payload counters and totalBytes() must be
  // byte-identical to an unframed run; the footer lands in framingBytes.
  const std::vector<uint64_t> payload = {1, 2, 3, 4};
  comm::VolumeStats unframed;
  {
    Network net(2);
    comm::runHosts(net, [&](HostId me) {
      if (me == 0) {
        net.send(0, 1, comm::kTagGeneric, bufferWith(payload));
      } else {
        auto msg = net.recv(1, comm::kTagGeneric);
        std::vector<uint64_t> got;
        support::deserialize(msg.payload, got);
        EXPECT_EQ(got, payload);
      }
    });
    unframed = net.statsSnapshot();
    EXPECT_EQ(unframed.framingBytes, 0u);
  }
  Network net(2);
  net.setCrcFraming(true);
  comm::runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, comm::kTagGeneric, bufferWith(payload));
    } else {
      auto msg = net.recv(1, comm::kTagGeneric);
      std::vector<uint64_t> got;
      support::deserialize(msg.payload, got);
      EXPECT_EQ(got, payload);  // footer stripped before delivery
    }
  });
  const comm::VolumeStats framed = net.statsSnapshot();
  EXPECT_EQ(framed.bytes[comm::kTagGeneric], unframed.bytes[comm::kTagGeneric]);
  EXPECT_EQ(framed.totalBytes(), unframed.totalBytes());
  EXPECT_EQ(framed.framingBytes, support::kCrcFooterSize);
  EXPECT_EQ(framed.corruptionsDetected, 0u);
}

TEST(FramingTest, SelfSendsAreNeverFramed) {
  Network net(2);
  net.setCrcFraming(true);
  comm::runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 0, comm::kTagGeneric, bufferWith({7}));
      auto msg = net.recv(0, comm::kTagGeneric);
      std::vector<uint64_t> got;
      support::deserialize(msg.payload, got);
      EXPECT_EQ(got, std::vector<uint64_t>{7});
    }
  });
  EXPECT_EQ(net.statsSnapshot().framingBytes, 0u);
}

// ---------------------------------------------------------------------------
// Detection and recovery.
// ---------------------------------------------------------------------------

TEST(CorruptionTest, BareSendThrowsMessageCorrupt) {
  Network net(2);
  net.setFaultInjector(
      std::make_shared<comm::FaultInjector>(*corruptPlan(comm::kTagGeneric, 0)));
  comm::runHosts(net, [&](HostId me) {
    if (me == 0) {
      try {
        net.send(0, 1, comm::kTagGeneric, bufferWith({42}));
        FAIL() << "corrupted frame was delivered";
      } catch (const MessageCorrupt& e) {
        EXPECT_EQ(e.from, 0u);
        EXPECT_EQ(e.to, 1u);
        EXPECT_EQ(e.tag, comm::kTagGeneric);
        EXPECT_NE(std::string(e.what()).find("CRC32"), std::string::npos);
      }
      // The channel stays usable: a clean resend goes through.
      net.send(0, 1, comm::kTagGeneric, bufferWith({43}));
    } else {
      auto msg = net.recv(1, comm::kTagGeneric);
      std::vector<uint64_t> got;
      support::deserialize(msg.payload, got);
      EXPECT_EQ(got, std::vector<uint64_t>{43});
    }
  });
  const comm::VolumeStats stats = net.statsSnapshot();
  EXPECT_EQ(stats.corruptionsDetected, 1u);
  EXPECT_EQ(stats.corruptionsRecovered, 0u);  // bare send does not retry
}

TEST(CorruptionTest, SendReliableRecoversTransparently) {
  Network net(2);
  net.setFaultInjector(
      std::make_shared<comm::FaultInjector>(*corruptPlan(comm::kTagGeneric, 0)));
  const std::vector<uint64_t> payload = {11, 22, 33};
  comm::runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.sendReliable(0, 1, comm::kTagGeneric, bufferWith(payload));
    } else {
      auto msg = net.recv(1, comm::kTagGeneric);
      std::vector<uint64_t> got;
      support::deserialize(msg.payload, got);
      EXPECT_EQ(got, payload);  // the retransmission is the clean copy
    }
  });
  const comm::VolumeStats stats = net.statsSnapshot();
  EXPECT_EQ(stats.corruptionsDetected, 1u);
  EXPECT_EQ(stats.corruptionsRecovered, 1u);
}

TEST(CorruptionTest, RepeatBeyondRetryBudgetEscapes) {
  // Every retransmission is a fresh occurrence; a fault that repeats past
  // the retry budget defeats sendReliable and surfaces as MessageCorrupt.
  Network net(2);
  net.setFaultInjector(std::make_shared<comm::FaultInjector>(
      *corruptPlan(comm::kTagGeneric, 0, /*repeat=*/16)));
  comm::RetryPolicy policy;
  policy.maxAttempts = 3;
  net.setRetryPolicy(policy);
  comm::runHosts(net, [&](HostId me) {
    if (me == 0) {
      EXPECT_THROW(
          net.sendReliable(0, 1, comm::kTagGeneric, bufferWith({5})),
          MessageCorrupt);
    }
  });
  const comm::VolumeStats stats = net.statsSnapshot();
  EXPECT_EQ(stats.corruptionsDetected, 3u);
  EXPECT_EQ(stats.corruptionsRecovered, 0u);
}

// ---------------------------------------------------------------------------
// Partitioner pipeline: a corrupted frame on each protocol tag's traffic is
// recovered transparently and the result stays bit-identical.
// ---------------------------------------------------------------------------

std::vector<uint8_t> serializedBytes(const DistGraph& part) {
  SendBuffer buf;
  core::serializeDistGraph(buf, part);
  return buf.release();
}

struct PhaseTagCase {
  const char* name;
  comm::Tag tag;
  const char* policy;  // a policy whose run actually uses the tag
  // Streaming heuristics (FEC/LDG/...) are arrival-order-sensitive, so two
  // fault-free runs already differ bit for bit; for those we assert
  // transparent recovery + structural invariants instead of byte equality.
  bool deterministic;
};

class PartitionerCorruptionSweep
    : public ::testing::TestWithParam<PhaseTagCase> {};

TEST_P(PartitionerCorruptionSweep, RecoversBitIdentical) {
  const PhaseTagCase& c = GetParam();
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy(c.policy);

  core::PartitionerConfig config;
  config.numHosts = 4;
  const core::PartitionResult baseline =
      core::partitionGraph(file, policy, config);

  config.resilience.faultPlan = corruptPlan(c.tag, /*occurrence=*/0);
  config.resilience.recvTimeoutSeconds = 20.0;
  core::RecoveryReport report;
  const core::PartitionResult recovered =
      core::partitionGraphResilient(file, policy, config, &report);

  ASSERT_EQ(baseline.partitions.size(), recovered.partitions.size());
  if (c.deterministic) {
    for (size_t h = 0; h < baseline.partitions.size(); ++h) {
      EXPECT_EQ(serializedBytes(baseline.partitions[h]),
                serializedBytes(recovered.partitions[h]))
          << "partition of host " << h << " diverged under corruption on "
          << c.name;
    }
  } else {
    // Order-sensitive policy: the exact cut varies run to run, but the
    // recovered run must still cover the whole graph exactly once.
    uint64_t masters = 0;
    uint64_t edges = 0;
    for (const auto& part : recovered.partitions) {
      masters += part.numMasters;
      edges += part.numLocalEdges();
    }
    EXPECT_EQ(masters, file.numNodes()) << c.name;
    EXPECT_EQ(edges, file.numEdges()) << c.name;
  }
  EXPECT_EQ(report.attempts, 1u) << "recovery should be transparent";
  EXPECT_GT(recovered.volume.corruptionsDetected, 0u) << c.name;
  EXPECT_GT(recovered.volume.corruptionsRecovered, 0u) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolTags, PartitionerCorruptionSweep,
    ::testing::Values(
        // Policies chosen so the run actually emits the tag on this graph:
        // the master-assignment round trip only happens for policies whose
        // master rule is not locally computable (FEC/LDG here), and edge
        // batches only ship when a reader assigns edges to a remote owner
        // (CVC; EEC/HVC keep them reader-local on this input).
        PhaseTagCase{"MasterRequest", comm::kTagMasterRequest, "FEC", false},
        PhaseTagCase{"MasterAssign", comm::kTagMasterAssign, "FEC", false},
        PhaseTagCase{"MasterList", comm::kTagMasterList, "LDG", false},
        PhaseTagCase{"EdgeCounts", comm::kTagEdgeCounts, "EEC", true},
        PhaseTagCase{"MirrorFlags", comm::kTagMirrorFlags, "EEC", true},
        PhaseTagCase{"MirrorToMaster", comm::kTagMirrorToMaster, "CVC", true},
        PhaseTagCase{"EdgeBatch", comm::kTagEdgeBatch, "CVC", true}),
    [](const ::testing::TestParamInfo<PhaseTagCase>& info) {
      return std::string(info.param.name) + "_" + info.param.policy;
    });

// ---------------------------------------------------------------------------
// Analytics sync traffic.
// ---------------------------------------------------------------------------

std::vector<DistGraph> makePartitions(const graph::CsrGraph& g,
                                      const std::string& policy,
                                      uint32_t hosts) {
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig config;
  config.numHosts = hosts;
  return core::partitionGraph(file, core::makePolicy(policy), config)
      .partitions;
}

TEST(AnalyticsCorruptionTest, BfsSyncCorruptionRecoversBitIdentical) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const auto parts = makePartitions(g, "HVC", 4);
  const uint64_t source = analytics::maxOutDegreeNode(g);
  const auto expected = analytics::bfsReference(g, source);

  auto plan = std::make_shared<FaultPlan>();
  plan->messageFaults.push_back({kAnyHost, kAnyHost, comm::kTagAppReduce,
                                 /*occurrence=*/0, /*repeat=*/1,
                                 FaultAction::kCorrupt});
  plan->messageFaults.push_back({kAnyHost, kAnyHost, comm::kTagAppBroadcast,
                                 /*occurrence=*/0, /*repeat=*/1,
                                 FaultAction::kCorrupt});
  analytics::ResilienceOptions options;
  options.faultPlan = plan;
  options.recvTimeoutSeconds = 20.0;

  analytics::ResilienceReport report;
  const auto got = analytics::runBfsResilient(parts, source, options, &report);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(report.attempts, 1u) << "recovery should be transparent";
  EXPECT_GT(report.corruptionsRecovered, 0u);
  EXPECT_TRUE(report.failures.empty());
}

TEST(AnalyticsCorruptionTest, PageRankSyncCorruptionRecoversBitIdentical) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const auto parts = makePartitions(g, "CVC", 4);
  analytics::PageRankParams params;
  params.maxIterations = 30;
  params.tolerance = 1e-9;
  const auto clean = analytics::runPageRank(parts, params);

  auto plan = std::make_shared<FaultPlan>();
  plan->messageFaults.push_back({kAnyHost, kAnyHost, comm::kTagAppReduce,
                                 /*occurrence=*/2, /*repeat=*/2,
                                 FaultAction::kCorrupt});
  plan->messageFaults.push_back({kAnyHost, kAnyHost, comm::kTagAppBroadcast,
                                 /*occurrence=*/5, /*repeat=*/1,
                                 FaultAction::kCorrupt});
  analytics::ResilienceOptions options;
  options.faultPlan = plan;
  options.recvTimeoutSeconds = 20.0;

  analytics::ResilienceReport report;
  const auto got = analytics::runPageRankResilient(parts, params, options,
                                                   &report);
  // Same layout, same rounds, corruption absorbed below the algorithm: the
  // doubles must match the clean run bit for bit.
  EXPECT_EQ(got, clean);
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_GT(report.corruptionsRecovered, 0u);
}

// ---------------------------------------------------------------------------
// Superstep rollback and degraded continuation.
// ---------------------------------------------------------------------------

TEST(ResilientAnalyticsTest, FaultFreeRunMatchesPlainDriver) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const auto parts = makePartitions(g, "EEC", 4);
  const uint64_t source = analytics::maxOutDegreeNode(g);
  analytics::ResilienceOptions options;  // no faults, no checkpoints
  const auto got = analytics::runBfsResilient(parts, source, options);
  EXPECT_EQ(got, analytics::runBfs(parts, source));

  analytics::PageRankParams params;
  params.maxIterations = 30;
  params.tolerance = 1e-9;
  EXPECT_EQ(analytics::runPageRankResilient(parts, params, options),
            analytics::runPageRank(parts, params));
}

TEST(ResilientAnalyticsTest, TransientCrashRollsBackToCheckpoint) {
  // A long BFS (path graph: one superstep per hop) with a crash deep into
  // the run: the second attempt must resume from a checkpoint, not from
  // scratch, and still produce the exact reference distances.
  const graph::CsrGraph g = graph::makePath(64);
  const auto parts = makePartitions(g, "EEC", 4);
  const auto expected = analytics::bfsReference(g, 0);

  TempDir dir;
  auto plan = std::make_shared<FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/1, /*phase=*/0, /*opsIntoPhase=*/200, /*permanent=*/false});
  analytics::ResilienceOptions options;
  options.faultPlan = plan;
  options.checkpointDir = dir.path();
  options.enableCheckpoints = true;
  options.checkpointInterval = 4;
  options.recvTimeoutSeconds = 20.0;

  analytics::ResilienceReport report;
  const auto got = analytics::runBfsResilient(parts, 0, options, &report);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(report.attempts, 2u);
  ASSERT_EQ(report.failureKinds.size(), 1u);
  EXPECT_GT(report.resumedFromSuperstep, 0u)
      << "crash at crossing 200 should land after the first checkpoint";
  EXPECT_GT(report.checkpointsSaved, 0u);
}

TEST(ResilientAnalyticsTest, CrashWithoutCheckpointsRestartsFromScratch) {
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 900, 3);
  const auto parts = makePartitions(g, "HVC", 4);
  const uint64_t source = analytics::maxOutDegreeNode(g);

  auto plan = std::make_shared<FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/2, /*phase=*/0, /*opsIntoPhase=*/10, /*permanent=*/false});
  analytics::ResilienceOptions options;
  options.faultPlan = plan;
  options.recvTimeoutSeconds = 20.0;

  analytics::ResilienceReport report;
  const auto got = analytics::runBfsResilient(parts, source, options, &report);
  EXPECT_EQ(got, analytics::bfsReference(g, source));
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.resumedFromSuperstep, 0u);
}

TEST(ResilientAnalyticsTest, UnrecoverablePlanRethrowsStructuredFault) {
  const graph::CsrGraph g = graph::generateErdosRenyi(100, 400, 5);
  const auto parts = makePartitions(g, "EEC", 4);

  auto plan = std::make_shared<FaultPlan>();
  for (int i = 0; i < 4; ++i) {
    plan->crashes.push_back(
        {/*host=*/1, /*phase=*/0, /*opsIntoPhase=*/0, /*permanent=*/false});
  }
  analytics::ResilienceOptions options;
  options.faultPlan = plan;
  options.maxRecoveryAttempts = 2;
  options.recvTimeoutSeconds = 20.0;

  analytics::ResilienceReport report;
  // The crashing host's own thread throws HostFailure before any sibling's
  // guarded sync can wrap its view of the outage.
  EXPECT_THROW(analytics::runBfsResilient(parts, 0, options, &report),
               comm::HostFailure);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.failures.size(), 2u);
}

TEST(ResilientAnalyticsTest, DegradedBfsCompletesOnSurvivorsExactly) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const auto parts = makePartitions(g, "HVC", 4);
  const uint64_t source = analytics::maxOutDegreeNode(g);

  TempDir dir;
  auto plan = std::make_shared<FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/2, /*phase=*/0, /*opsIntoPhase=*/40, /*permanent=*/true});
  analytics::ResilienceOptions options;
  options.faultPlan = plan;
  options.checkpointDir = dir.path();
  options.enableCheckpoints = true;
  options.buddyReplication = true;
  options.degradedMode = true;
  options.recvTimeoutSeconds = 20.0;

  analytics::ResilienceReport report;
  const auto got = analytics::runBfsResilient(parts, source, options, &report);
  EXPECT_EQ(got, analytics::bfsReference(g, source))
      << "monotone min-propagation must stay exact across an eviction";
  EXPECT_EQ(report.evictions, std::vector<comm::HostId>{2});
  EXPECT_EQ(report.finalAliveHosts, 3u);
  EXPECT_GE(report.attempts, 2u);
}

TEST(ResilientAnalyticsTest, DegradedPageRankMatchesReferenceToTolerance) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const auto parts = makePartitions(g, "EEC", 4);
  analytics::PageRankParams params;
  params.maxIterations = 30;
  params.tolerance = 1e-9;
  const auto expected = analytics::pageRankReference(g, params);

  TempDir dir;
  auto plan = std::make_shared<FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/1, /*phase=*/0, /*opsIntoPhase=*/60, /*permanent=*/true});
  analytics::ResilienceOptions options;
  options.faultPlan = plan;
  options.checkpointDir = dir.path();
  options.enableCheckpoints = true;
  options.buddyReplication = true;
  options.degradedMode = true;
  options.recvTimeoutSeconds = 20.0;

  analytics::ResilienceReport report;
  const auto got =
      analytics::runPageRankResilient(parts, params, options, &report);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-10) << "node " << i;
  }
  EXPECT_EQ(report.evictions, std::vector<comm::HostId>{1});
  EXPECT_EQ(report.finalAliveHosts, 3u);
}

}  // namespace
}  // namespace cusp
