// Storage-fault and straggler resilience: the injectable storage seam
// (support/storage.h), the hardened checkpoint store built on it
// (quarantine, durable commit, ENOSPC continuation), and the deadline-
// driven straggler machinery (comm::StragglerPolicy/StragglerMonitor).
//
// The two end-to-end invariants, mirroring the chaos pipeline suite:
//  * storage faults may cost checkpoints, never correctness — runs under
//    torn/failed/unrenamed checkpoint writes stay bit-identical to clean
//    runs;
//  * a pathologically slow host is evicted through the hard straggler
//    deadline into the same degraded paths a permanent crash takes, and
//    the final analytics output still matches the single-image reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "analytics/algorithms.h"
#include "analytics/reference.h"
#include "analytics/resilient.h"
#include "comm/fault.h"
#include "core/checkpoint.h"
#include "core/dist_graph.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "support/serialize.h"
#include "support/storage.h"

namespace cusp {
namespace {

using support::ScopedStorageFaults;
using support::StorageError;
using support::StorageFault;
using support::StorageFaultKind;
using support::StorageFaultPlan;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cusp_storage_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

std::vector<uint8_t> testBytes(size_t n) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>((i * 131) ^ (i >> 3));
  }
  return bytes;
}

StorageFaultPlan onePlan(StorageFaultKind kind, std::string substring = "",
                         uint64_t occurrence = 0, uint32_t repeat = 1,
                         uint64_t tornBytes = 0) {
  StorageFaultPlan plan;
  plan.faults.push_back(
      StorageFault{kind, std::move(substring), occurrence, repeat, tornBytes});
  return plan;
}

// ---------------------------------------------------------------------------
// Storage seam: atomicWriteFile / readFileBytes under every fault kind.
// ---------------------------------------------------------------------------

TEST(StorageSeamTest, AtomicWriteReadRoundTripLeavesNoTmp) {
  TempDir dir;
  const auto bytes = testBytes(1000);
  const std::string path = dir.file("round.bin");
  support::atomicWriteFile(path, bytes);
  const auto back = support::readFileBytes(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FALSE(support::readFileBytes(dir.file("absent")).has_value());
}

TEST(StorageSeamTest, WriteFailThrowsAndLeavesTornTmpDebris) {
  TempDir dir;
  const auto bytes = testBytes(800);
  const std::string path = dir.file("w.bin");
  ScopedStorageFaults scope(onePlan(StorageFaultKind::kWriteFail));
  try {
    support::atomicWriteFile(path, bytes);
    FAIL() << "expected StorageError";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind, StorageError::Kind::kWriteFailed);
    EXPECT_EQ(e.path, path);
  }
  // Crash debris: the final file never appeared, a torn tmp did.
  EXPECT_FALSE(std::filesystem::exists(path));
  ASSERT_TRUE(std::filesystem::exists(path + ".tmp"));
  EXPECT_LT(std::filesystem::file_size(path + ".tmp"), bytes.size());
  EXPECT_EQ(scope.stats().writeFailures, 1u);
}

TEST(StorageSeamTest, EnospcThrowsTheNoSpaceKind) {
  TempDir dir;
  ScopedStorageFaults scope(onePlan(StorageFaultKind::kEnospc));
  try {
    support::atomicWriteFile(dir.file("full.bin"), testBytes(64));
    FAIL() << "expected StorageError";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind, StorageError::Kind::kNoSpace);
  }
  EXPECT_EQ(scope.stats().enospcFailures, 1u);
}

TEST(StorageSeamTest, TornWriteCommitsSilentlyWithTruncatedImage) {
  TempDir dir;
  const std::string path = dir.file("torn.bin");
  ScopedStorageFaults scope(
      onePlan(StorageFaultKind::kTornWrite, "", 0, 1, /*tornBytes=*/17));
  support::atomicWriteFile(path, testBytes(500));  // "succeeds"
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(std::filesystem::file_size(path), 17u);
  EXPECT_EQ(scope.stats().tornWrites, 1u);
}

TEST(StorageSeamTest, RenameFailLeavesFullyWrittenOrphanTmp) {
  TempDir dir;
  const auto bytes = testBytes(300);
  const std::string path = dir.file("r.bin");
  ScopedStorageFaults scope(onePlan(StorageFaultKind::kRenameFail));
  try {
    support::atomicWriteFile(path, bytes);
    FAIL() << "expected StorageError";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind, StorageError::Kind::kRenameFailed);
  }
  // The crash-between-write-and-rename shape: durable tmp, no final file.
  EXPECT_FALSE(std::filesystem::exists(path));
  ASSERT_TRUE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(std::filesystem::file_size(path + ".tmp"), bytes.size());
  EXPECT_EQ(scope.stats().renameFailures, 1u);
}

TEST(StorageSeamTest, ReadFailThrowsAndBitRotFlipsExactlyOneByte) {
  TempDir dir;
  const auto bytes = testBytes(256);
  const std::string path = dir.file("rot.bin");
  support::atomicWriteFile(path, bytes);
  {
    ScopedStorageFaults scope(onePlan(StorageFaultKind::kReadFail));
    EXPECT_THROW(support::readFileBytes(path), StorageError);
    EXPECT_EQ(scope.stats().readFailures, 1u);
  }
  {
    ScopedStorageFaults scope(onePlan(StorageFaultKind::kBitRot));
    const auto rotten = support::readFileBytes(path);
    ASSERT_TRUE(rotten.has_value());
    ASSERT_EQ(rotten->size(), bytes.size());
    size_t diffs = 0;
    for (size_t i = 0; i < bytes.size(); ++i) {
      diffs += (*rotten)[i] != bytes[i] ? 1 : 0;
    }
    EXPECT_EQ(diffs, 1u) << "bit rot must flip exactly one byte";
    EXPECT_EQ(scope.stats().bitRotsInjected, 1u);
    // The rot was injected at read time; the file itself is pristine.
    EXPECT_EQ(*support::readFileBytes(path), bytes);
  }
}

TEST(StorageSeamTest, OccurrenceAndRepeatSelectTheMatchingOperations) {
  TempDir dir;
  ScopedStorageFaults scope(
      onePlan(StorageFaultKind::kWriteFail, "", /*occurrence=*/1,
              /*repeat=*/2));
  const auto bytes = testBytes(32);
  EXPECT_NO_THROW(support::atomicWriteFile(dir.file("a"), bytes));  // op 0
  EXPECT_THROW(support::atomicWriteFile(dir.file("b"), bytes),
               StorageError);  // op 1: due
  EXPECT_THROW(support::atomicWriteFile(dir.file("c"), bytes),
               StorageError);  // op 2: repeat
  EXPECT_NO_THROW(support::atomicWriteFile(dir.file("d"), bytes));  // spent
  EXPECT_EQ(scope.stats().writeFailures, 2u);
}

TEST(StorageSeamTest, PathSubstringPinsFaultsToMatchingFiles) {
  TempDir dir;
  ScopedStorageFaults scope(onePlan(StorageFaultKind::kWriteFail, "h1.p"));
  const auto bytes = testBytes(32);
  EXPECT_NO_THROW(support::atomicWriteFile(dir.file("h0.p3.ckpt"), bytes));
  EXPECT_NO_THROW(support::atomicWriteFile(dir.file("h2.p3.ckpt"), bytes));
  EXPECT_THROW(support::atomicWriteFile(dir.file("h1.p3.ckpt"), bytes),
               StorageError);
}

TEST(StorageSeamTest, ScopedAttachNestsAndRestores) {
  EXPECT_EQ(support::storageFaults(), nullptr);
  {
    ScopedStorageFaults outer(onePlan(StorageFaultKind::kReadFail));
    const auto outerInjector = support::storageFaults();
    EXPECT_EQ(outerInjector, outer.injector());
    {
      ScopedStorageFaults inner(onePlan(StorageFaultKind::kBitRot));
      EXPECT_EQ(support::storageFaults(), inner.injector());
    }
    EXPECT_EQ(support::storageFaults(), outerInjector);
  }
  EXPECT_EQ(support::storageFaults(), nullptr);
}

// ---------------------------------------------------------------------------
// Hardened checkpoint store: quarantine, crash debris, read fallback.
// ---------------------------------------------------------------------------

support::SendBuffer somePayload() {
  support::SendBuffer payload;
  std::vector<uint64_t> values{7, 11, 13, 17, 19, 23};
  support::serialize(payload, values);
  return payload;
}

TEST(CheckpointStorageTest, CorruptCheckpointIsQuarantinedNotTrusted) {
  TempDir dir;
  obs::ScopedObservability scope;
  core::saveCheckpoint(dir.path(), 0, 4, 3, somePayload());
  const std::string path = core::checkpointPath(dir.path(), 0, 3);
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    // Flip a payload byte on disk: header identity still matches, CRC no
    // longer does.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    const auto size =
        static_cast<std::streamoff>(std::filesystem::file_size(path));
    f.seekg(size - 24);
    char byte = 0;
    f.get(byte);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(size - 24);
    f.put(byte);
  }
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 0, 4, 3).has_value());
  // Quarantined, not deleted: renamed aside for post-mortems so it cannot
  // keep shadowing the escalation ladder.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".quarantined"));
  const auto snap = scope.sink().metrics->snapshot();
  EXPECT_GE(snap.counterValue("cusp.checkpoint.crc_failures"), 1u);
  EXPECT_GE(snap.counterValue("cusp.checkpoint.quarantined"), 1u);
}

TEST(CheckpointStorageTest, TornCheckpointWriteIsInvisibleToLoad) {
  TempDir dir;
  ScopedStorageFaults scope(
      onePlan(StorageFaultKind::kTornWrite, ".ckpt", 0, 1, /*tornBytes=*/9));
  core::saveCheckpoint(dir.path(), 2, 4, 1, somePayload());  // "succeeds"
  EXPECT_EQ(scope.stats().tornWrites, 1u);
  // The acknowledged-but-lost write can never be mistaken for a
  // checkpoint.
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 2, 4, 1).has_value());
  EXPECT_EQ(core::latestValidCheckpoint(dir.path(), 2, 4, 5), 0u);
}

TEST(CheckpointStorageTest, CrashBetweenWriteAndRenameIsSweptAndRetryable) {
  TempDir dir;
  const auto payload = somePayload();
  {
    ScopedStorageFaults scope(onePlan(StorageFaultKind::kRenameFail, ".ckpt"));
    EXPECT_THROW(core::saveCheckpoint(dir.path(), 1, 4, 2, payload),
                 StorageError);
  }
  const std::string path = core::checkpointPath(dir.path(), 1, 2);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 1, 4, 2).has_value());
  // The driver's start-of-run sweep collects the orphan; a retried save
  // then commits normally.
  EXPECT_EQ(core::garbageCollectCheckpointTmp(dir.path()), 1u);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  core::saveCheckpoint(dir.path(), 1, 4, 2, payload);
  EXPECT_TRUE(core::loadCheckpoint(dir.path(), 1, 4, 2).has_value());
}

TEST(CheckpointStorageTest, GcKeepsFreshQuarantinesCollectsStaleOnes) {
  TempDir dir;
  // A fresh quarantine (mtime = now) survives the sweep at the default
  // 24h grace; with a zero grace the same file is collected. Tmp debris is
  // swept unconditionally either way.
  std::ofstream(dir.file("h0.p3.ckpt.quarantined")) << "corrupt image";
  std::ofstream(dir.file("h1.p2.ckpt.tmp")) << "orphaned commit";
  EXPECT_EQ(core::garbageCollectCheckpointTmp(dir.path()), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir.file("h0.p3.ckpt.quarantined")));
  EXPECT_FALSE(std::filesystem::exists(dir.file("h1.p2.ckpt.tmp")));
  EXPECT_EQ(core::garbageCollectCheckpointTmp(dir.path(),
                                              /*quarantineAgeSeconds=*/0.0),
            1u);
  EXPECT_FALSE(std::filesystem::exists(dir.file("h0.p3.ckpt.quarantined")));
}

TEST(CheckpointStorageTest, DriverGcAgeConfigControlsQuarantineSweep) {
  // The forensic-retention window is operator-configurable
  // (ResilienceConfig::checkpointGcAgeSeconds, --checkpoint-gc-age): the
  // driver's startup sweep keeps a fresh quarantine under the default 24h
  // grace but collects it when the window is tightened to zero.
  const graph::CsrGraph g = graph::generateErdosRenyi(120, 500, 3);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  TempDir dir;
  const std::string quarantined = dir.file("h0.p4.ckpt.quarantined");
  std::ofstream(quarantined) << "corrupt image";

  core::PartitionerConfig config;
  config.numHosts = 2;
  config.resilience.checkpointDir = dir.path();
  config.resilience.enableCheckpoints = true;
  core::partitionGraphResilient(file, core::makePolicy("EEC"), config);
  EXPECT_TRUE(std::filesystem::exists(quarantined));

  config.resilience.checkpointGcAgeSeconds = 0.0;
  core::partitionGraphResilient(file, core::makePolicy("EEC"), config);
  EXPECT_FALSE(std::filesystem::exists(quarantined));
}

TEST(CheckpointStorageTest, ReadFailureFallsThroughToBuddyReplica) {
  TempDir dir;
  obs::ScopedObservability obsScope;
  const auto payload = somePayload();
  core::saveCheckpoint(dir.path(), 0, 4, 3, payload);
  core::saveCheckpointReplica(dir.path(), 0, 4, 3, payload);
  const auto clean = core::loadCheckpoint(dir.path(), 0, 4, 3);
  ASSERT_TRUE(clean.has_value());

  // Every read of host 0's primary file dies with EIO; the escalation
  // ladder's next rung (the buddy replica at host 1) answers instead.
  ScopedStorageFaults scope(
      onePlan(StorageFaultKind::kReadFail, "h0.p3.ckpt", 0, /*repeat=*/100));
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 0, 4, 3).has_value());
  const auto viaReplica = core::loadCheckpointOrReplica(dir.path(), 0, 4, 3);
  ASSERT_TRUE(viaReplica.has_value());
  EXPECT_EQ(*viaReplica, *clean);
  const auto snap = obsScope.sink().metrics->snapshot();
  EXPECT_GE(snap.counterValue("cusp.checkpoint.read_failures"), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: resilient partitioning under storage faults.
// ---------------------------------------------------------------------------

core::PartitionerConfig resilientConfig(const std::string& dir,
                                        uint32_t hosts) {
  core::PartitionerConfig config;
  config.numHosts = hosts;
  config.resilience.checkpointDir = dir;
  config.resilience.enableCheckpoints = true;
  config.resilience.recvTimeoutSeconds = 20.0;
  config.resilience.maxRecoveryAttempts = 4;
  return config;
}

void expectBitIdentical(const core::PartitionResult& baseline,
                        const core::PartitionResult& result) {
  ASSERT_EQ(result.partitions.size(), baseline.partitions.size());
  for (size_t h = 0; h < baseline.partitions.size(); ++h) {
    support::SendBuffer a;
    support::SendBuffer b;
    core::serializeDistGraph(a, baseline.partitions[h]);
    core::serializeDistGraph(b, result.partitions[h]);
    EXPECT_EQ(a.release(), b.release()) << "host " << h;
  }
}

TEST(StorageChaosTest, RenameCrashSweepOverCheckpointWritesStaysExact) {
  const graph::CsrGraph g = graph::generateErdosRenyi(250, 1100, 29);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");
  core::PartitionerConfig clean;
  clean.numHosts = 4;
  const auto baseline = core::partitionGraph(file, policy, clean);

  // Sweep the crash-between-write-and-rename fault over different hosts'
  // checkpoint streams; a transient crash forces the restore path to
  // actually consume what survived.
  for (const char* substring : {"h0.p", "h1.p", "h2.p"}) {
    SCOPED_TRACE(std::string("substring=") + substring);
    TempDir dir;
    core::PartitionerConfig config = resilientConfig(dir.path(), 4);
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->crashes.push_back(
        {/*host=*/1, /*phase=*/4, /*opsIntoPhase=*/0, /*permanent=*/false});
    config.resilience.faultPlan = plan;

    StorageFaultPlan storagePlan;
    storagePlan.faults.push_back(StorageFault{StorageFaultKind::kRenameFail,
                                              substring, /*occurrence=*/0,
                                              /*repeat=*/2, 0});
    ScopedStorageFaults storage(storagePlan);

    core::RecoveryReport report;
    const auto result =
        core::partitionGraphResilient(file, policy, config, &report);
    expectBitIdentical(baseline, result);
    EXPECT_GE(report.attempts, 2u) << "the crash must have fired";
    EXPECT_GE(report.checkpointWriteFailures, 1u);
    EXPECT_FALSE(report.checkpointingDisabledByEnospc);
    EXPECT_GE(storage.stats().renameFailures, 1u);
  }
}

TEST(StorageChaosTest, PersistentEnospcDisablesCheckpointingAndStaysExact) {
  const graph::CsrGraph g = graph::generateErdosRenyi(250, 1100, 29);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");
  core::PartitionerConfig clean;
  clean.numHosts = 4;
  const auto baseline = core::partitionGraph(file, policy, clean);

  TempDir dir;
  obs::ScopedObservability obsScope;
  core::PartitionerConfig config = resilientConfig(dir.path(), 4);
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/2, /*phase=*/3, /*opsIntoPhase=*/0, /*permanent=*/false});
  config.resilience.faultPlan = plan;

  // The disk fills a few checkpoints into the run and stays full.
  ScopedStorageFaults storage(onePlan(StorageFaultKind::kEnospc, ".ckpt",
                                      /*occurrence=*/3, /*repeat=*/100000));

  core::RecoveryReport report;
  const auto result =
      core::partitionGraphResilient(file, policy, config, &report);
  expectBitIdentical(baseline, result);
  EXPECT_GE(report.attempts, 2u);
  EXPECT_TRUE(report.checkpointingDisabledByEnospc);
  EXPECT_GE(report.checkpointWriteFailures, 1u);
  const auto snap = obsScope.sink().metrics->snapshot();
  EXPECT_GE(snap.counterValue("cusp.checkpoint.disabled_enospc"), 1u);
  // The latch stopped the bleeding: once disabled, no further write even
  // reaches the injector, so failures stay far below the plan's budget.
  EXPECT_LT(storage.stats().enospcFailures, 20u);
}

TEST(StorageChaosTest, EnospcMidAnalyticsRunContinuesAndMatchesReference) {
  const graph::CsrGraph g = graph::generateErdosRenyi(220, 1000, 41);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig pc;
  pc.numHosts = 4;
  const auto parts =
      core::partitionGraph(file, core::makePolicy("EEC"), pc);
  const uint64_t source = analytics::maxOutDegreeNode(g);

  TempDir dir;
  analytics::ResilienceOptions options;
  options.checkpointDir = dir.path();
  options.enableCheckpoints = true;
  options.checkpointInterval = 1;
  options.recvTimeoutSeconds = 20.0;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/1, /*phase=*/0, /*opsIntoPhase=*/40, /*permanent=*/false});
  options.faultPlan = plan;

  ScopedStorageFaults storage(onePlan(StorageFaultKind::kEnospc, ".ckpt",
                                      /*occurrence=*/4, /*repeat=*/100000));
  analytics::ResilienceReport report;
  const auto got =
      analytics::runBfsResilient(parts.partitions, source, options, &report);
  EXPECT_EQ(got, analytics::bfsReference(g, source));
  EXPECT_TRUE(report.checkpointingDisabledByEnospc);
  EXPECT_GE(report.checkpointWriteFailures, 1u);
}

// ---------------------------------------------------------------------------
// Straggler deadlines: soft blame reports, hard-deadline eviction.
// ---------------------------------------------------------------------------

TEST(StragglerTest, SoftDeadlineEmitsBlameReportsWithoutEviction) {
  const graph::CsrGraph g = graph::generateErdosRenyi(120, 550, 37);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig pc;
  pc.numHosts = 4;
  const auto parts =
      core::partitionGraph(file, core::makePolicy("EEC"), pc);
  const uint64_t source = analytics::maxOutDegreeNode(g);

  obs::ScopedObservability obsScope;
  analytics::ResilienceOptions options;
  options.recvTimeoutSeconds = 30.0;
  auto plan = std::make_shared<comm::FaultPlan>();
  // Host 1 sustains a ~500x slowdown: 50 ms of pacing per network op.
  plan->slowdowns.push_back(
      comm::HostSlowdown{/*host=*/1, /*factor=*/501.0, /*opMicros=*/100,
                         /*fromPhase=*/0});
  options.faultPlan = plan;
  options.straggler.softDeadlineSeconds = 0.01;  // hard deadline off

  analytics::ResilienceReport report;
  const auto got =
      analytics::runBfsResilient(parts.partitions, source, options, &report);
  EXPECT_EQ(got, analytics::bfsReference(g, source));
  EXPECT_TRUE(report.evictions.empty()) << "soft deadline never evicts";
  EXPECT_EQ(report.attempts, 1u);
  EXPECT_GE(report.stragglerSoftReports, 1u);
  const auto snap = obsScope.sink().metrics->snapshot();
  EXPECT_GE(snap.counterValue("cusp.straggler.soft_reports",
                              {{"host", "1"}}),
            1u);
  EXPECT_EQ(snap.counterValue("cusp.straggler.hard_evictions",
                              {{"host", "1"}}),
            0u);
}

TEST(StragglerTest, HardDeadlineEvictsPathologicalStragglerFromAnalytics) {
  const graph::CsrGraph g = graph::generateErdosRenyi(150, 700, 43);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig pc;
  pc.numHosts = 4;
  const auto parts =
      core::partitionGraph(file, core::makePolicy("EEC"), pc);
  const uint64_t source = analytics::maxOutDegreeNode(g);
  const auto expected = analytics::bfsReference(g, source);
  uint64_t maxLevel = 0;
  for (uint64_t d : expected) {
    if (d != UINT64_MAX) {
      maxLevel = std::max(maxLevel, d);
    }
  }

  TempDir dir;
  obs::ScopedObservability obsScope;
  analytics::ResilienceOptions options;
  options.checkpointDir = dir.path();
  options.enableCheckpoints = true;
  options.checkpointInterval = 1;
  options.degradedMode = true;
  options.recvTimeoutSeconds = 60.0;
  auto plan = std::make_shared<comm::FaultPlan>();
  // Host 2 paces every network op by ~100 ms — a sustained ~1000x
  // slowdown, far beyond anything the healthy peers accrue.
  plan->slowdowns.push_back(
      comm::HostSlowdown{/*host=*/2, /*factor=*/1001.0, /*opMicros=*/100,
                         /*fromPhase=*/0});
  options.faultPlan = plan;
  options.straggler.softDeadlineSeconds = 0.02;
  options.straggler.hardDeadlineSeconds = 1.2;
  options.straggler.hardDeadlineMedianFactor = 4.0;

  analytics::ResilienceReport report;
  const auto got =
      analytics::runBfsResilient(parts.partitions, source, options, &report);
  EXPECT_EQ(got, expected) << "eviction must cost time, never correctness";
  ASSERT_EQ(report.evictions, std::vector<comm::HostId>{2});
  EXPECT_EQ(report.finalAliveHosts, 3u);
  ASSERT_FALSE(report.failureKinds.empty());
  EXPECT_EQ(report.failureKinds[0], "StragglerDeadline");
  // Condemnation is bounded: the laggard is thrown out on the attempt its
  // blame crosses the deadline, and the final attempt finishes within the
  // algorithm's own superstep budget.
  EXPECT_LE(report.failures.size(), 2u);
  EXPECT_LE(report.supersteps, static_cast<uint32_t>(maxLevel) + 3u);
  EXPECT_GE(report.stragglerSoftReports, 1u);
  const auto snap = obsScope.sink().metrics->snapshot();
  EXPECT_GE(snap.counterValue("cusp.straggler.hard_evictions",
                              {{"host", "2"}}),
            1u);
  EXPECT_GE(snap.counterValue("cusp.straggler.soft_reports",
                              {{"host", "2"}}),
            1u);
}

TEST(StragglerTest, HardDeadlineEvictsStragglerFromPartitioning) {
  const graph::CsrGraph g = graph::generateErdosRenyi(250, 1100, 53);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");

  TempDir dir;
  core::PartitionerConfig config = resilientConfig(dir.path(), 4);
  config.resilience.degradedMode = true;
  auto plan = std::make_shared<comm::FaultPlan>();
  // Host 3 paces every op by ~150 ms once master assignment starts.
  plan->slowdowns.push_back(
      comm::HostSlowdown{/*host=*/3, /*factor=*/1501.0, /*opMicros=*/100,
                         /*fromPhase=*/2});
  config.resilience.faultPlan = plan;
  config.resilience.straggler.softDeadlineSeconds = 0.02;
  config.resilience.straggler.hardDeadlineSeconds = 0.5;

  core::RecoveryReport report;
  const auto result =
      core::partitionGraphResilient(file, policy, config, &report);
  // The laggard was evicted and the survivors re-partitioned (Path B: no
  // complete phase-5 set existed yet when the deadline fired).
  ASSERT_EQ(result.partitions.size(), 3u);
  ASSERT_EQ(report.evictions.size(), 1u);
  EXPECT_EQ(report.evictions[0].host, 3u);
  ASSERT_FALSE(report.failureKinds.empty());
  EXPECT_EQ(report.failureKinds[0], "StragglerDeadline");
  EXPECT_GE(report.stragglerSoftReports, 1u);
  ASSERT_NO_THROW(core::validatePartitions(g, result.partitions));
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(result.partitions, source),
            analytics::bfsReference(g, source));
  // The condemned straggler's checkpoint store was NOT torn down — its
  // machine is slow, not dead (only the epoch moved on).
  EXPECT_GE(core::latestValidCheckpoint(dir.path(), 3, 4, 5), 1u);
}

}  // namespace
}  // namespace cusp
