#!/usr/bin/env bash
# Builds and runs the test suite under ASan+UBSan and under TSan, using the
# presets from CMakePresets.json. The concurrency machinery (simulated
# network, per-host threads, fault injection, phase-5 receiver threads) is
# exactly the code most likely to hide races and lifetime bugs, so both
# sanitizers are part of the pre-merge checklist.
#
# Usage: tests/run_sanitized.sh [asan-ubsan|tsan]   (default: both)
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("${@:-asan-ubsan tsan}")
if [ $# -eq 0 ]; then
  presets=(asan-ubsan tsan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$jobs"
done
echo "==== all sanitized suites passed ===="
