#!/usr/bin/env bash
# Builds and runs the test suite under ASan+UBSan and under TSan, using the
# presets from CMakePresets.json. The concurrency machinery (simulated
# network, per-host threads, fault injection, phase-5 receiver threads) is
# exactly the code most likely to hide races and lifetime bugs, so both
# sanitizers are part of the pre-merge checklist.
#
# Usage: tests/run_sanitized.sh [asan-ubsan|tsan|ubsan|tsan-degraded|
# tsan-chaos|tsan-obs|tsan-storage|tsan-splitbrain|asan-memory|
# tsan-service|tsan-commbuf]
# (default: both full suites).
# `tsan-degraded` builds
# the TSan preset but runs only the tests labeled `degraded` (eviction,
# buddy replication, degraded recovery) — the membership machinery races
# against blocked receivers by design, so it gets a focused TSan lane cheap
# enough to run on every change. `tsan-chaos` is the same idea for the
# `chaos` label (corruption recovery + mixed-fault pipeline runs): the
# rollback/restart paths tear down and respawn host threads mid-run, which
# is where TSan earns its keep. `tsan-obs` runs the `obs` label under TSan:
# the metrics registry and trace buffer are hammered concurrently by every
# host thread, so their lock/atomic discipline gets its own cheap lane.
# `tsan-storage` runs the `storage` label under TSan: the storage fault
# injector and checkpoint-health latch are shared process-wide across every
# host thread, and the straggler monitor is read from concurrent receivers,
# so their synchronization gets a focused lane too. `tsan-splitbrain` runs
# the `splitbrain` label under TSan: quorum fencing races host threads
# against each other (concurrent agreeMembership evictions, the shared
# write fence, suspicion tracking, partitioned-send failure paths), so the
# split-brain machinery gets its own lane. `asan-memory` runs the
# `memory` label under ASan+UBSan: the memory governor moves the pipeline's
# buffers through charge/release pairs, spill files and takeVector()
# handoffs, so leaks and use-after-release there are exactly what ASan
# catches. `tsan-service` runs the `service` label under TSan: the daemon's
# worker pool, the engine's shared partition cache and host-pool semaphore,
# the journal, and the concurrent attach/detach hammering of the process-
# wide seams (test_seams) are the service layer's concurrency surface, so
# it gets its own lane. `tsan-commbuf` runs the `commbuf` label under TSan:
# the send-aggregation channels are written by sender threads holding the
# channel mutex while blocked receivers age-pull and flush them, and the
# cached mailbox-backlog counter is bumped from every enqueue/dedup/evict
# path — exactly the lock-ordering and atomic discipline a differential
# buffered-vs-legacy battery exercises hardest. `ubsan` is a standalone
# UBSan build for when an ASan report needs to be separated from a UB
# report.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("${@:-asan-ubsan tsan}")
if [ $# -eq 0 ]; then
  presets=(asan-ubsan tsan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  label_args=()
  build_preset="$preset"
  if [ "$preset" = "tsan-degraded" ]; then
    build_preset="tsan"
    label_args=(-L degraded)
  elif [ "$preset" = "tsan-chaos" ]; then
    build_preset="tsan"
    label_args=(-L chaos)
  elif [ "$preset" = "tsan-obs" ]; then
    build_preset="tsan"
    label_args=(-L obs)
  elif [ "$preset" = "tsan-storage" ]; then
    build_preset="tsan"
    label_args=(-L storage)
  elif [ "$preset" = "tsan-splitbrain" ]; then
    build_preset="tsan"
    label_args=(-L splitbrain)
  elif [ "$preset" = "asan-memory" ]; then
    build_preset="asan-ubsan"
    label_args=(-L memory)
  elif [ "$preset" = "tsan-service" ]; then
    build_preset="tsan"
    label_args=(-L service)
  elif [ "$preset" = "tsan-commbuf" ]; then
    build_preset="tsan"
    label_args=(-L commbuf)
  fi
  echo "==== [$preset] configure ===="
  cmake --preset "$build_preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$build_preset" -j "$jobs"
  echo "==== [$preset] test ===="
  ctest --preset "$build_preset" -j "$jobs" "${label_args[@]}"
done
echo "==== all sanitized suites passed ===="
