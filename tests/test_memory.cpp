// The memory governor (support/memory.h) and its integration with the
// partitioning pipeline: budget accounting, deterministic fault injection,
// the spill codec, bounded-window GraphFile streaming, and the resilient
// driver's memory-pressure degradation ladder.
//
// The end-to-end invariants:
//  * window streaming, spilling and chunk-size changes alter HOW edges are
//    fetched, never WHAT is produced — partitions stay bit-identical to
//    resident-window runs for every deterministic policy;
//  * a budget smaller than the graph's in-memory edge footprint still
//    completes (the refusable window reservations fail over to streaming);
//  * seeded memory chaos (allocation refusals + budget shrinks) is absorbed
//    by the degradation ladder with zero aborts and unchanged output.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "support/memory.h"
#include "support/random.h"
#include "testutil.h"

namespace cusp {
namespace {

using support::BudgetedVector;
using support::MemoryBudget;
using support::MemoryFault;
using support::MemoryFaultInjector;
using support::MemoryFaultKind;
using support::MemoryFaultPlan;
using support::MemoryPressure;
using support::ScopedMemoryBudget;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cusp_memory_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

// Bit-identical partition comparison: topology, id maps, master metadata.
void expectSamePartitions(const std::vector<core::DistGraph>& a,
                          const std::vector<core::DistGraph>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t h = 0; h < a.size(); ++h) {
    EXPECT_TRUE(a[h].graph == b[h].graph)
        << what << ": host " << h << " topology differs";
    EXPECT_EQ(a[h].numMasters, b[h].numMasters) << what << ": host " << h;
    EXPECT_EQ(a[h].localToGlobal, b[h].localToGlobal)
        << what << ": host " << h;
    EXPECT_EQ(a[h].masterHostOfLocal, b[h].masterHostOfLocal)
        << what << ": host " << h;
  }
}

// --- MemoryBudget ------------------------------------------------------------

TEST(MemoryBudgetTest, ReserveReleaseAccounting) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.tryReserve(400, "a"));
  EXPECT_TRUE(budget.tryReserve(400, "b"));
  EXPECT_EQ(budget.inUseBytes(), 800u);
  EXPECT_EQ(budget.peakBytes(), 800u);
  budget.release(400);
  EXPECT_EQ(budget.inUseBytes(), 400u);
  EXPECT_EQ(budget.peakBytes(), 800u);  // high-water mark sticks
  EXPECT_TRUE(budget.tryReserve(600, "c"));
  EXPECT_EQ(budget.peakBytes(), 1000u);
}

TEST(MemoryBudgetTest, TryReserveRefusesOverCapWithoutCharging) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.tryReserve(900, "a"));
  EXPECT_FALSE(budget.tryReserve(200, "b"));
  EXPECT_EQ(budget.inUseBytes(), 900u);  // failed reservation left no charge
  EXPECT_EQ(budget.stats().reserveFailures, 1u);
}

TEST(MemoryBudgetTest, ZeroCapIsAccountingOnly) {
  MemoryBudget budget(0);
  EXPECT_TRUE(budget.tryReserve(1ull << 40, "huge"));
  EXPECT_EQ(budget.inUseBytes(), 1ull << 40);
  EXPECT_FALSE(budget.underPressure());
}

TEST(MemoryBudgetTest, ReserveThrowsTypedPressure) {
  MemoryBudget budget(100);
  try {
    budget.reserve(200, "partition.window.h2");
    FAIL() << "expected MemoryPressure";
  } catch (const MemoryPressure& e) {
    EXPECT_EQ(e.requestedBytes, 200u);
    EXPECT_EQ(e.totalBytes, 100u);
    EXPECT_EQ(e.context, "partition.window.h2");
  }
}

TEST(MemoryBudgetTest, OverdraftNeverFailsButMovesGauges) {
  MemoryBudget budget(100);
  budget.reserveOverdraft(500);
  EXPECT_EQ(budget.inUseBytes(), 500u);
  EXPECT_EQ(budget.peakBytes(), 500u);
  EXPECT_TRUE(budget.underPressure());
  // New refusable reservations fail until usage drains below the cap.
  EXPECT_FALSE(budget.tryReserve(1, "x"));
  budget.release(500);
  EXPECT_TRUE(budget.tryReserve(1, "x"));
}

TEST(MemoryBudgetTest, SpillableChargesOverCap) {
  // The streaming chunk buffer is the mechanism of staying under budget:
  // the cap never refuses it, even when overdraft state (the final
  // partition arrays) already sits above the cap.
  MemoryBudget budget(100);
  budget.reserveOverdraft(1000);
  EXPECT_NO_THROW(budget.reserveSpillable(50, "partition.chunk.h0"));
  EXPECT_EQ(budget.inUseBytes(), 1050u);
  budget.release(50);
}

TEST(MemoryBudgetTest, SpillableHonorsInjectedFaults) {
  MemoryFaultPlan plan;
  plan.faults.push_back({MemoryFaultKind::kAllocFail, "chunk.h1", 1, 1, 0});
  MemoryBudget budget(0, std::make_shared<MemoryFaultInjector>(plan));
  EXPECT_NO_THROW(budget.reserveSpillable(10, "partition.chunk.h1"));
  EXPECT_THROW(budget.reserveSpillable(10, "partition.chunk.h1"),
               MemoryPressure);
  EXPECT_NO_THROW(budget.reserveSpillable(10, "partition.chunk.h1"));
  EXPECT_NO_THROW(budget.reserveSpillable(10, "partition.chunk.h0"));
}

TEST(MemoryBudgetTest, ShrinkNeverGrows) {
  MemoryBudget budget(1000);
  budget.shrinkTo(600);
  EXPECT_EQ(budget.totalBytes(), 600u);
  budget.shrinkTo(800);  // growth request ignored
  EXPECT_EQ(budget.totalBytes(), 600u);
  EXPECT_EQ(budget.stats().shrinks, 1u);
}

TEST(MemoryBudgetTest, UnderPressureCountsCommBacklog) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.tryReserve(500, "a"));
  EXPECT_FALSE(budget.underPressure());
  budget.noteCommBacklog(400);  // 500 + 400 >= 1000 - 125
  EXPECT_TRUE(budget.underPressure());
  budget.noteCommBacklog(0);
  EXPECT_FALSE(budget.underPressure());
}

// --- MemoryFaultInjector -----------------------------------------------------

TEST(MemoryFaultInjectorTest, OccurrenceAndRepeatMatchDeterministically) {
  MemoryFaultPlan plan;
  plan.faults.push_back(
      {MemoryFaultKind::kAllocFail, "window", /*occurrence=*/1,
       /*repeat=*/2, 0});
  for (int run = 0; run < 2; ++run) {
    MemoryFaultInjector injector(plan);
    EXPECT_FALSE(injector.onReserve("partition.window.h0").has_value());
    EXPECT_TRUE(injector.onReserve("partition.window.h1").has_value());
    EXPECT_TRUE(injector.onReserve("partition.window.h2").has_value());
    EXPECT_FALSE(injector.onReserve("partition.window.h3").has_value());
    // Non-matching contexts never advance the counter.
    EXPECT_FALSE(injector.onReserve("partition.chunk.h0").has_value());
    EXPECT_EQ(injector.stats().allocFailuresInjected, 2u);
  }
}

TEST(MemoryFaultInjectorTest, BudgetShrinkHalvesWhenUnspecified) {
  MemoryFaultPlan plan;
  plan.faults.push_back({MemoryFaultKind::kBudgetShrink, "", 0, 1, 0});
  MemoryBudget budget(1024, std::make_shared<MemoryFaultInjector>(plan));
  EXPECT_TRUE(budget.tryReserve(100, "any"));  // shrink fires, then charges
  EXPECT_EQ(budget.totalBytes(), 512u);
}

TEST(MemoryFaultInjectorTest, RandomPlanIsDeterministicInSeed) {
  const MemoryFaultPlan a = support::randomMemoryFaultPlan(7, 4);
  const MemoryFaultPlan b = support::randomMemoryFaultPlan(7, 4);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
    EXPECT_EQ(a.faults[i].contextSubstring, b.faults[i].contextSubstring);
    EXPECT_EQ(a.faults[i].occurrence, b.faults[i].occurrence);
    EXPECT_EQ(a.faults[i].repeat, b.faults[i].repeat);
  }
}

// --- process attachment + BudgetedVector -------------------------------------

TEST(ScopedBudgetTest, AttachDetachNests) {
  EXPECT_FALSE(support::memoryBudgetAttached());
  {
    ScopedMemoryBudget outer(1000);
    EXPECT_TRUE(support::memoryBudgetAttached());
    EXPECT_EQ(support::memoryBudget().get(), outer.budget().get());
    {
      ScopedMemoryBudget inner(500);
      EXPECT_EQ(support::memoryBudget().get(), inner.budget().get());
    }
    EXPECT_EQ(support::memoryBudget().get(), outer.budget().get());
  }
  EXPECT_FALSE(support::memoryBudgetAttached());
}

TEST(BudgetedVectorTest, ChargesGrowthReleasesOnDestruction) {
  ScopedMemoryBudget scope(1 << 20);
  {
    BudgetedVector<uint64_t> v("test.vector");
    v.resize(100);
    EXPECT_GE(scope.budget()->inUseBytes(), 100 * sizeof(uint64_t));
  }
  EXPECT_EQ(scope.budget()->inUseBytes(), 0u);
}

TEST(BudgetedVectorTest, OverCapGrowthThrowsWithoutOverdraft) {
  ScopedMemoryBudget scope(1024);
  BudgetedVector<uint64_t> v("test.vector");
  EXPECT_THROW(v.resize(4096), MemoryPressure);
  BudgetedVector<uint64_t> overdraft("test.overdraft", /*overdraft=*/true);
  EXPECT_NO_THROW(overdraft.resize(4096));
}

TEST(BudgetedVectorTest, TakeVectorReleasesChargeAndKeepsContents) {
  ScopedMemoryBudget scope(1 << 20);
  BudgetedVector<uint64_t> v("test.vector");
  for (uint64_t i = 0; i < 50; ++i) {
    v.push_back(i * 3);
  }
  const std::vector<uint64_t> out = v.takeVector();
  EXPECT_EQ(scope.budget()->inUseBytes(), 0u);
  ASSERT_EQ(out.size(), 50u);
  EXPECT_EQ(out[49], 147u);
}

// --- spill codec -------------------------------------------------------------

TEST(SpillCodecTest, RoundTripsWithAndWithoutWeights) {
  support::Rng rng(99);
  std::vector<uint64_t> dests(5000);
  std::vector<uint32_t> weights(5000);
  for (size_t i = 0; i < dests.size(); ++i) {
    // Correlated destinations, like a real window.
    dests[i] = (i / 7) * 3 + rng.nextBounded(64);
    weights[i] = static_cast<uint32_t>(rng.nextBounded(1u << 20));
  }
  const auto bare =
      support::encodeEdgeSegment(dests.data(), dests.size(), nullptr);
  auto decodedBare = support::decodeEdgeSegment(bare);
  EXPECT_EQ(decodedBare.dests, dests);
  EXPECT_TRUE(decodedBare.weights.empty());
  // Delta+varint should beat the raw 8-byte encoding on correlated ids.
  EXPECT_LT(bare.size(), dests.size() * sizeof(uint64_t));

  const auto weighted =
      support::encodeEdgeSegment(dests.data(), dests.size(), weights.data());
  auto decoded = support::decodeEdgeSegment(weighted);
  EXPECT_EQ(decoded.dests, dests);
  EXPECT_EQ(decoded.weights, weights);
}

TEST(SpillCodecTest, RoundTripsEmptyAndUnsortedSegments) {
  const auto empty = support::encodeEdgeSegment(nullptr, 0, nullptr);
  EXPECT_TRUE(support::decodeEdgeSegment(empty).dests.empty());
  // Descending destinations exercise negative deltas through zigzag.
  std::vector<uint64_t> dests = {1ull << 40, 1000, 999, 5, 1ull << 33, 0};
  const auto image =
      support::encodeEdgeSegment(dests.data(), dests.size(), nullptr);
  EXPECT_EQ(support::decodeEdgeSegment(image).dests, dests);
}

TEST(SpillCodecTest, RejectsCorruptImage) {
  std::vector<uint64_t> dests = {1, 2, 3, 4};
  auto image = support::encodeEdgeSegment(dests.data(), dests.size(), nullptr);
  auto corrupt = image;
  corrupt[2] ^= 0x40;
  EXPECT_THROW(support::decodeEdgeSegment(corrupt), std::runtime_error);
  auto truncated = image;
  truncated.pop_back();
  EXPECT_THROW(support::decodeEdgeSegment(truncated), std::runtime_error);
}

TEST(SpillCodecTest, SpillAccountsBytesAndRestores) {
  TempDir dir;
  ScopedMemoryBudget scope(1 << 20);
  std::vector<uint64_t> dests = {10, 11, 12, 900, 901};
  const uint64_t written = support::spillEdgeSegment(
      dir.file("seg.spill"), dests.data(), dests.size(), nullptr);
  EXPECT_GT(written, 0u);
  EXPECT_EQ(scope.budget()->spillBytes(), written);
  const auto restored = support::restoreEdgeSegment(dir.file("seg.spill"));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->dests, dests);
  EXPECT_FALSE(
      support::restoreEdgeSegment(dir.file("missing.spill")).has_value());
}

// --- windowed GraphFile ------------------------------------------------------

// Every way of slicing the on-disk edge array through the window API must
// be byte-identical to slicing the resident arrays: fixed widths from a
// single edge to the whole file, uneven random cuts, and node-aligned cuts
// (the shapes the streaming chunk walk produces).
TEST(WindowedGraphFileTest, FuzzWindowSlicesMatchResidentArrays) {
  TempDir dir;
  graph::RmatParams params;
  params.scale = 9;
  params.numEdges = 6000;
  params.seed = 21;
  const graph::CsrGraph g =
      graph::withRandomWeights(graph::generateRmat(params), 1 << 16, 5);
  const std::string path = dir.file("g.cgr");
  graph::GraphFile::save(path, g);

  const graph::GraphFile resident = graph::GraphFile::load(path);
  const graph::GraphFile windowed = graph::GraphFile::openWindowed(path);
  ASSERT_TRUE(windowed.windowed());
  ASSERT_EQ(windowed.numEdges(), g.numEdges());
  const auto dests = resident.destinations();
  const auto data = resident.edgeDataArray();

  auto checkWindow = [&](uint64_t begin, uint64_t end) {
    const auto d = windowed.readDestWindow(begin, end);
    const auto w = windowed.readEdgeDataWindow(begin, end);
    ASSERT_EQ(d.size(), end - begin);
    ASSERT_EQ(w.size(), end - begin);
    for (uint64_t i = 0; i < end - begin; ++i) {
      ASSERT_EQ(d[i], dests[begin + i]) << "window [" << begin << "," << end
                                        << ") dest " << i;
      ASSERT_EQ(w[i], data[begin + i]) << "window [" << begin << "," << end
                                       << ") weight " << i;
    }
  };

  const uint64_t n = g.numEdges();
  for (uint64_t width : {uint64_t{1}, uint64_t{3}, uint64_t{97},
                         uint64_t{1024}, n}) {
    for (uint64_t begin = 0; begin < n; begin += width) {
      checkWindow(begin, std::min(begin + width, n));
    }
  }
  support::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const uint64_t a = rng.nextBounded(n + 1);
    const uint64_t b = rng.nextBounded(n + 1);
    checkWindow(std::min(a, b), std::max(a, b));
  }
  // Node-aligned cuts, as the streaming chunk table produces them.
  const auto rows = windowed.rowStarts();
  for (uint64_t node = 0; node + 1 < rows.size(); node += 37) {
    const uint64_t endNode = std::min<uint64_t>(node + 37, rows.size() - 1);
    checkWindow(rows[node], rows[endNode]);
  }
}

TEST(WindowedGraphFileTest, WholeImageAccessorsThrowWindowApiWorks) {
  TempDir dir;
  const graph::CsrGraph g = graph::makeGrid(8, 9);
  const std::string path = dir.file("grid.cgr");
  graph::GraphFile::save(path, g);
  const graph::GraphFile windowed = graph::GraphFile::openWindowed(path);
  EXPECT_THROW(windowed.destinations(), graph::GraphFileError);
  EXPECT_THROW(windowed.edgeDataArray(), graph::GraphFileError);
  EXPECT_THROW(windowed.outNeighbors(0), graph::GraphFileError);
  EXPECT_EQ(windowed.rowStarts().size(), g.numNodes() + 1);
  // toCsr streams in bounded chunks and reproduces the full graph.
  EXPECT_TRUE(windowed.toCsr() == g);
}

// --- streaming / spilling partitioning ---------------------------------------

// The determinism acceptance: forcing bounded-window streaming (at several
// chunk granularities, with and without spill-to-disk) produces partitions
// bit-identical to the resident-window pipeline for every DETERMINISTIC
// (pure) policy, on structurally diverse graphs. Stateful FennelEB
// policies are timing-dependent even between two resident runs (see
// test_partitioner.cpp), so for those the structural invariant checker
// stands in for byte comparison.
TEST(StreamingPartitionTest, StreamingBitIdenticalAcrossChunkSizesAndSpill) {
  TempDir dir;
  const std::vector<testutil::NamedGraph> graphs = {
      {"rmat8", [] {
         graph::RmatParams p;
         p.scale = 8;
         p.numEdges = 2048;
         p.seed = 11;
         return graph::generateRmat(p);
       }()},
      {"web400w", graph::withRandomWeights(
                      [] {
                        graph::WebCrawlParams p;
                        p.numNodes = 400;
                        p.avgOutDegree = 8.0;
                        p.seed = 13;
                        return graph::generateWebCrawl(p);
                      }(),
                      64, 3)},
  };
  for (const auto& [name, g] : graphs) {
    const graph::GraphFile file = graph::GraphFile::fromCsr(g);
    for (const auto& policyName : core::policyCatalog()) {
      core::PartitionerConfig config;
      config.numHosts = 4;
      config.stateSyncRounds = 10;
      const auto policy = core::makePolicy(policyName);
      const bool deterministic = policy.master.isPure();
      const auto baseline = core::partitionGraph(file, policy, config);

      auto check = [&](const core::PartitionResult& result,
                       const std::string& what) {
        if (deterministic) {
          expectSamePartitions(baseline.partitions, result.partitions,
                               what);
        } else {
          const auto violations =
              testutil::partitionInvariantViolations(g, result.partitions);
          EXPECT_TRUE(violations.empty())
              << what << ": "
              << (violations.empty() ? "" : violations[0]);
        }
      };
      for (uint64_t chunkEdges : {uint64_t{1}, uint64_t{64},
                                  uint64_t{1} << 16}) {
        core::PartitionerConfig streaming = config;
        streaming.forceStreamingWindows = true;
        streaming.streamChunkEdges = chunkEdges;
        check(core::partitionGraph(file, policy, streaming),
              name + "/" + policyName + "/chunk=" +
                  std::to_string(chunkEdges));
      }
      core::PartitionerConfig spilling = config;
      spilling.forceStreamingWindows = true;
      spilling.streamChunkEdges = 256;
      spilling.spillDir = dir.file(name + "." + policyName + ".spill");
      check(core::partitionGraph(file, policy, spilling),
            name + "/" + policyName + "/spill");
    }
  }
}

// A windowed (never fully materialized) GraphFile feeds the same streaming
// pipeline: end-to-end partitions from disk match the in-memory reference.
TEST(StreamingPartitionTest, WindowedFileOnDiskMatchesResidentFile) {
  TempDir dir;
  graph::RmatParams params;
  params.scale = 8;
  params.numEdges = 3000;
  params.seed = 23;
  const graph::CsrGraph g = graph::generateRmat(params);
  const std::string path = dir.file("g.cgr");
  graph::GraphFile::save(path, g);
  const graph::GraphFile resident = graph::GraphFile::fromCsr(g);
  const graph::GraphFile windowed = graph::GraphFile::openWindowed(path);

  core::PartitionerConfig config;
  config.numHosts = 4;
  const auto policy = core::makePolicy("EEC");
  const auto baseline = core::partitionGraph(resident, policy, config);
  const auto fromDisk = core::partitionGraph(windowed, policy, config);
  expectSamePartitions(baseline.partitions, fromDisk.partitions,
                       "windowed-file EEC");
  const auto violations =
      testutil::partitionInvariantViolations(g, fromDisk.partitions);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
}

// The scale acceptance: a graph ten times the bench inputs partitions
// under a budget 4x smaller than its in-memory edge footprint — the
// refusable window reservations fail over to streaming — and the output is
// bit-identical to the unbudgeted run.
TEST(StreamingPartitionTest, TightBudgetAtTenXBenchScaleBitIdentical) {
  const graph::CsrGraph g = graph::makeStandIn("kron", 2'500'000);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const uint64_t edgeFootprint = g.numEdges() * sizeof(uint64_t);
  core::PartitionerConfig config;
  config.numHosts = 4;
  const auto policy = core::makePolicy("EEC");
  const auto baseline = core::partitionGraph(file, policy, config);

  ScopedMemoryBudget scope(edgeFootprint / 4);
  const auto budgeted = core::partitionGraph(file, policy, config);
  const auto stats = scope.stats();
  EXPECT_GT(stats.reserveFailures, 0u)
      << "cap was expected to refuse resident windows";
  EXPECT_GT(stats.peakBytes, 0u);
  expectSamePartitions(baseline.partitions, budgeted.partitions,
                       "tight budget at 10x scale");
}

// config.memoryBudgetBytes attaches the budget without any process-wide
// setup by the caller (the CLI-less path examples use).
TEST(StreamingPartitionTest, ConfigBudgetAttachesPerRun) {
  const graph::CsrGraph g = testutil::testGraphCatalog()[5].graph;  // rmat8
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig config;
  config.numHosts = 4;
  const auto policy = core::makePolicy("CVC");
  const auto baseline = core::partitionGraph(file, policy, config);
  ASSERT_FALSE(support::memoryBudgetAttached());
  config.memoryBudgetBytes = 4096;  // far below the window footprint
  const auto budgeted = core::partitionGraph(file, policy, config);
  EXPECT_FALSE(support::memoryBudgetAttached());  // detached after the run
  expectSamePartitions(baseline.partitions, budgeted.partitions,
                       "config-attached budget");
}

// --- the degradation ladder --------------------------------------------------

// Three injected allocation failures at the chunk seam walk the ladder
// rung by rung — spill-to-checkpoint-store, then two chunk halvings — and
// the run completes without burning a single ordinary retry attempt.
TEST(MemoryLadderTest, InjectedChunkFaultsWalkTheLadder) {
  TempDir dir;
  const graph::CsrGraph g = testutil::testGraphCatalog()[5].graph;  // rmat8
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig config;
  config.numHosts = 4;
  config.forceStreamingWindows = true;
  config.streamChunkEdges = 4096;
  config.memoryBudgetBytes = 1 << 20;
  config.resilience.enableCheckpoints = true;
  config.resilience.checkpointDir = dir.file("ckpt");
  config.resilience.maxRecoveryAttempts = 1;  // ladder rungs must be free
  auto plan = std::make_shared<MemoryFaultPlan>();
  plan->faults.push_back(
      {MemoryFaultKind::kAllocFail, "partition.chunk.h0", 0, 3, 0});
  config.resilience.memoryFaultPlan = plan;

  core::PartitionerConfig clean;
  clean.numHosts = 4;
  const auto policy = core::makePolicy("EEC");
  const auto baseline = core::partitionGraph(file, policy, clean);

  core::RecoveryReport report;
  const auto result =
      core::partitionGraphResilient(file, policy, config, &report);
  EXPECT_EQ(report.memoryPressureEvents, 3u);
  EXPECT_GT(report.spillBytesWritten, 0u);  // rung 2 engaged the spill store
  EXPECT_GT(report.memoryPeakBytes, 0u);
  expectSamePartitions(baseline.partitions, result.partitions,
                       "ladder-recovered run");
}

// An injected budget shrink makes the previously fitting windows refuse on
// the next attempt; the ladder's first rung (streaming) absorbs it.
TEST(MemoryLadderTest, BudgetShrinkFallsBackToStreaming) {
  const graph::CsrGraph g = testutil::testGraphCatalog()[5].graph;  // rmat8
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig config;
  config.numHosts = 4;
  config.memoryBudgetBytes = 1 << 20;
  auto plan = std::make_shared<MemoryFaultPlan>();
  // Shrink to a cap no window fits on the very first window reservation;
  // tryReserve then refuses and the reading phase streams — no exception,
  // no retry, just degradation.
  plan->faults.push_back(
      {MemoryFaultKind::kBudgetShrink, "partition.window", 0, 1, 1024});
  config.resilience.memoryFaultPlan = plan;

  const auto policy = core::makePolicy("EEC");
  core::PartitionerConfig clean;
  clean.numHosts = 4;
  const auto baseline = core::partitionGraph(file, policy, clean);
  core::RecoveryReport report;
  const auto result =
      core::partitionGraphResilient(file, policy, config, &report);
  EXPECT_EQ(report.attempts, 1u);  // absorbed without any pipeline restart
  expectSamePartitions(baseline.partitions, result.partitions,
                       "shrink-degraded run");
}

// The chaos acceptance: seeded random memory-fault plans (allocation
// refusals + cap shrinks across hosts) against a tight budget, every run
// completing through the ladder with zero aborts and bit-identical output.
TEST(MemoryChaosTest, SeededFaultSweepCompletesViaLadder) {
  TempDir dir;
  graph::RmatParams params;
  params.scale = 9;
  params.numEdges = 8192;
  params.seed = 31;
  const graph::CsrGraph g = graph::generateRmat(params);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");

  core::PartitionerConfig clean;
  clean.numHosts = 4;
  const auto baseline = core::partitionGraph(file, policy, clean);

  uint32_t plansWithFaults = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    core::PartitionerConfig config;
    config.numHosts = 4;
    config.memoryBudgetBytes = 96 * 1024;  // tight: windows are ~16 KB each
    config.resilience.enableCheckpoints = true;
    config.resilience.checkpointDir =
        dir.file("ckpt." + std::to_string(seed));
    config.resilience.maxRecoveryAttempts = 8;
    auto plan = std::make_shared<MemoryFaultPlan>(
        support::randomMemoryFaultPlan(seed, config.numHosts));
    plansWithFaults += plan->empty() ? 0 : 1;
    config.resilience.memoryFaultPlan = plan;

    core::RecoveryReport report;
    std::vector<core::DistGraph> partitions;
    ASSERT_NO_THROW(partitions = core::partitionGraphResilient(
                                     file, policy, config, &report)
                                     .partitions)
        << "seed " << seed;
    expectSamePartitions(baseline.partitions, partitions,
                         "chaos seed " + std::to_string(seed));
  }
  // The sweep must actually exercise the machinery: the seeded generator
  // is deterministic, so these are fixed properties of the sweep, not
  // flakes.
  EXPECT_GT(plansWithFaults, 0u);
}

}  // namespace
}  // namespace cusp
