// Degraded-mode tests: membership eviction after permanent host loss,
// buddy-replicated checkpoints, phase-5 state redistribution (Path A) and
// edge-range re-reading re-partition (Path B), plus the membership-aware
// analytics engine. The driver-level tests assert the ISSUE's acceptance
// shape: a permanent crash of one of four hosts in any phase yields a
// three-host partition set whose masters cover every vertex exactly once
// and whose analytics match the single-image reference.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <unistd.h>

#include "analytics/algorithms.h"
#include "analytics/reference.h"
#include "comm/fault.h"
#include "comm/network.h"
#include "core/checkpoint.h"
#include "core/degraded.h"
#include "core/dist_graph.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "testutil.h"

namespace cusp {
namespace {

using core::DistGraph;
using core::PartitionerConfig;
using core::PartitionResult;
using core::RecoveryReport;

// RAII temp directory; recursive removal covers replicas and the driver's
// per-epoch subdirectories.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cusp_degraded_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> serializedBytes(const DistGraph& part) {
  support::SendBuffer buf;
  core::serializeDistGraph(buf, part);
  return buf.release();
}

void expectBitIdentical(const std::vector<DistGraph>& expected,
                        const std::vector<DistGraph>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t h = 0; h < expected.size(); ++h) {
    EXPECT_EQ(serializedBytes(expected[h]), serializedBytes(actual[h]))
        << "partition of slot " << h << " diverged";
  }
}

// Master host of every global vertex, derived from a partition family;
// asserts each vertex has exactly one master on the way.
std::vector<uint32_t> masterMap(const graph::CsrGraph& g,
                                const std::vector<DistGraph>& parts) {
  std::vector<uint32_t> master(g.numNodes(), UINT32_MAX);
  for (const DistGraph& p : parts) {
    for (uint64_t lid = 0; lid < p.numMasters; ++lid) {
      const uint64_t gid = p.localToGlobal[lid];
      EXPECT_EQ(master[gid], UINT32_MAX)
          << "vertex " << gid << " mastered twice";
      master[gid] = p.hostId;
    }
  }
  for (uint64_t v = 0; v < g.numNodes(); ++v) {
    EXPECT_NE(master[v], UINT32_MAX) << "vertex " << v << " has no master";
  }
  return master;
}

PartitionerConfig degradedConfig(const std::string& dir, uint32_t hosts,
                                 std::shared_ptr<const comm::FaultPlan> plan) {
  PartitionerConfig config;
  config.numHosts = hosts;
  config.resilience.faultPlan = std::move(plan);
  config.resilience.checkpointDir = dir;
  config.resilience.enableCheckpoints = true;
  config.resilience.buddyReplication = true;
  config.resilience.degradedMode = true;
  config.resilience.recvTimeoutSeconds = 20.0;  // backstop against hangs
  return config;
}

// ---------------------------------------------------------------------------
// Network membership.
// ---------------------------------------------------------------------------

TEST(MembershipTest, EvictShiftsCollectiveRootAndSurvivorsAgree) {
  comm::Network net(3);
  EXPECT_EQ(net.collectiveRoot(), 0u);
  EXPECT_EQ(net.numAliveHosts(), 3u);
  net.evict(0);
  EXPECT_FALSE(net.isAlive(0));
  EXPECT_EQ(net.collectiveRoot(), 1u);
  EXPECT_EQ(net.numAliveHosts(), 2u);
  EXPECT_EQ(net.membershipEpoch(), 1u);
  net.evict(0);  // idempotent
  EXPECT_EQ(net.membershipEpoch(), 1u);

  comm::runHosts(net, [&](comm::HostId me) {
    const comm::MembershipView view = net.agreeMembership(me);
    EXPECT_EQ(view.epoch, 1u);
    EXPECT_FALSE(view.isAlive(0));
    EXPECT_TRUE(view.isAlive(1));
    EXPECT_TRUE(view.isAlive(2));
    EXPECT_EQ(view.numAlive(), 2u);
    // Collectives still work rooted at host 1.
    EXPECT_EQ(net.allReduceMin(me, me + 10), 11u);
    net.barrier(me);
  });
}

TEST(MembershipTest, TrafficTouchingEvictedHostFailsFast) {
  comm::Network net(3);
  net.evict(2);
  support::SendBuffer buf;
  support::serialize(buf, uint64_t{1});
  try {
    net.send(0, 2, comm::kTagGeneric, std::move(buf));
    FAIL() << "send to evicted host did not throw";
  } catch (const comm::HostEvicted& e) {
    EXPECT_EQ(e.host, 2u);
    EXPECT_EQ(e.from, 0u);
    EXPECT_EQ(e.epoch, 1u);
  }
  // The evicted host itself fails fast on any traffic.
  support::SendBuffer buf2;
  support::serialize(buf2, uint64_t{1});
  EXPECT_THROW(net.send(2, 0, comm::kTagGeneric, std::move(buf2)),
               comm::HostEvicted);
  // Receiving from an evicted host returns immediately, not via timeout.
  EXPECT_THROW(net.recvFrom(0, 2, comm::kTagGeneric), comm::HostEvicted);
}

TEST(MembershipTest, EvictionWakesBlockedReceiver) {
  comm::Network net(2);
  std::exception_ptr caught;
  std::thread receiver([&] {
    try {
      net.recvFrom(0, 1, comm::kTagGeneric);  // blocks: host 1 never sends
    } catch (...) {
      caught = std::current_exception();
    }
  });
  // Give the receiver time to block, then evict the awaited peer.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  net.evict(1);
  receiver.join();
  ASSERT_TRUE(caught != nullptr);
  EXPECT_THROW(std::rethrow_exception(caught), comm::HostEvicted);
}

// ---------------------------------------------------------------------------
// Fault classification (the driver's single failure handler).
// ---------------------------------------------------------------------------

TEST(ClassifyFaultTest, MapsEveryFaultTypeAndRejectsOthers) {
  auto crash = core::classifyFault(
      std::make_exception_ptr(comm::HostFailure(2, 4)));
  ASSERT_TRUE(crash.has_value());
  EXPECT_EQ(crash->kind, core::ClassifiedFault::kHostFailure);
  EXPECT_EQ(crash->host, 2u);
  EXPECT_EQ(crash->phase, 4u);
  EXPECT_STREQ(crash->kindName(), "HostFailure");

  auto stall = core::classifyFault(
      std::make_exception_ptr(comm::NetworkStalled("stalled")));
  ASSERT_TRUE(stall.has_value());
  EXPECT_EQ(stall->kind, core::ClassifiedFault::kNetworkStalled);
  EXPECT_EQ(stall->host, comm::kAnyHost);
  EXPECT_STREQ(stall->kindName(), "NetworkStalled");

  auto retries = core::classifyFault(
      std::make_exception_ptr(comm::SendRetriesExhausted(0, 1, 3, 4)));
  ASSERT_TRUE(retries.has_value());
  EXPECT_EQ(retries->kind, core::ClassifiedFault::kSendRetriesExhausted);
  EXPECT_STREQ(retries->kindName(), "SendRetriesExhausted");

  auto evicted = core::classifyFault(
      std::make_exception_ptr(comm::HostEvicted(0, 3, 7, 2)));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->kind, core::ClassifiedFault::kHostEvicted);
  EXPECT_EQ(evicted->host, 3u);
  EXPECT_STREQ(evicted->kindName(), "HostEvicted");

  EXPECT_FALSE(core::classifyFault(
                   std::make_exception_ptr(std::runtime_error("not a fault")))
                   .has_value());
}

// ---------------------------------------------------------------------------
// Checkpoint hygiene + buddy replication.
// ---------------------------------------------------------------------------

TEST(CheckpointHygieneTest, GarbageCollectsOrphanTmpFiles) {
  TempDir dir;
  support::SendBuffer payload;
  support::serialize(payload, uint64_t{42});
  core::saveCheckpoint(dir.path(), 0, 4, 2, payload);

  // Orphans a crash mid-rename could leave behind.
  for (const char* name : {"/h1.p3.ckpt.tmp", "/h2.p5.buddy1.ckpt.tmp"}) {
    FILE* f = std::fopen((dir.path() + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("partial", f);
    std::fclose(f);
  }

  EXPECT_EQ(core::garbageCollectCheckpointTmp(dir.path()), 2u);
  EXPECT_EQ(core::garbageCollectCheckpointTmp(dir.path()), 0u);
  // The valid checkpoint is untouched.
  EXPECT_TRUE(core::loadCheckpoint(dir.path(), 0, 4, 2).has_value());
}

TEST(CheckpointHygieneTest, NumHostsMismatchIsRejected) {
  // A checkpoint written for a different cluster size (a reused directory)
  // must be rejected — loudly (warn log) but structurally: nullopt.
  TempDir dir;
  support::SendBuffer payload;
  support::serialize(payload, uint64_t{1});
  core::saveCheckpoint(dir.path(), 1, 4, 3, payload);
  EXPECT_TRUE(core::loadCheckpoint(dir.path(), 1, 4, 3).has_value());
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 1, 8, 3).has_value());
  EXPECT_EQ(core::latestValidCheckpoint(dir.path(), 1, 8, 5), 0u);
}

TEST(CheckpointHygieneTest, ResilientDriverCollectsTmpOrphansOnStart) {
  const graph::CsrGraph g = graph::generateErdosRenyi(120, 500, 3);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  TempDir dir;
  const std::string orphan = dir.path() + "/h0.p4.ckpt.tmp";
  FILE* f = std::fopen(orphan.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("partial", f);
  std::fclose(f);

  PartitionerConfig config;
  config.numHosts = 2;
  config.resilience.checkpointDir = dir.path();
  config.resilience.enableCheckpoints = true;
  const auto result = core::partitionGraphResilient(
      file, core::makePolicy("EEC"), config);
  EXPECT_EQ(result.partitions.size(), 2u);
  EXPECT_FALSE(std::filesystem::exists(orphan));
}

TEST(BuddyReplicationTest, ReplicaRoundTripAndFallback) {
  TempDir dir;
  support::SendBuffer payload;
  support::serializeAll(payload, uint64_t{9}, std::vector<uint32_t>{4, 5});
  core::saveCheckpointReplica(dir.path(), /*owner=*/2, /*numHosts=*/4,
                              /*phase=*/3, payload);
  // The replica lives in the ring successor's store.
  EXPECT_EQ(core::checkpointReplicaPath(dir.path(), 2, 4, 3),
            dir.path() + "/h3.p3.buddy2.ckpt");
  EXPECT_TRUE(std::filesystem::exists(
      core::checkpointReplicaPath(dir.path(), 2, 4, 3)));
  // Ring wrap: the last host's buddy is host 0.
  EXPECT_EQ(core::checkpointReplicaPath(dir.path(), 3, 4, 1),
            dir.path() + "/h0.p1.buddy3.ckpt");

  // The primary is absent; the replica carries the owner's identity.
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 2, 4, 3).has_value());
  auto viaReplica = core::loadCheckpointReplica(dir.path(), 2, 4, 3);
  ASSERT_TRUE(viaReplica.has_value());
  auto viaFallback = core::loadCheckpointOrReplica(dir.path(), 2, 4, 3);
  ASSERT_TRUE(viaFallback.has_value());
  EXPECT_EQ(*viaReplica, *viaFallback);
  support::RecvBuffer buf(std::move(*viaReplica));
  uint64_t a = 0;
  std::vector<uint32_t> b;
  support::deserializeAll(buf, a, b);
  EXPECT_EQ(a, 9u);
  EXPECT_EQ(b, (std::vector<uint32_t>{4, 5}));

  // latestValidCheckpoint consults replicas too.
  EXPECT_EQ(core::latestValidCheckpoint(dir.path(), 2, 4, 5), 3u);
  EXPECT_EQ(core::latestValidCheckpoint(dir.path(), 3, 4, 5), 0u);
}

TEST(BuddyReplicationTest, RemoveHostStoreKillsOwnFilesAndHeldReplicas) {
  TempDir dir;
  support::SendBuffer payload;
  support::serialize(payload, uint64_t{7});
  // Host 2's store: its own phase-5 checkpoint plus the replica it holds
  // for host 1. Host 3 holds host 2's replica.
  core::saveCheckpoint(dir.path(), 2, 4, 5, payload);
  core::saveCheckpointReplica(dir.path(), 1, 4, 5, payload);  // at host 2
  core::saveCheckpointReplica(dir.path(), 2, 4, 5, payload);  // at host 3
  core::saveCheckpoint(dir.path(), 1, 4, 5, payload);

  core::removeHostCheckpointStore(dir.path(), 2, 4, 5);

  // Host 2's own file and the replica it held for host 1 die with it...
  EXPECT_FALSE(core::loadCheckpoint(dir.path(), 2, 4, 5).has_value());
  EXPECT_FALSE(core::loadCheckpointReplica(dir.path(), 1, 4, 5).has_value());
  // ...while host 2's replica at host 3 and host 1's own file survive.
  EXPECT_TRUE(core::loadCheckpointReplica(dir.path(), 2, 4, 5).has_value());
  EXPECT_TRUE(core::loadCheckpoint(dir.path(), 1, 4, 5).has_value());
}

// ---------------------------------------------------------------------------
// redistributePartitions (Path A arithmetic).
// ---------------------------------------------------------------------------

class RedistributeTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(RedistributeTest, CompactOutputIsValidAndFollowsModuloRule) {
  const auto& [policyName, graphName] = GetParam();
  graph::CsrGraph g;
  for (const auto& named : testutil::testGraphCatalog()) {
    if (named.name == graphName) {
      g = named.graph;
    }
  }
  ASSERT_GT(g.numNodes(), 0u);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 4;
  const auto parts =
      core::partitionGraph(file, core::makePolicy(policyName), config)
          .partitions;
  const auto before = masterMap(g, parts);

  for (const std::vector<uint32_t>& evicted :
       {std::vector<uint32_t>{1}, std::vector<uint32_t>{0, 2}}) {
    std::vector<uint32_t> survivors;
    std::vector<bool> dead(4, false);
    for (uint32_t d : evicted) {
      dead[d] = true;
    }
    for (uint32_t h = 0; h < 4; ++h) {
      if (!dead[h]) {
        survivors.push_back(h);
      }
    }
    const auto out = core::redistributePartitions(parts, evicted,
                                                  /*compact=*/true);
    ASSERT_EQ(out.size(), survivors.size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].hostId, i);
      EXPECT_EQ(out[i].numHosts, survivors.size());
    }
    ASSERT_NO_THROW(core::validatePartitions(g, out));
    // Masters of survivors stay put; evicted-mastered vertices follow the
    // deterministic gid % numSurvivors rule.
    const auto after = masterMap(g, out);
    std::vector<uint32_t> denseOf(4, UINT32_MAX);
    for (size_t i = 0; i < survivors.size(); ++i) {
      denseOf[survivors[i]] = static_cast<uint32_t>(i);
    }
    for (uint64_t v = 0; v < g.numNodes(); ++v) {
      if (dead[before[v]]) {
        EXPECT_EQ(after[v], denseOf[survivors[v % survivors.size()]])
            << "vertex " << v;
      } else {
        EXPECT_EQ(after[v], denseOf[before[v]]) << "vertex " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesGraphs, RedistributeTest,
    ::testing::Combine(::testing::Values("EEC", "HVC"),
                       ::testing::Values("er300", "star33", "grid6x5")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(RedistributeNonCompactTest, KeepsRankSpaceWithEmptyEvictedSlots) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 4;
  const auto parts =
      core::partitionGraph(file, core::makePolicy("HVC"), config).partitions;

  const auto out = core::redistributePartitions(parts, {1}, /*compact=*/false);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[1].numLocalNodes(), 0u);
  EXPECT_EQ(out[1].numLocalEdges(), 0u);
  for (uint32_t h : {0u, 2u, 3u}) {
    EXPECT_EQ(out[h].hostId, h);
    EXPECT_EQ(out[h].numHosts, 4u);
    // Nothing may reference the evicted rank.
    EXPECT_TRUE(out[h].mirrorsOnHost[1].empty());
    EXPECT_TRUE(out[h].myMirrorsByOwner[1].empty());
  }
  // Still a structurally valid partition family of the original graph.
  ASSERT_NO_THROW(core::validatePartitions(g, out));
}

// ---------------------------------------------------------------------------
// Membership-aware analytics engine.
// ---------------------------------------------------------------------------

TEST(EngineMembershipTest, RedistributedSurvivorsMatchReferenceBfs) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 4;
  const auto parts =
      core::partitionGraph(file, core::makePolicy("HVC"), config).partitions;
  const auto redistributed =
      core::redistributePartitions(parts, {1}, /*compact=*/false);
  const uint64_t source = analytics::maxOutDegreeNode(g);
  const auto expected = analytics::bfsReference(g, source);

  comm::Network net(4);
  net.setRecvTimeout(20.0);
  net.evict(1);
  std::vector<uint64_t> actual(g.numNodes(), analytics::kInfinity);
  std::mutex mutex;
  comm::runHosts(net, [&](comm::HostId me) {
    const DistGraph& part = redistributed[me];
    const auto values = analytics::bfsOnHost(net, me, part, source);
    std::lock_guard<std::mutex> lock(mutex);
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      actual[part.localToGlobal[lid]] = values[lid];
    }
  });
  EXPECT_EQ(actual, expected);
}

TEST(EngineMembershipTest, SyncSkipsDeadPeerInsteadOfBlocking) {
  // Partitions still carry metadata referencing the dead host (no
  // redistribution): the sync loops must skip it — the run completes on
  // the survivors instead of blocking, and every finite distance is a real
  // path length (possibly longer than the fault-free one).
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 4;
  const auto parts =
      core::partitionGraph(file, core::makePolicy("HVC"), config).partitions;
  // A source mastered by a survivor, so the wavefront starts.
  ASSERT_GT(parts[0].numMasters, 0u);
  const uint64_t source = parts[0].localToGlobal[0];
  const auto reference = analytics::bfsReference(g, source);

  comm::Network net(4);
  net.setRecvTimeout(20.0);  // a blocked survivor would fail, not hang
  net.evict(1);
  std::mutex mutex;
  std::vector<std::pair<uint64_t, uint64_t>> masterValues;  // (gid, dist)
  comm::runHosts(net, [&](comm::HostId me) {
    const DistGraph& part = parts[me];
    const auto values = analytics::bfsOnHost(net, me, part, source);
    std::lock_guard<std::mutex> lock(mutex);
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      masterValues.emplace_back(part.localToGlobal[lid], values[lid]);
    }
  });
  EXPECT_FALSE(masterValues.empty());
  for (const auto& [gid, dist] : masterValues) {
    if (gid == source) {
      EXPECT_EQ(dist, 0u);
    }
    if (dist != analytics::kInfinity) {
      EXPECT_GE(dist, reference[gid]) << "node " << gid;
    }
  }
}

// ---------------------------------------------------------------------------
// Degraded driver, Path B: permanent crash in every phase.
// ---------------------------------------------------------------------------

using DegradedParam = std::tuple<uint32_t, std::string>;

class DegradedSweep : public ::testing::TestWithParam<DegradedParam> {};

TEST_P(DegradedSweep, PermanentLossYieldsValidThreeHostPartitions) {
  const auto& [crashPhase, policyName] = GetParam();
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy(policyName);

  TempDir dir;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/1, crashPhase, /*opsIntoPhase=*/0, /*permanent=*/true});
  const PartitionerConfig config = degradedConfig(dir.path(), 4, plan);

  RecoveryReport report;
  const PartitionResult result =
      core::partitionGraphResilient(file, policy, config, &report);

  ASSERT_EQ(result.partitions.size(), 3u);
  EXPECT_EQ(report.finalNumHosts, 3u);
  EXPECT_EQ(report.attempts, 2u);
  ASSERT_EQ(report.failureKinds.size(), 1u);
  EXPECT_EQ(report.failureKinds[0], "HostFailure");
  ASSERT_EQ(report.evictions.size(), 1u);
  EXPECT_EQ(report.evictions[0].host, 1u);
  EXPECT_EQ(report.evictions[0].phase, crashPhase);
  EXPECT_EQ(report.evictions[0].epoch, 1u);
  EXPECT_FALSE(report.evictions[0].redistributed);
  // A phase-entry crash never leaves a complete phase-5 set, so the
  // survivors re-read the dead host's edge window (Path B).
  EXPECT_GT(report.bytesReRead, 0u);
  ASSERT_FALSE(report.adoptedRanges.empty());
  for (const auto& range : report.adoptedRanges) {
    EXPECT_EQ(range.evicted, 1u);
    EXPECT_NE(range.survivor, 1u);
    EXPECT_LE(range.edgeBegin, range.edgeEnd);
    EXPECT_LE(range.edgeEnd, g.numEdges());
  }

  // Union of masters covers every vertex exactly once, structure valid.
  masterMap(g, result.partitions);
  ASSERT_NO_THROW(core::validatePartitions(g, result.partitions));

  // Degraded analytics match the single-image reference.
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(result.partitions, source),
            analytics::bfsReference(g, source));
  analytics::PageRankParams pr;
  pr.maxIterations = 30;
  pr.tolerance = 1e-9;  // fixed iteration count for exact comparability
  const auto expectedPr = analytics::pageRankReference(g, pr);
  const auto actualPr = analytics::runPageRank(result.partitions, pr);
  ASSERT_EQ(actualPr.size(), expectedPr.size());
  for (size_t v = 0; v < expectedPr.size(); ++v) {
    EXPECT_NEAR(actualPr[v], expectedPr[v], 1e-10) << "node " << v;
  }
}

std::vector<DegradedParam> degradedParams() {
  std::vector<DegradedParam> params;
  for (uint32_t phase = 1; phase <= 5; ++phase) {
    for (const char* policy : {"EEC", "HVC"}) {
      params.emplace_back(phase, policy);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    PhasesPolicies, DegradedSweep, ::testing::ValuesIn(degradedParams()),
    [](const ::testing::TestParamInfo<DegradedParam>& info) {
      return "p" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

// ---------------------------------------------------------------------------
// Degraded driver edge cases.
// ---------------------------------------------------------------------------

TEST(DegradedTest, EvictingCollectiveRootDegradesCleanly) {
  // Host 0 roots every collective; its eviction must shift the root, not
  // deadlock the survivors.
  const graph::CsrGraph g = graph::generateErdosRenyi(250, 1000, 11);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  TempDir dir;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/0, /*phase=*/3, /*opsIntoPhase=*/0, /*permanent=*/true});
  const PartitionerConfig config = degradedConfig(dir.path(), 4, plan);

  RecoveryReport report;
  const PartitionResult result = core::partitionGraphResilient(
      file, core::makePolicy("EEC"), config, &report);
  ASSERT_EQ(result.partitions.size(), 3u);
  ASSERT_EQ(report.evictions.size(), 1u);
  EXPECT_EQ(report.evictions[0].host, 0u);
  ASSERT_NO_THROW(core::validatePartitions(g, result.partitions));
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(result.partitions, source),
            analytics::bfsReference(g, source));
}

TEST(DegradedTest, TwoHostsDegradeToSingleSurvivor) {
  const graph::CsrGraph g = graph::generateErdosRenyi(150, 600, 5);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  TempDir dir;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/1, /*phase=*/2, /*opsIntoPhase=*/0, /*permanent=*/true});
  const PartitionerConfig config = degradedConfig(dir.path(), 2, plan);

  RecoveryReport report;
  const PartitionResult result = core::partitionGraphResilient(
      file, core::makePolicy("HVC"), config, &report);
  ASSERT_EQ(result.partitions.size(), 1u);
  EXPECT_EQ(report.finalNumHosts, 1u);
  EXPECT_EQ(result.partitions[0].numMasters, g.numNodes());
  ASSERT_NO_THROW(core::validatePartitions(g, result.partitions));
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(result.partitions, source),
            analytics::bfsReference(g, source));
}

TEST(DegradedTest, TransientCrashNeverEvicts) {
  // degradedMode on but the crash is transient: classic recovery — same
  // bits as the fault-free run, full host set, no eviction.
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 900, 3);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");
  PartitionerConfig cleanConfig;
  cleanConfig.numHosts = 4;
  const auto baseline = core::partitionGraph(file, policy, cleanConfig);

  TempDir dir;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/1, /*phase=*/3, /*opsIntoPhase=*/0, /*permanent=*/false});
  const PartitionerConfig config = degradedConfig(dir.path(), 4, plan);

  RecoveryReport report;
  const PartitionResult recovered =
      core::partitionGraphResilient(file, policy, config, &report);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_TRUE(report.evictions.empty());
  EXPECT_EQ(report.finalNumHosts, 4u);
  expectBitIdentical(baseline.partitions, recovered.partitions);
}

TEST(DegradedTest, DegradedModeOffRethrowsPermanentLoss) {
  // Strictly opt-in: without degradedMode a permanent crash burns the
  // attempt budget (the host fast-fails every re-run) and rethrows.
  const graph::CsrGraph g = graph::generateErdosRenyi(100, 400, 5);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 4;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->crashes.push_back(
      {/*host=*/1, /*phase=*/2, /*opsIntoPhase=*/0, /*permanent=*/true});
  config.resilience.faultPlan = plan;
  config.resilience.maxRecoveryAttempts = 2;
  config.resilience.recvTimeoutSeconds = 20.0;

  RecoveryReport report;
  EXPECT_THROW(core::partitionGraphResilient(file, core::makePolicy("EEC"),
                                             config, &report),
               comm::HostFailure);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_TRUE(report.evictions.empty());
}

// ---------------------------------------------------------------------------
// Path A: phase-5 checkpoint redistribution via buddy replicas.
// ---------------------------------------------------------------------------

struct PathARun {
  uint64_t crashOps = 0;
  PartitionResult result;
  RecoveryReport report;
};

// Finds the crossing at which a permanent crash of host 0 in phase 5 lands
// in the final barrier AFTER every host checkpointed phase 5 (host 0 roots
// the barrier: by its release sends, every token — sent after the
// checkpoint write — has arrived). The scan keeps the LAST run that
// redistributed before the crash scans past the pipeline entirely; that
// crossing is host 0's final barrier send, where Path A is deterministic.
std::optional<PathARun> findPathARun(const graph::GraphFile& file,
                                     const core::PartitionPolicy& policy) {
  std::optional<PathARun> found;
  for (uint64_t ops = 1; ops < 800; ++ops) {
    TempDir dir;
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->crashes.push_back(
        {/*host=*/0, /*phase=*/5, ops, /*permanent=*/true});
    const PartitionerConfig config = degradedConfig(dir.path(), 4, plan);
    PathARun run;
    run.crashOps = ops;
    run.result = core::partitionGraphResilient(file, policy, config,
                                               &run.report);
    if (run.report.evictions.empty()) {
      return found;  // crash never fired: scanned past the last crossing
    }
    if (run.report.evictions.size() == 1 &&
        run.report.evictions[0].redistributed) {
      found = std::move(run);
    }
  }
  return found;
}

class PathATest : public ::testing::Test {
 protected:
  static const graph::CsrGraph& testGraph() {
    static const graph::CsrGraph g = graph::generateErdosRenyi(150, 700, 9);
    return g;
  }
};

TEST_F(PathATest, RedistributesPhase5StateFromBuddyReplicas) {
  const graph::CsrGraph& g = testGraph();
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");
  const auto run = findPathARun(file, policy);
  ASSERT_TRUE(run.has_value())
      << "no crossing of host 0 in the phase-5 barrier triggered Path A";

  const RecoveryReport& report = run->report;
  ASSERT_EQ(run->result.partitions.size(), 3u);
  EXPECT_EQ(report.finalNumHosts, 3u);
  ASSERT_EQ(report.evictions.size(), 1u);
  EXPECT_EQ(report.evictions[0].host, 0u);
  EXPECT_EQ(report.evictions[0].phase, 5u);
  EXPECT_TRUE(report.evictions[0].redistributed);
  EXPECT_FALSE(report.evictions[0].replicaLost);
  // Path A consumes replica bytes and re-reads no graph data.
  EXPECT_GT(report.replicaBytesRead, 0u);
  EXPECT_EQ(report.bytesReRead, 0u);
  EXPECT_TRUE(report.adoptedRanges.empty());

  // The result is exactly the deterministic redistribution of the
  // completed 4-host partitions.
  PartitionerConfig cleanConfig;
  cleanConfig.numHosts = 4;
  const auto baseline = core::partitionGraph(file, policy, cleanConfig);
  const auto expected =
      core::redistributePartitions(baseline.partitions, {0}, /*compact=*/true);
  expectBitIdentical(expected, run->result.partitions);
  ASSERT_NO_THROW(core::validatePartitions(g, run->result.partitions));
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(run->result.partitions, source),
            analytics::bfsReference(g, source));
}

TEST_F(PathATest, BuddyDeathDuringRedistributionFallsBackToRepartition) {
  // The buddy of the already-dead host 0 (host 1 holds its replica) dies
  // during the redistribution round: its store — including host 0's
  // replica — is lost, Path A becomes infeasible (replicaLost) and the
  // driver completes with a full re-partition over the two survivors.
  const graph::CsrGraph& g = testGraph();
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");
  const auto pathA = findPathARun(file, policy);
  ASSERT_TRUE(pathA.has_value());

  bool found = false;
  for (uint64_t ops = 0; ops <= 10 && !found; ++ops) {
    TempDir dir;
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->crashes.push_back(
        {/*host=*/0, /*phase=*/5, pathA->crashOps, /*permanent=*/true});
    plan->crashes.push_back(
        {/*host=*/1, /*phase=*/0, ops, /*permanent=*/true});
    const PartitionerConfig config = degradedConfig(dir.path(), 4, plan);
    RecoveryReport report;
    PartitionResult result;
    try {
      result = core::partitionGraphResilient(file, policy, config, &report);
    } catch (const comm::HostFailure&) {
      continue;  // this crossing killed the run some other way
    }
    // Accept exactly the scenario under test: host 0 evicted first (its
    // Path A pending), host 1 dying mid-round, replica lost, degraded
    // completion on the two survivors.
    if (report.evictions.size() != 2 || report.evictions[0].host != 0 ||
        !report.evictions[0].replicaLost ||
        report.evictions[1].host != 1) {
      continue;
    }
    found = true;
    EXPECT_FALSE(report.evictions[0].redistributed);
    EXPECT_FALSE(report.evictions[1].redistributed);
    EXPECT_EQ(report.finalNumHosts, 2u);
    ASSERT_EQ(result.partitions.size(), 2u);
    ASSERT_NO_THROW(core::validatePartitions(g, result.partitions));
    // The survivors {2, 3} re-partition the original graph from scratch:
    // deterministic policy, so bit-identical to a clean two-host run.
    PartitionerConfig cleanConfig;
    cleanConfig.numHosts = 2;
    const auto baseline = core::partitionGraph(file, policy, cleanConfig);
    expectBitIdentical(baseline.partitions, result.partitions);
    const uint64_t source = analytics::maxOutDegreeNode(g);
    EXPECT_EQ(analytics::runBfs(result.partitions, source),
              analytics::bfsReference(g, source));
  }
  EXPECT_TRUE(found)
      << "no crossing of host 1 in the redistribution round produced the "
         "replica-lost fallback";
}

}  // namespace
}  // namespace cusp
