// Tests of the simulated message-passing network.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/network.h"

namespace cusp::comm {
namespace {

using support::RecvBuffer;
using support::SendBuffer;

SendBuffer bufferWith(uint64_t value) {
  SendBuffer buf;
  support::serialize(buf, value);
  return buf;
}

uint64_t valueOf(Message& msg) {
  uint64_t value = 0;
  support::deserialize(msg.payload, value);
  return value;
}

TEST(NetworkTest, PointToPointDelivers) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, kTagGeneric, bufferWith(1234));
    } else {
      auto msg = net.recv(1, kTagGeneric);
      EXPECT_EQ(msg.from, 0u);
      EXPECT_EQ(valueOf(msg), 1234u);
    }
  });
}

TEST(NetworkTest, FifoPerChannel) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      for (uint64_t i = 0; i < 100; ++i) {
        net.send(0, 1, kTagGeneric, bufferWith(i));
      }
    } else {
      for (uint64_t i = 0; i < 100; ++i) {
        auto msg = net.recvFrom(1, 0, kTagGeneric);
        EXPECT_EQ(valueOf(msg), i);
      }
    }
  });
}

TEST(NetworkTest, TagsAreIndependentChannels) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, /*tag=*/3, bufferWith(33));
      net.send(0, 1, /*tag=*/5, bufferWith(55));
    } else {
      // Receive in the opposite order of sending.
      auto five = net.recv(1, 5);
      EXPECT_EQ(valueOf(five), 55u);
      auto three = net.recv(1, 3);
      EXPECT_EQ(valueOf(three), 33u);
    }
  });
}

TEST(NetworkTest, TryRecvNonBlocking) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      EXPECT_FALSE(net.tryRecv(0, kTagGeneric).has_value());
      net.send(0, 1, kTagGeneric, bufferWith(7));
      net.barrier(0);
    } else {
      net.barrier(1);
      auto msg = net.tryRecv(1, kTagGeneric);
      ASSERT_TRUE(msg.has_value());
      EXPECT_EQ(valueOf(*msg), 7u);
    }
  });
}

TEST(NetworkTest, SelfSendDeliversButIsNotCounted) {
  Network net(1);
  net.send(0, 0, kTagGeneric, bufferWith(9));
  auto msg = net.recv(0, kTagGeneric);
  EXPECT_EQ(valueOf(msg), 9u);
  EXPECT_EQ(net.bytesSent(kTagGeneric), 0u);
  EXPECT_EQ(net.messagesSent(kTagGeneric), 0u);
}

TEST(NetworkTest, OutOfRangeHostThrows) {
  Network net(2);
  EXPECT_THROW(net.send(0, 5, kTagGeneric, bufferWith(1)),
               std::out_of_range);
  EXPECT_THROW(net.send(9, 0, kTagGeneric, bufferWith(1)),
               std::out_of_range);
  EXPECT_THROW(Network(0), std::invalid_argument);
}

TEST(NetworkTest, VolumeAccountingPerTag) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, kTagEdgeBatch, bufferWith(1));      // 8 bytes
      net.send(0, 1, kTagEdgeBatch, bufferWith(2));      // 8 bytes
      net.send(0, 1, kTagEdgeCounts, bufferWith(3));     // 8 bytes
    } else {
      for (int i = 0; i < 2; ++i) {
        net.recv(1, kTagEdgeBatch);
      }
      net.recv(1, kTagEdgeCounts);
    }
  });
  EXPECT_EQ(net.bytesSent(kTagEdgeBatch), 16u);
  EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 2u);
  EXPECT_EQ(net.bytesSent(kTagEdgeCounts), 8u);
  const auto stats = net.statsSnapshot();
  EXPECT_EQ(stats.totalBytes(), 24u + stats.collectiveBytes);
  net.resetStats();
  EXPECT_EQ(net.statsSnapshot().totalBytes(), 0u);
}

class NetworkHosts : public ::testing::TestWithParam<uint32_t> {};

TEST_P(NetworkHosts, BarrierSynchronizesPhases) {
  const uint32_t hosts = GetParam();
  Network net(hosts);
  std::atomic<int> phase1{0};
  std::atomic<bool> violation{false};
  runHosts(net, [&](HostId me) {
    phase1.fetch_add(1);
    net.barrier(me);
    if (phase1.load() != static_cast<int>(hosts)) {
      violation.store(true);
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST_P(NetworkHosts, AllReduceSumVector) {
  const uint32_t hosts = GetParam();
  Network net(hosts);
  std::vector<std::vector<uint64_t>> results(hosts);
  runHosts(net, [&](HostId me) {
    std::vector<uint64_t> values = {me, 1, 10ull * me};
    net.allReduceSum(me, values);
    results[me] = values;
  });
  const uint64_t sumIds = hosts * (hosts - 1) / 2;
  for (const auto& r : results) {
    EXPECT_EQ(r, (std::vector<uint64_t>{sumIds, hosts, 10 * sumIds}));
  }
}

TEST_P(NetworkHosts, AllReduceScalarsAndOr) {
  const uint32_t hosts = GetParam();
  Network net(hosts);
  std::vector<uint64_t> maxes(hosts);
  std::vector<int> ors(hosts);
  runHosts(net, [&](HostId me) {
    maxes[me] = net.allReduceMax<uint64_t>(me, me * 7);
    ors[me] = net.allReduceOr(me, me == hosts - 1) ? 1 : 0;
  });
  for (uint32_t h = 0; h < hosts; ++h) {
    EXPECT_EQ(maxes[h], 7ull * (hosts - 1));
    EXPECT_EQ(ors[h], 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Hosts, NetworkHosts,
                         ::testing::Values(1u, 2u, 3u, 8u));

TEST(NetworkTest, AllReduceMismatchedLengthsThrow) {
  Network net(2);
  EXPECT_THROW(runHosts(net,
                        [&](HostId me) {
                          std::vector<uint64_t> values(me == 0 ? 2 : 3, 1);
                          net.allReduceSum(me, values);
                        }),
               std::logic_error);
}

TEST(RunHostsTest, PropagatesFirstExceptionAndUnblocksSiblings) {
  Network net(3);
  EXPECT_THROW(runHosts(net,
                        [&](HostId me) {
                          if (me == 1) {
                            throw std::runtime_error("host 1 died");
                          }
                          // Siblings block forever waiting for a message
                          // that never comes; abort() must wake them.
                          net.recv(me, kTagGeneric);
                        }),
               std::runtime_error);
  EXPECT_TRUE(net.aborted());
}

// ---------------------------------------------------------------------------
// Interconnect cost model
// ---------------------------------------------------------------------------

TEST(CostModelTest, ChargesSenderPerMessageAndPerByte) {
  NetworkCostModel model;
  model.sendOverheadMicros = 10.0;
  model.bandwidthMBps = 1.0;  // 1 byte = 1 microsecond
  Network net(2, model);
  support::SendBuffer buf;
  support::serialize(buf, std::vector<uint64_t>(100, 7));  // 808 bytes
  net.send(0, 1, kTagGeneric, std::move(buf));
  // 10 us overhead + 808 us wire time, charged to the sender.
  EXPECT_NEAR(net.modeledCommSeconds(0), 818e-6, 1e-9);
  EXPECT_DOUBLE_EQ(net.modeledCommSeconds(1), 0.0);
}

TEST(CostModelTest, SelfSendsAndCollectiveTagsAreFree) {
  NetworkCostModel model;
  model.sendOverheadMicros = 100.0;
  Network net(2, model);
  net.send(0, 0, kTagGeneric, support::SendBuffer());  // self
  EXPECT_DOUBLE_EQ(net.modeledCommSeconds(0), 0.0);
  net.send(0, 1, kTagBarrierUp, support::SendBuffer());  // reserved tag
  EXPECT_DOUBLE_EQ(net.modeledCommSeconds(0), 0.0);
  net.send(0, 1, kTagGeneric, support::SendBuffer());  // charged
  EXPECT_NEAR(net.modeledCommSeconds(0), 100e-6, 1e-12);
}

TEST(CostModelTest, ZeroModelChargesNothing) {
  Network net(3);
  support::SendBuffer buf;
  support::serialize(buf, uint64_t{1});
  net.send(0, 1, kTagGeneric, std::move(buf));
  for (HostId h = 0; h < 3; ++h) {
    EXPECT_DOUBLE_EQ(net.modeledCommSeconds(h), 0.0);
  }
}

TEST(CostModelTest, ChargesAccumulateAcrossSends) {
  NetworkCostModel model;
  model.sendOverheadMicros = 1.0;
  Network net(2, model);
  for (int i = 0; i < 1000; ++i) {
    net.send(0, 1, kTagGeneric, support::SendBuffer());
  }
  EXPECT_NEAR(net.modeledCommSeconds(0), 1e-3, 1e-9);
}

// ---------------------------------------------------------------------------
// BufferedSender
// ---------------------------------------------------------------------------

TEST(BufferedSenderTest, BuffersUntilThreshold) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      BufferedSender sender(net, 0, kTagEdgeBatch, /*threshold=*/64);
      for (uint64_t i = 0; i < 7; ++i) {  // 56 bytes: still buffered
        sender.append(1, i);
      }
      EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 0u);
      sender.append(1, uint64_t{7});  // 64 bytes: flushes
      EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 1u);
      sender.append(1, uint64_t{8});
      sender.flushAll();  // remainder
      net.barrier(0);
    } else {
      net.barrier(1);
      auto first = net.recv(1, kTagEdgeBatch);
      EXPECT_EQ(first.payload.size(), 64u);
      auto second = net.recv(1, kTagEdgeBatch);
      EXPECT_EQ(second.payload.size(), 8u);
    }
  });
}

TEST(BufferedSenderTest, ZeroThresholdSendsEveryRecord) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      BufferedSender sender(net, 0, kTagEdgeBatch, 0);
      for (uint64_t i = 0; i < 5; ++i) {
        sender.append(1, i);
      }
      sender.flushAll();
      net.barrier(0);
    } else {
      net.barrier(1);
      for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(net.tryRecv(1, kTagEdgeBatch).has_value());
      }
      EXPECT_FALSE(net.tryRecv(1, kTagEdgeBatch).has_value());
    }
  });
  EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 5u);
}

TEST(BufferedSenderTest, FlushAllOnEmptySendsNothing) {
  Network net(2);
  BufferedSender sender(net, 0, kTagEdgeBatch, 1024);
  sender.flushAll();
  EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 0u);
}

TEST(BufferedSenderTest, RecordsSurviveConcatenation) {
  // Several records packed into one message deserialize in order.
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      BufferedSender sender(net, 0, kTagEdgeBatch, 1 << 20);
      for (uint64_t i = 0; i < 10; ++i) {
        sender.append(1, i, std::vector<uint64_t>{i, i + 1});
      }
      sender.flushAll();
    } else {
      auto msg = net.recv(1, kTagEdgeBatch);
      for (uint64_t i = 0; i < 10; ++i) {
        uint64_t header = 0;
        std::vector<uint64_t> body;
        support::deserializeAll(msg.payload, header, body);
        EXPECT_EQ(header, i);
        EXPECT_EQ(body, (std::vector<uint64_t>{i, i + 1}));
      }
      EXPECT_TRUE(msg.payload.exhausted());
    }
  });
}

}  // namespace
}  // namespace cusp::comm
