// Tests of the simulated message-passing network.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "comm/network.h"
#include "obs/obs.h"
#include "support/crc32.h"

namespace cusp::comm {
namespace {

using support::RecvBuffer;
using support::SendBuffer;

SendBuffer bufferWith(uint64_t value) {
  SendBuffer buf;
  support::serialize(buf, value);
  return buf;
}

uint64_t valueOf(Message& msg) {
  uint64_t value = 0;
  support::deserialize(msg.payload, value);
  return value;
}

TEST(NetworkTest, PointToPointDelivers) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, kTagGeneric, bufferWith(1234));
    } else {
      auto msg = net.recv(1, kTagGeneric);
      EXPECT_EQ(msg.from, 0u);
      EXPECT_EQ(valueOf(msg), 1234u);
    }
  });
}

TEST(NetworkTest, FifoPerChannel) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      for (uint64_t i = 0; i < 100; ++i) {
        net.send(0, 1, kTagGeneric, bufferWith(i));
      }
    } else {
      for (uint64_t i = 0; i < 100; ++i) {
        auto msg = net.recvFrom(1, 0, kTagGeneric);
        EXPECT_EQ(valueOf(msg), i);
      }
    }
  });
}

TEST(NetworkTest, TagsAreIndependentChannels) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, /*tag=*/3, bufferWith(33));
      net.send(0, 1, /*tag=*/5, bufferWith(55));
    } else {
      // Receive in the opposite order of sending.
      auto five = net.recv(1, 5);
      EXPECT_EQ(valueOf(five), 55u);
      auto three = net.recv(1, 3);
      EXPECT_EQ(valueOf(three), 33u);
    }
  });
}

TEST(NetworkTest, TryRecvNonBlocking) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      EXPECT_FALSE(net.tryRecv(0, kTagGeneric).has_value());
      net.send(0, 1, kTagGeneric, bufferWith(7));
      net.barrier(0);
    } else {
      net.barrier(1);
      auto msg = net.tryRecv(1, kTagGeneric);
      ASSERT_TRUE(msg.has_value());
      EXPECT_EQ(valueOf(*msg), 7u);
    }
  });
}

TEST(NetworkTest, SelfSendDeliversButIsNotCounted) {
  Network net(1);
  net.send(0, 0, kTagGeneric, bufferWith(9));
  auto msg = net.recv(0, kTagGeneric);
  EXPECT_EQ(valueOf(msg), 9u);
  EXPECT_EQ(net.bytesSent(kTagGeneric), 0u);
  EXPECT_EQ(net.messagesSent(kTagGeneric), 0u);
}

TEST(NetworkTest, OutOfRangeHostThrows) {
  Network net(2);
  EXPECT_THROW(net.send(0, 5, kTagGeneric, bufferWith(1)),
               std::out_of_range);
  EXPECT_THROW(net.send(9, 0, kTagGeneric, bufferWith(1)),
               std::out_of_range);
  EXPECT_THROW(Network(0), std::invalid_argument);
}

TEST(NetworkTest, VolumeAccountingPerTag) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, kTagEdgeBatch, bufferWith(1));      // 8 bytes
      net.send(0, 1, kTagEdgeBatch, bufferWith(2));      // 8 bytes
      net.send(0, 1, kTagEdgeCounts, bufferWith(3));     // 8 bytes
    } else {
      for (int i = 0; i < 2; ++i) {
        net.recv(1, kTagEdgeBatch);
      }
      net.recv(1, kTagEdgeCounts);
    }
  });
  EXPECT_EQ(net.bytesSent(kTagEdgeBatch), 16u);
  EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 2u);
  EXPECT_EQ(net.bytesSent(kTagEdgeCounts), 8u);
  const auto stats = net.statsSnapshot();
  EXPECT_EQ(stats.totalBytes(), 24u + stats.collectiveBytes);
  net.resetStats();
  EXPECT_EQ(net.statsSnapshot().totalBytes(), 0u);
}

class NetworkHosts : public ::testing::TestWithParam<uint32_t> {};

TEST_P(NetworkHosts, BarrierSynchronizesPhases) {
  const uint32_t hosts = GetParam();
  Network net(hosts);
  std::atomic<int> phase1{0};
  std::atomic<bool> violation{false};
  runHosts(net, [&](HostId me) {
    phase1.fetch_add(1);
    net.barrier(me);
    if (phase1.load() != static_cast<int>(hosts)) {
      violation.store(true);
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST_P(NetworkHosts, AllReduceSumVector) {
  const uint32_t hosts = GetParam();
  Network net(hosts);
  std::vector<std::vector<uint64_t>> results(hosts);
  runHosts(net, [&](HostId me) {
    std::vector<uint64_t> values = {me, 1, 10ull * me};
    net.allReduceSum(me, values);
    results[me] = values;
  });
  const uint64_t sumIds = hosts * (hosts - 1) / 2;
  for (const auto& r : results) {
    EXPECT_EQ(r, (std::vector<uint64_t>{sumIds, hosts, 10 * sumIds}));
  }
}

TEST_P(NetworkHosts, AllReduceScalarsAndOr) {
  const uint32_t hosts = GetParam();
  Network net(hosts);
  std::vector<uint64_t> maxes(hosts);
  std::vector<int> ors(hosts);
  runHosts(net, [&](HostId me) {
    maxes[me] = net.allReduceMax<uint64_t>(me, me * 7);
    ors[me] = net.allReduceOr(me, me == hosts - 1) ? 1 : 0;
  });
  for (uint32_t h = 0; h < hosts; ++h) {
    EXPECT_EQ(maxes[h], 7ull * (hosts - 1));
    EXPECT_EQ(ors[h], 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Hosts, NetworkHosts,
                         ::testing::Values(1u, 2u, 3u, 8u));

TEST(NetworkTest, AllReduceMismatchedLengthsThrow) {
  Network net(2);
  EXPECT_THROW(runHosts(net,
                        [&](HostId me) {
                          std::vector<uint64_t> values(me == 0 ? 2 : 3, 1);
                          net.allReduceSum(me, values);
                        }),
               std::logic_error);
}

TEST(RunHostsTest, PropagatesFirstExceptionAndUnblocksSiblings) {
  Network net(3);
  EXPECT_THROW(runHosts(net,
                        [&](HostId me) {
                          if (me == 1) {
                            throw std::runtime_error("host 1 died");
                          }
                          // Siblings block forever waiting for a message
                          // that never comes; abort() must wake them.
                          net.recv(me, kTagGeneric);
                        }),
               std::runtime_error);
  EXPECT_TRUE(net.aborted());
}

// ---------------------------------------------------------------------------
// Interconnect cost model
// ---------------------------------------------------------------------------

TEST(CostModelTest, ChargesSenderPerMessageAndPerByte) {
  NetworkCostModel model;
  model.sendOverheadMicros = 10.0;
  model.bandwidthMBps = 1.0;  // 1 byte = 1 microsecond
  Network net(2, model);
  support::SendBuffer buf;
  support::serialize(buf, std::vector<uint64_t>(100, 7));  // 808 bytes
  net.send(0, 1, kTagGeneric, std::move(buf));
  // 10 us overhead + 808 us wire time, charged to the sender.
  EXPECT_NEAR(net.modeledCommSeconds(0), 818e-6, 1e-9);
  EXPECT_DOUBLE_EQ(net.modeledCommSeconds(1), 0.0);
}

TEST(CostModelTest, SelfSendsAndCollectiveTagsAreFree) {
  NetworkCostModel model;
  model.sendOverheadMicros = 100.0;
  Network net(2, model);
  net.send(0, 0, kTagGeneric, support::SendBuffer());  // self
  EXPECT_DOUBLE_EQ(net.modeledCommSeconds(0), 0.0);
  net.send(0, 1, kTagBarrierUp, support::SendBuffer());  // reserved tag
  EXPECT_DOUBLE_EQ(net.modeledCommSeconds(0), 0.0);
  net.send(0, 1, kTagGeneric, support::SendBuffer());  // charged
  EXPECT_NEAR(net.modeledCommSeconds(0), 100e-6, 1e-12);
}

TEST(CostModelTest, ZeroModelChargesNothing) {
  Network net(3);
  support::SendBuffer buf;
  support::serialize(buf, uint64_t{1});
  net.send(0, 1, kTagGeneric, std::move(buf));
  for (HostId h = 0; h < 3; ++h) {
    EXPECT_DOUBLE_EQ(net.modeledCommSeconds(h), 0.0);
  }
}

TEST(CostModelTest, ChargesAccumulateAcrossSends) {
  NetworkCostModel model;
  model.sendOverheadMicros = 1.0;
  Network net(2, model);
  for (int i = 0; i < 1000; ++i) {
    net.send(0, 1, kTagGeneric, support::SendBuffer());
  }
  EXPECT_NEAR(net.modeledCommSeconds(0), 1e-3, 1e-9);
}

// ---------------------------------------------------------------------------
// BufferedSender
// ---------------------------------------------------------------------------

TEST(BufferedSenderTest, BuffersUntilThreshold) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      BufferedSender sender(net, 0, kTagEdgeBatch, /*threshold=*/64);
      for (uint64_t i = 0; i < 7; ++i) {  // 56 bytes: still buffered
        sender.append(1, i);
      }
      EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 0u);
      sender.append(1, uint64_t{7});  // 64 bytes: flushes
      EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 1u);
      sender.append(1, uint64_t{8});
      sender.flushAll();  // remainder
      net.barrier(0);
    } else {
      net.barrier(1);
      auto first = net.recv(1, kTagEdgeBatch);
      EXPECT_EQ(first.payload.size(), 64u);
      auto second = net.recv(1, kTagEdgeBatch);
      EXPECT_EQ(second.payload.size(), 8u);
    }
  });
}

TEST(BufferedSenderTest, ZeroThresholdSendsEveryRecord) {
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      BufferedSender sender(net, 0, kTagEdgeBatch, 0);
      for (uint64_t i = 0; i < 5; ++i) {
        sender.append(1, i);
      }
      sender.flushAll();
      net.barrier(0);
    } else {
      net.barrier(1);
      for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(net.tryRecv(1, kTagEdgeBatch).has_value());
      }
      EXPECT_FALSE(net.tryRecv(1, kTagEdgeBatch).has_value());
    }
  });
  EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 5u);
}

TEST(BufferedSenderTest, FlushAllOnEmptySendsNothing) {
  Network net(2);
  BufferedSender sender(net, 0, kTagEdgeBatch, 1024);
  sender.flushAll();
  EXPECT_EQ(net.messagesSent(kTagEdgeBatch), 0u);
}

TEST(BufferedSenderTest, RecordsSurviveConcatenation) {
  // Several records packed into one message deserialize in order.
  Network net(2);
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      BufferedSender sender(net, 0, kTagEdgeBatch, 1 << 20);
      for (uint64_t i = 0; i < 10; ++i) {
        sender.append(1, i, std::vector<uint64_t>{i, i + 1});
      }
      sender.flushAll();
    } else {
      auto msg = net.recv(1, kTagEdgeBatch);
      for (uint64_t i = 0; i < 10; ++i) {
        uint64_t header = 0;
        std::vector<uint64_t> body;
        support::deserializeAll(msg.payload, header, body);
        EXPECT_EQ(header, i);
        EXPECT_EQ(body, (std::vector<uint64_t>{i, i + 1}));
      }
      EXPECT_TRUE(msg.payload.exhausted());
    }
  });
}

// ---------------------------------------------------------------------------
// Fault injection, bounded-wait receives, reliable sends
// ---------------------------------------------------------------------------

std::shared_ptr<FaultInjector> injectorWith(FaultPlan plan) {
  return std::make_shared<FaultInjector>(std::move(plan));
}

TEST(FaultTest, TryRecvAfterAbortThrows) {
  Network net(2);
  net.abort();
  EXPECT_THROW(net.tryRecv(0, kTagGeneric), NetworkAborted);
  EXPECT_THROW(net.recv(0, kTagGeneric), NetworkAborted);
}

TEST(FaultTest, RecvTimeoutThrowsNetworkStalledNamingHostAndTag) {
  Network net(2);
  net.setRecvTimeout(0.05);
  try {
    net.recv(0, kTagEdgeCounts);
    FAIL() << "expected NetworkStalled";
  } catch (const NetworkStalled& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("host 0"), std::string::npos) << what;
    EXPECT_NE(what.find("kTagEdgeCounts"), std::string::npos) << what;
  }
}

TEST(FaultTest, StallReportNamesEveryBlockedHost) {
  // Host 0 enters its receive first and times out while hosts 1 and 2 are
  // still parked on theirs (they start later, so their deadlines are
  // comfortably beyond host 0's); its report must name all three.
  Network net(3);
  net.setRecvTimeout(0.15);
  std::string report;
  std::mutex reportMutex;
  EXPECT_THROW(runHosts(net,
                        [&](HostId me) {
                          if (me != 0) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(30));
                          }
                          try {
                            net.recv(me, kTagEdgeBatch + me);
                          } catch (const NetworkStalled& e) {
                            std::lock_guard<std::mutex> lock(reportMutex);
                            if (report.empty()) {
                              report = e.what();
                            }
                            throw;
                          }
                        }),
               NetworkStalled);
  for (HostId h = 0; h < 3; ++h) {
    EXPECT_NE(report.find("host " + std::to_string(h)), std::string::npos)
        << report;
  }
}

TEST(FaultTest, DroppedSendIsVisibleToPlainSend) {
  FaultPlan plan;
  plan.messageFaults.push_back(
      {/*src=*/0, /*dst=*/1, kTagGeneric, /*occurrence=*/0});
  auto injector = injectorWith(plan);
  Network net(2);
  net.setFaultInjector(injector);
  EXPECT_FALSE(net.send(0, 1, kTagGeneric, bufferWith(1)));  // dropped
  EXPECT_TRUE(net.send(0, 1, kTagGeneric, bufferWith(2)));   // clean
  auto msg = net.recv(1, kTagGeneric);
  EXPECT_EQ(valueOf(msg), 2u);
  EXPECT_EQ(injector->stats().dropped, 1u);
  // Dropped messages are not accounted as traffic.
  EXPECT_EQ(net.messagesSent(kTagGeneric), 1u);
}

TEST(FaultTest, SendReliableRetriesDropTransparently) {
  FaultPlan plan;
  plan.messageFaults.push_back(
      {/*src=*/0, /*dst=*/1, kTagGeneric, /*occurrence=*/0, /*repeat=*/2});
  auto injector = injectorWith(plan);
  Network net(2);
  net.setFaultInjector(injector);
  net.sendReliable(0, 1, kTagGeneric, bufferWith(42));
  auto msg = net.recv(1, kTagGeneric);
  EXPECT_EQ(valueOf(msg), 42u);
  EXPECT_EQ(injector->stats().dropped, 2u);
  EXPECT_EQ(injector->stats().retries, 2u);
}

TEST(FaultTest, SendReliableThrowsWhenRetriesExhausted) {
  FaultPlan plan;
  plan.messageFaults.push_back({/*src=*/0, /*dst=*/1, kTagEdgeBatch,
                                /*occurrence=*/0, /*repeat=*/100});
  auto injector = injectorWith(plan);
  Network net(2);
  net.setFaultInjector(injector);
  RetryPolicy policy;
  policy.maxAttempts = 3;
  net.setRetryPolicy(policy);
  try {
    net.sendReliable(0, 1, kTagEdgeBatch, bufferWith(1));
    FAIL() << "expected SendRetriesExhausted";
  } catch (const SendRetriesExhausted& e) {
    EXPECT_EQ(e.from, 0u);
    EXPECT_EQ(e.to, 1u);
    EXPECT_EQ(e.tag, kTagEdgeBatch);
    EXPECT_EQ(e.attempts, 3u);
    EXPECT_NE(std::string(e.what()).find("kTagEdgeBatch"),
              std::string::npos);
  }
}

TEST(FaultTest, DuplicateDeliveredExactlyOnce) {
  FaultPlan plan;
  plan.messageFaults.push_back({/*src=*/0, /*dst=*/1, kTagGeneric,
                                /*occurrence=*/0, /*repeat=*/1,
                                FaultAction::kDuplicate});
  auto injector = injectorWith(plan);
  Network net(2);
  net.setFaultInjector(injector);
  net.send(0, 1, kTagGeneric, bufferWith(5));
  net.send(0, 1, kTagGeneric, bufferWith(6));
  auto first = net.recv(1, kTagGeneric);
  EXPECT_EQ(valueOf(first), 5u);
  auto second = net.recv(1, kTagGeneric);
  EXPECT_EQ(valueOf(second), 6u);  // the duplicate of 5 was filtered
  EXPECT_FALSE(net.tryRecv(1, kTagGeneric).has_value());
  EXPECT_EQ(injector->stats().duplicated, 1u);
  EXPECT_EQ(injector->stats().duplicatesSuppressed, 1u);
}

TEST(FaultTest, DelayedMessagePreservesChannelFifo) {
  FaultPlan plan;
  plan.messageFaults.push_back({/*src=*/0, /*dst=*/1, kTagGeneric,
                                /*occurrence=*/0, /*repeat=*/1,
                                FaultAction::kDelay, /*delayScans=*/3});
  auto injector = injectorWith(plan);
  Network net(2);
  net.setFaultInjector(injector);
  for (uint64_t i = 0; i < 4; ++i) {
    net.send(0, 1, kTagGeneric, bufferWith(i));
  }
  // The first message is delayed; FIFO on the (0, kTagGeneric) channel
  // means the later ones must not overtake it.
  for (uint64_t i = 0; i < 4; ++i) {
    auto msg = net.recv(1, kTagGeneric);
    EXPECT_EQ(valueOf(msg), i);
  }
  EXPECT_EQ(injector->stats().delayed, 1u);
}

TEST(FaultTest, DelayedMessageDeliversToBlockedReceiver) {
  // A receiver already parked inside recv() when the only message it can
  // get is delayed: the delay must age out (via polling), not deadlock.
  FaultPlan plan;
  plan.messageFaults.push_back({/*src=*/0, /*dst=*/1, kTagGeneric,
                                /*occurrence=*/0, /*repeat=*/1,
                                FaultAction::kDelay, /*delayScans=*/5});
  auto injector = injectorWith(plan);
  Network net(2);
  net.setFaultInjector(injector);
  net.setRecvTimeout(5.0);  // backstop: fail the test instead of hanging
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, kTagGeneric, bufferWith(77));
    } else {
      auto msg = net.recv(1, kTagGeneric);
      EXPECT_EQ(valueOf(msg), 77u);
    }
  });
}

TEST(FaultTest, ScheduledCrashFiresOncePerInjector) {
  FaultPlan plan;
  plan.crashes.push_back({/*host=*/1, /*phase=*/0, /*opsIntoPhase=*/0});
  auto injector = injectorWith(plan);
  Network net(2);
  net.setFaultInjector(injector);
  EXPECT_THROW(runHosts(net,
                        [&](HostId me) {
                          if (me == 1) {
                            net.barrier(me);  // first crossing: crash
                          } else {
                            net.barrier(me);
                          }
                        }),
               HostFailure);
  EXPECT_EQ(injector->stats().crashesFired, 1u);

  // Same injector, fresh network: the crash does not re-fire.
  Network net2(2);
  net2.setFaultInjector(injector);
  runHosts(net2, [&](HostId me) { net2.barrier(me); });
  EXPECT_EQ(injector->stats().crashesFired, 1u);
}

TEST(FaultTest, CrashTargetsPhaseAndCrossing) {
  FaultPlan plan;
  plan.crashes.push_back({/*host=*/0, /*phase=*/2, /*opsIntoPhase=*/1});
  auto injector = injectorWith(plan);
  Network net(1);
  net.setFaultInjector(injector);
  net.enterPhase(0, 1);
  net.faultPoint(0);  // phase 1 crossings never match
  net.faultPoint(0);
  net.enterPhase(0, 2);
  net.faultPoint(0);  // crossing 0 of phase 2: no crash yet
  EXPECT_THROW(net.faultPoint(0), HostFailure);  // crossing 1: crash
  EXPECT_EQ(injector->stats().crashesFired, 1u);
}

TEST_P(NetworkHosts, AllReduceMin) {
  const uint32_t hosts = GetParam();
  Network net(hosts);
  std::vector<uint32_t> results(hosts);
  runHosts(net, [&](HostId me) {
    results[me] = net.allReduceMin<uint32_t>(me, 10 + me);
  });
  for (uint32_t h = 0; h < hosts; ++h) {
    EXPECT_EQ(results[h], 10u);
  }
}

TEST(FaultTest, CleanRunWithInjectorMatchesWithout) {
  // An injector whose plan never matches must not perturb traffic stats.
  auto runOnce = [](std::shared_ptr<FaultInjector> injector) {
    Network net(3);
    if (injector) {
      net.setFaultInjector(std::move(injector));
    }
    runHosts(net, [&](HostId me) {
      if (me == 0) {
        for (HostId h = 1; h < 3; ++h) {
          net.sendReliable(0, h, kTagGeneric, bufferWith(h));
        }
      } else {
        auto msg = net.recvFrom(me, 0, kTagGeneric);
        EXPECT_EQ(valueOf(msg), me);
      }
      net.barrier(me);
    });
    return net.statsSnapshot();
  };
  FaultPlan plan;
  plan.messageFaults.push_back(
      {/*src=*/2, /*dst=*/0, kTagEdgeBatch, /*occurrence=*/99});
  const auto clean = runOnce(nullptr);
  const auto injected = runOnce(injectorWith(plan));
  EXPECT_EQ(clean.totalBytes(), injected.totalBytes());
  EXPECT_EQ(clean.totalMessages(), injected.totalMessages());
}

// ---------------------------------------------------------------------------
// Volume conservation. VolumeStats is a point-in-time view over the
// always-on atomic counters; these regressions pin down exactly what is and
// is not accounted: payload bytes per tag, framing overhead separately, and
// sender-side accounting that matches what the receiver can drain even when
// the interconnect drops and duplicates messages.
// ---------------------------------------------------------------------------

TEST(VolumeConservation, PerTagPayloadSumsMatchTotals) {
  Network net(3);
  const uint64_t payload = bufferWith(0).size();
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, kTagEdgeBatch, bufferWith(1));
      net.send(0, 2, kTagEdgeBatch, bufferWith(2));
      net.send(0, 1, kTagMirrorFlags, bufferWith(3));
      net.send(0, 0, kTagEdgeBatch, bufferWith(4));  // self-send: free
      net.recv(0, kTagEdgeBatch);
    } else if (me == 1) {
      net.recv(1, kTagEdgeBatch);
      net.recv(1, kTagMirrorFlags);
    } else {
      net.recv(2, kTagEdgeBatch);
    }
  });
  const VolumeStats stats = net.statsSnapshot();
  EXPECT_EQ(stats.bytes[kTagEdgeBatch], 2 * payload);
  EXPECT_EQ(stats.messages[kTagEdgeBatch], 2u);
  EXPECT_EQ(stats.bytes[kTagMirrorFlags], payload);
  // totalBytes is exactly the per-tag payload sum plus the collective
  // bucket — no hidden contributions, no framing.
  uint64_t tagSum = 0;
  for (uint64_t b : stats.bytes) {
    tagSum += b;
  }
  EXPECT_EQ(tagSum, 3 * payload);
  EXPECT_EQ(stats.totalBytes(), tagSum + stats.collectiveBytes);
  EXPECT_EQ(stats.framingBytes, 0u);
  EXPECT_EQ(stats.corruptionsDetected, 0u);
}

TEST(VolumeConservation, FramingBytesExcludedFromPayloadAccounting) {
  // Identical traffic with CRC framing off and on: per-tag payload
  // accounting must be byte-identical, with the footer overhead visible
  // only in framingBytes.
  VolumeStats plain;
  VolumeStats framed;
  for (const bool framing : {false, true}) {
    Network net(2);
    net.setCrcFraming(framing);
    runHosts(net, [&](HostId me) {
      if (me == 0) {
        for (uint64_t i = 0; i < 5; ++i) {
          net.send(0, 1, kTagEdgeBatch, bufferWith(i));
        }
        net.send(0, 0, kTagEdgeBatch, bufferWith(99));  // self-send: unframed
        net.recv(0, kTagEdgeBatch);
      } else {
        for (uint64_t i = 0; i < 5; ++i) {
          auto msg = net.recv(1, kTagEdgeBatch);
          // The footer is stripped before the payload is queued.
          EXPECT_EQ(msg.payload.size(), bufferWith(i).size());
        }
      }
    });
    (framing ? framed : plain) = net.statsSnapshot();
  }
  for (size_t t = 0; t < kTagCount; ++t) {
    EXPECT_EQ(plain.bytes[t], framed.bytes[t]) << "tag " << t;
    EXPECT_EQ(plain.messages[t], framed.messages[t]) << "tag " << t;
  }
  EXPECT_EQ(plain.framingBytes, 0u);
  EXPECT_EQ(framed.framingBytes, 5 * support::kCrcFooterSize);
  EXPECT_EQ(plain.totalBytes(), framed.totalBytes());
}

TEST(VolumeConservation, SymmetricUnderDropsAndDuplicates) {
  FaultPlan plan;
  plan.messageFaults.push_back({/*src=*/0, /*dst=*/1, kTagEdgeBatch,
                                /*occurrence=*/0, /*repeat=*/1,
                                FaultAction::kDrop});
  plan.messageFaults.push_back({/*src=*/0, /*dst=*/1, kTagEdgeBatch,
                                /*occurrence=*/2, /*repeat=*/1,
                                FaultAction::kDuplicate});
  auto injector = injectorWith(plan);
  Network net(2);
  net.setFaultInjector(injector);
  uint64_t receivedMessages = 0;
  uint64_t receivedBytes = 0;
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      for (uint64_t i = 0; i < 4; ++i) {
        net.sendReliable(0, 1, kTagEdgeBatch, bufferWith(i));
      }
    } else {
      for (uint64_t i = 0; i < 4; ++i) {
        auto msg = net.recv(1, kTagEdgeBatch);
        ++receivedMessages;
        receivedBytes += msg.payload.size();
      }
      // The duplicate's second copy is already queued (it rode along with
      // the third send) and must be suppressed, not delivered.
      EXPECT_FALSE(net.tryRecv(1, kTagEdgeBatch).has_value());
    }
  });
  EXPECT_EQ(injector->stats().dropped, 1u);
  EXPECT_EQ(injector->stats().duplicatesSuppressed, 1u);
  const VolumeStats stats = net.statsSnapshot();
  // Sender accounting is symmetric with what the receiver drained: the
  // dropped attempt was never accounted and the duplicated message was
  // accounted exactly once.
  EXPECT_EQ(stats.messages[kTagEdgeBatch], receivedMessages);
  EXPECT_EQ(stats.bytes[kTagEdgeBatch], receivedBytes);
  // With an injector attached framing is on: one footer per accounted
  // transmission, still excluded from the payload counters above.
  EXPECT_EQ(stats.framingBytes, receivedMessages * support::kCrcFooterSize);
}

TEST(VolumeConservation, RegistryCountersMirrorSnapshotWhenSinkAttached) {
  obs::ScopedObservability scope;
  Network net(2);  // resolves its registry cells at construction
  runHosts(net, [&](HostId me) {
    if (me == 0) {
      net.send(0, 1, kTagEdgeBatch, bufferWith(7));
      net.send(0, 1, kTagMasterAssign, bufferWith(8));
    } else {
      net.recv(1, kTagEdgeBatch);
      net.recv(1, kTagMasterAssign);
    }
    net.barrier(me);
  });
  const VolumeStats stats = net.statsSnapshot();
  const auto snap = scope.metrics().snapshot();
  EXPECT_EQ(snap.counterValue("cusp.net.bytes", {{"tag", "kTagEdgeBatch"}}),
            stats.bytes[kTagEdgeBatch]);
  EXPECT_EQ(snap.counterValue("cusp.net.messages",
                              {{"tag", "kTagMasterAssign"}}),
            stats.messages[kTagMasterAssign]);
  EXPECT_EQ(snap.counterValue("cusp.net.bytes", {{"tag", "collective"}}),
            stats.collectiveBytes);
  EXPECT_EQ(snap.counterValue("cusp.net.messages", {{"tag", "collective"}}),
            stats.collectiveMessages);
  // resetStats zeroes the view but never the registry (monotone counters).
  net.resetStats();
  EXPECT_EQ(net.statsSnapshot().totalBytes(), 0u);
  EXPECT_EQ(scope.metrics()
                .snapshot()
                .counterValue("cusp.net.bytes", {{"tag", "kTagEdgeBatch"}}),
            stats.bytes[kTagEdgeBatch]);
}

TEST(FaultTest, DuplicateFilterMemoryIsBounded) {
  // The per-mailbox duplicate filter keys channel state by (src, tag); a
  // long-lived network that churns through many distinct tags must not
  // grow it without bound. Idle channels are evicted LRU once the table
  // exceeds kMaxDupFilterChannels.
  FaultPlan plan;
  plan.messageFaults.push_back({/*src=*/0, /*dst=*/1, /*tag=*/7,
                                /*occurrence=*/0, /*repeat=*/1,
                                FaultAction::kDuplicate});
  auto injector = injectorWith(plan);
  Network net(2);
  net.setFaultInjector(injector);
  const uint64_t kTags = 4 * Network::kMaxDupFilterChannels;
  for (uint64_t t = 0; t < kTags; ++t) {
    net.send(0, 1, /*tag=*/static_cast<Tag>(100 + t), bufferWith(t));
    auto msg = net.recv(1, static_cast<Tag>(100 + t));
    EXPECT_EQ(valueOf(msg), t);
  }
  EXPECT_LE(net.dupFilterChannels(1), Network::kMaxDupFilterChannels);
  // Suppression still works after heavy channel churn: the duplicated
  // message on tag 7 is delivered exactly once.
  net.send(0, 1, /*tag=*/7, bufferWith(123));
  auto msg = net.recv(1, 7);
  EXPECT_EQ(valueOf(msg), 123u);
  EXPECT_FALSE(net.tryRecv(1, 7).has_value());
  EXPECT_EQ(injector->stats().duplicatesSuppressed, 1u);
}

}  // namespace
}  // namespace cusp::comm
