// Tests of the cusp::obs observability layer: the metrics registry model,
// the trace span timeline, attach/detach semantics, both machine-readable
// exporters (validated by parsing their output back), registry behavior
// under concurrent hammering from host threads, end-to-end coverage of a
// partition + BFS run, and determinism of the exported counters across
// identical resilient runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analytics/algorithms.h"
#include "analytics/reference.h"
#include "comm/fault.h"
#include "comm/network.h"
#include "core/checkpoint.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "testutil.h"

namespace cusp {
namespace {

// ---------------------------------------------------------------------------
// JSON model (the exporters' writer and the tests' reader).
// ---------------------------------------------------------------------------

TEST(ObsJson, ParsesObjectsArraysStringsNumbers) {
  const auto doc = obs::json::parse(
      R"({"a": [1, 2.5, -3], "b": {"c": "x\"y"}, "t": true, "n": null})");
  ASSERT_TRUE(doc.isObject());
  const auto* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->isArray());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -3.0);
  const auto* b = doc.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->isObject());
  EXPECT_EQ(b->find("c")->str, "x\"y");
  EXPECT_TRUE(doc.find("t")->boolean);
  EXPECT_TRUE(doc.find("n")->isNull());
  EXPECT_FALSE(doc.has("missing"));
}

TEST(ObsJson, QuoteRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te\x01";
  const auto doc = obs::json::parse(obs::json::quote(nasty));
  ASSERT_TRUE(doc.isString());
  EXPECT_EQ(doc.str, nasty);
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(obs::json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(obs::json::parse(""), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Registry model.
// ---------------------------------------------------------------------------

TEST(ObsRegistry, InterningCanonicalizesLabelOrder) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("m", {{"x", "1"}, {"y", "2"}});
  obs::Counter& b = reg.counter("m", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b) << "label order at the call site split the cell";
  obs::Counter& c = reg.counter("m", {{"x", "1"}, {"y", "3"}});
  EXPECT_NE(&a, &c);
  a.add(5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counterValue("m", {{"y", "2"}, {"x", "1"}}), 5u);
  EXPECT_EQ(snap.counterValue("m", {{"x", "1"}, {"y", "3"}}), 0u);
  EXPECT_EQ(snap.counterValue("absent"), 0u);
}

TEST(ObsRegistry, HistogramBucketsAndSumAreExact) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("sizes", {}, {1.0, 4.0, 16.0});
  for (const double v : {0.5, 1.0, 3.0, 4.0, 10.0, 100.0}) {
    h.observe(v);
  }
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 118.5);
  const auto buckets = h.bucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // three bounds + the +inf bucket
  EXPECT_EQ(buckets[0], 2u);      // <= 1:  0.5, 1.0
  EXPECT_EQ(buckets[1], 2u);      // <= 4:  3.0, 4.0
  EXPECT_EQ(buckets[2], 1u);      // <= 16: 10.0
  EXPECT_EQ(buckets[3], 1u);      // +inf:  100.0
  // Re-registration with different bounds returns the existing cell.
  obs::Histogram& again = reg.histogram("sizes", {}, {99.0});
  EXPECT_EQ(&h, &again);
}

TEST(ObsRegistry, ConcurrentHammerFromHostThreadsHasExactTotals) {
  // Eight "host" threads resolve cells through the interning path and bang
  // on shared and per-host counters, a histogram, and gauges. Totals must
  // come out exact — the property the whole layer's thread-safety rests on.
  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kIters = 49'000;  // divisible by 7 for an exact sum
  obs::MetricsRegistry reg;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string host = std::to_string(t);
      obs::Counter& shared = reg.counter("hammer.shared");
      obs::Counter& mine = reg.counter("hammer.per_host", {{"host", host}});
      obs::Histogram& hist = reg.histogram("hammer.sizes");
      for (uint64_t i = 0; i < kIters; ++i) {
        shared.add();
        mine.add(2);
        hist.observe(static_cast<double>(i % 7));
        // Re-resolving every iteration exercises interning under contention.
        reg.gauge("hammer.progress", {{"host", host}})
            .set(static_cast<double>(i));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counterValue("hammer.shared"), kThreads * kIters);
  for (uint32_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counterValue("hammer.per_host",
                                {{"host", std::to_string(t)}}),
              2 * kIters)
        << "host " << t;
  }
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, kThreads * kIters);
  // Sum of i % 7 over a multiple of 7 iterations: (kIters / 7) * 21.
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum,
                   static_cast<double>(kThreads * (kIters / 7) * 21));
  EXPECT_EQ(snap.gauges.size(), kThreads);
  for (const auto& g : snap.gauges) {
    EXPECT_DOUBLE_EQ(g.value, static_cast<double>(kIters - 1));
  }
}

// ---------------------------------------------------------------------------
// Attach / detach semantics.
// ---------------------------------------------------------------------------

TEST(ObsSink, ScopedObservabilityAttachesAndRestores) {
  EXPECT_FALSE(obs::attached());
  EXPECT_FALSE(static_cast<bool>(obs::sink()));
  {
    obs::ScopedObservability outer;
    EXPECT_TRUE(obs::attached());
    EXPECT_EQ(obs::sink().metrics.get(), &outer.metrics());
    {
      obs::ScopedObservability inner;
      EXPECT_EQ(obs::sink().metrics.get(), &inner.metrics());
      EXPECT_NE(&inner.metrics(), &outer.metrics());
    }
    // Nested scope restored the outer sink, not detached.
    EXPECT_TRUE(obs::attached());
    EXPECT_EQ(obs::sink().metrics.get(), &outer.metrics());
  }
  EXPECT_FALSE(obs::attached());
}

TEST(ObsSink, DetachedHoldersSurviveDetach) {
  obs::Sink held;
  {
    obs::ScopedObservability scope;
    held = obs::sink();
    held.metrics->counter("survivor").add(1);
  }
  EXPECT_FALSE(obs::attached());
  held.metrics->counter("survivor").add(1);  // must not crash
  EXPECT_EQ(held.metrics->snapshot().counterValue("survivor"), 2u);
}

TEST(ObsSink, NullSafeScopedSpanIsANoOp) {
  obs::ScopedSpan nullSpan(nullptr, 0, "nothing");
  nullSpan.close();  // no-op, no crash
  obs::TraceBuffer buf;
  {
    obs::ScopedSpan span(&buf, 3, "real");
    obs::ScopedSpan moved = std::move(span);
    moved.close();
    moved.close();  // idempotent: records exactly once
  }
  const auto events = buf.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "real");
  EXPECT_EQ(events[0].lane, 3u);
}

// ---------------------------------------------------------------------------
// Golden-schema tests: parse the exported documents back and validate them.
// ---------------------------------------------------------------------------

obs::Labels labelsOf(const obs::json::Value& entry) {
  obs::Labels labels;
  const auto* obj = entry.find("labels");
  if (obj != nullptr) {
    for (const auto& [k, v] : obj->object) {
      labels.emplace_back(k, v.str);
    }
  }
  return labels;
}

TEST(ObsExport, MetricsJsonMatchesSchema) {
  obs::MetricsRegistry reg;
  reg.counter("cusp.test.messages", {{"tag", "edge"}}).add(7);
  reg.counter("cusp.test.messages", {{"tag", "master"}}).add(3);
  reg.counter("cusp.test.bytes").add(1234);
  reg.gauge("cusp.test.progress", {{"host", "0"}}).set(0.75);
  obs::Histogram& h = reg.histogram("cusp.test.sizes", {}, {1.0, 4.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(50.0);

  const std::string text = reg.toJson();
  const auto doc = obs::json::parse(text);
  ASSERT_TRUE(doc.isObject());
  ASSERT_TRUE(doc.has("schema"));
  EXPECT_EQ(doc.find("schema")->str, "cusp.metrics.v1");

  // Counters: required keys, label sets, values.
  const auto* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->isArray());
  ASSERT_EQ(counters->array.size(), 3u);
  std::vector<std::pair<std::string, obs::Labels>> order;
  for (const auto& entry : counters->array) {
    ASSERT_TRUE(entry.has("name"));
    ASSERT_TRUE(entry.has("value"));
    order.emplace_back(entry.find("name")->str, labelsOf(entry));
  }
  // Entries are sorted by (name, labels) — the determinism the exporter
  // guarantees so identical registries serialize identically.
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  const auto& first = counters->array[0];
  EXPECT_EQ(first.find("name")->str, "cusp.test.bytes");
  EXPECT_DOUBLE_EQ(first.find("value")->number, 1234.0);
  const auto& second = counters->array[1];
  EXPECT_EQ(second.find("name")->str, "cusp.test.messages");
  EXPECT_EQ(labelsOf(second), (obs::Labels{{"tag", "edge"}}));
  EXPECT_DOUBLE_EQ(second.find("value")->number, 7.0);

  // Gauges.
  const auto* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_EQ(gauges->array.size(), 1u);
  EXPECT_EQ(gauges->array[0].find("name")->str, "cusp.test.progress");
  EXPECT_EQ(labelsOf(gauges->array[0]), (obs::Labels{{"host", "0"}}));
  EXPECT_DOUBLE_EQ(gauges->array[0].find("value")->number, 0.75);

  // Histograms: count, sum, and per-bucket entries ending in "inf"; bucket
  // counts must add up to the total count.
  const auto* histograms = doc.find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_EQ(histograms->array.size(), 1u);
  const auto& hist = histograms->array[0];
  EXPECT_EQ(hist.find("name")->str, "cusp.test.sizes");
  EXPECT_DOUBLE_EQ(hist.find("count")->number, 3.0);
  EXPECT_DOUBLE_EQ(hist.find("sum")->number, 53.5);
  const auto* buckets = hist.find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->array.size(), 3u);
  double bucketTotal = 0.0;
  for (const auto& bucket : buckets->array) {
    ASSERT_TRUE(bucket.has("le"));
    ASSERT_TRUE(bucket.has("count"));
    bucketTotal += bucket.find("count")->number;
  }
  EXPECT_DOUBLE_EQ(bucketTotal, 3.0);
  EXPECT_TRUE(buckets->array.back().find("le")->isString());
  EXPECT_EQ(buckets->array.back().find("le")->str, "inf");
  EXPECT_DOUBLE_EQ(buckets->array[0].find("le")->number, 1.0);
}

TEST(ObsExport, CountersAreMonotoneAcrossSnapshots) {
  obs::MetricsRegistry reg;
  reg.counter("grows", {{"k", "v"}}).add(1);
  reg.counter("steady").add(10);
  auto valuesOf = [](const std::string& text) {
    std::map<std::string, double> values;
    const auto doc = obs::json::parse(text);
    for (const auto& entry : doc.find("counters")->array) {
      std::string key = entry.find("name")->str;
      for (const auto& [k, v] : labelsOf(entry)) {
        key += "|" + k + "=" + v;
      }
      values[key] = entry.find("value")->number;
    }
    return values;
  };
  const auto before = valuesOf(reg.toJson());
  reg.counter("grows", {{"k", "v"}}).add(5);
  reg.counter("fresh").add(2);
  const auto after = valuesOf(reg.toJson());
  for (const auto& [key, value] : before) {
    ASSERT_TRUE(after.count(key)) << "counter " << key << " disappeared";
    EXPECT_GE(after.at(key), value) << "counter " << key << " went backwards";
  }
}

// For every lane: any two spans must be disjoint or properly nested —
// a partial overlap means the span stack was corrupted.
void expectWellNestedPerLane(
    const std::vector<std::tuple<uint32_t, uint64_t, uint64_t>>& spans) {
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      const auto& [laneA, beginA, endA] = spans[i];
      const auto& [laneB, beginB, endB] = spans[j];
      if (laneA != laneB) {
        continue;
      }
      const bool disjoint = endA <= beginB || endB <= beginA;
      const bool aInsideB = beginB <= beginA && endA <= endB;
      const bool bInsideA = beginA <= beginB && endB <= endA;
      EXPECT_TRUE(disjoint || aInsideB || bInsideA)
          << "lane " << laneA << ": spans [" << beginA << "," << endA
          << ") and [" << beginB << "," << endB << ") partially overlap";
    }
  }
}

TEST(ObsExport, ChromeTraceJsonMatchesSchema) {
  obs::TraceBuffer buf;
  buf.record(0, "outer", 0, 100);
  buf.record(0, "inner", 10, 40);
  buf.record(1, "other host", 5, 20);
  buf.record(obs::kDriverLane, "attempt 1", 0, 150);

  const auto doc = obs::json::parse(buf.toChromeTraceJson());
  ASSERT_TRUE(doc.isObject());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());

  std::map<uint32_t, std::string> laneNames;
  std::vector<std::tuple<uint32_t, uint64_t, uint64_t>> spans;
  std::set<uint32_t> spanLanes;
  for (const auto& e : events->array) {
    ASSERT_TRUE(e.has("ph"));
    const std::string ph = e.find("ph")->str;
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    const auto lane = static_cast<uint32_t>(e.find("tid")->number);
    if (ph == "M") {
      EXPECT_EQ(e.find("name")->str, "thread_name");
      const auto* args = e.find("args");
      ASSERT_NE(args, nullptr);
      laneNames[lane] = args->find("name")->str;
    } else {
      ASSERT_EQ(ph, "X") << "unexpected event phase";
      ASSERT_TRUE(e.has("name"));
      ASSERT_TRUE(e.has("ts"));
      ASSERT_TRUE(e.has("dur"));
      EXPECT_EQ(e.find("cat")->str, "cusp");
      const auto ts = static_cast<uint64_t>(e.find("ts")->number);
      const auto dur = static_cast<uint64_t>(e.find("dur")->number);
      spans.emplace_back(lane, ts, ts + dur);
      spanLanes.insert(lane);
    }
  }
  // Every lane with spans has a thread_name lane label.
  EXPECT_EQ(laneNames[0], "host 0");
  EXPECT_EQ(laneNames[1], "host 1");
  EXPECT_EQ(laneNames[obs::kDriverLane], "driver");
  for (const uint32_t lane : spanLanes) {
    EXPECT_TRUE(laneNames.count(lane)) << "lane " << lane << " unnamed";
  }
  EXPECT_EQ(spans.size(), 4u);
  expectWellNestedPerLane(spans);
}

// ---------------------------------------------------------------------------
// File exports and the --metrics-out CLI hook.
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class TempMetricsFile {
 public:
  TempMetricsFile() {
    char tmpl[] = "/tmp/cusp_obs_XXXXXX";
    const int fd = ::mkstemp(tmpl);
    if (fd < 0) {
      throw std::runtime_error("mkstemp failed");
    }
    ::close(fd);
    path_ = std::string(tmpl) + ".json";
    ::remove(tmpl);
  }
  ~TempMetricsFile() {
    ::remove(path_.c_str());
    ::remove(obs::traceExportPath(path_).c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ObsExport, TraceExportPathDerivation) {
  EXPECT_EQ(obs::traceExportPath("run.json"), "run.trace.json");
  EXPECT_EQ(obs::traceExportPath("/a/b/metrics.json"), "/a/b/metrics.trace.json");
  EXPECT_EQ(obs::traceExportPath("noext"), "noext.trace.json");
}

TEST(ObsExport, WriteExportsProducesBothParseableFiles) {
  obs::Sink sink = obs::makeSink();
  sink.metrics->counter("exported").add(42);
  sink.trace->record(2, "span", 1, 2);
  TempMetricsFile file;
  std::string error;
  ASSERT_TRUE(obs::writeExports(sink, file.path(), &error)) << error;
  const auto metrics = obs::json::parse(slurp(file.path()));
  EXPECT_EQ(metrics.find("schema")->str, "cusp.metrics.v1");
  const auto trace = obs::json::parse(slurp(obs::traceExportPath(file.path())));
  EXPECT_TRUE(trace.has("traceEvents"));
  // Empty sink or unwritable path fail with an error, not silently.
  std::string failError;
  EXPECT_FALSE(obs::writeExports(obs::Sink{}, file.path(), &failError));
  EXPECT_FALSE(failError.empty());
  EXPECT_FALSE(
      obs::writeExports(sink, "/nonexistent-dir/x.json", &failError));
}

TEST(ObsExport, MetricsCliConsumesFlagAndWritesOnExit) {
  TempMetricsFile file;
  const std::string flag = "--metrics-out=" + file.path();
  std::string prog = "tool";
  std::string positional = "input.cgr";
  std::vector<char*> argv = {prog.data(), const_cast<char*>(flag.c_str()),
                             positional.data(), nullptr};
  int argc = 3;
  {
    obs::MetricsCli cli(argc, argv.data());
    ASSERT_TRUE(cli.enabled());
    EXPECT_EQ(cli.path(), file.path());
    // The flag was consumed: downstream parsers only see the positional.
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "input.cgr");
    EXPECT_TRUE(obs::attached());
    obs::sink().metrics->counter("cli").add(1);
  }
  EXPECT_FALSE(obs::attached());
  const auto doc = obs::json::parse(slurp(file.path()));
  bool found = false;
  for (const auto& entry : doc.find("counters")->array) {
    found = found || entry.find("name")->str == "cli";
  }
  EXPECT_TRUE(found);
}

TEST(ObsExport, MetricsCliWithoutFlagIsInert) {
  std::string prog = "tool";
  std::string positional = "x";
  std::vector<char*> argv = {prog.data(), positional.data(), nullptr};
  int argc = 2;
  obs::MetricsCli cli(argc, argv.data());
  EXPECT_FALSE(cli.enabled());
  EXPECT_EQ(argc, 2);
  EXPECT_FALSE(obs::attached());
}

// ---------------------------------------------------------------------------
// End-to-end: an 8-host partition + BFS run covers all five phases and the
// analytics supersteps in the exports, with counters mirroring the
// partitioner's own volume report.
// ---------------------------------------------------------------------------

TEST(ObsEndToEnd, PartitionAndBfsCoverPhasesAndSupersteps) {
  const graph::CsrGraph g = graph::generateWebCrawl(
      {.numNodes = 600, .avgOutDegree = 8.0, .seed = 23});
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  core::PartitionerConfig config;
  config.numHosts = 8;

  obs::ScopedObservability scope;
  const auto result =
      core::partitionGraph(file, core::makePolicy("CVC"), config);
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(result.partitions, source),
            analytics::bfsReference(g, source));

  // Counters mirror the partitioner's own volume report (BFS ran on a
  // separate Network, so partition-tagged traffic is unchanged by it).
  const auto snap = scope.metrics().snapshot();
  EXPECT_EQ(snap.counterValue("cusp.net.bytes", {{"tag", "kTagEdgeBatch"}}),
            result.volume.bytes[comm::kTagEdgeBatch]);
  EXPECT_GT(snap.counterValue("cusp.net.messages", {{"tag", "collective"}}),
            0u);
  EXPECT_GT(snap.counterValue("cusp.analytics.supersteps",
                              {{"algo", "min_propagate"}}),
            0u);
  EXPECT_GT(snap.counterValue("cusp.analytics.sync_rounds"), 0u);

  // The trace covers all five phases on every one of the 8 host lanes, and
  // the BFS supersteps.
  const auto events = scope.trace().snapshot();
  std::map<std::string, std::set<uint32_t>> lanesByPhase;
  bool sawSuperstep = false;
  for (const auto& e : events) {
    lanesByPhase[e.name].insert(e.lane);
    sawSuperstep = sawSuperstep || e.name.rfind("superstep ", 0) == 0;
  }
  for (const char* phase :
       {"Graph Reading", "Master Assignment", "Edge Assignment",
        "Graph Allocation", "Graph Construction"}) {
    EXPECT_EQ(lanesByPhase[phase].size(), 8u)
        << "phase " << phase << " missing from some host lane";
  }
  EXPECT_TRUE(sawSuperstep) << "no analytics superstep spans recorded";

  // And the chrome export of that run parses with named lanes for all
  // 8 hosts.
  const auto doc = obs::json::parse(scope.trace().toChromeTraceJson());
  std::set<std::string> laneNames;
  for (const auto& e : doc.find("traceEvents")->array) {
    if (e.find("ph")->str == "M") {
      laneNames.insert(e.find("args")->find("name")->str);
    }
  }
  for (uint32_t h = 0; h < 8; ++h) {
    EXPECT_TRUE(laneNames.count("host " + std::to_string(h)))
        << "missing lane label for host " << h;
  }
}

// ---------------------------------------------------------------------------
// Determinism: two identical resilient runs under the same (no-crash) fault
// plan export identical counter and histogram values. Timings (trace
// timestamps) are excluded by construction — only monotone event counts are
// compared.
// ---------------------------------------------------------------------------

class TempCkptDir {
 public:
  TempCkptDir() {
    char tmpl[] = "/tmp/cusp_obs_ckpt_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~TempCkptDir() {
    for (uint32_t h = 0; h < 8; ++h) {
      core::removeCheckpoints(path_, h, 5);
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ObsDeterminism, IdenticalResilientRunsExportIdenticalCounters) {
  const graph::CsrGraph g = graph::generateErdosRenyi(250, 1500, 29);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("CVC");

  // Drops (retried transparently) and an in-flight corruption (detected,
  // retransmitted): lossy enough to exercise the retry/corruption counters,
  // but crash-free so the volume accounting is deterministic.
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->messageFaults.push_back({/*src=*/0, /*dst=*/1, comm::kTagEdgeBatch,
                                 /*occurrence=*/0, /*repeat=*/2,
                                 comm::FaultAction::kDrop});
  // CVC on a 2x2 grid: host 1 is (row 0, col 1), so its edge batches can
  // only target row-0 owners — corrupt its traffic to host 0.
  plan->messageFaults.push_back({/*src=*/1, /*dst=*/0, comm::kTagEdgeBatch,
                                 /*occurrence=*/0, /*repeat=*/1,
                                 comm::FaultAction::kCorrupt});
  plan->messageFaults.push_back({/*src=*/2, /*dst=*/0, comm::kTagMirrorFlags,
                                 /*occurrence=*/0, /*repeat=*/1,
                                 comm::FaultAction::kDuplicate});

  auto runOnce = [&](std::vector<uint8_t>* partitionBytes) {
    TempCkptDir dir;
    core::PartitionerConfig config;
    config.numHosts = 4;
    config.resilience.faultPlan =
        std::make_shared<comm::FaultPlan>(*plan);  // fresh occurrence state
    config.resilience.checkpointDir = dir.path();
    config.resilience.enableCheckpoints = true;
    config.resilience.recvTimeoutSeconds = 20.0;
    obs::ScopedObservability scope;
    const auto result = core::partitionGraphResilient(file, policy, config);
    support::SendBuffer buf;
    for (const auto& part : result.partitions) {
      core::serializeDistGraph(buf, part);
    }
    *partitionBytes = buf.release();
    return scope.metrics().snapshot();
  };

  std::vector<uint8_t> bytesA;
  std::vector<uint8_t> bytesB;
  const auto a = runOnce(&bytesA);
  const auto b = runOnce(&bytesB);

  // The runs themselves were identical...
  EXPECT_EQ(bytesA, bytesB) << "resilient runs diverged; counter comparison "
                               "would be meaningless";

  // ...and so is every exported counter: payload bytes and messages per
  // tag, checkpoint writes per phase, retries, corruptions.
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].name, b.counters[i].name) << "entry " << i;
    EXPECT_EQ(a.counters[i].labels, b.counters[i].labels) << "entry " << i;
    EXPECT_EQ(a.counters[i].value, b.counters[i].value)
        << "counter " << a.counters[i].name << " diverged between runs";
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].name, b.histograms[i].name);
    EXPECT_EQ(a.histograms[i].count, b.histograms[i].count);
    EXPECT_DOUBLE_EQ(a.histograms[i].sum, b.histograms[i].sum);
    EXPECT_EQ(a.histograms[i].bucketCounts, b.histograms[i].bucketCounts);
  }

  // The interesting counters actually fired.
  EXPECT_GT(a.counterValue("cusp.net.send_retries"), 0u);
  EXPECT_GT(a.counterValue("cusp.net.corruptions_detected"), 0u);
  EXPECT_GT(a.counterValue("cusp.net.corruptions_recovered"), 0u);
  EXPECT_EQ(a.counterValue("cusp.partitioner.checkpoints_written",
                           {{"phase", "1"}}),
            4u);  // one per host
  EXPECT_GT(a.counterValue("cusp.checkpoint.bytes_written"), 0u);
  EXPECT_GT(a.counterValue("cusp.checkpoint.files_written"), 0u);
}

}  // namespace
}  // namespace cusp
