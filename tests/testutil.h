// Shared helpers for the CuSP test suite.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/dist_graph.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"

namespace cusp::testutil {

struct NamedGraph {
  std::string name;
  graph::CsrGraph graph;
};

// A spread of small graphs exercising structurally different cases:
// skewed degrees, hubs, locality, regular structure, isolated vertices.
inline std::vector<NamedGraph> testGraphCatalog() {
  std::vector<NamedGraph> graphs;
  graphs.push_back({"path16", graph::makePath(16)});
  graphs.push_back({"cycle9", graph::makeCycle(9)});
  graphs.push_back({"star33", graph::makeStar(32)});
  graphs.push_back({"grid6x5", graph::makeGrid(6, 5)});
  graphs.push_back({"complete8", graph::makeComplete(8)});
  {
    graph::RmatParams params;
    params.scale = 8;
    params.numEdges = 2048;
    params.seed = 11;
    graphs.push_back({"rmat8", graph::generateRmat(params)});
  }
  {
    graph::WebCrawlParams params;
    params.numNodes = 400;
    params.avgOutDegree = 8.0;
    params.seed = 13;
    graphs.push_back({"web400", graph::generateWebCrawl(params)});
  }
  graphs.push_back({"er300", graph::generateErdosRenyi(300, 1200, 17)});
  return graphs;
}

// Checks every structural invariant a partition set must satisfy against
// its input graph and returns a human-readable description of each
// violation (empty vector == valid):
//  * edge multiset — every input edge assigned to exactly one host;
//  * master assignment — exactly one master per present vertex, and every
//    proxy's masterHostOfLocal names the host actually holding the master;
//  * proxy accounting — per-vertex proxy counts reassemble into exactly the
//    totals and average replication factor reported by computeQuality.
// Unlike core::validatePartitions (which throws on the first problem) this
// collects everything, so a test failure shows the full picture.
inline std::vector<std::string> partitionInvariantViolations(
    const graph::CsrGraph& original,
    std::span<const core::DistGraph> partitions) {
  std::vector<std::string> violations;
  constexpr size_t kMaxPerCategory = 5;
  auto complain = [&](size_t& count, std::string msg) {
    if (count++ < kMaxPerCategory) {
      violations.push_back(std::move(msg));
    }
  };

  // Every edge assigned exactly once: the concatenation of all hosts' edges
  // (global endpoints, transpose already undone by edgesWithGlobalIds) must
  // equal the input's edge multiset.
  std::vector<graph::Edge> assigned;
  for (const core::DistGraph& part : partitions) {
    const auto edges = part.edgesWithGlobalIds();
    assigned.insert(assigned.end(), edges.begin(), edges.end());
  }
  std::vector<graph::Edge> expected = original.toEdges();
  std::sort(assigned.begin(), assigned.end());
  std::sort(expected.begin(), expected.end());
  if (assigned.size() != expected.size()) {
    violations.push_back("edge multiset: hosts hold " +
                         std::to_string(assigned.size()) + " edges, input has " +
                         std::to_string(expected.size()));
  } else if (assigned != expected) {
    for (size_t i = 0; i < assigned.size(); ++i) {
      if (!(assigned[i] == expected[i])) {
        violations.push_back(
            "edge multiset: first mismatch at sorted index " +
            std::to_string(i) + ": assigned " +
            std::to_string(assigned[i].src) + "->" +
            std::to_string(assigned[i].dst) + " vs input " +
            std::to_string(expected[i].src) + "->" +
            std::to_string(expected[i].dst));
        break;
      }
    }
  }

  // One pass over every proxy: count proxies and masters per vertex and
  // remember which host claims each master.
  std::vector<uint32_t> proxyCount(original.numNodes(), 0);
  std::vector<uint32_t> masterCount(original.numNodes(), 0);
  std::vector<uint32_t> masterHost(original.numNodes(), UINT32_MAX);
  size_t rangeErrors = 0;
  for (const core::DistGraph& part : partitions) {
    for (uint64_t lid = 0; lid < part.numLocalNodes(); ++lid) {
      const uint64_t gid = part.globalId(lid);
      if (gid >= original.numNodes()) {
        complain(rangeErrors, "host " + std::to_string(part.hostId) +
                                  ": local node " + std::to_string(lid) +
                                  " maps to out-of-range global id " +
                                  std::to_string(gid));
        continue;
      }
      ++proxyCount[gid];
      if (part.isMaster(lid)) {
        ++masterCount[gid];
        masterHost[gid] = part.hostId;
      }
    }
  }
  size_t masterErrors = 0;
  for (uint64_t v = 0; v < original.numNodes(); ++v) {
    if (proxyCount[v] > 0 && masterCount[v] != 1) {
      complain(masterErrors, "vertex " + std::to_string(v) + " has " +
                                 std::to_string(masterCount[v]) +
                                 " masters across hosts (expected 1)");
    }
  }
  // Cross-host consistency: every host's view of where a vertex's master
  // lives must match the host that actually holds it.
  size_t viewErrors = 0;
  for (const core::DistGraph& part : partitions) {
    for (uint64_t lid = 0; lid < part.numLocalNodes(); ++lid) {
      const uint64_t gid = part.globalId(lid);
      if (gid >= original.numNodes() || masterHost[gid] == UINT32_MAX) {
        continue;
      }
      if (part.masterHostOfLocal[lid] != masterHost[gid]) {
        complain(viewErrors,
                 "host " + std::to_string(part.hostId) + " believes vertex " +
                     std::to_string(gid) + "'s master is on host " +
                     std::to_string(part.masterHostOfLocal[lid]) +
                     " but it is on host " + std::to_string(masterHost[gid]));
      }
    }
  }

  // Proxy counts must reassemble into exactly the replication factor the
  // quality metrics report: total proxies, total masters and the average.
  const core::PartitionQuality quality = core::computeQuality(partitions);
  uint64_t totalProxies = 0;
  uint64_t totalMasters = 0;
  uint64_t verticesWithProxies = 0;
  for (uint64_t v = 0; v < original.numNodes(); ++v) {
    totalProxies += proxyCount[v];
    totalMasters += masterCount[v];
    verticesWithProxies += proxyCount[v] > 0 ? 1 : 0;
  }
  if (totalProxies != quality.totalProxies) {
    violations.push_back("replication: counted " +
                         std::to_string(totalProxies) +
                         " proxies but computeQuality reports " +
                         std::to_string(quality.totalProxies));
  }
  if (totalMasters != quality.totalMasters) {
    violations.push_back("replication: counted " +
                         std::to_string(totalMasters) +
                         " masters but computeQuality reports " +
                         std::to_string(quality.totalMasters));
  }
  if (verticesWithProxies > 0) {
    const double factor = static_cast<double>(totalProxies) /
                          static_cast<double>(verticesWithProxies);
    if (std::abs(factor - quality.avgReplicationFactor) > 1e-9) {
      violations.push_back(
          "replication: per-vertex proxy counts give factor " +
          std::to_string(factor) + " but computeQuality reports " +
          std::to_string(quality.avgReplicationFactor));
    }
  }
  return violations;
}

// A graph with isolated vertices and a self loop mixed in.
inline graph::CsrGraph awkwardGraph() {
  std::vector<graph::Edge> edges = {
      {0, 1, 0}, {0, 2, 0}, {2, 2, 0},  // self loop
      {5, 0, 0}, {5, 6, 0}, {6, 5, 0},  // nodes 3, 4, 7 isolated
      {1, 5, 0}, {2, 6, 0}, {0, 1, 0},  // duplicate edge 0->1
  };
  return graph::CsrGraph::fromEdges(8, edges);
}

}  // namespace cusp::testutil
