// Shared helpers for the CuSP test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/generators.h"

namespace cusp::testutil {

struct NamedGraph {
  std::string name;
  graph::CsrGraph graph;
};

// A spread of small graphs exercising structurally different cases:
// skewed degrees, hubs, locality, regular structure, isolated vertices.
inline std::vector<NamedGraph> testGraphCatalog() {
  std::vector<NamedGraph> graphs;
  graphs.push_back({"path16", graph::makePath(16)});
  graphs.push_back({"cycle9", graph::makeCycle(9)});
  graphs.push_back({"star33", graph::makeStar(32)});
  graphs.push_back({"grid6x5", graph::makeGrid(6, 5)});
  graphs.push_back({"complete8", graph::makeComplete(8)});
  {
    graph::RmatParams params;
    params.scale = 8;
    params.numEdges = 2048;
    params.seed = 11;
    graphs.push_back({"rmat8", graph::generateRmat(params)});
  }
  {
    graph::WebCrawlParams params;
    params.numNodes = 400;
    params.avgOutDegree = 8.0;
    params.seed = 13;
    graphs.push_back({"web400", graph::generateWebCrawl(params)});
  }
  graphs.push_back({"er300", graph::generateErdosRenyi(300, 1200, 17)});
  return graphs;
}

// A graph with isolated vertices and a self loop mixed in.
inline graph::CsrGraph awkwardGraph() {
  std::vector<graph::Edge> edges = {
      {0, 1, 0}, {0, 2, 0}, {2, 2, 0},  // self loop
      {5, 0, 0}, {5, 6, 0}, {6, 5, 0},  // nodes 3, 4, 7 isolated
      {1, 5, 0}, {2, 6, 0}, {0, 1, 0},  // duplicate edge 0->1
  };
  return graph::CsrGraph::fromEdges(8, edges);
}

}  // namespace cusp::testutil
