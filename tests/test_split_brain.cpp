// Split-brain tolerance: link-level faults, quorum fencing and heal-time
// rejoin. Covers the fault model (asymmetric LinkFaults, timed
// PartitionEvents), the connectivity/suspicion machinery, the quorum rule
// in agreeMembership and on send/recv failure paths, the epoch write fence
// guarding the checkpoint store, and the resilient driver end to end:
//
//  * under an injected majority/minority partition with heal, the majority
//    completes and the result is bit-identical to a clean run (EEC is
//    deterministic), the minority host exits via MinorityPartition with
//    zero post-fence checkpoint writes, and the healed host rejoins;
//  * an even split fails fast deterministically — neither side proceeds;
//  * without heal the minority is evicted through the shared degraded
//    machinery and the survivors' output is a valid partition family.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analytics/algorithms.h"
#include "analytics/reference.h"
#include "comm/fault.h"
#include "comm/network.h"
#include "core/checkpoint.h"
#include "core/degraded.h"
#include "core/dist_graph.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "support/serialize.h"
#include "support/storage.h"
#include "testutil.h"

namespace cusp {
namespace {

using core::DistGraph;
using core::PartitionerConfig;
using core::PartitionResult;
using core::RecoveryReport;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/cusp_splitbrain_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path_ = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> serializedBytes(const DistGraph& part) {
  support::SendBuffer buf;
  core::serializeDistGraph(buf, part);
  return buf.release();
}

void expectBitIdentical(const std::vector<DistGraph>& expected,
                        const std::vector<DistGraph>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t h = 0; h < expected.size(); ++h) {
    EXPECT_EQ(serializedBytes(expected[h]), serializedBytes(actual[h]))
        << "partition of slot " << h << " diverged";
  }
}

// Master host of every global vertex; asserts single-mastering on the way.
std::vector<uint32_t> masterMap(const graph::CsrGraph& g,
                                const std::vector<DistGraph>& parts) {
  std::vector<uint32_t> master(g.numNodes(), UINT32_MAX);
  for (const DistGraph& p : parts) {
    for (uint64_t lid = 0; lid < p.numMasters; ++lid) {
      const uint64_t gid = p.localToGlobal[lid];
      EXPECT_EQ(master[gid], UINT32_MAX)
          << "vertex " << gid << " mastered twice";
      master[gid] = p.hostId;
    }
  }
  for (uint64_t v = 0; v < g.numNodes(); ++v) {
    EXPECT_NE(master[v], UINT32_MAX) << "vertex " << v << " has no master";
  }
  return master;
}

PartitionerConfig degradedConfig(const std::string& dir, uint32_t hosts,
                                 std::shared_ptr<const comm::FaultPlan> plan) {
  PartitionerConfig config;
  config.numHosts = hosts;
  config.resilience.faultPlan = std::move(plan);
  config.resilience.checkpointDir = dir;
  config.resilience.enableCheckpoints = true;
  config.resilience.buddyReplication = true;
  config.resilience.degradedMode = true;
  config.resilience.recvTimeoutSeconds = 20.0;  // backstop against hangs
  return config;
}

support::SendBuffer makePayload(size_t bytes) {
  support::SendBuffer buf;
  support::serialize(buf, std::vector<uint8_t>(bytes, 0xAB));
  return buf;
}

// ---------------------------------------------------------------------------
// Link-level fault model.
// ---------------------------------------------------------------------------

TEST(LinkFaultTest, SeededDropLotteryIsDeterministicAndCounted) {
  comm::FaultPlan plan;
  plan.linkFaults.push_back(
      {/*src=*/0, /*dst=*/1, /*dropRate=*/0.5, /*degradeFactor=*/1.0,
       /*fromPhase=*/0});

  auto runOnce = [&plan]() {
    comm::Network net(2);
    net.setFaultInjector(std::make_shared<comm::FaultInjector>(plan));
    std::vector<bool> delivered;
    for (int i = 0; i < 200; ++i) {
      delivered.push_back(
          net.send(0, 1, comm::kTagGeneric, makePayload(16)));
    }
    const uint64_t drops = net.faultInjector()->stats().linkDropped;
    return std::make_pair(delivered, drops);
  };

  const auto [first, firstDrops] = runOnce();
  const auto [second, secondDrops] = runOnce();
  EXPECT_EQ(first, second) << "link drop lottery is not deterministic";
  EXPECT_EQ(firstDrops, secondDrops);
  const uint64_t observedDrops = static_cast<uint64_t>(
      std::count(first.begin(), first.end(), false));
  EXPECT_EQ(firstDrops, observedDrops);
  EXPECT_GT(observedDrops, 0u);        // a 0.5 link drops something...
  EXPECT_LT(observedDrops, 200u);      // ...but not everything
}

TEST(LinkFaultTest, DegradeFactorMultipliesModeledCommCost) {
  comm::FaultPlan plan;
  plan.linkFaults.push_back(
      {/*src=*/0, /*dst=*/1, /*dropRate=*/0.0, /*degradeFactor=*/4.0,
       /*fromPhase=*/0});
  comm::NetworkCostModel cost;
  cost.bandwidthMBps = 1.0;  // 1 byte = 1 microsecond
  comm::Network net(3, cost);
  net.setFaultInjector(std::make_shared<comm::FaultInjector>(plan));

  // Identical payloads: host 0 crosses the degraded link, host 2 a clean
  // one. The degraded sender is charged exactly the factor more.
  net.send(0, 1, comm::kTagGeneric, makePayload(1000));
  net.send(2, 1, comm::kTagGeneric, makePayload(1000));
  EXPECT_GT(net.modeledCommSeconds(2), 0.0);
  EXPECT_DOUBLE_EQ(net.modeledCommSeconds(0),
                   4.0 * net.modeledCommSeconds(2));
}

TEST(LinkFaultTest, SeveredLinkIsUnreachableAndDropsEverything) {
  comm::FaultPlan plan;
  plan.linkFaults.push_back(
      {/*src=*/0, /*dst=*/1, /*dropRate=*/1.0, /*degradeFactor=*/1.0,
       /*fromPhase=*/0});
  comm::Network net(3);
  net.setFaultInjector(std::make_shared<comm::FaultInjector>(plan));

  EXPECT_FALSE(net.linkReachable(0, 1));  // severed direction
  EXPECT_TRUE(net.linkReachable(1, 0));   // asymmetric: reverse is clean
  EXPECT_TRUE(net.linkReachable(0, 2));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(net.send(0, 1, comm::kTagGeneric, makePayload(8)));
  }
  EXPECT_EQ(net.faultInjector()->stats().linkDropped, 5u);
}

TEST(LinkFaultTest, SuspicionFromFailedSendsClearsOnHeal) {
  // An ordinary (non-severed) lossy link exhausts retries: the sender
  // records suspicion against the peer but does NOT fence (the injector
  // does not confirm a cut). clearSuspicions() models heal-time rejoin
  // dropping the stale evidence.
  comm::FaultPlan plan;
  plan.messageFaults.push_back({/*src=*/0, /*dst=*/1, comm::kAnyTag,
                                /*occurrence=*/0, /*repeat=*/100,
                                comm::FaultAction::kDrop});
  comm::Network net(3);
  net.setFaultInjector(std::make_shared<comm::FaultInjector>(plan));
  support::ScopedWriteFence fenceScope;

  EXPECT_THROW(net.sendReliable(0, 1, comm::kTagGeneric, makePayload(8)),
               comm::SendRetriesExhausted);
  EXPECT_FALSE(net.linkReachable(0, 1));  // suspicion recorded
  EXPECT_FALSE(fenceScope.fence()->isFenced(0));  // but no fence: no cut
  net.clearSuspicions();
  EXPECT_TRUE(net.linkReachable(0, 1));
}

TEST(PartitionEventTest, ActiveCutDropsCrossGroupAndHealRestores) {
  comm::FaultPlan plan;
  plan.partitions.push_back(
      {/*groupOf=*/{0, 0, 1}, /*phase=*/0, /*heals=*/true});
  comm::FaultInjector injector(plan);

  EXPECT_TRUE(injector.linkSevered(0, 2));
  EXPECT_TRUE(injector.linkSevered(2, 1));
  EXPECT_FALSE(injector.linkSevered(0, 1));  // same group
  const auto pending = injector.unresolvedPartition();
  ASSERT_TRUE(pending.has_value());
  injector.resolvePartition(*pending);
  EXPECT_FALSE(injector.unresolvedPartition().has_value());
  EXPECT_FALSE(injector.linkSevered(0, 2));  // healed: connectivity back

  // Without heal the cut is permanent even after resolution.
  comm::FaultPlan permanent = plan;
  permanent.partitions[0].heals = false;
  comm::FaultInjector stays(permanent);
  stays.resolvePartition(*stays.unresolvedPartition());
  EXPECT_TRUE(stays.linkSevered(0, 2));
  EXPECT_FALSE(stays.unresolvedPartition().has_value());
}

TEST(PartitionEventTest, CrossGroupSendsCountAsPartitionDrops) {
  comm::FaultPlan plan;
  plan.partitions.push_back(
      {/*groupOf=*/{0, 1}, /*phase=*/0, /*heals=*/false});
  comm::Network net(2);
  net.setFaultInjector(std::make_shared<comm::FaultInjector>(plan));
  EXPECT_FALSE(net.send(0, 1, comm::kTagGeneric, makePayload(8)));
  EXPECT_EQ(net.faultInjector()->stats().partitionDropped, 1u);
}

// ---------------------------------------------------------------------------
// Retry backoff jitter.
// ---------------------------------------------------------------------------

TEST(RetryJitterTest, JitteredBackoffIsDeterministicAndBounded) {
  comm::FaultPlan plan;
  plan.messageFaults.push_back({/*src=*/0, /*dst=*/1, comm::kTagGeneric,
                                /*occurrence=*/0, /*repeat=*/2,
                                comm::FaultAction::kDrop});
  auto runOnce = [&plan]() {
    comm::Network net(2);
    net.setFaultInjector(std::make_shared<comm::FaultInjector>(plan));
    net.sendReliable(0, 1, comm::kTagGeneric, makePayload(8));
    return net.modeledCommSeconds(0);
  };
  const double first = runOnce();
  const double second = runOnce();
  EXPECT_EQ(first, second) << "backoff jitter is not deterministic";
  // Two retries at backoffMicros=100: un-jittered backoff would be exactly
  // 100us + 200us; decorrelated jitter scales each step by [0.5, 1.5).
  EXPECT_GE(first, 150e-6 * 0.999);
  EXPECT_LT(first, 450e-6);
}

// ---------------------------------------------------------------------------
// Quorum rule.
// ---------------------------------------------------------------------------

TEST(QuorumTest, SeveredOnlyPeerFencesMinoritySender) {
  // Two hosts, one severed direction: the sender's component is itself,
  // which can never be a strict majority of two — fail fast, fenced.
  comm::FaultPlan plan;
  plan.linkFaults.push_back(
      {/*src=*/0, /*dst=*/1, /*dropRate=*/1.0, /*degradeFactor=*/1.0,
       /*fromPhase=*/0});
  comm::Network net(2);
  net.setFaultInjector(std::make_shared<comm::FaultInjector>(plan));
  support::ScopedWriteFence fenceScope;

  try {
    net.sendReliable(0, 1, comm::kTagGeneric, makePayload(8));
    FAIL() << "sendReliable over a severed link did not throw";
  } catch (const comm::MinorityPartition& e) {
    EXPECT_EQ(e.host, 0u);
    EXPECT_EQ(e.componentSize, 1u);
    EXPECT_EQ(e.numAlive, 2u);
    EXPECT_GE(e.epoch, 1u);
  }
  EXPECT_TRUE(fenceScope.fence()->isFenced(0));
  EXPECT_GE(fenceScope.fence()->epoch(), 1u);
}

TEST(QuorumTest, MajorityAgreesAndEvictsUnreachableMinority) {
  // Five hosts, {0,1,2,3} | {4}: every majority member idempotently evicts
  // the cut-off host and the agreement runs among the survivors; the
  // minority host fences itself and throws. Threads are joined manually
  // (not runHosts) so the minority's throw cannot abort the majority round.
  comm::FaultPlan plan;
  plan.partitions.push_back(
      {/*groupOf=*/{0, 0, 0, 0, 1}, /*phase=*/0, /*heals=*/false});
  comm::Network net(5);
  net.setFaultInjector(std::make_shared<comm::FaultInjector>(plan));
  support::ScopedWriteFence fenceScope;

  std::vector<std::optional<comm::MembershipView>> views(5);
  std::vector<std::exception_ptr> errors(5);
  std::vector<std::thread> threads;
  for (uint32_t h = 0; h < 5; ++h) {
    threads.emplace_back([&, h] {
      try {
        views[h] = net.agreeMembership(h);
      } catch (...) {
        errors[h] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  for (uint32_t h = 0; h < 4; ++h) {
    ASSERT_TRUE(views[h].has_value()) << "majority host " << h << " failed";
    EXPECT_EQ(views[h]->epoch, 1u);
    EXPECT_EQ(views[h]->numAlive(), 4u);
    EXPECT_FALSE(views[h]->isAlive(4));
  }
  ASSERT_TRUE(errors[4] != nullptr) << "minority host proceeded";
  try {
    std::rethrow_exception(errors[4]);
  } catch (const comm::MinorityPartition& e) {
    EXPECT_EQ(e.host, 4u);
  }
  EXPECT_FALSE(net.isAlive(4));
  EXPECT_TRUE(fenceScope.fence()->isFenced(4));
  EXPECT_GE(fenceScope.fence()->epoch(), 1u);
}

TEST(QuorumTest, EvenSplitTieFailsFastOnEverySide) {
  // 2|2: neither component is a strict majority, so EVERY host must fence
  // and fail fast — two proceeding halves would be split-brain. The tie
  // path throws before any exchange, so the calls run sequentially.
  comm::FaultPlan plan;
  plan.partitions.push_back(
      {/*groupOf=*/{0, 0, 1, 1}, /*phase=*/0, /*heals=*/false});
  comm::Network net(4);
  net.setFaultInjector(std::make_shared<comm::FaultInjector>(plan));
  support::ScopedWriteFence fenceScope;

  for (uint32_t h = 0; h < 4; ++h) {
    try {
      net.agreeMembership(h);
      FAIL() << "tie-side host " << h << " proceeded";
    } catch (const comm::MinorityPartition& e) {
      EXPECT_EQ(e.host, h);
      EXPECT_EQ(e.componentSize, 2u);
      EXPECT_EQ(e.numAlive, 4u);
    }
    EXPECT_TRUE(fenceScope.fence()->isFenced(h));
    EXPECT_TRUE(net.isAlive(h));  // fenced, not evicted: nobody had quorum
  }
}

TEST(QuorumTest, EvictPurgesDeadHostsBacklogAndDupFilterChannels) {
  comm::Network net(3);
  // An injector makes sends carry dup-filter sequence numbers, so channel
  // state materializes.
  net.setFaultInjector(
      std::make_shared<comm::FaultInjector>(comm::FaultPlan{}));

  ASSERT_TRUE(net.send(1, 0, comm::kTagGeneric, makePayload(64)));
  ASSERT_TRUE(net.send(1, 0, comm::kTagGeneric, makePayload(64)));
  ASSERT_TRUE(net.send(2, 0, comm::kTagGeneric, makePayload(64)));
  const comm::Message got = net.recv(0, comm::kTagGeneric);
  EXPECT_EQ(got.from, 1u);  // FIFO: host 1 sent first
  EXPECT_EQ(net.dupFilterChannels(0), 2u);  // channels from hosts 1 and 2
  EXPECT_GT(net.mailboxBacklogBytes(), 0u);

  net.evict(1);
  // Host 1's queued message and channel state are gone; host 2's remain.
  EXPECT_EQ(net.dupFilterChannels(0), 1u);
  const auto next = net.tryRecv(0, comm::kTagGeneric);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->from, 2u);
  EXPECT_FALSE(net.tryRecv(0, comm::kTagGeneric).has_value());
  EXPECT_EQ(net.mailboxBacklogBytes(), 0u);
}

// ---------------------------------------------------------------------------
// Epoch write fence at the checkpoint store.
// ---------------------------------------------------------------------------

TEST(WriteFenceTest, FencedHostCheckpointWritesRefusedBeforeAnyIo) {
  TempDir dir;
  support::ScopedWriteFence fenceScope;
  auto& fence = *fenceScope.fence();
  fence.advance(1);
  fence.fence(1);

  const support::SendBuffer payload = makePayload(256);
  {
    // A wildcard write fault would fire on the FIRST write op reaching the
    // storage seam; it never firing proves the refusal happens pre-I/O.
    support::StorageFaultPlan seamPlan;
    seamPlan.faults.push_back({support::StorageFaultKind::kWriteFail,
                               /*pathSubstring=*/"", /*occurrence=*/0,
                               /*repeat=*/100, /*tornBytes=*/0});
    support::ScopedStorageFaults seam(seamPlan);
    try {
      core::saveCheckpoint(dir.path(), /*host=*/1, /*numHosts=*/4,
                           /*phase=*/3, payload);
      FAIL() << "fenced checkpoint write was not refused";
    } catch (const support::StorageError& e) {
      EXPECT_EQ(e.kind, support::StorageError::Kind::kWriteFailed);
    }
    // The buddy replica is the fenced OWNER's write too: also refused.
    EXPECT_THROW(core::saveCheckpointReplica(dir.path(), /*owner=*/1,
                                             /*numHosts=*/4, /*phase=*/3,
                                             payload),
                 support::StorageError);
    EXPECT_EQ(seam.stats().writeFailures, 0u)
        << "a fenced write reached the storage seam";
  }
  EXPECT_EQ(fence.fencedWriteAttempts(), 2u);
  // Zero debris: no checkpoint, no tmp, no quarantine.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    ADD_FAILURE() << "fenced write left " << entry.path();
  }

  // An unfenced host writes normally while host 1 is fenced.
  core::saveCheckpoint(dir.path(), /*host=*/0, /*numHosts=*/4, /*phase=*/3,
                       payload);
  EXPECT_TRUE(core::loadCheckpoint(dir.path(), 0, 4, 3).has_value());

  // Heal-time rejoin lifts the fence; the host can write again.
  fence.lift(1);
  core::saveCheckpoint(dir.path(), /*host=*/1, /*numHosts=*/4, /*phase=*/3,
                       payload);
  EXPECT_TRUE(core::loadCheckpoint(dir.path(), 1, 4, 3).has_value());
  EXPECT_EQ(fence.fencedWriteAttempts(), 2u);  // unchanged after lift
}

// ---------------------------------------------------------------------------
// Fault-plan projection after evictions.
// ---------------------------------------------------------------------------

TEST(RemapFaultPlanTest, LinkFaultsRemapAndDropWithEvictedEndpoints) {
  comm::FaultPlan plan;
  plan.linkFaults.push_back({/*src=*/0, /*dst=*/3, 0.5, 2.0, /*fromPhase=*/1});
  plan.linkFaults.push_back({/*src=*/1, /*dst=*/2, 1.0, 1.0, /*fromPhase=*/0});

  // Evict host 1: survivors[newRank] = {0, 2, 3}.
  const comm::FaultPlan out = comm::remapFaultPlan(plan, {0, 2, 3});
  ASSERT_EQ(out.linkFaults.size(), 1u);  // the 1 -> 2 fault died with host 1
  EXPECT_EQ(out.linkFaults[0].src, 0u);
  EXPECT_EQ(out.linkFaults[0].dst, 2u);  // old host 3 is new rank 2
  EXPECT_DOUBLE_EQ(out.linkFaults[0].dropRate, 0.5);
  EXPECT_DOUBLE_EQ(out.linkFaults[0].degradeFactor, 2.0);
  EXPECT_EQ(out.linkFaults[0].fromPhase, 1u);
}

TEST(RemapFaultPlanTest, PartitionKeptWhileTwoGroupsSurvive) {
  comm::FaultPlan plan;
  plan.partitions.push_back(
      {/*groupOf=*/{0, 1, 0, 1}, /*phase=*/2, /*heals=*/true});

  // Evict host 1: groups {0, 0, 1} survive on ranks {0, 2, 3} — two sides
  // remain, so the event is kept and rebuilt over survivor ranks.
  const comm::FaultPlan kept = comm::remapFaultPlan(plan, {0, 2, 3});
  ASSERT_EQ(kept.partitions.size(), 1u);
  EXPECT_EQ(kept.partitions[0].groupOf,
            (std::vector<uint8_t>{0, 0, 1}));
  EXPECT_EQ(kept.partitions[0].phase, 2u);
  EXPECT_TRUE(kept.partitions[0].heals);

  // Evict hosts 1 and 3: only group 0 survives — a partition needs two
  // sides, so the event is dropped.
  const comm::FaultPlan dropped = comm::remapFaultPlan(plan, {0, 2});
  EXPECT_TRUE(dropped.partitions.empty());
}

// ---------------------------------------------------------------------------
// Resilient driver end to end.
// ---------------------------------------------------------------------------

TEST(SplitBrainDriverTest, HealedPartitionRejoinsAndMatchesCleanRun) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");

  PartitionerConfig clean;
  clean.numHosts = 5;
  const PartitionResult expected = core::partitionGraph(file, policy, clean);

  TempDir dir;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->partitions.push_back(
      {/*groupOf=*/{0, 0, 0, 0, 1}, /*phase=*/3, /*heals=*/true});
  const PartitionerConfig config = degradedConfig(dir.path(), 5, plan);

  RecoveryReport report;
  const PartitionResult result =
      core::partitionGraphResilient(file, policy, config, &report);

  ASSERT_EQ(result.partitions.size(), 5u);
  EXPECT_EQ(report.finalNumHosts, 5u);
  EXPECT_EQ(report.attempts, 2u);
  EXPECT_EQ(report.partitionEvents, 1u);
  EXPECT_EQ(report.fencedHosts, (std::vector<uint32_t>{4}));
  EXPECT_EQ(report.rejoinedHosts, (std::vector<uint32_t>{4}));
  EXPECT_TRUE(report.evictions.empty());
  // Zero post-fence checkpoint writes: the fence refused nothing because
  // the fenced host failed fast before ever reaching its next checkpoint.
  EXPECT_EQ(report.fencedWriteAttempts, 0u);

  // Deterministic policy, full membership after heal: bit-identical.
  expectBitIdentical(expected.partitions, result.partitions);
}

TEST(SplitBrainDriverTest, UnhealedPartitionEvictsMinorityAndCompletes) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");

  TempDir dir;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->partitions.push_back(
      {/*groupOf=*/{0, 0, 0, 0, 1}, /*phase=*/3, /*heals=*/false});
  const PartitionerConfig config = degradedConfig(dir.path(), 5, plan);

  RecoveryReport report;
  const PartitionResult result =
      core::partitionGraphResilient(file, policy, config, &report);

  ASSERT_EQ(result.partitions.size(), 4u);
  EXPECT_EQ(report.finalNumHosts, 4u);
  EXPECT_EQ(report.partitionEvents, 1u);
  EXPECT_EQ(report.fencedHosts, (std::vector<uint32_t>{4}));
  EXPECT_TRUE(report.rejoinedHosts.empty());
  ASSERT_EQ(report.evictions.size(), 1u);
  EXPECT_EQ(report.evictions[0].host, 4u);

  masterMap(g, result.partitions);
  ASSERT_NO_THROW(core::validatePartitions(g, result.partitions));
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(result.partitions, source),
            analytics::bfsReference(g, source));
}

TEST(SplitBrainDriverTest, EvenSplitFailsFastWithoutTornState) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");

  TempDir dir;
  auto plan = std::make_shared<comm::FaultPlan>();
  plan->partitions.push_back(
      {/*groupOf=*/{0, 0, 1, 1}, /*phase=*/2, /*heals=*/true});
  const PartitionerConfig config = degradedConfig(dir.path(), 4, plan);

  RecoveryReport report;
  EXPECT_THROW(core::partitionGraphResilient(file, policy, config, &report),
               comm::MinorityPartition);
  EXPECT_EQ(report.partitionEvents, 1u);
  // Every write that landed was an unfenced pre-cut checkpoint: the fence
  // refused nothing because no fenced host survived to attempt a write,
  // and the durable-commit protocol left no torn debris behind.
  EXPECT_EQ(report.fencedWriteAttempts, 0u);
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    EXPECT_EQ(name.find(".quarantined"), std::string::npos) << name;
  }
}

TEST(SplitBrainDriverTest, HealWithCompletePhase5StateRejoinsByRedistribution) {
  // A complete phase-5 checkpoint set (from a prior clean run over the
  // same directory) lets heal-time rejoin skip the pipeline entirely: the
  // healed cluster reloads everyone's final state and runs one
  // redistribution round — Path A with zero dead ranks.
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1200, 17);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = core::makePolicy("EEC");

  TempDir dir;
  const PartitionerConfig warmup = degradedConfig(dir.path(), 5, nullptr);
  const PartitionResult expected =
      core::partitionGraphResilient(file, policy, warmup);
  ASSERT_EQ(expected.partitions.size(), 5u);

  auto plan = std::make_shared<comm::FaultPlan>();
  plan->partitions.push_back(
      {/*groupOf=*/{0, 0, 0, 0, 1}, /*phase=*/0, /*heals=*/true});
  const PartitionerConfig config = degradedConfig(dir.path(), 5, plan);

  RecoveryReport report;
  const PartitionResult result =
      core::partitionGraphResilient(file, policy, config, &report);

  ASSERT_EQ(result.partitions.size(), 5u);
  EXPECT_EQ(report.finalNumHosts, 5u);
  EXPECT_EQ(report.partitionEvents, 1u);
  EXPECT_EQ(report.rejoinedHosts, (std::vector<uint32_t>{4}));
  EXPECT_TRUE(report.evictions.empty());
  expectBitIdentical(expected.partitions, result.partitions);
}

// ---------------------------------------------------------------------------
// Seeded partition chaos sweep.
// ---------------------------------------------------------------------------

class SplitBrainFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SplitBrainFuzz, ChaosYieldsValidResultOrStructuredFailure) {
  const uint64_t seed = GetParam();
  const uint32_t hosts = 3 + static_cast<uint32_t>(seed % 3);  // 3..5
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 800, 7);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);

  auto plan = std::make_shared<comm::FaultPlan>(comm::randomFaultPlan(
      seed, hosts, /*maxMessageFaults=*/3, /*maxCrashes=*/1,
      /*allowPermanent=*/true, /*maxSlowdowns=*/0, /*maxLinkFaults=*/2,
      /*allowPartition=*/true));
  TempDir dir;
  const PartitionerConfig config = degradedConfig(dir.path(), hosts, plan);

  RecoveryReport report;
  try {
    const PartitionResult result = core::partitionGraphResilient(
        file, core::makePolicy("EEC"), config, &report);
    ASSERT_EQ(result.partitions.size(), hosts - report.evictions.size());
    masterMap(g, result.partitions);
    ASSERT_NO_THROW(core::validatePartitions(g, result.partitions));
  } catch (const comm::MinorityPartition&) {
    // Even-split tie (or an isolated sender with no quorum): fail-fast by
    // contract — no partition set may be produced.
  } catch (const comm::HostFailure&) {
  } catch (const comm::NetworkStalled&) {
  } catch (const comm::SendRetriesExhausted&) {
  } catch (const comm::HostEvicted&) {
  } catch (const comm::MessageCorrupt&) {
  } catch (const comm::StragglerDeadline&) {
  } catch (const support::StorageError&) {
  }
  // Whatever the outcome, fenced hosts never wrote past their fence: the
  // count is surfaced for post-mortems, and a partitioned run that fenced
  // anyone must have classified the event.
  if (!report.fencedHosts.empty()) {
    EXPECT_GE(report.partitionEvents, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitBrainFuzz,
                         ::testing::Range<uint64_t>(0, 16));

}  // namespace
}  // namespace cusp
