// Integration and property tests of the five-phase CuSP partitioner.
//
// The backbone is a parameterized sweep over (policy x graph x host count)
// that validates every structural invariant of the produced partitions:
// each edge assigned exactly once, exactly one master per vertex, mirror
// metadata consistent across hosts, and the reassembled edge multiset equal
// to the input graph. Policy-specific invariants (EEC co-location, CVC
// blocking, Hybrid thresholding) and the paper's communication-elision
// optimizations are tested separately.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <tuple>

#include "analytics/algorithms.h"
#include "analytics/reference.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "support/serialize.h"
#include "support/timer.h"
#include "testutil.h"

namespace cusp {
namespace {

using core::DistGraph;
using core::PartitionerConfig;
using core::PartitionPolicy;
using core::PartitionResult;

PartitionResult partition(const graph::CsrGraph& g, const std::string& policy,
                          uint32_t hosts,
                          PartitionerConfig config = PartitionerConfig{}) {
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  config.numHosts = hosts;
  return core::partitionGraph(file, core::makePolicy(policy), config);
}

// ---------------------------------------------------------------------------
// Parameterized structural sweep.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<std::string, std::string, uint32_t>;

class PartitionSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  graph::CsrGraph graphFor(const std::string& name) {
    for (auto& named : testutil::testGraphCatalog()) {
      if (named.name == name) {
        return std::move(named.graph);
      }
    }
    throw std::runtime_error("unknown test graph " + name);
  }
};

TEST_P(PartitionSweep, PartitionsAreStructurallyValid) {
  const auto& [policyName, graphName, hosts] = GetParam();
  const graph::CsrGraph g = graphFor(graphName);
  PartitionResult result = partition(g, policyName, hosts);
  ASSERT_EQ(result.partitions.size(), hosts);
  EXPECT_NO_THROW(core::validatePartitions(g, result.partitions));
}

TEST_P(PartitionSweep, EveryVertexHasExactlyOneMasterAndTotalsMatch) {
  const auto& [policyName, graphName, hosts] = GetParam();
  const graph::CsrGraph g = graphFor(graphName);
  PartitionResult result = partition(g, policyName, hosts);
  uint64_t totalMasters = 0;
  uint64_t totalEdges = 0;
  for (const DistGraph& part : result.partitions) {
    totalMasters += part.numMasters;
    totalEdges += part.numLocalEdges();
  }
  EXPECT_EQ(totalMasters, g.numNodes());
  EXPECT_EQ(totalEdges, g.numEdges());
}

std::vector<SweepParam> sweepParams() {
  std::vector<SweepParam> params;
  const std::vector<std::string> graphs = {"path16",  "star33", "grid6x5",
                                           "rmat8",   "web400", "er300"};
  // Table II policies plus the Table I literature policies (LDG, DBH,
  // HDRF, GREEDY) all satisfy the same structural invariants.
  for (const auto& policy : core::extendedPolicyCatalog()) {
    for (const auto& graphName : graphs) {
      for (uint32_t hosts : {1u, 2u, 4u, 7u}) {
        params.emplace_back(policy, graphName, hosts);
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesGraphsHosts, PartitionSweep, ::testing::ValuesIn(sweepParams()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param) + "_h" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Observability must not perturb partitioning. For every (policy, host
// count) pair: the full invariant checker passes both with and without a
// metrics/trace sink attached, and for the deterministic (pure) policies
// the two runs produce bit-identical partitions (stateful FennelEB policies
// are timing-dependent even without a sink — see
// PurePoliciesDeterministicAcrossRuns — so byte comparison is restricted to
// the pure ones).
// ---------------------------------------------------------------------------

std::string joinViolations(const std::vector<std::string>& violations) {
  std::string out;
  for (const auto& v : violations) {
    out += "\n  - " + v;
  }
  return out;
}

using ObsSweepParam = std::tuple<std::string, uint32_t>;

class ObservedPartitionSweep : public ::testing::TestWithParam<ObsSweepParam> {
};

TEST_P(ObservedPartitionSweep, InvariantsHoldAndSinkDoesNotPerturb) {
  const auto& [policyName, hosts] = GetParam();
  const graph::CsrGraph g = graph::generateWebCrawl(
      {.numNodes = 400, .avgOutDegree = 8.0, .seed = 13});

  ASSERT_FALSE(obs::attached()) << "leaked sink from another test";
  const PartitionResult plain = partition(g, policyName, hosts);
  const auto plainViolations =
      testutil::partitionInvariantViolations(g, plain.partitions);
  EXPECT_TRUE(plainViolations.empty())
      << "without sink:" << joinViolations(plainViolations);

  obs::Sink sink;
  PartitionResult observed = [&] {
    obs::ScopedObservability scope;
    sink = scope.sink();
    return partition(g, policyName, hosts);
  }();
  EXPECT_FALSE(obs::attached()) << "ScopedObservability failed to detach";
  const auto observedViolations =
      testutil::partitionInvariantViolations(g, observed.partitions);
  EXPECT_TRUE(observedViolations.empty())
      << "with sink:" << joinViolations(observedViolations);

  // The sink really saw the run (phase spans + per-tag counters).
  ASSERT_TRUE(sink.trace != nullptr);
  EXPECT_FALSE(sink.trace->snapshot().empty());

  if (policyName == "EEC" || policyName == "HVC" || policyName == "CVC") {
    for (uint32_t h = 0; h < hosts; ++h) {
      support::SendBuffer a;
      support::SendBuffer b;
      core::serializeDistGraph(a, plain.partitions[h]);
      core::serializeDistGraph(b, observed.partitions[h]);
      ASSERT_EQ(a.size(), b.size()) << "host " << h;
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0)
          << "host " << h << ": partition bytes differ with sink attached";
    }
  }
}

std::vector<ObsSweepParam> obsSweepParams() {
  std::vector<ObsSweepParam> params;
  for (const auto& policy : core::extendedPolicyCatalog()) {
    for (uint32_t hosts : {2u, 4u, 8u}) {
      params.emplace_back(policy, hosts);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesHosts, ObservedPartitionSweep,
    ::testing::ValuesIn(obsSweepParams()),
    [](const ::testing::TestParamInfo<ObsSweepParam>& info) {
      return std::get<0>(info.param) + "_h" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Policy-specific invariants.
// ---------------------------------------------------------------------------

TEST(PartitionerEec, OutEdgesColocatedWithSourceMaster) {
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 900, 3);
  PartitionResult result = partition(g, "EEC", 4);
  // Source-cut: every edge lives on the partition of its source's master,
  // so a vertex's out-edges are never split and no source is a mirror on a
  // host where it has out-edges.
  for (const DistGraph& part : result.partitions) {
    for (uint64_t lid = 0; lid < part.numLocalNodes(); ++lid) {
      if (part.graph.outDegree(lid) > 0) {
        EXPECT_TRUE(part.isMaster(lid))
            << "EEC: vertex with out-edges is a mirror on host "
            << part.hostId;
      }
    }
  }
}

TEST(PartitionerEec, RequiresNoCommunication) {
  const graph::CsrGraph g = graph::generateErdosRenyi(500, 3000, 5);
  PartitionResult result = partition(g, "EEC", 4);
  // Paper Section V-A: EEC builds each partition from what the host read;
  // the phases exchange no data (only empty "nothing to send" markers and
  // barrier/collective control traffic).
  EXPECT_EQ(result.volume.bytes[comm::kTagEdgeBatch], 0u);
  EXPECT_EQ(result.volume.bytes[comm::kTagMasterRequest], 0u);
  EXPECT_EQ(result.volume.bytes[comm::kTagMasterAssign], 0u);
  EXPECT_EQ(result.volume.bytes[comm::kTagMasterList], 0u);
  // Count vectors are elided to empty vectors (8-byte length prefix).
  EXPECT_LE(result.volume.bytes[comm::kTagEdgeCounts], 4ull * 3 * 8);
  EXPECT_LE(result.volume.bytes[comm::kTagMirrorFlags], 4ull * 3 * 16);
}

TEST(PartitionerCvc, EdgesLandInCartesianBlocks) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 2000, 7);
  const uint32_t hosts = 6;
  PartitionResult result = partition(g, "CVC", hosts);
  // Recompute every vertex's master from the partitions, then check each
  // edge's host against the Cartesian formula.
  std::vector<uint32_t> masterOf(g.numNodes(), UINT32_MAX);
  for (const DistGraph& part : result.partitions) {
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      masterOf[part.globalId(lid)] = part.hostId;
    }
  }
  const auto [pRows, pCols] = core::cartesianGrid(hosts);
  EXPECT_EQ(pRows * pCols, hosts);
  for (const DistGraph& part : result.partitions) {
    for (const graph::Edge& e : part.edgesWithGlobalIds()) {
      const uint32_t expected =
          (masterOf[e.src] / pCols) * pCols + masterOf[e.dst] % pCols;
      EXPECT_EQ(part.hostId, expected)
          << "edge " << e.src << "->" << e.dst << " misplaced";
    }
  }
}

TEST(PartitionerHvc, HybridRespectsDegreeThreshold) {
  // Threshold 1000 with a star graph: the hub exceeds it, so its out-edges
  // go to the destinations' masters; low-degree sources keep their edges.
  const graph::CsrGraph g = graph::makeStar(1500);
  PartitionResult result = partition(g, "HVC", 4);
  std::vector<uint32_t> masterOf(g.numNodes(), UINT32_MAX);
  for (const DistGraph& part : result.partitions) {
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      masterOf[part.globalId(lid)] = part.hostId;
    }
  }
  for (const DistGraph& part : result.partitions) {
    for (const graph::Edge& e : part.edgesWithGlobalIds()) {
      ASSERT_EQ(e.src, 0u);  // star: all edges from the hub
      EXPECT_EQ(part.hostId, masterOf[e.dst])
          << "high-degree source's edge not assigned to destination master";
    }
  }
}

// ---------------------------------------------------------------------------
// Configuration behaviours.
// ---------------------------------------------------------------------------

TEST(Partitioner, SingleHostOwnsEverything) {
  const graph::CsrGraph g = graph::generateErdosRenyi(100, 500, 9);
  for (const auto& policy : core::policyCatalog()) {
    PartitionResult result = partition(g, policy, 1);
    ASSERT_EQ(result.partitions.size(), 1u);
    const DistGraph& part = result.partitions[0];
    EXPECT_EQ(part.numMasters, g.numNodes());
    EXPECT_EQ(part.numMirrors(), 0u);
    EXPECT_EQ(part.numLocalEdges(), g.numEdges());
  }
}

TEST(Partitioner, MoreHostsThanVertices) {
  const graph::CsrGraph g = graph::makePath(5);
  PartitionResult result = partition(g, "EEC", 9);
  EXPECT_NO_THROW(core::validatePartitions(g, result.partitions));
}

TEST(Partitioner, EmptyGraph) {
  const graph::CsrGraph g = graph::CsrGraph::fromEdges(0, std::vector<graph::Edge>{});
  PartitionResult result = partition(g, "EEC", 3);
  for (const DistGraph& part : result.partitions) {
    EXPECT_EQ(part.numLocalNodes(), 0u);
    EXPECT_EQ(part.numLocalEdges(), 0u);
  }
}

TEST(Partitioner, GraphWithIsolatedNodesSelfLoopsAndDuplicates) {
  const graph::CsrGraph g = testutil::awkwardGraph();
  for (const auto& policy : core::policyCatalog()) {
    PartitionResult result = partition(g, policy, 3);
    EXPECT_NO_THROW(core::validatePartitions(g, result.partitions))
        << "policy " << policy;
  }
}

TEST(Partitioner, EdgeDataFollowsEdges) {
  graph::CsrGraph g = graph::generateErdosRenyi(120, 700, 21);
  g = graph::withRandomWeights(g, 50, 33);
  PartitionResult result = partition(g, "CVC", 4);
  EXPECT_NO_THROW(core::validatePartitions(g, result.partitions));
  bool sawWeight = false;
  for (const DistGraph& part : result.partitions) {
    for (const graph::Edge& e : part.edgesWithGlobalIds()) {
      sawWeight = sawWeight || e.data != 0;
    }
  }
  EXPECT_TRUE(sawWeight);
}

TEST(Partitioner, TransposeOutputMatchesCscOfPartition) {
  const graph::CsrGraph g = graph::generateErdosRenyi(150, 800, 27);
  PartitionerConfig config;
  config.numHosts = 4;
  PartitionResult csr = partition(g, "CVC", 4, config);
  config.buildTranspose = true;
  PartitionResult csc = partition(g, "CVC", 4, config);
  // Same logical partitions, opposite orientation: the CSC partition's
  // edges (after the src/dst swap in edgesWithGlobalIds) must equal the CSR
  // partition's edges host by host.
  for (uint32_t h = 0; h < 4; ++h) {
    auto a = csr.partitions[h].edgesWithGlobalIds();
    auto b = csc.partitions[h].edgesWithGlobalIds();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "host " << h;
    EXPECT_TRUE(csc.partitions[h].isTransposed);
  }
  EXPECT_NO_THROW(core::validatePartitions(g, csc.partitions));
}

// ---------------------------------------------------------------------------
// CSC-reading variants (paper III-B: "Each of these policies has two
// variants (24 policies in total)").
// ---------------------------------------------------------------------------

class CscVariantSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(CscVariantSweep, PartitionsValidAgainstLogicalGraph) {
  const graph::CsrGraph g = graph::generateWebCrawl(
      {.numNodes = 500, .avgOutDegree = 7.0, .seed = 81});
  const graph::GraphFile cscFile = graph::GraphFile::fromCsr(g.transpose());
  core::PartitionerConfig config;
  config.numHosts = 4;
  auto result =
      core::partitionGraphCsc(cscFile, core::makePolicy(GetParam()), config);
  for (const auto& part : result.partitions) {
    EXPECT_TRUE(part.isTransposed) << "plain CSC run yields in-edge rows";
  }
  // Validation is against the LOGICAL graph g, not its transpose.
  EXPECT_NO_THROW(core::validatePartitions(g, result.partitions));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CscVariantSweep,
                         ::testing::ValuesIn(core::extendedPolicyCatalog()),
                         [](const auto& info) { return info.param; });

TEST(PartitionerCscVariant, InDegreeHybridRedirectsHighInDegreeTargets) {
  // The CSC variant of Hybrid (PowerLyra's real HVC) keys on IN-degree:
  // a star transposed (all edges point AT the hub) makes the hub a
  // high-in-degree node whose in-edges get reassigned.
  const graph::CsrGraph star = graph::makeStar(1500);     // hub -> leaves
  const graph::CsrGraph logical = star.transpose();       // leaves -> hub
  const graph::GraphFile cscFile = graph::GraphFile::fromCsr(star);
  core::PartitionerConfig config;
  config.numHosts = 4;
  config.buildTranspose = true;  // deliver CSR-oriented partitions
  auto result =
      core::partitionGraphCsc(cscFile, core::makePolicy("HVC"), config);
  EXPECT_NO_THROW(core::validatePartitions(logical, result.partitions));
  // With the hub's in-degree (1500) above the threshold (1000), every edge
  // (leaf -> hub) is assigned to the master of its SOURCE (the in-edge
  // rule's "destination") — i.e. edges spread across all leaf masters
  // instead of piling onto the hub's partition.
  std::vector<uint32_t> masterOf(logical.numNodes(), UINT32_MAX);
  for (const auto& part : result.partitions) {
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      masterOf[part.globalId(lid)] = part.hostId;
    }
  }
  for (const auto& part : result.partitions) {
    EXPECT_FALSE(part.isTransposed);
    for (const graph::Edge& e : part.edgesWithGlobalIds()) {
      EXPECT_EQ(part.hostId, masterOf[e.src]);
    }
  }
}

TEST(PartitionerCscVariant, AnalyticsCorrectOnCscVariantPartitions) {
  graph::CsrGraph g = graph::generateErdosRenyi(300, 1800, 83);
  const graph::GraphFile cscFile = graph::GraphFile::fromCsr(g.transpose());
  core::PartitionerConfig config;
  config.numHosts = 3;
  config.buildTranspose = true;
  const auto parts =
      core::partitionGraphCsc(cscFile, core::makePolicy("CVC"), config)
          .partitions;
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(parts, source),
            analytics::bfsReference(g, source));
}

// ---------------------------------------------------------------------------
// Streaming-window mode (ADWISE class, paper II-B2 — implemented here as
// the paper's suggested extension).
// ---------------------------------------------------------------------------

class WindowedModeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WindowedModeSweep, WindowedHdrfPartitionsAreValid) {
  const uint32_t window = GetParam();
  const graph::CsrGraph g = graph::generateWebCrawl(
      {.numNodes = 600, .avgOutDegree = 8.0, .seed = 97});
  core::PartitionPolicy policy = core::makePolicy("HDRF");
  policy.edge = core::withWindowScore(policy.edge);
  PartitionerConfig config;
  config.numHosts = 4;
  config.windowSize = window;
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto result = core::partitionGraph(file, policy, config);
  EXPECT_NO_THROW(core::validatePartitions(g, result.partitions));
  // Analytics stay correct in windowed mode.
  const uint64_t source = analytics::maxOutDegreeNode(g);
  EXPECT_EQ(analytics::runBfs(result.partitions, source),
            analytics::bfsReference(g, source));
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowedModeSweep,
                         ::testing::Values(1u, 2u, 16u, 128u));

TEST(WindowedMode, WindowOfOneEqualsPlainStreaming) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1800, 101);
  core::PartitionPolicy policy = core::makePolicy("GREEDY");
  policy.edge = core::withWindowScore(policy.edge);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 3;
  config.windowSize = 0;
  const auto plain = core::partitionGraph(file, policy, config);
  config.windowSize = 1;  // degenerate window: same as streaming
  const auto degenerate = core::partitionGraph(file, policy, config);
  for (uint32_t h = 0; h < 3; ++h) {
    EXPECT_EQ(plain.partitions[h].graph, degenerate.partitions[h].graph);
  }
}

TEST(WindowedMode, PrioritizingPlacedEndpointsDoesNotHurtReplication) {
  // On a shuffled-order stream, deferring "fresh" edges lets the replica
  // masks fill in before hard decisions. The windowed run must do at least
  // as well as plain streaming on average replication (it is a heuristic,
  // so allow a small tolerance rather than require strict improvement).
  const graph::CsrGraph g = graph::generateErdosRenyi(500, 5000, 103);
  core::PartitionPolicy policy = core::makePolicy("HDRF");
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 4;
  const auto plain = core::partitionGraph(file, policy, config);
  policy.edge = core::withWindowScore(policy.edge);
  config.windowSize = 128;
  const auto windowed = core::partitionGraph(file, policy, config);
  const double plainRep =
      core::computeQuality(plain.partitions).avgReplicationFactor;
  const double windowedRep =
      core::computeQuality(windowed.partitions).avgReplicationFactor;
  EXPECT_LE(windowedRep, plainRep * 1.05);
}

TEST(WindowedMode, IgnoredWithoutWindowScore) {
  // windowSize set but the rule has no score: plain streaming, identical
  // results to windowSize = 0.
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 1000, 107);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 3;
  config.windowSize = 64;
  const auto a =
      core::partitionGraph(file, core::makePolicy("CVC"), config);
  config.windowSize = 0;
  const auto b =
      core::partitionGraph(file, core::makePolicy("CVC"), config);
  for (uint32_t h = 0; h < 3; ++h) {
    EXPECT_EQ(a.partitions[h].graph, b.partitions[h].graph);
  }
}

TEST(Partitioner, CompressedEdgeBatchesSameGraphFewerBytes) {
  graph::CsrGraph g = graph::generateWebCrawl(
      {.numNodes = 1000, .avgOutDegree = 10.0, .seed = 109});
  g = graph::withRandomWeights(g, 12, 3);
  PartitionerConfig config;
  config.numHosts = 4;
  const PartitionResult plain = partition(g, "CVC", 4, config);
  config.compressEdgeBatches = true;
  const PartitionResult packed = partition(g, "CVC", 4, config);
  EXPECT_NO_THROW(core::validatePartitions(g, packed.partitions));
  for (uint32_t h = 0; h < 4; ++h) {
    EXPECT_EQ(plain.partitions[h].graph, packed.partitions[h].graph);
  }
  EXPECT_LT(packed.volume.bytes[comm::kTagEdgeBatch],
            plain.volume.bytes[comm::kTagEdgeBatch]);
}

TEST(Partitioner, CompressionWorksInWindowedMode) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 1500, 113);
  core::PartitionPolicy policy = core::makePolicy("HDRF");
  policy.edge = core::withWindowScore(policy.edge);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 3;
  config.windowSize = 32;
  config.compressEdgeBatches = true;
  const auto result = core::partitionGraph(file, policy, config);
  EXPECT_NO_THROW(core::validatePartitions(g, result.partitions));
}

TEST(Partitioner, DisablingPureMasterOptKeepsResultsButCommunicates) {
  const graph::CsrGraph g = graph::generateErdosRenyi(400, 2400, 89);
  PartitionerConfig config;
  config.numHosts = 4;
  PartitionResult fast = partition(g, "CVC", 4, config);
  config.disablePureMasterOptimization = true;
  PartitionResult slow = partition(g, "CVC", 4, config);
  // Identical partitions either way...
  for (uint32_t h = 0; h < 4; ++h) {
    EXPECT_EQ(fast.partitions[h].graph, slow.partitions[h].graph);
    EXPECT_EQ(fast.partitions[h].localToGlobal,
              slow.partitions[h].localToGlobal);
  }
  // ...but the optimization eliminates ALL master-phase communication.
  EXPECT_EQ(fast.volume.bytes[comm::kTagMasterRequest], 0u);
  EXPECT_EQ(fast.volume.bytes[comm::kTagMasterList], 0u);
  EXPECT_GT(slow.volume.bytes[comm::kTagMasterRequest], 0u);
  EXPECT_GT(slow.volume.bytes[comm::kTagMasterList], 0u);
}

TEST(Partitioner, PurePoliciesDeterministicAcrossRuns) {
  const graph::CsrGraph g = graph::generateErdosRenyi(250, 1500, 31);
  for (const std::string policy : {"EEC", "HVC", "CVC"}) {
    PartitionResult a = partition(g, policy, 4);
    PartitionResult b = partition(g, policy, 4);
    for (uint32_t h = 0; h < 4; ++h) {
      EXPECT_EQ(a.partitions[h].localToGlobal, b.partitions[h].localToGlobal);
      EXPECT_EQ(a.partitions[h].graph, b.partitions[h].graph) << policy;
    }
  }
}

TEST(Partitioner, ThreadedHostsMatchSingleThreadedForPureRules) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 2000, 37);
  PartitionerConfig config;
  config.numHosts = 3;
  PartitionResult serial = partition(g, "CVC", 3, config);
  config.threadsPerHost = 3;
  PartitionResult threaded = partition(g, "CVC", 3, config);
  for (uint32_t h = 0; h < 3; ++h) {
    EXPECT_EQ(serial.partitions[h].graph, threaded.partitions[h].graph);
  }
}

TEST(Partitioner, StatefulPolicyWorksWithAnySyncRoundCount) {
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 1200, 41);
  for (uint32_t rounds : {1u, 4u, 100u, 1000u}) {
    PartitionerConfig config;
    config.numHosts = 4;
    config.stateSyncRounds = rounds;
    PartitionResult result = partition(g, "SVC", 4, config);
    EXPECT_NO_THROW(core::validatePartitions(g, result.partitions))
        << rounds << " rounds";
  }
}

TEST(Partitioner, ZeroBufferThresholdStillCorrect) {
  const graph::CsrGraph g = graph::generateErdosRenyi(200, 1200, 43);
  PartitionerConfig config;
  config.numHosts = 4;
  config.messageBufferThreshold = 0;  // Fig. 7's "0 MB": every record sent
  PartitionResult immediate = partition(g, "CVC", 4, config);
  EXPECT_NO_THROW(core::validatePartitions(g, immediate.partitions));
  config.messageBufferThreshold = 8ull << 20;
  PartitionResult buffered = partition(g, "CVC", 4, config);
  // Same partitions, very different message counts.
  for (uint32_t h = 0; h < 4; ++h) {
    EXPECT_EQ(immediate.partitions[h].graph, buffered.partitions[h].graph);
  }
  EXPECT_GT(immediate.volume.messages[comm::kTagEdgeBatch],
            buffered.volume.messages[comm::kTagEdgeBatch]);
}

TEST(Partitioner, WeightedReadSplitIsHonoured) {
  const graph::CsrGraph g = graph::generateWebCrawl({});
  PartitionerConfig config;
  config.numHosts = 4;
  config.readNodeWeight = 1.0;  // node-balanced reading instead of default
  config.readEdgeWeight = 0.0;
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionResult result =
      core::partitionGraph(file, core::makePolicy("CVC"), config);
  EXPECT_NO_THROW(core::validatePartitions(g, result.partitions));
}

TEST(Partitioner, ReplicationFactorWithinBounds) {
  const graph::CsrGraph g = graph::generateErdosRenyi(400, 3000, 47);
  for (const auto& policy : core::policyCatalog()) {
    PartitionResult result = partition(g, policy, 4);
    const auto quality = core::computeQuality(result.partitions);
    EXPECT_GE(quality.avgReplicationFactor, 1.0) << policy;
    EXPECT_LE(quality.avgReplicationFactor, 4.0) << policy;
    EXPECT_EQ(quality.totalMasters, g.numNodes()) << policy;
  }
}

TEST(Partitioner, PhaseTimesCoverAllFivePhases) {
  const graph::CsrGraph g = graph::generateErdosRenyi(100, 400, 53);
  PartitionResult result = partition(g, "CVC", 2);
  for (const char* phase :
       {"Graph Reading", "Master Assignment", "Edge Assignment",
        "Graph Allocation", "Graph Construction"}) {
    bool found = false;
    for (const auto& [name, secs] : result.phaseTimes.entries()) {
      found = found || name == phase;
    }
    EXPECT_TRUE(found) << "missing phase " << phase;
  }
}

TEST(Partitioner, RejectsMismatchedConfig) {
  const graph::CsrGraph g = graph::makePath(4);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 0;
  EXPECT_THROW(core::partitionGraph(file, core::makePolicy("EEC"), config),
               std::invalid_argument);
  // Host-level entry point rejects a network whose size differs from the
  // configured host count.
  config.numHosts = 4;
  comm::Network net(2);
  support::PhaseTimes times;
  EXPECT_THROW(core::partitionOnHost(net, 0, file, core::makePolicy("EEC"),
                                     config, times),
               std::invalid_argument);
}

TEST(Partitioner, MaskPoliciesRejectMoreThan64Hosts) {
  // HDRF's replica masks are 64-bit; the partitioner must refuse rather
  // than silently truncate.
  const graph::CsrGraph g = graph::makePath(100);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  PartitionerConfig config;
  config.numHosts = 65;
  EXPECT_THROW(core::partitionGraph(file, core::makePolicy("HDRF"), config),
               std::invalid_argument);
  // 64 hosts is fine (and more hosts than several vertices' blocks).
  config.numHosts = 64;
  const auto result =
      core::partitionGraph(file, core::makePolicy("HDRF"), config);
  EXPECT_NO_THROW(core::validatePartitions(g, result.partitions));
}

TEST(Partitioner, ModeledTimesArePositiveAndWallIsTracked) {
  const graph::CsrGraph g = graph::generateErdosRenyi(300, 2000, 127);
  PartitionerConfig config;
  config.numHosts = 4;
  config.simulatedDiskBandwidthMBps = 10.0;
  const PartitionResult result = partition(g, "CVC", 4, config);
  EXPECT_GT(result.totalSeconds, 0.0);
  EXPECT_GT(result.wallSeconds, 0.0);
  EXPECT_DOUBLE_EQ(result.totalSeconds, result.phaseTimes.total());
  // With a 10 MB/s disk, reading must account for at least the window
  // bytes of the slowest host (~ E/hosts * 8 bytes).
  const double minDisk =
      static_cast<double>(g.numEdges()) / 4 * 8 / (10.0 * 1e6);
  EXPECT_GE(result.phaseTimes.get("Graph Reading"), minDisk * 0.5);
}

}  // namespace
}  // namespace cusp
