// Tests for on-disk graph formats, converters, and read-range splitting.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "testutil.h"

namespace cusp::graph {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cusp_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Binary graph file (.cgr)
// ---------------------------------------------------------------------------

using GraphFileTest = TempDir;

TEST_F(GraphFileTest, SaveLoadRoundTrip) {
  const auto g = generateErdosRenyi(200, 1500, 4);
  GraphFile::save(path("g.cgr"), g);
  const auto file = GraphFile::load(path("g.cgr"));
  EXPECT_EQ(file.numNodes(), g.numNodes());
  EXPECT_EQ(file.numEdges(), g.numEdges());
  EXPECT_EQ(file.toCsr(), g);
}

TEST_F(GraphFileTest, SaveLoadRoundTripWithWeights) {
  const auto g = withRandomWeights(generateErdosRenyi(100, 600, 5), 9, 6);
  GraphFile::save(path("w.cgr"), g);
  const auto file = GraphFile::load(path("w.cgr"));
  EXPECT_TRUE(file.hasEdgeData());
  EXPECT_EQ(file.toCsr(), g);
}

TEST_F(GraphFileTest, FromCsrMatchesDiskPath) {
  const auto g = generateWebCrawl({.numNodes = 300, .avgOutDegree = 5.0, .seed = 8});
  GraphFile::save(path("g.cgr"), g);
  const auto fromDisk = GraphFile::load(path("g.cgr"));
  const auto fromMem = GraphFile::fromCsr(g);
  EXPECT_EQ(fromDisk.toCsr(), fromMem.toCsr());
  EXPECT_EQ(fromDisk.numEdges(), fromMem.numEdges());
}

TEST_F(GraphFileTest, AccessorsMatchGraph) {
  const auto g = makeStar(6);
  const auto file = GraphFile::fromCsr(g);
  EXPECT_EQ(file.outDegree(0), 6u);
  EXPECT_EQ(file.outDegree(3), 0u);
  EXPECT_EQ(file.firstOutEdge(0), 0u);
  EXPECT_EQ(file.firstOutEdge(1), 6u);
  EXPECT_EQ(file.outNeighbors(0).size(), 6u);
}

TEST_F(GraphFileTest, MissingFileThrows) {
  EXPECT_THROW(GraphFile::load(path("nope.cgr")), std::runtime_error);
}

TEST_F(GraphFileTest, BadMagicThrows) {
  std::ofstream out(path("bad.cgr"), std::ios::binary);
  out << "this is not a graph file at all, definitely not";
  out.close();
  EXPECT_THROW(GraphFile::load(path("bad.cgr")), std::runtime_error);
}

TEST_F(GraphFileTest, TruncatedFileThrows) {
  const auto g = generateErdosRenyi(100, 800, 3);
  GraphFile::save(path("t.cgr"), g);
  const auto fullSize = std::filesystem::file_size(path("t.cgr"));
  std::filesystem::resize_file(path("t.cgr"), fullSize / 2);
  EXPECT_THROW(GraphFile::load(path("t.cgr")), std::runtime_error);
}

TEST_F(GraphFileTest, CorruptIndexThrows) {
  const auto g = makePath(4);
  GraphFile::save(path("c.cgr"), g);
  // Flip a row-start entry to break monotonicity.
  std::fstream f(path("c.cgr"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(4 * sizeof(uint64_t) + 1 * sizeof(uint64_t));
  const uint64_t garbage = 1ull << 60;
  f.write(reinterpret_cast<const char*>(&garbage), sizeof(garbage));
  f.close();
  EXPECT_THROW(GraphFile::load(path("c.cgr")), std::runtime_error);
}

namespace {

// Writes raw little-endian u64 words (a hand-built header + payload).
void writeWords(const std::string& path, const std::vector<uint64_t>& words) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(uint64_t)));
}

constexpr uint64_t kCgrMagic = 0x0000000031524743ULL;  // "CGR1"

}  // namespace

TEST_F(GraphFileTest, TruncatedHeaderIsStructuredError) {
  writeWords(path("h.cgr"), {kCgrMagic, 0});  // only half a header
  try {
    GraphFile::load(path("h.cgr"));
    FAIL() << "truncated header accepted";
  } catch (const GraphFileError& e) {
    EXPECT_EQ(e.path(), path("h.cgr"));
    EXPECT_NE(e.reason().find("truncated"), std::string::npos) << e.what();
  }
}

TEST_F(GraphFileTest, GarbageNodeCountRejectedBeforeAllocation) {
  // A header claiming ~10^18 nodes in a 48-byte file must be rejected by
  // the size preflight, not by attempting a multi-exabyte allocation.
  writeWords(path("n.cgr"),
             {kCgrMagic, 0, /*numNodes=*/1ull << 60, /*numEdges=*/0, 0, 0});
  try {
    GraphFile::load(path("n.cgr"));
    FAIL() << "garbage node count accepted";
  } catch (const GraphFileError& e) {
    EXPECT_NE(e.reason().find("nodes"), std::string::npos) << e.what();
  }
}

TEST_F(GraphFileTest, GarbageEdgeCountRejectedBeforeAllocation) {
  writeWords(path("e2.cgr"),
             {kCgrMagic, 4, /*numNodes=*/1, /*numEdges=*/1ull << 60, 0, 0});
  try {
    GraphFile::load(path("e2.cgr"));
    FAIL() << "garbage edge count accepted";
  } catch (const GraphFileError& e) {
    EXPECT_NE(e.reason().find("edges"), std::string::npos) << e.what();
  }
}

TEST_F(GraphFileTest, NodeCountAtU64CeilingDoesNotOverflow) {
  // numNodes == UINT64_MAX would make the (numNodes + 1)-entry row index
  // wrap to zero without the explicit ceiling check.
  writeWords(path("m.cgr"), {kCgrMagic, 0, UINT64_MAX, 0, 0, 0});
  EXPECT_THROW(GraphFile::load(path("m.cgr")), GraphFileError);
}

TEST_F(GraphFileTest, GaloisGarbageCountsRejectedBeforeAllocation) {
  writeWords(path("g1.gr"),
             {/*version=*/1, 0, /*numNodes=*/1ull << 60, /*numEdges=*/0, 0});
  EXPECT_THROW(GraphFile::loadGalois(path("g1.gr")), GraphFileError);
  writeWords(path("g2.gr"),
             {/*version=*/1, 4, /*numNodes=*/1, /*numEdges=*/1ull << 60, 0});
  EXPECT_THROW(GraphFile::loadGalois(path("g2.gr")), GraphFileError);
  writeWords(path("g3.gr"), {1, 0});  // truncated header
  EXPECT_THROW(GraphFile::loadGalois(path("g3.gr")), GraphFileError);
}

TEST_F(GraphFileTest, ChecksumMismatchIsStructuredError) {
  const auto g = makePath(8);  // 8 nodes, 7 edges, dests start at word 13
  GraphFile::save(path("x.cgr"), g);
  // Rewrite dests[0] (edge 0 -> 1) to the equally-valid destination 3: the
  // row index and range checks still pass, so the CRC footer is what
  // catches the tamper.
  std::fstream f(path("x.cgr"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp((4 + 9) * sizeof(uint64_t), std::ios::beg);
  const uint64_t tweaked = 3;
  f.write(reinterpret_cast<const char*>(&tweaked), sizeof(tweaked));
  f.close();
  try {
    GraphFile::load(path("x.cgr"));
    FAIL() << "tampered payload accepted";
  } catch (const GraphFileError& e) {
    EXPECT_EQ(e.path(), path("x.cgr"));
    EXPECT_NE(e.reason().find("checksum"), std::string::npos) << e.what();
  }
}

TEST_F(GraphFileTest, EmptyGraphRoundTrips) {
  const auto g = CsrGraph::fromEdges(0, std::vector<Edge>{});
  GraphFile::save(path("e.cgr"), g);
  const auto file = GraphFile::load(path("e.cgr"));
  EXPECT_EQ(file.numNodes(), 0u);
  EXPECT_EQ(file.numEdges(), 0u);
}

TEST_F(GraphFileTest, ChecksumCatchesSilentPayloadCorruption) {
  // Flip a byte of edge data: structurally still a perfectly valid file,
  // only the CRC footer can tell.
  const auto g = withRandomWeights(makeGrid(4, 4), 100, 7);
  GraphFile::save(path("crc.cgr"), g);
  const auto size = std::filesystem::file_size(path("crc.cgr"));
  std::fstream f(path("crc.cgr"),
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(size) - 17);
  const char byte = static_cast<char>(f.get());
  f.seekp(static_cast<std::streamoff>(size) - 17);
  f.put(static_cast<char>(byte ^ 0x40));
  f.close();
  try {
    GraphFile::load(path("crc.cgr"));
    FAIL() << "expected checksum error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST_F(GraphFileTest, LegacyFileWithoutFooterStillLoads) {
  const auto g = withRandomWeights(makeGrid(4, 4), 100, 7);
  GraphFile::save(path("legacy.cgr"), g);
  const auto size = std::filesystem::file_size(path("legacy.cgr"));
  std::filesystem::resize_file(path("legacy.cgr"), size - 16);
  EXPECT_EQ(GraphFile::load(path("legacy.cgr")).toCsr(), g);
}

// ---------------------------------------------------------------------------
// Galois .gr v1 interop
// ---------------------------------------------------------------------------

using GaloisGrTest = TempDir;

TEST_F(GaloisGrTest, RoundTripsUnweighted) {
  const auto g = generateErdosRenyi(300, 2000, 14);
  GraphFile::saveGalois(path("g.gr"), g);
  EXPECT_EQ(GraphFile::loadGalois(path("g.gr")).toCsr(), g);
}

TEST_F(GaloisGrTest, RoundTripsWeightedWithOddEdgePadding) {
  // 9 edges (odd) exercises the 4-byte alignment padding before edge data.
  std::vector<Edge> edges;
  for (uint64_t i = 0; i < 9; ++i) {
    edges.push_back({i % 5, (i * 3) % 5, static_cast<uint32_t>(i + 1)});
  }
  const auto g = CsrGraph::fromEdges(5, edges, true);
  ASSERT_EQ(g.numEdges() % 2, 1u);
  GraphFile::saveGalois(path("odd.gr"), g);
  EXPECT_EQ(GraphFile::loadGalois(path("odd.gr")).toCsr(), g);
  // Even count too.
  const auto even = withRandomWeights(generateErdosRenyi(50, 200, 15), 9, 1);
  GraphFile::saveGalois(path("even.gr"), even);
  EXPECT_EQ(GraphFile::loadGalois(path("even.gr")).toCsr(), even);
}

TEST_F(GaloisGrTest, RejectsWrongVersionAndCorruption) {
  // Our .cgr file is not a .gr file.
  GraphFile::save(path("x.cgr"), makePath(4));
  EXPECT_THROW(GraphFile::loadGalois(path("x.cgr")), std::runtime_error);
  // Truncation.
  GraphFile::saveGalois(path("t.gr"), generateErdosRenyi(100, 700, 16));
  std::filesystem::resize_file(
      path("t.gr"), std::filesystem::file_size(path("t.gr")) / 2);
  EXPECT_THROW(GraphFile::loadGalois(path("t.gr")), std::runtime_error);
}

TEST_F(GaloisGrTest, InteropThroughConverterAndPartitioner) {
  // A .gr file can feed the whole pipeline.
  const auto g = generateWebCrawl({.numNodes = 300, .avgOutDegree = 5.0, .seed = 17});
  GraphFile::saveGalois(path("w.gr"), g);
  const auto file = GraphFile::loadGalois(path("w.gr"));
  EXPECT_EQ(file.numEdges(), g.numEdges());
  EXPECT_EQ(file.toCsr(), g);
}

// ---------------------------------------------------------------------------
// Edge-list text format
// ---------------------------------------------------------------------------

TEST(EdgeListTest, ParsesPlainEdges) {
  std::istringstream in("0 1\n1 2\n\n2 0\n");
  const auto parsed = parseEdgeList(in);
  EXPECT_EQ(parsed.numNodes, 3u);
  EXPECT_EQ(parsed.edges.size(), 3u);
  EXPECT_FALSE(parsed.sawWeights);
  EXPECT_EQ(parsed.edges[0], (Edge{0, 1, 0}));
}

TEST(EdgeListTest, ParsesWeightsAndComments) {
  std::istringstream in("# comment\n% also comment\n0 1 5\n2 0 7\n");
  const auto parsed = parseEdgeList(in);
  EXPECT_TRUE(parsed.sawWeights);
  EXPECT_EQ(parsed.edges[0].data, 5u);
  EXPECT_EQ(parsed.edges[1].data, 7u);
}

TEST(EdgeListTest, TabsAndPaddingAccepted) {
  std::istringstream in("  0\t1 \n\t3   4\t\n");
  const auto parsed = parseEdgeList(in);
  EXPECT_EQ(parsed.edges.size(), 2u);
  EXPECT_EQ(parsed.numNodes, 5u);
}

TEST(EdgeListTest, MalformedLinesThrow) {
  {
    std::istringstream in("0 x\n");
    EXPECT_THROW(parseEdgeList(in), std::runtime_error);
  }
  {
    std::istringstream in("0\n");  // missing destination
    EXPECT_THROW(parseEdgeList(in), std::runtime_error);
  }
  {
    std::istringstream in("0 1 2 3\n");  // too many fields
    EXPECT_THROW(parseEdgeList(in), std::runtime_error);
  }
  {
    std::istringstream in("1.5 2\n");  // non-integer id
    EXPECT_THROW(parseEdgeList(in), std::runtime_error);
  }
}

TEST(EdgeListTest, EmptyInputYieldsEmptyGraph) {
  std::istringstream in("# nothing here\n");
  const auto parsed = parseEdgeList(in);
  EXPECT_EQ(parsed.numNodes, 0u);
  EXPECT_TRUE(parsed.edges.empty());
}

TEST(EdgeListTest, WriteParseRoundTrip) {
  const auto g = withRandomWeights(generateErdosRenyi(60, 300, 2), 5, 3);
  std::ostringstream out;
  writeEdgeList(out, g);
  std::istringstream in(out.str());
  const auto parsed = parseEdgeList(in);
  const auto rebuilt = edgeListToCsr(parsed);
  EXPECT_EQ(rebuilt, g);
}

using EdgeListFileTest = TempDir;

TEST_F(EdgeListFileTest, FileRoundTripAndConverterChain) {
  // edge list -> CSR -> .cgr -> CSR -> edge list: the full converter chain.
  const auto g = generateWebCrawl({.numNodes = 120, .avgOutDegree = 4.0, .seed = 4});
  writeEdgeListFile(path("g.el"), g);
  const auto parsed = parseEdgeListFile(path("g.el"));
  auto csr = edgeListToCsr(parsed);
  // Edge lists drop trailing isolated nodes (ids not mentioned); pad back.
  EXPECT_LE(csr.numNodes(), g.numNodes());
  GraphFile::save(path("g.cgr"), csr);
  EXPECT_EQ(GraphFile::load(path("g.cgr")).toCsr(), csr);
  EXPECT_THROW(parseEdgeListFile(path("missing.el")), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Read-range computation
// ---------------------------------------------------------------------------

void expectCoverage(const std::vector<ReadRange>& ranges, uint64_t numNodes,
                    uint64_t numEdges) {
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().nodeBegin, 0u);
  EXPECT_EQ(ranges.back().nodeEnd, numNodes);
  EXPECT_EQ(ranges.back().edgeEnd, numEdges);
  for (size_t i = 0; i + 1 < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].nodeEnd, ranges[i + 1].nodeBegin);
    EXPECT_EQ(ranges[i].edgeEnd, ranges[i + 1].edgeBegin);
  }
}

class ReadRangeHosts : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ReadRangeHosts, EdgeBalancedCoversAndBalances) {
  const uint32_t hosts = GetParam();
  const auto g = generateWebCrawl({.numNodes = 4000, .avgOutDegree = 10.0, .seed = 21});
  const auto file = GraphFile::fromCsr(g);
  const auto ranges = computeReadRanges(file, hosts);
  expectCoverage(ranges, g.numNodes(), g.numEdges());
  // No range wildly above the average edge share (max-degree granularity
  // aside).
  const auto stats = computeStats(g);
  const uint64_t avg = g.numEdges() / hosts;
  for (const auto& r : ranges) {
    EXPECT_LE(r.numEdges(), avg + stats.maxOutDegree + 1);
  }
}

TEST_P(ReadRangeHosts, ContiguousEbCoversAndMatchesFormula) {
  const uint32_t hosts = GetParam();
  const auto g = generateWebCrawl({.numNodes = 3000, .avgOutDegree = 8.0, .seed = 23});
  const auto file = GraphFile::fromCsr(g);
  const auto ranges = contiguousEbRanges(file, hosts);
  expectCoverage(ranges, g.numNodes(), g.numEdges());
  // Paper formula: host(v) = floor(firstOutEdge(v) / ceil((E+1)/k)).
  const uint64_t blockSize = (g.numEdges() + 1 + hosts - 1) / hosts;
  for (uint64_t v = 0; v < g.numNodes(); ++v) {
    const uint32_t byFormula = static_cast<uint32_t>(
        std::min<uint64_t>(file.firstOutEdge(v) / blockSize, hosts - 1));
    EXPECT_EQ(readingHostOf(ranges, v), byFormula) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Hosts, ReadRangeHosts,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u));

TEST(ReadRangeTest, NodeWeightedSplitBalancesNodes) {
  const auto g = makeStar(999);  // extreme skew: node 0 has all edges
  const auto file = GraphFile::fromCsr(g);
  const auto ranges = computeReadRanges(file, 4, 1.0, 0.0);
  for (const auto& r : ranges) {
    EXPECT_EQ(r.numNodes(), 250u);
  }
}

TEST(ReadRangeTest, EdgeWeightedSplitPutsHubAlone) {
  const auto g = makeStar(999);
  const auto file = GraphFile::fromCsr(g);
  const auto ranges = computeReadRanges(file, 4, 0.0, 1.0);
  // All edges belong to node 0; it cannot be split, so host 0 gets it and
  // the rest get only leaves.
  EXPECT_GE(ranges[0].numEdges(), g.numEdges());
}

TEST(ReadRangeTest, InvalidArgumentsThrow) {
  const auto file = GraphFile::fromCsr(makePath(4));
  EXPECT_THROW(computeReadRanges(file, 0), std::invalid_argument);
  EXPECT_THROW(computeReadRanges(file, 2, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(computeReadRanges(file, 2, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(contiguousEbRanges(file, 0), std::invalid_argument);
}

TEST(ReadRangeTest, ReadingHostOfThrowsOutsideRanges) {
  const auto file = GraphFile::fromCsr(makePath(10));
  const auto ranges = contiguousEbRanges(file, 2);
  EXPECT_THROW(readingHostOf(ranges, 10), std::out_of_range);
}

TEST(ReadRangeTest, MoreHostsThanNodesLeavesEmptyRanges) {
  const auto file = GraphFile::fromCsr(makePath(3));
  const auto ranges = contiguousEbRanges(file, 8);
  expectCoverage(ranges, 3, 2);
  uint64_t covered = 0;
  for (const auto& r : ranges) {
    covered += r.numNodes();
  }
  EXPECT_EQ(covered, 3u);
}

}  // namespace
}  // namespace cusp::graph
