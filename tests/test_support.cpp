// Unit tests for the parallel runtime and serialization substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

#include "support/bitset.h"
#include "support/prefix_sum.h"
#include "support/random.h"
#include "support/serialize.h"
#include "support/threading.h"
#include "support/timer.h"
#include "support/varint.h"

namespace cusp::support {
namespace {

// ---------------------------------------------------------------------------
// parallelFor / parallelForBlocked / onEach / ThreadPool
// ---------------------------------------------------------------------------

class ParallelForThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelForThreads, VisitsEveryIndexExactlyOnce) {
  const unsigned threads = GetParam();
  const uint64_t n = 10'000;
  std::vector<std::atomic<int>> visits(n);
  parallelFor(0, n, [&](uint64_t i) { visits[i].fetch_add(1); }, threads);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelForThreads, SumMatchesSequential) {
  const unsigned threads = GetParam();
  std::atomic<uint64_t> sum{0};
  parallelFor(5, 1000, [&](uint64_t i) { sum.fetch_add(i); }, threads);
  uint64_t expected = 0;
  for (uint64_t i = 5; i < 1000; ++i) {
    expected += i;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST_P(ParallelForThreads, BlockedCoversRangeWithDisjointSlices) {
  const unsigned threads = GetParam();
  const uint64_t n = 777;
  std::vector<std::atomic<int>> visits(n);
  parallelForBlocked(
      0, n,
      [&](unsigned, uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          visits[i].fetch_add(1);
        }
      },
      threads);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForThreads,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallelFor(10, 10, [&](uint64_t) { called = true; }, 4);
  parallelFor(10, 5, [&](uint64_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(parallelFor(0, 100,
                           [](uint64_t i) {
                             if (i == 37) {
                               throw std::runtime_error("boom");
                             }
                           },
                           4),
               std::runtime_error);
}

TEST(ParallelForBlocked, RejectsInvertedRange) {
  EXPECT_THROW(
      parallelForBlocked(5, 2, [](unsigned, uint64_t, uint64_t) {}, 2),
      std::invalid_argument);
}

TEST(OnEach, RunsOncePerThreadWithDistinctIds) {
  std::mutex m;
  std::set<unsigned> ids;
  onEach(
      [&](unsigned tid, unsigned total) {
        EXPECT_EQ(total, 4u);
        std::lock_guard<std::mutex> lock(m);
        ids.insert(tid);
      },
      4);
  EXPECT_EQ(ids.size(), 4u);
}

TEST(ThreadPoolTest, RunOnAllExecutesOnWorkersAndCaller) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.numWorkers(), 3u);
  std::vector<std::atomic<int>> hits(4);
  pool.runOnAll([&](unsigned idx) { hits[idx].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    pool.runOnAll([&](unsigned) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50 * 3);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int value = 0;
  pool.runOnAll([&](unsigned idx) {
    EXPECT_EQ(idx, 0u);
    ++value;
  });
  EXPECT_EQ(value, 1);
}

TEST(DefaultThreadCount, AtLeastOne) { EXPECT_GE(defaultThreadCount(), 1u); }

// ---------------------------------------------------------------------------
// Prefix sums
// ---------------------------------------------------------------------------

TEST(PrefixSum, ExclusiveBasics) {
  std::vector<uint64_t> in = {3, 0, 5, 2};
  const auto out = exclusivePrefixSum(in);
  EXPECT_EQ(out, (std::vector<uint64_t>{0, 3, 3, 8, 10}));
}

TEST(PrefixSum, ExclusiveEmpty) {
  const auto out = exclusivePrefixSum(std::vector<uint64_t>{});
  EXPECT_EQ(out, (std::vector<uint64_t>{0}));
}

TEST(PrefixSum, InclusiveInPlace) {
  std::vector<int64_t> values = {1, -2, 3, 4};
  inclusivePrefixSumInPlace(values);
  EXPECT_EQ(values, (std::vector<int64_t>{1, -1, 2, 6}));
}

class ParallelPrefixSum : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelPrefixSum, MatchesSequentialOnLargeInput) {
  Rng rng(99);
  std::vector<uint64_t> in(20'000);
  for (auto& v : in) {
    v = rng.nextBounded(1000);
  }
  const auto expected = exclusivePrefixSum(in);
  const auto actual = parallelExclusivePrefixSum(in, GetParam());
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelPrefixSum,
                         ::testing::Values(1u, 2u, 3u, 8u));

TEST(ParallelPrefixSumSmall, FallsBackBelowThreshold) {
  std::vector<uint64_t> in = {1, 2, 3};
  EXPECT_EQ(parallelExclusivePrefixSum(in, 8),
            (std::vector<uint64_t>{0, 1, 3, 6}));
}

// ---------------------------------------------------------------------------
// DynamicBitset
// ---------------------------------------------------------------------------

TEST(Bitset, SetTestClearCount) {
  DynamicBitset bits(200);
  EXPECT_EQ(bits.size(), 200u);
  EXPECT_FALSE(bits.any());
  EXPECT_TRUE(bits.set(0));
  EXPECT_TRUE(bits.set(63));
  EXPECT_TRUE(bits.set(64));
  EXPECT_TRUE(bits.set(199));
  EXPECT_FALSE(bits.set(64)) << "second set returns false";
  EXPECT_EQ(bits.count(), 4u);
  EXPECT_TRUE(bits.test(63));
  EXPECT_FALSE(bits.test(62));
  bits.clear(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
}

TEST(Bitset, CollectSetBitsAscending) {
  DynamicBitset bits(130);
  for (uint64_t i : {5u, 64u, 65u, 129u, 0u}) {
    bits.set(i);
  }
  std::vector<uint64_t> out;
  bits.collectSetBits(out);
  EXPECT_EQ(out, (std::vector<uint64_t>{0, 5, 64, 65, 129}));
}

TEST(Bitset, ResetAllClearsEverything) {
  DynamicBitset bits(100);
  for (uint64_t i = 0; i < 100; i += 3) {
    bits.set(i);
  }
  bits.resetAll();
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_FALSE(bits.any());
}

TEST(Bitset, ConcurrentSetsAreAllVisible) {
  DynamicBitset bits(4096);
  parallelFor(0, 4096, [&](uint64_t i) { bits.set(i); }, 4);
  EXPECT_EQ(bits.count(), 4096u);
}

TEST(Bitset, CopyIsIndependent) {
  DynamicBitset a(64);
  a.set(10);
  DynamicBitset b = a;
  b.set(20);
  EXPECT_TRUE(a.test(10));
  EXPECT_FALSE(a.test(20));
  EXPECT_TRUE(b.test(10));
  EXPECT_TRUE(b.test(20));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Serialize, ScalarRoundTrip) {
  SendBuffer out;
  serializeAll(out, uint64_t{42}, int32_t{-7}, 3.5, 'x');
  RecvBuffer in(out.release());
  uint64_t a = 0;
  int32_t b = 0;
  double c = 0;
  char d = 0;
  deserializeAll(in, a, b, c, d);
  EXPECT_EQ(a, 42u);
  EXPECT_EQ(b, -7);
  EXPECT_EQ(c, 3.5);
  EXPECT_EQ(d, 'x');
  EXPECT_TRUE(in.exhausted());
}

TEST(Serialize, VectorRoundTrip) {
  SendBuffer out;
  std::vector<uint64_t> values = {1, 2, 3, 1ull << 40};
  serialize(out, values);
  RecvBuffer in(out.release());
  std::vector<uint64_t> got;
  deserialize(in, got);
  EXPECT_EQ(got, values);
}

TEST(Serialize, EmptyVectorRoundTrip) {
  SendBuffer out;
  serialize(out, std::vector<uint32_t>{});
  EXPECT_EQ(out.size(), sizeof(uint64_t));
  RecvBuffer in(out.release());
  std::vector<uint32_t> got = {9};
  deserialize(in, got);
  EXPECT_TRUE(got.empty());
}

TEST(Serialize, StringAndPairRoundTrip) {
  SendBuffer out;
  serializeAll(out, std::string("hello cusp"),
               std::make_pair(uint32_t{5}, std::string("p")));
  RecvBuffer in(out.release());
  std::string s;
  std::pair<uint32_t, std::string> p;
  deserializeAll(in, s, p);
  EXPECT_EQ(s, "hello cusp");
  EXPECT_EQ(p.first, 5u);
  EXPECT_EQ(p.second, "p");
}

TEST(Serialize, NestedVectorOfStrings) {
  SendBuffer out;
  std::vector<std::string> values = {"a", "", "long string here"};
  serialize(out, values);
  RecvBuffer in(out.release());
  std::vector<std::string> got;
  deserialize(in, got);
  EXPECT_EQ(got, values);
}

TEST(Serialize, ReadPastEndThrows) {
  SendBuffer out;
  serialize(out, uint32_t{1});
  RecvBuffer in(out.release());
  uint64_t tooBig = 0;
  EXPECT_THROW(deserialize(in, tooBig), std::out_of_range);
}

TEST(Serialize, CorruptVectorLengthThrows) {
  SendBuffer out;
  serialize(out, uint64_t{1'000'000});  // pretend length with no payload
  RecvBuffer in(out.release());
  std::vector<uint64_t> got;
  EXPECT_THROW(deserialize(in, got), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Varint / delta coding
// ---------------------------------------------------------------------------

TEST(Varint, RoundTripsBoundaryValues) {
  std::vector<uint8_t> buf;
  const std::vector<uint64_t> values = {0,    1,    127,        128,
                                        255,  1u << 14, (1u << 21) - 1,
                                        1ull << 40, UINT64_MAX};
  for (uint64_t v : values) {
    appendVarint(buf, v);
  }
  size_t offset = 0;
  for (uint64_t v : values) {
    EXPECT_EQ(readVarint(buf, offset), v);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(Varint, SmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  appendVarint(buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  appendVarint(buf, 128);
  EXPECT_EQ(buf.size(), 3u);  // 127 took 1 byte, 128 takes 2
}

TEST(Varint, TruncatedInputThrows) {
  std::vector<uint8_t> buf;
  appendVarint(buf, 1ull << 40);
  buf.pop_back();
  size_t offset = 0;
  EXPECT_THROW(readVarint(buf, offset), std::out_of_range);
}

TEST(Varint, OverlongEncodingThrows) {
  std::vector<uint8_t> buf(11, 0x80);  // 11 continuation bytes > 64 bits
  size_t offset = 0;
  EXPECT_THROW(readVarint(buf, offset), std::overflow_error);
}

TEST(SortedIdCoding, RoundTripAndCompressionRatio) {
  Rng rng(321);
  std::vector<uint64_t> ids;
  uint64_t cursor = 0;
  for (int i = 0; i < 10'000; ++i) {
    cursor += rng.nextBounded(50);
    ids.push_back(cursor);
  }
  const auto block = encodeSortedIds(ids);
  size_t offset = 0;
  EXPECT_EQ(decodeSortedIds(block, offset), ids);
  EXPECT_EQ(offset, block.size());
  // Deltas under 50 fit in one byte: ~8x smaller than raw u64s.
  EXPECT_LT(block.size(), ids.size() * 2);
}

TEST(SortedIdCoding, EmptyAndUnsortedInputs) {
  const auto block = encodeSortedIds({});
  size_t offset = 0;
  EXPECT_TRUE(decodeSortedIds(block, offset).empty());
  EXPECT_THROW(encodeSortedIds({5, 3}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next() == b.next();
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(77);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.nextBounded(17), 17u);
  }
  EXPECT_EQ(rng.nextBounded(0), 0u);
  EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(88);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(5);
  std::vector<int> buckets(10, 0);
  const int draws = 100'000;
  for (int i = 0; i < draws; ++i) {
    ++buckets[rng.nextBounded(10)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, draws / 10, draws / 100);
  }
}

TEST(HashU64, InjectiveOnSmallRange) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10'000; ++i) {
    seen.insert(hashU64(i));
  }
  EXPECT_EQ(seen.size(), 10'000u);
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

TEST(PhaseTimesTest, AccumulatesAndTotals) {
  PhaseTimes times;
  times.add("a", 1.0);
  times.add("b", 2.0);
  times.add("a", 0.5);
  EXPECT_DOUBLE_EQ(times.get("a"), 1.5);
  EXPECT_DOUBLE_EQ(times.get("b"), 2.0);
  EXPECT_DOUBLE_EQ(times.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(times.total(), 3.5);
  EXPECT_EQ(times.entries().front().first, "a");
}

TEST(PhaseTimesTest, MaxWithTakesElementwiseMax) {
  PhaseTimes a;
  a.add("x", 1.0);
  a.add("y", 5.0);
  PhaseTimes b;
  b.add("x", 3.0);
  b.add("z", 2.0);
  a.maxWith(b);
  EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.get("y"), 5.0);
  EXPECT_DOUBLE_EQ(a.get("z"), 2.0);
}

TEST(PhaseTimerTest, AddsElapsedOnDestruction) {
  PhaseTimes times;
  {
    PhaseTimer timer(times, "phase");
  }
  EXPECT_GE(times.get("phase"), 0.0);
  EXPECT_EQ(times.entries().size(), 1u);
}

TEST(TimerTest, MonotoneNonNegative) {
  Timer t;
  EXPECT_GE(t.elapsedSeconds(), 0.0);
  const double first = t.elapsedSeconds();
  EXPECT_GE(t.elapsedSeconds(), first);
  t.reset();
  EXPECT_GE(t.elapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace cusp::support
