// Writing a custom partitioning policy with the CuSP framework.
//
//   $ ./custom_policy
//
// The paper's central claim is programmability: "the user can thus
// implement any streaming edge-cut or vertex-cut policy using only a few
// lines of code" (Section III-B). This example builds two policies that do
// not ship with the factory:
//
//  1. "LeastLoaded" — a history-sensitive master rule that assigns each
//     vertex to the partition currently holding the fewest out-edges
//     (a greedy balancer using partitioning state), paired with the Source
//     edge rule: a custom streaming edge-cut.
//
//  2. "DegreeRange" — a stateless master rule that groups vertices by
//     out-degree class (hubs together, leaves together), paired with the
//     Dest edge rule: a custom vertex-cut in ~10 lines.
//
// Both are validated structurally and by running distributed BFS against
// the single-image reference.
#include <cstdio>

#include "analytics/algorithms.h"
#include "analytics/reference.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"

using namespace cusp;

// A history-sensitive getMaster: pick the partition with the fewest
// assigned out-edges so far. State ("edges" counter) is synchronized across
// hosts by CuSP; no communication code needed here.
core::PartitionPolicy makeLeastLoadedPolicy() {
  core::MasterRule master;
  master.name = "LeastLoaded";
  master.usesState = true;
  master.stateCounters = {"edges"};
  master.fn = [](const core::GraphProperties& prop, uint64_t nodeId,
                 core::PartitionState& mstate, const core::MasterLookup&) {
    const auto edges = mstate.counterId("edges");
    uint32_t best = 0;
    for (uint32_t p = 1; p < prop.getNumPartitions(); ++p) {
      if (mstate.read(edges, p) < mstate.read(edges, best)) {
        best = p;
      }
    }
    mstate.add(edges, best,
               static_cast<int64_t>(prop.getNodeOutDegree(nodeId)));
    return best;
  };
  core::PartitionPolicy policy;
  policy.name = "LeastLoaded";
  policy.master = master;
  policy.edge = core::edgeSource();
  return policy;
}

// A pure getMaster: spread degree classes round-robin so every partition
// gets a fair share of hubs. Pure rules need no master synchronization at
// all — CuSP replicates the computation (paper Section IV-D5).
core::PartitionPolicy makeDegreeRangePolicy() {
  core::MasterRule master;
  master.name = "DegreeRange";
  master.fn = [](const core::GraphProperties& prop, uint64_t nodeId,
                 core::PartitionState&, const core::MasterLookup&) {
    const uint64_t degree = prop.getNodeOutDegree(nodeId);
    uint64_t cls = 0;
    for (uint64_t d = degree; d > 1; d /= 2) {
      ++cls;  // log2 degree class
    }
    return static_cast<uint32_t>((cls * 2654435761u + nodeId) %
                                 prop.getNumPartitions());
  };
  core::PartitionPolicy policy;
  policy.name = "DegreeRange";
  policy.master = master;
  policy.edge = core::edgeDest();
  return policy;
}

int main(int argc, char** argv) {
  // custom_policy takes no arguments; refuse anything it does not
  // understand instead of silently ignoring it.
  if (argc > 1) {
    std::fprintf(stderr, "custom_policy: error: unknown flag '%s'\n", argv[1]);
    std::fprintf(stderr, "usage: custom_policy\n");
    return 2;
  }
  graph::WebCrawlParams genParams;
  genParams.numNodes = 10'000;
  genParams.avgOutDegree = 10.0;
  genParams.seed = 9;
  const graph::CsrGraph input = graph::generateWebCrawl(genParams);
  const graph::GraphFile file = graph::GraphFile::fromCsr(input);
  const uint64_t source = analytics::maxOutDegreeNode(input);
  const auto expected = analytics::bfsReference(input, source);

  core::PartitionerConfig config;
  config.numHosts = 4;

  for (const auto& policy : {makeLeastLoadedPolicy(), makeDegreeRangePolicy(),
                             core::makePolicy("EEC")}) {
    const auto result = core::partitionGraph(file, policy, config);
    core::validatePartitions(input, result.partitions);  // throws if broken
    const auto quality = core::computeQuality(result.partitions);
    const auto distances = analytics::runBfs(result.partitions, source);
    std::printf(
        "%-12s partition %.3f s | replication %.3f | edge imbalance %.3f | "
        "bfs %s\n",
        policy.name.c_str(), result.totalSeconds,
        quality.avgReplicationFactor, quality.edgeImbalance,
        distances == expected ? "ok" : "WRONG");
    if (distances != expected) {
      return 1;
    }
  }
  std::printf("\nboth custom policies produce valid partitions and correct "
              "analytics.\n");
  return 0;
}
