// End-to-end analytics pipeline: policy comparison on one workload.
//
//   $ ./analytics_pipeline [edges]
//
// The scenario from the paper's introduction: you have a web-crawl graph
// and a set of applications, and the right partitioning policy depends on
// both. This pipeline partitions the same graph under every Table II
// policy plus the XtraPulp baseline, runs bfs / cc / pagerank / sssp on
// each partition set, and prints a comparison of partitioning time,
// replication factor, application time and sync traffic.
//
// With --metrics-out=run.json the whole pipeline's counters land in
// run.json and a chrome://tracing timeline in run.trace.json.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analytics/algorithms.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "xtrapulp/xtrapulp.h"

using namespace cusp;

int main(int argc, char** argv) {
  obs::MetricsCli metricsCli(argc, argv);
  uint64_t targetEdges = 150'000;
  bool haveEdges = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 || haveEdges) {
      std::fprintf(stderr, "analytics_pipeline: error: unknown %s '%s'\n",
                   arg.rfind("--", 0) == 0 ? "flag" : "argument", arg.c_str());
      std::fprintf(stderr,
                   "usage: analytics_pipeline [edges] [--metrics-out FILE]\n");
      return 2;
    }
    targetEdges = std::strtoull(arg.c_str(), nullptr, 10);
    haveEdges = true;
  }
  const uint32_t hosts = 4;

  const graph::CsrGraph input = graph::makeStandIn("clueweb", targetEdges);
  const graph::CsrGraph weighted = graph::withRandomWeights(input, 64, 5);
  const graph::CsrGraph symmetric = input.symmetrized();
  std::printf("workload: clueweb stand-in, %llu nodes, %llu edges, %u hosts\n\n",
              (unsigned long long)input.numNodes(),
              (unsigned long long)input.numEdges(), hosts);

  const graph::GraphFile file = graph::GraphFile::fromCsr(weighted);
  const graph::GraphFile symFile = graph::GraphFile::fromCsr(symmetric);
  const uint64_t source = analytics::maxOutDegreeNode(input);

  struct Row {
    std::string policy;
    double partitionSeconds;
    double replication;
    double bfs, cc, pr, sssp;
    double syncMb;
  };
  std::vector<Row> rows;

  auto evaluate = [&](const std::string& name,
                      const core::PartitionPolicy& policy,
                      double extraSeconds) {
    core::PartitionerConfig config;
    config.numHosts = hosts;
    const auto result = core::partitionGraph(file, policy, config);
    const auto symResult = core::partitionGraph(symFile, policy, config);
    Row row;
    row.policy = name;
    row.partitionSeconds = result.totalSeconds + extraSeconds;
    row.replication = core::computeQuality(result.partitions)
                          .avgReplicationFactor;
    analytics::RunStats stats;
    uint64_t bytes = 0;
    analytics::runBfs(result.partitions, source, &stats);
    row.bfs = stats.seconds;
    bytes += stats.syncBytes;
    analytics::runCc(symResult.partitions, &stats);
    row.cc = stats.seconds;
    bytes += stats.syncBytes;
    analytics::PageRankParams pr;
    pr.maxIterations = 30;
    pr.tolerance = 1e-4;
    analytics::runPageRank(result.partitions, pr, &stats);
    row.pr = stats.seconds;
    bytes += stats.syncBytes;
    analytics::runSssp(result.partitions, source, &stats);
    row.sssp = stats.seconds;
    bytes += stats.syncBytes;
    row.syncMb = bytes / (1024.0 * 1024.0);
    rows.push_back(row);
  };

  // Table II policies plus the Table I literature policies (LDG, DBH,
  // HDRF, GREEDY) — all runnable through the same pipeline.
  for (const auto& name : core::extendedPolicyCatalog()) {
    evaluate(name, core::makePolicy(name), 0.0);
  }
  {
    // Offline baseline: partition the full graph first, then materialize.
    xtrapulp::XtraPulpConfig xc;
    xc.numParts = hosts;
    const auto xp = xtrapulp::partition(weighted, xc);
    auto map = std::make_shared<std::vector<uint32_t>>(xp.partOf);
    evaluate("XtraPulp", xtrapulp::makeXtraPulpPolicy(map), xp.seconds);
  }

  std::printf("%-10s %11s %11s %9s %9s %9s %9s %9s\n", "policy",
              "part (s)", "replication", "bfs (s)", "cc (s)", "pr (s)",
              "sssp (s)", "sync MB");
  for (const auto& r : rows) {
    std::printf("%-10s %11.3f %11.3f %9.3f %9.3f %9.3f %9.3f %9.2f\n",
                r.policy.c_str(), r.partitionSeconds, r.replication, r.bfs,
                r.cc, r.pr, r.sssp, r.syncMb);
  }
  return 0;
}
