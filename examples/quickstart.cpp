// Quickstart: partition a graph with CuSP and run BFS on the partitions.
//
//   $ ./quickstart
//
// Generates a small web-crawl-like graph, partitions it for 4 simulated
// hosts with Cartesian Vertex-Cut (CVC), prints the partitioning phase
// breakdown and partition quality, then runs distributed BFS and checks it
// against the single-image reference.
#include <cstdio>

#include "analytics/algorithms.h"
#include "analytics/reference.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"

int main(int argc, char** argv) {
  // quickstart takes no arguments; refuse anything it does not understand
  // instead of silently ignoring it.
  if (argc > 1) {
    std::fprintf(stderr, "quickstart: error: unknown flag '%s'\n", argv[1]);
    std::fprintf(stderr, "usage: quickstart\n");
    return 2;
  }
  using namespace cusp;

  // 1. An input graph. Real deployments load a .cgr file from disk with
  //    graph::GraphFile::load(path); here we generate one.
  graph::WebCrawlParams genParams;
  genParams.numNodes = 20'000;
  genParams.avgOutDegree = 12.0;
  genParams.seed = 1;
  const graph::CsrGraph input = graph::generateWebCrawl(genParams);
  const graph::GraphFile file = graph::GraphFile::fromCsr(input);
  std::printf("input: %llu nodes, %llu edges\n",
              (unsigned long long)input.numNodes(),
              (unsigned long long)input.numEdges());

  // 2. Pick a policy (paper Table II) and partition for 4 hosts.
  core::PartitionerConfig config;
  config.numHosts = 4;
  const core::PartitionPolicy policy = core::makePolicy("CVC");
  const core::PartitionResult result =
      core::partitionGraph(file, policy, config);

  std::printf("\npartitioned with %s in %.3f s\n", policy.name.c_str(),
              result.totalSeconds);
  for (const auto& [phase, seconds] : result.phaseTimes.entries()) {
    std::printf("  %-20s %8.3f s\n", phase.c_str(), seconds);
  }

  const core::PartitionQuality quality =
      core::computeQuality(result.partitions);
  std::printf("\nquality: replication factor %.3f, edge imbalance %.3f\n",
              quality.avgReplicationFactor, quality.edgeImbalance);
  for (const auto& part : result.partitions) {
    std::printf("  host %u: %llu masters, %llu mirrors, %llu edges\n",
                part.hostId, (unsigned long long)part.numMasters,
                (unsigned long long)part.numMirrors(),
                (unsigned long long)part.numLocalEdges());
  }
  std::printf("cross-host traffic: %.2f MB in %llu messages\n",
              result.volume.totalBytes() / (1024.0 * 1024.0),
              (unsigned long long)result.volume.totalMessages());

  // 3. Run a distributed application on the partitions.
  const uint64_t source = analytics::maxOutDegreeNode(input);
  analytics::RunStats stats;
  const auto distances = analytics::runBfs(result.partitions, source, &stats);
  const auto expected = analytics::bfsReference(input, source);
  uint64_t reached = 0;
  for (uint64_t d : distances) {
    reached += d != analytics::kInfinity;
  }
  std::printf("\nbfs from node %llu: %llu reachable nodes, %u rounds, "
              "%.3f s, %.2f KB synced — %s\n",
              (unsigned long long)source, (unsigned long long)reached,
              stats.rounds, stats.seconds, stats.syncBytes / 1024.0,
              distances == expected ? "matches reference" : "MISMATCH");
  return distances == expected ? 0 : 1;
}
