// cuspd — the CuSP partition service daemon, runnable end to end.
//
// Registers a handful of stand-in graphs, starts a service::Daemon over a
// shared Engine, drives a seeded mix of partition + analytics jobs through
// it, and prints the service-side story: accepted/shed/failed counts,
// latency percentiles, partition-cache reuse. Chaos flags layer the full
// fault surface on top — burst arrivals, client disconnects, malformed
// requests, per-job comm/memory fault plans, and (with
// --kill-after-events) a mid-run daemon kill followed by a crash-consistent
// restart on the same journal.
//
//   cuspd [--jobs N] [--seed S] [--hosts H] [--workers W]
//         [--queue-depth Q] [--journal-dir DIR] [--deadline SEC]
//         [--chaos] [--kill-after-events K]
//         [--metrics-out FILE] [--memory-budget BYTES]
//
// Unknown flags are rejected with a structured error and usage text
// (exit 2) — the daemon refuses requests it does not understand instead of
// guessing.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "service/daemon.h"
#include "support/memory.h"

using namespace cusp;

namespace {

int usage(std::FILE* out) {
  std::fprintf(out,
               "usage: cuspd [--jobs N] [--seed S] [--hosts H] [--workers W]\n"
               "             [--queue-depth Q] [--journal-dir DIR]\n"
               "             [--deadline SEC] [--chaos]\n"
               "             [--kill-after-events K]\n"
               "             [--metrics-out FILE] [--memory-budget BYTES]\n");
  return out == stderr ? 2 : 0;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// Seeded mix of jobs over the registered graphs: partition runs across the
// policy catalog plus analytics on the same keys (so the partition cache
// sees reuse).
std::vector<service::JobSpec> makeJobMix(uint64_t seed, size_t numJobs,
                                         const std::vector<std::string>& graphs,
                                         uint32_t hosts, double deadline,
                                         bool chaos) {
  const auto policies = core::policyCatalog();
  std::mt19937_64 rng(seed);
  std::vector<service::JobSpec> specs;
  specs.reserve(numJobs);
  for (size_t i = 0; i < numJobs; ++i) {
    service::JobSpec spec;
    const uint32_t kind = static_cast<uint32_t>(rng() % 5);
    spec.type = static_cast<service::JobType>(kind);
    spec.graphId = graphs[rng() % graphs.size()];
    spec.policy = policies[rng() % policies.size()];
    spec.numHosts = hosts;
    spec.sourceGid = rng() % 64;  // stand-ins all have > 64 nodes
    spec.deadlineSeconds = deadline;
    if (chaos && rng() % 2 == 0) {
      // Transient-only comm faults: the job recovers inside its resilience
      // ladder and still produces the clean partitions.
      spec.faultPlan = std::make_shared<const comm::FaultPlan>(
          comm::randomFaultPlan(seed + i, hosts, 3, 1,
                                /*allowPermanent=*/false));
      spec.maxRecoveryAttempts = 4;
    }
    if (chaos && support::memoryBudgetAttached() && rng() % 4 == 0) {
      spec.memoryFaultPlan = std::make_shared<const support::MemoryFaultPlan>(
          support::randomMemoryFaultPlan(seed + 31 * i, hosts, 2));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

struct MixOutcome {
  uint64_t succeeded = 0, shed = 0, rejected = 0, failed = 0, cancelled = 0;
  std::vector<double> latencies;
  std::set<uint64_t> counted;  // job ids already tallied (kill/restart dedup)
};

MixOutcome driveMix(service::Daemon& daemon,
                    const std::vector<service::JobSpec>& specs) {
  MixOutcome out;
  std::vector<uint64_t> accepted;
  for (const auto& spec : specs) {
    const auto submitted = daemon.submit(spec);
    if (submitted.accepted) {
      accepted.push_back(submitted.jobId);
      continue;
    }
    const char* kind = service::jobErrorKindName(submitted.error.kind);
    std::printf("  refused [%s] %s\n", kind, submitted.error.message.c_str());
    switch (submitted.error.kind) {
      case service::JobErrorKind::kShedMemory:
      case service::JobErrorKind::kShedQueueFull:
      case service::JobErrorKind::kShedDraining:
        ++out.shed;
        break;
      default:
        ++out.rejected;
        break;
    }
  }
  for (uint64_t id : accepted) {
    const service::JobResult result = daemon.wait(id);
    switch (result.state) {
      case service::JobState::kSucceeded:
        ++out.succeeded;
        out.latencies.push_back(result.latencySeconds);
        out.counted.insert(id);
        break;
      case service::JobState::kFailed:
        ++out.failed;
        out.counted.insert(id);
        std::printf("  job %llu failed [%s] %s\n",
                    (unsigned long long)result.jobId,
                    service::jobErrorKindName(result.error.kind),
                    result.error.message.c_str());
        break;
      case service::JobState::kCancelled:
        ++out.cancelled;
        out.counted.insert(id);
        break;
      default:
        break;  // daemon killed mid-run: job abandoned for the restart
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  obs::MetricsCli metricsCli(argc, argv);       // consumes --metrics-out
  support::MemoryBudgetCli budgetCli(argc, argv);  // consumes --memory-budget

  size_t jobs = 24;
  uint64_t seed = 42;
  uint32_t hosts = 4;
  uint32_t workers = 3;
  size_t queueDepth = 32;
  std::string journalDir;
  double deadline = 0.0;
  bool chaos = false;
  uint64_t killAfterEvents = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cuspd: error: flag '%s' needs a value\n",
                     arg.c_str());
        std::exit(usage(stderr));
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return usage(stdout);
    } else if (arg == "--jobs") {
      jobs = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--hosts") {
      hosts = static_cast<uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--workers") {
      workers = static_cast<uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--queue-depth") {
      queueDepth = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--journal-dir") {
      journalDir = value();
    } else if (arg == "--deadline") {
      deadline = std::strtod(value(), nullptr);
    } else if (arg == "--chaos") {
      chaos = true;
    } else if (arg == "--kill-after-events") {
      killAfterEvents = std::strtoull(value(), nullptr, 10);
    } else {
      std::fprintf(stderr, "cuspd: error: unknown flag '%s'\n", arg.c_str());
      return usage(stderr);
    }
  }
  if (killAfterEvents > 0 && journalDir.empty()) {
    std::fprintf(stderr,
                 "cuspd: error: --kill-after-events needs --journal-dir "
                 "(crash recovery requires a journal)\n");
    return usage(stderr);
  }

  // Shared engine: a few weighted stand-ins (weights make sssp runnable).
  service::EngineOptions engineOptions;
  engineOptions.hostPoolSize = std::max(16u, hosts * workers);
  engineOptions.workDir = journalDir.empty() ? "" : journalDir + "/scratch";
  auto engine = std::make_shared<service::Engine>(engineOptions);
  for (const char* name : {"kron", "uk", "gsh"}) {
    const graph::CsrGraph g = graph::withRandomWeights(
        graph::makeStandIn(name, 20'000), 64, 7);
    engine->registerGraph(name, graph::GraphFile::fromCsr(g));
  }

  service::DaemonOptions daemonOptions;
  daemonOptions.workers = workers;
  daemonOptions.maxQueueDepth = queueDepth;
  daemonOptions.journalDir = journalDir;
  if (chaos) {
    daemonOptions.faultPlan = service::randomServiceFaultPlan(
        seed, static_cast<uint32_t>(jobs));
  }
  if (killAfterEvents > 0) {
    daemonOptions.faultPlan.killPoints.push_back(
        service::DaemonKillPoint{killAfterEvents});
  }

  const auto specs =
      makeJobMix(seed, jobs, engine->graphIds(), hosts, deadline, chaos);

  std::printf("cuspd: %zu jobs, seed %llu, %u workers, queue %zu%s%s\n",
              jobs, (unsigned long long)seed, workers, queueDepth,
              chaos ? ", chaos" : "",
              journalDir.empty() ? "" : (", journal " + journalDir).c_str());

  MixOutcome mix;
  bool wasKilled = false;
  {
    service::Daemon daemon(engine, daemonOptions);
    mix = driveMix(daemon, specs);
    wasKilled = daemon.killed();
    if (wasKilled) {
      std::printf("cuspd: daemon killed mid-run (after %llu journal events)\n",
                  (unsigned long long)killAfterEvents);
    }
  }

  if (wasKilled) {
    // Crash-consistent restart: the new daemon replays the journal, reports
    // terminal jobs as-is, and requeues + finishes everything else.
    service::DaemonOptions restartOptions = daemonOptions;
    restartOptions.faultPlan = {};  // the restarted daemon runs clean
    service::Daemon restarted(engine, restartOptions);
    const auto recovered = restarted.recoveredJobIds();
    std::printf("cuspd: restarted on journal, %zu jobs recovered "
                "(%llu requeued, %llu already terminal)\n",
                recovered.size(),
                (unsigned long long)restarted.stats().recoveredRequeued,
                (unsigned long long)restarted.stats().recoveredTerminal);
    for (uint64_t id : recovered) {
      if (mix.counted.count(id)) {
        continue;  // already tallied before the crash
      }
      const service::JobResult result = restarted.wait(id);
      switch (result.state) {
        case service::JobState::kSucceeded:
          ++mix.succeeded;
          mix.latencies.push_back(result.latencySeconds);
          break;
        case service::JobState::kFailed:
          ++mix.failed;
          break;
        case service::JobState::kCancelled:
          ++mix.cancelled;
          break;
        default:
          break;
      }
    }
    restarted.drain();
  }

  std::sort(mix.latencies.begin(), mix.latencies.end());
  std::printf("\nsucceeded %llu, shed %llu, rejected %llu, failed %llu, "
              "cancelled %llu\n",
              (unsigned long long)mix.succeeded, (unsigned long long)mix.shed,
              (unsigned long long)mix.rejected, (unsigned long long)mix.failed,
              (unsigned long long)mix.cancelled);
  std::printf("latency p50 %.3fs  p95 %.3fs  max %.3fs\n",
              percentile(mix.latencies, 0.50), percentile(mix.latencies, 0.95),
              mix.latencies.empty() ? 0.0 : mix.latencies.back());
  std::printf("partition cache: %llu hits, %llu misses\n",
              (unsigned long long)engine->cacheHits(),
              (unsigned long long)engine->cacheMisses());
  return 0;
}
