// cusp-generate: synthetic graph generation to .cgr files.
//
//   generate_graph standin <kron|gsh|clueweb|uk|wdc> <edges> <out.cgr>
//   generate_graph rmat    <scale> <edges> <out.cgr>
//   generate_graph web     <nodes> <avgdeg> <out.cgr>
//   generate_graph er      <nodes> <edges> <out.cgr>
//   common options: --seed <n>  --weights <max>  --symmetric
//
// Together with convert_graph and partition_tool this completes the
// offline tool chain: generate → (convert) → partition → analyze.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "graph/graph_file.h"

using namespace cusp;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: generate_graph standin <name> <edges> <out.cgr> [options]\n"
      "       generate_graph rmat <scale> <edges> <out.cgr> [options]\n"
      "       generate_graph web <nodes> <avgdeg> <out.cgr> [options]\n"
      "       generate_graph er <nodes> <edges> <out.cgr> [options]\n"
      "options: --seed <n> --weights <maxW> --symmetric\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) {
    return usage();
  }
  const std::string mode = argv[1];
  const std::string arg1 = argv[2];
  const std::string arg2 = argv[3];
  const std::string outPath = argv[4];
  uint64_t seed = 42;
  uint32_t maxWeight = 0;
  bool symmetric = false;
  for (int i = 5; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage();
      seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--weights") {
      const char* v = next();
      if (!v) return usage();
      maxWeight = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--symmetric") {
      symmetric = true;
    } else {
      std::fprintf(stderr, "generate_graph: error: unknown flag '%s'\n",
                   arg.c_str());
      return usage();
    }
  }

  try {
    graph::CsrGraph g;
    if (mode == "standin") {
      g = graph::makeStandIn(arg1, std::strtoull(arg2.c_str(), nullptr, 10),
                             seed);
    } else if (mode == "rmat") {
      graph::RmatParams params;
      params.scale = static_cast<uint32_t>(std::atoi(arg1.c_str()));
      params.numEdges = std::strtoull(arg2.c_str(), nullptr, 10);
      params.seed = seed;
      g = graph::generateRmat(params);
    } else if (mode == "web") {
      graph::WebCrawlParams params;
      params.numNodes = std::strtoull(arg1.c_str(), nullptr, 10);
      params.avgOutDegree = std::atof(arg2.c_str());
      params.seed = seed;
      g = graph::generateWebCrawl(params);
    } else if (mode == "er") {
      g = graph::generateErdosRenyi(std::strtoull(arg1.c_str(), nullptr, 10),
                                    std::strtoull(arg2.c_str(), nullptr, 10),
                                    seed);
    } else {
      return usage();
    }
    if (symmetric) {
      g = g.symmetrized();
    }
    if (maxWeight > 0) {
      g = graph::withRandomWeights(g, maxWeight, seed + 1);
    }
    graph::GraphFile::save(outPath, g);
    const auto stats = graph::computeStats(g);
    std::printf("wrote %s: %llu nodes, %llu edges (|E|/|V| %.1f, "
                "max out %llu, max in %llu)%s%s\n",
                outPath.c_str(), (unsigned long long)stats.numNodes,
                (unsigned long long)stats.numEdges, stats.avgOutDegree,
                (unsigned long long)stats.maxOutDegree,
                (unsigned long long)stats.maxInDegree,
                symmetric ? ", symmetric" : "",
                maxWeight > 0 ? ", weighted" : "");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
