// cusp-convert: graph format converter (paper Section III-A: "CuSP provides
// converters between these and other graph formats like edge-lists").
//
//   convert_graph el2cgr  <in.el>  <out.cgr>     edge list -> binary CSR
//   convert_graph cgr2el  <in.cgr> <out.el>      binary CSR -> edge list
//   convert_graph transpose <in.cgr> <out.cgr>   CSR -> CSC (transpose)
//   convert_graph symmetrize <in.cgr> <out.cgr>  add reverse edges
//   convert_graph gr2cgr  <in.gr>  <out.cgr>     Galois .gr v1 -> binary CSR
//   convert_graph cgr2gr  <in.cgr> <out.gr>      binary CSR -> Galois .gr v1
//   convert_graph stats   <in.cgr>               print Table III-style stats
#include <cstdio>
#include <cstring>
#include <string>

#include "graph/edge_list.h"
#include "graph/graph_file.h"

using namespace cusp;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: convert_graph el2cgr <in.el> <out.cgr>\n"
               "       convert_graph cgr2el <in.cgr> <out.el>\n"
               "       convert_graph transpose <in.cgr> <out.cgr>\n"
               "       convert_graph symmetrize <in.cgr> <out.cgr>\n"
               "       convert_graph gr2cgr <in.gr> <out.cgr>\n"
               "       convert_graph cgr2gr <in.cgr> <out.gr>\n"
               "       convert_graph stats <in.cgr>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "convert_graph: error: unknown flag '%s'\n",
                   argv[i]);
      return usage();
    }
  }
  if (argc < 3) {
    return usage();
  }
  const std::string mode = argv[1];
  try {
    if (mode == "el2cgr" && argc == 4) {
      const auto parsed = graph::parseEdgeListFile(argv[2]);
      const auto csr = graph::edgeListToCsr(parsed);
      graph::GraphFile::save(argv[3], csr);
      std::printf("wrote %s: %llu nodes, %llu edges%s\n", argv[3],
                  (unsigned long long)csr.numNodes(),
                  (unsigned long long)csr.numEdges(),
                  csr.hasEdgeData() ? " (weighted)" : "");
    } else if (mode == "cgr2el" && argc == 4) {
      const auto csr = graph::GraphFile::load(argv[2]).toCsr();
      graph::writeEdgeListFile(argv[3], csr);
      std::printf("wrote %s\n", argv[3]);
    } else if (mode == "transpose" && argc == 4) {
      const auto csr = graph::GraphFile::load(argv[2]).toCsr();
      graph::GraphFile::save(argv[3], csr.transpose());
      std::printf("wrote transpose to %s\n", argv[3]);
    } else if (mode == "symmetrize" && argc == 4) {
      const auto csr = graph::GraphFile::load(argv[2]).toCsr();
      graph::GraphFile::save(argv[3], csr.symmetrized());
      std::printf("wrote symmetrized graph to %s\n", argv[3]);
    } else if (mode == "gr2cgr" && argc == 4) {
      const auto csr = graph::GraphFile::loadGalois(argv[2]).toCsr();
      graph::GraphFile::save(argv[3], csr);
      std::printf("converted Galois .gr to %s (%llu nodes, %llu edges)\n",
                  argv[3], (unsigned long long)csr.numNodes(),
                  (unsigned long long)csr.numEdges());
    } else if (mode == "cgr2gr" && argc == 4) {
      const auto csr = graph::GraphFile::load(argv[2]).toCsr();
      graph::GraphFile::saveGalois(argv[3], csr);
      std::printf("wrote Galois .gr v1 to %s\n", argv[3]);
    } else if (mode == "stats" && argc == 3) {
      const auto csr = graph::GraphFile::load(argv[2]).toCsr();
      const auto stats = graph::computeStats(csr);
      std::printf("|V|            %llu\n|E|            %llu\n"
                  "|E|/|V|        %.1f\nmax out-degree %llu\n"
                  "max in-degree  %llu\nisolated       %llu\n",
                  (unsigned long long)stats.numNodes,
                  (unsigned long long)stats.numEdges, stats.avgOutDegree,
                  (unsigned long long)stats.maxOutDegree,
                  (unsigned long long)stats.maxInDegree,
                  (unsigned long long)stats.numIsolatedNodes);
    } else {
      std::fprintf(stderr,
                   "convert_graph: error: unknown mode or wrong argument "
                   "count for '%s'\n",
                   mode.c_str());
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
