// cusp-partition: stand-alone command-line partitioner.
//
//   partition_tool <in.cgr> <policy> <hosts> [options]
//
//   <policy>   EEC | HVC | CVC | FEC | GVC | SVC
//              | LDG | DBH | HDRF | GREEDY | XTRAPULP
//   options:
//     --out <prefix>      write each partition to <prefix>.<host>.cdg
//     --csc               build partitions in CSC orientation
//     --buffer <MB>       message buffer threshold (default 8)
//     --rounds <n>        state synchronization rounds (default 100)
//     --node-weight <w>   reading-split node importance (default 0)
//     --edge-weight <w>   reading-split edge importance (default 1)
//     --metrics-out <p>   dump metrics JSON to <p> and a chrome://tracing
//                         trace to <p minus .json>.trace.json
//     --memory-budget <MB> attach a process-wide memory budget
//                         (support/memory.h); the reading phase falls back
//                         to bounded-window streaming when the host window
//                         does not fit, and cusp.mem.* gauges land in the
//                         metrics export
//     --stream-windows    force bounded-window streaming reads even
//                         without a budget
//
// Prints the paper-style phase breakdown, quality metrics and
// communication volume. With --out, every partition is written as a .cdg
// file (full DistGraph: topology + master/mirror metadata) reloadable with
// core::loadDistGraph and usable directly by the analytics engine.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "support/memory.h"
#include "xtrapulp/xtrapulp.h"

using namespace cusp;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: partition_tool <in.cgr> <policy> <hosts> "
               "[--out prefix] [--csc] [--buffer MB] [--rounds N] "
               "[--node-weight W] [--edge-weight W] "
               "[--metrics-out out.json] [--memory-budget MB] "
               "[--stream-windows]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Consumes --metrics-out and, when present, attaches the process-wide
  // sink before any Network exists and dumps both exports at exit.
  obs::MetricsCli metricsCli(argc, argv);
  // Consumes --memory-budget and, when present, attaches the process-wide
  // memory governor for the program's lifetime.
  support::MemoryBudgetCli budgetCli(argc, argv);
  if (argc < 4) {
    return usage();
  }
  const std::string inputPath = argv[1];
  std::string policyName = argv[2];
  const uint32_t hosts = static_cast<uint32_t>(std::atoi(argv[3]));
  std::string outPrefix;
  core::PartitionerConfig config;
  config.numHosts = hosts;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (!v) return usage();
      outPrefix = v;
    } else if (arg == "--csc") {
      config.buildTranspose = true;
    } else if (arg == "--buffer") {
      const char* v = next();
      if (!v) return usage();
      config.messageBufferThreshold =
          static_cast<size_t>(std::atof(v) * 1024 * 1024);
    } else if (arg == "--rounds") {
      const char* v = next();
      if (!v) return usage();
      config.stateSyncRounds = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--node-weight") {
      const char* v = next();
      if (!v) return usage();
      config.readNodeWeight = std::atof(v);
    } else if (arg == "--edge-weight") {
      const char* v = next();
      if (!v) return usage();
      config.readEdgeWeight = std::atof(v);
    } else if (arg == "--stream-windows") {
      config.forceStreamingWindows = true;
    } else {
      return usage();
    }
  }

  try {
    const graph::GraphFile file = graph::GraphFile::load(inputPath);
    std::printf("input: %llu nodes, %llu edges\n",
                (unsigned long long)file.numNodes(),
                (unsigned long long)file.numEdges());

    core::PartitionPolicy policy;
    double extraSeconds = 0.0;
    for (auto& c : policyName) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    if (policyName == "XTRAPULP") {
      xtrapulp::XtraPulpConfig xc;
      xc.numParts = hosts;
      const auto xp = xtrapulp::partition(file.toCsr(), xc);
      extraSeconds = xp.seconds;
      policy = xtrapulp::makeXtraPulpPolicy(
          std::make_shared<std::vector<uint32_t>>(xp.partOf));
      std::printf("xtrapulp offline pass: %.3f s, cut %llu edges\n",
                  xp.seconds, (unsigned long long)xp.cutEdges);
    } else {
      policy = core::makePolicy(policyName);
    }

    const auto result = core::partitionGraph(file, policy, config);
    std::printf("\npartitioning time: %.3f s\n",
                result.totalSeconds + extraSeconds);
    for (const auto& [phase, seconds] : result.phaseTimes.entries()) {
      std::printf("  %-20s %8.3f s\n", phase.c_str(), seconds);
    }
    const auto quality = core::computeQuality(result.partitions);
    std::printf("\nreplication factor %.3f | node imbalance %.3f | "
                "edge imbalance %.3f\n",
                quality.avgReplicationFactor, quality.nodeImbalance,
                quality.edgeImbalance);
    std::printf("traffic: %.2f MB, %llu messages\n",
                result.volume.totalBytes() / (1024.0 * 1024.0),
                (unsigned long long)result.volume.totalMessages());
    for (const auto& part : result.partitions) {
      std::printf("  host %u: %llu masters + %llu mirrors, %llu edges\n",
                  part.hostId, (unsigned long long)part.numMasters,
                  (unsigned long long)part.numMirrors(),
                  (unsigned long long)part.numLocalEdges());
    }

    if (!outPrefix.empty()) {
      for (const auto& part : result.partitions) {
        core::saveDistGraph(
            outPrefix + "." + std::to_string(part.hostId) + ".cdg", part);
      }
      std::printf("\nwrote %u partitions to %s.<host>.cdg "
                  "(reload with core::loadDistGraph)\n",
                  hosts, outPrefix.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
