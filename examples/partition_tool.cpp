// cusp-partition: stand-alone command-line partitioner.
//
//   partition_tool <in.cgr> <policy> <hosts> [options]
//
//   <policy>   EEC | HVC | CVC | FEC | GVC | SVC
//              | LDG | DBH | HDRF | GREEDY | XTRAPULP
//   options:
//     --out <prefix>      write each partition to <prefix>.<host>.cdg
//     --csc               build partitions in CSC orientation
//     --buffer <MB>       message buffer threshold (default 8)
//     --rounds <n>        state synchronization rounds (default 100)
//     --node-weight <w>   reading-split node importance (default 0)
//     --edge-weight <w>   reading-split edge importance (default 1)
//     --metrics-out <p>   dump metrics JSON to <p> and a chrome://tracing
//                         trace to <p minus .json>.trace.json
//     --memory-budget <MB> attach a process-wide memory budget
//                         (support/memory.h); the reading phase falls back
//                         to bounded-window streaming when the host window
//                         does not fit, and cusp.mem.* gauges land in the
//                         metrics export
//     --stream-windows    force bounded-window streaming reads even
//                         without a budget
//     --checkpoint-dir <d> run through the resilient driver with per-phase
//                         checkpoints (and degraded mode) rooted at <d>
//     --checkpoint-gc-age <sec> age threshold before the startup GC sweeps
//                         .quarantined checkpoint files (default 86400)
//     --net-partition <phase>:<g0,g1,...>[:heal]
//                         inject a timed network partition: from pipeline
//                         phase <phase>, host i can only reach hosts in the
//                         same group g_i; with :heal the links recover once
//                         the quorum rule has resolved the event. The
//                         strict-majority side fences and evicts the
//                         minority; minority hosts fail fast with
//                         MinorityPartition; with :heal the fenced hosts
//                         rejoin from the checkpoint store.
//
// Prints the paper-style phase breakdown, quality metrics and
// communication volume. With --out, every partition is written as a .cdg
// file (full DistGraph: topology + master/mirror metadata) reloadable with
// core::loadDistGraph and usable directly by the analytics engine.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "comm/fault.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "support/memory.h"
#include "xtrapulp/xtrapulp.h"

using namespace cusp;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: partition_tool <in.cgr> <policy> <hosts> "
               "[--out prefix] [--csc] [--buffer MB] [--rounds N] "
               "[--node-weight W] [--edge-weight W] "
               "[--metrics-out out.json] [--memory-budget MB] "
               "[--stream-windows] [--checkpoint-dir dir] "
               "[--checkpoint-gc-age sec] "
               "[--net-partition phase:g0,g1,...[:heal]]\n");
  return 2;
}

// "<phase>:<g0,g1,...>[:heal]" -> one timed PartitionEvent; nullopt on a
// malformed spec or a group list that does not cover every host.
std::optional<comm::PartitionEvent> parsePartitionSpec(const std::string& spec,
                                                       uint32_t hosts) {
  comm::PartitionEvent pe;
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return std::nullopt;
  }
  pe.phase = static_cast<uint32_t>(std::atoi(spec.substr(0, colon).c_str()));
  std::string rest = spec.substr(colon + 1);
  const size_t healColon = rest.find(':');
  if (healColon != std::string::npos) {
    if (rest.substr(healColon + 1) != "heal") {
      return std::nullopt;
    }
    pe.heals = true;
    rest = rest.substr(0, healColon);
  }
  size_t pos = 0;
  while (pos <= rest.size()) {
    const size_t comma = rest.find(',', pos);
    const std::string tok =
        rest.substr(pos, comma == std::string::npos ? rest.size() - pos
                                                    : comma - pos);
    if (tok.empty()) {
      return std::nullopt;
    }
    pe.groupOf.push_back(static_cast<uint8_t>(std::atoi(tok.c_str())));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (pe.groupOf.size() != hosts) {
    std::fprintf(stderr,
                 "--net-partition: group list names %zu hosts, expected %u\n",
                 pe.groupOf.size(), hosts);
    return std::nullopt;
  }
  return pe;
}

}  // namespace

int main(int argc, char** argv) {
  // Consumes --metrics-out and, when present, attaches the process-wide
  // sink before any Network exists and dumps both exports at exit.
  obs::MetricsCli metricsCli(argc, argv);
  // Consumes --memory-budget and, when present, attaches the process-wide
  // memory governor for the program's lifetime.
  support::MemoryBudgetCli budgetCli(argc, argv);
  if (argc < 4) {
    return usage();
  }
  const std::string inputPath = argv[1];
  std::string policyName = argv[2];
  const uint32_t hosts = static_cast<uint32_t>(std::atoi(argv[3]));
  std::string outPrefix;
  core::PartitionerConfig config;
  config.numHosts = hosts;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (!v) return usage();
      outPrefix = v;
    } else if (arg == "--csc") {
      config.buildTranspose = true;
    } else if (arg == "--buffer") {
      const char* v = next();
      if (!v) return usage();
      config.messageBufferThreshold =
          static_cast<size_t>(std::atof(v) * 1024 * 1024);
    } else if (arg == "--rounds") {
      const char* v = next();
      if (!v) return usage();
      config.stateSyncRounds = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--node-weight") {
      const char* v = next();
      if (!v) return usage();
      config.readNodeWeight = std::atof(v);
    } else if (arg == "--edge-weight") {
      const char* v = next();
      if (!v) return usage();
      config.readEdgeWeight = std::atof(v);
    } else if (arg == "--stream-windows") {
      config.forceStreamingWindows = true;
    } else if (arg == "--checkpoint-dir") {
      const char* v = next();
      if (!v) return usage();
      config.resilience.checkpointDir = v;
      config.resilience.enableCheckpoints = true;
      config.resilience.degradedMode = true;
    } else if (arg == "--checkpoint-gc-age") {
      const char* v = next();
      if (!v) return usage();
      config.resilience.checkpointGcAgeSeconds = std::atof(v);
    } else if (arg == "--net-partition") {
      const char* v = next();
      if (!v) return usage();
      const auto pe = parsePartitionSpec(v, hosts);
      if (!pe) return usage();
      auto plan = std::make_shared<comm::FaultPlan>();
      plan->partitions.push_back(*pe);
      config.resilience.faultPlan = std::move(plan);
      config.resilience.degradedMode = true;
      // A cut link otherwise blocks a receive forever: bound it so the
      // quorum machinery gets to classify the stall.
      if (config.resilience.recvTimeoutSeconds <= 0) {
        config.resilience.recvTimeoutSeconds = 10.0;
      }
    } else {
      std::fprintf(stderr, "partition_tool: error: unknown flag '%s'\n",
                   arg.c_str());
      return usage();
    }
  }

  try {
    const graph::GraphFile file = graph::GraphFile::load(inputPath);
    std::printf("input: %llu nodes, %llu edges\n",
                (unsigned long long)file.numNodes(),
                (unsigned long long)file.numEdges());

    core::PartitionPolicy policy;
    double extraSeconds = 0.0;
    for (auto& c : policyName) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    if (policyName == "XTRAPULP") {
      xtrapulp::XtraPulpConfig xc;
      xc.numParts = hosts;
      const auto xp = xtrapulp::partition(file.toCsr(), xc);
      extraSeconds = xp.seconds;
      policy = xtrapulp::makeXtraPulpPolicy(
          std::make_shared<std::vector<uint32_t>>(xp.partOf));
      std::printf("xtrapulp offline pass: %.3f s, cut %llu edges\n",
                  xp.seconds, (unsigned long long)xp.cutEdges);
    } else {
      policy = core::makePolicy(policyName);
    }

    const bool resilient = config.resilience.degradedMode ||
                           config.resilience.enableCheckpoints ||
                           config.resilience.faultPlan != nullptr;
    core::RecoveryReport recovery;
    const auto result =
        resilient
            ? core::partitionGraphResilient(file, policy, config, &recovery)
            : core::partitionGraph(file, policy, config);
    if (resilient) {
      std::printf("\nresilient driver: %u attempt(s), %u eviction(s), "
                  "%u partition event(s), final hosts %u\n",
                  recovery.attempts,
                  (unsigned)recovery.evictions.size(),
                  recovery.partitionEvents, recovery.finalNumHosts);
      for (uint32_t h : recovery.fencedHosts) {
        const bool rejoined =
            std::find(recovery.rejoinedHosts.begin(),
                      recovery.rejoinedHosts.end(),
                      h) != recovery.rejoinedHosts.end();
        std::printf("  host %u fenced by quorum rule%s\n", h,
                    rejoined ? ", rejoined after heal" : " (evicted)");
      }
      if (recovery.fencedWriteAttempts > 0) {
        std::printf("  %llu checkpoint write(s) refused by the fence\n",
                    (unsigned long long)recovery.fencedWriteAttempts);
      }
    }
    std::printf("\npartitioning time: %.3f s\n",
                result.totalSeconds + extraSeconds);
    for (const auto& [phase, seconds] : result.phaseTimes.entries()) {
      std::printf("  %-20s %8.3f s\n", phase.c_str(), seconds);
    }
    const auto quality = core::computeQuality(result.partitions);
    std::printf("\nreplication factor %.3f | node imbalance %.3f | "
                "edge imbalance %.3f\n",
                quality.avgReplicationFactor, quality.nodeImbalance,
                quality.edgeImbalance);
    std::printf("traffic: %.2f MB, %llu messages\n",
                result.volume.totalBytes() / (1024.0 * 1024.0),
                (unsigned long long)result.volume.totalMessages());
    for (const auto& part : result.partitions) {
      std::printf("  host %u: %llu masters + %llu mirrors, %llu edges\n",
                  part.hostId, (unsigned long long)part.numMasters,
                  (unsigned long long)part.numMirrors(),
                  (unsigned long long)part.numLocalEdges());
    }

    if (!outPrefix.empty()) {
      for (const auto& part : result.partitions) {
        core::saveDistGraph(
            outPrefix + "." + std::to_string(part.hostId) + ".cdg", part);
      }
      std::printf("\nwrote %u partitions to %s.<host>.cdg "
                  "(reload with core::loadDistGraph)\n",
                  hosts, outPrefix.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
