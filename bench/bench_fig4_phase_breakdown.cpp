// Reproduces paper Fig. 4: time spent in the different phases of CuSP for
// clueweb12 and uk14 at the top host count.
//
// Paper shapes to check:
//  * EEC is dominated by graph reading (no inter-host communication);
//  * HVC/CVC spend their time in edge assignment + construction, with HVC's
//    edge assignment above CVC's (more data, all-to-all partners);
//  * FEC/GVC/SVC are dominated by the master-assignment phase.
#include <cstdio>

#include "bench_common.h"
#include "obs/obs.h"

int main(int argc, char** argv) {
  using namespace cusp;
  bench::BenchMain benchMain(argc, argv);
  const uint64_t edges = 250'000;
  const uint32_t hosts = 16;  // paper: 128
  const std::vector<std::string> phases = {
      "Graph Reading", "Master Assignment", "Edge Assignment",
      "Graph Allocation", "Graph Construction"};

  bench::printHeader("Fig. 4: per-phase partitioning time (seconds)");
  for (const std::string input : {"clueweb", "uk"}) {
    const auto& g = bench::standIn(input, edges);
    std::printf("\n-- %s, %u hosts --\n%-8s", input.c_str(), hosts, "policy");
    for (const auto& phase : phases) {
      std::printf(" %12.12s", phase.c_str());
    }
    std::printf(" %9s\n", "total");
    for (const auto& policy : core::policyCatalog()) {
      const auto timed = bench::partitionNamed(g, policy, hosts);
      std::printf("%-8s", policy.c_str());
      for (const auto& phase : phases) {
        std::printf(" %12.4f", timed.result.phaseTimes.get(phase));
      }
      std::printf(" %9.4f\n", timed.seconds);
    }
  }
  return 0;
}
