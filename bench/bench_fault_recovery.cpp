// Fault-recovery bench: cost of the resilience machinery.
//
//  (a) Checkpoint overhead — fault-free partitioning time with per-phase
//      checkpointing off vs on. Expected: a few percent (<10%): each
//      checkpoint serializes small per-host metadata except the phase-5
//      one, which writes the local partition.
//  (b) Recovery makespan vs crash phase — one host crashes at the entry of
//      phase P; partitionGraphResilient resumes from the phase-(P-1)
//      checkpoints. Makespan is modeled as the simulated time spent before
//      the crash (the baseline's phase prefix) plus the simulated time of
//      the resumed re-run. Expected: grows with P (later crashes waste
//      more pre-crash work), while the re-run itself shrinks as the resume
//      point advances; without checkpoints every crash pays a full re-run.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <unistd.h>

#include "bench_common.h"
#include "comm/fault.h"
#include "core/checkpoint.h"

namespace {

const char* const kPhaseNames[5] = {"Graph Reading", "Master Assignment",
                                    "Edge Assignment", "Graph Allocation",
                                    "Graph Construction"};

std::string makeCheckpointDir() {
  char tmpl[] = "/tmp/cusp_bench_ckpt_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return dir;
}

void cleanupCheckpointDir(const std::string& dir, uint32_t hosts) {
  for (uint32_t h = 0; h < hosts; ++h) {
    cusp::core::removeCheckpoints(dir, h, 5);
  }
  ::rmdir(dir.c_str());
}

}  // namespace

int main() {
  using namespace cusp;
  const uint64_t edges = 250'000;
  const uint32_t hosts = 8;
  const std::string input = "kron";
  const auto& g = bench::standIn(input, edges);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);

  bench::printHeader("(a) Checkpoint overhead, fault-free, " + input +
                     ", 8 hosts");
  std::printf("%-8s %14s %16s %12s\n", "policy", "plain (s)",
              "checkpointed (s)", "overhead");
  for (const std::string policyName : {"EEC", "HVC", "CVC"}) {
    const auto policy = bench::benchPolicy(policyName);
    core::PartitionerConfig config = bench::benchConfig();
    config.numHosts = hosts;
    const double plain =
        core::partitionGraph(file, policy, config).totalSeconds;

    const std::string dir = makeCheckpointDir();
    config.resilience.checkpointDir = dir;
    config.resilience.enableCheckpoints = true;
    const double checkpointed =
        core::partitionGraph(file, policy, config).totalSeconds;
    cleanupCheckpointDir(dir, hosts);

    std::printf("%-8s %14.4f %16.4f %11.1f%%\n", policyName.c_str(), plain,
                checkpointed, 100.0 * (checkpointed - plain) / plain);
  }

  bench::printHeader("(b) Recovery makespan vs crash phase, " + input +
                     ", CVC, 8 hosts");
  {
    const auto policy = bench::benchPolicy("CVC");
    core::PartitionerConfig config = bench::benchConfig();
    config.numHosts = hosts;
    const auto baseline = core::partitionGraph(file, policy, config);

    // Simulated time spent before a crash at the entry of phase P: the
    // baseline's phases 1..P-1.
    double prefix[6] = {0.0};
    for (uint32_t p = 1; p <= 5; ++p) {
      prefix[p] = prefix[p - 1] + baseline.phaseTimes.get(kPhaseNames[p - 1]);
    }
    std::printf("fault-free total: %.4f s\n\n", baseline.totalSeconds);
    std::printf("%-12s %10s %12s %12s %14s\n", "crash", "resume", "rerun (s)",
                "makespan (s)", "vs fault-free");
    for (const bool checkpoints : {true, false}) {
      for (uint32_t crashPhase = 1; crashPhase <= 5; ++crashPhase) {
        auto plan = std::make_shared<comm::FaultPlan>();
        plan->crashes.push_back({/*host=*/1, crashPhase, /*opsIntoPhase=*/0});

        core::PartitionerConfig run = config;
        run.resilience.faultPlan = plan;
        run.resilience.recvTimeoutSeconds = 30.0;
        std::string dir;
        if (checkpoints) {
          dir = makeCheckpointDir();
          run.resilience.checkpointDir = dir;
          run.resilience.enableCheckpoints = true;
        }

        core::RecoveryReport report;
        const auto recovered =
            core::partitionGraphResilient(file, policy, run, &report);
        if (checkpoints) {
          cleanupCheckpointDir(dir, hosts);
        }

        // Wasted pre-crash work (the crash fires at the entry of phase P,
        // so phases 1..P-1 ran) plus the resumed attempt.
        const double makespan =
            prefix[crashPhase - 1] + recovered.totalSeconds;
        std::printf("phase %u %-4s %9up %12.4f %12.4f %13.2fx\n", crashPhase,
                    checkpoints ? "ckpt" : "cold", report.resumedFromPhase,
                    recovered.totalSeconds, makespan,
                    makespan / baseline.totalSeconds);
      }
    }
  }
  return 0;
}
