// Fault-recovery bench: cost of the resilience machinery.
//
//  (a) Checkpoint overhead — fault-free partitioning time with per-phase
//      checkpointing off vs on. Expected: a few percent (<10%): each
//      checkpoint serializes small per-host metadata except the phase-5
//      one, which writes the local partition.
//  (b) Recovery makespan vs crash phase — one host crashes at the entry of
//      phase P; partitionGraphResilient resumes from the phase-(P-1)
//      checkpoints. Makespan is modeled as the simulated time spent before
//      the crash (the baseline's phase prefix) plus the simulated time of
//      the resumed re-run. Expected: grows with P (later crashes waste
//      more pre-crash work), while the re-run itself shrinks as the resume
//      point advances; without checkpoints every crash pays a full re-run.
//  (c) Straggler slowdown sweep — one host paces every network op by a
//      sustained factor; soft straggler deadlines meter the blame it
//      accrues, and at the top factor the hard deadline evicts it and the
//      survivors re-partition. Expected: wall time grows with the factor
//      while soft reports pile up on the laggard; the eviction row trades
//      a recovery attempt for freedom from the slow host.
//
// --metrics-out=bench.json dumps the run's counters (checkpoint commits,
// straggler soft reports and hard evictions, recovery attempts) alongside
// the printed tables.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>

#include <unistd.h>

#include "bench_common.h"
#include "comm/fault.h"
#include "core/checkpoint.h"
#include "obs/obs.h"

namespace {

const char* const kPhaseNames[5] = {"Graph Reading", "Master Assignment",
                                    "Edge Assignment", "Graph Allocation",
                                    "Graph Construction"};

std::string makeCheckpointDir() {
  char tmpl[] = "/tmp/cusp_bench_ckpt_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return dir;
}

void cleanupCheckpointDir(const std::string& dir, uint32_t hosts) {
  for (uint32_t h = 0; h < hosts; ++h) {
    cusp::core::removeCheckpoints(dir, h, 5);
  }
  // Degraded recovery writes per-epoch subdirectories (<dir>/e<N>); sweep
  // whatever the per-host removal above did not cover.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cusp;
  bench::BenchMain benchMain(argc, argv);
  const uint64_t edges = 250'000;
  const uint32_t hosts = 8;
  const std::string input = "kron";
  const auto& g = bench::standIn(input, edges);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);

  bench::printHeader("(a) Checkpoint overhead, fault-free, " + input +
                     ", 8 hosts");
  std::printf("%-8s %14s %16s %12s\n", "policy", "plain (s)",
              "checkpointed (s)", "overhead");
  for (const std::string policyName : {"EEC", "HVC", "CVC"}) {
    const auto policy = bench::benchPolicy(policyName);
    core::PartitionerConfig config = bench::benchConfig();
    config.numHosts = hosts;
    const double plain =
        core::partitionGraph(file, policy, config).totalSeconds;

    const std::string dir = makeCheckpointDir();
    config.resilience.checkpointDir = dir;
    config.resilience.enableCheckpoints = true;
    const double checkpointed =
        core::partitionGraph(file, policy, config).totalSeconds;
    cleanupCheckpointDir(dir, hosts);

    std::printf("%-8s %14.4f %16.4f %11.1f%%\n", policyName.c_str(), plain,
                checkpointed, 100.0 * (checkpointed - plain) / plain);
  }

  bench::printHeader("(b) Recovery makespan vs crash phase, " + input +
                     ", CVC, 8 hosts");
  {
    const auto policy = bench::benchPolicy("CVC");
    core::PartitionerConfig config = bench::benchConfig();
    config.numHosts = hosts;
    const auto baseline = core::partitionGraph(file, policy, config);

    // Simulated time spent before a crash at the entry of phase P: the
    // baseline's phases 1..P-1.
    double prefix[6] = {0.0};
    for (uint32_t p = 1; p <= 5; ++p) {
      prefix[p] = prefix[p - 1] + baseline.phaseTimes.get(kPhaseNames[p - 1]);
    }
    std::printf("fault-free total: %.4f s\n\n", baseline.totalSeconds);
    std::printf("%-12s %10s %12s %12s %14s\n", "crash", "resume", "rerun (s)",
                "makespan (s)", "vs fault-free");
    for (const bool checkpoints : {true, false}) {
      for (uint32_t crashPhase = 1; crashPhase <= 5; ++crashPhase) {
        auto plan = std::make_shared<comm::FaultPlan>();
        plan->crashes.push_back({/*host=*/1, crashPhase, /*opsIntoPhase=*/0});

        core::PartitionerConfig run = config;
        run.resilience.faultPlan = plan;
        run.resilience.recvTimeoutSeconds = 30.0;
        std::string dir;
        if (checkpoints) {
          dir = makeCheckpointDir();
          run.resilience.checkpointDir = dir;
          run.resilience.enableCheckpoints = true;
        }

        core::RecoveryReport report;
        const auto recovered =
            core::partitionGraphResilient(file, policy, run, &report);
        if (checkpoints) {
          cleanupCheckpointDir(dir, hosts);
        }

        // Wasted pre-crash work (the crash fires at the entry of phase P,
        // so phases 1..P-1 ran) plus the resumed attempt.
        const double makespan =
            prefix[crashPhase - 1] + recovered.totalSeconds;
        std::printf("phase %u %-4s %9up %12.4f %12.4f %13.2fx\n", crashPhase,
                    checkpoints ? "ckpt" : "cold", report.resumedFromPhase,
                    recovered.totalSeconds, makespan,
                    makespan / baseline.totalSeconds);
      }
    }
  }

  bench::printHeader("(c) Straggler slowdown sweep, " + input +
                     ", CVC, 8 hosts");
  {
    // A smaller stand-in: the pacing sleeps are real wall time, so the
    // sweep sizes the graph to keep the 10x row in bench territory.
    const auto& sg = bench::standIn(input, 60'000);
    const graph::GraphFile sfile = graph::GraphFile::fromCsr(sg);
    const auto policy = bench::benchPolicy("CVC");
    core::PartitionerConfig config = bench::benchConfig();
    config.numHosts = hosts;
    const double clean =
        core::partitionGraph(sfile, policy, config).totalSeconds;
    std::printf("fault-free total: %.4f s\n\n", clean);
    std::printf("%-10s %-6s %10s %12s %13s %10s\n", "slowdown", "mode",
                "total (s)", "vs clean", "soft reports", "evicted");

    struct Row {
      double factor;
      bool hard;  // arm the hard deadline and let it evict
    };
    const Row rows[] = {{1.0, false}, {2.0, false}, {5.0, false},
                        {10.0, false}, {10.0, true}};
    for (const Row& row : rows) {
      auto plan = std::make_shared<comm::FaultPlan>();
      if (row.factor > 1.0) {
        // Host 1 paces every network op from master assignment onward.
        plan->slowdowns.push_back(comm::HostSlowdown{
            /*host=*/1, row.factor, /*opMicros=*/200, /*fromPhase=*/1});
      }
      core::PartitionerConfig run = config;
      run.resilience.faultPlan = plan;
      run.resilience.recvTimeoutSeconds = 60.0;
      run.resilience.straggler.softDeadlineSeconds = 0.01;
      std::string dir;
      if (row.hard) {
        run.resilience.straggler.hardDeadlineSeconds = 0.25;
        run.resilience.degradedMode = true;
        dir = makeCheckpointDir();
        run.resilience.checkpointDir = dir;
        run.resilience.enableCheckpoints = true;
      }

      core::RecoveryReport report;
      const auto result =
          core::partitionGraphResilient(sfile, policy, run, &report);
      if (row.hard) {
        cleanupCheckpointDir(dir, hosts);
      }
      std::string evicted = "-";
      if (!report.evictions.empty()) {
        evicted = "host " + std::to_string(report.evictions[0].host);
      }
      std::printf("%9.0fx %-6s %10.4f %11.2fx %13llu %10s\n", row.factor,
                  row.hard ? "hard" : "soft", result.totalSeconds,
                  result.totalSeconds / clean,
                  static_cast<unsigned long long>(report.stragglerSoftReports),
                  evicted.c_str());
    }
  }
  return 0;
}
