// Extension bench: streaming-window partitioning (the ADWISE class, paper
// Section II-B2 — left as future work there, implemented here).
//
// Sweeps the window size for the replica-tracking vertex cuts (HDRF and
// Greedy with the replica-affinity window score). Expected shape, from the
// ADWISE idea: a larger window lets the partitioner defer "fresh" edges
// until replica state accumulates, trading partitioning time for
// replication quality; gains flatten once the window covers the working
// set of in-flight vertices.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 150'000;
  const uint32_t hosts = 8;
  const std::vector<uint32_t> windows = {1, 8, 64, 512};
  bench::printHeader(
      "Extension: streaming-window partitioning (ADWISE class)");
  for (const std::string policyName : {"HDRF", "GREEDY"}) {
    for (const std::string input : {"clueweb", "kron"}) {
      const auto& g = bench::standIn(input, edges);
      const graph::GraphFile file = graph::GraphFile::fromCsr(g);
      std::printf("\n-- %s on %s, %u hosts --\n%-10s %12s %12s\n",
                  policyName.c_str(), input.c_str(), hosts, "window",
                  "time (s)", "replication");
      for (uint32_t window : windows) {
        core::PartitionPolicy policy = bench::benchPolicy(policyName);
        policy.edge = core::withWindowScore(policy.edge);
        core::PartitionerConfig config = bench::benchConfig();
        config.numHosts = hosts;
        config.windowSize = window;
        const auto result = core::partitionGraph(file, policy, config);
        const auto quality = core::computeQuality(result.partitions);
        std::printf("%-10u %12.4f %12.2f\n", window, result.totalSeconds,
                    quality.avgReplicationFactor);
      }
    }
  }
  return 0;
}
