// Shared infrastructure for the paper-reproduction benchmark harness.
//
// Scaling decisions (documented in EXPERIMENTS.md):
//  * Inputs are the Table III stand-ins at a few hundred thousand edges
//    (paper: 17B-129B edges) — graph structure, not size, drives the
//    comparisons reproduced here.
//  * Host counts scale 32/64/128 -> 4/8/16.
//  * The Hybrid/FennelEB degree threshold scales from 1000 to 100 so that
//    hub handling actually triggers at stand-in scale (paper graphs have
//    max degrees in the millions).
//  * Message-buffer thresholds scale from MB to KB: a host's total edge
//    payload here is ~1 MB, so the paper's 0 MB -> 32 MB sweep maps to
//    0 -> 256 KB.
#pragma once

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytics/algorithms.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/obs.h"
#include "support/memory.h"
#include "xtrapulp/xtrapulp.h"

namespace cusp::bench {

// Peak resident set of this process in bytes (getrusage; Linux reports
// ru_maxrss in KiB). 0 if the syscall fails.
inline uint64_t peakRssBytes() {
  struct rusage usage {};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

// Mirrors process-level memory outcomes into the attached metrics registry
// so --metrics-out JSON exports carry them: real peak RSS of the bench
// process, and — when a memory budget is attached (--memory-budget) — the
// governor's accounted peak and cumulative spill bytes.
inline void recordMemoryMetrics() {
  if (!obs::attached()) {
    return;
  }
  const auto registry = obs::sink().metrics;
  if (!registry) {
    return;
  }
  registry->gauge("bench.peak_rss_bytes")
      .set(static_cast<double>(peakRssBytes()));
  if (support::memoryBudgetAttached()) {
    const support::MemoryBudgetStats stats =
        support::memoryBudget()->stats();
    registry->gauge("bench.mem_budget_bytes")
        .set(static_cast<double>(stats.totalBytes));
    registry->gauge("bench.mem_peak_bytes")
        .set(static_cast<double>(stats.peakBytes));
    registry->gauge("bench.spill_bytes")
        .set(static_cast<double>(stats.spillBytes));
  }
}

// Standard bench main() prologue: consumes --metrics-out (obs::MetricsCli)
// and guarantees that EVERY bench's JSON export carries bench.peak_rss_bytes
// (plus the governor gauges when a budget is attached) — the perf
// trajectory captures memory alongside time. Destruction order does the
// sequencing: the destructor body refreshes the gauges first, then the
// MetricsCli member (destroyed after the body runs) writes the exports.
class BenchMain {
 public:
  BenchMain(int& argc, char** argv) : metrics_(argc, argv) {}
  ~BenchMain() { recordMemoryMetrics(); }

  BenchMain(const BenchMain&) = delete;
  BenchMain& operator=(const BenchMain&) = delete;

  bool metricsEnabled() const { return metrics_.enabled(); }

 private:
  obs::MetricsCli metrics_;
};

inline const std::vector<std::string>& inputNames() {
  static const std::vector<std::string> names = {"kron", "gsh", "clueweb",
                                                 "uk", "wdc"};
  return names;
}

// Scaled-down stand-ins, cached per (name, edges).
inline const graph::CsrGraph& standIn(const std::string& name,
                                      uint64_t targetEdges) {
  static std::map<std::pair<std::string, uint64_t>, graph::CsrGraph> cache;
  auto key = std::make_pair(name, targetEdges);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, graph::makeStandIn(name, targetEdges)).first;
  }
  return it->second;
}

inline core::FennelParams benchFennelParams() {
  core::FennelParams params;
  params.degreeThreshold = 10;  // scaled from the paper's 1000 (see header comment)
  return params;
}

inline core::PartitionPolicy benchPolicy(const std::string& name) {
  return core::makePolicy(name, benchFennelParams());
}

struct XtraPulpRun {
  std::shared_ptr<std::vector<uint32_t>> map;
  double seconds = 0.0;  // offline partitioning time (reading + refinement)
};

// Simulated per-host disk bandwidth (MB/s). Scaled with the inputs: the
// paper's graphs are ~5 orders of magnitude larger and its Lustre
// filesystem delivers a few hundred MB/s per host, so at stand-in scale a
// few MB/s preserves the reading-time : edge-count ratio (and with it the
// phase profile of communication-free policies, Fig. 4).
inline constexpr double kBenchDiskMBps = 20.0;

// Simulated interconnect cost model: ~2 us injection overhead per message
// (MPI over Omni-Path pays on this order per message) and a scaled
// per-byte cost. This is what makes the paper's communication effects
// appear: buffering (Fig. 7) amortizes the per-message overhead, and
// communication-structured partitions (CVC) send fewer messages during
// application sync (Figs. 5/6).
inline comm::NetworkCostModel benchCostModel() {
  comm::NetworkCostModel model;
  model.sendOverheadMicros = 10.0;
  model.bandwidthMBps = 200.0;
  return model;
}

// Scaled CuSP configuration shared by all benches: state-synchronization
// rounds scale with the per-host vertex count (paper: 100 rounds over
// ~10M-vertex blocks; stand-in blocks are ~10^3 vertices).
inline core::PartitionerConfig benchConfig() {
  core::PartitionerConfig config;
  config.stateSyncRounds = 10;
  config.simulatedDiskBandwidthMBps = kBenchDiskMBps;
  config.networkCostModel = benchCostModel();
  return config;
}

inline XtraPulpRun runXtraPulp(const graph::CsrGraph& g, uint32_t hosts) {
  xtrapulp::XtraPulpConfig config;
  config.numParts = hosts;
  config.simulatedDiskBandwidthMBps = kBenchDiskMBps;
  config.networkCostModel = benchCostModel();
  // The distributed implementation is the one the paper benchmarks: it
  // pays per-sweep communication on the same simulated cluster CuSP uses.
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto result = xtrapulp::partitionDistributed(file, config);
  XtraPulpRun run;
  run.map = std::make_shared<std::vector<uint32_t>>(result.partOf);
  run.seconds = result.seconds;
  return run;
}

// Partition `g` with a named policy ("XtraPulp" included) and return the
// result plus the end-to-end partitioning seconds (for XtraPulp: the
// offline refinement; for CuSP policies: reading through construction,
// matching the paper's Fig. 3 accounting where XtraPulp's time excludes
// graph construction).
struct TimedPartitions {
  core::PartitionResult result;
  double seconds = 0.0;
};

inline TimedPartitions partitionNamed(const graph::CsrGraph& g,
                                      const std::string& policy,
                                      uint32_t hosts,
                                      core::PartitionerConfig config =
                                          benchConfig()) {
  config.numHosts = hosts;
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  TimedPartitions timed;
  if (policy == "XtraPulp") {
    const XtraPulpRun xp = runXtraPulp(g, hosts);
    timed.result = core::partitionGraph(
        file, xtrapulp::makeXtraPulpPolicy(xp.map), config);
    timed.seconds = xp.seconds;  // paper: XtraPulp time has no construction
  } else {
    timed.result = core::partitionGraph(file, benchPolicy(policy), config);
    timed.seconds = timed.result.totalSeconds;
  }
  recordMemoryMetrics();  // keeps peak-RSS/spill gauges fresh in exports
  return timed;
}

// The seven series of Figs. 3/5/6: XtraPulp baseline + six CuSP policies.
inline std::vector<std::string> allSeries() {
  std::vector<std::string> series = {"XtraPulp"};
  for (const auto& name : core::policyCatalog()) {
    series.push_back(name);
  }
  return series;
}

inline void printHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Shared driver for Figs. 5/6 and Table IV: application execution time of
// bfs / cc / pagerank / sssp on partitions from every series, per input.
// cc runs on partitions of the symmetrized graph (paper Section V-A); sssp
// on randomly weighted edges; bfs/sssp sources are the max out-degree node.
// Returns per-series geometric-mean application speedup vs XtraPulp.
struct AppSuiteResult {
  std::vector<std::string> series;
  std::vector<double> geoMeanSpeedupVsXtraPulp;  // parallel to series
};

inline AppSuiteResult runAppSuite(uint32_t hosts, uint64_t targetEdges,
                                  const std::vector<std::string>& inputs) {
  const auto series = allSeries();
  const std::vector<std::string> apps = {"bfs", "cc", "pr", "sssp"};
  // logSpeedup[s] accumulates ln(xtrapulpTime/time) over (input, app).
  std::vector<double> logSpeedup(series.size(), 0.0);
  size_t samples = 0;

  for (const auto& input : inputs) {
    const graph::CsrGraph weighted =
        graph::withRandomWeights(standIn(input, targetEdges), 64, 7);
    const graph::CsrGraph symmetric = weighted.symmetrized();
    const uint64_t source = analytics::maxOutDegreeNode(weighted);

    std::printf("\n-- %s, %u hosts --\n%-10s", input.c_str(), hosts,
                "policy");
    for (const auto& app : apps) {
      std::printf(" %9s", app.c_str());
    }
    std::printf("\n");

    std::vector<std::vector<double>> times(series.size(),
                                           std::vector<double>(apps.size()));
    for (size_t s = 0; s < series.size(); ++s) {
      const auto dirParts = partitionNamed(weighted, series[s], hosts);
      const auto symParts = partitionNamed(symmetric, series[s], hosts);
      analytics::RunStats stats;
      analytics::runBfs(dirParts.result.partitions, source, &stats,
                        benchCostModel());
      times[s][0] = stats.seconds;
      analytics::runCc(symParts.result.partitions, &stats, benchCostModel());
      times[s][1] = stats.seconds;
      analytics::PageRankParams pr;
      pr.maxIterations = 30;
      pr.tolerance = 1e-4;
      analytics::runPageRank(dirParts.result.partitions, pr, &stats,
                             benchCostModel());
      times[s][2] = stats.seconds;
      analytics::runSssp(dirParts.result.partitions, source, &stats,
                         benchCostModel());
      times[s][3] = stats.seconds;
      std::printf("%-10s", series[s].c_str());
      for (double t : times[s]) {
        std::printf(" %9.4f", t);
      }
      std::printf("\n");
    }
    for (size_t s = 1; s < series.size(); ++s) {
      for (size_t a = 0; a < apps.size(); ++a) {
        logSpeedup[s] += std::log(times[0][a] / times[s][a]);
      }
    }
    samples += apps.size();
  }

  AppSuiteResult result;
  result.series = series;
  result.geoMeanSpeedupVsXtraPulp.assign(series.size(), 1.0);
  for (size_t s = 1; s < series.size(); ++s) {
    result.geoMeanSpeedupVsXtraPulp[s] =
        std::exp(logSpeedup[s] / static_cast<double>(samples));
  }
  return result;
}

}  // namespace cusp::bench
