// Ablation bench for CuSP's communication optimizations beyond the paper's
// own sweeps (Fig. 7 covers buffering; Tables VI/VII cover sync rounds):
//
//  (a) pure-master optimization (paper IV-D5): pure getMaster rules skip
//      ALL master communication by replicating the computation. Disabling
//      the optimization forces the full request/assign/list exchanges.
//  (b) reading-split importance (paper IV-B1): edge-balanced (default)
//      vs node-balanced reading and its effect on partition balance and
//      partitioning time for EEC (whose partitions mirror the read split).
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 250'000;
  const uint32_t hosts = 16;

  bench::printHeader(
      "Ablation (a): pure-master optimization (paper IV-D5), 16 hosts");
  std::printf("%-10s %-8s %12s %14s %16s\n", "input", "policy", "time (s)",
              "master KB", "masterlist KB");
  for (const std::string input : {"clueweb", "uk"}) {
    const auto& g = bench::standIn(input, edges);
    for (const std::string policy : {"EEC", "CVC"}) {
      for (bool disabled : {false, true}) {
        core::PartitionerConfig config = bench::benchConfig();
        config.disablePureMasterOptimization = disabled;
        const auto timed = bench::partitionNamed(g, policy, hosts, config);
        const auto& v = timed.result.volume;
        const double masterKb =
            (v.bytes[comm::kTagMasterRequest] +
             v.bytes[comm::kTagMasterAssign]) / 1024.0;
        const double listKb = v.bytes[comm::kTagMasterList] / 1024.0;
        std::printf("%-10s %-8s %12.4f %14.1f %16.1f   %s\n", input.c_str(),
                    policy.c_str(), timed.seconds, masterKb, listKb,
                    disabled ? "(optimization DISABLED)" : "(default)");
      }
    }
  }

  // The read split does not change the produced partitions (masters come
  // from the policy), but it changes which host READS what — an unbalanced
  // read makes the slowest reader a straggler and forces edges to move from
  // reader to owner. Reported: read-edge imbalance (max/avg over hosts),
  // partitioning time, and construction traffic.
  bench::printHeader(
      "Ablation (b): reading-split importance weights (paper IV-B1), EEC");
  std::printf("%-10s %-14s %12s %14s %16s\n", "input", "split", "time (s)",
              "readEdgeImb", "construction KB");
  for (const std::string input : {"clueweb", "kron"}) {
    const auto& g = bench::standIn(input, edges);
    const graph::GraphFile file = graph::GraphFile::fromCsr(g);
    struct Split {
      const char* name;
      double nodeWeight, edgeWeight;
    };
    for (const Split split : {Split{"edge-balanced", 0.0, 1.0},
                              Split{"node-balanced", 1.0, 0.0},
                              Split{"mixed", 1.0, 1.0}}) {
      core::PartitionerConfig config = bench::benchConfig();
      config.readNodeWeight = split.nodeWeight;
      config.readEdgeWeight = split.edgeWeight;
      const auto ranges =
          (split.nodeWeight == 0.0 && split.edgeWeight == 1.0)
              ? graph::contiguousEbRanges(file, hosts)
              : graph::computeReadRanges(file, hosts, split.nodeWeight,
                                         split.edgeWeight);
      uint64_t maxRead = 0;
      for (const auto& r : ranges) {
        maxRead = std::max(maxRead, r.numEdges());
      }
      const double readImb = static_cast<double>(maxRead) * hosts /
                             static_cast<double>(g.numEdges());
      const auto timed = bench::partitionNamed(g, "EEC", hosts, config);
      std::printf("%-10s %-14s %12.4f %14.2f %16.1f\n", input.c_str(),
                  split.name, timed.seconds, readImb,
                  timed.result.volume.bytes[comm::kTagEdgeBatch] / 1024.0);
    }
  }

  // (c) delta+varint compression of construction edge batches — an
  // optimization beyond the paper, ablated here: same partitions, smaller
  // construction volume (the phase Table V measures).
  bench::printHeader(
      "Ablation (c): edge-batch compression in graph construction");
  std::printf("%-10s %-8s %12s %18s\n", "input", "policy", "time (s)",
              "construction KB");
  for (const std::string input : {"clueweb", "kron"}) {
    const auto& g = bench::standIn(input, edges);
    for (const std::string policy : {"CVC", "HVC"}) {
      for (bool compress : {false, true}) {
        core::PartitionerConfig config = bench::benchConfig();
        config.compressEdgeBatches = compress;
        const auto timed = bench::partitionNamed(g, policy, hosts, config);
        std::printf("%-10s %-8s %12.4f %18.1f   %s\n", input.c_str(),
                    policy.c_str(), timed.seconds,
                    timed.result.volume.bytes[comm::kTagEdgeBatch] / 1024.0,
                    compress ? "(compressed)" : "(plain)");
      }
    }
  }
  return 0;
}
