// Service-under-overload bench: the cuspd daemon driven through three
// regimes on the same shared engine —
//
//   clean     capacity run: mixed partition/analytics jobs, ample queue
//   overload  burst pressure against a short queue and a tight memory
//             budget: admission control must shed (structured refusals),
//             never crash or OOM, and the accepted subset must still finish
//   chaos     ServiceFaultPlan (bursts/disconnects/malformed) plus per-job
//             transient comm faults: jobs recover inside their resilience
//             ladders; the daemon isolates the casualties
//
// Rows report throughput, latency percentiles of accepted jobs (p50/p95/
// p99), the shed rate, and partition-cache reuse. The paper's pitch is
// constant-memory streaming partitioning; this bench makes the service
// wrapper prove the operational half of that claim: graceful degradation
// under pressure with structured errors instead of failure.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/daemon.h"
#include "support/memory.h"

using namespace cusp;

namespace {

struct Row {
  std::string label;
  uint64_t submitted = 0;
  uint64_t succeeded = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
  uint64_t otherTerminal = 0;  // failed + cancelled
  double wallSeconds = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  uint64_t cacheHits = 0;
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::vector<service::JobSpec> makeMix(uint64_t seed, size_t numJobs,
                                      const std::vector<std::string>& graphs,
                                      bool commFaults) {
  const auto policies = core::policyCatalog();
  std::mt19937_64 rng(seed);
  std::vector<service::JobSpec> specs;
  specs.reserve(numJobs);
  for (size_t i = 0; i < numJobs; ++i) {
    service::JobSpec spec;
    spec.type = static_cast<service::JobType>(rng() % 5);
    spec.graphId = graphs[rng() % graphs.size()];
    spec.policy = policies[rng() % policies.size()];
    spec.numHosts = 4;
    spec.sourceGid = rng() % 64;
    if (commFaults && rng() % 2 == 0) {
      spec.faultPlan = std::make_shared<const comm::FaultPlan>(
          comm::randomFaultPlan(seed + i, spec.numHosts, 3, 1,
                                /*allowPermanent=*/false));
      spec.maxRecoveryAttempts = 4;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

Row drive(const std::string& label,
          const std::shared_ptr<service::Engine>& engine,
          service::DaemonOptions options,
          const std::vector<service::JobSpec>& specs) {
  Row row;
  row.label = label;
  const uint64_t hitsBefore = engine->cacheHits();
  const auto start = std::chrono::steady_clock::now();
  service::Daemon daemon(engine, std::move(options));
  std::vector<uint64_t> accepted;
  for (const auto& spec : specs) {
    ++row.submitted;
    const auto outcome = daemon.submit(spec);
    if (outcome.accepted) {
      accepted.push_back(outcome.jobId);
    } else {
      switch (outcome.error.kind) {
        case service::JobErrorKind::kShedMemory:
        case service::JobErrorKind::kShedQueueFull:
        case service::JobErrorKind::kShedDraining:
          ++row.shed;
          break;
        default:
          ++row.rejected;
          break;
      }
    }
  }
  std::vector<double> latencies;
  for (uint64_t id : accepted) {
    const service::JobResult result = daemon.wait(id);
    if (result.state == service::JobState::kSucceeded) {
      ++row.succeeded;
      latencies.push_back(result.latencySeconds);
    } else {
      ++row.otherTerminal;
    }
  }
  daemon.drain();
  row.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::sort(latencies.begin(), latencies.end());
  row.p50 = percentile(latencies, 0.50);
  row.p95 = percentile(latencies, 0.95);
  row.p99 = percentile(latencies, 0.99);
  row.cacheHits = engine->cacheHits() - hitsBefore;
  bench::recordMemoryMetrics();
  return row;
}

void printRow(const Row& r) {
  const double rate =
      r.wallSeconds > 0 ? static_cast<double>(r.succeeded) / r.wallSeconds : 0;
  std::printf("%-10s %6llu %6llu %6llu %6llu %6llu %8.2f %8.1f %8.3f %8.3f "
              "%8.3f %6llu\n",
              r.label.c_str(), (unsigned long long)r.submitted,
              (unsigned long long)r.succeeded, (unsigned long long)r.shed,
              (unsigned long long)r.rejected,
              (unsigned long long)r.otherTerminal, r.wallSeconds, rate, r.p50,
              r.p95, r.p99, (unsigned long long)r.cacheHits);
}

}  // namespace

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  bench::printHeader("Partition service under load (cuspd driver)");

  service::EngineOptions engineOptions;
  engineOptions.hostPoolSize = 16;
  engineOptions.baseConfig = bench::benchConfig();
  auto engine = std::make_shared<service::Engine>(engineOptions);
  for (const char* name : {"kron", "uk"}) {
    const graph::CsrGraph g = graph::withRandomWeights(
        bench::standIn(name, 50'000), 64, 7);
    engine->registerGraph(name, graph::GraphFile::fromCsr(g));
  }
  std::printf("graphs: kron, uk (~50k edges each); host pool %u; 4 hosts/job\n",
              engineOptions.hostPoolSize);

  std::printf("\n%-10s %6s %6s %6s %6s %6s %8s %8s %8s %8s %8s %6s\n",
              "regime", "subm", "ok", "shed", "rej", "other", "wall s",
              "jobs/s", "p50 s", "p95 s", "p99 s", "hits");

  // Clean capacity: everything admitted, everything succeeds.
  {
    service::DaemonOptions options;
    options.workers = 4;
    options.maxQueueDepth = 256;
    const Row row =
        drive("clean", engine, options, makeMix(11, 48, {"kron", "uk"}, false));
    printRow(row);
  }

  // Overload: burst arrivals against a short queue plus a deliberately
  // tight memory budget. Admission must shed with structured errors; the
  // accepted subset still finishes; the process survives.
  {
    service::DaemonOptions options;
    options.workers = 2;
    options.maxQueueDepth = 6;
    options.faultPlan = service::randomServiceFaultPlan(
        /*seed=*/23, /*numJobs=*/48, /*maxBursts=*/6, /*maxDisconnects=*/0,
        /*maxMalformed=*/0);
    support::ScopedMemoryBudget budget(48ull << 20);
    const Row row = drive("overload", engine, options,
                          makeMix(23, 48, {"kron", "uk"}, false));
    printRow(row);
    if (row.shed == 0) {
      std::printf("WARN: overload regime shed nothing — pressure knobs too "
                  "loose\n");
    }
  }

  // Chaos: service-level faults plus per-job transient comm faults.
  {
    service::DaemonOptions options;
    options.workers = 4;
    options.maxQueueDepth = 256;
    options.faultPlan = service::randomServiceFaultPlan(
        /*seed=*/31, /*numJobs=*/48, /*maxBursts=*/2, /*maxDisconnects=*/4,
        /*maxMalformed=*/3);
    const Row row =
        drive("chaos", engine, options, makeMix(31, 48, {"kron", "uk"}, true));
    printRow(row);
  }

  std::printf("\npartition cache lifetime: %llu hits / %llu misses\n",
              (unsigned long long)engine->cacheHits(),
              (unsigned long long)engine->cacheMisses());
  return 0;
}
