// Reproduces paper Table III: input (directed) graphs and their properties.
//
// Prints |V|, |E|, |E|/|V|, max out-degree and max in-degree for the five
// stand-in inputs. The paper's absolute sizes (up to 3.5B nodes / 129B
// edges) are scaled to a single-machine budget; the *shape* to check is the
// |E|/|V| ratios and the web crawls' max in-degree >> max out-degree.
#include <cstdio>

#include "bench_common.h"
#include "graph/csr_graph.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  bench::printHeader("Table III: input graphs and their properties");
  std::printf("%-10s %12s %12s %8s %14s %14s\n", "input", "|V|", "|E|",
              "|E|/|V|", "maxOutDegree", "maxInDegree");
  for (const auto& name : bench::inputNames()) {
    const auto& g = bench::standIn(name, 300'000);
    const auto stats = graph::computeStats(g);
    std::printf("%-10s %12llu %12llu %8.1f %14llu %14llu\n", name.c_str(),
                (unsigned long long)stats.numNodes,
                (unsigned long long)stats.numEdges, stats.avgOutDegree,
                (unsigned long long)stats.maxOutDegree,
                (unsigned long long)stats.maxInDegree);
  }
  return 0;
}
