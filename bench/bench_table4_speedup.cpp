// Reproduces paper Table IV: average speedup of CuSP partitioning policies
// over XtraPulp, in (a) partitioning time and (b) application execution
// time.
//
// Paper numbers for orientation: partitioning speedups EEC 22.0x, HVC 9.5x,
// CVC 11.9x, FEC 1.9x, GVC 2.2x, SVC 2.0x; application speedups around
// 0.9x-1.9x. Shapes to check: all partitioning speedups > 1 with
// ContiguousEB policies far ahead of FennelEB ones, and application
// performance roughly at parity or better.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 150'000;
  const uint32_t hosts = 8;
  const std::vector<std::string> inputs = {"kron", "gsh", "clueweb", "uk"};
  const auto series = bench::allSeries();

  bench::printHeader("Table IV: average speedup of CuSP over XtraPulp");

  // (a) partitioning-time speedups (geo-mean across inputs).
  std::vector<double> logPart(series.size(), 0.0);
  for (const auto& input : inputs) {
    const auto& g = bench::standIn(input, edges);
    double xtrapulpSeconds = 0.0;
    for (size_t s = 0; s < series.size(); ++s) {
      const auto timed = bench::partitionNamed(g, series[s], hosts);
      if (s == 0) {
        xtrapulpSeconds = timed.seconds;
      } else {
        logPart[s] += std::log(xtrapulpSeconds / timed.seconds);
      }
    }
  }

  // (b) application-time speedups via the shared app suite.
  const auto apps = bench::runAppSuite(hosts, edges, inputs);

  std::printf("\n%-24s", "");
  for (size_t s = 1; s < series.size(); ++s) {
    std::printf(" %7s", series[s].c_str());
  }
  std::printf("\n%-24s", "Partitioning Time");
  for (size_t s = 1; s < series.size(); ++s) {
    std::printf(" %6.1fx",
                std::exp(logPart[s] / static_cast<double>(inputs.size())));
  }
  std::printf("\n%-24s", "Application Execution");
  for (size_t s = 1; s < series.size(); ++s) {
    std::printf(" %6.1fx", apps.geoMeanSpeedupVsXtraPulp[s]);
  }
  std::printf("\n");
  return 0;
}
