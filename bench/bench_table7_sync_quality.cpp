// Reproduces paper Table VII: execution time of bfs / cc / pagerank / sssp
// using SVC partitions generated with different numbers of synchronization
// rounds, on clueweb12 and uk14 at the top host count.
//
// Paper shape to check: more rounds give the Fennel heuristic a fresher
// global view and can improve application time (uk14), but not universally
// (clueweb12 fluctuates) — there is a workload-dependent sweet spot.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 150'000;
  const uint32_t hosts = 16;  // paper: 128
  const std::vector<uint32_t> rounds = {1, 10, 100, 1000};
  const std::vector<std::string> apps = {"bfs", "cc", "pagerank", "sssp"};

  bench::printHeader(
      "Table VII: app execution time (seconds) with SVC partitions vs "
      "synchronization rounds");
  for (const std::string input : {"clueweb", "uk"}) {
    const graph::CsrGraph weighted =
        graph::withRandomWeights(bench::standIn(input, edges), 64, 7);
    const graph::CsrGraph symmetric = weighted.symmetrized();
    const uint64_t source = analytics::maxOutDegreeNode(weighted);
    std::printf("\n-- %s, %u hosts --\n%-10s", input.c_str(), hosts,
                "rounds");
    for (const auto& app : apps) {
      std::printf(" %9s", app.c_str());
    }
    std::printf("\n");
    for (uint32_t r : rounds) {
      core::PartitionerConfig config = bench::benchConfig();
      config.stateSyncRounds = r;
      const auto dir = bench::partitionNamed(weighted, "SVC", hosts, config);
      const auto sym = bench::partitionNamed(symmetric, "SVC", hosts, config);
      analytics::RunStats stats;
      double times[4];
      analytics::runBfs(dir.result.partitions, source, &stats,
                         bench::benchCostModel());
      times[0] = stats.seconds;
      analytics::runCc(sym.result.partitions, &stats,
                       bench::benchCostModel());
      times[1] = stats.seconds;
      analytics::PageRankParams pr;
      pr.maxIterations = 30;
      pr.tolerance = 1e-4;
      analytics::runPageRank(dir.result.partitions, pr, &stats,
                              bench::benchCostModel());
      times[2] = stats.seconds;
      analytics::runSssp(dir.result.partitions, source, &stats,
                          bench::benchCostModel());
      times[3] = stats.seconds;
      std::printf("%-10u", r);
      for (double t : times) {
        std::printf(" %9.4f", t);
      }
      std::printf("\n");
    }
  }
  return 0;
}
