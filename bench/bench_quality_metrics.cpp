// Structural quality metrics per policy (paper Section V-C discusses
// replication factor and load balance as the classic partition-quality
// metrics, while cautioning they do not always predict execution time).
//
// Prints, for every input and series: average replication factor, node and
// edge imbalance (max/avg), application-sync traffic of one BFS, and the
// number of communication-partner pairs — the structural reason CVC-style
// partitions execute faster at scale.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 150'000;
  const uint32_t hosts = 8;
  bench::printHeader("Partition quality metrics (8 hosts)");
  for (const auto& input : bench::inputNames()) {
    const auto& g = bench::standIn(input, edges);
    const uint64_t source = analytics::maxOutDegreeNode(g);
    std::printf("\n-- %s --\n%-10s %11s %9s %9s %10s %9s\n", input.c_str(),
                "policy", "replication", "nodeImb", "edgeImb", "bfsSyncKB",
                "partners");
    for (const auto& series : bench::allSeries()) {
      const auto timed = bench::partitionNamed(g, series, hosts);
      const auto quality = core::computeQuality(timed.result.partitions);
      analytics::RunStats stats;
      analytics::runBfs(timed.result.partitions, source, &stats,
                        bench::benchCostModel());
      uint64_t partners = 0;
      for (const auto& part : timed.result.partitions) {
        for (uint32_t h = 0; h < hosts; ++h) {
          if (h != part.hostId && (!part.mirrorsOnHost[h].empty() ||
                                   !part.myMirrorsByOwner[h].empty())) {
            ++partners;
          }
        }
      }
      std::printf("%-10s %11.2f %9.2f %9.2f %10.1f %9llu\n", series.c_str(),
                  quality.avgReplicationFactor, quality.nodeImbalance,
                  quality.edgeImbalance, stats.syncBytes / 1024.0,
                  (unsigned long long)partners);
    }
  }
  return 0;
}
