// Split-brain bench: what a network partition costs, by timing and by
// repair mode.
//
//  (a) Partition phase sweep — a rack cut isolates 2 of 8 hosts at the
//      entry of phase P, under the quorum rule. With heal the majority
//      fences the minority, the cut is repaired, and the full cluster
//      retries from the last common checkpoint (no capacity lost); without
//      heal the fenced minority is evicted and the survivors re-partition
//      on 6 hosts (Path B). Expected: the healed rerun costs roughly the
//      phases it replays (later cuts waste more), while the unhealed rerun
//      pays a full 6-host re-partition regardless of when the cut lands.
//  (b) Rejoin path — when the checkpoint store already holds a complete
//      phase-5 state set (a finished prior run), heal-time rejoin skips
//      the pipeline and reloads everyone's final state in one
//      redistribution round. That is the floor for rejoin cost; the
//      pipeline-resume rejoin from (a) and a full restart bound it from
//      above.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>

#include <unistd.h>

#include "bench_common.h"
#include "comm/fault.h"
#include "core/dist_graph.h"

namespace {

std::string makeCheckpointDir() {
  char tmpl[] = "/tmp/cusp_bench_splitbrain_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return dir;
}

void cleanupCheckpointDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // replicas + epoch subdirs too
}

}  // namespace

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 100'000;
  const uint32_t hosts = 8;
  const std::string input = "kron";
  const auto& g = bench::standIn(input, edges);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const auto policy = bench::benchPolicy("EEC");

  core::PartitionerConfig config = bench::benchConfig();
  config.numHosts = hosts;
  const auto baseline = core::partitionGraph(file, policy, config);
  std::printf("fault-free total (%u hosts): %.4f s\n", hosts,
              baseline.totalSeconds);

  // 6 | 2 split: hosts 6 and 7 are cut off from the majority.
  const std::vector<uint8_t> groups = {0, 0, 0, 0, 0, 0, 1, 1};

  bench::printHeader("(a) Partition phase sweep, " + input +
                     ", EEC, 8 hosts, cut {6,7}");
  std::printf("%-8s %6s %9s %8s %9s %7s %12s %8s\n", "cut", "heal",
              "attempts", "fenced", "rejoined", "hosts", "rerun (s)",
              "vs base");
  double pipelineRejoinSeconds = -1.0;  // kept for section (b)
  for (uint32_t phase = 1; phase <= 5; ++phase) {
    for (const bool heals : {true, false}) {
      auto plan = std::make_shared<comm::FaultPlan>();
      plan->partitions.push_back({groups, phase, heals});

      core::PartitionerConfig run = config;
      run.resilience.faultPlan = plan;
      run.resilience.recvTimeoutSeconds = 30.0;
      run.resilience.degradedMode = true;
      run.resilience.buddyReplication = true;
      run.resilience.enableCheckpoints = true;
      const std::string dir = makeCheckpointDir();
      run.resilience.checkpointDir = dir;

      core::RecoveryReport report;
      const auto recovered =
          core::partitionGraphResilient(file, policy, run, &report);
      cleanupCheckpointDir(dir);

      const uint32_t expectedHosts = heals ? hosts : hosts - 2;
      if (recovered.partitions.size() != expectedHosts) {
        std::fprintf(stderr, "phase %u heal=%d: expected %u partitions\n",
                     phase, heals ? 1 : 0, expectedHosts);
        return 1;
      }
      if (heals && phase == 3) {
        pipelineRejoinSeconds = recovered.totalSeconds;
      }
      std::printf("phase %u %6s %9u %8zu %9zu %7u %12.4f %7.2fx\n", phase,
                  heals ? "yes" : "no", report.attempts,
                  report.fencedHosts.size(), report.rejoinedHosts.size(),
                  report.finalNumHosts, recovered.totalSeconds,
                  recovered.totalSeconds / baseline.totalSeconds);
    }
  }

  bench::printHeader("(b) Heal-time rejoin path, " + input +
                     ", EEC, 8 hosts");
  {
    // Warm store: a clean checkpointed run leaves a complete phase-5 set.
    const std::string dir = makeCheckpointDir();
    core::PartitionerConfig warm = config;
    warm.resilience.degradedMode = true;
    warm.resilience.buddyReplication = true;
    warm.resilience.enableCheckpoints = true;
    warm.resilience.checkpointDir = dir;
    core::partitionGraphResilient(file, policy, warm);

    // Phase-0 cut with heal over the warm store: the failed agreement
    // round resolves, and rejoin reloads phase-5 state in one
    // redistribution round instead of replaying the pipeline.
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->partitions.push_back({groups, /*phase=*/0, /*heals=*/true});
    core::PartitionerConfig run = warm;
    run.resilience.faultPlan = plan;
    run.resilience.recvTimeoutSeconds = 30.0;
    core::RecoveryReport report;
    const auto rejoined =
        core::partitionGraphResilient(file, policy, run, &report);
    cleanupCheckpointDir(dir);
    if (rejoined.partitions.size() != hosts ||
        report.rejoinedHosts.size() != 2) {
      std::fprintf(stderr, "redistribution rejoin did not run full-width\n");
      return 1;
    }

    std::printf("%-34s %12s %9s\n", "rejoin path", "rerun (s)", "vs base");
    std::printf("%-34s %12.4f %8.2fx\n",
                "redistribution (complete p5 set)", rejoined.totalSeconds,
                rejoined.totalSeconds / baseline.totalSeconds);
    if (pipelineRejoinSeconds >= 0) {
      std::printf("%-34s %12.4f %8.2fx\n", "pipeline resume (phase-3 cut)",
                  pipelineRejoinSeconds,
                  pipelineRejoinSeconds / baseline.totalSeconds);
    }
    std::printf("%-34s %12.4f %8.2fx\n", "full restart", baseline.totalSeconds,
                1.0);
  }
  return 0;
}
