// Memory-governor bench: partitions the kron stand-in at 10x the Fig. 3
// scale (2.5M edges) three ways — unbudgeted, under a budget smaller than
// the graph's in-memory edge footprint (forcing bounded-window streaming),
// and budgeted with a spill directory (streaming + compressed spill) — and
// reports wall time, governor accounting (peak/spill bytes), process peak
// RSS, and verifies all three produce bit-identical partitions.
//
// The headline checks:
//  * the budgeted runs finish under a cap ~4x smaller than the resident
//    host windows would need (the final partition arrays are overdraft
//    state, so accounted peak still includes them — the cap bounds the
//    refusable working state, which is what streaming shrinks);
//  * partitions are byte-identical to the unbudgeted run (streaming walks
//    chunks in the same ascending node order the resident path uses);
//  * unbudgeted overhead of the governor plumbing is one relaxed atomic
//    load per seam — compare the "none" row here with bench_fig3.
//
// --metrics-out=mem.json additionally dumps the cusp.mem.* gauge trail.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/obs.h"
#include "support/memory.h"

namespace {

using namespace cusp;

// Bit-identical partition comparison: topology, id maps, master metadata.
bool samePartitions(const std::vector<core::DistGraph>& a,
                    const std::vector<core::DistGraph>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t h = 0; h < a.size(); ++h) {
    if (!(a[h].graph == b[h].graph) || a[h].numMasters != b[h].numMasters ||
        a[h].localToGlobal != b[h].localToGlobal ||
        a[h].masterHostOfLocal != b[h].masterHostOfLocal) {
      return false;
    }
  }
  return true;
}

struct Row {
  std::string label;
  double seconds = 0.0;
  support::MemoryBudgetStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cusp;
  bench::BenchMain benchMain(argc, argv);
  const uint64_t edges = 2'500'000;  // 10x the Fig. 3 inputs
  const uint32_t hosts = 4;
  bench::printHeader("Memory governor: budgeted partitioning at 10x scale");

  const auto& g = bench::standIn("kron", edges);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const uint64_t edgeFootprint = g.numEdges() * sizeof(uint64_t);
  // Smaller than the resident host windows combined: forces the refusable
  // window reservations to fail and the reading phase to stream.
  const uint64_t cap = edgeFootprint / 4;
  std::printf("input: kron, %llu nodes, %llu edges "
              "(%.1f MB resident edge footprint; cap %.1f MB)\n",
              (unsigned long long)g.numNodes(),
              (unsigned long long)g.numEdges(),
              edgeFootprint / (1024.0 * 1024.0), cap / (1024.0 * 1024.0));

  const std::string spillDir =
      (std::filesystem::temp_directory_path() / "cusp_bench_mem_spill")
          .string();
  std::filesystem::remove_all(spillDir);

  core::PartitionerConfig config;
  config.numHosts = hosts;
  config.stateSyncRounds = 10;

  std::vector<Row> rows;
  std::vector<core::DistGraph> baseline;
  const auto policy = core::makePolicy("EEC");

  for (const char* modeName : {"none", "budget", "budget+spill"}) {
    const std::string mode = modeName;
    core::PartitionerConfig c = config;
    std::unique_ptr<support::ScopedMemoryBudget> scope;
    if (mode != "none") {
      scope = std::make_unique<support::ScopedMemoryBudget>(cap);
    }
    if (mode == "budget+spill") {
      c.spillDir = spillDir;
      c.forceStreamingWindows = true;  // spill only applies when streaming
    }
    const auto start = std::chrono::steady_clock::now();
    auto result = core::partitionGraph(file, policy, c);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    Row row;
    row.label = mode;
    row.seconds = wall;
    if (scope) {
      row.stats = scope->stats();
    }
    rows.push_back(row);
    if (mode == "none") {
      baseline = std::move(result.partitions);
    } else if (!samePartitions(baseline, result.partitions)) {
      std::printf("FAIL: %s partitions differ from unbudgeted run\n",
                  mode.c_str());
      return 1;
    }
  }

  std::printf("\n%-14s %9s %12s %12s %12s %9s\n", "mode", "wall s",
              "peak MB", "spill MB", "rss MB", "refusals");
  for (const auto& row : rows) {
    std::printf("%-14s %9.3f %12.1f %12.1f %12.1f %9llu\n", row.label.c_str(),
                row.seconds, row.stats.peakBytes / (1024.0 * 1024.0),
                row.stats.spillBytes / (1024.0 * 1024.0),
                bench::peakRssBytes() / (1024.0 * 1024.0),
                (unsigned long long)row.stats.reserveFailures);
  }
  std::printf("\nall budgeted partitions bit-identical to the unbudgeted "
              "run\n");
  std::filesystem::remove_all(spillDir);
  bench::recordMemoryMetrics();
  return 0;
}
