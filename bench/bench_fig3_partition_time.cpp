// Reproduces paper Fig. 3: partitioning time for XtraPulp and the six CuSP
// policies, per input graph, at three cluster sizes.
//
// Paper shapes to check (Section V-B):
//  * every CuSP policy partitions faster than XtraPulp (avg 5.9x; CVC 11.9x);
//  * EEC is the fastest CuSP policy (no communication; avg 4.7x vs others);
//  * FennelEB policies (FEC/GVC/SVC) are slower than ContiguousEB ones
//    (EEC/HVC/CVC) because of the master-assignment phase.
//
// --metrics-out=bench.json dumps the run's counters (per-tag bytes and
// messages across every partitioning) and the phase timeline.
#include <cstdio>

#include "bench_common.h"
#include "obs/obs.h"

int main(int argc, char** argv) {
  using namespace cusp;
  bench::BenchMain benchMain(argc, argv);
  const uint64_t edges = 250'000;
  const std::vector<uint32_t> hostCounts = {4, 8, 16};  // paper: 32/64/128
  bench::printHeader("Fig. 3: partitioning time (seconds)");
  const auto series = bench::allSeries();

  for (uint32_t hosts : hostCounts) {
    std::printf("\n-- %u hosts --\n%-10s", hosts, "input");
    for (const auto& s : series) {
      std::printf(" %9s", s.c_str());
    }
    std::printf("\n");
    // Geometric-mean speedup of each CuSP policy over XtraPulp.
    std::vector<double> logSpeedup(series.size(), 0.0);
    for (const auto& input : bench::inputNames()) {
      const auto& g = bench::standIn(input, edges);
      std::printf("%-10s", input.c_str());
      double xtrapulpSeconds = 0.0;
      for (size_t i = 0; i < series.size(); ++i) {
        const auto timed = bench::partitionNamed(g, series[i], hosts);
        if (i == 0) {
          xtrapulpSeconds = timed.seconds;
        } else {
          logSpeedup[i] += std::log(xtrapulpSeconds / timed.seconds);
        }
        std::printf(" %9.3f", timed.seconds);
      }
      std::printf("\n");
    }
    std::printf("%-10s %9s", "speedup", "1.00x");
    for (size_t i = 1; i < series.size(); ++i) {
      std::printf(" %8.2fx",
                  std::exp(logSpeedup[i] / bench::inputNames().size()));
    }
    std::printf("   (geo-mean vs XtraPulp)\n");
  }
  return 0;
}
