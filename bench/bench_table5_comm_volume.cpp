// Reproduces paper Table V: data volume sent in the edge-assignment and
// graph-construction phases of CuSP, for CVC and HVC at the top host count.
//
// Paper shape to check: HVC communicates as much or (on the web crawls) up
// to an order of magnitude more data than CVC in both phases, because CVC
// only exchanges edges within adjacency-matrix rows/columns while HVC may
// ship to every host.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 250'000;
  const uint32_t hosts = 16;  // paper: 128
  bench::printHeader(
      "Table V: data volume (MB) in edge assignment and graph construction");
  std::printf("%-10s %-8s %16s %18s\n", "input", "policy", "assignment MB",
              "construction MB");
  for (const auto& input : bench::inputNames()) {
    const auto& g = bench::standIn(input, edges);
    for (const std::string policy : {"CVC", "HVC"}) {
      const auto timed = bench::partitionNamed(g, policy, hosts);
      const auto& v = timed.result.volume;
      const double assignment =
          (v.bytes[comm::kTagEdgeCounts] + v.bytes[comm::kTagMirrorFlags]) /
          (1024.0 * 1024.0);
      const double construction =
          v.bytes[comm::kTagEdgeBatch] / (1024.0 * 1024.0);
      std::printf("%-10s %-8s %16.2f %18.2f\n", input.c_str(),
                  policy.c_str(), assignment, construction);
    }
  }
  return 0;
}
