// Chaos pipeline bench: what the resilience stack costs.
//
//  (a) CRC framing overhead — fault-free partition + BFS wall time with
//      framing off vs on (no injector; setCrcFraming forced), plus the
//      footer bytes as a fraction of payload bytes. Expected: per-message
//      cost of one CRC32 pass over the payload, low single-digit percent
//      at partitioner message sizes.
//  (b) Superstep checkpoint cadence — resilient PageRank wall time under a
//      mid-run transient crash, sweeping checkpointInterval (1/2/4/8 and
//      checkpoints off). Finer cadence pays more per-superstep I/O but
//      rolls back less work; "off" restarts the whole run.
//  (c) Full chaos pipeline — partition -> BFS under the test suite's mixed
//      schedule (drops, duplicates, delays, corruptions, one transient and
//      one permanent crash) vs the clean pipeline, end to end.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "analytics/reference.h"
#include "analytics/resilient.h"
#include "bench_common.h"
#include "comm/fault.h"
#include "support/random.h"
#include "support/timer.h"

namespace {

using namespace cusp;

std::string makeTempDir() {
  char tmpl[] = "/tmp/cusp_bench_chaos_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return dir;
}

void removeTree(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// Same noise generator as tests/test_chaos_pipeline.cpp.
void addMessageNoise(comm::FaultPlan& plan, uint64_t seed, uint64_t count) {
  support::Rng rng(seed * 0x2545F4914F6CDD1Dull + 11);
  for (uint64_t i = 0; i < count; ++i) {
    comm::MessageFault fault;
    fault.occurrence = rng.nextBounded(120);
    fault.repeat = 1 + static_cast<uint32_t>(rng.nextBounded(2));
    switch (rng.nextBounded(4)) {
      case 0: fault.action = comm::FaultAction::kDrop; break;
      case 1: fault.action = comm::FaultAction::kDuplicate; break;
      case 2: fault.action = comm::FaultAction::kCorrupt; break;
      default:
        fault.action = comm::FaultAction::kDelay;
        fault.delayScans = 2 + static_cast<uint32_t>(rng.nextBounded(4));
        break;
    }
    plan.messageFaults.push_back(fault);
  }
}

}  // namespace

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  const uint32_t hosts = 8;
  const uint64_t edges = 250'000;
  const auto& g = bench::standIn("kron", edges);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);
  const uint64_t source = analytics::maxOutDegreeNode(g);

  // --- (a) CRC framing overhead, fault-free -------------------------------
  bench::printHeader("(a) CRC framing overhead, fault-free, kron, 8 hosts");
  std::printf("%-8s %12s %12s %10s %14s\n", "framing", "part (s)", "bfs (s)",
              "overhead", "footer/payload");
  // Framing follows the injector: a plan whose single fault never matches
  // attaches an injector (framing on) without perturbing any message, so
  // the on/off delta isolates the CRC cost. Both legs go through the
  // resilient drivers so the wrapper cost cancels.
  auto neverMatchingPlan = [] {
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->messageFaults.push_back({comm::kAnyHost, comm::kAnyHost,
                                   comm::kAnyTag,
                                   /*occurrence=*/UINT64_MAX});
    return plan;
  };
  double plainPart = 0.0;
  double plainBfs = 0.0;
  const int kReps = 5;  // best-of-N: the runs are short, scheduling noise
                        // at this scale exceeds the CRC cost otherwise
  for (const bool framed : {false, true}) {
    core::PartitionerConfig config = bench::benchConfig();
    config.numHosts = hosts;
    if (framed) {
      config.resilience.faultPlan = neverMatchingPlan();
    }
    double partSeconds = 1e30;
    double bfsSeconds = 1e30;
    uint64_t framingBytes = 0;
    uint64_t totalBytes = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      support::Timer partTimer;
      core::RecoveryReport partReport;
      const auto result = core::partitionGraphResilient(
          file, bench::benchPolicy("EEC"), config, &partReport);
      partSeconds = std::min(partSeconds, partTimer.elapsedSeconds());
      framingBytes = result.volume.framingBytes;
      totalBytes = result.volume.totalBytes();

      analytics::ResilienceOptions options;
      options.costModel = bench::benchCostModel();
      if (framed) {
        options.faultPlan = neverMatchingPlan();
      }
      support::Timer bfsTimer;
      const auto dist =
          analytics::runBfsResilient(result.partitions, source, options);
      bfsSeconds = std::min(bfsSeconds, bfsTimer.elapsedSeconds());
      (void)dist;
    }

    if (!framed) {
      plainPart = partSeconds;
      plainBfs = bfsSeconds;
      std::printf("%-8s %12.3f %12.3f %10s %14s\n", "off", partSeconds,
                  bfsSeconds, "-", "-");
    } else {
      const double overhead =
          100.0 * ((partSeconds + bfsSeconds) / (plainPart + plainBfs) - 1.0);
      const double footerFrac =
          totalBytes > 0 ? 100.0 * static_cast<double>(framingBytes) /
                               static_cast<double>(totalBytes)
                         : 0.0;
      std::printf("%-8s %12.3f %12.3f %9.1f%% %13.2f%%\n", "on", partSeconds,
                  bfsSeconds, overhead, footerFrac);
    }
  }

  // --- (b) checkpoint cadence under a transient crash ---------------------
  bench::printHeader(
      "(b) Superstep checkpoint cadence, pagerank + transient crash");
  std::printf("%-10s %12s %10s %12s %10s\n", "interval", "wall (s)",
              "ckpts", "resumed@", "attempts");
  analytics::PageRankParams params;
  params.maxIterations = 30;
  params.tolerance = 0.0;  // run all 30 supersteps: cadence dominates
  core::PartitionerConfig config = bench::benchConfig();
  config.numHosts = hosts;
  const auto parts =
      core::partitionGraph(file, bench::benchPolicy("EEC"), config);
  for (const uint32_t interval : {0u, 1u, 2u, 4u, 8u}) {
    const std::string dir = makeTempDir();
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->crashes.push_back({/*host=*/1, /*phase=*/0,
                             /*opsIntoPhase=*/500, /*permanent=*/false});
    analytics::ResilienceOptions options;
    options.faultPlan = plan;
    options.recvTimeoutSeconds = 30.0;
    if (interval > 0) {
      options.checkpointDir = dir;
      options.enableCheckpoints = true;
      options.checkpointInterval = interval;
    }
    analytics::ResilienceReport report;
    support::Timer timer;
    const auto ranks = analytics::runPageRankResilient(parts.partitions,
                                                       params, options,
                                                       &report);
    const double seconds = timer.elapsedSeconds();
    (void)ranks;
    std::printf("%-10s %12.3f %10u %12u %10u\n",
                interval == 0 ? "off" : std::to_string(interval).c_str(),
                seconds, report.checkpointsSaved,
                report.resumedFromSuperstep, report.attempts);
    removeTree(dir);
  }

  // --- (c) full chaos pipeline vs clean -----------------------------------
  bench::printHeader("(c) Full pipeline: clean vs chaos schedule");
  std::printf("%-8s %12s %12s %14s %10s\n", "mode", "part (s)", "bfs (s)",
              "corrupt rec.", "evicted");
  {
    support::Timer partTimer;
    const auto clean =
        core::partitionGraph(file, bench::benchPolicy("HVC"), config);
    const double partSeconds = partTimer.elapsedSeconds();
    support::Timer bfsTimer;
    analytics::ResilienceOptions options;
    options.costModel = bench::benchCostModel();
    const auto dist =
        analytics::runBfsResilient(clean.partitions, source, options);
    (void)dist;
    std::printf("%-8s %12.3f %12.3f %14s %10s\n", "clean", partSeconds,
                bfsTimer.elapsedSeconds(), "-", "-");
  }
  {
    const std::string partDir = makeTempDir();
    const std::string bfsDir = makeTempDir();
    core::PartitionerConfig chaosConfig = config;
    auto partPlan = std::make_shared<comm::FaultPlan>();
    addMessageNoise(*partPlan, /*seed=*/7, /*count=*/10);
    partPlan->crashes.push_back({/*host=*/1, /*phase=*/3,
                                 /*opsIntoPhase=*/0, /*permanent=*/false});
    chaosConfig.resilience.faultPlan = partPlan;
    chaosConfig.resilience.checkpointDir = partDir;
    chaosConfig.resilience.enableCheckpoints = true;
    chaosConfig.resilience.recvTimeoutSeconds = 30.0;

    support::Timer partTimer;
    core::RecoveryReport partReport;
    const auto result = core::partitionGraphResilient(
        file, bench::benchPolicy("HVC"), chaosConfig, &partReport);
    const double partSeconds = partTimer.elapsedSeconds();

    auto bfsPlan = std::make_shared<comm::FaultPlan>();
    addMessageNoise(*bfsPlan, /*seed=*/8, /*count=*/10);
    bfsPlan->crashes.push_back({/*host=*/2, /*phase=*/0,
                                /*opsIntoPhase=*/30, /*permanent=*/true});
    analytics::ResilienceOptions options;
    options.costModel = bench::benchCostModel();
    options.faultPlan = bfsPlan;
    options.checkpointDir = bfsDir;
    options.enableCheckpoints = true;
    options.checkpointInterval = 2;
    options.buddyReplication = true;
    options.degradedMode = true;
    options.recvTimeoutSeconds = 30.0;

    support::Timer bfsTimer;
    analytics::ResilienceReport report;
    const auto dist = analytics::runBfsResilient(result.partitions, source,
                                                 options, &report);
    const double bfsSeconds = bfsTimer.elapsedSeconds();

    const bool exact = dist == analytics::bfsReference(g, source);
    std::printf("%-8s %12.3f %12.3f %14llu %10zu\n", "chaos", partSeconds,
                bfsSeconds,
                static_cast<unsigned long long>(
                    result.volume.corruptionsRecovered +
                    report.corruptionsRecovered),
                report.evictions.size());
    std::printf("chaos BFS output vs single-host reference: %s\n",
                exact ? "EXACT MATCH" : "MISMATCH");
    removeTree(partDir);
    removeTree(bfsDir);
  }
  return 0;
}
