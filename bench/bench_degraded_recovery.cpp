// Degraded-recovery bench: what permanent host loss costs.
//
//  (a) Buddy-replication overhead — fault-free partitioning time with plain
//      per-phase checkpoints vs checkpoints + buddy replicas. Expected:
//      roughly doubles the checkpoint I/O (every payload is written twice),
//      still a small slice of the total.
//  (b) Degraded completion vs full restart — one of 8 hosts is permanently
//      lost at the entry of phase P. Degraded mode evicts it and finishes
//      on 7 hosts (re-reading and splitting the dead host's edge window,
//      Path B); the alternative is the PR-1 story: wait for a replacement
//      and restart the whole job on 8 hosts. Makespan for both is the
//      wasted pre-crash prefix (the baseline's phases 1..P-1) plus the
//      completion run. Expected: roughly a wash in simulated time — the
//      degraded re-run is a full pipeline over 7 hosts whose per-host read
//      windows are LARGER, which at disk-bound stand-in scale costs about
//      what the 8-host restart does. The comparison charitably gives the
//      restart an instant replacement machine; degraded mode's real win in
//      this regime is needing none.
//  (b2) Path A vs Path B vs restart — when the crash lands in the final
//      barrier of phase 5, every host (including the dying one, via its
//      buddy replica) has durable phase-5 state, and recovery collapses to
//      one redistribution round: no re-reading, no re-partition. This is
//      where degraded completion also wins wall time outright.
//  (c) Quality of the shrunk result — replication factor and edge balance
//      of the degraded 7-host partitions vs the fault-free 8-host baseline
//      and vs a clean 7-host run. Degraded Path B output IS a clean run
//      over the survivors, so (degraded, clean 7) must match exactly; the
//      8 -> 7 delta is the price of losing a machine, not of the mechanism.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>

#include <unistd.h>

#include "bench_common.h"
#include "comm/fault.h"
#include "core/checkpoint.h"
#include "core/dist_graph.h"

namespace {

const char* const kPhaseNames[5] = {"Graph Reading", "Master Assignment",
                                    "Edge Assignment", "Graph Allocation",
                                    "Graph Construction"};

std::string makeCheckpointDir() {
  char tmpl[] = "/tmp/cusp_bench_degraded_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return dir;
}

void cleanupCheckpointDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);  // replicas + epoch subdirs too
}

}  // namespace

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 250'000;
  const uint32_t hosts = 8;
  const std::string input = "kron";
  const auto& g = bench::standIn(input, edges);
  const graph::GraphFile file = graph::GraphFile::fromCsr(g);

  bench::printHeader("(a) Buddy-replication overhead, fault-free, " + input +
                     ", 8 hosts");
  std::printf("%-8s %14s %12s %12s %10s\n", "policy", "no ckpt (s)",
              "ckpt (s)", "+buddy (s)", "vs ckpt");
  for (const std::string policyName : {"EEC", "HVC", "CVC"}) {
    const auto policy = bench::benchPolicy(policyName);
    core::PartitionerConfig config = bench::benchConfig();
    config.numHosts = hosts;
    const double plain =
        core::partitionGraph(file, policy, config).totalSeconds;

    std::string dir = makeCheckpointDir();
    config.resilience.checkpointDir = dir;
    config.resilience.enableCheckpoints = true;
    const double checkpointed =
        core::partitionGraph(file, policy, config).totalSeconds;
    cleanupCheckpointDir(dir);

    dir = makeCheckpointDir();
    config.resilience.checkpointDir = dir;
    config.resilience.buddyReplication = true;
    const double replicated =
        core::partitionGraph(file, policy, config).totalSeconds;
    cleanupCheckpointDir(dir);

    std::printf("%-8s %14.4f %12.4f %12.4f %9.1f%%\n", policyName.c_str(),
                plain, checkpointed, replicated,
                100.0 * (replicated - checkpointed) / checkpointed);
  }

  bench::printHeader(
      "(b) Degraded completion vs full restart after permanent loss, " +
      input + ", HVC, 8 hosts");
  const auto policy = bench::benchPolicy("HVC");
  core::PartitionerConfig config = bench::benchConfig();
  config.numHosts = hosts;
  const auto baseline8 = core::partitionGraph(file, policy, config);

  double prefix[6] = {0.0};
  for (uint32_t p = 1; p <= 5; ++p) {
    prefix[p] = prefix[p - 1] + baseline8.phaseTimes.get(kPhaseNames[p - 1]);
  }
  std::printf("fault-free total (8 hosts): %.4f s\n\n",
              baseline8.totalSeconds);
  std::printf("%-8s %12s %12s %14s %14s %8s\n", "crash", "rerun (s)",
              "re-read", "degraded (s)", "restart (s)", "ratio");

  core::PartitionResult degraded;  // kept for section (c): last crash phase
  for (uint32_t crashPhase = 1; crashPhase <= 5; ++crashPhase) {
    auto plan = std::make_shared<comm::FaultPlan>();
    plan->crashes.push_back(
        {/*host=*/1, crashPhase, /*opsIntoPhase=*/0, /*permanent=*/true});

    core::PartitionerConfig run = config;
    run.resilience.faultPlan = plan;
    run.resilience.recvTimeoutSeconds = 30.0;
    run.resilience.degradedMode = true;
    run.resilience.buddyReplication = true;
    run.resilience.enableCheckpoints = true;
    const std::string dir = makeCheckpointDir();
    run.resilience.checkpointDir = dir;

    core::RecoveryReport report;
    const auto recovered =
        core::partitionGraphResilient(file, policy, run, &report);
    cleanupCheckpointDir(dir);
    if (recovered.partitions.size() != hosts - 1) {
      std::fprintf(stderr, "expected a degraded 7-host result\n");
      return 1;
    }

    // Both stories waste the same pre-crash prefix; they differ in the
    // completion run: the degraded re-run on the 7 survivors vs a full
    // fresh 8-host run on a replaced machine (charitably assuming the
    // replacement is available immediately).
    const double degradedMakespan =
        prefix[crashPhase - 1] + recovered.totalSeconds;
    const double restartMakespan =
        prefix[crashPhase - 1] + baseline8.totalSeconds;
    std::printf("phase %u  %12.4f %11zuK %14.4f %14.4f %8.2fx\n", crashPhase,
                recovered.totalSeconds,
                static_cast<size_t>(report.bytesReRead / 1024),
                degradedMakespan, restartMakespan,
                restartMakespan / degradedMakespan);
    degraded = recovered;
  }

  bench::printHeader(
      "(b2) Path A (checkpoint redistribution) vs Path B vs restart, " +
      input + " @ 50K edges, EEC, 4 hosts");
  {
    // Small enough that scanning for the crash crossing that lands in the
    // phase-5 barrier (after every host checkpointed) stays cheap.
    const uint64_t smallEdges = 50'000;
    const uint32_t smallHosts = 4;
    const auto& sg = bench::standIn(input, smallEdges);
    const graph::GraphFile sfile = graph::GraphFile::fromCsr(sg);
    const auto spolicy = bench::benchPolicy("EEC");
    core::PartitionerConfig sconfig = bench::benchConfig();
    sconfig.numHosts = smallHosts;
    const auto sbaseline = core::partitionGraph(sfile, spolicy, sconfig);

    core::PartitionerConfig run = sconfig;
    run.resilience.recvTimeoutSeconds = 30.0;
    run.resilience.degradedMode = true;
    run.resilience.buddyReplication = true;
    run.resilience.enableCheckpoints = true;

    // Scan host 0's phase-5 crossings; keep the LAST run that triggered
    // Path A (its final barrier send — by then every survivor's token,
    // sent after the phase-5 checkpoint write, has arrived). Crossing 0 is
    // the phase-entry fault point, BEFORE host 0's checkpoint write: its
    // replica never materializes and recovery falls back to Path B.
    double pathASeconds = -1.0;
    double pathBSeconds = -1.0;
    for (uint64_t ops = 0; ops < 4000; ++ops) {
      auto plan = std::make_shared<comm::FaultPlan>();
      plan->crashes.push_back(
          {/*host=*/0, /*phase=*/5, ops, /*permanent=*/true});
      run.resilience.faultPlan = plan;
      const std::string dir = makeCheckpointDir();
      run.resilience.checkpointDir = dir;
      core::RecoveryReport report;
      const auto recovered =
          core::partitionGraphResilient(sfile, spolicy, run, &report);
      cleanupCheckpointDir(dir);
      if (report.evictions.empty()) {
        break;  // scanned past host 0's last crossing: crash never fired
      }
      if (report.evictions[0].redistributed) {
        pathASeconds = recovered.totalSeconds;
      } else {
        pathBSeconds = recovered.totalSeconds;
      }
    }
    if (pathASeconds < 0 || pathBSeconds < 0) {
      std::fprintf(stderr, "phase-5 crossing scan found no Path A/B split\n");
      return 1;
    }
    std::printf("fault-free total (4 hosts): %.4f s\n\n",
                sbaseline.totalSeconds);
    std::printf("%-28s %14s %14s\n", "completion after p5 loss",
                "rerun (s)", "vs restart");
    std::printf("%-28s %14.4f %13.2fx\n", "Path A (redistribute)",
                pathASeconds, sbaseline.totalSeconds / pathASeconds);
    std::printf("%-28s %14.4f %13.2fx\n", "Path B (re-partition)",
                pathBSeconds, sbaseline.totalSeconds / pathBSeconds);
    std::printf("%-28s %14.4f %13.2fx\n", "full restart (replacement)",
                sbaseline.totalSeconds, 1.0);
  }

  bench::printHeader("(c) Partition quality after degradation, " + input +
                     ", HVC");
  core::PartitionerConfig seven = config;
  seven.numHosts = hosts - 1;
  const auto clean7 = core::partitionGraph(file, policy, seven);
  std::printf("%-22s %8s %12s %12s %12s\n", "partitions", "hosts",
              "repl.factor", "node imbal", "edge imbal");
  struct Row {
    const char* name;
    const core::PartitionResult* result;
  };
  const Row rows[] = {{"fault-free 8-host", &baseline8},
                      {"degraded 7-host", &degraded},
                      {"clean 7-host", &clean7}};
  for (const Row& row : rows) {
    const auto q = core::computeQuality(row.result->partitions);
    std::printf("%-22s %8zu %12.4f %12.4f %12.4f\n", row.name,
                row.result->partitions.size(), q.avgReplicationFactor,
                q.nodeImbalance, q.edgeImbalance);
  }
  return 0;
}
