// Microbenchmarks of the substrate primitives CuSP's performance rests on:
// parallel loops, prefix sums, the concurrent bitset, serialization, and
// the message-passing runtime (including the buffered-vs-immediate send
// ablation at the primitive level).
#include <benchmark/benchmark.h>

#include <numeric>

#include "comm/network.h"
#include "graph/generators.h"
#include "support/bitset.h"
#include "support/prefix_sum.h"
#include "support/serialize.h"
#include "support/threading.h"

namespace {

using namespace cusp;

void BM_ParallelFor(benchmark::State& state) {
  const uint64_t n = 1 << 16;
  const unsigned threads = static_cast<unsigned>(state.range(0));
  std::vector<uint64_t> data(n, 1);
  for (auto _ : state) {
    std::atomic<uint64_t> sum{0};
    support::parallelFor(0, n, [&](uint64_t i) { sum.fetch_add(data[i]); },
                         threads);
    benchmark::DoNotOptimize(sum.load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ParallelFor)->Arg(1)->Arg(2)->Arg(4);

void BM_PrefixSumSequential(benchmark::State& state) {
  std::vector<uint64_t> in(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto out = support::exclusivePrefixSum(in);
    benchmark::DoNotOptimize(out.back());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrefixSumSequential)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_PrefixSumParallel(benchmark::State& state) {
  std::vector<uint64_t> in(1 << 20, 3);
  const unsigned threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto out = support::parallelExclusivePrefixSum(in, threads);
    benchmark::DoNotOptimize(out.back());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) << 20);
}
BENCHMARK(BM_PrefixSumParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_BitsetSetCollect(benchmark::State& state) {
  const uint64_t n = 1 << 18;
  for (auto _ : state) {
    support::DynamicBitset bits(n);
    for (uint64_t i = 0; i < n; i += 5) {
      bits.set(i);
    }
    std::vector<uint64_t> out;
    bits.collectSetBits(out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_BitsetSetCollect);

void BM_SerializeEdgeBatch(benchmark::State& state) {
  std::vector<uint64_t> dsts(static_cast<size_t>(state.range(0)));
  std::iota(dsts.begin(), dsts.end(), 0);
  for (auto _ : state) {
    support::SendBuffer buf;
    support::serializeAll(buf, uint64_t{42}, dsts);
    benchmark::DoNotOptimize(buf.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_SerializeEdgeBatch)->Arg(16)->Arg(256)->Arg(4096);

void BM_NetworkPingPong(benchmark::State& state) {
  comm::Network net(2);
  for (auto _ : state) {
    std::thread peer([&] {
      auto msg = net.recv(1, comm::kTagGeneric);
      net.send(1, 0, comm::kTagGeneric + 1, support::SendBuffer());
      benchmark::DoNotOptimize(msg.from);
    });
    support::SendBuffer buf;
    support::serialize(buf, uint64_t{1});
    net.send(0, 1, comm::kTagGeneric, std::move(buf));
    net.recv(0, comm::kTagGeneric + 1);
    peer.join();
  }
}
BENCHMARK(BM_NetworkPingPong);

// The message-buffering ablation at the primitive level: shipping 64k
// 8-byte records either immediately (threshold 0) or in large batches.
void BM_BufferedSend(benchmark::State& state) {
  const size_t threshold = static_cast<size_t>(state.range(0));
  const uint64_t records = 1 << 16;
  for (auto _ : state) {
    comm::Network net(2);
    comm::runHosts(net, [&](comm::HostId me) {
      if (me == 0) {
        comm::BufferedSender sender(net, 0, comm::kTagEdgeBatch, threshold);
        for (uint64_t i = 0; i < records; ++i) {
          sender.append(1, i);
        }
        sender.flushAll();
        net.send(0, 1, comm::kTagGeneric, support::SendBuffer());
      } else {
        for (;;) {
          if (net.tryRecv(1, comm::kTagEdgeBatch)) {
            continue;
          }
          if (net.tryRecv(1, comm::kTagGeneric)) {
            break;
          }
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * records));
}
BENCHMARK(BM_BufferedSend)->Arg(0)->Arg(4 << 10)->Arg(256 << 10);

// Per-message overhead of the send hot path, legacy vs aggregated: 64k
// 8-byte records each committed as its OWN message (threshold 0, the
// worst case BM_BufferedSend ablates). Legacy ships every record through
// sendReliable — one mailbox lock and one condvar wake per record. The
// aggregated path stages records in the per-destination channel and seals
// ~1400-byte packets, so the mailbox is locked and the receiver woken
// once per ~170 records. Arg(0) = legacy, Arg(1) = buffered.
void BM_PerMessageSendPath(benchmark::State& state) {
  const bool buffered = state.range(0) != 0;
  comm::ScopedAggregation scoped(
      comm::AggregationPolicy{.enabled = buffered});
  const uint64_t records = 1 << 16;
  for (auto _ : state) {
    comm::Network net(2);
    comm::runHosts(net, [&](comm::HostId me) {
      if (me == 0) {
        comm::BufferedSender sender(net, 0, comm::kTagEdgeBatch, 0);
        for (uint64_t i = 0; i < records; ++i) {
          sender.append(1, i);
        }
        sender.flushAll();
        net.send(0, 1, comm::kTagGeneric, support::SendBuffer());
      } else {
        for (;;) {
          if (net.tryRecv(1, comm::kTagEdgeBatch)) {
            continue;
          }
          if (net.tryRecv(1, comm::kTagGeneric)) {
            break;
          }
        }
      }
    });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * records));
}
BENCHMARK(BM_PerMessageSendPath)->Arg(0)->Arg(1);

void BM_RmatGeneration(benchmark::State& state) {
  graph::RmatParams params;
  params.scale = 14;
  params.numEdges = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto g = graph::generateRmat(params);
    benchmark::DoNotOptimize(g.numEdges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RmatGeneration)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace

BENCHMARK_MAIN();
