// Extension bench: the Table I literature policies expressed in CuSP
// (LDG, DBH, HDRF, PowerGraph-Greedy) against the paper's Table II
// policies, demonstrating the framework's generality claim ("Any streaming
// partitioning algorithm can be implemented using CuSP", Section II-B).
//
// Expected qualitative behaviour from the source papers:
//  * LDG: an edge-cut with locality — replication between EEC and Fennel.
//  * DBH: replicates high-degree endpoints; lower replication than pure
//    hashing of both endpoints, higher than 2D cuts on skewed graphs.
//  * HDRF / Greedy: replica-aware vertex cuts — the lowest replication of
//    the hash-master family, at the cost of a stateful (sequential)
//    assignment pass.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 150'000;
  const uint32_t hosts = 8;
  bench::printHeader(
      "Extension: Table I literature policies in the CuSP framework");
  for (const std::string input : {"clueweb", "kron"}) {
    const auto& g = bench::standIn(input, edges);
    const uint64_t source = analytics::maxOutDegreeNode(g);
    std::printf("\n-- %s, %u hosts --\n%-10s %10s %12s %9s %9s\n",
                input.c_str(), hosts, "policy", "time (s)", "replication",
                "edgeImb", "bfs (s)");
    for (const auto& policy : core::extendedPolicyCatalog()) {
      const auto timed = bench::partitionNamed(g, policy, hosts);
      const auto quality = core::computeQuality(timed.result.partitions);
      analytics::RunStats stats;
      analytics::runBfs(timed.result.partitions, source, &stats,
                        bench::benchCostModel());
      std::printf("%-10s %10.4f %12.2f %9.2f %9.4f\n", policy.c_str(),
                  timed.seconds, quality.avgReplicationFactor,
                  quality.edgeImbalance, stats.seconds);
    }
  }
  return 0;
}
