// Reproduces paper Fig. 7: partitioning time of CVC as a function of the
// message-buffer size, on clueweb12 / uk14 / wdc12 at the top host count
// (log-log in the paper).
//
// Paper shapes to check: sending immediately (0 MB) is much slower; even a
// small buffer recovers most of the benefit (4 MB is 4.6x faster than
// 0 MB on average); growing the buffer past the knee neither helps nor
// hurts. Buffer sizes scale MB -> KB with the input size (see
// bench_common.h).
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 250'000;
  const uint32_t hosts = 16;  // paper: 128
  const std::vector<size_t> thresholds = {
      0,        2 << 10,  8 << 10,   32 << 10,
      128 << 10, 512 << 10, 2 << 20};
  bench::printHeader(
      "Fig. 7: CVC partitioning time (seconds) vs message buffer size");
  std::printf("%-10s", "buffer");
  for (size_t t : thresholds) {
    if (t == 0) {
      std::printf(" %9s", "0");
    } else if (t < (1 << 20)) {
      std::printf(" %7zuKB", t >> 10);
    } else {
      std::printf(" %7zuMB", t >> 20);
    }
  }
  std::printf("\n");
  double sumZero = 0.0;
  double sumSmall = 0.0;
  for (const std::string input : {"clueweb", "uk", "wdc"}) {
    const auto& g = bench::standIn(input, edges);
    std::printf("%-10s", input.c_str());
    for (size_t t : thresholds) {
      core::PartitionerConfig config = bench::benchConfig();
      config.messageBufferThreshold = t;
      const auto timed = bench::partitionNamed(g, "CVC", hosts, config);
      std::printf(" %9.3f", timed.seconds);
      if (t == 0) {
        sumZero += timed.seconds;
      }
      if (t == (32 << 10)) {
        sumSmall += timed.seconds;
      }
    }
    std::printf("\n");
  }
  std::printf("\nunbuffered / 32KB-buffered time ratio (avg): %.1fx "
              "(paper: 4 MB buffer 4.6x faster than 0 MB)\n",
              sumZero / sumSmall);
  return 0;
}
