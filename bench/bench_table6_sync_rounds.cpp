// Reproduces paper Table VI: partitioning time of SVC with a varying number
// of master-assignment synchronization rounds, on clueweb12 and uk14 at the
// top host count.
//
// Paper shape to check: time is flat from 1 to ~100 rounds and only climbs
// at very high round counts (the paper sees the jump at 1000).
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  cusp::bench::BenchMain benchMain(argc, argv);
  using namespace cusp;
  const uint64_t edges = 250'000;
  const uint32_t hosts = 16;  // paper: 128
  const std::vector<uint32_t> rounds = {1, 10, 100, 1000};
  bench::printHeader(
      "Table VI: SVC partitioning time (seconds) vs synchronization rounds");
  std::printf("%-10s", "rounds");
  for (uint32_t r : rounds) {
    std::printf(" %9u", r);
  }
  std::printf("\n");
  for (const std::string input : {"clueweb", "uk"}) {
    const auto& g = bench::standIn(input, edges);
    std::printf("%-10s", input.c_str());
    for (uint32_t r : rounds) {
      core::PartitionerConfig config = bench::benchConfig();
      config.stateSyncRounds = r;
      const auto timed = bench::partitionNamed(g, "SVC", hosts, config);
      std::printf(" %9.3f", timed.seconds);
    }
    std::printf("\n");
  }
  return 0;
}
