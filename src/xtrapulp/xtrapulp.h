// XtraPulp-style offline edge-cut partitioner (the paper's baseline).
//
// XtraPulp [Slota et al.] is a distributed implementation of PuLP:
// label-propagation-based partitioning with multiple balance constraints,
// refined over several whole-graph passes. This reimplementation captures
// the algorithmic profile the paper compares against:
//
//  * offline: it loads the complete graph and makes many passes over it
//    (initialization, alternating label-propagation and balance phases),
//    which is why it is slower than a streaming partitioner;
//  * edge-cut only: every out-edge of a vertex lands with the vertex
//    (paper Section V-A: "it only produces edge-cut partitions");
//  * multi-constraint: partitions respect both a vertex-count and an
//    edge-count balance cap while minimizing cut edges.
//
// The output is a vertex -> partition map. To compare quality inside the
// same analytics machinery, feed the map to CuSP via masterFromMap +
// edgeSource (see makeXtraPulpPolicy) — the result is exactly the edge-cut
// this map describes, materialized as DistGraph partitions.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/policies.h"
#include "graph/csr_graph.h"

namespace cusp::xtrapulp {

struct XtraPulpConfig {
  uint32_t numParts = 4;
  // Balance caps: a partition may hold at most cap * (total / numParts)
  // vertices / edges.
  double vertexBalance = 1.10;
  double edgeBalance = 1.50;
  // Iteration structure mirrors PuLP's defaults (3 outer constraint
  // iterations, ~10 refinement and ~5 balance sweeps each); labels start
  // from a random assignment as in PuLP, so propagation genuinely has to
  // work (and the early-exit on a fully converged sweep rarely fires on
  // the first outer iteration).
  uint32_t outerIterations = 3;
  uint32_t propIterations = 10;
  uint32_t balanceIterations = 5;
  bool randomInit = true;  // false = contiguous blocked initialization
  uint64_t seed = 7;
  // Simulated per-host disk bandwidth (MB/s, 0 = off) applied when the
  // distributed implementation loads its block — same knob as
  // core::PartitionerConfig so baseline comparisons charge reading equally.
  double simulatedDiskBandwidthMBps = 0.0;
  // Interconnect cost model for the distributed implementation (same knob
  // as core::PartitionerConfig::networkCostModel).
  comm::NetworkCostModel networkCostModel;
};

struct XtraPulpResult {
  std::vector<uint32_t> partOf;  // vertex -> partition
  uint64_t cutEdges = 0;         // directed edges crossing partitions
  uint64_t maxPartVertices = 0;
  uint64_t maxPartEdges = 0;     // out-edges of vertices in the partition
  double seconds = 0.0;          // partitioning time (excludes graph load)
};

// Single-image reference implementation (used to validate the distributed
// one and for in-process use).
XtraPulpResult partition(const graph::CsrGraph& graph,
                         const XtraPulpConfig& config);

// Distributed implementation, matching how XtraPulp actually runs (and how
// the paper measures it): config.numParts hosts on the simulated cluster,
// each owning a contiguous block of vertices. Preprocessing exchanges
// in-edge adjacency (label propagation needs both directions); every
// propagation/balance sweep then ships the sweep's label moves to all
// other hosts and reconciles the balance loads — the multi-pass,
// communication-per-iteration profile that makes offline partitioning slow
// (paper Section V-B). `seconds` covers reading through refinement.
XtraPulpResult partitionDistributed(const graph::GraphFile& file,
                                    const XtraPulpConfig& config);

// Counts directed edges whose endpoints lie in different partitions.
uint64_t countCutEdges(const graph::CsrGraph& graph,
                       const std::vector<uint32_t>& partOf);

// Wraps an XtraPulp vertex map as a CuSP policy (masterFromMap + Source),
// so the offline partitions flow through the same DistGraph construction
// and analytics as every CuSP policy.
core::PartitionPolicy makeXtraPulpPolicy(
    std::shared_ptr<const std::vector<uint32_t>> partOf);

}  // namespace cusp::xtrapulp
