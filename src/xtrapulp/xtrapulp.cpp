#include "xtrapulp/xtrapulp.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <stdexcept>

#include "support/random.h"
#include "support/timer.h"

namespace cusp::xtrapulp {

namespace {

// Tracks per-partition vertex and (out-)edge loads against the balance caps.
struct Loads {
  std::vector<uint64_t> vertices;
  std::vector<uint64_t> edges;
  uint64_t vertexCap = 0;
  uint64_t edgeCap = 0;

  bool fits(uint32_t part, uint64_t degree) const {
    return vertices[part] + 1 <= vertexCap && edges[part] + degree <= edgeCap;
  }
  void move(uint32_t from, uint32_t to, uint64_t degree) {
    --vertices[from];
    vertices[to] += 1;
    edges[from] -= degree;
    edges[to] += degree;
  }
};

}  // namespace

XtraPulpResult partition(const graph::CsrGraph& graph,
                         const XtraPulpConfig& config) {
  if (config.numParts == 0) {
    throw std::invalid_argument("xtrapulp: numParts must be > 0");
  }
  if (config.vertexBalance < 1.0 || config.edgeBalance < 1.0) {
    throw std::invalid_argument("xtrapulp: balance caps must be >= 1.0");
  }
  support::Timer timer;
  const uint64_t numNodes = graph.numNodes();
  const uint64_t numEdges = graph.numEdges();
  const uint32_t k = config.numParts;

  XtraPulpResult result;
  result.partOf.assign(numNodes, 0);
  if (numNodes == 0) {
    result.seconds = timer.elapsedSeconds();
    return result;
  }

  // Offline pass 1: symmetrized neighborhood (label propagation considers
  // in- and out-neighbors; XtraPulp operates on the undirected structure).
  const graph::CsrGraph reverse = graph.transpose();

  // Initialization: random labels (PuLP-style) or contiguous blocks.
  const uint64_t blockSize = (numNodes + k - 1) / k;
  Loads loads;
  loads.vertices.assign(k, 0);
  loads.edges.assign(k, 0);
  for (uint64_t v = 0; v < numNodes; ++v) {
    const uint32_t p =
        config.randomInit
            ? static_cast<uint32_t>(support::hashU64(config.seed ^ v) % k)
            : static_cast<uint32_t>(std::min<uint64_t>(
                  v / std::max<uint64_t>(1, blockSize), k - 1));
    result.partOf[v] = p;
    ++loads.vertices[p];
    loads.edges[p] += graph.outDegree(v);
  }
  loads.vertexCap = std::max<uint64_t>(
      1, static_cast<uint64_t>(config.vertexBalance *
                               (static_cast<double>(numNodes) / k) + 1));
  loads.edgeCap = std::max<uint64_t>(
      1, static_cast<uint64_t>(config.edgeBalance *
                               (static_cast<double>(numEdges) / k) + 1));

  std::vector<double> score(k);
  auto bestLabelFor = [&](uint64_t v, bool requireFit) -> uint32_t {
    std::fill(score.begin(), score.end(), 0.0);
    for (uint64_t n : graph.outNeighbors(v)) {
      if (n != v) {
        score[result.partOf[n]] += 1.0;
      }
    }
    for (uint64_t n : reverse.outNeighbors(v)) {
      if (n != v) {
        score[result.partOf[n]] += 1.0;
      }
    }
    const uint32_t current = result.partOf[v];
    uint32_t best = current;
    double bestScore = score[current];
    const uint64_t degree = graph.outDegree(v);
    for (uint32_t p = 0; p < k; ++p) {
      if (p == current || score[p] <= bestScore) {
        continue;
      }
      if (!requireFit || loads.fits(p, degree)) {
        best = p;
        bestScore = score[p];
      }
    }
    return best;
  };

  // Alternating refinement: label-propagation sweeps maximize co-location
  // under the balance caps; balance sweeps drain overweight partitions.
  for (uint32_t outer = 0; outer < config.outerIterations; ++outer) {
    for (uint32_t iter = 0; iter < config.propIterations; ++iter) {
      bool moved = false;
      for (uint64_t v = 0; v < numNodes; ++v) {
        const uint32_t target = bestLabelFor(v, /*requireFit=*/true);
        if (target != result.partOf[v]) {
          loads.move(result.partOf[v], target, graph.outDegree(v));
          result.partOf[v] = target;
          moved = true;
        }
      }
      if (!moved) {
        break;
      }
    }
    for (uint32_t iter = 0; iter < config.balanceIterations; ++iter) {
      // Drain partitions above the (tighter) average toward the most
      // connected underloaded partition.
      const uint64_t targetVertices = (numNodes + k - 1) / k;
      bool moved = false;
      for (uint64_t v = 0; v < numNodes; ++v) {
        const uint32_t current = result.partOf[v];
        if (loads.vertices[current] <= targetVertices) {
          continue;
        }
        std::fill(score.begin(), score.end(), 0.0);
        for (uint64_t n : graph.outNeighbors(v)) {
          score[result.partOf[n]] += 1.0;
        }
        for (uint64_t n : reverse.outNeighbors(v)) {
          score[result.partOf[n]] += 1.0;
        }
        uint32_t best = current;
        double bestScore = -1.0;
        const uint64_t degree = graph.outDegree(v);
        for (uint32_t p = 0; p < k; ++p) {
          if (p == current || loads.vertices[p] >= targetVertices ||
              !loads.fits(p, degree)) {
            continue;
          }
          if (score[p] > bestScore) {
            best = p;
            bestScore = score[p];
          }
        }
        if (best != current) {
          loads.move(current, best, degree);
          result.partOf[v] = best;
          moved = true;
        }
      }
      if (!moved) {
        break;
      }
    }
  }

  result.cutEdges = countCutEdges(graph, result.partOf);
  result.maxPartVertices =
      *std::max_element(loads.vertices.begin(), loads.vertices.end());
  result.maxPartEdges =
      *std::max_element(loads.edges.begin(), loads.edges.end());
  result.seconds = timer.elapsedSeconds();
  return result;
}

namespace {

// One host of the distributed partitioner. Owns the contiguous vertex
// block `range` of the on-disk graph, keeps a replicated label array (real
// XtraPulp replicates ghost labels; full replication at simulation scale —
// this is also why XtraPulp runs out of memory on large inputs, a failure
// mode the paper observes), and exchanges per-sweep label moves.
class DistPulpHost {
 public:
  DistPulpHost(comm::Network& net, comm::HostId me,
               const graph::GraphFile& file, const XtraPulpConfig& config,
               const std::vector<graph::ReadRange>& ranges)
      : net_(net), me_(me), file_(file), config_(config), ranges_(ranges),
        range_(ranges[me]) {}

  // Returns this host's final view of the full label array.
  std::vector<uint32_t> run() {
    const uint64_t numNodes = file_.numNodes();
    const uint32_t k = config_.numParts;
    labels_.resize(numNodes);
    // Deterministic initialization, replicated on every host: random labels
    // (PuLP-style) or contiguous blocks.
    const uint64_t blockSize = numNodes == 0 ? 1 : (numNodes + k - 1) / k;
    for (uint64_t v = 0; v < numNodes; ++v) {
      labels_[v] =
          config_.randomInit
              ? static_cast<uint32_t>(support::hashU64(config_.seed ^ v) % k)
              : static_cast<uint32_t>(std::min<uint64_t>(
                    v / std::max<uint64_t>(1, blockSize), k - 1));
    }
    loads_.vertices.assign(k, 0);
    loads_.edges.assign(k, 0);
    for (uint64_t v = 0; v < numNodes; ++v) {
      ++loads_.vertices[labels_[v]];
      loads_.edges[labels_[v]] += file_.outDegree(v);
    }
    loads_.vertexCap = std::max<uint64_t>(
        1, static_cast<uint64_t>(config_.vertexBalance *
                                 (static_cast<double>(numNodes) / k) + 1));
    loads_.edgeCap = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               config_.edgeBalance *
               (static_cast<double>(file_.numEdges()) / k) + 1));

    if (config_.simulatedDiskBandwidthMBps > 0.0) {
      const double bytes =
          static_cast<double>((range_.numNodes() + 1 + range_.numEdges()) *
                              sizeof(uint64_t));
      modeledDiskSeconds_ =
          bytes / (config_.simulatedDiskBandwidthMBps * 1e6);
    }

    buildInNeighbors();

    for (uint32_t outer = 0; outer < config_.outerIterations; ++outer) {
      for (uint32_t iter = 0; iter < config_.propIterations; ++iter) {
        if (!sweep(/*balanceMode=*/false)) {
          break;
        }
      }
      for (uint32_t iter = 0; iter < config_.balanceIterations; ++iter) {
        if (!sweep(/*balanceMode=*/true)) {
          break;
        }
      }
    }
    return std::move(labels_);
  }

  // This host's simulated time: CPU work + modeled communication charges +
  // modeled disk time (same accounting as the CuSP partitioner, so Fig. 3
  // comparisons are apples-to-apples).
  double modeledSeconds() const {
    return (support::threadCpuSeconds() - cpuStart_) +
           net_.modeledCommSeconds(me_) + modeledDiskSeconds_;
  }

 private:
  // Preprocessing pass: every host streams its read edges and ships (dst,
  // src) pairs to dst's owner, giving each host the in-adjacency of its
  // block — the whole-graph pass that offline partitioners pay up front.
  void buildInNeighbors() {
    inStart_.assign(range_.numNodes() + 1, 0);
    comm::BufferedSender sender(net_, me_, comm::kTagGeneric, 1 << 20);
    std::vector<std::pair<uint64_t, uint64_t>> pairs;  // local (dst, src)
    std::vector<uint64_t> sentTo(net_.numHosts(), 0);
    for (uint64_t v = range_.nodeBegin; v < range_.nodeEnd; ++v) {
      for (uint64_t d : file_.outNeighbors(v)) {
        const uint32_t owner = graph::readingHostOf(ranges_, d);
        if (owner == me_) {
          pairs.push_back({d, v});
        } else {
          sender.append(owner, d, v);
          ++sentTo[owner];
        }
      }
    }
    sender.flushAll();
    // Count-prefixed termination: each host announces how many pairs it
    // shipped, then the receiver drains exactly that many per channel.
    for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
      if (h != me_) {
        support::SendBuffer buf;
        support::serialize(buf, sentTo[h]);
        net_.send(me_, h, comm::kTagGeneric + 1, std::move(buf));
      }
    }
    for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
      if (h == me_) {
        continue;
      }
      auto header = net_.recvFrom(me_, h, comm::kTagGeneric + 1);
      uint64_t expected = 0;
      support::deserialize(header.payload, expected);
      uint64_t received = 0;
      while (received < expected) {
        auto msg = net_.recvFrom(me_, h, comm::kTagGeneric);
        while (!msg.payload.exhausted()) {
          uint64_t d = 0;
          uint64_t s = 0;
          support::deserializeAll(msg.payload, d, s);
          pairs.push_back({d, s});
          ++received;
        }
      }
    }
    for (const auto& [d, s] : pairs) {
      ++inStart_[d - range_.nodeBegin + 1];
    }
    for (uint64_t i = 0; i < range_.numNodes(); ++i) {
      inStart_[i + 1] += inStart_[i];
    }
    inNeighbors_.resize(pairs.size());
    std::vector<uint64_t> cursor(inStart_.begin(), inStart_.end() - 1);
    for (const auto& [d, s] : pairs) {
      inNeighbors_[cursor[d - range_.nodeBegin]++] = s;
    }
  }

  // One propagation or balance sweep over this host's block, followed by a
  // cluster-wide exchange of the moves. Returns true if any host moved a
  // vertex.
  bool sweep(bool balanceMode) {
    const uint32_t k = config_.numParts;
    std::vector<double> score(k);
    std::vector<uint64_t> movedVertices;
    std::vector<uint32_t> movedLabels;
    const uint64_t targetVertices =
        (file_.numNodes() + k - 1) / std::max<uint32_t>(1, k);
    // Hosts move vertices concurrently against a stale global load view, so
    // each host may only claim 1/k of a partition's remaining headroom per
    // sweep: pendingV/pendingE count this host's in-sweep additions, and
    // the fit check charges them k times (once per potentially-concurrent
    // host). Without this, every host sees the same headroom and the
    // partition collapses onto a few hot labels.
    std::vector<uint64_t> pendingV(k, 0);
    std::vector<uint64_t> pendingE(k, 0);
    auto conservativeFits = [&](uint32_t p, uint64_t degree) {
      return loads_.vertices[p] + (pendingV[p] + 1) * k <= loads_.vertexCap &&
             loads_.edges[p] + (pendingE[p] + degree) * k <= loads_.edgeCap;
    };
    auto underTarget = [&](uint32_t p) {
      return loads_.vertices[p] + pendingV[p] * k < targetVertices;
    };
    for (uint64_t v = range_.nodeBegin; v < range_.nodeEnd; ++v) {
      const uint32_t current = labels_[v];
      if (balanceMode && loads_.vertices[current] <= targetVertices) {
        continue;
      }
      std::fill(score.begin(), score.end(), 0.0);
      for (uint64_t n : file_.outNeighbors(v)) {
        if (n != v) {
          score[labels_[n]] += 1.0;
        }
      }
      const uint64_t idx = v - range_.nodeBegin;
      for (uint64_t e = inStart_[idx]; e < inStart_[idx + 1]; ++e) {
        const uint64_t n = inNeighbors_[e];
        if (n != v) {
          score[labels_[n]] += 1.0;
        }
      }
      const uint64_t degree = file_.outDegree(v);
      uint32_t best = current;
      if (balanceMode) {
        double bestScore = -1.0;
        for (uint32_t p = 0; p < k; ++p) {
          if (p == current || !underTarget(p) ||
              !conservativeFits(p, degree)) {
            continue;
          }
          if (score[p] > bestScore) {
            best = p;
            bestScore = score[p];
          }
        }
      } else {
        double bestScore = score[current];
        for (uint32_t p = 0; p < k; ++p) {
          if (p != current && score[p] > bestScore &&
              conservativeFits(p, degree)) {
            best = p;
            bestScore = score[p];
          }
        }
      }
      if (best != current) {
        loads_.move(current, best, degree);
        labels_[v] = best;
        ++pendingV[best];
        pendingE[best] += degree;
        movedVertices.push_back(v);
        movedLabels.push_back(best);
      }
    }
    // Exchange this sweep's moves with every other host (the per-iteration
    // communication that dominates offline partitioning time).
    for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
      if (h == me_) {
        continue;
      }
      support::SendBuffer buf;
      support::serializeAll(buf, movedVertices, movedLabels);
      net_.send(me_, h, comm::kTagGeneric + 2, std::move(buf));
    }
    bool anyMoves = !movedVertices.empty();
    for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
      if (h == me_) {
        continue;
      }
      auto msg = net_.recvFrom(me_, h, comm::kTagGeneric + 2);
      std::vector<uint64_t> vertices;
      std::vector<uint32_t> newLabels;
      support::deserializeAll(msg.payload, vertices, newLabels);
      anyMoves = anyMoves || !vertices.empty();
      for (size_t i = 0; i < vertices.size(); ++i) {
        const uint64_t v = vertices[i];
        loads_.move(labels_[v], newLabels[i], file_.outDegree(v));
        labels_[v] = newLabels[i];
      }
    }
    return anyMoves;
  }

  comm::Network& net_;
  const comm::HostId me_;
  const graph::GraphFile& file_;
  const XtraPulpConfig& config_;
  const std::vector<graph::ReadRange>& ranges_;
  const graph::ReadRange range_;

  std::vector<uint32_t> labels_;
  Loads loads_;
  double modeledDiskSeconds_ = 0.0;
  double cpuStart_ = support::threadCpuSeconds();
  // In-adjacency of this host's block (CSR over window indices).
  std::vector<uint64_t> inStart_;
  std::vector<uint64_t> inNeighbors_;
};

}  // namespace

XtraPulpResult partitionDistributed(const graph::GraphFile& file,
                                    const XtraPulpConfig& config) {
  if (config.numParts == 0) {
    throw std::invalid_argument("xtrapulp: numParts must be > 0");
  }
  if (config.vertexBalance < 1.0 || config.edgeBalance < 1.0) {
    throw std::invalid_argument("xtrapulp: balance caps must be >= 1.0");
  }
  support::Timer timer;
  XtraPulpResult result;
  if (file.numNodes() == 0) {
    result.seconds = timer.elapsedSeconds();
    return result;
  }
  comm::Network net(config.numParts, config.networkCostModel);
  const auto ranges = graph::contiguousEbRanges(file, config.numParts);
  std::vector<std::vector<uint32_t>> perHost(config.numParts);
  std::vector<double> modeledPerHost(config.numParts, 0.0);
  comm::runHosts(net, [&](comm::HostId me) {
    DistPulpHost host(net, me, file, config, ranges);
    perHost[me] = host.run();
    modeledPerHost[me] = host.modeledSeconds();
  });
  // Owners are authoritative for their blocks; assemble the final map.
  result.partOf.resize(file.numNodes());
  for (uint32_t h = 0; h < config.numParts; ++h) {
    for (uint64_t v = ranges[h].nodeBegin; v < ranges[h].nodeEnd; ++v) {
      result.partOf[v] = perHost[h][v];
    }
  }
  // Simulated cluster time: the slowest host's CPU + modeled charges
  // (hosts run in lockstep sweeps, so max-of-totals approximates the
  // makespan well).
  result.seconds =
      *std::max_element(modeledPerHost.begin(), modeledPerHost.end());
  result.cutEdges = countCutEdges(file.toCsr(), result.partOf);
  std::vector<uint64_t> vertices(config.numParts, 0);
  std::vector<uint64_t> edges(config.numParts, 0);
  for (uint64_t v = 0; v < file.numNodes(); ++v) {
    ++vertices[result.partOf[v]];
    edges[result.partOf[v]] += file.outDegree(v);
  }
  result.maxPartVertices =
      *std::max_element(vertices.begin(), vertices.end());
  result.maxPartEdges = *std::max_element(edges.begin(), edges.end());
  return result;
}

uint64_t countCutEdges(const graph::CsrGraph& graph,
                       const std::vector<uint32_t>& partOf) {
  if (partOf.size() != graph.numNodes()) {
    throw std::invalid_argument("countCutEdges: map size mismatch");
  }
  uint64_t cut = 0;
  for (uint64_t v = 0; v < graph.numNodes(); ++v) {
    for (uint64_t n : graph.outNeighbors(v)) {
      if (partOf[n] != partOf[v]) {
        ++cut;
      }
    }
  }
  return cut;
}

core::PartitionPolicy makeXtraPulpPolicy(
    std::shared_ptr<const std::vector<uint32_t>> partOf) {
  core::PartitionPolicy policy;
  policy.name = "XtraPulp";
  policy.master = core::masterFromMap(std::move(partOf));
  policy.edge = core::edgeSource();
  return policy;
}

}  // namespace cusp::xtrapulp
