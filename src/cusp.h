// Umbrella header for the CuSP library: include this to get the whole
// public API (namespace cusp::*).
//
//   graph::      CSR graphs, binary/text formats, converters, generators
//   comm::       simulated message-passing runtime and cost model
//   core::       the CuSP streaming partitioner, policies, DistGraph
//   xtrapulp::   the offline label-propagation baseline
//   analytics::  D-Galois-style BSP engine: bfs / cc / pagerank / sssp
//   obs::        metrics registry, trace spans, JSON/chrome-trace exports
//   support::    parallel loops, prefix sums, bitsets, serialization, RNG
#pragma once

#include "analytics/algorithms.h"
#include "analytics/engine.h"
#include "analytics/reference.h"
#include "analytics/resilient.h"
#include "comm/network.h"
#include "core/degraded.h"
#include "core/dist_graph.h"
#include "core/partitioner.h"
#include "core/policies.h"
#include "core/properties.h"
#include "core/state.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph_file.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "support/bitset.h"
#include "support/logging.h"
#include "support/prefix_sum.h"
#include "support/random.h"
#include "support/serialize.h"
#include "support/threading.h"
#include "support/timer.h"
