// Job model of the partition service (src/service/): what a client asks the
// daemon to do, every state a job can be in, and the structured errors a
// job can terminate with. Every rejection and failure the service produces
// is one of these kinds plus a human-readable message — clients (and the
// crash-recovery path) never have to parse exception text.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/fault.h"
#include "support/memory.h"

namespace cusp::service {

// What to run. Partition jobs stream a registered graph through the CuSP
// pipeline; analytics jobs run on a finished partition set of the same
// (graphId, policy, numHosts) key — computed on demand and cached, so a
// BFS job on a cold cache implies a partition run first.
enum class JobType : uint32_t {
  kPartition = 0,
  kBfs = 1,
  kSssp = 2,
  kCc = 3,
  kPageRank = 4,
};

inline const char* jobTypeName(JobType t) {
  switch (t) {
    case JobType::kPartition: return "partition";
    case JobType::kBfs: return "bfs";
    case JobType::kSssp: return "sssp";
    case JobType::kCc: return "cc";
    case JobType::kPageRank: return "pagerank";
  }
  return "unknown";
}

struct JobSpec {
  JobType type = JobType::kPartition;
  std::string graphId;   // name registered with Engine::registerGraph
  std::string policy;    // partition policy name (core::makePolicy)
  uint32_t numHosts = 4;
  uint64_t sourceGid = 0;  // bfs/sssp source vertex (global id)

  // Wall-clock budget from ADMISSION, covering queue wait and every
  // recovery attempt; the engine checks it at phase/superstep boundaries
  // and the job fails with kDeadlineExceeded once it passes. <= 0: none.
  double deadlineSeconds = 0.0;

  // Transient-failure retries the daemon grants beyond the first run
  // (each engine run already spends the resilience ladder internally).
  uint32_t maxRetries = 1;

  // Per-job fault environment, forwarded into the engine's resilient
  // drivers (chaos testing; null = clean).
  std::shared_ptr<const comm::FaultPlan> faultPlan;
  std::shared_ptr<const support::MemoryFaultPlan> memoryFaultPlan;
  double recvTimeoutSeconds = 0.0;
  uint32_t maxRecoveryAttempts = 3;
};

enum class JobState : uint32_t {
  kQueued = 0,
  kRunning = 1,
  kSucceeded = 2,
  kFailed = 3,     // resilience ladder exhausted / internal error
  kShed = 4,       // refused by admission control (never ran)
  kCancelled = 5,  // operator cancel, client disconnect, or deadline
};

inline const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kSucceeded: return "succeeded";
    case JobState::kFailed: return "failed";
    case JobState::kShed: return "shed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

inline bool isTerminal(JobState s) {
  return s == JobState::kSucceeded || s == JobState::kFailed ||
         s == JobState::kShed || s == JobState::kCancelled;
}

enum class JobErrorKind : uint32_t {
  kNone = 0,
  // Admission-control sheds (returned from submit; the job never runs):
  kShedMemory = 1,     // estimated footprint over the free memory budget
  kShedQueueFull = 2,  // bounded queue at capacity
  kShedDraining = 3,   // daemon is shutting down / was killed
  // Malformed requests (structured rejection, also at submit):
  kUnknownGraph = 4,
  kUnknownPolicy = 5,
  kBadRequest = 6,  // zero hosts, out-of-range source, unknown type...
  // Terminal failures of accepted jobs:
  kDeadlineExceeded = 7,
  kCancelled = 8,            // operator cancel / client disconnect
  kResilienceExhausted = 9,  // ladder + daemon retries all spent
  kInternal = 10,
};

inline const char* jobErrorKindName(JobErrorKind k) {
  switch (k) {
    case JobErrorKind::kNone: return "none";
    case JobErrorKind::kShedMemory: return "shed_memory";
    case JobErrorKind::kShedQueueFull: return "shed_queue_full";
    case JobErrorKind::kShedDraining: return "shed_draining";
    case JobErrorKind::kUnknownGraph: return "unknown_graph";
    case JobErrorKind::kUnknownPolicy: return "unknown_policy";
    case JobErrorKind::kBadRequest: return "bad_request";
    case JobErrorKind::kDeadlineExceeded: return "deadline_exceeded";
    case JobErrorKind::kCancelled: return "cancelled";
    case JobErrorKind::kResilienceExhausted: return "resilience_exhausted";
    case JobErrorKind::kInternal: return "internal";
  }
  return "unknown";
}

struct JobError {
  JobErrorKind kind = JobErrorKind::kNone;
  std::string message;
};

// Terminal outcome of a job, returned by Daemon::wait/status.
struct JobResult {
  uint64_t jobId = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  JobError error;          // kind != kNone unless kSucceeded
  uint32_t runs = 0;       // engine runs started (retries included)
  double latencySeconds = 0.0;  // submit -> terminal wall clock
  bool partitionCacheHit = false;
  // True when this terminal state was reconstructed from the journal by a
  // restarted daemon (in-memory payloads of the pre-crash process are
  // gone; re-submit to recompute).
  bool recovered = false;

  // Analytics payloads (empty for partition jobs; partition payloads live
  // in the engine's cache, keyed by (graphId, policy, numHosts)).
  std::vector<uint64_t> intValues;    // bfs/sssp/cc
  std::vector<double> doubleValues;   // pagerank
};

}  // namespace cusp::service
