#include "service/journal.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "support/crc32.h"
#include "support/serialize.h"
#include "support/storage.h"

namespace cusp::service {

namespace {

// Record magic "JNL1" in the style of the CGR1/CDG1/CRC1 file magics.
constexpr uint64_t kJournalMagic = 0x00000000314C4E4AULL;

// mkdir -p, matching the checkpoint store's idiom (journal dirs can be
// nested under a run's scratch root).
void ensureDirectory(const std::string& dir) {
  for (size_t pos = 1; pos <= dir.size(); ++pos) {
    if (pos == dir.size() || dir[pos] == '/') {
      ::mkdir(dir.substr(0, pos).c_str(), 0777);  // fine if it exists
    }
  }
}

void serializeRecord(support::SendBuffer& buf, const JournalRecord& r) {
  support::serializeAll(
      buf, kJournalMagic, r.jobId, r.seq, static_cast<uint32_t>(r.event),
      static_cast<uint32_t>(r.spec.type), r.spec.graphId, r.spec.policy,
      r.spec.numHosts, r.spec.sourceGid, r.spec.deadlineSeconds,
      r.spec.maxRetries, r.spec.recvTimeoutSeconds,
      r.spec.maxRecoveryAttempts, static_cast<uint32_t>(r.errorKind),
      r.errorMessage, r.runs);
}

bool deserializeRecord(std::vector<uint8_t> bytes, JournalRecord* out) {
  if (support::verifyAndStripCrcFooter(bytes) !=
      support::CrcFooterStatus::kVerified) {
    return false;  // torn, bit-rotted, or legacy-garbage record
  }
  try {
    support::RecvBuffer buf(std::move(bytes));
    uint64_t magic = 0;
    uint32_t event = 0, type = 0, errorKind = 0;
    support::deserializeAll(
        buf, magic, out->jobId, out->seq, event, type, out->spec.graphId,
        out->spec.policy, out->spec.numHosts, out->spec.sourceGid,
        out->spec.deadlineSeconds, out->spec.maxRetries,
        out->spec.recvTimeoutSeconds, out->spec.maxRecoveryAttempts,
        errorKind, out->errorMessage, out->runs);
    if (magic != kJournalMagic) {
      return false;
    }
    out->event = static_cast<JournalEvent>(event);
    out->spec.type = static_cast<JobType>(type);
    out->errorKind = static_cast<JobErrorKind>(errorKind);
    return true;
  } catch (const std::exception&) {
    return false;  // truncated payload under a valid CRC cannot happen, but
                   // a foreign file with a valid footer could
  }
}

std::string recordPath(const std::string& dir, uint64_t jobId, uint32_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "j%llu.s%u.rec",
                static_cast<unsigned long long>(jobId), seq);
  return dir + "/" + name;
}

}  // namespace

Journal::Journal(std::string dir) : dir_(std::move(dir)) {
  ensureDirectory(dir_);
  // Recovery scan: newest VALID record per job wins; invalid records are
  // skipped (never deleted — they are forensic evidence, and a job whose
  // every record is invalid is dropped as never-acknowledged).
  std::map<uint64_t, JournalRecord> newest;
  DIR* d = ::opendir(dir_.c_str());
  if (d != nullptr) {
    while (dirent* entry = ::readdir(d)) {
      unsigned long long jobId = 0;
      unsigned seq = 0;
      char trailing = 0;
      if (std::sscanf(entry->d_name, "j%llu.s%u.re%c", &jobId, &seq,
                      &trailing) != 3 ||
          trailing != 'c') {
        continue;
      }
      std::vector<uint8_t> bytes;
      try {
        auto read = support::readFileBytes(recordPath(dir_, jobId, seq));
        if (!read) {
          continue;
        }
        bytes = std::move(*read);
      } catch (const support::StorageError&) {
        continue;  // injected/real read fault: record treated as lost
      }
      JournalRecord rec;
      if (!deserializeRecord(std::move(bytes), &rec) || rec.jobId != jobId) {
        continue;
      }
      rec.seq = static_cast<uint32_t>(seq);
      auto& slot = nextSeq_[jobId];
      slot = std::max(slot, rec.seq + 1);
      auto it = newest.find(jobId);
      if (it == newest.end() || rec.seq > it->second.seq) {
        newest[jobId] = std::move(rec);
      }
    }
    ::closedir(d);
  }
  recovered_.reserve(newest.size());
  for (auto& [id, rec] : newest) {
    recovered_.push_back(std::move(rec));
  }
}

uint64_t Journal::append(JournalRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  record.seq = nextSeq_[record.jobId]++;
  support::SendBuffer buf;
  serializeRecord(buf, record);
  std::vector<uint8_t> bytes = buf.release();
  support::appendCrcFooter(bytes);
  // May throw StorageError; seq stays consumed so a retry by the caller
  // cannot overwrite a possibly-partially-visible record.
  support::atomicWriteFile(recordPath(dir_, record.jobId, record.seq),
                           bytes.data(), bytes.size());
  return ++appended_;
}

}  // namespace cusp::service
