#include "service/fault.h"

#include <random>

namespace cusp::service {

JobSpec malformSpec(const JobSpec& spec, MalformKind kind) {
  JobSpec out = spec;
  switch (kind) {
    case MalformKind::kUnknownGraph:
      out.graphId = "__no_such_graph__";
      break;
    case MalformKind::kUnknownPolicy:
      out.policy = "__no_such_policy__";
      break;
    case MalformKind::kZeroHosts:
      out.numHosts = 0;
      break;
    case MalformKind::kBadType:
      out.type = static_cast<JobType>(0xDEADu);
      break;
  }
  return out;
}

ServiceFaultInjector::ServiceFaultInjector(ServiceFaultPlan plan)
    : plan_(std::move(plan)), killFired_(plan_.killPoints.size(), false) {}

uint32_t ServiceFaultInjector::burstCopies(uint64_t submitIndex) const {
  uint32_t copies = 0;
  for (const auto& b : plan_.bursts) {
    if (b.submitIndex == submitIndex) {
      copies += b.extraCopies;
    }
  }
  return copies;
}

bool ServiceFaultInjector::disconnects(uint64_t submitIndex) const {
  for (const auto& d : plan_.disconnects) {
    if (d.submitIndex == submitIndex) {
      return true;
    }
  }
  return false;
}

std::optional<MalformKind> ServiceFaultInjector::malformKind(
    uint64_t submitIndex) const {
  for (const auto& m : plan_.malformed) {
    if (m.submitIndex == submitIndex) {
      return m.kind;
    }
  }
  return std::nullopt;
}

bool ServiceFaultInjector::shouldKillAfterRecord(uint64_t recordCount) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < plan_.killPoints.size(); ++i) {
    if (!killFired_[i] &&
        recordCount >= plan_.killPoints[i].afterJournalRecords) {
      killFired_[i] = true;
      return true;
    }
  }
  return false;
}

ServiceFaultPlan randomServiceFaultPlan(uint64_t seed, uint64_t numJobs,
                                        uint32_t maxBursts,
                                        uint32_t maxDisconnects,
                                        uint32_t maxMalformed,
                                        uint32_t maxKillPoints) {
  ServiceFaultPlan plan;
  if (numJobs == 0) {
    return plan;
  }
  // One dedicated engine per family, split from the seed, so changing one
  // family's max never perturbs the draws of the others (same discipline
  // as comm::randomFaultPlan's historical-seed preservation).
  std::mt19937_64 seeder(seed);
  std::mt19937_64 burstRng(seeder());
  std::mt19937_64 disconnectRng(seeder());
  std::mt19937_64 malformRng(seeder());
  std::mt19937_64 killRng(seeder());
  std::uniform_int_distribution<uint64_t> pickJob(0, numJobs - 1);

  if (maxBursts > 0) {
    std::uniform_int_distribution<uint32_t> count(1, maxBursts);
    std::uniform_int_distribution<uint32_t> copies(2, 8);
    const uint32_t n = count(burstRng);
    for (uint32_t i = 0; i < n; ++i) {
      plan.bursts.push_back({pickJob(burstRng), copies(burstRng)});
    }
  }
  if (maxDisconnects > 0) {
    std::uniform_int_distribution<uint32_t> count(1, maxDisconnects);
    const uint32_t n = count(disconnectRng);
    for (uint32_t i = 0; i < n; ++i) {
      plan.disconnects.push_back({pickJob(disconnectRng)});
    }
  }
  if (maxMalformed > 0) {
    std::uniform_int_distribution<uint32_t> count(1, maxMalformed);
    std::uniform_int_distribution<uint32_t> kind(0, 3);
    const uint32_t n = count(malformRng);
    for (uint32_t i = 0; i < n; ++i) {
      plan.malformed.push_back(
          {pickJob(malformRng), static_cast<MalformKind>(kind(malformRng))});
    }
  }
  if (maxKillPoints > 0) {
    std::uniform_int_distribution<uint32_t> count(1, maxKillPoints);
    // A journaled workload of J jobs writes roughly 2-3 records per job
    // (submit, start, terminal); aim the kill inside the busy middle.
    std::uniform_int_distribution<uint64_t> record(2, 2 * numJobs + 1);
    const uint32_t n = count(killRng);
    for (uint32_t i = 0; i < n; ++i) {
      plan.killPoints.push_back({record(killRng)});
    }
  }
  return plan;
}

}  // namespace cusp::service
