// cuspd's core: a bounded-queue, multi-worker job daemon over a shared
// Engine, robust by construction:
//
//  * Admission control at submit: malformed requests bounce with structured
//    errors, jobs whose estimated footprint won't fit the attached memory
//    budget are shed (kShedMemory), a full queue sheds (kShedQueueFull) —
//    the daemon refuses work it cannot finish instead of dying trying.
//  * Per-job deadlines armed at admission; the engine's cancellation points
//    (phase/superstep boundaries, host-pool waits) enforce them
//    cooperatively, so an expired job frees its worker at the next
//    boundary.
//  * Job-level fault isolation: a job that exhausts its resilience ladder
//    terminates with its classified fault in a structured JobError; the
//    worker, the daemon, and every sibling job keep running.
//  * Bounded retry-with-backoff: transiently-failed jobs (classified fault
//    kinds) are re-run up to spec.maxRetries times with exponential
//    backoff before failing for good.
//  * Graceful drain: shutdown stops admissions, finishes everything
//    accepted, then joins the workers.
//  * Crash consistency: every accepted job is journaled (service/journal.h)
//    at submit, start, retry, and terminal transitions. A daemon restarted
//    on the same journal directory reports terminal jobs as-is and requeues
//    the rest; requeued partition jobs reuse their per-job checkpoint
//    directories, so they RESUME from the last phase every host
//    checkpointed rather than starting over.
//
// The ServiceFaultPlan seam (service/fault.h) injects burst arrivals,
// client disconnects, malformed requests, and mid-job daemon kills, all
// deterministic under a seed. killForTesting() is the SIGKILL stand-in:
// journaling stops mid-stream and workers abandon jobs without terminal
// records, exactly the torn state recovery must handle.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/engine.h"
#include "service/fault.h"
#include "service/job.h"
#include "service/journal.h"

namespace cusp::service {

struct DaemonOptions {
  uint32_t workers = 2;
  size_t maxQueueDepth = 32;
  // Base of the exponential retry backoff (attempt n sleeps base * 2^(n-1)).
  double retryBackoffSeconds = 0.002;
  // Journal directory; empty runs volatile (no crash recovery).
  std::string journalDir;
  // Service-layer chaos (empty = clean).
  ServiceFaultPlan faultPlan;
};

struct DaemonStats {
  uint64_t submitted = 0;  // submit() calls, burst copies included
  uint64_t accepted = 0;
  uint64_t shed = 0;       // admission refusals (memory/queue/drain)
  uint64_t rejected = 0;   // malformed requests
  uint64_t succeeded = 0;
  uint64_t failed = 0;
  uint64_t cancelled = 0;  // cancels, disconnects, deadlines
  uint64_t retries = 0;
  uint64_t recoveredRequeued = 0;  // journal recovery: re-enqueued jobs
  uint64_t recoveredTerminal = 0;  // journal recovery: already-done jobs
};

class Daemon {
 public:
  Daemon(std::shared_ptr<Engine> engine, DaemonOptions options = {});
  ~Daemon();  // graceful drain unless killed

  struct SubmitOutcome {
    uint64_t jobId = 0;    // 0 when not accepted
    bool accepted = false;
    JobError error;        // kind != kNone when not accepted
  };

  // Validates, admits, journals, and enqueues. Never throws on bad input —
  // every refusal is a structured SubmitOutcome.
  SubmitOutcome submit(const JobSpec& spec);

  // Snapshot of a job's current result (nullopt: unknown id).
  std::optional<JobResult> status(uint64_t jobId) const;

  // Blocks until the job is terminal (or the daemon is killed); returns the
  // final snapshot.
  JobResult wait(uint64_t jobId);

  // Requests cooperative cancellation; returns false for unknown ids.
  // Queued jobs cancel before running; running jobs unwind at the next
  // phase/superstep boundary.
  bool cancel(uint64_t jobId);

  // Graceful drain: stop admitting, run the queue dry, join the workers.
  // Idempotent; the destructor calls it unless the daemon was killed.
  void drain();

  // SIGKILL stand-in for crash tests: stops journaling immediately, cancels
  // running jobs WITHOUT terminal records, and refuses further submits.
  // The destructor then only joins the workers — in-memory state is
  // abandoned exactly as a real kill would abandon it.
  void killForTesting();
  bool killed() const;

  size_t queueDepth() const;
  DaemonStats stats() const;
  const std::vector<uint64_t>& recoveredJobIds() const {
    return recoveredJobIds_;
  }

 private:
  struct Job {
    uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    JobError error;
    uint32_t runs = 0;
    bool disconnected = false;
    bool recovered = false;
    bool partitionCacheHit = false;
    std::chrono::steady_clock::time_point submitTime;
    std::shared_ptr<support::CancelToken> cancel =
        std::make_shared<support::CancelToken>();
    std::vector<uint64_t> intValues;
    std::vector<double> doubleValues;
    double latencySeconds = 0.0;
  };

  SubmitOutcome submitOne(JobSpec spec, bool disconnected);
  void workerLoop();
  void runJob(const std::shared_ptr<Job>& job);
  void finishJob(const std::shared_ptr<Job>& job, JobState state,
                 JobError error);
  void journalAppend(JournalRecord record, bool failSoft);
  JobResult snapshot(const Job& job) const;
  void updateQueueGauge(size_t depth);

  std::shared_ptr<Engine> engine_;
  DaemonOptions options_;
  ServiceFaultInjector injector_;
  std::unique_ptr<Journal> journal_;

  mutable std::mutex mutex_;
  std::condition_variable queueCv_;  // workers wait for jobs / stop
  std::condition_variable doneCv_;   // wait() callers
  std::deque<uint64_t> queue_;
  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  uint64_t nextJobId_ = 1;
  std::atomic<uint64_t> submitIndex_{0};  // fault-plan coordinate
  bool draining_ = false;     // no new admissions
  bool killed_ = false;       // crash simulation: journaling stopped too
  DaemonStats stats_;
  std::vector<uint64_t> recoveredJobIds_;

  std::vector<std::thread> workers_;
};

}  // namespace cusp::service
