// Deterministic fault injection for the service layer, mirroring the
// comm/storage/memory fault-plan idiom: an explicit, seedable plan of
// scheduled events plus a thread-safe injector the daemon consults at its
// seams. The four event families are the ways a fleet of clients (and the
// operator's kill -9) hurt a real daemon:
//
//  * Burst arrivals     — one submit fans out into N extra copies of the
//                         same request, flooding the bounded queue so
//                         admission control has to shed.
//  * Client disconnects — the submitting client goes away immediately; the
//                         daemon must not wedge a worker computing a result
//                         nobody will collect.
//  * Malformed requests — the request is mangled before validation (unknown
//                         graph/policy, zero hosts, bad job type) and must
//                         bounce with a structured error, never a crash.
//  * Daemon kill points — after the Nth journal record the daemon "loses
//                         power": no more journaling, workers abandon jobs
//                         at the next cancellation point, and recovery is
//                         exercised by restarting on the same journal.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "service/job.h"

namespace cusp::service {

struct BurstArrival {
  uint64_t submitIndex = 0;  // 0-based index of the triggering submit
  uint32_t extraCopies = 0;  // additional copies enqueued by the daemon
};

struct ClientDisconnect {
  uint64_t submitIndex = 0;  // this submit's client never collects/waits
};

// How a request is mangled before validation.
enum class MalformKind : uint32_t {
  kUnknownGraph = 0,
  kUnknownPolicy = 1,
  kZeroHosts = 2,
  kBadType = 3,
};

struct MalformedRequest {
  uint64_t submitIndex = 0;
  MalformKind kind = MalformKind::kUnknownGraph;
};

struct DaemonKillPoint {
  uint64_t afterJournalRecords = 0;  // fire once this many records persist
};

struct ServiceFaultPlan {
  std::vector<BurstArrival> bursts;
  std::vector<ClientDisconnect> disconnects;
  std::vector<MalformedRequest> malformed;
  std::vector<DaemonKillPoint> killPoints;

  bool empty() const {
    return bursts.empty() && disconnects.empty() && malformed.empty() &&
           killPoints.empty();
  }
};

// Applies `kind`'s mangling to a copy of `spec`.
JobSpec malformSpec(const JobSpec& spec, MalformKind kind);

// Thread-safe consumer of a plan. All lookups are pure functions of the
// submit index except the kill points, which fire exactly once each.
class ServiceFaultInjector {
 public:
  explicit ServiceFaultInjector(ServiceFaultPlan plan);

  uint32_t burstCopies(uint64_t submitIndex) const;
  bool disconnects(uint64_t submitIndex) const;
  std::optional<MalformKind> malformKind(uint64_t submitIndex) const;

  // Called by the daemon after every journal append with the cumulative
  // record count; returns true exactly once per crossed kill point.
  bool shouldKillAfterRecord(uint64_t recordCount);

  const ServiceFaultPlan& plan() const { return plan_; }

 private:
  ServiceFaultPlan plan_;
  std::mutex mutex_;
  std::vector<bool> killFired_;
};

// Seeded random plan over a workload of `numJobs` submits, in the style of
// comm::randomFaultPlan: the same seed always yields the same plan, and
// raising a max leaves the draws of the other families unchanged.
ServiceFaultPlan randomServiceFaultPlan(uint64_t seed, uint64_t numJobs,
                                        uint32_t maxBursts = 2,
                                        uint32_t maxDisconnects = 4,
                                        uint32_t maxMalformed = 3,
                                        uint32_t maxKillPoints = 0);

}  // namespace cusp::service
