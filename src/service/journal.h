// Crash-consistent job journal: a per-job write-ahead log of sequence-
// numbered record files under one directory,
//
//   <dir>/j<jobId>.s<seq>.rec
//
// Each record is the full current state of its job (spec, event, terminal
// error, run count), serialized with support/serialize.h, CRC32-footered,
// and committed with support::atomicWriteFile — so a record either exists
// whole and checksummed or not at all, regardless of where a crash (or an
// injected storage fault) lands. Recovery reads every record, drops
// corrupt/torn ones, and keeps the highest valid sequence number per job:
//
//   * newest record is terminal (succeeded/failed/shed/cancelled) — the job
//     is done; a restarted daemon reports it and never re-executes it.
//   * newest record is submitted/started/retried — the job was accepted but
//     not finished; the daemon requeues it. A partition job restarted this
//     way reuses its per-job checkpoint directory, so the resilient driver
//     resumes from the last phase every host checkpointed rather than from
//     scratch.
//   * a job whose every record is invalid never had a submit acknowledged
//     durably; it is dropped (the client was never promised anything).
//
// Journal appends go through the process-wide storage-fault seam like every
// other durable write in this codebase, so chaos tests exercise torn and
// failed journal records for free.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/job.h"

namespace cusp::service {

enum class JournalEvent : uint32_t {
  kSubmitted = 0,
  kStarted = 1,
  kRetried = 2,
  kSucceeded = 3,
  kFailed = 4,
  kCancelled = 5,
};

inline const char* journalEventName(JournalEvent e) {
  switch (e) {
    case JournalEvent::kSubmitted: return "submitted";
    case JournalEvent::kStarted: return "started";
    case JournalEvent::kRetried: return "retried";
    case JournalEvent::kSucceeded: return "succeeded";
    case JournalEvent::kFailed: return "failed";
    case JournalEvent::kCancelled: return "cancelled";
  }
  return "unknown";
}

inline bool isTerminal(JournalEvent e) {
  return e == JournalEvent::kSucceeded || e == JournalEvent::kFailed ||
         e == JournalEvent::kCancelled;
}

struct JournalRecord {
  uint64_t jobId = 0;
  uint32_t seq = 0;  // assigned by append()
  JournalEvent event = JournalEvent::kSubmitted;
  JobSpec spec;  // plain fields only; fault-plan pointers are not persisted
  JobErrorKind errorKind = JobErrorKind::kNone;
  std::string errorMessage;
  uint32_t runs = 0;
};

class Journal {
 public:
  // Opens (creating the directory if needed) and recovers: after
  // construction recovered() holds the newest valid record of every job the
  // journal knows, and append() continues each job's sequence numbering
  // where the previous process left off.
  explicit Journal(std::string dir);

  const std::string& dir() const { return dir_; }
  const std::vector<JournalRecord>& recovered() const { return recovered_; }

  // Durably appends `record` (seq assigned internally) and returns the
  // total records appended by THIS instance — the daemon's kill points
  // count against it. Throws support::StorageError when the write fails
  // (injected or real); the caller decides whether that loses an ack.
  uint64_t append(JournalRecord record);

 private:
  std::string dir_;
  std::mutex mutex_;
  std::map<uint64_t, uint32_t> nextSeq_;
  std::vector<JournalRecord> recovered_;
  uint64_t appended_ = 0;
};

}  // namespace cusp::service
