#include "service/daemon.h"

#include <algorithm>
#include <chrono>

#include "core/degraded.h"
#include "obs/obs.h"
#include "support/storage.h"

namespace cusp::service {

namespace {

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// what() of the in-flight exception; callable only inside a catch block.
std::string currentExceptionWhat() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

JobState stateOfTerminalEvent(JournalEvent e) {
  switch (e) {
    case JournalEvent::kSucceeded: return JobState::kSucceeded;
    case JournalEvent::kFailed: return JobState::kFailed;
    case JournalEvent::kCancelled: return JobState::kCancelled;
    default: return JobState::kQueued;
  }
}

}  // namespace

Daemon::Daemon(std::shared_ptr<Engine> engine, DaemonOptions options)
    : engine_(std::move(engine)),
      options_(std::move(options)),
      injector_(options_.faultPlan) {
  const auto sink = obs::sink();
  if (!options_.journalDir.empty()) {
    journal_ = std::make_unique<Journal>(options_.journalDir);
    const auto now = std::chrono::steady_clock::now();
    for (const JournalRecord& rec : journal_->recovered()) {
      auto job = std::make_shared<Job>();
      job->id = rec.jobId;
      job->spec = rec.spec;
      job->runs = rec.runs;
      job->recovered = true;
      job->submitTime = now;
      nextJobId_ = std::max(nextJobId_, rec.jobId + 1);
      if (isTerminal(rec.event)) {
        job->state = stateOfTerminalEvent(rec.event);
        job->error = {rec.errorKind, rec.errorMessage};
        ++stats_.recoveredTerminal;
        if (sink) {
          sink.metrics->counter("cusp.svc.recovered_terminal").add();
        }
      } else {
        // Accepted but unfinished when the previous process died: requeue.
        // A partition job re-runs against its per-job checkpoint dir, so
        // the resilient driver resumes rather than restarts.
        job->state = JobState::kQueued;
        if (job->spec.deadlineSeconds > 0) {
          job->cancel->armDeadline(job->spec.deadlineSeconds);
        }
        queue_.push_back(job->id);
        ++stats_.recoveredRequeued;
        if (sink) {
          sink.metrics->counter("cusp.svc.recovered_requeued").add();
        }
      }
      recoveredJobIds_.push_back(job->id);
      jobs_.emplace(job->id, std::move(job));
    }
    updateQueueGauge(queue_.size());
  }
  const uint32_t n = std::max(1u, options_.workers);
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

Daemon::~Daemon() { drain(); }

void Daemon::updateQueueGauge(size_t depth) {
  if (const auto sink = obs::sink()) {
    sink.metrics->gauge("cusp.svc.queue_depth")
        .set(static_cast<double>(depth));
  }
}

void Daemon::journalAppend(JournalRecord record, bool failSoft) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (journal_ == nullptr || killed_) {
      return;  // volatile daemon, or the "power" is already off
    }
  }
  uint64_t count = 0;
  try {
    count = journal_->append(std::move(record));
  } catch (const support::StorageError&) {
    if (const auto sink = obs::sink()) {
      sink.metrics->counter("cusp.svc.journal_write_failures").add();
    }
    if (!failSoft) {
      throw;
    }
    return;  // at-least-once: a lost non-submit record only means the job
             // replays further back after a crash
  }
  if (const auto sink = obs::sink()) {
    sink.metrics->counter("cusp.svc.journal_records").add();
  }
  if (injector_.shouldKillAfterRecord(count)) {
    killForTesting();
  }
}

Daemon::SubmitOutcome Daemon::submit(const JobSpec& spec) {
  const uint64_t index = submitIndex_.fetch_add(1, std::memory_order_relaxed);
  JobSpec effective = spec;
  if (const auto kind = injector_.malformKind(index)) {
    effective = malformSpec(spec, *kind);
  }
  const SubmitOutcome primary =
      submitOne(effective, injector_.disconnects(index));
  // Burst arrivals: the same request lands again N times, back to back,
  // from clients that will never collect. Admission decides per copy, so a
  // burst against a short queue is exactly what exercises kShedQueueFull.
  const uint32_t copies = injector_.burstCopies(index);
  for (uint32_t c = 0; c < copies; ++c) {
    submitOne(effective, /*disconnected=*/true);
  }
  return primary;
}

Daemon::SubmitOutcome Daemon::submitOne(JobSpec spec, bool disconnected) {
  const auto sink = obs::sink();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submitted;
  }
  if (sink) {
    sink.metrics->counter("cusp.svc.jobs_submitted").add();
  }

  const JobError invalid = engine_->validate(spec);
  if (invalid.kind != JobErrorKind::kNone) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected;
    if (sink) {
      sink.metrics->counter("cusp.svc.jobs_rejected",
                            {{"kind", jobErrorKindName(invalid.kind)}})
          .add();
    }
    return {0, false, invalid};
  }

  auto shed = [&](JobErrorKind kind, std::string message) -> SubmitOutcome {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.shed;
    }
    if (sink) {
      sink.metrics->counter("cusp.svc.jobs_shed",
                            {{"reason", jobErrorKindName(kind)}})
          .add();
    }
    return {0, false, {kind, std::move(message)}};
  };

  // Decide under the lock, shed after releasing it: the shed helper takes
  // mutex_ itself for the stats bump, so calling it from inside this scope
  // would self-deadlock.
  bool shuttingDown = false;
  bool queueFull = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shuttingDown = draining_ || killed_;
    queueFull = !shuttingDown && queue_.size() >= options_.maxQueueDepth;
  }
  if (shuttingDown) {
    return shed(JobErrorKind::kShedDraining, "daemon is shutting down");
  }
  if (queueFull) {
    return shed(JobErrorKind::kShedQueueFull,
                "queue at capacity (" +
                    std::to_string(options_.maxQueueDepth) + ")");
  }
  if (const auto over = engine_->admit(spec)) {
    return shed(over->kind, over->message);
  }

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job = std::make_shared<Job>();
    job->id = nextJobId_++;
    job->spec = spec;
    job->disconnected = disconnected;
    job->submitTime = std::chrono::steady_clock::now();
    jobs_.emplace(job->id, job);
  }
  // Durable acceptance BEFORE the ack: a job the client was promised must
  // survive a crash. If the journal write fails, the promise is withdrawn.
  try {
    JournalRecord rec;
    rec.jobId = job->id;
    rec.event = JournalEvent::kSubmitted;
    rec.spec = spec;
    journalAppend(std::move(rec), /*failSoft=*/false);
  } catch (const support::StorageError& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(job->id);
    return {0, false,
            {JobErrorKind::kInternal,
             std::string("journal write failed: ") + e.what()}};
  }
  if (spec.deadlineSeconds > 0) {
    job->cancel->armDeadline(spec.deadlineSeconds);
  }
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(job->id);
    depth = queue_.size();
    ++stats_.accepted;
  }
  if (sink) {
    sink.metrics->counter("cusp.svc.jobs_accepted").add();
  }
  updateQueueGauge(depth);
  queueCv_.notify_one();
  return {job->id, true, {}};
}

void Daemon::workerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queueCv_.wait(lock, [&] {
        return killed_ || !queue_.empty() || draining_;
      });
      if (killed_) {
        return;
      }
      if (queue_.empty()) {
        if (draining_) {
          return;
        }
        continue;
      }
      const uint64_t id = queue_.front();
      queue_.pop_front();
      job = jobs_.at(id);
      job->state = JobState::kRunning;
    }
    updateQueueGauge(queueDepth());
    runJob(job);
  }
}

void Daemon::runJob(const std::shared_ptr<Job>& job) {
  if (job->disconnected) {
    // The client is gone; don't spend a worker computing into the void.
    finishJob(job, JobState::kCancelled,
              {JobErrorKind::kCancelled, "client disconnected before start"});
    return;
  }
  {
    JournalRecord rec;
    rec.jobId = job->id;
    rec.event = JournalEvent::kStarted;
    rec.spec = job->spec;
    rec.runs = job->runs;
    journalAppend(std::move(rec), /*failSoft=*/true);
  }
  for (;;) {
    ++job->runs;
    try {
      job->cancel->check("job start");
      Engine::RunOutcome outcome =
          engine_->run(job->spec, job->id, job->cancel);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job->partitionCacheHit = outcome.partitionCacheHit;
        job->intValues = std::move(outcome.intValues);
        job->doubleValues = std::move(outcome.doubleValues);
      }
      finishJob(job, JobState::kSucceeded, {});
      return;
    } catch (const support::JobCancelled& e) {
      finishJob(job, JobState::kCancelled,
                {e.byDeadline() ? JobErrorKind::kDeadlineExceeded
                                : JobErrorKind::kCancelled,
                 e.what()});
      return;
    } catch (...) {
      const auto classified =
          core::classifyFault(std::current_exception());
      const std::string what =
          classified ? classified->what : currentExceptionWhat();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (killed_) {
          return;  // crash simulation: abandon without a terminal record
        }
      }
      if (classified && job->runs <= job->spec.maxRetries) {
        // Transient by classification: back off and re-run. The per-job
        // checkpoint dir survives, so the re-run resumes, not restarts.
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.retries;
        }
        if (const auto sink = obs::sink()) {
          sink.metrics->counter("cusp.svc.retries").add();
        }
        JournalRecord rec;
        rec.jobId = job->id;
        rec.event = JournalEvent::kRetried;
        rec.spec = job->spec;
        rec.runs = job->runs;
        rec.errorKind = JobErrorKind::kResilienceExhausted;
        rec.errorMessage = what;
        journalAppend(std::move(rec), /*failSoft=*/true);
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.retryBackoffSeconds *
            static_cast<double>(1u << std::min(job->runs - 1, 10u))));
        continue;
      }
      finishJob(job, JobState::kFailed,
                {classified ? JobErrorKind::kResilienceExhausted
                            : JobErrorKind::kInternal,
                 (classified ? std::string(classified->kindName()) + ": "
                             : std::string()) +
                     what});
      return;
    }
  }
}

void Daemon::finishJob(const std::shared_ptr<Job>& job, JobState state,
                       JobError error) {
  bool abandoned = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    abandoned = killed_;
    job->state = state;
    // A requeued job that just ran to terminal has a REAL outcome now, not
    // a journal-reconstructed one; `recovered` only stays set on results
    // rebuilt from terminal records (whose payloads died with the old
    // process).
    job->recovered = false;
    job->error = std::move(error);
    job->latencySeconds = secondsSince(job->submitTime);
    switch (state) {
      case JobState::kSucceeded: ++stats_.succeeded; break;
      case JobState::kFailed: ++stats_.failed; break;
      case JobState::kCancelled: ++stats_.cancelled; break;
      default: break;
    }
  }
  if (!abandoned) {
    JournalRecord rec;
    rec.jobId = job->id;
    rec.event = state == JobState::kSucceeded ? JournalEvent::kSucceeded
                : state == JobState::kFailed  ? JournalEvent::kFailed
                                              : JournalEvent::kCancelled;
    rec.spec = job->spec;
    rec.runs = job->runs;
    rec.errorKind = job->error.kind;
    rec.errorMessage = job->error.message;
    journalAppend(std::move(rec), /*failSoft=*/true);
    if (const auto sink = obs::sink()) {
      sink.metrics
          ->counter("cusp.svc.jobs_done", {{"state", jobStateName(state)}})
          .add();
      sink.metrics->histogram("cusp.svc.job_latency_seconds")
          .observe(job->latencySeconds);
    }
  }
  doneCv_.notify_all();
}

JobResult Daemon::snapshot(const Job& job) const {
  JobResult r;
  r.jobId = job.id;
  r.spec = job.spec;
  r.state = job.state;
  r.error = job.error;
  r.runs = job.runs;
  r.latencySeconds = job.latencySeconds;
  r.partitionCacheHit = job.partitionCacheHit;
  r.recovered = job.recovered;
  r.intValues = job.intValues;
  r.doubleValues = job.doubleValues;
  return r;
}

std::optional<JobResult> Daemon::status(uint64_t jobId) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end()) {
    return std::nullopt;
  }
  return snapshot(*it->second);
}

JobResult Daemon::wait(uint64_t jobId) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end()) {
    JobResult r;
    r.jobId = jobId;
    r.state = JobState::kFailed;
    r.error = {JobErrorKind::kBadRequest, "unknown job id"};
    return r;
  }
  const std::shared_ptr<Job> job = it->second;
  doneCv_.wait(lock, [&] { return isTerminal(job->state) || killed_; });
  return snapshot(*job);
}

bool Daemon::cancel(uint64_t jobId) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(jobId);
  if (it == jobs_.end() || isTerminal(it->second->state)) {
    return false;
  }
  it->second->cancel->cancel();
  return true;
}

void Daemon::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  queueCv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  doneCv_.notify_all();
}

void Daemon::killForTesting() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (killed_) {
      return;
    }
    killed_ = true;
    draining_ = true;
    for (auto& [id, job] : jobs_) {
      if (!isTerminal(job->state)) {
        job->cancel->cancel();
      }
    }
  }
  queueCv_.notify_all();
  doneCv_.notify_all();
}

bool Daemon::killed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return killed_;
}

size_t Daemon::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace cusp::service
