#include "service/engine.h"

#include <algorithm>
#include <cctype>
#include <chrono>

#include "analytics/algorithms.h"
#include "core/policies.h"
#include "obs/obs.h"
#include "support/memory.h"

namespace cusp::service {

namespace {

std::string upper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

bool knownPolicy(const std::string& name) {
  const auto& catalog = core::policyCatalog();
  return std::find(catalog.begin(), catalog.end(), upper(name)) !=
         catalog.end();
}

}  // namespace

void HostPool::acquire(uint32_t n,
                       const std::shared_ptr<support::CancelToken>& cancel) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (free_ >= n) {
      free_ -= n;
      return;
    }
    // Bounded waits keep the pool a cancellation point: a job whose
    // deadline expires while queued for capacity unwinds here instead of
    // occupying a worker forever.
    cv_.wait_for(lock, std::chrono::milliseconds(10));
    if (cancel) {
      cancel->check("host pool acquire");
    }
  }
}

void HostPool::release(uint32_t n) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    free_ += n;
  }
  cv_.notify_all();
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      hostPool_(std::max(1u, options_.hostPoolSize)) {}

void Engine::registerGraph(const std::string& id, graph::GraphFile file) {
  std::lock_guard<std::mutex> lock(mutex_);
  graphs_.insert_or_assign(id, std::move(file));
}

bool Engine::hasGraph(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.count(id) > 0;
}

std::vector<std::string> Engine::graphIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(graphs_.size());
  for (const auto& [id, file] : graphs_) {
    ids.push_back(id);
  }
  return ids;
}

JobError Engine::validate(const JobSpec& spec) const {
  switch (spec.type) {
    case JobType::kPartition:
    case JobType::kBfs:
    case JobType::kSssp:
    case JobType::kCc:
    case JobType::kPageRank:
      break;
    default:
      return {JobErrorKind::kBadRequest,
              "unknown job type " +
                  std::to_string(static_cast<uint32_t>(spec.type))};
  }
  if (spec.numHosts == 0) {
    return {JobErrorKind::kBadRequest, "numHosts must be > 0"};
  }
  if (spec.numHosts > hostPool_.total()) {
    return {JobErrorKind::kBadRequest,
            "numHosts " + std::to_string(spec.numHosts) +
                " exceeds the host pool (" +
                std::to_string(hostPool_.total()) + ")"};
  }
  if (!knownPolicy(spec.policy)) {
    return {JobErrorKind::kUnknownPolicy,
            "unknown partition policy '" + spec.policy + "'"};
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = graphs_.find(spec.graphId);
  if (it == graphs_.end()) {
    return {JobErrorKind::kUnknownGraph,
            "unknown graph '" + spec.graphId + "'"};
  }
  if ((spec.type == JobType::kBfs || spec.type == JobType::kSssp) &&
      spec.sourceGid >= it->second.numNodes()) {
    return {JobErrorKind::kBadRequest,
            "source " + std::to_string(spec.sourceGid) +
                " out of range (graph has " +
                std::to_string(it->second.numNodes()) + " nodes)"};
  }
  if (spec.type == JobType::kSssp && !it->second.hasEdgeData()) {
    return {JobErrorKind::kBadRequest,
            "sssp requires a weighted graph; '" + spec.graphId +
                "' has no edge data"};
  }
  return {JobErrorKind::kNone, ""};
}

uint64_t Engine::estimateFootprintBytes(const JobSpec& spec) const {
  uint64_t graphBytes = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = graphs_.find(spec.graphId);
    if (it == graphs_.end()) {
      return 0;
    }
    const graph::GraphFile& f = it->second;
    graphBytes = (f.numNodes() + 1) * 8 + f.numEdges() * 8 +
                 (f.hasEdgeData() ? f.numEdges() * 4 : 0);
  }
  // Host read windows hold one copy of the CSR between them; the assembled
  // partitions hold roughly replication-factor (~2 at service host counts)
  // more; construction-phase message buffers and per-host maps round up to
  // one more. Deliberately a ceiling: admission shedding a borderline job
  // is a refusal the client can see, an OOM kill is not.
  constexpr uint64_t kPerHostOverhead = 1ull << 20;
  return 4 * graphBytes + spec.numHosts * kPerHostOverhead;
}

std::optional<JobError> Engine::admit(const JobSpec& spec) const {
  if (!support::memoryBudgetAttached()) {
    return std::nullopt;
  }
  const support::MemoryBudgetStats stats = support::memoryBudget()->stats();
  const uint64_t freeBytes =
      stats.totalBytes > stats.inUseBytes ? stats.totalBytes - stats.inUseBytes
                                          : 0;
  const uint64_t estimate = estimateFootprintBytes(spec);
  const auto allowed =
      static_cast<uint64_t>(options_.admissionHeadroom *
                            static_cast<double>(freeBytes));
  if (estimate > allowed) {
    return JobError{
        JobErrorKind::kShedMemory,
        "estimated footprint " + std::to_string(estimate) +
            " bytes exceeds admissible " + std::to_string(allowed) +
            " of " + std::to_string(freeBytes) + " free budget bytes"};
  }
  return std::nullopt;
}

Engine::PartitionSet Engine::cachedPartitions(const std::string& graphId,
                                              const std::string& policy,
                                              uint32_t numHosts) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find({graphId, upper(policy), numHosts});
  return it != cache_.end() ? it->second : nullptr;
}

Engine::PartitionSet Engine::partitionLocked(
    const JobSpec& spec, uint64_t jobId,
    const std::shared_ptr<support::CancelToken>& cancel, bool* cacheHit,
    core::RecoveryReport* recovery) {
  const CacheKey key{spec.graphId, upper(spec.policy), spec.numHosts};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      *cacheHit = true;
      cacheHits_.fetch_add(1, std::memory_order_relaxed);
      if (const auto sink = obs::sink()) {
        sink.metrics->counter("cusp.svc.cache_hits").add();
      }
      return it->second;
    }
  }
  *cacheHit = false;
  cacheMisses_.fetch_add(1, std::memory_order_relaxed);
  if (const auto sink = obs::sink()) {
    sink.metrics->counter("cusp.svc.cache_misses").add();
  }

  core::PartitionerConfig config = options_.baseConfig;
  config.numHosts = spec.numHosts;
  config.resilience.cancel = cancel;
  config.resilience.faultPlan = spec.faultPlan;
  config.resilience.memoryFaultPlan = spec.memoryFaultPlan;
  if (spec.recvTimeoutSeconds > 0) {
    config.resilience.recvTimeoutSeconds = spec.recvTimeoutSeconds;
  }
  config.resilience.maxRecoveryAttempts = spec.maxRecoveryAttempts;
  if (options_.enableCheckpoints && !options_.workDir.empty()) {
    config.resilience.enableCheckpoints = true;
    config.resilience.checkpointDir =
        options_.workDir + "/j" + std::to_string(jobId);
  }
  // Fresh health latch per run: this job's ENOSPC verdict must not leak
  // into sibling jobs through a shared config object.
  config.resilience.checkpointHealth =
      std::make_shared<core::CheckpointHealth>();

  const core::PartitionPolicy policy = core::makePolicy(upper(spec.policy));

  hostPool_.acquire(spec.numHosts, cancel);
  core::PartitionResult result;
  try {
    const graph::GraphFile* file = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = graphs_.find(spec.graphId);
      if (it == graphs_.end()) {
        throw std::invalid_argument("unknown graph '" + spec.graphId + "'");
      }
      // Safe outside the lock: registered graphs are never erased, and
      // insert_or_assign of a colliding id is an operator error the
      // validate() path already guards in the daemon flow.
      file = &it->second;
    }
    result = core::partitionGraphResilient(*file, policy, config, recovery);
  } catch (...) {
    hostPool_.release(spec.numHosts);
    throw;
  }
  hostPool_.release(spec.numHosts);

  auto set = std::make_shared<const std::vector<core::DistGraph>>(
      std::move(result.partitions));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Two concurrent misses of the same key both compute (identical bytes
    // for deterministic policies); first insert wins so every consumer
    // shares one copy.
    const auto [it, inserted] = cache_.emplace(key, set);
    set = it->second;
  }
  return set;
}

Engine::RunOutcome Engine::run(
    const JobSpec& spec, uint64_t jobId,
    const std::shared_ptr<support::CancelToken>& cancel) {
  if (cancel) {
    cancel->check("engine run start");
  }
  RunOutcome outcome;
  outcome.partitions = partitionLocked(spec, jobId, cancel,
                                       &outcome.partitionCacheHit,
                                       &outcome.recovery);
  if (spec.type == JobType::kPartition) {
    return outcome;
  }

  analytics::ResilienceOptions opts;
  opts.cancel = cancel;
  opts.faultPlan = spec.faultPlan;
  opts.recvTimeoutSeconds = spec.recvTimeoutSeconds;
  opts.maxRecoveryAttempts = spec.maxRecoveryAttempts;
  if (options_.enableCheckpoints && !options_.workDir.empty()) {
    opts.enableCheckpoints = true;
    opts.checkpointDir =
        options_.workDir + "/j" + std::to_string(jobId) + "/analytics";
  }
  const std::span<const core::DistGraph> parts(*outcome.partitions);

  hostPool_.acquire(spec.numHosts, cancel);
  try {
    switch (spec.type) {
      case JobType::kBfs:
        outcome.intValues =
            analytics::runBfsResilient(parts, spec.sourceGid, opts);
        break;
      case JobType::kSssp:
        outcome.intValues =
            analytics::runSsspResilient(parts, spec.sourceGid, opts);
        break;
      case JobType::kCc:
        outcome.intValues = analytics::runCcResilient(parts, opts);
        break;
      case JobType::kPageRank:
        outcome.doubleValues =
            analytics::runPageRankResilient(parts, options_.pageRank, opts);
        break;
      default:
        throw std::invalid_argument("unknown job type");
    }
  } catch (...) {
    hostPool_.release(spec.numHosts);
    throw;
  }
  hostPool_.release(spec.numHosts);
  return outcome;
}

}  // namespace cusp::service
