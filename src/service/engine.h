// The reusable partition/analytics engine behind the cuspd daemon.
//
// Before this layer existed, one process ran one pipeline: the entry points
// in core/partitioner.* and analytics/resilient.* were driven straight from
// a main() with process-lifetime assumptions (one budget attach, one
// checkpoint dir, one fault plan). Engine packages them as job-oriented
// objects a multi-tenant daemon can drive concurrently:
//
//  * a registry of named graphs jobs refer to by id,
//  * a shared host pool bounding the total simulated host threads alive at
//    once across all concurrent jobs,
//  * a partition cache keyed by (graphId, policy, numHosts) — analytics
//    jobs run on cached partition sets and recompute them on miss,
//  * footprint estimation + admission against the process-wide
//    support::MemoryBudget (jobs that cannot fit are shed, never OOM),
//  * per-job checkpoint directories under a common scratch root, so the
//    resilient drivers' recovery machinery — and crash-time resume — work
//    per job instead of per process.
//
// Concurrency contract: the process-wide seams (memory budget, write
// fence, storage faults, obs sink) are attached ONCE, by the daemon or the
// test, for the process lifetime. partitionGraphResilient already skips its
// per-run attaches when a seam is pre-attached, so concurrent jobs share
// the process seams instead of fighting over scoped attach/restore order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "analytics/resilient.h"
#include "core/partitioner.h"
#include "graph/graph_file.h"
#include "service/job.h"
#include "support/cancel.h"

namespace cusp::service {

// Counting semaphore over simulated host-thread slots. A job acquires
// spec.numHosts slots for the duration of each engine run; acquisition is a
// cancellation point so a queued job's deadline keeps ticking while it
// waits for capacity.
class HostPool {
 public:
  explicit HostPool(uint32_t slots) : free_(slots), total_(slots) {}

  uint32_t total() const { return total_; }

  void acquire(uint32_t n, const std::shared_ptr<support::CancelToken>& cancel);
  void release(uint32_t n);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  uint32_t free_;
  const uint32_t total_;
};

struct EngineOptions {
  // Upper bound on simulated host threads running at once across all jobs.
  uint32_t hostPoolSize = 16;
  // Scratch root for per-job checkpoint dirs (<workDir>/j<id>); empty
  // disables checkpointing (jobs restart from scratch after faults).
  std::string workDir;
  bool enableCheckpoints = true;
  // Defaults for every partition run; numHosts/resilience are overwritten
  // per job from its spec.
  core::PartitionerConfig baseConfig;
  analytics::PageRankParams pageRank;
  // Admission refuses a job whose estimated footprint exceeds this fraction
  // of the attached budget's free bytes (headroom for the sibling jobs'
  // transient spikes).
  double admissionHeadroom = 0.9;
};

class Engine {
 public:
  using PartitionSet = std::shared_ptr<const std::vector<core::DistGraph>>;

  explicit Engine(EngineOptions options = {});

  void registerGraph(const std::string& id, graph::GraphFile file);
  bool hasGraph(const std::string& id) const;
  std::vector<std::string> graphIds() const;

  // Structured spec validation: kNone when runnable, else the exact
  // rejection (unknown graph/policy, zero or over-pool hosts, bad type,
  // out-of-range source, sssp on an unweighted graph).
  JobError validate(const JobSpec& spec) const;

  // Deterministic upper bound on the resident bytes a run of `spec` adds:
  // the host windows, the assembled partitions (~replication-factor copies
  // of the graph), and the construction-phase message buffers.
  uint64_t estimateFootprintBytes(const JobSpec& spec) const;

  // Admission control: nullopt admits; otherwise the structured shed error
  // (kShedMemory). Admits everything when no process budget is attached.
  std::optional<JobError> admit(const JobSpec& spec) const;

  struct RunOutcome {
    PartitionSet partitions;  // the job's (graphId, policy, numHosts) set
    bool partitionCacheHit = false;
    std::vector<uint64_t> intValues;   // bfs/sssp/cc
    std::vector<double> doubleValues;  // pagerank
    core::RecoveryReport recovery;     // partition leg (when one ran)
  };

  // Runs the job synchronously on the calling thread (a daemon worker),
  // holding spec.numHosts host-pool slots for each engine leg. Throws
  // support::JobCancelled at cancellation points and the structured fault
  // exceptions of the resilient drivers when the ladder is exhausted.
  // `jobId` keys the per-job checkpoint directory, so a re-run of the same
  // job id resumes from its own checkpoints.
  RunOutcome run(const JobSpec& spec, uint64_t jobId,
                 const std::shared_ptr<support::CancelToken>& cancel);

  PartitionSet cachedPartitions(const std::string& graphId,
                                const std::string& policy,
                                uint32_t numHosts) const;

  uint64_t cacheHits() const { return cacheHits_; }
  uint64_t cacheMisses() const { return cacheMisses_; }
  const EngineOptions& options() const { return options_; }

 private:
  using CacheKey = std::tuple<std::string, std::string, uint32_t>;

  PartitionSet partitionLocked(const JobSpec& spec, uint64_t jobId,
                               const std::shared_ptr<support::CancelToken>&
                                   cancel,
                               bool* cacheHit, core::RecoveryReport* recovery);

  EngineOptions options_;
  HostPool hostPool_;

  mutable std::mutex mutex_;  // graphs + cache
  std::map<std::string, graph::GraphFile> graphs_;
  std::map<CacheKey, PartitionSet> cache_;
  std::atomic<uint64_t> cacheHits_{0};
  std::atomic<uint64_t> cacheMisses_{0};
};

}  // namespace cusp::service
