#include "analytics/reference.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <stdexcept>

namespace cusp::analytics {

std::vector<uint64_t> bfsReference(const graph::CsrGraph& graph,
                                   uint64_t source) {
  if (source >= graph.numNodes()) {
    throw std::out_of_range("bfsReference: source out of range");
  }
  std::vector<uint64_t> dist(graph.numNodes(), kInfinity);
  std::deque<uint64_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const uint64_t u = queue.front();
    queue.pop_front();
    for (uint64_t v : graph.outNeighbors(u)) {
      if (dist[v] == kInfinity) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> ssspReference(const graph::CsrGraph& graph,
                                    uint64_t source) {
  if (source >= graph.numNodes()) {
    throw std::out_of_range("ssspReference: source out of range");
  }
  std::vector<uint64_t> dist(graph.numNodes(), kInfinity);
  using Item = std::pair<uint64_t, uint64_t>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) {
      continue;
    }
    for (uint64_t e = graph.edgeBegin(u); e < graph.edgeEnd(u); ++e) {
      const uint64_t v = graph.edgeDst(e);
      const uint64_t nd = d + graph.edgeData(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.emplace(nd, v);
      }
    }
  }
  return dist;
}

std::vector<uint64_t> ccReference(const graph::CsrGraph& graph) {
  std::vector<uint64_t> label(graph.numNodes());
  for (uint64_t v = 0; v < graph.numNodes(); ++v) {
    label[v] = v;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint64_t u = 0; u < graph.numNodes(); ++u) {
      for (uint64_t v : graph.outNeighbors(u)) {
        if (label[u] < label[v]) {
          label[v] = label[u];
          changed = true;
        }
      }
    }
  }
  return label;
}

std::vector<uint64_t> kCoreReference(const graph::CsrGraph& graph,
                                     uint64_t k) {
  const uint64_t numNodes = graph.numNodes();
  std::vector<uint64_t> degree(numNodes);
  std::vector<uint64_t> alive(numNodes, 1);
  std::deque<uint64_t> queue;
  for (uint64_t v = 0; v < numNodes; ++v) {
    degree[v] = graph.outDegree(v);
    if (degree[v] < k) {
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const uint64_t v = queue.front();
    queue.pop_front();
    if (alive[v] == 0) {
      continue;
    }
    alive[v] = 0;
    for (uint64_t n : graph.outNeighbors(v)) {
      if (degree[n] > 0) {
        --degree[n];
      }
      if (alive[n] != 0 && degree[n] < k) {
        queue.push_back(n);
      }
    }
  }
  return alive;
}

uint64_t triangleCountReference(const graph::CsrGraph& graph) {
  const uint64_t numNodes = graph.numNodes();
  auto orderKey = [&](uint64_t v) {
    return std::make_pair(graph.outDegree(v), v);
  };
  // Forward (degree-oriented) adjacency, sorted.
  std::vector<std::vector<uint64_t>> forward(numNodes);
  for (uint64_t u = 0; u < numNodes; ++u) {
    for (uint64_t v : graph.outNeighbors(u)) {
      if (orderKey(u) < orderKey(v)) {
        forward[u].push_back(v);
      }
    }
    std::sort(forward[u].begin(), forward[u].end());
  }
  uint64_t count = 0;
  for (uint64_t u = 0; u < numNodes; ++u) {
    for (uint64_t v : forward[u]) {
      const auto& a = forward[u];
      const auto& b = forward[v];
      size_t i = 0;
      size_t j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          ++count;
          ++i;
          ++j;
        }
      }
    }
  }
  return count;
}

std::vector<double> pageRankReference(const graph::CsrGraph& graph,
                                      const PageRankParams& params) {
  const uint64_t numNodes = graph.numNodes();
  if (numNodes == 0) {
    return {};
  }
  const double n = static_cast<double>(numNodes);
  std::vector<double> rank(numNodes, 1.0 / n);
  std::vector<double> accum(numNodes, 0.0);
  for (uint32_t iter = 0; iter < params.maxIterations; ++iter) {
    std::fill(accum.begin(), accum.end(), 0.0);
    for (uint64_t u = 0; u < numNodes; ++u) {
      const uint64_t degree = graph.outDegree(u);
      if (degree == 0) {
        continue;  // dangling mass dropped, matching the distributed engine
      }
      const double share = rank[u] / static_cast<double>(degree);
      for (uint64_t v : graph.outNeighbors(u)) {
        accum[v] += share;
      }
    }
    double delta = 0.0;
    for (uint64_t v = 0; v < numNodes; ++v) {
      const double updated =
          (1.0 - params.damping) / n + params.damping * accum[v];
      delta = std::max(delta, std::abs(updated - rank[v]));
      rank[v] = updated;
    }
    if (delta < params.tolerance) {
      break;
    }
  }
  return rank;
}

}  // namespace cusp::analytics
