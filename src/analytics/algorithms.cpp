#include "analytics/algorithms.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "analytics/engine.h"
#include "obs/obs.h"
#include "support/timer.h"

namespace cusp::analytics {

namespace {

using core::DistGraph;
using support::DynamicBitset;

// Per-algorithm-run observability, resolved once per host: a superstep
// counter and frontier-size histogram labelled by algorithm, plus the trace
// buffer for per-round spans. All members stay null without a sink.
struct RoundObs {
  std::shared_ptr<obs::TraceBuffer> trace;
  std::shared_ptr<obs::MetricsRegistry> metrics;
  obs::Counter* supersteps = nullptr;
  obs::Histogram* frontier = nullptr;

  explicit RoundObs(const char* algo) {
    if (!obs::attached()) {
      return;
    }
    const obs::Sink sink = obs::sink();
    trace = sink.trace;
    if (sink.metrics) {
      metrics = sink.metrics;
      supersteps = &metrics->counter("cusp.analytics.supersteps",
                                     {{"algo", algo}});
      frontier = &metrics->histogram("cusp.analytics.frontier_size",
                                     {{"algo", algo}});
    }
  }
};

void requireCsrOrientation(const DistGraph& part) {
  if (part.isTransposed) {
    throw std::invalid_argument(
        "analytics: partition is in CSC orientation; algorithms expect CSR "
        "(out-edge) partitions");
  }
}

// Shared skeleton for bfs / sssp / cc: Bellman-Ford-style rounds.
// candidate(value[u], edgeId) proposes a value for the edge's destination;
// the global fixpoint of min over all proposals is computed. `init`
// seeds per-local-node values and the initial frontier.
std::vector<uint64_t> minPropagate(
    comm::Network& net, comm::HostId me, const DistGraph& part,
    const std::function<uint64_t(uint64_t lid, uint64_t gid)>& init,
    const std::function<uint64_t(uint64_t value, uint64_t edge)>& candidate,
    uint32_t* roundsOut, double* modeledSecondsOut) {
  requireCsrOrientation(part);
  SyncContext sync(net, me, part);
  const uint64_t numLocal = part.numLocalNodes();
  std::vector<uint64_t> value(numLocal);
  DynamicBitset frontier(numLocal);   // nodes to relax from this round
  DynamicBitset dirty(numLocal);      // nodes whose value changed this round
  for (uint64_t lid = 0; lid < numLocal; ++lid) {
    value[lid] = init(lid, part.globalId(lid));
    if (value[lid] != kInfinity) {
      frontier.set(lid);
    }
  }
  auto combineMin = [](uint64_t& acc, uint64_t in) {
    if (in < acc) {
      acc = in;
      return true;
    }
    return false;
  };
  uint32_t rounds = 0;
  double clusterSeconds = 0.0;  // sum over rounds of the slowest host
  RoundObs robs("min_propagate");
  for (;;) {
    obs::ScopedSpan roundSpan(robs.trace.get(), me,
                              "superstep " + std::to_string(rounds));
    const double cpu0 = support::threadCpuSeconds();
    const double comm0 = net.modeledCommSeconds(me);
    // Local relaxation along out-edges.
    std::vector<uint64_t> active;
    frontier.collectSetBits(active);
    frontier.resetAll();
    if (robs.supersteps != nullptr) {
      robs.supersteps->add();
      robs.frontier->observe(static_cast<double>(active.size()));
    }
    for (uint64_t u : active) {
      if (value[u] == kInfinity) {
        continue;
      }
      for (uint64_t e = part.graph.edgeBegin(u); e < part.graph.edgeEnd(u);
           ++e) {
        const uint64_t v = part.graph.edgeDst(e);
        const uint64_t proposal = candidate(value[u], e);
        if (proposal < value[v]) {
          value[v] = proposal;
          dirty.set(v);
        }
      }
    }
    // Mirrors push changes to masters (min), masters push canonical values
    // back; every changed node joins the next frontier.
    DynamicBitset masterChanged(numLocal);
    sync.reduceToMasters<uint64_t>(value, dirty, combineMin, masterChanged);
    // Masters changed locally this round must broadcast too.
    std::vector<uint64_t> dirtyMasters;
    dirty.collectSetBits(dirtyMasters);
    for (uint64_t lid : dirtyMasters) {
      if (part.isMaster(lid)) {
        masterChanged.set(lid);
      }
      frontier.set(lid);
    }
    DynamicBitset mirrorUpdated(numLocal);
    sync.broadcastToMirrors<uint64_t>(value, masterChanged, mirrorUpdated);
    std::vector<uint64_t> updated;
    masterChanged.collectSetBits(updated);
    mirrorUpdated.collectSetBits(updated);
    for (uint64_t lid : updated) {
      frontier.set(lid);
    }
    dirty.resetAll();
    ++rounds;
    // BSP makespan: the round ends for everyone when the slowest host
    // finishes its compute + modeled communication.
    const double myRound = (support::threadCpuSeconds() - cpu0) +
                           (net.modeledCommSeconds(me) - comm0);
    clusterSeconds += net.allReduceMax(me, myRound);
    if (!net.allReduceOr(me, frontier.any())) {
      break;
    }
  }
  if (roundsOut != nullptr) {
    *roundsOut = rounds;
  }
  if (modeledSecondsOut != nullptr) {
    *modeledSecondsOut = clusterSeconds;
  }
  return value;
}

}  // namespace

// Global out-degrees at every proxy: local degrees add-reduced to masters,
// then broadcast. Needed by pagerank (a vertex-cut splits a node's
// out-edges across hosts).
std::vector<uint64_t> globalOutDegreesOnHost(comm::Network& net,
                                             comm::HostId me,
                                             const DistGraph& part) {
  SyncContext sync(net, me, part);
  const uint64_t numLocal = part.numLocalNodes();
  std::vector<uint64_t> degree(numLocal);
  DynamicBitset dirty(numLocal);
  for (uint64_t lid = 0; lid < numLocal; ++lid) {
    degree[lid] = part.graph.outDegree(lid);
    dirty.set(lid);
  }
  DynamicBitset changed(numLocal);
  sync.reduceToMasters<uint64_t>(
      degree, dirty,
      [](uint64_t& acc, uint64_t in) {
        acc += in;
        return true;
      },
      changed);
  DynamicBitset allMasters(numLocal);
  for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
    allMasters.set(lid);
  }
  DynamicBitset mirrorUpdated(numLocal);
  sync.broadcastToMirrors<uint64_t>(degree, allMasters, mirrorUpdated);
  return degree;
}

namespace {

// Runs hostMain on every host of a fresh Network over `partitions` and
// gathers the master values into a global array.
template <typename T, typename HostFn>
std::vector<T> runGathered(std::span<const DistGraph> partitions,
                           RunStats* stats,
                           const comm::NetworkCostModel& costModel,
                           HostFn&& hostMain) {
  if (partitions.empty()) {
    return {};
  }
  const uint32_t numHosts = static_cast<uint32_t>(partitions.size());
  comm::Network net(numHosts, costModel);
  std::vector<T> global(partitions.front().numGlobalNodes);
  std::vector<uint32_t> roundsPerHost(numHosts, 0);
  std::vector<double> modeledPerHost(numHosts, 0.0);
  support::Timer timer;
  comm::runHosts(net, [&](comm::HostId me) {
    const DistGraph& part = partitions[me];
    std::vector<T> local =
        hostMain(net, me, part, &roundsPerHost[me], &modeledPerHost[me]);
    // Masters hold the canonical values; global ids are disjoint across
    // hosts' master sets, so concurrent writes land on distinct slots.
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      global[part.globalId(lid)] = local[lid];
    }
  });
  if (stats != nullptr) {
    stats->wallSeconds = timer.elapsedSeconds();
    stats->seconds = *std::max_element(modeledPerHost.begin(),
                                       modeledPerHost.end());
    stats->rounds = *std::max_element(roundsPerHost.begin(),
                                      roundsPerHost.end());
    const auto volume = net.statsSnapshot();
    stats->syncBytes = volume.bytes[comm::kTagAppReduce] +
                       volume.bytes[comm::kTagAppBroadcast];
    stats->syncMessages = volume.messages[comm::kTagAppReduce] +
                          volume.messages[comm::kTagAppBroadcast];
  }
  return global;
}

}  // namespace

std::vector<uint64_t> bfsOnHost(comm::Network& net, comm::HostId me,
                                const DistGraph& part, uint64_t sourceGid,
                                uint32_t* roundsOut,
                                double* modeledSecondsOut) {
  return minPropagate(
      net, me, part,
      [&](uint64_t, uint64_t gid) {
        return gid == sourceGid ? 0ull : kInfinity;
      },
      [](uint64_t value, uint64_t) { return value + 1; }, roundsOut,
      modeledSecondsOut);
}

std::vector<uint64_t> ssspOnHost(comm::Network& net, comm::HostId me,
                                 const DistGraph& part, uint64_t sourceGid,
                                 uint32_t* roundsOut,
                                 double* modeledSecondsOut) {
  return minPropagate(
      net, me, part,
      [&](uint64_t, uint64_t gid) {
        return gid == sourceGid ? 0ull : kInfinity;
      },
      [&](uint64_t value, uint64_t edge) {
        return value + part.graph.edgeData(edge);
      },
      roundsOut, modeledSecondsOut);
}

std::vector<uint64_t> ccOnHost(comm::Network& net, comm::HostId me,
                               const DistGraph& part, uint32_t* roundsOut,
                               double* modeledSecondsOut) {
  return minPropagate(
      net, me, part,
      [](uint64_t, uint64_t gid) { return gid; },
      [](uint64_t value, uint64_t) { return value; }, roundsOut,
      modeledSecondsOut);
}

std::vector<double> pageRankOnHost(comm::Network& net, comm::HostId me,
                                   const DistGraph& part,
                                   const PageRankParams& params,
                                   uint32_t* roundsOut,
                                   double* modeledSecondsOut) {
  requireCsrOrientation(part);
  SyncContext sync(net, me, part);
  const uint64_t numLocal = part.numLocalNodes();
  const double n = static_cast<double>(part.numGlobalNodes);
  double clusterSeconds = 0.0;
  double cpu0 = support::threadCpuSeconds();
  double comm0 = net.modeledCommSeconds(me);
  const std::vector<uint64_t> degree = globalOutDegreesOnHost(net, me, part);
  clusterSeconds += net.allReduceMax(
      me, (support::threadCpuSeconds() - cpu0) +
              (net.modeledCommSeconds(me) - comm0));

  std::vector<double> rank(numLocal, n > 0 ? 1.0 / n : 0.0);
  std::vector<double> accum(numLocal, 0.0);
  DynamicBitset allMasters(numLocal);
  for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
    allMasters.set(lid);
  }
  uint32_t rounds = 0;
  RoundObs robs("pagerank");
  for (uint32_t iter = 0; iter < params.maxIterations; ++iter) {
    obs::ScopedSpan roundSpan(robs.trace.get(), me,
                              "superstep " + std::to_string(iter));
    if (robs.supersteps != nullptr) {
      robs.supersteps->add();
      robs.frontier->observe(static_cast<double>(numLocal));
    }
    cpu0 = support::threadCpuSeconds();
    comm0 = net.modeledCommSeconds(me);
    // Scatter contributions along local out-edges.
    std::fill(accum.begin(), accum.end(), 0.0);
    DynamicBitset contributed(numLocal);
    for (uint64_t u = 0; u < numLocal; ++u) {
      if (degree[u] == 0 || part.graph.outDegree(u) == 0) {
        continue;
      }
      const double share = rank[u] / static_cast<double>(degree[u]);
      for (uint64_t e = part.graph.edgeBegin(u); e < part.graph.edgeEnd(u);
           ++e) {
        const uint64_t v = part.graph.edgeDst(e);
        accum[v] += share;
        contributed.set(v);
      }
    }
    // Sum partial accumulations into masters.
    DynamicBitset unusedChanged(numLocal);
    sync.reduceToMasters<double>(
        accum, contributed,
        [](double& acc, double in) {
          acc += in;
          return true;
        },
        unusedChanged);
    // Apply and measure residual on masters.
    double localDelta = 0.0;
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      const double updated = (1.0 - params.damping) / n +
                             params.damping * accum[lid];
      localDelta = std::max(localDelta, std::abs(updated - rank[lid]));
      rank[lid] = updated;
    }
    // Refresh mirrors with the new ranks.
    DynamicBitset mirrorUpdated(numLocal);
    sync.broadcastToMirrors<double>(rank, allMasters, mirrorUpdated);
    ++rounds;
    clusterSeconds += net.allReduceMax(
        me, (support::threadCpuSeconds() - cpu0) +
                (net.modeledCommSeconds(me) - comm0));
    const double globalDelta = net.allReduceMax(me, localDelta);
    if (globalDelta < params.tolerance) {
      break;
    }
  }
  if (roundsOut != nullptr) {
    *roundsOut = rounds;
  }
  if (modeledSecondsOut != nullptr) {
    *modeledSecondsOut = clusterSeconds;
  }
  return rank;
}

std::vector<uint64_t> kCoreOnHost(comm::Network& net, comm::HostId me,
                                  const DistGraph& part, uint64_t k,
                                  uint32_t* roundsOut,
                                  double* modeledSecondsOut) {
  requireCsrOrientation(part);
  SyncContext sync(net, me, part);
  const uint64_t numLocal = part.numLocalNodes();
  double clusterSeconds = 0.0;
  double cpu0 = support::threadCpuSeconds();
  double comm0 = net.modeledCommSeconds(me);
  // Degrees start at the global (symmetric) degree of every proxy.
  std::vector<uint64_t> degree = globalOutDegreesOnHost(net, me, part);
  clusterSeconds += net.allReduceMax(
      me, (support::threadCpuSeconds() - cpu0) +
              (net.modeledCommSeconds(me) - comm0));

  std::vector<uint8_t> alive(numLocal, 1);
  std::vector<uint64_t> decrement(numLocal, 0);
  uint32_t rounds = 0;
  RoundObs robs("kcore");
  for (;;) {
    obs::ScopedSpan roundSpan(robs.trace.get(), me,
                              "superstep " + std::to_string(rounds));
    if (robs.supersteps != nullptr) {
      robs.supersteps->add();
      robs.frontier->observe(static_cast<double>(
          std::count(alive.begin(), alive.end(), uint8_t{1})));
    }
    cpu0 = support::threadCpuSeconds();
    comm0 = net.modeledCommSeconds(me);
    // Peel: every proxy whose degree view dropped below k dies (master and
    // mirror views converge because every master change is broadcast) and
    // decrements its LOCAL out-neighbors — each edge lives on exactly one
    // host, so each removal is counted exactly once.
    bool anyDied = false;
    DynamicBitset touched(numLocal);
    for (uint64_t lid = 0; lid < numLocal; ++lid) {
      if (alive[lid] == 0 || degree[lid] >= k) {
        continue;
      }
      alive[lid] = 0;
      anyDied = true;
      for (uint64_t e = part.graph.edgeBegin(lid);
           e < part.graph.edgeEnd(lid); ++e) {
        const uint64_t v = part.graph.edgeDst(e);
        ++decrement[v];
        touched.set(v);
      }
    }
    // Sum decrements into masters, apply, and broadcast changed degrees.
    DynamicBitset reduced(numLocal);
    sync.reduceToMasters<uint64_t>(
        decrement, touched,
        [](uint64_t& acc, uint64_t in) {
          acc += in;
          return true;
        },
        reduced);
    DynamicBitset degreeChanged(numLocal);
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      if (decrement[lid] > 0) {
        degree[lid] =
            degree[lid] > decrement[lid] ? degree[lid] - decrement[lid] : 0;
        decrement[lid] = 0;
        degreeChanged.set(lid);
      }
    }
    // Mirrors' leftover local decrements were shipped; reset them.
    std::fill(decrement.begin() + static_cast<ptrdiff_t>(part.numMasters),
              decrement.end(), 0);
    DynamicBitset mirrorUpdated(numLocal);
    sync.broadcastToMirrors<uint64_t>(degree, degreeChanged, mirrorUpdated);
    ++rounds;
    clusterSeconds += net.allReduceMax(
        me, (support::threadCpuSeconds() - cpu0) +
                (net.modeledCommSeconds(me) - comm0));
    if (!net.allReduceOr(me, anyDied)) {
      break;
    }
  }
  if (roundsOut != nullptr) {
    *roundsOut = rounds;
  }
  if (modeledSecondsOut != nullptr) {
    *modeledSecondsOut = clusterSeconds;
  }
  std::vector<uint64_t> inCore(numLocal);
  for (uint64_t lid = 0; lid < numLocal; ++lid) {
    inCore[lid] = alive[lid];
  }
  return inCore;
}

uint64_t triangleCountOnHost(comm::Network& net, comm::HostId me,
                             const DistGraph& part,
                             double* modeledSecondsOut) {
  requireCsrOrientation(part);
  SyncContext sync(net, me, part);
  const uint64_t numLocal = part.numLocalNodes();
  const double cpu0 = support::threadCpuSeconds();
  const double comm0 = net.modeledCommSeconds(me);

  // Global degrees define the orientation: edge u->v is "forward" iff
  // (deg(u), gid(u)) < (deg(v), gid(v)). Both endpoints of every local
  // edge are local proxies with synced degrees, so orientation is
  // computable everywhere.
  const std::vector<uint64_t> degree = globalOutDegreesOnHost(net, me, part);
  auto orderKey = [&](uint64_t lid) {
    return std::make_pair(degree[lid], part.globalId(lid));
  };

  // Each host contributes its local share of every vertex's forward
  // adjacency (as global ids); gather assembles the full lists at masters,
  // broadcast replicates them to every proxy.
  std::vector<std::vector<uint64_t>> forward(numLocal);
  for (uint64_t u = 0; u < numLocal; ++u) {
    for (uint64_t e = part.graph.edgeBegin(u); e < part.graph.edgeEnd(u);
         ++e) {
      const uint64_t v = part.graph.edgeDst(e);
      if (orderKey(u) < orderKey(v)) {
        forward[u].push_back(part.globalId(v));
      }
    }
  }
  sync.gatherListsToMasters(forward);
  for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
    std::sort(forward[lid].begin(), forward[lid].end());
  }
  sync.broadcastListsToMirrors(forward);

  // Closed-wedge counting over local forward edges: every global directed
  // edge lives on exactly one host, so the cluster-wide sum counts each
  // triangle exactly once.
  uint64_t local = 0;
  for (uint64_t u = 0; u < numLocal; ++u) {
    for (uint64_t e = part.graph.edgeBegin(u); e < part.graph.edgeEnd(u);
         ++e) {
      const uint64_t v = part.graph.edgeDst(e);
      if (!(orderKey(u) < orderKey(v))) {
        continue;
      }
      const auto& a = forward[u];
      const auto& b = forward[v];
      size_t i = 0;
      size_t j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          ++local;
          ++i;
          ++j;
        }
      }
    }
  }
  const uint64_t total = net.allReduceSum<uint64_t>(me, local);
  if (modeledSecondsOut != nullptr) {
    // One "round" algorithm: makespan = slowest host's total.
    *modeledSecondsOut = net.allReduceMax(
        me, (support::threadCpuSeconds() - cpu0) +
                (net.modeledCommSeconds(me) - comm0));
  }
  return total;
}

std::vector<uint64_t> runBfs(std::span<const DistGraph> partitions,
                             uint64_t sourceGid, RunStats* stats,
                             const comm::NetworkCostModel& costModel) {
  return runGathered<uint64_t>(
      partitions, stats, costModel,
      [&](comm::Network& net, comm::HostId me, const DistGraph& part,
          uint32_t* rounds, double* modeled) {
        return bfsOnHost(net, me, part, sourceGid, rounds, modeled);
      });
}

std::vector<uint64_t> runSssp(std::span<const DistGraph> partitions,
                              uint64_t sourceGid, RunStats* stats,
                              const comm::NetworkCostModel& costModel) {
  return runGathered<uint64_t>(
      partitions, stats, costModel,
      [&](comm::Network& net, comm::HostId me, const DistGraph& part,
          uint32_t* rounds, double* modeled) {
        return ssspOnHost(net, me, part, sourceGid, rounds, modeled);
      });
}

std::vector<uint64_t> runCc(std::span<const DistGraph> partitions,
                            RunStats* stats,
                            const comm::NetworkCostModel& costModel) {
  return runGathered<uint64_t>(
      partitions, stats, costModel,
      [&](comm::Network& net, comm::HostId me, const DistGraph& part,
          uint32_t* rounds, double* modeled) {
        return ccOnHost(net, me, part, rounds, modeled);
      });
}

std::vector<double> runPageRank(std::span<const DistGraph> partitions,
                                const PageRankParams& params,
                                RunStats* stats,
                                const comm::NetworkCostModel& costModel) {
  return runGathered<double>(
      partitions, stats, costModel,
      [&](comm::Network& net, comm::HostId me, const DistGraph& part,
          uint32_t* rounds, double* modeled) {
        return pageRankOnHost(net, me, part, params, rounds, modeled);
      });
}

std::vector<uint64_t> runKCore(std::span<const DistGraph> partitions,
                               uint64_t k, RunStats* stats,
                               const comm::NetworkCostModel& costModel) {
  return runGathered<uint64_t>(
      partitions, stats, costModel,
      [&](comm::Network& net, comm::HostId me, const DistGraph& part,
          uint32_t* rounds, double* modeled) {
        return kCoreOnHost(net, me, part, k, rounds, modeled);
      });
}

uint64_t runTriangleCount(std::span<const DistGraph> partitions,
                          RunStats* stats,
                          const comm::NetworkCostModel& costModel) {
  if (partitions.empty()) {
    return 0;
  }
  const uint32_t numHosts = static_cast<uint32_t>(partitions.size());
  comm::Network net(numHosts, costModel);
  std::vector<uint64_t> totals(numHosts, 0);
  std::vector<double> modeledPerHost(numHosts, 0.0);
  support::Timer timer;
  comm::runHosts(net, [&](comm::HostId me) {
    totals[me] =
        triangleCountOnHost(net, me, partitions[me], &modeledPerHost[me]);
  });
  if (stats != nullptr) {
    stats->wallSeconds = timer.elapsedSeconds();
    stats->seconds = *std::max_element(modeledPerHost.begin(),
                                       modeledPerHost.end());
    stats->rounds = 1;
    const auto volume = net.statsSnapshot();
    stats->syncBytes = volume.bytes[comm::kTagAppReduce] +
                       volume.bytes[comm::kTagAppBroadcast];
    stats->syncMessages = volume.messages[comm::kTagAppReduce] +
                          volume.messages[comm::kTagAppBroadcast];
  }
  return totals[0];
}

uint64_t maxOutDegreeNode(const graph::CsrGraph& graph) {
  uint64_t best = 0;
  for (uint64_t v = 1; v < graph.numNodes(); ++v) {
    if (graph.outDegree(v) > graph.outDegree(best)) {
      best = v;
    }
  }
  return best;
}

}  // namespace cusp::analytics
