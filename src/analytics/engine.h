// Master/mirror synchronization engine over CuSP partitions — the
// D-Galois-style substrate used to evaluate partition quality (paper
// Section V-C).
//
// A vertex program keeps one value per *local* node (masters and mirrors).
// After a round of local computation, hosts synchronize:
//
//   reduce     mirror values flow to their masters and are folded in with a
//              combine operator (min, plus, ...); the master learns the
//              canonical value.
//   broadcast  changed master values flow back to every mirror.
//
// Only dirty nodes are shipped, as sparse (position, value) pairs where the
// position indexes the mirror lists both sides agreed on during
// partitioning (DistGraph::mirrorsOnHost / myMirrorsByOwner). Communication
// partners are exactly the hosts that share proxies, so a CVC partition
// naturally talks only to its row/column partners while a general
// vertex-cut (HVC/GVC) talks to everyone — the structural property the
// paper's quality results hinge on.
//
// Membership-aware: every sync loop skips hosts the Network has evicted
// (degraded mode), so survivors keep synchronizing among themselves after a
// permanent host loss instead of blocking on a dead peer. With full
// membership the skip never fires and the traffic is unchanged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/network.h"
#include "core/dist_graph.h"
#include "obs/obs.h"
#include "support/bitset.h"
#include "support/serialize.h"

namespace cusp::analytics {

// Structured failure of one synchronization operation: wraps the
// underlying network fault (send retries exhausted, or a receive that
// timed out) with the operation name and the engine's round counter, so an
// application can degrade gracefully — report which round died and on
// which host — instead of surfacing a bare transport error. Injected host
// crashes (comm::HostFailure) propagate unchanged; they are the recovery
// driver's business, not the application's.
class SyncRoundFailed : public std::runtime_error {
 public:
  SyncRoundFailed(std::string op, uint64_t round, comm::HostId host,
                  const std::string& cause)
      : std::runtime_error("analytics sync '" + op + "' failed in round " +
                           std::to_string(round) + " on host " +
                           std::to_string(host) + ": " + cause),
        op(std::move(op)),
        round(round),
        host(host) {}

  std::string op;
  uint64_t round;  // 1-based count of sync operations this context ran
  comm::HostId host;
};

class SyncContext {
 public:
  SyncContext(comm::Network& net, comm::HostId me, const core::DistGraph& part)
      : net_(net), me_(me), part_(part) {
    if (obs::attached()) {
      if (const auto registry = obs::sink().metrics) {
        metricsKeepAlive_ = registry;
        syncRoundsCounter_ = &registry->counter("cusp.analytics.sync_rounds");
      }
    }
  }

  // Ships dirty mirror values to their masters; combine(master, incoming)
  // returns true if the master value changed, in which case the master is
  // marked in `changed`. `dirty` is consumed (mirror flags cleared).
  template <typename T, typename Combine>
  void reduceToMasters(std::vector<T>& values, support::DynamicBitset& dirty,
                       Combine&& combine, support::DynamicBitset& changed) {
    guarded("reduceToMasters", [&] {
      // Send my dirty mirrors to each owner that has any of my mirrors.
      for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
        if (h == me_ || !net_.isAlive(h) || part_.myMirrorsByOwner[h].empty()) {
          continue;
        }
        auto writer = net_.packedWriter(me_, h, comm::kTagAppReduce);
        packDirty(part_.myMirrorsByOwner[h], values, dirty, writer,
                  /*clearDirty=*/true);
        writer.commit();
      }
      net_.flushAggregated(me_);  // blocking on peer contributions next
      // Receive contributions for my masters from each host holding
      // mirrors.
      for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
        if (h == me_ || !net_.isAlive(h) || part_.mirrorsOnHost[h].empty()) {
          continue;
        }
        auto msg = net_.recvFrom(me_, h, comm::kTagAppReduce);
        std::vector<uint32_t> positions;
        std::vector<T> incoming;
        support::deserializeAll(msg.payload, positions, incoming);
        const auto& lids = part_.mirrorsOnHost[h];
        for (size_t i = 0; i < positions.size(); ++i) {
          const uint64_t lid = lids[positions[i]];
          if (combine(values[lid], incoming[i])) {
            changed.set(lid);
          }
        }
      }
    });
  }

  // Ships dirty master values to every host holding a mirror; mirrors adopt
  // the canonical value and are marked in `changed`. `dirty` is NOT
  // cleared (a master may broadcast to several hosts; the caller resets it
  // once the round completes).
  template <typename T>
  void broadcastToMirrors(std::vector<T>& values,
                          const support::DynamicBitset& dirty,
                          support::DynamicBitset& changed) {
    guarded("broadcastToMirrors", [&] {
      for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
        if (h == me_ || !net_.isAlive(h) || part_.mirrorsOnHost[h].empty()) {
          continue;
        }
        auto writer = net_.packedWriter(me_, h, comm::kTagAppBroadcast);
        packDirty(part_.mirrorsOnHost[h], values, dirty, writer,
                  /*clearDirty=*/false);
        writer.commit();
      }
      net_.flushAggregated(me_);  // blocking on peer broadcasts next
      for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
        if (h == me_ || !net_.isAlive(h) || part_.myMirrorsByOwner[h].empty()) {
          continue;
        }
        auto msg = net_.recvFrom(me_, h, comm::kTagAppBroadcast);
        std::vector<uint32_t> positions;
        std::vector<T> incoming;
        support::deserializeAll(msg.payload, positions, incoming);
        const auto& lids = part_.myMirrorsByOwner[h];
        for (size_t i = 0; i < positions.size(); ++i) {
          const uint64_t lid = lids[positions[i]];
          values[lid] = incoming[i];
          changed.set(lid);
        }
      }
    });
  }

  // Variable-length gather: every host contributes a list per local node;
  // mirror lists are shipped to their masters and appended (order:
  // master's own list first, then contributions in sender-host order).
  // Mirror lists are left untouched.
  template <typename T>
  void gatherListsToMasters(std::vector<std::vector<T>>& lists) {
    guarded("gatherListsToMasters", [&] {
      for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
        if (h == me_ || !net_.isAlive(h) || part_.myMirrorsByOwner[h].empty()) {
          continue;
        }
        std::vector<std::vector<T>> payload;
        payload.reserve(part_.myMirrorsByOwner[h].size());
        for (uint64_t lid : part_.myMirrorsByOwner[h]) {
          payload.push_back(lists[lid]);
        }
        auto writer = net_.packedWriter(me_, h, comm::kTagAppReduce);
        support::serialize(writer, payload);
        writer.commit();
      }
      net_.flushAggregated(me_);  // blocking on peer lists next
      for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
        if (h == me_ || !net_.isAlive(h) || part_.mirrorsOnHost[h].empty()) {
          continue;
        }
        auto msg = net_.recvFrom(me_, h, comm::kTagAppReduce);
        std::vector<std::vector<T>> payload;
        support::deserialize(msg.payload, payload);
        const auto& lids = part_.mirrorsOnHost[h];
        for (size_t i = 0; i < payload.size(); ++i) {
          auto& target = lists[lids[i]];
          target.insert(target.end(), payload[i].begin(), payload[i].end());
        }
      }
    });
  }

  // Variable-length broadcast: every mirror's list is overwritten with its
  // master's list.
  template <typename T>
  void broadcastListsToMirrors(std::vector<std::vector<T>>& lists) {
    guarded("broadcastListsToMirrors", [&] {
      for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
        if (h == me_ || !net_.isAlive(h) || part_.mirrorsOnHost[h].empty()) {
          continue;
        }
        std::vector<std::vector<T>> payload;
        payload.reserve(part_.mirrorsOnHost[h].size());
        for (uint64_t lid : part_.mirrorsOnHost[h]) {
          payload.push_back(lists[lid]);
        }
        auto writer = net_.packedWriter(me_, h, comm::kTagAppBroadcast);
        support::serialize(writer, payload);
        writer.commit();
      }
      net_.flushAggregated(me_);  // blocking on peer lists next
      for (comm::HostId h = 0; h < net_.numHosts(); ++h) {
        if (h == me_ || !net_.isAlive(h) || part_.myMirrorsByOwner[h].empty()) {
          continue;
        }
        auto msg = net_.recvFrom(me_, h, comm::kTagAppBroadcast);
        std::vector<std::vector<T>> payload;
        support::deserialize(msg.payload, payload);
        const auto& lids = part_.myMirrorsByOwner[h];
        for (size_t i = 0; i < payload.size(); ++i) {
          lists[lids[i]] = std::move(payload[i]);
        }
      }
    });
  }

  // Number of sync operations this context has started (for logging).
  uint64_t syncRounds() const { return rounds_; }

  comm::Network& net() { return net_; }
  comm::HostId hostId() const { return me_; }

 private:
  // Runs one sync operation, translating recoverable transport faults into
  // SyncRoundFailed so the application sees which round died. HostFailure
  // (an injected crash), HostEvicted (membership change mid-round) and
  // NetworkAborted pass through untouched.
  template <typename Fn>
  void guarded(const char* op, Fn&& body) {
    const uint64_t round = ++rounds_;
    if (syncRoundsCounter_ != nullptr) {
      syncRoundsCounter_->add();
    }
    try {
      body();
    } catch (const comm::SendRetriesExhausted& e) {
      throw SyncRoundFailed(op, round, me_, e.what());
    } catch (const comm::NetworkStalled& e) {
      throw SyncRoundFailed(op, round, me_, e.what());
    } catch (const comm::MessageCorrupt& e) {
      // Only reaches here once sendReliable's retransmissions are exhausted
      // (persistent corruption on the channel) — recoverable by rollback,
      // like the other transport faults.
      throw SyncRoundFailed(op, round, me_, e.what());
    }
  }

  // Serializes (position, value) pairs for the dirty subset of `lids` into
  // any byte sink (a SendBuffer or a zero-copy comm::PackedWriter).
  template <typename T, support::ByteSink Buf>
  void packDirty(const std::vector<uint64_t>& lids, const std::vector<T>& values,
                 support::DynamicBitset& dirty, Buf& buf,
                 bool clearDirty) {
    std::vector<uint32_t> positions;
    std::vector<T> payload;
    for (uint32_t pos = 0; pos < lids.size(); ++pos) {
      const uint64_t lid = lids[pos];
      if (dirty.test(lid)) {
        positions.push_back(pos);
        payload.push_back(values[lid]);
        if (clearDirty) {
          dirty.clear(lid);
        }
      }
    }
    support::serializeAll(buf, positions, payload);
  }

  // packDirty with a const bitset (broadcast side).
  template <typename T, support::ByteSink Buf>
  void packDirty(const std::vector<uint64_t>& lids, const std::vector<T>& values,
                 const support::DynamicBitset& dirty, Buf& buf,
                 bool /*clearDirty*/) {
    std::vector<uint32_t> positions;
    std::vector<T> payload;
    for (uint32_t pos = 0; pos < lids.size(); ++pos) {
      const uint64_t lid = lids[pos];
      if (dirty.test(lid)) {
        positions.push_back(pos);
        payload.push_back(values[lid]);
      }
    }
    support::serializeAll(buf, positions, payload);
  }

  comm::Network& net_;
  comm::HostId me_;
  const core::DistGraph& part_;
  uint64_t rounds_ = 0;
  // Resolved once at construction when a process-wide obs sink is attached;
  // the shared_ptr keeps the cell alive across a later detach.
  std::shared_ptr<obs::MetricsRegistry> metricsKeepAlive_;
  obs::Counter* syncRoundsCounter_ = nullptr;
};

}  // namespace cusp::analytics
