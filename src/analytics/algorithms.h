// Distributed graph analytics over CuSP partitions: bfs, cc, pagerank, sssp
// — the four applications of the paper's quality evaluation (Section V-C).
//
// Each algorithm has
//   * a host-level entry point (<algo>OnHost) for callers already running
//     inside a Network, returning the per-local-node values, and
//   * a driver (run<Algo>) that spins up a Network over a full partition
//     set, runs all hosts, and gathers the master values into one global
//     array (index = global node id).
//
// bfs, sssp and cc share a min-propagation skeleton (Bellman-Ford-style
// rounds with min-reduce and broadcast); pagerank is topological with
// add-reduce of contributions. Sources for bfs/sssp default to the paper's
// choice, the node with the highest out-degree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/network.h"
#include "core/dist_graph.h"

namespace cusp::analytics {

inline constexpr uint64_t kInfinity = UINT64_MAX;

struct RunStats {
  uint32_t rounds = 0;
  // Simulated cluster makespan: per BSP round, the slowest host's CPU work
  // plus its modeled communication charges, summed over rounds (see
  // comm::NetworkCostModel). With a zero cost model this is the max-host
  // CPU time, which is still the right "cluster time" on a time-shared
  // simulation machine.
  double seconds = 0.0;
  // Actual wall-clock of the simulation on this machine.
  double wallSeconds = 0.0;
  uint64_t syncBytes = 0;     // kTagAppReduce + kTagAppBroadcast traffic
  uint64_t syncMessages = 0;
};

// --- host-level entry points (collective: every host must call) ---

std::vector<uint64_t> bfsOnHost(comm::Network& net, comm::HostId me,
                                const core::DistGraph& part,
                                uint64_t sourceGid,
                                uint32_t* roundsOut = nullptr,
                                double* modeledSecondsOut = nullptr);

std::vector<uint64_t> ssspOnHost(comm::Network& net, comm::HostId me,
                                 const core::DistGraph& part,
                                 uint64_t sourceGid,
                                 uint32_t* roundsOut = nullptr,
                                 double* modeledSecondsOut = nullptr);

// Connected components via label propagation; the partitions should come
// from a symmetric (undirected) graph, as in the paper's cc runs.
std::vector<uint64_t> ccOnHost(comm::Network& net, comm::HostId me,
                               const core::DistGraph& part,
                               uint32_t* roundsOut = nullptr,
                               double* modeledSecondsOut = nullptr);

struct PageRankParams {
  double damping = 0.85;
  double tolerance = 1e-6;  // max |delta| convergence (paper: 1e-6)
  uint32_t maxIterations = 100;  // paper: 100
};

std::vector<double> pageRankOnHost(comm::Network& net, comm::HostId me,
                                   const core::DistGraph& part,
                                   const PageRankParams& params,
                                   uint32_t* roundsOut = nullptr,
                                   double* modeledSecondsOut = nullptr);

// k-core decomposition (peeling): returns 1 for vertices in the k-core of
// the (symmetric) graph, 0 otherwise. Iteratively removes vertices whose
// remaining degree drops below k, propagating degree decrements through
// master/mirror sync. Part of the D-Galois benchmark family the paper's
// ecosystem evaluates.
std::vector<uint64_t> kCoreOnHost(comm::Network& net, comm::HostId me,
                                  const core::DistGraph& part, uint64_t k,
                                  uint32_t* roundsOut = nullptr,
                                  double* modeledSecondsOut = nullptr);

// Triangle counting on partitions of a SIMPLE SYMMETRIC graph (use
// CsrGraph::simpleSymmetrized()). Degree-ordered orientation: each
// triangle is counted exactly once as a closed wedge of the oriented
// graph. Oriented adjacency lists are gathered at masters and broadcast to
// every proxy (the neighborhood-exchange pattern distributed TC needs),
// then each host intersects over its local edges. Returns the global
// triangle count (identical on every host).
uint64_t triangleCountOnHost(comm::Network& net, comm::HostId me,
                             const core::DistGraph& part,
                             double* modeledSecondsOut = nullptr);

// --- whole-cluster drivers ---
//
// `costModel` configures the simulated interconnect for the run (paper
// quality experiments depend on communication structure; a non-zero model
// makes sync traffic cost real time).

std::vector<uint64_t> runBfs(std::span<const core::DistGraph> partitions,
                             uint64_t sourceGid, RunStats* stats = nullptr,
                             const comm::NetworkCostModel& costModel = {});
std::vector<uint64_t> runSssp(std::span<const core::DistGraph> partitions,
                              uint64_t sourceGid, RunStats* stats = nullptr,
                              const comm::NetworkCostModel& costModel = {});
std::vector<uint64_t> runCc(std::span<const core::DistGraph> partitions,
                            RunStats* stats = nullptr,
                            const comm::NetworkCostModel& costModel = {});
std::vector<double> runPageRank(std::span<const core::DistGraph> partitions,
                                const PageRankParams& params = {},
                                RunStats* stats = nullptr,
                                const comm::NetworkCostModel& costModel = {});
std::vector<uint64_t> runKCore(std::span<const core::DistGraph> partitions,
                               uint64_t k, RunStats* stats = nullptr,
                               const comm::NetworkCostModel& costModel = {});
uint64_t runTriangleCount(std::span<const core::DistGraph> partitions,
                          RunStats* stats = nullptr,
                          const comm::NetworkCostModel& costModel = {});

// The paper's source choice for bfs and sssp: highest out-degree node.
uint64_t maxOutDegreeNode(const graph::CsrGraph& graph);

// Global out-degree of every local proxy: local degrees add-reduced to
// masters and broadcast back (a vertex-cut splits a node's out-edges
// across hosts). Collective — every host must call. Used internally by
// pagerank/k-core/tc and by the resilient driver to rebuild derived state
// after a rollback.
std::vector<uint64_t> globalOutDegreesOnHost(comm::Network& net,
                                             comm::HostId me,
                                             const core::DistGraph& part);

}  // namespace cusp::analytics
