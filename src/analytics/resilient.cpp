#include "analytics/resilient.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "analytics/engine.h"
#include "core/checkpoint.h"
#include "core/degraded.h"
#include "obs/obs.h"
#include "support/bitset.h"
#include "support/logging.h"
#include "support/storage.h"

namespace cusp::analytics {

namespace {

using core::DistGraph;
using support::DynamicBitset;

// Checkpoints of different membership epochs must never mix: a snapshot at
// superstep s written before an eviction and one written after describe
// different layouts under the same phase number. Each epoch gets its own
// subdirectory.
std::string epochDir(const std::string& dir, uint32_t epoch) {
  return dir + "/e" + std::to_string(epoch);
}

// A superstep-structured vertex program the resilient driver can roll back:
// init seeds values + frontier, superstep runs one BSP round (local compute
// + sync + termination vote) and returns whether more work remains. Both
// programs below reproduce the exact round structure of their algorithms.cpp
// counterparts, so a fault-free resilient run is the plain run, byte for
// byte.
struct MinPropProgram {
  using Value = uint64_t;

  MinPropProgram(comm::Network& net, comm::HostId me, const DistGraph& part,
                 std::function<uint64_t(uint64_t lid, uint64_t gid)> init,
                 std::function<uint64_t(uint64_t value, uint64_t edge)> cand)
      : net(net),
        me(me),
        part(part),
        sync(net, me, part),
        initFn(std::move(init)),
        candidate(std::move(cand)) {}

  void init(std::vector<uint64_t>& value, DynamicBitset& frontier) {
    const uint64_t numLocal = part.numLocalNodes();
    value.resize(numLocal);
    frontier = DynamicBitset(numLocal);
    for (uint64_t lid = 0; lid < numLocal; ++lid) {
      value[lid] = initFn(lid, part.globalId(lid));
      if (value[lid] != kInfinity) {
        frontier.set(lid);
      }
    }
  }

  bool superstep(uint32_t, std::vector<uint64_t>& value,
                 DynamicBitset& frontier) {
    const uint64_t numLocal = part.numLocalNodes();
    DynamicBitset dirty(numLocal);
    std::vector<uint64_t> active;
    frontier.collectSetBits(active);
    frontier.resetAll();
    for (uint64_t u : active) {
      if (value[u] == kInfinity) {
        continue;
      }
      for (uint64_t e = part.graph.edgeBegin(u); e < part.graph.edgeEnd(u);
           ++e) {
        const uint64_t v = part.graph.edgeDst(e);
        const uint64_t proposal = candidate(value[u], e);
        if (proposal < value[v]) {
          value[v] = proposal;
          dirty.set(v);
        }
      }
    }
    auto combineMin = [](uint64_t& acc, uint64_t in) {
      if (in < acc) {
        acc = in;
        return true;
      }
      return false;
    };
    DynamicBitset masterChanged(numLocal);
    sync.reduceToMasters<uint64_t>(value, dirty, combineMin, masterChanged);
    std::vector<uint64_t> dirtyMasters;
    dirty.collectSetBits(dirtyMasters);
    for (uint64_t lid : dirtyMasters) {
      if (part.isMaster(lid)) {
        masterChanged.set(lid);
      }
      frontier.set(lid);
    }
    DynamicBitset mirrorUpdated(numLocal);
    sync.broadcastToMirrors<uint64_t>(value, masterChanged, mirrorUpdated);
    std::vector<uint64_t> updated;
    masterChanged.collectSetBits(updated);
    mirrorUpdated.collectSetBits(updated);
    for (uint64_t lid : updated) {
      frontier.set(lid);
    }
    return net.allReduceOr(me, frontier.any());
  }

  comm::Network& net;
  comm::HostId me;
  const DistGraph& part;
  SyncContext sync;
  std::function<uint64_t(uint64_t, uint64_t)> initFn;
  std::function<uint64_t(uint64_t, uint64_t)> candidate;
};

struct PageRankProgram {
  using Value = double;

  PageRankProgram(comm::Network& net, comm::HostId me, const DistGraph& part,
                  const PageRankParams& params)
      : net(net),
        me(me),
        part(part),
        sync(net, me, part),
        params(params),
        // Derived state is recomputed at the start of every attempt (it is
        // cheap and layout-dependent), never checkpointed.
        degree(globalOutDegreesOnHost(net, me, part)),
        allMasters(part.numLocalNodes()) {
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      allMasters.set(lid);
    }
  }

  void init(std::vector<double>& value, DynamicBitset& frontier) {
    const uint64_t numLocal = part.numLocalNodes();
    const double n = static_cast<double>(part.numGlobalNodes);
    value.assign(numLocal, n > 0 ? 1.0 / n : 0.0);
    frontier = DynamicBitset(numLocal);  // unused: pagerank is topological
  }

  bool superstep(uint32_t iter, std::vector<double>& value, DynamicBitset&) {
    const uint64_t numLocal = part.numLocalNodes();
    const double n = static_cast<double>(part.numGlobalNodes);
    std::vector<double> accum(numLocal, 0.0);
    DynamicBitset contributed(numLocal);
    for (uint64_t u = 0; u < numLocal; ++u) {
      if (degree[u] == 0 || part.graph.outDegree(u) == 0) {
        continue;
      }
      const double share = value[u] / static_cast<double>(degree[u]);
      for (uint64_t e = part.graph.edgeBegin(u); e < part.graph.edgeEnd(u);
           ++e) {
        const uint64_t v = part.graph.edgeDst(e);
        accum[v] += share;
        contributed.set(v);
      }
    }
    DynamicBitset unusedChanged(numLocal);
    sync.reduceToMasters<double>(
        accum, contributed,
        [](double& acc, double in) {
          acc += in;
          return true;
        },
        unusedChanged);
    double localDelta = 0.0;
    for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
      const double updated =
          (1.0 - params.damping) / n + params.damping * accum[lid];
      localDelta = std::max(localDelta, std::abs(updated - value[lid]));
      value[lid] = updated;
    }
    DynamicBitset mirrorUpdated(numLocal);
    sync.broadcastToMirrors<double>(value, allMasters, mirrorUpdated);
    const double globalDelta = net.allReduceMax(me, localDelta);
    return iter + 1 < params.maxIterations && globalDelta >= params.tolerance;
  }

  comm::Network& net;
  comm::HostId me;
  const DistGraph& part;
  SyncContext sync;
  PageRankParams params;
  std::vector<uint64_t> degree;
  DynamicBitset allMasters;
};

void atomicMax(std::atomic<uint32_t>& target, uint32_t value) {
  uint32_t current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

// The resilient driver. `makeProgram(net, me, part)` builds the per-host
// program instance inside each attempt (its constructor may communicate,
// e.g. pagerank's degree exchange, and is covered by the same fault
// handling as the supersteps).
template <typename T, typename MakeProgram>
std::vector<T> runResilientImpl(std::span<const DistGraph> partitions,
                                const ResilienceOptions& options,
                                ResilienceReport* reportOut,
                                MakeProgram&& makeProgram) {
  ResilienceReport report;
  auto publish = [&] {
    if (reportOut != nullptr) {
      *reportOut = report;
    }
  };
  if (partitions.empty()) {
    publish();
    return {};
  }
  const uint32_t k = static_cast<uint32_t>(partitions.size());
  for (uint32_t r = 0; r < k; ++r) {
    if (partitions[r].hostId != r || partitions[r].numHosts != k) {
      throw std::invalid_argument(
          "runResilient: partitions must be a complete rank-indexed family");
    }
  }
  const uint64_t numGlobalNodes = partitions.front().numGlobalNodes;

  std::shared_ptr<comm::FaultInjector> injector;
  if (options.faultPlan && !options.faultPlan->empty()) {
    injector = std::make_shared<comm::FaultInjector>(*options.faultPlan);
  }
  // One blame ledger for the whole run, like the injector: blame and
  // condemnation survive recovery attempts.
  std::shared_ptr<comm::StragglerMonitor> stragglerMonitor;
  if (options.straggler.enabled()) {
    stragglerMonitor = std::make_shared<comm::StragglerMonitor>(k);
  }
  const bool checkpoints =
      options.enableCheckpoints && !options.checkpointDir.empty();
  const uint32_t interval = std::max(1u, options.checkpointInterval);
  if (checkpoints) {
    core::garbageCollectCheckpointTmp(options.checkpointDir);
  }

  // Observability: attempt spans on the driver lane, superstep spans per
  // host lane, and the superstep-level checkpoint counters (distinct from
  // the file-level cusp.checkpoint.* counters the store maintains).
  const obs::Sink obsSink = obs::sink();
  obs::Counter* superstepsCtr = nullptr;
  obs::Histogram* frontierHist = nullptr;
  obs::Counter* ckptWrittenCtr = nullptr;
  obs::Counter* ckptRestoredCtr = nullptr;
  if (obsSink.metrics) {
    superstepsCtr = &obsSink.metrics->counter("cusp.analytics.supersteps",
                                              {{"algo", "resilient"}});
    frontierHist = &obsSink.metrics->histogram("cusp.analytics.frontier_size",
                                               {{"algo", "resilient"}});
    ckptWrittenCtr =
        &obsSink.metrics->counter("cusp.analytics.checkpoints_written");
    ckptRestoredCtr =
        &obsSink.metrics->counter("cusp.analytics.checkpoints_restored");
  }

  // Membership-epoch bookkeeping. evictedAtEpochStart[e] is the (sorted)
  // set of ranks already evicted when epoch e began — the complement is the
  // participant set whose snapshots a restore from epoch e must load.
  uint32_t epoch = 0;
  std::vector<uint32_t> evictedRanks;
  std::vector<std::vector<uint32_t>> evictedAtEpochStart{{}};
  std::vector<uint32_t> maxPhaseByEpoch{0};
  std::atomic<uint32_t> maxPhaseSaved{0};
  std::atomic<uint32_t> checkpointsSaved{0};
  uint32_t failuresThisEpoch = 0;

  // ENOSPC continuation mode: once any host's checkpoint write reports
  // kNoSpace, the whole run stops checkpointing (the condition is
  // persistent — retrying every interval would only churn) and continues
  // with rollback protection degraded to restart-from-the-last-good-phase.
  std::atomic<bool> checkpointingDisabled{false};
  std::atomic<uint32_t> checkpointWriteFailures{0};

  auto participants = [&](uint32_t e) {
    std::vector<uint32_t> out;
    const auto& evicted = evictedAtEpochStart[e];
    for (uint32_t r = 0; r < k; ++r) {
      if (std::find(evicted.begin(), evicted.end(), r) == evicted.end()) {
        out.push_back(r);
      }
    }
    return out;
  };

  // The family the current attempt runs over: the caller's partitions, or —
  // after evictions — the deterministic survivor redistribution in the
  // ORIGINAL rank space (evicted slots empty; the membership-aware engine
  // skips them).
  std::vector<DistGraph> degradedParts;

  for (;;) {
    // A cancelled/expired job must not start another attempt; publish what
    // happened so far, then unwind with JobCancelled (not a fault kind).
    if (options.cancel && options.cancel->expired()) {
      publish();
      options.cancel->check("analytics attempt");
    }
    ++report.attempts;
    comm::Network net(k, options.costModel);
    if (options.aggregation) {
      net.setAggregation(*options.aggregation);
    }
    if (injector) {
      net.setFaultInjector(injector);
    }
    net.setRetryPolicy(options.retry);
    if (options.recvTimeoutSeconds > 0) {
      net.setRecvTimeout(options.recvTimeoutSeconds);
    }
    if (stragglerMonitor) {
      net.setStragglerPolicy(options.straggler);
      net.setStragglerMonitor(stragglerMonitor);
    }
    for (uint32_t r : evictedRanks) {
      net.evict(r);
    }
    const std::span<const DistGraph> parts =
        degradedParts.empty() ? partitions
                              : std::span<const DistGraph>(degradedParts);

    // Rollback agreement: newest epoch first, the last superstep EVERY
    // participant of that epoch can still recover (min over participants of
    // the latest valid checkpoint, buddy replicas consulted).
    maxPhaseByEpoch[epoch] =
        std::max(maxPhaseByEpoch[epoch], maxPhaseSaved.load());
    uint32_t resumeEpoch = epoch;
    uint32_t resumePhase = 0;
    if (checkpoints) {
      for (uint32_t e = epoch + 1; e-- > 0 && resumePhase == 0;) {
        const uint32_t cap = maxPhaseByEpoch[e];
        if (cap == 0) {
          continue;
        }
        const std::string dir = epochDir(options.checkpointDir, e);
        uint32_t agreed = UINT32_MAX;
        for (uint32_t r : participants(e)) {
          agreed =
              std::min(agreed, core::latestValidCheckpoint(dir, r, k, cap));
        }
        if (agreed != UINT32_MAX && agreed > 0) {
          resumeEpoch = e;
          resumePhase = agreed;
        }
      }
    }
    report.resumedFromSuperstep =
        std::max(report.resumedFromSuperstep, resumePhase);

    std::vector<T> global(numGlobalNodes);
    std::atomic<uint32_t> superstepsRun{0};
    try {
      obs::ScopedSpan attemptSpan(obsSink.trace.get(), obs::kDriverLane,
                                  "analytics attempt " +
                                      std::to_string(report.attempts));
      comm::runHosts(net, [&](comm::HostId me) {
        net.enterPhase(me, 0);
        const DistGraph& part = parts[me];
        auto program = makeProgram(net, me, part);
        std::vector<T> value;
        DynamicBitset frontier;
        program.init(value, frontier);
        if (resumePhase > 0) {
          // Replicated restore: every host loads every participant's
          // snapshot of the agreed superstep and applies the gids it holds
          // (masters AND mirrors — mirrors take their master's canonical
          // value). The frontier union is a superset of the live frontier,
          // which is harmless for monotone programs and unused by pagerank.
          const std::string dir =
              epochDir(options.checkpointDir, resumeEpoch);
          for (uint32_t r : participants(resumeEpoch)) {
            auto payload =
                core::loadCheckpointOrReplica(dir, r, k, resumePhase);
            if (!payload) {
              // Retryable: the next attempt's agreement round will settle
              // on whatever is still recoverable (an earlier phase or
              // epoch), or fall through to degraded re-partition.
              throw support::StorageError(
                  support::StorageError::Kind::kReadFailed,
                  core::checkpointPath(dir, r, resumePhase),
                  "agreed checkpoint disappeared between agreement and "
                  "restore");
            }
            if (ckptRestoredCtr != nullptr) {
              ckptRestoredCtr->add();
            }
            support::RecvBuffer buf(std::move(*payload));
            uint64_t snapSuperstep = 0;
            std::vector<uint64_t> gids;
            std::vector<T> vals;
            std::vector<uint64_t> frontierGids;
            support::deserializeAll(buf, snapSuperstep, gids, vals,
                                    frontierGids);
            for (size_t i = 0; i < gids.size(); ++i) {
              if (auto lid = part.localIdOf(gids[i])) {
                value[*lid] = vals[i];
              }
            }
            for (uint64_t gid : frontierGids) {
              if (auto lid = part.localIdOf(gid)) {
                frontier.set(*lid);
              }
            }
          }
        }
        uint32_t s = resumePhase;  // next superstep index (0-based)
        for (;;) {
          if (options.cancel) {
            options.cancel->check("superstep " + std::to_string(s));
          }
          obs::ScopedSpan stepSpan(obsSink.trace.get(), me,
                                   "superstep " + std::to_string(s));
          if (superstepsCtr != nullptr) {
            superstepsCtr->add();
            frontierHist->observe(static_cast<double>(frontier.count()));
          }
          const bool more = program.superstep(s, value, frontier);
          if (checkpoints &&
              !checkpointingDisabled.load(std::memory_order_relaxed) &&
              ((s + 1) % interval == 0 || !more)) {
            support::SendBuffer payload;
            const uint64_t superstep = s;
            std::vector<uint64_t> gids;
            std::vector<T> vals;
            gids.reserve(part.numMasters);
            vals.reserve(part.numMasters);
            for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
              gids.push_back(part.globalId(lid));
              vals.push_back(value[lid]);
            }
            std::vector<uint64_t> frontierGids;
            std::vector<uint64_t> frontierLids;
            frontier.collectSetBits(frontierLids);
            frontierGids.reserve(frontierLids.size());
            for (uint64_t lid : frontierLids) {
              frontierGids.push_back(part.globalId(lid));
            }
            support::serializeAll(payload, superstep, gids, vals,
                                  frontierGids);
            const std::string dir = epochDir(options.checkpointDir, epoch);
            const uint32_t phase = s + 1;
            try {
              core::saveCheckpoint(dir, me, k, phase, payload);
              if (options.buddyReplication) {
                core::saveCheckpointReplica(dir, me, k, phase, payload);
              }
              checkpointsSaved.fetch_add(1, std::memory_order_relaxed);
              if (ckptWrittenCtr != nullptr) {
                ckptWrittenCtr->add();
              }
              atomicMax(maxPhaseSaved, phase);
            } catch (const support::StorageError& e) {
              // A failed checkpoint write never fails the superstep: the
              // run continues, at worst rolling further back on the next
              // fault. ENOSPC additionally disables checkpointing for the
              // rest of the run — a full disk does not fix itself, and
              // retrying every interval would only churn.
              checkpointWriteFailures.fetch_add(1, std::memory_order_relaxed);
              if (e.kind == support::StorageError::Kind::kNoSpace &&
                  !checkpointingDisabled.exchange(true,
                                                  std::memory_order_relaxed)) {
                CUSP_LOG_WARN()
                    << "checkpointing disabled for the rest of the run: "
                    << e.what();
                if (obsSink.metrics) {
                  obsSink.metrics->counter("cusp.checkpoint.disabled_enospc")
                      .add();
                }
              }
            }
          }
          ++s;
          if (!more) {
            break;
          }
        }
        atomicMax(superstepsRun, s);
        // Masters hold the canonical values; master gid sets are disjoint
        // across alive ranks, so concurrent writes land on distinct slots.
        for (uint64_t lid = 0; lid < part.numMasters; ++lid) {
          global[part.globalId(lid)] = value[lid];
        }
      });
      const comm::VolumeStats volume = net.statsSnapshot();
      report.corruptionsDetected += volume.corruptionsDetected;
      report.corruptionsRecovered += volume.corruptionsRecovered;
      report.supersteps = superstepsRun.load();
      report.checkpointsSaved = checkpointsSaved.load();
      report.checkpointWriteFailures = checkpointWriteFailures.load();
      report.checkpointingDisabledByEnospc = checkpointingDisabled.load();
      if (stragglerMonitor) {
        report.stragglerSoftReports = stragglerMonitor->totalSoftReports();
      }
      report.finalAliveHosts = net.numAliveHosts();
      publish();
      return global;
    } catch (...) {
      const comm::VolumeStats volume = net.statsSnapshot();
      report.corruptionsDetected += volume.corruptionsDetected;
      report.corruptionsRecovered += volume.corruptionsRecovered;
      report.checkpointsSaved = checkpointsSaved.load();
      report.checkpointWriteFailures = checkpointWriteFailures.load();
      report.checkpointingDisabledByEnospc = checkpointingDisabled.load();
      if (stragglerMonitor) {
        report.stragglerSoftReports = stragglerMonitor->totalSoftReports();
      }
      const std::exception_ptr ep = std::current_exception();
      std::string kind;
      std::string what;
      try {
        std::rethrow_exception(ep);
      } catch (const SyncRoundFailed& e) {
        kind = "SyncRoundFailed";
        what = e.what();
      } catch (...) {
        const auto classified = core::classifyFault(std::current_exception());
        if (!classified) {
          publish();
          throw;  // not a fault (logic error, bad input): propagate as-is
        }
        kind = classified->kindName();
        what = classified->what;
      }
      report.failures.push_back(what);
      report.failureKinds.push_back(kind);

      // A fenced minority host is fail-fast by contract: the quorum rule
      // already decided this side of the partition may not proceed, and no
      // amount of retrying or evicting from HERE can conjure a majority.
      // (The majority side never throws this; its view completes or fails
      // through the ordinary fault kinds above.)
      if (kind == "MinorityPartition") {
        publish();
        std::rethrow_exception(ep);
      }

      // Permanent losses AND condemned stragglers turn into evictions
      // (degraded mode): reassign their masters to the survivors, open a
      // fresh epoch with a fresh attempt budget. A crashed host's
      // checkpoint store dies with it; a condemned straggler's machine is
      // merely slow, so its files stay readable for the restore path.
      std::vector<uint32_t> newlyDown;
      std::vector<uint32_t> newlyCrashed;
      if (injector) {
        for (comm::HostId h : injector->permanentlyDownHosts()) {
          if (std::find(evictedRanks.begin(), evictedRanks.end(), h) ==
              evictedRanks.end()) {
            newlyDown.push_back(h);
            newlyCrashed.push_back(h);
          }
        }
      }
      if (stragglerMonitor) {
        for (comm::HostId h : stragglerMonitor->condemnedHosts()) {
          if (std::find(evictedRanks.begin(), evictedRanks.end(), h) ==
                  evictedRanks.end() &&
              std::find(newlyDown.begin(), newlyDown.end(), h) ==
                  newlyDown.end()) {
            newlyDown.push_back(h);
          }
        }
      }
      if (options.degradedMode && !newlyDown.empty()) {
        maxPhaseByEpoch[epoch] =
            std::max(maxPhaseByEpoch[epoch], maxPhaseSaved.load());
        for (uint32_t h : newlyDown) {
          report.evictions.push_back(h);
          evictedRanks.push_back(h);
        }
        if (checkpoints) {
          for (uint32_t h : newlyCrashed) {
            for (uint32_t e = 0; e <= epoch; ++e) {
              core::removeHostCheckpointStore(
                  epochDir(options.checkpointDir, e), h, k,
                  maxPhaseByEpoch[e]);
            }
          }
        }
        if (evictedRanks.size() >= k) {
          publish();
          std::rethrow_exception(ep);  // no survivors
        }
        std::sort(evictedRanks.begin(), evictedRanks.end());
        std::vector<DistGraph> family(partitions.begin(), partitions.end());
        degradedParts =
            core::redistributePartitions(family, evictedRanks,
                                         /*compact=*/false);
        ++epoch;
        evictedAtEpochStart.push_back(evictedRanks);
        maxPhaseByEpoch.push_back(0);
        maxPhaseSaved.store(0);
        failuresThisEpoch = 0;
        continue;
      }
      if (++failuresThisEpoch >= std::max(1u, options.maxRecoveryAttempts)) {
        publish();
        std::rethrow_exception(ep);
      }
    }
  }
}

}  // namespace

std::vector<uint64_t> runBfsResilient(std::span<const DistGraph> partitions,
                                      uint64_t sourceGid,
                                      const ResilienceOptions& options,
                                      ResilienceReport* report) {
  return runResilientImpl<uint64_t>(
      partitions, options, report,
      [&](comm::Network& net, comm::HostId me, const DistGraph& part) {
        return MinPropProgram(
            net, me, part,
            [sourceGid](uint64_t, uint64_t gid) {
              return gid == sourceGid ? 0ull : kInfinity;
            },
            [](uint64_t value, uint64_t) { return value + 1; });
      });
}

std::vector<uint64_t> runSsspResilient(std::span<const DistGraph> partitions,
                                       uint64_t sourceGid,
                                       const ResilienceOptions& options,
                                       ResilienceReport* report) {
  return runResilientImpl<uint64_t>(
      partitions, options, report,
      [&](comm::Network& net, comm::HostId me, const DistGraph& part) {
        return MinPropProgram(
            net, me, part,
            [sourceGid](uint64_t, uint64_t gid) {
              return gid == sourceGid ? 0ull : kInfinity;
            },
            [&part](uint64_t value, uint64_t edge) {
              return value + part.graph.edgeData(edge);
            });
      });
}

std::vector<uint64_t> runCcResilient(std::span<const DistGraph> partitions,
                                     const ResilienceOptions& options,
                                     ResilienceReport* report) {
  return runResilientImpl<uint64_t>(
      partitions, options, report,
      [&](comm::Network& net, comm::HostId me, const DistGraph& part) {
        return MinPropProgram(
            net, me, part,
            [](uint64_t, uint64_t gid) { return gid; },
            [](uint64_t value, uint64_t) { return value; });
      });
}

std::vector<double> runPageRankResilient(
    std::span<const DistGraph> partitions, const PageRankParams& params,
    const ResilienceOptions& options, ResilienceReport* report) {
  return runResilientImpl<double>(
      partitions, options, report,
      [&](comm::Network& net, comm::HostId me, const DistGraph& part) {
        return PageRankProgram(net, me, part, params);
      });
}

}  // namespace cusp::analytics
