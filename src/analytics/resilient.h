// Resilient analytics driver: superstep checkpoint/restart over CuSP
// partitions.
//
// The plain run* drivers (analytics/algorithms.h) abort the whole run on
// the first SyncRoundFailed. The run*Resilient drivers below make the
// analytics leg of the pipeline survive the same fault schedules the
// partitioner already tolerates (core/partitioner.h):
//
//  * Superstep checkpointing. After every `checkpointInterval`-th completed
//    superstep each host persists a CRC'd snapshot (core/checkpoint.h,
//    phase = superstep + 1, optional buddy replication to the ring
//    successor) of its MASTER vertex state keyed by GLOBAL id: (superstep,
//    master gids, master values, frontier gids). Gid-keyed snapshots are
//    layout-independent, so the same restore path serves a same-layout
//    rollback and a post-eviction redistributed layout.
//
//  * Rollback. On SyncRoundFailed / NetworkStalled / HostFailure /
//    HostEvicted / MessageCorrupt the driver tears the attempt down,
//    agrees on the last superstep EVERY participant can still recover
//    (min over hosts of the latest valid checkpoint, buddy replicas
//    consulted), and restarts all hosts from it — each host loads every
//    participant's snapshot and applies the gids it holds. The shared
//    FaultInjector persists across attempts, so transient crashes fire
//    exactly once.
//
//  * Degraded continuation. With `degradedMode` on, a permanently lost
//    host is evicted from the Network membership, its checkpoint store is
//    dropped (replicas at its buddy survive), masters are deterministically
//    reassigned to the survivors (core::redistributePartitions, original
//    rank space kept so the engine's membership-aware sync loops just skip
//    the hole), and the run continues on the survivors — worst case from
//    superstep 0 of the new epoch. Checkpoints of different membership
//    epochs live in separate `<dir>/e<N>` subdirectories so snapshots of
//    different layouts can never be mixed at the same superstep number.
//
// Determinism: bfs/sssp/cc compute the unique fixpoint of a monotone
// min-propagation, so rollback and degraded continuation are bit-identical
// to a fault-free run. PageRank is bit-identical under same-layout rollback
// (masters are restored exactly and mirrors equal masters at superstep
// boundaries); after a layout change the floating-point accumulation order
// shifts, so degraded pagerank matches the reference to tolerance, not bit
// for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analytics/algorithms.h"
#include "comm/fault.h"
#include "comm/network.h"
#include "core/dist_graph.h"
#include "support/cancel.h"

namespace cusp::analytics {

struct ResilienceOptions {
  // Superstep checkpointing (off unless enableCheckpoints and a dir given).
  std::string checkpointDir;
  bool enableCheckpoints = false;
  uint32_t checkpointInterval = 1;  // supersteps between checkpoints (>= 1)
  // Replicate every snapshot to the ring successor's store so an evicted
  // host's state stays recoverable (core/checkpoint.h buddy replication).
  bool buddyReplication = false;

  // Failed attempts tolerated per membership epoch before the failure is
  // rethrown (an eviction starts a fresh budget).
  uint32_t maxRecoveryAttempts = 3;

  // Fault environment, mirroring core::ResilienceConfig: a seeded plan
  // shared across attempts, the sendReliable retry policy, and the recv
  // timeout that turns silent hangs into NetworkStalled.
  std::shared_ptr<const comm::FaultPlan> faultPlan;
  comm::RetryPolicy retry;
  double recvTimeoutSeconds = 0.0;  // <= 0: unbounded waits

  // Continue on the survivors after a permanent host loss instead of
  // rethrowing once the attempt budget is spent.
  bool degradedMode = false;

  // Straggler deadlines (comm::StragglerPolicy): receivers blocked on one
  // slow peer past the soft deadline emit blame reports; a peer over the
  // hard deadline is condemned and — with degradedMode on — evicted into
  // the degraded continuation exactly like a permanent crash.
  comm::StragglerPolicy straggler;

  comm::NetworkCostModel costModel;

  // Send-aggregation override for the attempt networks; unset = the
  // process-wide default (comm::defaultAggregation()).
  std::optional<comm::AggregationPolicy> aggregation;

  // Cooperative cancellation (support/cancel.h), mirroring
  // core::ResilienceConfig: checked before every attempt and at each
  // superstep boundary. An expired token unwinds with
  // support::JobCancelled, which is not a fault kind and is therefore
  // rethrown immediately (no recovery attempts spent). Null never cancels.
  std::shared_ptr<support::CancelToken> cancel;
};

// What happened across all attempts of one resilient run.
struct ResilienceReport {
  uint32_t attempts = 0;         // total runs started (first try included)
  uint32_t supersteps = 0;       // supersteps executed by the final attempt
  uint32_t resumedFromSuperstep = 0;  // highest rollback target used
  uint32_t checkpointsSaved = 0;      // primary snapshots written
  std::vector<std::string> failures;      // one entry per failed attempt
  std::vector<std::string> failureKinds;  // parallel: classified kind names
  std::vector<comm::HostId> evictions;    // permanently lost, in order
  uint32_t finalAliveHosts = 0;
  // Wire-corruption outcomes summed over every attempt's network.
  uint64_t corruptionsDetected = 0;
  uint64_t corruptionsRecovered = 0;
  // Storage-fault outcomes: failed checkpoint writes are absorbed (the
  // superstep continues uncheckpointed), and a persistent ENOSPC flips the
  // run into an explicit checkpointing-disabled continuation mode.
  uint32_t checkpointWriteFailures = 0;
  bool checkpointingDisabledByEnospc = false;
  // Soft straggler reports accumulated by the run's StragglerMonitor.
  uint64_t stragglerSoftReports = 0;
};

// Resilient counterparts of runBfs/runSssp/runCc/runPageRank: same result
// contract (global array indexed by global node id, masters authoritative),
// but the run rides out the faults described by `options`. On an
// unrecoverable failure the underlying structured fault is rethrown after
// `report` (if given) is filled in. `partitions` must be a complete
// rank-indexed family (partitions[r].hostId == r).
std::vector<uint64_t> runBfsResilient(
    std::span<const core::DistGraph> partitions, uint64_t sourceGid,
    const ResilienceOptions& options, ResilienceReport* report = nullptr);

std::vector<uint64_t> runSsspResilient(
    std::span<const core::DistGraph> partitions, uint64_t sourceGid,
    const ResilienceOptions& options, ResilienceReport* report = nullptr);

std::vector<uint64_t> runCcResilient(
    std::span<const core::DistGraph> partitions,
    const ResilienceOptions& options, ResilienceReport* report = nullptr);

std::vector<double> runPageRankResilient(
    std::span<const core::DistGraph> partitions, const PageRankParams& params,
    const ResilienceOptions& options, ResilienceReport* report = nullptr);

}  // namespace cusp::analytics
