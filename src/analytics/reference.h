// Single-image reference implementations of bfs, sssp, cc and pagerank.
//
// These run on the whole (unpartitioned) graph and define the ground truth
// the distributed engine must reproduce for every partitioning policy —
// the core validation of the test suite. The pagerank reference applies
// the exact same update rule as the distributed version (topological
// iterations, dangling mass dropped) so results agree to floating-point
// tolerance.
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/algorithms.h"
#include "graph/csr_graph.h"

namespace cusp::analytics {

std::vector<uint64_t> bfsReference(const graph::CsrGraph& graph,
                                   uint64_t source);

std::vector<uint64_t> ssspReference(const graph::CsrGraph& graph,
                                    uint64_t source);

// Label propagation to a fixpoint (weakly connected components when the
// graph is symmetric; directed min-label fixpoint otherwise — identical
// semantics to the distributed version either way).
std::vector<uint64_t> ccReference(const graph::CsrGraph& graph);

std::vector<double> pageRankReference(const graph::CsrGraph& graph,
                                      const PageRankParams& params = {});

// Sequential peeling with the same multigraph degree semantics as the
// distributed version (degree = out-degree of the symmetric graph;
// parallel edges count separately). Returns 1 for k-core members, else 0.
std::vector<uint64_t> kCoreReference(const graph::CsrGraph& graph,
                                     uint64_t k);

// Triangle count of a simple symmetric graph via degree-ordered wedge
// closure (same orientation rule as the distributed version).
uint64_t triangleCountReference(const graph::CsrGraph& graph);

}  // namespace cusp::analytics
