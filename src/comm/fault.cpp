#include "comm/fault.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "comm/network.h"
#include "support/random.h"

namespace cusp::comm {

SendRetriesExhausted::SendRetriesExhausted(HostId from, HostId to, Tag tag,
                                           uint32_t attempts)
    : std::runtime_error("message " + std::to_string(from) + " -> " +
                         std::to_string(to) + " on " + tagName(tag) +
                         " dropped " + std::to_string(attempts) +
                         " times; retries exhausted"),
      from(from),
      to(to),
      tag(tag),
      attempts(attempts) {}

MessageCorrupt::MessageCorrupt(HostId from, HostId to, Tag tag)
    : std::runtime_error("message " + std::to_string(from) + " -> " +
                         std::to_string(to) + " on " + tagName(tag) +
                         " failed CRC32 frame verification (corrupt in "
                         "flight); frame discarded"),
      from(from),
      to(to),
      tag(tag) {}

StragglerDeadline::StragglerDeadline(HostId from, HostId laggard, Tag tag,
                                     double blamedSeconds)
    : std::runtime_error(
          "host " + std::to_string(laggard) + " blew the hard straggler "
          "deadline (" + std::to_string(blamedSeconds) + "s of blamed wait); "
          "host " + std::to_string(from) + " gave up waiting on " +
          tagName(tag)),
      from(from),
      laggard(laggard),
      tag(tag),
      blamedSeconds(blamedSeconds) {}

MinorityPartition::MinorityPartition(HostId host, uint32_t componentSize,
                                     uint32_t numAlive, uint64_t epoch)
    : std::runtime_error(
          "host " + std::to_string(host) +
          " is on the minority side of a network partition (" +
          std::to_string(componentSize) + " of " + std::to_string(numAlive) +
          " alive hosts reachable, no strict majority); fenced at epoch " +
          std::to_string(epoch) + " and failing fast"),
      host(host),
      componentSize(componentSize),
      numAlive(numAlive),
      epoch(epoch) {}

HostEvicted::HostEvicted(HostId from, HostId host, Tag tag, uint64_t epoch)
    : std::runtime_error("host " + std::to_string(host) +
                         " was evicted (membership epoch " +
                         std::to_string(epoch) + "); host " +
                         std::to_string(from) + " failing fast on " +
                         tagName(tag)),
      from(from),
      host(host),
      tag(tag),
      epoch(epoch) {}

std::string tagName(Tag tag) {
  switch (tag) {
    case kTagGeneric: return "kTagGeneric";
    case kTagMasterRequest: return "kTagMasterRequest";
    case kTagMasterAssign: return "kTagMasterAssign";
    case kTagMasterList: return "kTagMasterList";
    case kTagEdgeCounts: return "kTagEdgeCounts";
    case kTagMirrorFlags: return "kTagMirrorFlags";
    case kTagMirrorToMaster: return "kTagMirrorToMaster";
    case kTagEdgeBatch: return "kTagEdgeBatch";
    case kTagAppReduce: return "kTagAppReduce";
    case kTagAppBroadcast: return "kTagAppBroadcast";
    case kTagStateReduce: return "kTagStateReduce";
    case kTagCollectiveUp: return "kTagCollectiveUp";
    case kTagCollectiveDown: return "kTagCollectiveDown";
    case kTagBarrierUp: return "kTagBarrierUp";
    case kTagBarrierDown: return "kTagBarrierDown";
    case kAnyTag: return "kAnyTag";
    default: return "tag " + std::to_string(tag);
  }
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      faultMatches_(plan_.messageFaults.size(), 0),
      crashFired_(plan_.crashes.size(), false),
      partitionResolved_(plan_.partitions.size(), false) {}

bool FaultInjector::partitionCuts(HostId from, HostId to) const {
  for (size_t i = 0; i < plan_.partitions.size(); ++i) {
    const PartitionEvent& pe = plan_.partitions[i];
    if (maxAnnouncedPhase_ < pe.phase) {
      continue;  // not yet active
    }
    if (partitionResolved_[i] && pe.heals) {
      continue;  // healed: connectivity restored
    }
    if (from < pe.groupOf.size() && to < pe.groupOf.size() &&
        pe.groupOf[from] != pe.groupOf[to]) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::linkFaultActive(const LinkFault& fault, HostId from,
                                    HostId to) const {
  if (fault.src != from || fault.dst != to) {
    return false;
  }
  const auto phase = hostPhase_.find(from);
  const uint32_t srcPhase = phase == hostPhase_.end() ? 0 : phase->second;
  return srcPhase >= fault.fromPhase;
}

std::optional<FaultInjector::SendDecision> FaultInjector::onSend(HostId from,
                                                                 HostId to,
                                                                 Tag tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<SendDecision> decision;
  // Connectivity cuts fire before per-message faults: a message that cannot
  // physically cross the partition never reaches the lossy-link lottery.
  if (partitionCuts(from, to)) {
    ++stats_.partitionDropped;
    decision = SendDecision{FaultAction::kDrop, 0};
  }
  // The per-link sequence counter advances on EVERY send over a link with a
  // matching fault, decided or not, so a plan's drop schedule is a pure
  // function of the link's send sequence (single sender thread per
  // direction => deterministic).
  for (const LinkFault& fault : plan_.linkFaults) {
    if (!linkFaultActive(fault, from, to) || fault.dropRate <= 0.0) {
      continue;
    }
    const uint64_t seq = linkSeq_[{from, to}]++;
    if (decision) {
      continue;
    }
    const bool drop =
        fault.dropRate >= 1.0 ||
        static_cast<double>(support::hashU64(
            (static_cast<uint64_t>(from) << 40) ^
            (static_cast<uint64_t>(to) << 20) ^ (seq * 0x9E3779B97F4A7C15ULL)) %
                            10000) < fault.dropRate * 10000.0;
    if (drop) {
      ++stats_.linkDropped;
      decision = SendDecision{FaultAction::kDrop, 0};
    }
  }
  for (size_t i = 0; i < plan_.messageFaults.size(); ++i) {
    const MessageFault& fault = plan_.messageFaults[i];
    if ((fault.src != kAnyHost && fault.src != from) ||
        (fault.dst != kAnyHost && fault.dst != to) ||
        (fault.tag != kAnyTag && fault.tag != tag)) {
      continue;
    }
    const uint64_t seen = faultMatches_[i]++;
    if (decision || seen < fault.occurrence ||
        seen >= fault.occurrence + fault.repeat) {
      continue;  // counter still advances for non-firing matches
    }
    decision = SendDecision{fault.action, fault.delayScans};
    switch (fault.action) {
      case FaultAction::kDrop: ++stats_.dropped; break;
      case FaultAction::kDuplicate: ++stats_.duplicated; break;
      case FaultAction::kDelay: ++stats_.delayed; break;
      case FaultAction::kCorrupt: ++stats_.corrupted; break;
    }
  }
  return decision;
}

void FaultInjector::onCrossing(HostId host) {
  std::unique_lock<std::mutex> lock(mutex_);
  const uint64_t op = hostOps_[host]++;
  const uint32_t phase = hostPhase_[host];  // 0 until enterPhase
  if (host < permanentlyDown_.size() && permanentlyDown_[host]) {
    // A permanently crashed host does not reboot: it dies again at its
    // first crossing of every later attempt, whatever the phase.
    lock.unlock();
    throw HostFailure(host, phase);
  }
  for (size_t i = 0; i < plan_.crashes.size(); ++i) {
    const HostCrash& crash = plan_.crashes[i];
    if (crashFired_[i] || crash.host != host || crash.phase != phase ||
        op < crash.opsIntoPhase) {
      continue;
    }
    crashFired_[i] = true;
    if (crash.permanent) {
      if (permanentlyDown_.size() <= host) {
        permanentlyDown_.resize(host + 1, false);
      }
      permanentlyDown_[host] = true;
    }
    ++stats_.crashesFired;
    lock.unlock();
    throw HostFailure(host, phase);
  }
  // Sustained pacing: a slowdown plan makes every crossing of this host
  // genuinely cost extra wall-clock time, so its peers really do wait on
  // it. The sleep happens outside the lock — a straggler must not slow the
  // injector down for everyone else.
  double paceMicros = 0.0;
  for (const HostSlowdown& slow : plan_.slowdowns) {
    if (slow.host == host && slow.factor > 1.0 && phase >= slow.fromPhase) {
      paceMicros += (slow.factor - 1.0) * slow.opMicros;
    }
  }
  if (paceMicros > 0.0) {
    ++stats_.slowdownOps;
    stats_.slowdownMicros += static_cast<uint64_t>(paceMicros);
    lock.unlock();
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(paceMicros)));
  }
}

void FaultInjector::enterPhase(HostId host, uint32_t phase) {
  std::lock_guard<std::mutex> lock(mutex_);
  hostPhase_[host] = phase;
  hostOps_[host] = 0;
  // Partition events activate on the MAX phase any host has announced, and
  // the max is monotone across recovery attempts: once a partition is in
  // force it stays in force until the driver resolves it, even though a
  // restarted attempt re-announces phase 1.
  maxAnnouncedPhase_ = std::max(maxAnnouncedPhase_, phase);
}

bool FaultInjector::linkSevered(HostId from, HostId to) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (partitionCuts(from, to)) {
    return true;
  }
  for (const LinkFault& fault : plan_.linkFaults) {
    if (fault.dropRate >= 1.0 && linkFaultActive(fault, from, to)) {
      return true;
    }
  }
  return false;
}

double FaultInjector::linkDegradeFactor(HostId from, HostId to) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double factor = 1.0;
  for (const LinkFault& fault : plan_.linkFaults) {
    if (fault.degradeFactor > 1.0 && linkFaultActive(fault, from, to)) {
      factor *= fault.degradeFactor;
    }
  }
  return factor;
}

std::optional<size_t> FaultInjector::unresolvedPartition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < plan_.partitions.size(); ++i) {
    if (!partitionResolved_[i] && maxAnnouncedPhase_ >= plan_.partitions[i].phase) {
      return i;
    }
  }
  return std::nullopt;
}

const PartitionEvent& FaultInjector::partitionEvent(size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_.partitions.at(index);
}

void FaultInjector::resolvePartition(size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index < partitionResolved_.size()) {
    partitionResolved_[index] = true;
  }
}

bool FaultInjector::isPermanentlyDown(HostId host) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return host < permanentlyDown_.size() && permanentlyDown_[host];
}

std::vector<HostId> FaultInjector::permanentlyDownHosts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HostId> down;
  for (HostId h = 0; h < permanentlyDown_.size(); ++h) {
    if (permanentlyDown_[h]) {
      down.push_back(h);
    }
  }
  return down;
}

void FaultInjector::countRetry() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.retries;
}

void FaultInjector::countDuplicateSuppressed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.duplicatesSuppressed;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

StragglerMonitor::StragglerMonitor(uint32_t numHosts)
    : blame_(numHosts, 0.0),
      softReports_(numHosts, 0),
      condemned_(numHosts, false) {}

void StragglerMonitor::recordBlame(HostId laggard, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (laggard >= blame_.size()) {
    return;
  }
  blame_[laggard] += seconds;
  ++softReports_[laggard];
}

double StragglerMonitor::blamedSeconds(HostId laggard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return laggard < blame_.size() ? blame_[laggard] : 0.0;
}

uint64_t StragglerMonitor::softReports(HostId laggard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return laggard < softReports_.size() ? softReports_[laggard] : 0;
}

uint64_t StragglerMonitor::totalSoftReports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const uint64_t n : softReports_) {
    total += n;
  }
  return total;
}

double StragglerMonitor::medianPeerBlame(HostId excluding) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> peers;
  peers.reserve(blame_.size());
  for (HostId h = 0; h < blame_.size(); ++h) {
    if (h != excluding) {
      peers.push_back(blame_[h]);
    }
  }
  if (peers.empty()) {
    return 0.0;
  }
  std::sort(peers.begin(), peers.end());
  return peers[peers.size() / 2];
}

bool StragglerMonitor::overHardDeadline(HostId laggard,
                                        const StragglerPolicy& policy) const {
  if (!policy.hardEnabled()) {
    return false;
  }
  // In the common case healthy peers carry ~0 blame, so the median factor
  // term vanishes and the absolute floor decides; when everyone is equally
  // slow the median is high and nobody is condemned.
  return blamedSeconds(laggard) > policy.hardDeadlineSeconds &&
         blamedSeconds(laggard) >
             policy.hardDeadlineMedianFactor * medianPeerBlame(laggard);
}

void StragglerMonitor::markCondemned(HostId laggard) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (laggard < condemned_.size()) {
    condemned_[laggard] = true;
  }
}

bool StragglerMonitor::isCondemned(HostId laggard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return laggard < condemned_.size() && condemned_[laggard];
}

std::vector<HostId> StragglerMonitor::condemnedHosts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HostId> hosts;
  for (HostId h = 0; h < condemned_.size(); ++h) {
    if (condemned_[h]) {
      hosts.push_back(h);
    }
  }
  return hosts;
}

FaultPlan randomFaultPlan(uint64_t seed, uint32_t numHosts,
                          uint32_t maxMessageFaults, uint32_t maxCrashes,
                          bool allowPermanent, uint32_t maxSlowdowns,
                          uint32_t maxLinkFaults, bool allowPartition) {
  support::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  FaultPlan plan;
  static constexpr Tag kFuzzTags[] = {
      kTagMasterRequest, kTagMasterAssign, kTagMasterList, kTagEdgeCounts,
      kTagMirrorFlags,   kTagMirrorToMaster, kTagEdgeBatch, kTagStateReduce,
      kTagCollectiveUp,  kTagCollectiveDown, kTagBarrierUp, kTagBarrierDown,
      kAnyTag};
  const uint64_t numMessageFaults = rng.nextBounded(maxMessageFaults + 1);
  for (uint64_t i = 0; i < numMessageFaults; ++i) {
    MessageFault fault;
    fault.src = rng.nextBounded(2) == 0
                    ? kAnyHost
                    : static_cast<HostId>(rng.nextBounded(numHosts));
    fault.dst = rng.nextBounded(2) == 0
                    ? kAnyHost
                    : static_cast<HostId>(rng.nextBounded(numHosts));
    fault.tag = kFuzzTags[rng.nextBounded(std::size(kFuzzTags))];
    fault.occurrence = rng.nextBounded(24);
    fault.repeat = 1 + static_cast<uint32_t>(rng.nextBounded(6));
    switch (rng.nextBounded(4)) {
      case 0: fault.action = FaultAction::kDrop; break;
      case 1: fault.action = FaultAction::kDuplicate; break;
      case 2: fault.action = FaultAction::kCorrupt; break;
      default:
        fault.action = FaultAction::kDelay;
        // Repeated delays (the whole occurrence run of a channel held back)
        // stress the aging/polling path far harder than a single one.
        fault.repeat = 2 + static_cast<uint32_t>(rng.nextBounded(5));
        break;
    }
    fault.delayScans = 1 + static_cast<uint32_t>(rng.nextBounded(4));
    plan.messageFaults.push_back(fault);
  }
  const uint64_t numCrashes = rng.nextBounded(maxCrashes + 1);
  for (uint64_t i = 0; i < numCrashes; ++i) {
    HostCrash crash;
    crash.host = static_cast<HostId>(rng.nextBounded(numHosts));
    crash.phase = static_cast<uint32_t>(rng.nextBounded(6));  // 0..5
    crash.opsIntoPhase = rng.nextBounded(40);
    crash.permanent = allowPermanent && rng.nextBounded(3) == 0;
    plan.crashes.push_back(crash);
  }
  // Slowdown draws come LAST so that plans for a given seed are unchanged
  // when maxSlowdowns == 0 (the fuzzer's historical seeds keep replaying
  // the exact schedules they always did).
  const uint64_t numSlowdowns =
      maxSlowdowns == 0 ? 0 : rng.nextBounded(maxSlowdowns + 1);
  for (uint64_t i = 0; i < numSlowdowns; ++i) {
    HostSlowdown slow;
    slow.host = static_cast<HostId>(rng.nextBounded(numHosts));
    slow.factor = 2.0 + static_cast<double>(rng.nextBounded(7));  // 2-8x
    slow.opMicros = 20 + static_cast<uint32_t>(rng.nextBounded(60));
    slow.fromPhase = static_cast<uint32_t>(rng.nextBounded(6));  // 0..5
    plan.slowdowns.push_back(slow);
  }
  // Link/partition draws come after the slowdown draws for the same reason
  // the slowdowns come after the crashes: plans for a given seed are
  // unchanged when the new knobs stay at their defaults.
  const uint64_t numLinkFaults =
      maxLinkFaults == 0 || numHosts < 2 ? 0 : rng.nextBounded(maxLinkFaults + 1);
  for (uint64_t i = 0; i < numLinkFaults; ++i) {
    LinkFault link;
    link.src = static_cast<HostId>(rng.nextBounded(numHosts));
    link.dst = static_cast<HostId>(
        (link.src + 1 + rng.nextBounded(numHosts - 1)) % numHosts);
    // 25/50/75% loss — lossy but not severed, so bounded retry usually (not
    // always) punches through; severed links come from partition events.
    link.dropRate = 0.25 * static_cast<double>(1 + rng.nextBounded(3));
    link.degradeFactor = 1.0 + static_cast<double>(rng.nextBounded(4));
    link.fromPhase = static_cast<uint32_t>(rng.nextBounded(6));  // 0..5
    plan.linkFaults.push_back(link);
  }
  if (allowPartition && numHosts >= 2 && rng.nextBounded(2) == 0) {
    PartitionEvent pe;
    pe.groupOf.resize(numHosts, 0);
    // Contiguous two-group split with both sides nonempty; the cut point
    // decides whether a strict majority exists (an even split must fail
    // fast on both sides).
    const uint64_t cut = 1 + rng.nextBounded(numHosts - 1);
    for (HostId h = 0; h < numHosts; ++h) {
      pe.groupOf[h] = h < cut ? 0 : 1;
    }
    pe.phase = 1 + static_cast<uint32_t>(rng.nextBounded(5));  // 1..5
    pe.heals = rng.nextBounded(2) == 0;
    plan.partitions.push_back(std::move(pe));
  }
  return plan;
}

FaultPlan remapFaultPlan(const FaultPlan& plan,
                         const std::vector<HostId>& survivors) {
  std::map<HostId, HostId> newRank;
  for (HostId rank = 0; rank < survivors.size(); ++rank) {
    newRank[survivors[rank]] = rank;
  }
  auto translate = [&](HostId host, HostId* out) {
    if (host == kAnyHost) {
      *out = kAnyHost;
      return true;
    }
    auto it = newRank.find(host);
    if (it == newRank.end()) {
      return false;  // pinned to an evicted host; drop the fault
    }
    *out = it->second;
    return true;
  };
  FaultPlan remapped;
  for (MessageFault fault : plan.messageFaults) {
    if (translate(fault.src, &fault.src) && translate(fault.dst, &fault.dst)) {
      remapped.messageFaults.push_back(fault);
    }
  }
  for (HostCrash crash : plan.crashes) {
    if (translate(crash.host, &crash.host)) {
      remapped.crashes.push_back(crash);
    }
  }
  for (HostSlowdown slow : plan.slowdowns) {
    if (translate(slow.host, &slow.host)) {
      remapped.slowdowns.push_back(slow);
    }
  }
  for (LinkFault link : plan.linkFaults) {
    if (translate(link.src, &link.src) && translate(link.dst, &link.dst)) {
      remapped.linkFaults.push_back(link);
    }
  }
  for (const PartitionEvent& pe : plan.partitions) {
    // Rebuild the group map over the survivor ranks; if eviction removed
    // one whole side there is no partition left to schedule.
    PartitionEvent projected;
    projected.phase = pe.phase;
    projected.heals = pe.heals;
    projected.groupOf.resize(survivors.size(), 0);
    std::set<uint8_t> groups;
    for (HostId rank = 0; rank < survivors.size(); ++rank) {
      const HostId original = survivors[rank];
      const uint8_t group =
          original < pe.groupOf.size() ? pe.groupOf[original] : 0;
      projected.groupOf[rank] = group;
      groups.insert(group);
    }
    if (groups.size() >= 2) {
      remapped.partitions.push_back(std::move(projected));
    }
  }
  return remapped;
}

}  // namespace cusp::comm
