#include "comm/network.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>

#include "obs/obs.h"
#include "support/crc32.h"
#include "support/random.h"
#include "support/storage.h"

namespace cusp::comm {

namespace {

// Stall-registry packing: active(1) | from(31) | tag(32).
constexpr uint64_t kBlockedActiveBit = 1ULL << 63;

uint64_t packBlocked(HostId from, Tag tag) {
  return kBlockedActiveBit |
         (static_cast<uint64_t>(from & 0x7FFFFFFFu) << 32) |
         static_cast<uint64_t>(tag);
}

// Straggler reports are rare (at most one per soft-deadline window per
// blocked receiver), so the cells are looked up per event instead of being
// cached in ObsHandles like the per-send counters.
void countStragglerReport(HostId laggard, bool hard) {
  if (!obs::attached()) {
    return;
  }
  if (const auto registry = obs::sink().metrics) {
    registry
        ->counter(hard ? "cusp.straggler.hard_evictions"
                       : "cusp.straggler.soft_reports",
                  {{"host", std::to_string(laggard)}})
        .add(1);
  }
}

// Partition/quorum events are rarer still (a handful per run at most), so
// their cells are also looked up per event instead of cached in ObsHandles.
void countPartitionEvent(const char* which, HostId host) {
  if (!obs::attached()) {
    return;
  }
  if (const auto registry = obs::sink().metrics) {
    registry
        ->counter(std::string("cusp.net.partition.") + which,
                  {{"host", std::to_string(host)}})
        .add(1);
  }
}

// Process-wide aggregation default, snapshotted by every Network at
// construction (see setAggregation for per-instance overrides).
std::mutex gAggregationMutex;
AggregationPolicy gAggregationDefault{};

}  // namespace

void setDefaultAggregation(const AggregationPolicy& policy) {
  std::lock_guard<std::mutex> lock(gAggregationMutex);
  gAggregationDefault = policy;
}

AggregationPolicy defaultAggregation() {
  std::lock_guard<std::mutex> lock(gAggregationMutex);
  return gAggregationDefault;
}

Network::Network(uint32_t numHosts, NetworkCostModel costModel)
    : costModel_(costModel) {
  if (numHosts == 0) {
    throw std::invalid_argument("Network: numHosts must be > 0");
  }
  mailboxes_.reserve(numHosts);
  modeledCommNanos_.reserve(numHosts);
  blockedOn_.reserve(numHosts);
  alive_.reserve(numHosts);
  for (uint32_t h = 0; h < numHosts; ++h) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    modeledCommNanos_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    blockedOn_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    alive_.push_back(std::make_unique<std::atomic<bool>>(true));
  }
  suspected_.assign(numHosts, std::vector<bool>(numHosts, false));
  agg_ = defaultAggregation();
  aggChannels_.reserve(static_cast<size_t>(numHosts) * numHosts);
  for (size_t i = 0; i < static_cast<size_t>(numHosts) * numHosts; ++i) {
    aggChannels_.push_back(std::make_unique<detail::AggChannel>());
  }
  // Resolve obs registry cells once, here: attach the sink BEFORE creating
  // the cluster. Each send then pays one null check (detached) or a few
  // relaxed atomic adds (attached) — never a map lookup.
  if (obs::attached()) {
    const obs::Sink sink = obs::sink();
    if (sink.metrics) {
      obs_.registry = sink.metrics;
      obs::MetricsRegistry& reg = *obs_.registry;
      for (Tag t = 0; t < kTagCount; ++t) {
        obs_.bytes[t] = &reg.counter("cusp.net.bytes", {{"tag", tagName(t)}});
        obs_.messages[t] =
            &reg.counter("cusp.net.messages", {{"tag", tagName(t)}});
      }
      obs_.collectiveBytes =
          &reg.counter("cusp.net.bytes", {{"tag", "collective"}});
      obs_.collectiveMessages =
          &reg.counter("cusp.net.messages", {{"tag", "collective"}});
      obs_.framingBytes = &reg.counter("cusp.net.framing_bytes");
      obs_.corruptionsDetected = &reg.counter("cusp.net.corruptions_detected");
      obs_.corruptionsRecovered =
          &reg.counter("cusp.net.corruptions_recovered");
      obs_.sendRetries = &reg.counter("cusp.net.send_retries");
      static constexpr const char* kCauseNames[kNumFlushCauses] = {
          "size", "age", "pressure", "barrier"};
      for (size_t c = 0; c < kNumFlushCauses; ++c) {
        obs_.aggFlushes[c] =
            &reg.counter("cusp.net.agg.flushes", {{"cause", kCauseNames[c]}});
      }
      obs_.aggPackets = &reg.counter("cusp.net.agg.packets");
      obs_.aggPackedMessages = &reg.counter("cusp.net.agg.packed_messages");
      obs_.aggPackedBytes = &reg.counter("cusp.net.agg.packed_bytes");
      obs_.aggOversized = &reg.counter("cusp.net.agg.oversized_messages");
      obs_.aggOverCap = &reg.counter("cusp.net.agg.overcap_packets");
      obs_.aggPendingBytes = &reg.gauge("cusp.net.agg.pending_bytes");
      obs_.aggOccupancy = &reg.histogram("cusp.net.agg.packet_messages");
    }
  }
}

MembershipView Network::membershipSnapshot() const {
  MembershipView view;
  view.epoch = membershipEpoch();
  view.alive.resize(numHosts());
  for (HostId h = 0; h < numHosts(); ++h) {
    view.alive[h] = isAlive(h) ? 1 : 0;
  }
  return view;
}

void Network::evict(HostId host) {
  if (host >= numHosts()) {
    throw std::out_of_range("Network::evict: host id out of range");
  }
  {
    std::lock_guard<std::mutex> lock(membershipMutex_);
    if (!alive_[host]->load(std::memory_order_acquire)) {
      return;  // idempotent
    }
    alive_[host]->store(false, std::memory_order_release);
    membershipEpoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Wake every blocked receiver: anyone waiting on the evicted host must
  // recheck membership and fail fast instead of riding out the timeout.
  // While at it, reclaim the evicted host's comm footprint: its own mailbox
  // dies with it, its queued in-flight messages in survivor mailboxes can
  // never be trusted (and recvFrom on it fails fast anyway), and its
  // dup-filter channels would otherwise pin memory until process exit.
  for (HostId h = 0; h < numHosts(); ++h) {
    Mailbox& box = *mailboxes_[h];
    std::lock_guard<std::mutex> lock(box.mutex);
    if (h == host) {
      for (const Queued& entry : box.queue) {
        backlogBytes_.fetch_sub(entry.msg.payload.size(),
                                std::memory_order_relaxed);
      }
      box.queue.clear();
      box.channels.clear();
    } else {
      for (auto it = box.queue.begin(); it != box.queue.end();) {
        if (it->msg.from == host) {
          backlogBytes_.fetch_sub(it->msg.payload.size(),
                                  std::memory_order_relaxed);
          it = box.queue.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = box.channels.begin(); it != box.channels.end();) {
        it = it->first.first == host ? box.channels.erase(it) : std::next(it);
      }
    }
    box.arrived.notify_all();
  }
  // Purge the evicted host's aggregation channels in both directions:
  // staged-but-unshipped traffic from or to a dead host can never be
  // trusted, and its budget overdraft must stop exerting pressure.
  for (HostId h = 0; h < numHosts(); ++h) {
    for (const bool outgoing : {true, false}) {
      if (h == host) {
        continue;
      }
      detail::AggChannel& ch =
          outgoing ? aggChannel(host, h) : aggChannel(h, host);
      std::lock_guard<std::mutex> lock(ch.mutex);
      if (!ch.bytes.empty() || !ch.metas.empty()) {
        aggVolume_.pendingBytes.fetch_sub(ch.bytes.size(),
                                          std::memory_order_relaxed);
        ch.bytes.clear();
        ch.metas.clear();
      }
      if (ch.chargedBytes > 0 && support::memoryBudgetAttached()) {
        support::memoryBudget()->release(ch.chargedBytes);
      }
      ch.chargedBytes = 0;
    }
  }
  setPendingGauge();
  // The purged backlog was counted into the attached memory budget's comm
  // gauge; re-sample so the evicted host's share stops exerting pressure.
  if (support::memoryBudgetAttached()) {
    support::memoryBudget()->noteCommBacklog(mailboxBacklogBytes());
  }
}

bool Network::linkReachable(HostId me, HostId peer) const {
  if (me >= numHosts() || peer >= numHosts()) {
    throw std::out_of_range("Network::linkReachable: host id out of range");
  }
  if (me == peer) {
    return true;
  }
  if (injector_ && injector_->linkSevered(me, peer)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(suspicionMutex_);
  return !suspected_[me][peer];
}

void Network::clearSuspicions() {
  std::lock_guard<std::mutex> lock(suspicionMutex_);
  for (auto& row : suspected_) {
    std::fill(row.begin(), row.end(), false);
  }
}

void Network::noteSuspect(HostId me, HostId peer) {
  if (me >= numHosts() || peer >= numHosts() || me == peer) {
    return;
  }
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lock(suspicionMutex_);
    fresh = !suspected_[me][peer];
    suspected_[me][peer] = true;
  }
  if (fresh) {
    countPartitionEvent("suspicions", peer);
  }
}

std::vector<HostId> Network::connectivityComponent(HostId me) const {
  // Undirected BFS over alive hosts: an edge exists only when BOTH
  // directions are reachable (a one-way link cannot carry request/reply
  // protocols, so it does not connect for quorum purposes).
  std::vector<bool> visited(numHosts(), false);
  std::vector<HostId> frontier{me};
  std::vector<HostId> component;
  visited[me] = true;
  while (!frontier.empty()) {
    const HostId h = frontier.back();
    frontier.pop_back();
    component.push_back(h);
    for (HostId peer = 0; peer < numHosts(); ++peer) {
      if (visited[peer] || !isAlive(peer)) {
        continue;
      }
      if (linkReachable(h, peer) && linkReachable(peer, h)) {
        visited[peer] = true;
        frontier.push_back(peer);
      }
    }
  }
  std::sort(component.begin(), component.end());
  return component;
}

void Network::enforceQuorumOnFailure(HostId me, HostId peer, Tag tag) {
  (void)tag;
  if (!injector_ || !isAlive(me)) {
    return;
  }
  noteSuspect(me, peer);
  if (!injector_->linkSevered(me, peer) &&
      !injector_->unresolvedPartition().has_value()) {
    return;  // ordinary message loss, not a connectivity cut
  }
  const std::vector<HostId> component = connectivityComponent(me);
  const uint32_t numAlive = numAliveHosts();
  if (component.size() * 2 > numAlive) {
    return;  // majority side: surface the original error; the driver decides
  }
  // Minority (or exact tie) side of a confirmed cut: fence ourselves before
  // anyone down here can touch durable state, then fail fast.
  const uint64_t epoch = membershipEpoch() + 1;
  if (auto fence = support::writeFence()) {
    fence->advance(epoch);
    fence->fence(me);
  }
  countPartitionEvent("minority_fences", me);
  throw MinorityPartition(me, static_cast<uint32_t>(component.size()),
                          numAlive, epoch);
}

MembershipView Network::agreeMembership(HostId me) {
  if (!isAlive(me)) {
    // Evicted while cut off: the majority proceeded without us, and the
    // epoch bump in the membership view IS the detection signal. Fence and
    // fail fast; the resilient driver discards this host's stale in-memory
    // state and rejoins it through checkpoint redistribution after heal.
    const uint64_t epoch = membershipEpoch();
    if (auto fence = support::writeFence()) {
      fence->advance(epoch);
      fence->fence(me);
    }
    countPartitionEvent("minority_fences", me);
    throw MinorityPartition(me, 0, numAliveHosts(), epoch);
  }
  if (injector_) {
    const std::vector<HostId> component = connectivityComponent(me);
    const uint32_t numAlive = numAliveHosts();
    if (component.size() < numAlive) {
      if (component.size() * 2 > numAlive) {
        // Strict-majority component: evict every alive host outside it.
        // EVERY majority member performs the same idempotent evictions
        // before its exchange, so the survivors' collective root and alive
        // iteration agree without a message ever crossing the cut.
        std::vector<bool> inComponent(numHosts(), false);
        for (HostId h : component) {
          inComponent[h] = true;
        }
        std::vector<HostId> evicted;
        for (HostId h = 0; h < numHosts(); ++h) {
          if (isAlive(h) && !inComponent[h]) {
            evict(h);
            evicted.push_back(h);
            countPartitionEvent("quorum_evictions", h);
          }
        }
        if (auto fence = support::writeFence()) {
          // Register the evicted side as fenced at the bumped epoch: the
          // checkpoint store refuses their writes even if a cut-off host
          // never reaches its own minority check (models the shared
          // storage service learning the new fencing token).
          fence->advance(membershipEpoch());
          for (HostId h : evicted) {
            fence->fence(h);
          }
        }
      } else {
        // Minority, or an exact tie: neither side of a tie may proceed
        // (two proceeding halves is split-brain). Fence and fail fast.
        const uint64_t epoch = membershipEpoch() + 1;
        if (auto fence = support::writeFence()) {
          fence->advance(epoch);
          fence->fence(me);
        }
        countPartitionEvent("minority_fences", me);
        throw MinorityPartition(me, static_cast<uint32_t>(component.size()),
                                numAlive, epoch);
      }
    }
  }
  // The agreement round: alive hosts exchange their (epoch, alive bitmap)
  // views through the current collective root and fold them — max epoch,
  // AND of alive flags. On this shared simulated network all local views
  // already coincide, but the round makes the agreement traffic (and its
  // fault crossings) real, and it is what shifts the collective root when
  // host 0 is among the evicted.
  MembershipView local = membershipSnapshot();
  std::vector<uint64_t> packed(numHosts() + 1);
  packed[0] = local.epoch;
  for (HostId h = 0; h < numHosts(); ++h) {
    packed[1 + h] = local.alive[h];
  }
  allReduce<uint64_t>(
      me, packed,
      [](std::vector<uint64_t>& acc, const std::vector<uint64_t>& in) {
        acc[0] = std::max(acc[0], in[0]);
        for (size_t i = 1; i < acc.size(); ++i) {
          acc[i] &= in[i];
        }
      });
  MembershipView agreed;
  agreed.epoch = packed[0];
  agreed.alive.resize(numHosts());
  for (HostId h = 0; h < numHosts(); ++h) {
    agreed.alive[h] = packed[1 + h] != 0 ? 1 : 0;
  }
  return agreed;
}

double Network::modeledCommSeconds(HostId host) const {
  return static_cast<double>(
             modeledCommNanos_[host]->load(std::memory_order_relaxed)) *
         1e-9;
}

bool Network::send(HostId from, HostId to, Tag tag,
                   support::SendBuffer&& buffer) {
  if (from >= numHosts() || to >= numHosts()) {
    throw std::out_of_range("Network::send: host id out of range");
  }
  if (!isAlive(to) || !isAlive(from)) {
    // An evicted host never answers and never speaks: fail fast with the
    // structured error instead of burning the retry budget (sendReliable
    // does not catch this) or waiting out a recv timeout on the other side.
    throw HostEvicted(from, isAlive(to) ? from : to, tag, membershipEpoch());
  }
  if (injector_) {
    injector_->onCrossing(from);  // may throw HostFailure
  }
  chargeModeled(from, to, tag, buffer.size());
  std::optional<FaultInjector::SendDecision> decision;
  if (injector_ && from != to) {
    decision = injector_->onSend(from, to, tag);
  }
  if (decision && decision->action == FaultAction::kDrop) {
    return false;  // sender-visible loss; no volume accounted
  }
  // CRC framing: wrap the payload in a CRC32 footer, let an injected
  // corruption flip a byte of the framed message in flight, and verify the
  // frame at the mailbox boundary (the receiver NIC). The frame is stripped
  // before the payload is queued, so the receive path never sees footers.
  std::vector<uint8_t> wire = buffer.release();
  const size_t payloadBytes = wire.size();
  const bool framed = from != to && crcFraming_.load(std::memory_order_relaxed);
  if (framed) {
    support::appendCrcFooter(wire);
    if (decision && decision->action == FaultAction::kCorrupt) {
      // Deterministic in-flight byte flip: position derived from the message
      // identity so a given plan replays identically.
      const uint64_t h = support::hashU64(
          (static_cast<uint64_t>(from) << 48) ^
          (static_cast<uint64_t>(to) << 32) ^
          (static_cast<uint64_t>(tag) << 8) ^ wire.size());
      wire[h % wire.size()] ^= 0xA5;
    }
  }
  accountSend(from, to, tag, payloadBytes,
              framed ? wire.size() - payloadBytes : 0);
  if (framed) {
    // We framed this message ourselves, so anything but kVerified — a bad
    // checksum, or a footer whose magic the flip destroyed — is detected
    // corruption: discard the frame and NACK the sender.
    if (support::verifyAndStripCrcFooter(wire) !=
        support::CrcFooterStatus::kVerified) {
      volume_.corruptionsDetected.fetch_add(1, std::memory_order_relaxed);
      if (obs_.corruptionsDetected != nullptr) {
        obs_.corruptionsDetected->add();
      }
      throw MessageCorrupt(from, to, tag);
    }
  }
  Mailbox& box = *mailboxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    const size_t payloadLen = wire.size();
    Queued entry;
    entry.msg = Message{from, tag, support::RecvBuffer(std::move(wire))};
    if (injector_) {
      ChannelState& channel = box.channels[{from, tag}];
      entry.seq = ++channel.nextSeq;
      channel.lastUse = ++box.channelUseCounter;
      compactChannelsLocked(box);
      if (decision && decision->action == FaultAction::kDelay) {
        entry.delayScans = std::max(1u, decision->delayScans);
      }
    }
    if (decision && decision->action == FaultAction::kDuplicate) {
      box.queue.push_back(entry);  // same seq: the filter suppresses one copy
      backlogBytes_.fetch_add(payloadLen, std::memory_order_relaxed);
    }
    box.queue.push_back(std::move(entry));
    backlogBytes_.fetch_add(payloadLen, std::memory_order_relaxed);
  }
  box.arrived.notify_all();
  return true;
}

void Network::chargeModeled(HostId from, HostId to, Tag tag, size_t bytes) {
  if (from == to || tag >= kFirstReserved) {
    return;
  }
  double micros = costModel_.sendOverheadMicros;
  if (costModel_.bandwidthMBps > 0.0) {
    micros += static_cast<double>(bytes) / costModel_.bandwidthMBps;
  }
  if (micros > 0.0) {
    if (injector_) {
      // A degraded link (LinkFault::degradeFactor) multiplies the modeled
      // cost of every message that crosses it. Injector-gated, so a
      // fault-free network's accounting stays byte-identical.
      micros *= injector_->linkDegradeFactor(from, to);
    }
    modeledCommNanos_[from]->fetch_add(static_cast<int64_t>(micros * 1000.0),
                                       std::memory_order_relaxed);
  }
}

void Network::sendReliable(HostId from, HostId to, Tag tag,
                           support::SendBuffer&& buffer) {
  if (!injector_) {
    send(from, to, tag, std::move(buffer));
    return;
  }
  const uint32_t attempts = std::max(1u, retryPolicy_.maxAttempts);
  bool sawCorruption = false;
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    const bool last = attempt + 1 == attempts;
    support::SendBuffer offer;
    if (last) {
      offer = std::move(buffer);
    } else {
      offer.appendBytes(buffer.data(), buffer.size());
    }
    bool delivered = false;
    try {
      delivered = send(from, to, tag, std::move(offer));
    } catch (const MessageCorrupt&) {
      // The frame failed verification at the receiving mailbox (a link-layer
      // NACK). Retransmit a clean copy like a drop; each retry is a new
      // occurrence for the injector, so single-shot faults do not re-fire.
      if (last) {
        throw;  // retry budget spent; surface the structured error
      }
      sawCorruption = true;
    }
    if (delivered) {
      if (sawCorruption) {
        volume_.corruptionsRecovered.fetch_add(1, std::memory_order_relaxed);
        if (obs_.corruptionsRecovered != nullptr) {
          obs_.corruptionsRecovered->add();
        }
      }
      return;
    }
    if (!last) {
      injector_->countRetry();
      if (obs_.sendRetries != nullptr) {
        obs_.sendRetries->add();
      }
      // Decorrelated jitter: each backoff window is scaled by a
      // deterministic factor in [0.5, 1.5) derived from the message
      // identity and attempt number, so the survivors of a healed
      // partition (all retrying the same protocol step at once) spread out
      // instead of re-colliding in synchronized waves. Deterministic, so a
      // given plan still replays to identical modeled times.
      const uint64_t jitterHash = support::hashU64(
          (static_cast<uint64_t>(from) << 48) ^
          (static_cast<uint64_t>(to) << 32) ^
          (static_cast<uint64_t>(tag) << 8) ^ attempt);
      const double jitter =
          0.5 + static_cast<double>(jitterHash % 1024) / 1024.0;
      const double backoffMicros =
          retryPolicy_.backoffMicros * static_cast<double>(1u << attempt) *
          jitter;
      if (backoffMicros > 0.0 && from != to && tag < kFirstReserved) {
        modeledCommNanos_[from]->fetch_add(
            static_cast<int64_t>(backoffMicros * 1000.0),
            std::memory_order_relaxed);
      }
    }
  }
  // Exhausted retries toward one peer are the sender-side symptom of a cut
  // link: let the quorum rule decide whether WE are the fenced side before
  // surfacing the retry error (it throws MinorityPartition if so).
  enforceQuorumOnFailure(from, to, tag);
  throw SendRetriesExhausted(from, to, tag, attempts);
}

// --- send aggregation ------------------------------------------------------

void Network::packedCommitDraws(HostId from, HostId to, Tag tag, size_t len,
                                uint32_t* delayScans, bool* duplicate) {
  *delayScans = 0;
  *duplicate = false;
  if (!injector_) {
    if (!isAlive(to) || !isAlive(from)) {
      throw HostEvicted(from, isAlive(to) ? from : to, tag, membershipEpoch());
    }
    chargeModeled(from, to, tag, len);
    accountSend(from, to, tag, len, 0);
    return;
  }
  // Replay the legacy sendReliable attempt loop verbatim — same alive
  // checks, injector draws, cost charges, retry backoff hash and error
  // surface per attempt — so every historical FaultPlan seed draws the same
  // sequence whether the message ships packed or bare. Only the mailbox
  // enqueue is deferred: a delivered draw records its delay/duplicate
  // outcome in the meta, re-applied at packet-unpack time.
  const uint32_t attempts = std::max(1u, retryPolicy_.maxAttempts);
  const bool framed = crcFraming_.load(std::memory_order_relaxed);
  bool sawCorruption = false;
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    const bool last = attempt + 1 == attempts;
    if (!isAlive(to) || !isAlive(from)) {
      throw HostEvicted(from, isAlive(to) ? from : to, tag, membershipEpoch());
    }
    injector_->onCrossing(from);
    chargeModeled(from, to, tag, len);
    const auto decision = injector_->onSend(from, to, tag);
    bool delivered = false;
    if (decision && decision->action == FaultAction::kDrop) {
      // Sender-visible loss; retry below.
    } else if (framed && decision &&
               decision->action == FaultAction::kCorrupt) {
      // The framed attempt fails verification at the receiver NIC: the
      // burned transmission is accounted with its own footer, then NACKed
      // and retransmitted (exactly the legacy MessageCorrupt round trip).
      accountSend(from, to, tag, len, support::kCrcFooterSize);
      volume_.corruptionsDetected.fetch_add(1, std::memory_order_relaxed);
      if (obs_.corruptionsDetected != nullptr) {
        obs_.corruptionsDetected->add();
      }
      if (last) {
        throw MessageCorrupt(from, to, tag);
      }
      sawCorruption = true;
    } else {
      delivered = true;
      if (decision && decision->action == FaultAction::kDelay) {
        *delayScans = std::max(1u, decision->delayScans);
      }
      if (decision && decision->action == FaultAction::kDuplicate) {
        *duplicate = true;
      }
      accountSend(from, to, tag, len, 0);
    }
    if (delivered) {
      if (sawCorruption) {
        volume_.corruptionsRecovered.fetch_add(1, std::memory_order_relaxed);
        if (obs_.corruptionsRecovered != nullptr) {
          obs_.corruptionsRecovered->add();
        }
      }
      return;
    }
    if (!last) {
      injector_->countRetry();
      if (obs_.sendRetries != nullptr) {
        obs_.sendRetries->add();
      }
      const uint64_t jitterHash = support::hashU64(
          (static_cast<uint64_t>(from) << 48) ^
          (static_cast<uint64_t>(to) << 32) ^
          (static_cast<uint64_t>(tag) << 8) ^ attempt);
      const double jitter =
          0.5 + static_cast<double>(jitterHash % 1024) / 1024.0;
      const double backoffMicros =
          retryPolicy_.backoffMicros * static_cast<double>(1u << attempt) *
          jitter;
      if (backoffMicros > 0.0 && from != to && tag < kFirstReserved) {
        modeledCommNanos_[from]->fetch_add(
            static_cast<int64_t>(backoffMicros * 1000.0),
            std::memory_order_relaxed);
      }
    }
  }
  enforceQuorumOnFailure(from, to, tag);
  throw SendRetriesExhausted(from, to, tag, attempts);
}

void Network::finishPackedCommit(detail::AggChannel& ch, HostId from,
                                 HostId to, Tag tag, size_t start) {
  const size_t len = ch.bytes.size() - start;
  // No-straddling rule: if this commit would push the pending packet past
  // the cap, ship the existing prefix as its own packet first so the new
  // message starts a fresh one. Together with the size flush below this
  // guarantees every over-cap packet is exactly one over-cap message.
  if (start > 0 && start + len > agg_.packetBytes) {
    std::vector<uint8_t> tail(ch.bytes.begin() + static_cast<ptrdiff_t>(start),
                              ch.bytes.end());
    ch.bytes.resize(start);
    flushChannelLocked(ch, from, to, FlushCause::kSize);
    ch.bytes = std::move(tail);
    start = 0;
  }
  uint32_t delayScans = 0;
  bool duplicate = false;
  try {
    packedCommitDraws(from, to, tag, len, &delayScans, &duplicate);
  } catch (...) {
    // The message never shipped (evicted peer, exhausted retries, terminal
    // corruption): un-stage its bytes so the channel holds only messages
    // whose draws succeeded.
    ch.bytes.resize(start);
    throw;
  }
  if (ch.metas.empty()) {
    ch.oldestStage = std::chrono::steady_clock::now();
  }
  detail::AggChannel::Meta meta;
  meta.tag = tag;
  meta.len = static_cast<uint32_t>(len);
  meta.delayScans = delayScans;
  meta.duplicate = duplicate;
  ch.metas.push_back(meta);
  aggVolume_.pendingBytes.fetch_add(len, std::memory_order_relaxed);
  setPendingGauge();
  if (support::memoryBudgetAttached()) {
    // Overdraft, like BufferedSender: a committed message must ship, not
    // drop; pressure is relieved by the early flush below.
    support::memoryBudget()->reserveOverdraft(len);
    ch.chargedBytes += len;
  }
  if (len > agg_.packetBytes) {
    aggVolume_.oversizedMessages.fetch_add(1, std::memory_order_relaxed);
    if (obs_.aggOversized != nullptr) {
      obs_.aggOversized->add();
    }
  }
  if (ch.bytes.size() >= agg_.packetBytes) {
    flushChannelLocked(ch, from, to, FlushCause::kSize);
  } else if (support::memoryBudgetAttached() &&
             support::memoryBudget()->underPressure()) {
    flushChannelLocked(ch, from, to, FlushCause::kPressure);
  }
}

void Network::flushChannelLocked(detail::AggChannel& ch, HostId from,
                                 HostId to, FlushCause cause) {
  if (ch.metas.empty()) {
    return;
  }
  std::vector<uint8_t> blob = std::move(ch.bytes);
  std::vector<detail::AggChannel::Meta> metas = std::move(ch.metas);
  ch.bytes = {};
  ch.metas = {};
  aggVolume_.pendingBytes.fetch_sub(blob.size(), std::memory_order_relaxed);
  setPendingGauge();
  if (ch.chargedBytes > 0 && support::memoryBudgetAttached()) {
    support::memoryBudget()->release(ch.chargedBytes);
  }
  ch.chargedBytes = 0;
  deliverPacket(from, to, std::move(blob), std::move(metas), cause);
}

void Network::flushChannel(HostId from, HostId to, FlushCause cause) {
  detail::AggChannel& ch = aggChannel(from, to);
  std::lock_guard<std::mutex> lock(ch.mutex);
  flushChannelLocked(ch, from, to, cause);
}

void Network::flushAggregated(HostId me) {
  if (me >= numHosts()) {
    throw std::out_of_range(
        "Network::flushAggregated: host id out of range");
  }
  for (HostId to = 0; to < numHosts(); ++to) {
    if (to != me) {
      flushChannel(me, to, FlushCause::kBarrier);
    }
  }
}

void Network::deliverPacket(HostId from, HostId to,
                            std::vector<uint8_t>&& blob,
                            std::vector<detail::AggChannel::Meta>&& metas,
                            FlushCause cause) {
  const size_t causeIdx = static_cast<size_t>(cause);
  aggVolume_.flushes[causeIdx].fetch_add(1, std::memory_order_relaxed);
  if (obs_.aggFlushes[causeIdx] != nullptr) {
    obs_.aggFlushes[causeIdx]->add();
  }
  if (!isAlive(from) || !isAlive(to)) {
    // An eviction raced the flush: drop the packet exactly like the mailbox
    // purge drops already-queued messages from/to a dead host.
    return;
  }
  aggVolume_.packets.fetch_add(1, std::memory_order_relaxed);
  aggVolume_.packedMessages.fetch_add(metas.size(), std::memory_order_relaxed);
  aggVolume_.packedBytes.fetch_add(blob.size(), std::memory_order_relaxed);
  if (blob.size() > agg_.packetBytes) {
    aggVolume_.overCapPackets.fetch_add(1, std::memory_order_relaxed);
    if (obs_.aggOverCap != nullptr) {
      obs_.aggOverCap->add();
    }
  }
  if (obs_.aggPackets != nullptr) {
    obs_.aggPackets->add();
  }
  if (obs_.aggPackedMessages != nullptr) {
    obs_.aggPackedMessages->add(metas.size());
  }
  if (obs_.aggPackedBytes != nullptr) {
    obs_.aggPackedBytes->add(blob.size());
  }
  if (obs_.aggOccupancy != nullptr) {
    obs_.aggOccupancy->observe(static_cast<double>(metas.size()));
  }
  if (crcFraming_.load(std::memory_order_relaxed)) {
    // One CRC32 footer protects the whole packet, plus an 8-byte per-message
    // length header — modeled at both NIC ends and accounted as framing,
    // never payload. Corruption draws already happened per message at commit
    // time, so this frame always verifies.
    support::appendCrcFooter(blob);
    (void)support::verifyAndStripCrcFooter(blob);
    const uint64_t framing = support::kCrcFooterSize + 8ull * metas.size();
    volume_.framingBytes.fetch_add(framing, std::memory_order_relaxed);
    if (obs_.framingBytes != nullptr) {
      obs_.framingBytes->add(framing);
    }
  }
  // Unpack into the destination mailbox under one lock acquisition: every
  // message gets a zero-copy view over the shared packet blob, its own
  // dup-filter sequence number and its recorded delay/duplicate outcome —
  // then ONE wake for the whole packet.
  auto blobPtr =
      std::make_shared<const std::vector<uint8_t>>(std::move(blob));
  Mailbox& box = *mailboxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    size_t offset = 0;
    for (const auto& meta : metas) {
      Queued entry;
      entry.msg = Message{from, meta.tag,
                          support::RecvBuffer(blobPtr, offset, meta.len)};
      offset += meta.len;
      if (injector_) {
        ChannelState& channel = box.channels[{from, meta.tag}];
        entry.seq = ++channel.nextSeq;
        channel.lastUse = ++box.channelUseCounter;
        compactChannelsLocked(box);
        entry.delayScans = meta.delayScans;
      }
      if (meta.duplicate) {
        box.queue.push_back(entry);  // same seq: the filter suppresses one
        backlogBytes_.fetch_add(meta.len, std::memory_order_relaxed);
      }
      box.queue.push_back(std::move(entry));
      backlogBytes_.fetch_add(meta.len, std::memory_order_relaxed);
    }
  }
  box.arrived.notify_all();
}

void Network::pullAgedIncoming(HostId me) {
  const auto now = std::chrono::steady_clock::now();
  for (HostId src = 0; src < numHosts(); ++src) {
    if (src == me) {
      continue;
    }
    detail::AggChannel& ch = aggChannel(src, me);
    std::lock_guard<std::mutex> lock(ch.mutex);
    if (!ch.metas.empty() &&
        std::chrono::duration<double>(now - ch.oldestStage).count() >=
            agg_.maxAgeSeconds) {
      flushChannelLocked(ch, src, me, FlushCause::kAge);
    }
  }
}

void Network::sendPacked(HostId from, HostId to, Tag tag,
                         support::SendBuffer&& buffer) {
  if (from >= numHosts() || to >= numHosts()) {
    throw std::out_of_range("Network::sendPacked: host id out of range");
  }
  if (!aggregatesTag(from, to, tag)) {
    sendReliable(from, to, tag, std::move(buffer));
    return;
  }
  detail::AggChannel& ch = aggChannel(from, to);
  std::lock_guard<std::mutex> lock(ch.mutex);
  if (buffer.size() >= agg_.packetBytes) {
    // Already packet-sized: ship pending, then move the buffer straight into
    // a packet blob of its own — no copy through the channel.
    flushChannelLocked(ch, from, to, FlushCause::kSize);
    const size_t len = buffer.size();
    uint32_t delayScans = 0;
    bool duplicate = false;
    packedCommitDraws(from, to, tag, len, &delayScans, &duplicate);
    if (len > agg_.packetBytes) {
      aggVolume_.oversizedMessages.fetch_add(1, std::memory_order_relaxed);
      if (obs_.aggOversized != nullptr) {
        obs_.aggOversized->add();
      }
    }
    std::vector<detail::AggChannel::Meta> metas(1);
    metas[0].tag = tag;
    metas[0].len = static_cast<uint32_t>(len);
    metas[0].delayScans = delayScans;
    metas[0].duplicate = duplicate;
    deliverPacket(from, to, buffer.release(), std::move(metas),
                  FlushCause::kSize);
    return;
  }
  const size_t start = ch.bytes.size();
  ch.bytes.insert(ch.bytes.end(), buffer.data(),
                  buffer.data() + buffer.size());
  finishPackedCommit(ch, from, to, tag, start);
}

AggVolume Network::aggSnapshot() const {
  AggVolume snap;
  for (size_t i = 0; i < kNumFlushCauses; ++i) {
    snap.flushes[i] = aggVolume_.flushes[i].load(std::memory_order_relaxed);
  }
  snap.packets = aggVolume_.packets.load(std::memory_order_relaxed);
  snap.packedMessages =
      aggVolume_.packedMessages.load(std::memory_order_relaxed);
  snap.packedBytes = aggVolume_.packedBytes.load(std::memory_order_relaxed);
  snap.oversizedMessages =
      aggVolume_.oversizedMessages.load(std::memory_order_relaxed);
  snap.overCapPackets =
      aggVolume_.overCapPackets.load(std::memory_order_relaxed);
  snap.pendingBytes = aggVolume_.pendingBytes.load(std::memory_order_relaxed);
  return snap;
}

void Network::setPendingGauge() {
  if (obs_.aggPendingBytes != nullptr) {
    obs_.aggPendingBytes->set(static_cast<double>(
        aggVolume_.pendingBytes.load(std::memory_order_relaxed)));
  }
}

std::optional<Message> Network::scanLocked(Mailbox& box, Tag tag,
                                           HostId from) {
  // Channels with an earlier still-delayed message this scan; later
  // messages of the same channel are ineligible so per-channel FIFO holds.
  std::vector<ChannelKey> held;
  for (auto it = box.queue.begin(); it != box.queue.end();) {
    const ChannelKey channel{it->msg.from, it->msg.tag};
    if (injector_ && it->seq != 0) {
      const auto state = box.channels.find(channel);
      if (state != box.channels.end() &&
          it->seq <= state->second.lastDelivered) {
        injector_->countDuplicateSuppressed();
        backlogBytes_.fetch_sub(it->msg.payload.size(),
                                std::memory_order_relaxed);
        it = box.queue.erase(it);
        continue;
      }
      if (it->delayScans > 0) {
        held.push_back(channel);
        ++it;
        continue;
      }
      if (std::find(held.begin(), held.end(), channel) != held.end()) {
        ++it;
        continue;
      }
    }
    if (it->msg.tag == tag && (from == kAnyHost || it->msg.from == from)) {
      if (injector_ && it->seq != 0) {
        ChannelState& state = box.channels[channel];
        state.lastDelivered = it->seq;
        state.lastUse = ++box.channelUseCounter;
      }
      Message msg = std::move(it->msg);
      backlogBytes_.fetch_sub(msg.payload.size(), std::memory_order_relaxed);
      box.queue.erase(it);
      return msg;
    }
    ++it;
  }
  return std::nullopt;
}

void Network::compactChannelsLocked(Mailbox& box) {
  if (box.channels.size() <= kMaxDupFilterChannels) {
    return;
  }
  // A queued message pins its channel: evicting the state of a channel with
  // an in-flight duplicate could let the duplicate through once its original
  // is delivered under a fresh watermark. Channels with an empty queue are
  // safe to forget — sender counter and receiver watermark reset together,
  // which is exactly a fresh channel's state.
  std::set<ChannelKey> pinned;
  for (const Queued& entry : box.queue) {
    pinned.insert({entry.msg.from, entry.msg.tag});
  }
  std::vector<std::pair<uint64_t, ChannelKey>> evictable;  // (lastUse, key)
  for (const auto& [key, state] : box.channels) {
    if (pinned.find(key) == pinned.end()) {
      evictable.push_back({state.lastUse, key});
    }
  }
  std::sort(evictable.begin(), evictable.end());
  for (const auto& [lastUse, key] : evictable) {
    if (box.channels.size() <= kMaxDupFilterChannels) {
      break;
    }
    box.channels.erase(key);
  }
}

size_t Network::dupFilterChannels(HostId me) const {
  if (me >= numHosts()) {
    throw std::out_of_range("Network::dupFilterChannels: host id out of range");
  }
  Mailbox& box = *mailboxes_[me];
  std::lock_guard<std::mutex> lock(box.mutex);
  return box.channels.size();
}

uint64_t Network::mailboxBacklogBytesExact() const {
  uint64_t total = 0;
  for (const auto& boxPtr : mailboxes_) {
    Mailbox& box = *boxPtr;
    std::lock_guard<std::mutex> lock(box.mutex);
    for (const Queued& entry : box.queue) {
      total += entry.msg.payload.size();
    }
  }
  return total;
}

void Network::ageDelayedLocked(Mailbox& box) {
  for (Queued& entry : box.queue) {
    if (entry.delayScans > 0) {
      --entry.delayScans;
    }
  }
}

void Network::throwStalled(HostId me, Tag tag, HostId from,
                           double waitedSeconds) {
  std::ostringstream report;
  report << "recv timeout: host " << me << " waited " << waitedSeconds
         << "s for " << tagName(tag);
  if (from != kAnyHost) {
    report << " from host " << from;
  }
  report << "; blocked hosts:";
  bool any = false;
  for (HostId h = 0; h < numHosts(); ++h) {
    const uint64_t packed = blockedOn_[h]->load(std::memory_order_acquire);
    if ((packed & kBlockedActiveBit) == 0) {
      continue;
    }
    const HostId blockedFrom =
        static_cast<HostId>((packed >> 32) & 0x7FFFFFFFu);
    const Tag blockedTag = static_cast<Tag>(packed & 0xFFFFFFFFu);
    report << " [host " << h << " on " << tagName(blockedTag);
    if (blockedFrom != (kAnyHost & 0x7FFFFFFFu)) {
      report << " from host " << blockedFrom;
    }
    report << "]";
    any = true;
  }
  if (!any) {
    report << " none";
  }
  throw NetworkStalled(report.str());
}

HostId Network::chaseBlame(HostId me, HostId from) const {
  // Attribute a stalled wait to its ROOT CAUSE, not the direct peer. In a
  // gather/broadcast tree every host waits on the collective root while the
  // root itself waits on the true laggard; blaming the direct peer condemns
  // the innocent root alongside the straggler (and poisons the median-peer
  // guard, since the other waiters accrue blame at the same rate). Follow
  // the blocked-on chain until it ends at a host that is not itself blocked
  // on a specific peer. Bounded hops plus a self-reference stop keep a
  // genuine wait cycle (a deadlock, not a straggler) blaming the direct
  // peer's chain tail rather than looping.
  HostId culprit = from;
  for (uint32_t hop = 0; hop < numHosts(); ++hop) {
    const uint64_t packed = blockedOn_[culprit]->load(std::memory_order_acquire);
    if ((packed & kBlockedActiveBit) == 0) {
      break;  // chain tail: the culprit is running (slowly), not waiting
    }
    const HostId next = static_cast<HostId>((packed >> 32) & 0x7FFFFFFFu);
    if (next == (kAnyHost & 0x7FFFFFFFu) || next == me || next == culprit ||
        !isAlive(next)) {
      break;  // unattributable wait, or the chain loops back to us
    }
    culprit = next;
  }
  return culprit;
}

Message Network::recvImpl(HostId me, Tag tag, HostId from) {
  if (!isAlive(me) || (from != kAnyHost && !isAlive(from))) {
    throw HostEvicted(me, isAlive(me) ? from : me, tag, membershipEpoch());
  }
  if (injector_) {
    injector_->onCrossing(me);
  }
  Mailbox& box = *mailboxes_[me];
  const int64_t timeoutNanos = recvTimeoutNanos_.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(timeoutNanos);
  // Straggler deadlines only apply to waits blocked on one SPECIFIC peer:
  // that is the only case where slowness is attributable to a host rather
  // than to the network at large.
  const bool stragglerWatch = from != kAnyHost && stragglerMonitor_ &&
                              stragglerPolicy_.enabled();
  const auto softDur = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(stragglerPolicy_.softDeadlineSeconds));
  auto lastBlameMark = start;  // start of the current blame window
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    if (agePullActive()) {
      // Opt-in latency bound: ship any incoming channel whose oldest
      // committed message has aged past the policy before scanning.
      lock.unlock();
      pullAgedIncoming(me);
      lock.lock();
    }
    if (auto msg = scanLocked(box, tag, from)) {
      return std::move(*msg);
    }
    if (aborted_.load(std::memory_order_acquire)) {
      throw NetworkAborted();
    }
    if (from != kAnyHost && !isAlive(from)) {
      // The awaited peer was evicted while we were blocked (evict() wakes
      // all receivers): nothing more will ever arrive on this channel.
      throw HostEvicted(me, from, tag, membershipEpoch());
    }
    if (stragglerWatch && stragglerMonitor_->isCondemned(from)) {
      // Another waiter already condemned this peer; fail fast instead of
      // waiting for the driver's eviction to propagate.
      throw StragglerDeadline(me, from, tag,
                              stragglerMonitor_->blamedSeconds(from));
    }
    if (injector_) {
      // A failed scan ages delayed messages; one may have matured.
      ageDelayedLocked(box);
      if (auto msg = scanLocked(box, tag, from)) {
        return std::move(*msg);
      }
    }
    // A delayed message only ages when this receiver re-scans, so while any
    // is queued we poll instead of sleeping unboundedly on the condvar.
    bool anyDelayed = false;
    if (injector_) {
      for (const Queued& entry : box.queue) {
        if (entry.delayScans > 0) {
          anyDelayed = true;
          break;
        }
      }
    }
    blockedOn_[me]->store(packBlocked(from, tag), std::memory_order_release);
    bool timedOut = false;
    if (anyDelayed) {
      auto pollDeadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
      if (timeoutNanos > 0 && deadline < pollDeadline) {
        pollDeadline = deadline;
      }
      if (box.arrived.wait_until(lock, pollDeadline) ==
          std::cv_status::timeout) {
        timedOut = timeoutNanos > 0 &&
                   std::chrono::steady_clock::now() >= deadline;
      }
    } else if (timeoutNanos > 0 || stragglerWatch || agePullActive()) {
      // Wake at the earliest of the recv deadline, the next soft straggler
      // mark, and the next age-pull poll; only an expired RECV deadline
      // counts as a timeout.
      auto waitDeadline = timeoutNanos > 0
                              ? deadline
                              : std::chrono::steady_clock::time_point::max();
      if (stragglerWatch && lastBlameMark + softDur < waitDeadline) {
        waitDeadline = lastBlameMark + softDur;
      }
      if (agePullActive()) {
        const auto ageMark =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(agg_.maxAgeSeconds));
        if (ageMark < waitDeadline) {
          waitDeadline = ageMark;
        }
      }
      timedOut = box.arrived.wait_until(lock, waitDeadline) ==
                     std::cv_status::timeout &&
                 timeoutNanos > 0 &&
                 std::chrono::steady_clock::now() >= deadline;
    } else {
      box.arrived.wait(lock);
    }
    blockedOn_[me]->store(0, std::memory_order_release);
    if (stragglerWatch) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= lastBlameMark + softDur) {
        if (auto msg = scanLocked(box, tag, from)) {
          // The peer answered at the wire — slow, but within this wake.
          return std::move(*msg);
        }
        // Blocked on `from` for a full soft-deadline window with nothing to
        // show for it: chase the blocked-on chain to the root cause and
        // attribute the wait there (see chaseBlame).
        const double blamed =
            std::chrono::duration<double>(now - lastBlameMark).count();
        lastBlameMark = now;
        const HostId culprit = chaseBlame(me, from);
        stragglerMonitor_->recordBlame(culprit, blamed);
        countStragglerReport(culprit, /*hard=*/false);
        if (stragglerMonitor_->overHardDeadline(culprit, stragglerPolicy_)) {
          stragglerMonitor_->markCondemned(culprit);
          countStragglerReport(culprit, /*hard=*/true);
          // Re-register as blocked so sibling stall reports still name us
          // while this propagates toward the driver's eviction.
          blockedOn_[me]->store(packBlocked(from, tag),
                                std::memory_order_release);
          throw StragglerDeadline(me, culprit, tag,
                                  stragglerMonitor_->blamedSeconds(culprit));
        }
      }
    }
    if (timedOut) {
      if (injector_) {
        ageDelayedLocked(box);
      }
      if (auto msg = scanLocked(box, tag, from)) {
        return std::move(*msg);
      }
      if (aborted_.load(std::memory_order_acquire)) {
        throw NetworkAborted();
      }
      // Re-register as blocked so sibling stall reports still name us while
      // this exception propagates toward abort().
      blockedOn_[me]->store(packBlocked(from, tag), std::memory_order_release);
      const double waited = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
      if (from != kAnyHost) {
        // A stalled wait on one SPECIFIC peer is the receiver-side symptom
        // of a cut link (the stall detector doubling as connectivity
        // suspicion); throws MinorityPartition if we are the fenced side.
        enforceQuorumOnFailure(me, from, tag);
      }
      throwStalled(me, tag, from, waited);
    }
  }
}

std::optional<Message> Network::tryRecv(HostId me, Tag tag) {
  if (injector_) {
    injector_->onCrossing(me);
  }
  if (agePullActive()) {
    pullAgedIncoming(me);
  }
  Mailbox& box = *mailboxes_[me];
  std::lock_guard<std::mutex> lock(box.mutex);
  if (auto msg = scanLocked(box, tag, kAnyHost)) {
    return msg;
  }
  if (aborted_.load(std::memory_order_acquire)) {
    throw NetworkAborted();
  }
  if (injector_) {
    ageDelayedLocked(box);
    if (auto msg = scanLocked(box, tag, kAnyHost)) {
      return msg;
    }
  }
  return std::nullopt;
}

Message Network::recv(HostId me, Tag tag) { return recvImpl(me, tag, kAnyHost); }

Message Network::recvFrom(HostId me, HostId from, Tag tag) {
  return recvImpl(me, tag, from);
}

void Network::barrier(HostId me) {
  // Two-phase flat barrier through the collective root (the lowest alive
  // host — 0 on full membership) using reserved tags; payloads are empty so
  // barriers contribute only message counts to collective stats.
  faultPoint(me);
  if (agg_.enabled) {
    // A barrier is a phase edge: everything committed before it must be
    // visible after it, so ship every pending aggregation channel first.
    flushAggregated(me);
  }
  if (numAliveHosts() <= 1) {
    return;
  }
  const HostId root = collectiveRoot();
  if (me == root) {
    for (HostId src = 0; src < numHosts(); ++src) {
      if (src != root && isAlive(src)) {
        recvFrom(root, src, kTagBarrierUp);
      }
    }
    for (HostId dst = 0; dst < numHosts(); ++dst) {
      if (dst != root && isAlive(dst)) {
        sendReliable(root, dst, kTagBarrierDown, support::SendBuffer());
      }
    }
  } else {
    sendReliable(me, root, kTagBarrierUp, support::SendBuffer());
    recvFrom(me, root, kTagBarrierDown);
  }
}

void Network::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->arrived.notify_all();
  }
}

void Network::accountSend(HostId from, HostId to, Tag tag, size_t bytes,
                          size_t framingBytes) {
  if (from == to) {
    return;  // local delivery; nothing crosses the (simulated) wire
  }
  if (framingBytes > 0) {
    volume_.framingBytes.fetch_add(framingBytes, std::memory_order_relaxed);
    if (obs_.framingBytes != nullptr) {
      obs_.framingBytes->add(framingBytes);
    }
  }
  if (tag < kTagCount) {
    volume_.bytes[tag].fetch_add(bytes, std::memory_order_relaxed);
    volume_.messages[tag].fetch_add(1, std::memory_order_relaxed);
    if (obs_.registry) {
      obs_.bytes[tag]->add(bytes);
      obs_.messages[tag]->add(1);
    }
  } else {
    volume_.collectiveBytes.fetch_add(bytes, std::memory_order_relaxed);
    volume_.collectiveMessages.fetch_add(1, std::memory_order_relaxed);
    if (obs_.registry) {
      obs_.collectiveBytes->add(bytes);
      obs_.collectiveMessages->add(1);
    }
  }
}

VolumeStats Network::statsSnapshot() const {
  VolumeStats snap;
  for (Tag t = 0; t < kTagCount; ++t) {
    snap.bytes[t] = volume_.bytes[t].load(std::memory_order_relaxed);
    snap.messages[t] = volume_.messages[t].load(std::memory_order_relaxed);
  }
  snap.collectiveBytes = volume_.collectiveBytes.load(std::memory_order_relaxed);
  snap.collectiveMessages =
      volume_.collectiveMessages.load(std::memory_order_relaxed);
  snap.framingBytes = volume_.framingBytes.load(std::memory_order_relaxed);
  snap.corruptionsDetected =
      volume_.corruptionsDetected.load(std::memory_order_relaxed);
  snap.corruptionsRecovered =
      volume_.corruptionsRecovered.load(std::memory_order_relaxed);
  return snap;
}

void Network::resetStats() {
  for (Tag t = 0; t < kTagCount; ++t) {
    volume_.bytes[t].store(0, std::memory_order_relaxed);
    volume_.messages[t].store(0, std::memory_order_relaxed);
  }
  volume_.collectiveBytes.store(0, std::memory_order_relaxed);
  volume_.collectiveMessages.store(0, std::memory_order_relaxed);
  volume_.framingBytes.store(0, std::memory_order_relaxed);
  volume_.corruptionsDetected.store(0, std::memory_order_relaxed);
  volume_.corruptionsRecovered.store(0, std::memory_order_relaxed);
}

uint64_t Network::bytesSent(Tag tag) const {
  return (tag < kTagCount ? volume_.bytes[tag] : volume_.collectiveBytes)
      .load(std::memory_order_relaxed);
}

uint64_t Network::messagesSent(Tag tag) const {
  return (tag < kTagCount ? volume_.messages[tag] : volume_.collectiveMessages)
      .load(std::memory_order_relaxed);
}

BufferedSender::BufferedSender(Network& net, HostId me, Tag tag,
                               size_t threshold)
    : net_(net), me_(me), tag_(tag), threshold_(threshold),
      pending_(net.numHosts()),
      budget_(support::memoryBudgetAttached() ? support::memoryBudget()
                                              : nullptr) {}

BufferedSender::~BufferedSender() {
  if (budget_ != nullptr && chargedBytes_ > 0) {
    budget_->release(chargedBytes_);
    chargedBytes_ = 0;
  }
}

void BufferedSender::chargePending(size_t bytes) {
  if (budget_ == nullptr || bytes == 0) {
    return;
  }
  // Overdraft: a record already serialized must be shipped, not dropped;
  // pressure is relieved by the early flush in append(), not by refusal.
  budget_->reserveOverdraft(bytes);
  chargedBytes_ += bytes;
}

void BufferedSender::releasePending(size_t bytes) {
  if (budget_ == nullptr || bytes == 0) {
    return;
  }
  const uint64_t toRelease = std::min<uint64_t>(bytes, chargedBytes_);
  budget_->release(toRelease);
  chargedBytes_ -= toRelease;
}

bool BufferedSender::underPressure() {
  if (budget_ == nullptr || !budget_->underPressure()) {
    return false;
  }
  pressureFlushes_ += 1;
  return true;
}

void BufferedSender::flush(HostId dst) {
  if (pending_[dst].empty()) {
    return;
  }
  support::SendBuffer buffer = std::move(pending_[dst]);
  pending_[dst] = support::SendBuffer();
  releasePending(buffer.size());
  net_.sendPacked(me_, dst, tag_, std::move(buffer));
}

void BufferedSender::flushAll() {
  for (HostId dst = 0; dst < net_.numHosts(); ++dst) {
    flush(dst);
  }
  // flush(dst) commits each pending buffer into its aggregation channel;
  // drain the channels too so flushAll keeps its historical contract that
  // everything appended is visible to the receivers on return.
  net_.flushAggregated(me_);
}

void runHosts(Network& net, const std::function<void(HostId)>& hostMain) {
  const uint32_t numHosts = net.numHosts();
  std::vector<std::thread> threads;
  threads.reserve(numHosts);
  std::mutex errorMutex;
  std::exception_ptr firstError;
  auto guarded = [&](HostId host) {
    try {
      hostMain(host);
      // A host's exit is a phase edge: anything it committed but never
      // explicitly flushed must not rot in the aggregation channels.
      net.flushAggregated(host);
    } catch (const NetworkAborted&) {
      // Sibling of the faulting host; swallow the unwind signal.
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) {
          firstError = std::current_exception();
        }
      }
      net.abort();
    }
  };
  for (HostId h = 0; h < numHosts; ++h) {
    if (!net.isAlive(h)) {
      continue;  // evicted hosts get no thread
    }
    threads.emplace_back(guarded, h);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (firstError) {
    std::rethrow_exception(firstError);
  }
}

}  // namespace cusp::comm
