#include "comm/network.h"

#include <chrono>
#include <thread>

namespace cusp::comm {

Network::Network(uint32_t numHosts, NetworkCostModel costModel)
    : costModel_(costModel) {
  if (numHosts == 0) {
    throw std::invalid_argument("Network: numHosts must be > 0");
  }
  mailboxes_.reserve(numHosts);
  modeledCommNanos_.reserve(numHosts);
  for (uint32_t h = 0; h < numHosts; ++h) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    modeledCommNanos_.push_back(std::make_unique<std::atomic<int64_t>>(0));
  }
}

double Network::modeledCommSeconds(HostId host) const {
  return static_cast<double>(
             modeledCommNanos_[host]->load(std::memory_order_relaxed)) *
         1e-9;
}

void Network::send(HostId from, HostId to, Tag tag,
                   support::SendBuffer&& buffer) {
  if (from >= numHosts() || to >= numHosts()) {
    throw std::out_of_range("Network::send: host id out of range");
  }
  if (from != to && tag < kFirstReserved) {
    double micros = costModel_.sendOverheadMicros;
    if (costModel_.bandwidthMBps > 0.0) {
      micros += static_cast<double>(buffer.size()) / costModel_.bandwidthMBps;
    }
    if (micros > 0.0) {
      modeledCommNanos_[from]->fetch_add(
          static_cast<int64_t>(micros * 1000.0), std::memory_order_relaxed);
    }
  }
  accountSend(from, to, tag, buffer.size());
  Mailbox& box = *mailboxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(
        Message{from, tag, support::RecvBuffer(buffer.release())});
  }
  box.arrived.notify_all();
}

std::optional<Message> Network::tryRecv(HostId me, Tag tag) {
  Mailbox& box = *mailboxes_[me];
  std::lock_guard<std::mutex> lock(box.mutex);
  for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
    if (it->tag == tag) {
      Message msg = std::move(*it);
      box.queue.erase(it);
      return msg;
    }
  }
  return std::nullopt;
}

Message Network::recv(HostId me, Tag tag) {
  Mailbox& box = *mailboxes_[me];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->tag == tag) {
        Message msg = std::move(*it);
        box.queue.erase(it);
        return msg;
      }
    }
    if (aborted_.load(std::memory_order_acquire)) {
      throw NetworkAborted();
    }
    box.arrived.wait(lock);
  }
}

Message Network::recvFrom(HostId me, HostId from, Tag tag) {
  Mailbox& box = *mailboxes_[me];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->tag == tag && it->from == from) {
        Message msg = std::move(*it);
        box.queue.erase(it);
        return msg;
      }
    }
    if (aborted_.load(std::memory_order_acquire)) {
      throw NetworkAborted();
    }
    box.arrived.wait(lock);
  }
}

void Network::barrier(HostId me) {
  // Two-phase flat barrier through host 0 using reserved tags; payloads are
  // empty so barriers contribute only message counts to collective stats.
  if (numHosts() == 1) {
    return;
  }
  if (me == 0) {
    for (HostId src = 1; src < numHosts(); ++src) {
      recvFrom(0, src, kTagBarrierUp);
    }
    for (HostId dst = 1; dst < numHosts(); ++dst) {
      send(0, dst, kTagBarrierDown, support::SendBuffer());
    }
  } else {
    send(me, 0, kTagBarrierUp, support::SendBuffer());
    recvFrom(me, 0, kTagBarrierDown);
  }
}

void Network::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->arrived.notify_all();
  }
}

void Network::accountSend(HostId from, HostId to, Tag tag, size_t bytes) {
  if (from == to) {
    return;  // local delivery; nothing crosses the (simulated) wire
  }
  std::lock_guard<std::mutex> lock(statsMutex_);
  if (tag < kTagCount) {
    stats_.bytes[tag] += bytes;
    stats_.messages[tag] += 1;
  } else {
    stats_.collectiveBytes += bytes;
    stats_.collectiveMessages += 1;
  }
}

VolumeStats Network::statsSnapshot() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return stats_;
}

void Network::resetStats() {
  std::lock_guard<std::mutex> lock(statsMutex_);
  stats_ = VolumeStats{};
}

uint64_t Network::bytesSent(Tag tag) const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return tag < kTagCount ? stats_.bytes[tag] : stats_.collectiveBytes;
}

uint64_t Network::messagesSent(Tag tag) const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return tag < kTagCount ? stats_.messages[tag] : stats_.collectiveMessages;
}

BufferedSender::BufferedSender(Network& net, HostId me, Tag tag,
                               size_t threshold)
    : net_(net), me_(me), tag_(tag), threshold_(threshold),
      pending_(net.numHosts()) {}

void BufferedSender::flush(HostId dst) {
  if (pending_[dst].empty()) {
    return;
  }
  support::SendBuffer buffer = std::move(pending_[dst]);
  pending_[dst] = support::SendBuffer();
  net_.send(me_, dst, tag_, std::move(buffer));
}

void BufferedSender::flushAll() {
  for (HostId dst = 0; dst < net_.numHosts(); ++dst) {
    flush(dst);
  }
}

void runHosts(Network& net, const std::function<void(HostId)>& hostMain) {
  const uint32_t numHosts = net.numHosts();
  std::vector<std::thread> threads;
  threads.reserve(numHosts);
  std::mutex errorMutex;
  std::exception_ptr firstError;
  auto guarded = [&](HostId host) {
    try {
      hostMain(host);
    } catch (const NetworkAborted&) {
      // Sibling of the faulting host; swallow the unwind signal.
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) {
          firstError = std::current_exception();
        }
      }
      net.abort();
    }
  };
  for (HostId h = 0; h < numHosts; ++h) {
    threads.emplace_back(guarded, h);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  if (firstError) {
    std::rethrow_exception(firstError);
  }
}

}  // namespace cusp::comm
