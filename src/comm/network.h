// Simulated distributed-memory message-passing runtime.
//
// The paper runs CuSP over MPI/LCI on a physical cluster; here k logical
// hosts run as threads inside one process and exchange *serialized byte
// buffers* through per-host mailboxes. Nothing is shared between hosts
// except through these messages (and the read-only "disk"), so all of
// CuSP's communication structure — tagged point-to-point sends, message
// buffering with a flush threshold (paper Section IV-D3), bulk-synchronous
// state reductions (IV-D4), and per-phase volume accounting (Table V) — is
// exercised for real.
//
// Model notes:
//  * Message order is FIFO per (source, destination, tag) channel, like MPI.
//  * recv* match any source unless recvFrom is used.
//  * Collectives (barrier, allReduce) are built from point-to-point messages
//    through host 0, so their traffic is also visible in the statistics.
//  * abort() wakes all blocked receivers with NetworkAborted, letting the
//    host runner unwind cleanly when any host throws.
//
// Fault tolerance (comm/fault.h; everything off by default):
//  * An attached FaultInjector turns the interconnect lossy: sends can be
//    dropped (sender-visible, like a NACK), duplicated (suppressed by a
//    receiver-side per-channel sequence filter) or delayed (held back for a
//    few receiver scan cycles, preserving per-channel FIFO), and hosts can
//    crash (HostFailure thrown at a send/recv/barrier crossing).
//  * sendReliable() retries dropped messages under the network RetryPolicy
//    with modeled exponential backoff; exhaustion raises
//    SendRetriesExhausted. All CuSP protocol sends go through it.
//  * setRecvTimeout() bounds every blocking receive; expiry raises
//    NetworkStalled with a report naming each blocked host and its tag
//    instead of hanging forever.
//
// Wire integrity (CRC framing; on automatically whenever an injector is
// attached, switchable explicitly with setCrcFraming):
//  * Every cross-host message is framed with a CRC32 footer
//    (support/crc32.h) computed over the serialized payload. The frame is
//    verified at the receiving mailbox — the simulation's equivalent of the
//    receiver NIC's frame check — and stripped before the payload is
//    queued, so applications always see verified bytes.
//  * An injected kCorrupt fault flips a deterministic byte of the framed
//    message in flight. The verification failure discards the frame and
//    surfaces on the sender as MessageCorrupt (a link-layer NACK);
//    sendReliable retransmits a clean copy transparently. Detected and
//    retry-recovered corruptions are counted in VolumeStats.
//  * Framing bytes are accounted separately (VolumeStats::framingBytes) so
//    per-tag payload accounting stays byte-identical with framing on or
//    off — and so the framing overhead itself is directly measurable.
//
// Membership (degraded mode; full membership by default, in which case
// every code path below is byte-identical to a membership-free build):
//  * The network maintains an epoch-based MembershipView: an epoch counter
//    plus per-host alive flags. evict() marks a host permanently dead,
//    bumps the epoch and wakes all blocked receivers.
//  * Traffic addressed to (or issued by) an evicted host fails fast with
//    HostEvicted instead of burning retries or waiting out a timeout.
//  * Collectives root at the LOWEST ALIVE host and iterate alive hosts
//    only, so evicting host 0 shifts the root instead of deadlocking; with
//    full membership the root is 0 and the message pattern is unchanged.
//  * runHosts() spawns threads for alive hosts only.
//  * agreeMembership() is the eviction agreement round: a collective in
//    which every alive host exchanges and confirms the (epoch, alive set)
//    view before the survivors proceed.
//
// Send aggregation (the buffered, batched hot path; on by default):
//  * Protocol senders obtain a PackedWriter (packedWriter()) that serializes
//    RECORDS STRAIGHT INTO the per-(source, destination) aggregation buffer
//    — no intermediate per-message vector — and commit() seals the record
//    as one logical message. BufferedSender flushes ride the same path via
//    sendPacked().
//  * A channel ships as one multi-message PACKET once it reaches
//    AggregationPolicy::packetBytes (~1400 B, the Gluon buffered.cpp
//    lineage), when the attached MemoryBudget reports pressure, at every
//    explicit flush point (flushAggregated(), barrier entry, BufferedSender
//    ::flushAll(), runHosts exit), or — opt-in — when a blocking receiver
//    pulls channels older than AggregationPolicy::maxAgeSeconds.
//  * One CRC32 frames the whole packet (framing = one footer plus an 8-byte
//    per-message header, accounted in VolumeStats::framingBytes as today);
//    unpacked messages are zero-copy views into the shared packet blob, and
//    a drained packet wakes the consumer ONCE, not per message.
//  * Fault semantics are preserved at message granularity: injector draws
//    (drop/duplicate/delay/corrupt, crossings, retries, modeled cost and
//    backoff) happen at commit() time in exactly the per-message order the
//    legacy sendReliable path used, so every FaultPlan seed keeps its
//    historical meaning; the duplicate filter, sequence assignment and
//    delay scans are re-seated at packet-unpack time. Bare send()/
//    sendReliable() keep the legacy immediate path bit-for-bit.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "comm/fault.h"
#include "obs/metrics.h"
#include "support/memory.h"
#include "support/serialize.h"

namespace cusp::comm {

// Tags used by the CuSP stack. User code may use any tag < kFirstReserved.
enum PhaseTag : Tag {
  kTagGeneric = 0,
  kTagMasterRequest = 1,   // master-assignment: "send me masters of these"
  kTagMasterAssign = 2,    // master-assignment: (node, partition) pairs
  kTagMasterList = 3,      // allocation: "you are master of these nodes"
  kTagEdgeCounts = 4,      // edge assignment: positional out-edge counts
  kTagMirrorFlags = 5,     // edge assignment: createMirror node ids
  kTagMirrorToMaster = 6,  // allocation: mirror locations back to masters
  kTagEdgeBatch = 7,       // construction: buffered (src, dsts...) batches
  kTagAppReduce = 8,       // analytics: mirror -> master reductions
  kTagAppBroadcast = 9,    // analytics: master -> mirror broadcasts
  kTagStateReduce = 10,    // partitioning-state delta reduction
  kTagCount = 16,          // stats array size for user-visible tags
  kFirstReserved = 0xFFFF0000u,
  kTagCollectiveUp = kFirstReserved,
  kTagCollectiveDown = kFirstReserved + 1,
  kTagBarrierUp = kFirstReserved + 2,
  kTagBarrierDown = kFirstReserved + 3,
};

struct Message {
  HostId from = 0;
  Tag tag = 0;
  support::RecvBuffer payload;
};

class NetworkAborted : public std::runtime_error {
 public:
  NetworkAborted() : std::runtime_error("network aborted") {}
};

// Snapshot of the cluster membership: which hosts are alive, and the epoch
// the view belongs to (bumped on every eviction). Host ids never shift —
// an evicted host leaves a permanent hole in the id space; compaction to a
// dense survivor numbering is the degraded driver's business.
struct MembershipView {
  uint64_t epoch = 0;
  std::vector<uint8_t> alive;  // 1 = alive, indexed by host id

  bool isAlive(HostId h) const { return h < alive.size() && alive[h] != 0; }
  uint32_t numAlive() const {
    uint32_t n = 0;
    for (uint8_t a : alive) {
      n += a != 0 ? 1 : 0;
    }
    return n;
  }
  std::vector<HostId> aliveHosts() const {
    std::vector<HostId> hosts;
    for (HostId h = 0; h < alive.size(); ++h) {
      if (alive[h] != 0) {
        hosts.push_back(h);
      }
    }
    return hosts;
  }
};

// Volume counters per tag (only tags < kTagCount are tracked individually;
// reserved collective tags are folded into a separate bucket).
struct VolumeStats {
  uint64_t bytes[kTagCount] = {};
  uint64_t messages[kTagCount] = {};
  uint64_t collectiveBytes = 0;
  uint64_t collectiveMessages = 0;

  // CRC framing overhead (footer bytes shipped with framed messages) and
  // wire-corruption outcomes. Kept out of the per-tag payload counters and
  // totalBytes() so volume accounting stays byte-identical with framing on
  // or off.
  uint64_t framingBytes = 0;
  uint64_t corruptionsDetected = 0;   // frames that failed verification
  uint64_t corruptionsRecovered = 0;  // detected, then retransmitted clean

  uint64_t totalBytes() const {
    uint64_t sum = collectiveBytes;
    for (uint64_t b : bytes) {
      sum += b;
    }
    return sum;
  }
  uint64_t totalMessages() const {
    uint64_t sum = collectiveMessages;
    for (uint64_t m : messages) {
      sum += m;
    }
    return sum;
  }
};

// Cost model for the simulated interconnect. Real message passing pays a
// per-message injection overhead (NIC + MPI stack, ~microseconds) and a
// per-byte serialization/wire cost; both are zero by default (pure
// functional simulation). Costs are not waited out — they are *accounted*
// per sending host (modeledCommSeconds) and folded into the simulated
// cluster makespan by the partitioner and the analytics engine. This is
// what reproduces the paper's communication-bound effects: message
// buffering amortizes the per-message overhead (Fig. 7), and
// communication-structured partitions send fewer messages during
// application sync (Figs. 5/6). Reserved collective/barrier tags are not
// charged (identical for every policy; negligible payloads).
struct NetworkCostModel {
  double sendOverheadMicros = 0.0;  // fixed cost per cross-host message
  double bandwidthMBps = 0.0;       // per-byte cost; 0 = infinite bandwidth
};

// Tuning of the buffered send path (see "Send aggregation" above).
// maxAgeSeconds defaults to 0 (no receiver-side age pull): the default
// flush causes are all program-order deterministic, which is what keeps the
// obs counter/histogram determinism guarantee intact. Tests and latency-
// sensitive callers opt into the age bound explicitly.
struct AggregationPolicy {
  bool enabled = true;
  size_t packetBytes = 1400;   // seal a packet once a channel reaches this
  double maxAgeSeconds = 0.0;  // >0: blocked receivers pull channels this old
};

// Process-wide default applied to every Network at construction (override
// per instance with setAggregation before traffic starts). The seam lets
// whole pipelines — partitioner, analytics, service — switch between the
// buffered and legacy paths without threading a knob through every layer.
void setDefaultAggregation(const AggregationPolicy& policy);
AggregationPolicy defaultAggregation();

// RAII seam override for tests (differential buffered-vs-legacy runs).
class ScopedAggregation {
 public:
  explicit ScopedAggregation(const AggregationPolicy& policy)
      : saved_(defaultAggregation()) {
    setDefaultAggregation(policy);
  }
  ~ScopedAggregation() { setDefaultAggregation(saved_); }
  ScopedAggregation(const ScopedAggregation&) = delete;
  ScopedAggregation& operator=(const ScopedAggregation&) = delete;

 private:
  AggregationPolicy saved_;
};

// Why a channel was flushed into a packet.
enum class FlushCause : uint8_t {
  kSize = 0,      // pending reached packetBytes (or an oversized message)
  kAge = 1,       // receiver pulled a channel older than maxAgeSeconds
  kPressure = 2,  // MemoryBudget under pressure at commit time
  kBarrier = 3,   // explicit flush: flushAggregated/barrier/flushAll/exit
};
inline constexpr size_t kNumFlushCauses = 4;

// Point-in-time view of the aggregation counters (mirrored to the obs
// registry as cusp.net.agg.* when a sink is attached).
struct AggVolume {
  uint64_t flushes[kNumFlushCauses] = {};
  uint64_t packets = 0;
  uint64_t packedMessages = 0;
  uint64_t packedBytes = 0;          // payload bytes shipped in packets
  uint64_t oversizedMessages = 0;    // single messages > packetBytes
  uint64_t overCapPackets = 0;       // packets over the cap (== oversized)
  uint64_t pendingBytes = 0;         // staged, committed, not yet shipped
  uint64_t totalFlushes() const {
    uint64_t sum = 0;
    for (uint64_t f : flushes) {
      sum += f;
    }
    return sum;
  }
};

namespace detail {
// One ordered (source, destination) aggregation channel: committed message
// payloads laid back to back plus their per-message metadata. The mutex is
// held for the lifetime of a PackedWriter (serialization writes straight
// into `bytes`) and by flushes; it never nests inside a mailbox mutex.
struct AggChannel {
  struct Meta {
    Tag tag = 0;
    uint32_t len = 0;
    uint32_t delayScans = 0;  // injector kDelay, re-applied at unpack
    bool duplicate = false;   // injector kDuplicate, re-applied at unpack
  };
  std::mutex mutex;
  std::vector<uint8_t> bytes;
  std::vector<Meta> metas;
  uint64_t chargedBytes = 0;  // MemoryBudget overdraft held for `bytes`
  std::chrono::steady_clock::time_point oldestStage{};
};
}  // namespace detail

class PackedWriter;

class Network {
 public:
  explicit Network(uint32_t numHosts,
                   NetworkCostModel costModel = NetworkCostModel{});
  ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  uint32_t numHosts() const { return static_cast<uint32_t>(mailboxes_.size()); }

  // --- point to point ---

  // Moves `buffer` to host `to`'s mailbox. Self-sends are allowed and
  // delivered like any other message, but are NOT counted in the volume
  // statistics (no bytes cross the network). Returns false iff the attached
  // fault injector dropped the message (sender-visible loss); always true
  // on a fault-free network. With CRC framing on, a message corrupted in
  // flight fails frame verification at the receiving mailbox and throws
  // MessageCorrupt (the link-layer NACK sendReliable retries on).
  bool send(HostId from, HostId to, Tag tag, support::SendBuffer&& buffer);

  // send() with bounded retry under the network RetryPolicy: a dropped
  // message is re-offered with modeled exponential backoff charged to the
  // sender; throws SendRetriesExhausted once the attempts are spent. All
  // partitioner/engine protocol sends use this.
  void sendReliable(HostId from, HostId to, Tag tag,
                    support::SendBuffer&& buffer);

  // --- buffered hot path (send aggregation) ---

  // Zero-copy buffered send: serialize into the returned writer and
  // commit(). Falls back to a plain sendReliable when aggregation is
  // disabled, for self-sends, and for reserved tags, so call sites stay
  // uniform. See the PackedWriter class below.
  PackedWriter packedWriter(HostId from, HostId to, Tag tag);

  // sendReliable semantics over the aggregation path: `buffer` becomes one
  // logical message in the (from, to) channel. A buffer of packetBytes or
  // more ships immediately as its own packet with no extra copy.
  void sendPacked(HostId from, HostId to, Tag tag,
                  support::SendBuffer&& buffer);

  // Ships every pending aggregation channel sourced at `me` (the explicit
  // flush barrier; cause kBarrier). Called automatically on barrier entry,
  // by BufferedSender::flushAll and at runHosts exit; protocol code calls
  // it before blocking on replies to traffic it just committed.
  void flushAggregated(HostId me);

  void setAggregation(const AggregationPolicy& policy) { agg_ = policy; }
  const AggregationPolicy& aggregation() const { return agg_; }

  AggVolume aggSnapshot() const;

  // Non-blocking receive of any message with `tag` (any source). Throws
  // NetworkAborted once the network is aborted, so polling loops unwind
  // like the blocking receives instead of spinning forever.
  std::optional<Message> tryRecv(HostId me, Tag tag);

  // Blocking receive of any message with `tag` (any source).
  Message recv(HostId me, Tag tag);

  // Blocking receive of the next message from `from` with `tag`.
  Message recvFrom(HostId me, HostId from, Tag tag);

  // --- collectives (implemented over point-to-point via host 0) ---

  void barrier(HostId me);

  // Element-wise all-reduce; `combine(acc, in)` folds contributions in host
  // id order (deterministic for non-commutative ops). All hosts must pass
  // vectors of the same length.
  template <typename T>
  void allReduce(HostId me, std::vector<T>& values,
                 const std::function<void(std::vector<T>&,
                                          const std::vector<T>&)>& combine);

  template <typename T>
  void allReduceSum(HostId me, std::vector<T>& values);

  template <typename T>
  T allReduceSum(HostId me, T value);

  template <typename T>
  T allReduceMax(HostId me, T value);

  template <typename T>
  T allReduceMin(HostId me, T value);

  bool allReduceOr(HostId me, bool value);

  // --- membership (degraded mode) ---

  bool isAlive(HostId h) const {
    return alive_[h]->load(std::memory_order_acquire);
  }
  uint32_t numAliveHosts() const {
    uint32_t n = 0;
    for (HostId h = 0; h < numHosts(); ++h) {
      n += isAlive(h) ? 1 : 0;
    }
    return n;
  }
  // Lowest alive host: the root of every collective. 0 on full membership.
  HostId collectiveRoot() const {
    for (HostId h = 0; h < numHosts(); ++h) {
      if (isAlive(h)) {
        return h;
      }
    }
    return 0;  // unreachable while any host runs
  }
  uint64_t membershipEpoch() const {
    return membershipEpoch_.load(std::memory_order_acquire);
  }
  MembershipView membershipSnapshot() const;

  // Permanently removes `host` from the membership: bumps the epoch, makes
  // all traffic touching the host fail fast with HostEvicted, and wakes
  // every blocked receiver so survivors waiting on the dead host unwind
  // immediately. Irreversible for the lifetime of this Network.
  void evict(HostId host);

  // Eviction agreement round: every ALIVE host calls this collectively;
  // the hosts exchange their (epoch, alive set) views through the current
  // collective root, fold them (max epoch, AND of alive flags) and return
  // the agreed view. Crossing-visible like any collective, so scheduled
  // crashes can fire inside the round.
  //
  // Quorum rule (split-brain tolerance): when the caller's connectivity
  // component — alive hosts reachable over unsevered, unsuspected links —
  // does not span the whole alive set, only a STRICT MAJORITY component may
  // proceed: each of its members evicts the unreachable side (idempotent,
  // so the survivors' views agree) and the agreement runs among the
  // survivors. A minority — or either half of an exact tie — fences itself
  // against the attached support::WriteFence and throws MinorityPartition,
  // so no minority host can ever proceed or write state. A host whose own
  // alive flag is already gone (it was evicted while cut off) takes the
  // same fence-and-throw path: that is how a fenced host detects the epoch
  // bump on heal.
  MembershipView agreeMembership(HostId me);

  // --- connectivity (split-brain model) ---

  // Whether `me` currently believes it can talk to `peer`: the fault
  // injector does not sever the link (partition event or fully lossy
  // LinkFault) and `me` has not recorded suspicion against `peer` from a
  // failed send or a stalled specific-peer wait.
  bool linkReachable(HostId me, HostId peer) const;

  // Drops all recorded suspicion (heal-time rejoin: the links are back, so
  // observed-failure evidence from before the heal is stale).
  void clearSuspicions();

  // --- fault tolerance ---

  // Attaches a (shared) fault injector; the same injector survives across
  // the Networks of successive recovery attempts so crash fired-flags and
  // occurrence counters persist. nullptr detaches (the default state).
  void setFaultInjector(std::shared_ptr<FaultInjector> injector) {
    injector_ = std::move(injector);
    // A lossy interconnect without integrity checking is not a useful model:
    // framing follows the injector automatically. setCrcFraming() afterwards
    // overrides (e.g. to measure framing overhead on a clean network).
    crcFraming_.store(injector_ != nullptr, std::memory_order_relaxed);
  }
  const std::shared_ptr<FaultInjector>& faultInjector() const {
    return injector_;
  }

  // Explicitly enables/disables the CRC32 frame around cross-host messages
  // (see "Wire integrity" above). Auto-enabled by setFaultInjector with a
  // non-null injector.
  void setCrcFraming(bool on) {
    crcFraming_.store(on, std::memory_order_relaxed);
  }
  bool crcFraming() const { return crcFraming_.load(std::memory_order_relaxed); }

  // Bounds every blocking receive; <= 0 restores unbounded waits.
  void setRecvTimeout(double seconds) {
    recvTimeoutNanos_.store(
        seconds > 0 ? static_cast<int64_t>(seconds * 1e9) : 0,
        std::memory_order_relaxed);
  }

  void setRetryPolicy(const RetryPolicy& policy) { retryPolicy_ = policy; }
  const RetryPolicy& retryPolicy() const { return retryPolicy_; }

  // Straggler deadlines (see StragglerPolicy in fault.h). Both must be set
  // before runHosts; the monitor is shared across the Networks of a
  // resilient run — like the fault injector — so blame and condemnation
  // persist across recovery attempts. A receive blocked on one SPECIFIC
  // peer past the soft deadline attributes the wait to that peer (obs
  // counter cusp.straggler.soft_reports{host}) and, once the peer's
  // accumulated blame crosses the hard deadline, throws StragglerDeadline.
  void setStragglerPolicy(const StragglerPolicy& policy) {
    stragglerPolicy_ = policy;
  }
  const StragglerPolicy& stragglerPolicy() const { return stragglerPolicy_; }
  void setStragglerMonitor(std::shared_ptr<StragglerMonitor> monitor) {
    stragglerMonitor_ = std::move(monitor);
  }
  const std::shared_ptr<StragglerMonitor>& stragglerMonitor() const {
    return stragglerMonitor_;
  }

  // Partitioner phase announcements for phase-scheduled crashes; no-ops
  // without an injector.
  void enterPhase(HostId me, uint32_t phase) {
    if (injector_) {
      injector_->enterPhase(me, phase);
    }
  }

  // Explicit crash crossing for communication-free stretches of code (e.g.
  // phase entry in the partitioner); throws HostFailure if a crash is due.
  void faultPoint(HostId me) {
    if (injector_) {
      injector_->onCrossing(me);
    }
  }

  // --- control & accounting ---

  // Wakes every blocked receiver with NetworkAborted. Called by the host
  // runner when a host throws, so sibling hosts unwind instead of hanging.
  void abort();
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  // Point-in-time view materialized from the per-Network atomic counters.
  VolumeStats statsSnapshot() const;
  // Zeroes the per-Network counters. The process-wide obs registry (if one
  // was attached at construction) is NOT reset: its counters are monotone
  // and accumulate across resets and recovery attempts by design.
  void resetStats();

  // Accumulated modeled communication time charged to `host` as a sender
  // (cost model applied to every cross-host send with a non-reserved tag).
  double modeledCommSeconds(HostId host) const;

  // Bytes sent with `tag` since the last reset (cross-host only).
  uint64_t bytesSent(Tag tag) const;
  uint64_t messagesSent(Tag tag) const;

  // Number of (source, tag) channels currently tracked by `me`'s duplicate
  // filter. Bounded by kMaxDupFilterChannels (see Mailbox below); exposed
  // for the memory-bound regression test.
  size_t dupFilterChannels(HostId me) const;

  // Total payload bytes currently queued across every mailbox — the
  // network's contribution to memory pressure. Maintained as a single
  // atomic updated on every enqueue/dequeue/duplicate-drop/eviction-purge
  // path: the aggregation commit path consults the memory budget on every
  // send, so the former on-demand lock-and-sum would serialize the hot
  // path against every mailbox.
  uint64_t mailboxBacklogBytes() const {
    return backlogBytes_.load(std::memory_order_relaxed);
  }

  // The lock-and-sum ground truth for mailboxBacklogBytes(); quiescent
  // callers (tests) use it to prove the cached counter stays exact across
  // duplicate-drop and eviction-purge paths.
  uint64_t mailboxBacklogBytesExact() const;

  // Duplicate-filter memory bound: the per-channel sequence state is
  // compacted once a mailbox tracks more than this many distinct
  // (source, tag) channels. Only channels with no queued messages are
  // evictable (a queued in-flight duplicate pins its channel, so filtering
  // stays sound); eviction resets the channel's sender-side sequence and
  // receiver-side watermark together.
  static constexpr size_t kMaxDupFilterChannels = 1024;

 private:
  friend class PackedWriter;

  using ChannelKey = std::pair<HostId, Tag>;

  // A queued message plus its fault-mode bookkeeping: `delayScans` holds
  // the message invisible for that many failed receiver scans, and `seq`
  // is the per-(from, tag) channel sequence number the duplicate filter
  // keys on (0 = sent without an injector, never filtered).
  struct Queued {
    Message msg;
    uint32_t delayScans = 0;
    uint64_t seq = 0;
  };

  // Sequence state of one (source, tag) channel into this mailbox. The
  // sender-assigned counter and the receiver's delivered watermark live
  // together so compaction drops them atomically: a fresh channel restarts
  // at seq 1 with watermark 0, which is exactly the initial state.
  struct ChannelState {
    uint64_t nextSeq = 0;        // assigned at send
    uint64_t lastDelivered = 0;  // duplicate filter watermark
    uint64_t lastUse = 0;        // LRU stamp for compaction
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<Queued> queue;
    std::map<ChannelKey, ChannelState> channels;  // duplicate-filter state
    uint64_t channelUseCounter = 0;               // LRU clock
  };

  Message recvImpl(HostId me, Tag tag, HostId from);
  // --- aggregation internals ---
  detail::AggChannel& aggChannel(HostId from, HostId to) {
    return *aggChannels_[static_cast<size_t>(from) * numHosts() + to];
  }
  bool aggregatesTag(HostId from, HostId to, Tag tag) const {
    return agg_.enabled && from != to && tag < kFirstReserved;
  }
  // Models one reliable transmission of a committed message: the exact
  // injector-draw / cost / retry / corruption sequence of the legacy
  // sendReliable path, minus the enqueue. Fills delayScans/duplicate for
  // the unpack step; throws exactly what sendReliable would.
  void packedCommitDraws(HostId from, HostId to, Tag tag, size_t len,
                         uint32_t* delayScans, bool* duplicate);
  // Seals a commit staged at ch.bytes[start..): runs the draws, appends the
  // meta and fires size/pressure flushes. ch.mutex held; rolls the staged
  // bytes back on any throw.
  void finishPackedCommit(detail::AggChannel& ch, HostId from, HostId to,
                          Tag tag, size_t start);
  // Ships the channel's pending packet (ch.mutex held). No-op when empty.
  void flushChannelLocked(detail::AggChannel& ch, HostId from, HostId to,
                          FlushCause cause);
  void flushChannel(HostId from, HostId to, FlushCause cause);
  // Delivers one sealed packet into `to`'s mailbox: per-packet CRC framing
  // accounting, per-message sequence/duplicate/delay re-seating under the
  // mailbox lock, one condition-variable wake for the whole packet.
  void deliverPacket(HostId from, HostId to, std::vector<uint8_t>&& blob,
                     std::vector<detail::AggChannel::Meta>&& metas,
                     FlushCause cause);
  // Receiver-side age pull (only when agg_.maxAgeSeconds > 0): ships every
  // channel destined to `me` whose oldest committed message exceeds the
  // age bound. Called with no locks held.
  void pullAgedIncoming(HostId me);
  bool agePullActive() const {
    return agg_.enabled && agg_.maxAgeSeconds > 0.0;
  }
  void chargeModeled(HostId from, HostId to, Tag tag, size_t bytes);
  void setPendingGauge();
  // Records that `me` observed a connectivity failure toward `peer` (send
  // retries exhausted, or a stalled wait on that specific peer).
  void noteSuspect(HostId me, HostId peer);
  // Alive hosts reachable from `me` (undirected BFS over links that are
  // reachable in both directions).
  std::vector<HostId> connectivityComponent(HostId me) const;
  // Called when an operation toward `peer` failed in a way that suggests a
  // cut. Records suspicion; if the injector confirms a severed link or an
  // unresolved partition AND `me`'s component is not a strict majority of
  // the alive set, fences `me` and throws MinorityPartition. Returns
  // normally otherwise (the caller surfaces its original error).
  void enforceQuorumOnFailure(HostId me, HostId peer, Tag tag);
  std::optional<Message> scanLocked(Mailbox& box, Tag tag, HostId from);
  void ageDelayedLocked(Mailbox& box);
  void compactChannelsLocked(Mailbox& box);
  [[noreturn]] void throwStalled(HostId me, Tag tag, HostId from,
                                 double waitedSeconds);
  HostId chaseBlame(HostId me, HostId from) const;
  void accountSend(HostId from, HostId to, Tag tag, size_t bytes,
                   size_t framingBytes);

  NetworkCostModel costModel_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<std::atomic<int64_t>>>
      modeledCommNanos_;  // per sending host
  std::atomic<bool> aborted_{false};

  // Membership: per-host alive flags + the view epoch. Writes (evict) are
  // serialized under membershipMutex_; reads are lock-free atomics on the
  // send/recv fast path.
  std::vector<std::unique_ptr<std::atomic<bool>>> alive_;
  std::atomic<uint64_t> membershipEpoch_{0};
  std::mutex membershipMutex_;

  // Connectivity suspicion: suspected_[me][peer] records that `me` saw an
  // operation toward `peer` die in a cut-shaped way. Feeds the quorum
  // rule's component computation alongside the injector's link oracle.
  mutable std::mutex suspicionMutex_;
  std::vector<std::vector<bool>> suspected_;

  std::shared_ptr<FaultInjector> injector_;
  std::atomic<bool> crcFraming_{false};
  RetryPolicy retryPolicy_;
  StragglerPolicy stragglerPolicy_;
  std::shared_ptr<StragglerMonitor> stragglerMonitor_;
  std::atomic<int64_t> recvTimeoutNanos_{0};
  // Stall registry: what each host is currently blocked on, packed as
  // active(1) | from(31) | tag(32) so the stall reporter can read it
  // without taking mailbox locks.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> blockedOn_;

  // Volume counters: always-on per-Network atomics. statsSnapshot() is a
  // view over them; plain relaxed adds replace the former mutex-guarded
  // struct, taking a global lock off the send path.
  struct AtomicVolume {
    std::atomic<uint64_t> bytes[kTagCount] = {};
    std::atomic<uint64_t> messages[kTagCount] = {};
    std::atomic<uint64_t> collectiveBytes{0};
    std::atomic<uint64_t> collectiveMessages{0};
    std::atomic<uint64_t> framingBytes{0};
    std::atomic<uint64_t> corruptionsDetected{0};
    std::atomic<uint64_t> corruptionsRecovered{0};
  };
  AtomicVolume volume_;

  // Aggregation state: one channel per ordered (source, destination) pair,
  // plus always-on atomic counters behind aggSnapshot().
  AggregationPolicy agg_;
  std::vector<std::unique_ptr<detail::AggChannel>> aggChannels_;
  struct AtomicAgg {
    std::atomic<uint64_t> flushes[kNumFlushCauses] = {};
    std::atomic<uint64_t> packets{0};
    std::atomic<uint64_t> packedMessages{0};
    std::atomic<uint64_t> packedBytes{0};
    std::atomic<uint64_t> oversizedMessages{0};
    std::atomic<uint64_t> overCapPackets{0};
    std::atomic<uint64_t> pendingBytes{0};
  };
  AtomicAgg aggVolume_;

  // Cached mailbox backlog (see mailboxBacklogBytes above).
  std::atomic<uint64_t> backlogBytes_{0};

  // Registry cells resolved once at construction when a process-wide obs
  // sink was attached (see obs/obs.h); all null otherwise, so the per-send
  // cost without a sink is one pointer check. The shared_ptr keeps the
  // cells alive even if the sink is detached while this Network lives.
  struct ObsHandles {
    std::shared_ptr<obs::MetricsRegistry> registry;
    obs::Counter* bytes[kTagCount] = {};
    obs::Counter* messages[kTagCount] = {};
    obs::Counter* collectiveBytes = nullptr;
    obs::Counter* collectiveMessages = nullptr;
    obs::Counter* framingBytes = nullptr;
    obs::Counter* corruptionsDetected = nullptr;
    obs::Counter* corruptionsRecovered = nullptr;
    obs::Counter* sendRetries = nullptr;
    obs::Counter* aggFlushes[kNumFlushCauses] = {};
    obs::Counter* aggPackets = nullptr;
    obs::Counter* aggPackedMessages = nullptr;
    obs::Counter* aggPackedBytes = nullptr;
    obs::Counter* aggOversized = nullptr;
    obs::Counter* aggOverCap = nullptr;
    obs::Gauge* aggPendingBytes = nullptr;
    obs::Histogram* aggOccupancy = nullptr;  // messages per packet
  };
  ObsHandles obs_;
};

// Zero-copy buffered send handle. Serialization writes DIRECTLY into the
// (from, to) aggregation channel — the channel mutex is held for the
// writer's lifetime, so keep writers short-lived: serialize, commit,
// destroy. commit() seals the staged bytes as one logical message, running
// the full reliable-send fault sequence (and throwing exactly what
// sendReliable would); a writer destroyed without commit() abandons its
// staged bytes. When the network aggregation is disabled — or for
// self-sends and reserved tags — the writer transparently stages into a
// private buffer and commit() forwards to sendReliable, so call sites need
// no mode checks. At most one live writer per (host, destination) per
// thread; a second one would self-deadlock on the channel mutex.
class PackedWriter {
 public:
  PackedWriter(PackedWriter&&) = delete;  // constructed in place (RVO)
  PackedWriter(const PackedWriter&) = delete;
  PackedWriter& operator=(const PackedWriter&) = delete;
  ~PackedWriter() {
    if (!committed_ && channel_ != nullptr) {
      channel_->bytes.resize(start_);  // abandon staged bytes
    }
  }

  void appendBytes(const void* src, size_t len) {
    if (channel_ != nullptr) {
      if (len == 0) {
        return;
      }
      const size_t offset = channel_->bytes.size();
      channel_->bytes.resize(offset + len);
      std::memcpy(channel_->bytes.data() + offset, src, len);
    } else {
      fallback_.appendBytes(src, len);
    }
  }

  // Bytes staged by THIS writer so far.
  size_t size() const {
    return channel_ != nullptr ? channel_->bytes.size() - start_
                               : fallback_.size();
  }

  void commit() {
    committed_ = true;
    if (channel_ != nullptr) {
      net_->finishPackedCommit(*channel_, from_, to_, tag_, start_);
      lock_.unlock();
      channel_ = nullptr;
    } else {
      net_->sendReliable(from_, to_, tag_, std::move(fallback_));
    }
  }

 private:
  friend class Network;
  PackedWriter(Network& net, HostId from, HostId to, Tag tag,
               detail::AggChannel* channel)
      : net_(&net), from_(from), to_(to), tag_(tag), channel_(channel) {
    if (channel_ != nullptr) {
      lock_ = std::unique_lock<std::mutex>(channel_->mutex);
      start_ = channel_->bytes.size();
    }
  }

  Network* net_;
  HostId from_;
  HostId to_;
  Tag tag_;
  detail::AggChannel* channel_;  // null => fallback (legacy) mode
  std::unique_lock<std::mutex> lock_;
  size_t start_ = 0;
  bool committed_ = false;
  support::SendBuffer fallback_;
};

inline PackedWriter Network::packedWriter(HostId from, HostId to, Tag tag) {
  if (from >= numHosts() || to >= numHosts()) {
    throw std::out_of_range("Network::packedWriter: host id out of range");
  }
  return PackedWriter(*this, from, to, tag,
                      aggregatesTag(from, to, tag) ? &aggChannel(from, to)
                                                   : nullptr);
}

// Accumulates serialized records per destination and ships each
// destination's buffer as one message once it exceeds `threshold` bytes
// (paper Section IV-D3; threshold 0 sends every record immediately, the
// "0 MB" point of Fig. 7). flushAll() must be called to drain remainders;
// it also drains this host's aggregation channels, so everything shipped
// is visible to receivers when it returns. Flushes go through the
// sendPacked aggregation path (sendReliable when aggregation is disabled),
// so injected drops are retried either way.
//
// Memory-governed: when a process-wide MemoryBudget is attached at
// construction time, the sender charges its pending aggregation bytes
// against it (overdraft — aggregation never fails outright, it just
// flushes) and flushes a destination EARLY whenever the budget reports
// pressure, trading batching efficiency for bounded buffering.
class BufferedSender {
 public:
  BufferedSender(Network& net, HostId me, Tag tag, size_t threshold);
  ~BufferedSender();
  BufferedSender(const BufferedSender&) = delete;
  BufferedSender& operator=(const BufferedSender&) = delete;

  // Serializes `values...` into dst's pending buffer; flushes if full, or
  // as soon as the attached memory budget is under pressure.
  template <typename... Ts>
  void append(HostId dst, const Ts&... values) {
    auto& buffer = pending_[dst];
    const size_t before = buffer.size();
    support::serializeAll(buffer, values...);
    chargePending(buffer.size() - before);
    if (buffer.size() >= threshold_ || threshold_ == 0 || underPressure()) {
      flush(dst);
    }
  }

  void flush(HostId dst);
  void flushAll();

  // Flushes forced by budget pressure before the threshold was reached
  // (0 without an attached budget). Lets tests distinguish early flushes
  // from ordinary threshold flushes.
  uint64_t pressureFlushes() const { return pressureFlushes_; }

 private:
  void chargePending(size_t bytes);
  void releasePending(size_t bytes);
  bool underPressure();  // counts a pressure flush when true

  Network& net_;
  HostId me_;
  Tag tag_;
  size_t threshold_;
  std::vector<support::SendBuffer> pending_;
  std::shared_ptr<support::MemoryBudget> budget_;  // captured at construction
  uint64_t chargedBytes_ = 0;
  uint64_t pressureFlushes_ = 0;
};

// Spawns one thread per ALIVE host running hostMain(hostId) — evicted
// hosts get no thread — joins them all, and rethrows the first exception
// (after aborting the network so blocked siblings unwind).
void runHosts(Network& net, const std::function<void(HostId)>& hostMain);

// ---- template implementations ----

template <typename T>
void Network::allReduce(
    HostId me, std::vector<T>& values,
    const std::function<void(std::vector<T>&, const std::vector<T>&)>&
        combine) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Membership-aware: root at the lowest alive host and fold alive
  // contributions in host id order. Full membership gives root 0 and the
  // historical message pattern, byte for byte.
  const HostId root = collectiveRoot();
  if (numAliveHosts() <= 1) {
    faultPoint(me);
    return;
  }
  if (me == root) {
    for (HostId src = 0; src < numHosts(); ++src) {
      if (src == root || !isAlive(src)) {
        continue;
      }
      Message msg = recvFrom(root, src, kTagCollectiveUp);
      std::vector<T> contribution;
      support::deserialize(msg.payload, contribution);
      if (contribution.size() != values.size()) {
        throw std::logic_error("allReduce: mismatched vector lengths");
      }
      combine(values, contribution);
    }
    for (HostId dst = 0; dst < numHosts(); ++dst) {
      if (dst == root || !isAlive(dst)) {
        continue;
      }
      support::SendBuffer out;
      support::serialize(out, values);
      sendReliable(root, dst, kTagCollectiveDown, std::move(out));
    }
  } else {
    support::SendBuffer out;
    support::serialize(out, values);
    sendReliable(me, root, kTagCollectiveUp, std::move(out));
    Message msg = recvFrom(me, root, kTagCollectiveDown);
    support::deserialize(msg.payload, values);
  }
}

template <typename T>
void Network::allReduceSum(HostId me, std::vector<T>& values) {
  allReduce<T>(me, values,
               [](std::vector<T>& acc, const std::vector<T>& in) {
                 for (size_t i = 0; i < acc.size(); ++i) {
                   acc[i] += in[i];
                 }
               });
}

template <typename T>
T Network::allReduceSum(HostId me, T value) {
  std::vector<T> one{value};
  allReduceSum(me, one);
  return one[0];
}

template <typename T>
T Network::allReduceMax(HostId me, T value) {
  std::vector<T> one{value};
  allReduce<T>(me, one, [](std::vector<T>& acc, const std::vector<T>& in) {
    if (in[0] > acc[0]) {
      acc[0] = in[0];
    }
  });
  return one[0];
}

template <typename T>
T Network::allReduceMin(HostId me, T value) {
  std::vector<T> one{value};
  allReduce<T>(me, one, [](std::vector<T>& acc, const std::vector<T>& in) {
    if (in[0] < acc[0]) {
      acc[0] = in[0];
    }
  });
  return one[0];
}

inline bool Network::allReduceOr(HostId me, bool value) {
  return allReduceSum<uint32_t>(me, value ? 1u : 0u) != 0;
}

}  // namespace cusp::comm
