// Deterministic fault injection for the simulated network.
//
// A FaultPlan describes, ahead of a run, which messages the (simulated)
// interconnect will drop, duplicate or delay and which hosts will crash at
// which point of the partitioning pipeline. Faults match by
// (src, dst, tag, occurrence) predicates over the cross-host send sequence,
// and crashes by (host, phase, crossings-into-phase), so a given plan
// replays identically for a given program — the property the recovery tests
// and the fault fuzzer rely on.
//
// The FaultInjector is the runtime counterpart: it lives across recovery
// attempts (a crash fires once — the "rebooted" host does not re-crash on
// replay) and is shared by every Network the resilient driver creates.
//
// Failure taxonomy (all structured, never a bare hang):
//   HostFailure          — an injected crash; the resilient partitioner
//                          catches it and restarts from checkpoints.
//   NetworkStalled       — a bounded-wait receive expired; the message names
//                          every host currently blocked and on which tag.
//   SendRetriesExhausted — a message was dropped more times than the retry
//                          policy allows.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cusp::comm {

using HostId = uint32_t;
using Tag = uint32_t;

inline constexpr HostId kAnyHost = UINT32_MAX;
inline constexpr Tag kAnyTag = UINT32_MAX;

enum class FaultAction : uint8_t {
  kDrop,       // message never delivered; the sender observes the loss
  kDuplicate,  // a second copy is delivered; receivers must deduplicate
  kDelay,      // delivery deferred by `delayScans` receiver scan cycles
};

// Matches the `occurrence`-th (0-based) cross-host send seen with this
// (src, dst, tag) shape, and the following `repeat - 1` matches of the same
// shape (repeat > 1 defeats bounded retry: each retry is a new occurrence).
struct MessageFault {
  HostId src = kAnyHost;
  HostId dst = kAnyHost;
  Tag tag = kAnyTag;
  uint64_t occurrence = 0;
  uint32_t repeat = 1;
  FaultAction action = FaultAction::kDrop;
  uint32_t delayScans = 2;  // kDelay only
};

// Crashes `host` at its `opsIntoPhase`-th network crossing (send, receive,
// barrier or explicit fault point) after it announces partitioner phase
// `phase` (1-5; 0 = before/outside the phased pipeline). Fires at most once
// for the lifetime of the injector, across recovery attempts.
struct HostCrash {
  HostId host = 0;
  uint32_t phase = 0;
  uint64_t opsIntoPhase = 0;
};

struct FaultPlan {
  std::vector<MessageFault> messageFaults;
  std::vector<HostCrash> crashes;

  bool empty() const { return messageFaults.empty() && crashes.empty(); }
};

// Bounded retry with (modeled) exponential backoff for sender-visible
// message loss; used by Network::sendReliable. maxAttempts == 1 disables
// retry. The backoff is charged to the sender's modeled communication time,
// not slept.
struct RetryPolicy {
  uint32_t maxAttempts = 4;
  double backoffMicros = 100.0;
};

// Injection counters (separate from VolumeStats so that fault-free volume
// accounting stays byte-identical).
struct FaultStats {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t duplicatesSuppressed = 0;
  uint64_t delayed = 0;
  uint64_t retries = 0;
  uint64_t crashesFired = 0;
};

class HostFailure : public std::runtime_error {
 public:
  HostFailure(HostId host, uint32_t phase)
      : std::runtime_error("injected crash of host " + std::to_string(host) +
                           " in phase " + std::to_string(phase)),
        host(host),
        phase(phase) {}

  HostId host;
  uint32_t phase;
};

class NetworkStalled : public std::runtime_error {
 public:
  explicit NetworkStalled(std::string report)
      : std::runtime_error(std::move(report)) {}
};

class SendRetriesExhausted : public std::runtime_error {
 public:
  SendRetriesExhausted(HostId from, HostId to, Tag tag, uint32_t attempts);

  HostId from;
  HostId to;
  Tag tag;
  uint32_t attempts;
};

// Human-readable name of a message tag (for stall reports and errors).
std::string tagName(Tag tag);

// Runtime fault state. Thread-safe; shared (via shared_ptr) by every
// Network of a resilient run so that occurrence counters and fired-crash
// flags persist across recovery attempts.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Consulted for every cross-host send. Returns the action to apply (or
  // nullopt for clean delivery) and advances the occurrence counters.
  struct SendDecision {
    FaultAction action;
    uint32_t delayScans = 0;
  };
  std::optional<SendDecision> onSend(HostId from, HostId to, Tag tag);

  // A network crossing by `host` (send/recv/barrier entry or an explicit
  // fault point). Throws HostFailure if a scheduled crash is due.
  void onCrossing(HostId host);

  // Partitioner phase announcements; resets the host's crossing counter.
  void enterPhase(HostId host, uint32_t phase);

  void countRetry();
  void countDuplicateSuppressed();

  FaultStats stats() const;

 private:
  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::vector<uint64_t> faultMatches_;  // per message fault: matches so far
  std::vector<bool> crashFired_;
  std::map<HostId, uint32_t> hostPhase_;
  std::map<HostId, uint64_t> hostOps_;
  FaultStats stats_;
};

// Seeded random fault plan for the fuzzer: a handful of drop/duplicate/
// delay faults over the partitioner's tags plus at most `maxCrashes`
// scheduled host crashes.
FaultPlan randomFaultPlan(uint64_t seed, uint32_t numHosts,
                          uint32_t maxMessageFaults = 6,
                          uint32_t maxCrashes = 1);

}  // namespace cusp::comm
