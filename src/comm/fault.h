// Deterministic fault injection for the simulated network.
//
// A FaultPlan describes, ahead of a run, which messages the (simulated)
// interconnect will drop, duplicate or delay and which hosts will crash at
// which point of the partitioning pipeline. Faults match by
// (src, dst, tag, occurrence) predicates over the cross-host send sequence,
// and crashes by (host, phase, crossings-into-phase), so a given plan
// replays identically for a given program — the property the recovery tests
// and the fault fuzzer rely on.
//
// The FaultInjector is the runtime counterpart: it lives across recovery
// attempts (a crash fires once — the "rebooted" host does not re-crash on
// replay) and is shared by every Network the resilient driver creates.
//
// Failure taxonomy (all structured, never a bare hang):
//   HostFailure          — an injected crash; the resilient partitioner
//                          catches it and restarts from checkpoints.
//   NetworkStalled       — a bounded-wait receive expired; the message names
//                          every host currently blocked and on which tag.
//   SendRetriesExhausted — a message was dropped more times than the retry
//                          policy allows.
//   HostEvicted          — traffic addressed to (or issued by) a host the
//                          membership view has evicted; fails fast instead
//                          of burning the retry budget.
//   MessageCorrupt       — a CRC-framed message failed verification at the
//                          receiving mailbox (wire corruption); the frame is
//                          discarded and the sender notified, so
//                          sendReliable can retransmit transparently.
//   MinorityPartition    — a host found itself on the minority side of a
//                          network partition under the quorum rule and
//                          fenced itself (see PartitionEvent below).
//
// Crashes come in two flavors: transient (the default — the host "reboots"
// and the crash fires exactly once for the injector's lifetime) and
// permanent (`HostCrash::permanent` — the host never comes back: once the
// crash fires, every later crossing of that host fails immediately, across
// all recovery attempts sharing the injector). Permanent loss is what the
// degraded-mode driver turns into a membership eviction.
//
// Stragglers are the third failure class, between "delayed message" and
// "dead host": a HostSlowdown paces EVERY network crossing of one host by a
// sustained factor (real sleep, distinct from kDelay's per-message scan
// deferral), modeling a thermally throttled or oversubscribed machine. The
// countermeasure lives in Network::recv + StragglerMonitor: peers blocked
// past a soft deadline attribute the wait to the host they are blocked on
// (a straggler report through obs), and once one host's accumulated blame
// exceeds the hard deadline AND a multiple of the median peer's blame, the
// waiter throws StragglerDeadline — which the resilient drivers turn into a
// deliberate eviction through the existing degraded path, trading the
// laggard's capacity for bounded forward progress.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cusp::comm {

using HostId = uint32_t;
using Tag = uint32_t;

inline constexpr HostId kAnyHost = UINT32_MAX;
inline constexpr Tag kAnyTag = UINT32_MAX;

enum class FaultAction : uint8_t {
  kDrop,       // message never delivered; the sender observes the loss
  kDuplicate,  // a second copy is delivered; receivers must deduplicate
  kDelay,      // delivery deferred by `delayScans` receiver scan cycles
  kCorrupt,    // deterministic byte flip on the framed payload in flight;
               // caught by the CRC32 frame check at the receiving mailbox
};

// Matches the `occurrence`-th (0-based) cross-host send seen with this
// (src, dst, tag) shape, and the following `repeat - 1` matches of the same
// shape (repeat > 1 defeats bounded retry: each retry is a new occurrence).
struct MessageFault {
  HostId src = kAnyHost;
  HostId dst = kAnyHost;
  Tag tag = kAnyTag;
  uint64_t occurrence = 0;
  uint32_t repeat = 1;
  FaultAction action = FaultAction::kDrop;
  uint32_t delayScans = 2;  // kDelay only
};

// Crashes `host` at its `opsIntoPhase`-th network crossing (send, receive,
// barrier or explicit fault point) after it announces partitioner phase
// `phase` (1-5; 0 = before/outside the phased pipeline). A transient crash
// (the default) fires at most once for the lifetime of the injector, across
// recovery attempts; a permanent one marks the host as down for good — it
// fails again at its first crossing of every subsequent attempt.
struct HostCrash {
  HostId host = 0;
  uint32_t phase = 0;
  uint64_t opsIntoPhase = 0;
  bool permanent = false;
};

// Sustained pacing of one host: every network crossing of `host` from phase
// `fromPhase` onward costs an extra (factor - 1) * opMicros microseconds of
// REAL wall-clock time (slept, not modeled), so a 10x straggler genuinely
// makes its peers wait. Distinct from FaultAction::kDelay, which defers a
// single message by receiver scan cycles.
struct HostSlowdown {
  HostId host = 0;
  double factor = 1.0;     // >= 1; 1 = no slowdown
  uint32_t opMicros = 50;  // simulated per-crossing work at factor 1
  uint32_t fromPhase = 0;  // active once the host announces this phase
};

// Asymmetric per-link fault: ONE direction of one host pair degrades. A
// `dropRate` in (0, 1) drops that fraction of the link's messages (chosen
// deterministically from a per-link sequence counter, so a given plan
// replays identically); dropRate >= 1 severs the link outright (every send
// lost, and the link reported severed to the connectivity/quorum checks).
// `degradeFactor` > 1 multiplies the cost-model charge of every message
// that crosses the link (a congested or renegotiated-down path), visible in
// the sender's modeled communication time. Active once `src` announces
// phase `fromPhase` (0 = from the start).
struct LinkFault {
  HostId src = 0;
  HostId dst = 0;
  double dropRate = 0.0;
  double degradeFactor = 1.0;
  uint32_t fromPhase = 0;
};

// Timed network partition: once ANY host announces phase `phase`, the hosts
// split into the connectivity groups given by `groupOf` (groupOf[h] is host
// h's group id) and every cross-group message is dropped. The partition
// stays in force until the resilient driver resolves it (fencing the
// minority side under the quorum rule); with `heals` the cut is transient —
// resolution restores cross-group connectivity, modeling a rack partition
// that is repaired, and the fenced side may rejoin. Without `heals` the cut
// is permanent and the minority side stays fenced out.
struct PartitionEvent {
  std::vector<uint8_t> groupOf;  // indexed by host id
  uint32_t phase = 0;
  bool heals = false;
};

struct FaultPlan {
  std::vector<MessageFault> messageFaults;
  std::vector<HostCrash> crashes;
  std::vector<HostSlowdown> slowdowns;
  std::vector<LinkFault> linkFaults;
  std::vector<PartitionEvent> partitions;

  bool empty() const {
    return messageFaults.empty() && crashes.empty() && slowdowns.empty() &&
           linkFaults.empty() && partitions.empty();
  }
};

// Bounded retry with (modeled) exponential backoff for sender-visible
// message loss; used by Network::sendReliable. maxAttempts == 1 disables
// retry. The backoff is charged to the sender's modeled communication time,
// not slept.
struct RetryPolicy {
  uint32_t maxAttempts = 4;
  double backoffMicros = 100.0;
};

// Injection counters (separate from VolumeStats so that fault-free volume
// accounting stays byte-identical).
struct FaultStats {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t duplicatesSuppressed = 0;
  uint64_t delayed = 0;
  uint64_t corrupted = 0;  // injected byte flips (detections are counted in
                           // VolumeStats::corruptionsDetected)
  uint64_t retries = 0;
  uint64_t crashesFired = 0;
  uint64_t slowdownOps = 0;     // crossings that were paced
  uint64_t slowdownMicros = 0;  // total injected pacing time
  uint64_t linkDropped = 0;       // drops charged to LinkFault loss/severing
  uint64_t partitionDropped = 0;  // drops charged to an active partition
};

class HostFailure : public std::runtime_error {
 public:
  HostFailure(HostId host, uint32_t phase)
      : std::runtime_error("injected crash of host " + std::to_string(host) +
                           " in phase " + std::to_string(phase)),
        host(host),
        phase(phase) {}

  HostId host;
  uint32_t phase;
};

class NetworkStalled : public std::runtime_error {
 public:
  explicit NetworkStalled(std::string report)
      : std::runtime_error(std::move(report)) {}
};

class SendRetriesExhausted : public std::runtime_error {
 public:
  SendRetriesExhausted(HostId from, HostId to, Tag tag, uint32_t attempts);

  HostId from;
  HostId to;
  Tag tag;
  uint32_t attempts;
};

// Traffic touching a host the membership view has evicted (see
// Network::evict). Raised eagerly at the send/recv call — an evicted host
// can never answer, so retrying or waiting out a timeout would only burn
// budget. `host` is the evicted party, `from` the caller.
class HostEvicted : public std::runtime_error {
 public:
  HostEvicted(HostId from, HostId host, Tag tag, uint64_t epoch);

  HostId from;
  HostId host;
  Tag tag;
  uint64_t epoch;
};

// A CRC-framed message whose frame failed verification at the receiving
// mailbox (wire corruption). The corrupt frame is discarded — it never
// reaches the application — and the error surfaces on the SENDER side like
// a link-layer NACK, so sendReliable can retransmit a clean copy
// transparently. Escapes to the caller only once the retry budget is spent
// (or on a bare send()).
class MessageCorrupt : public std::runtime_error {
 public:
  MessageCorrupt(HostId from, HostId to, Tag tag);

  HostId from;
  HostId to;
  Tag tag;
};

// Quorum fencing: the caller found itself on the losing side of a network
// partition — its connectivity component holds `componentSize` of the
// `numAlive` live hosts, which is not a strict majority — and fenced
// itself. Fail-fast and NOT retryable: a minority host must never proceed
// (two sides proceeding is split-brain), so the resilient drivers turn this
// into an eviction of the minority side instead of burning recovery
// attempts. `epoch` is the fencing epoch the host fenced itself under; the
// checkpoint store refuses its writes from that point on.
class MinorityPartition : public std::runtime_error {
 public:
  MinorityPartition(HostId host, uint32_t componentSize, uint32_t numAlive,
                    uint64_t epoch);

  HostId host;
  uint32_t componentSize;
  uint32_t numAlive;
  uint64_t epoch;
};

// A receive waited past the hard straggler deadline on one specific peer
// whose accumulated blame dwarfs the median. The resilient drivers treat
// this like a permanent loss of `laggard`: evict it into the degraded path
// so the job's forward progress is bounded by the healthy majority, not the
// slowest machine.
class StragglerDeadline : public std::runtime_error {
 public:
  StragglerDeadline(HostId from, HostId laggard, Tag tag,
                    double blamedSeconds);

  HostId from;
  HostId laggard;
  Tag tag;
  double blamedSeconds;
};

// Human-readable name of a message tag (for stall reports and errors).
std::string tagName(Tag tag);

// Deadline policy for waits that are blocked on one specific peer.
// Disabled by default; enable by setting softDeadlineSeconds > 0.
//
//  * Soft deadline: a receiver blocked on host H for longer than
//    `softDeadlineSeconds` emits a straggler report (obs counter
//    cusp.straggler.soft_reports{host=H}) and adds the waited time to H's
//    blame tally in the run's StragglerMonitor, then keeps waiting.
//  * Hard deadline: once H's accumulated blame exceeds
//    `hardDeadlineSeconds` AND `hardDeadlineMedianFactor` x the median
//    blame of its peers (so a globally slow run does not condemn anyone),
//    the waiter throws StragglerDeadline. 0 disables the hard deadline
//    (report-only mode).
struct StragglerPolicy {
  double softDeadlineSeconds = 0.0;
  double hardDeadlineSeconds = 0.0;
  double hardDeadlineMedianFactor = 4.0;

  bool enabled() const { return softDeadlineSeconds > 0.0; }
  bool hardEnabled() const {
    return enabled() && hardDeadlineSeconds > 0.0;
  }
};

// Per-run blame ledger for straggler detection. Shared (via shared_ptr) by
// every Network of a resilient run — like the FaultInjector — so blame
// accumulated before a recovery attempt survives into the next one, and a
// host condemned once stays condemned.
//
// "Blame" is wall-clock seconds peers spent blocked on a host past the
// soft deadline. The hard-deadline test is relative (vs the median peer's
// blame), so uniform slowness — every host equally loaded — never
// condemns; only a genuine outlier does.
class StragglerMonitor {
 public:
  explicit StragglerMonitor(uint32_t numHosts);

  // Peer spent `seconds` blocked on `laggard` past the soft deadline.
  void recordBlame(HostId laggard, double seconds);

  double blamedSeconds(HostId laggard) const;
  uint64_t softReports(HostId laggard) const;
  uint64_t totalSoftReports() const;

  // Median blame over all hosts except `excluding`.
  double medianPeerBlame(HostId excluding) const;

  // Whether `laggard`'s blame satisfies the hard-deadline predicate.
  bool overHardDeadline(HostId laggard, const StragglerPolicy& policy) const;

  // Condemnation is sticky: the first waiter to cross the hard deadline
  // marks the host, and every Network sharing the monitor fails fast on it
  // until the driver completes the eviction.
  void markCondemned(HostId laggard);
  bool isCondemned(HostId laggard) const;
  std::vector<HostId> condemnedHosts() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> blame_;
  std::vector<uint64_t> softReports_;
  std::vector<bool> condemned_;
};

// Runtime fault state. Thread-safe; shared (via shared_ptr) by every
// Network of a resilient run so that occurrence counters and fired-crash
// flags persist across recovery attempts.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Consulted for every cross-host send. Returns the action to apply (or
  // nullopt for clean delivery) and advances the occurrence counters.
  struct SendDecision {
    FaultAction action;
    uint32_t delayScans = 0;
  };
  std::optional<SendDecision> onSend(HostId from, HostId to, Tag tag);

  // A network crossing by `host` (send/recv/barrier entry or an explicit
  // fault point). Throws HostFailure if a scheduled crash is due, or — for
  // a host a permanent crash already took down — immediately (a dead
  // machine does not boot for the next recovery attempt). If the plan paces
  // `host` (HostSlowdown active in its current phase), the crossing sleeps
  // the injected extra time before returning.
  void onCrossing(HostId host);

  // Partitioner phase announcements; resets the host's crossing counter.
  void enterPhase(HostId host, uint32_t phase);

  // Whether a permanent crash has fired for `host` (it will fail every
  // future crossing). The degraded-mode driver uses this to tell an
  // evictable loss from a transient, retryable one.
  bool isPermanentlyDown(HostId host) const;
  std::vector<HostId> permanentlyDownHosts() const;

  void countRetry();
  void countDuplicateSuppressed();

  // --- link-level connectivity (split-brain model) ---

  // Whether the from -> to direction is currently cut: an ACTIVE partition
  // event separates the two hosts, or a LinkFault with dropRate >= 1 severs
  // the direction. This is the connectivity oracle the quorum rule consults
  // (standing in for a real cluster's heartbeat mesh).
  bool linkSevered(HostId from, HostId to) const;

  // Product of the degradeFactors of every active LinkFault on from -> to;
  // 1.0 for a clean link. Multiplies the cost-model charge of a send.
  double linkDegradeFactor(HostId from, HostId to) const;

  // The first partition event that is active (its phase has been announced)
  // and not yet resolved, as an index into plan().partitions; nullopt when
  // connectivity is whole. The resilient driver polls this after a failure
  // to classify it as a partition instead of an ordinary fault.
  std::optional<size_t> unresolvedPartition() const;
  const PartitionEvent& partitionEvent(size_t index) const;

  // Marks a partition event handled (the driver fenced/evicted the losing
  // side). If the event `heals`, cross-group connectivity is restored from
  // here on — the fenced side may rejoin; otherwise the cut is permanent.
  void resolvePartition(size_t index);

  const FaultPlan& plan() const { return plan_; }

  FaultStats stats() const;

 private:
  bool partitionCuts(HostId from, HostId to) const;   // callers hold mutex_
  bool linkFaultActive(const LinkFault& fault, HostId from,
                       HostId to) const;              // callers hold mutex_

  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::vector<uint64_t> faultMatches_;  // per message fault: matches so far
  std::vector<bool> crashFired_;
  std::vector<bool> permanentlyDown_;  // indexed by host id (grown on demand)
  std::map<HostId, uint32_t> hostPhase_;
  std::map<HostId, uint64_t> hostOps_;
  std::map<std::pair<HostId, HostId>, uint64_t> linkSeq_;  // per-link sends
  std::vector<bool> partitionResolved_;
  uint32_t maxAnnouncedPhase_ = 0;  // activates partition events; monotone
  FaultStats stats_;
};

// Seeded random fault plan for the fuzzer: a handful of drop/duplicate/
// delay/corrupt faults over the partitioner's tags plus at most `maxCrashes`
// scheduled host crashes. With `allowPermanent`, roughly a third of the
// generated crashes are permanent (the host never reboots), exercising the
// degraded-mode eviction path. With `maxSlowdowns > 0`, up to that many
// hosts are additionally paced by a sustained 2-8x slowdown factor; the
// slowdown draws come after the message/crash draws, so plans for a given
// seed are unchanged when maxSlowdowns == 0. With `maxLinkFaults > 0`, up
// to that many directed links are additionally degraded or lossy, and with
// `allowPartition` roughly half the seeds schedule one two-group partition
// event (sometimes healing); these draws come last, after the slowdown
// draws, preserving historical plans for every earlier parameter set.
FaultPlan randomFaultPlan(uint64_t seed, uint32_t numHosts,
                          uint32_t maxMessageFaults = 6,
                          uint32_t maxCrashes = 1,
                          bool allowPermanent = false,
                          uint32_t maxSlowdowns = 0,
                          uint32_t maxLinkFaults = 0,
                          bool allowPartition = false);

// Projects a fault plan onto a shrunk host set after evictions:
// `survivors[newRank]` is the original id of the host now running as
// `newRank`. Faults, crashes, slowdowns and link faults pinned to an
// evicted host are dropped; the rest have their host ids remapped (kAnyHost
// stays wildcarded). A partition event is rebuilt over the survivor ranks
// and dropped entirely when only one of its groups survives (a partition
// needs two sides). The degraded-mode driver feeds the result to the fresh
// injector of each re-partition epoch, so a second permanent crash still
// fires at its survivor rank.
FaultPlan remapFaultPlan(const FaultPlan& plan,
                         const std::vector<HostId>& survivors);

}  // namespace cusp::comm
