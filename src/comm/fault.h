// Deterministic fault injection for the simulated network.
//
// A FaultPlan describes, ahead of a run, which messages the (simulated)
// interconnect will drop, duplicate or delay and which hosts will crash at
// which point of the partitioning pipeline. Faults match by
// (src, dst, tag, occurrence) predicates over the cross-host send sequence,
// and crashes by (host, phase, crossings-into-phase), so a given plan
// replays identically for a given program — the property the recovery tests
// and the fault fuzzer rely on.
//
// The FaultInjector is the runtime counterpart: it lives across recovery
// attempts (a crash fires once — the "rebooted" host does not re-crash on
// replay) and is shared by every Network the resilient driver creates.
//
// Failure taxonomy (all structured, never a bare hang):
//   HostFailure          — an injected crash; the resilient partitioner
//                          catches it and restarts from checkpoints.
//   NetworkStalled       — a bounded-wait receive expired; the message names
//                          every host currently blocked and on which tag.
//   SendRetriesExhausted — a message was dropped more times than the retry
//                          policy allows.
//   HostEvicted          — traffic addressed to (or issued by) a host the
//                          membership view has evicted; fails fast instead
//                          of burning the retry budget.
//   MessageCorrupt       — a CRC-framed message failed verification at the
//                          receiving mailbox (wire corruption); the frame is
//                          discarded and the sender notified, so
//                          sendReliable can retransmit transparently.
//
// Crashes come in two flavors: transient (the default — the host "reboots"
// and the crash fires exactly once for the injector's lifetime) and
// permanent (`HostCrash::permanent` — the host never comes back: once the
// crash fires, every later crossing of that host fails immediately, across
// all recovery attempts sharing the injector). Permanent loss is what the
// degraded-mode driver turns into a membership eviction.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cusp::comm {

using HostId = uint32_t;
using Tag = uint32_t;

inline constexpr HostId kAnyHost = UINT32_MAX;
inline constexpr Tag kAnyTag = UINT32_MAX;

enum class FaultAction : uint8_t {
  kDrop,       // message never delivered; the sender observes the loss
  kDuplicate,  // a second copy is delivered; receivers must deduplicate
  kDelay,      // delivery deferred by `delayScans` receiver scan cycles
  kCorrupt,    // deterministic byte flip on the framed payload in flight;
               // caught by the CRC32 frame check at the receiving mailbox
};

// Matches the `occurrence`-th (0-based) cross-host send seen with this
// (src, dst, tag) shape, and the following `repeat - 1` matches of the same
// shape (repeat > 1 defeats bounded retry: each retry is a new occurrence).
struct MessageFault {
  HostId src = kAnyHost;
  HostId dst = kAnyHost;
  Tag tag = kAnyTag;
  uint64_t occurrence = 0;
  uint32_t repeat = 1;
  FaultAction action = FaultAction::kDrop;
  uint32_t delayScans = 2;  // kDelay only
};

// Crashes `host` at its `opsIntoPhase`-th network crossing (send, receive,
// barrier or explicit fault point) after it announces partitioner phase
// `phase` (1-5; 0 = before/outside the phased pipeline). A transient crash
// (the default) fires at most once for the lifetime of the injector, across
// recovery attempts; a permanent one marks the host as down for good — it
// fails again at its first crossing of every subsequent attempt.
struct HostCrash {
  HostId host = 0;
  uint32_t phase = 0;
  uint64_t opsIntoPhase = 0;
  bool permanent = false;
};

struct FaultPlan {
  std::vector<MessageFault> messageFaults;
  std::vector<HostCrash> crashes;

  bool empty() const { return messageFaults.empty() && crashes.empty(); }
};

// Bounded retry with (modeled) exponential backoff for sender-visible
// message loss; used by Network::sendReliable. maxAttempts == 1 disables
// retry. The backoff is charged to the sender's modeled communication time,
// not slept.
struct RetryPolicy {
  uint32_t maxAttempts = 4;
  double backoffMicros = 100.0;
};

// Injection counters (separate from VolumeStats so that fault-free volume
// accounting stays byte-identical).
struct FaultStats {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t duplicatesSuppressed = 0;
  uint64_t delayed = 0;
  uint64_t corrupted = 0;  // injected byte flips (detections are counted in
                           // VolumeStats::corruptionsDetected)
  uint64_t retries = 0;
  uint64_t crashesFired = 0;
};

class HostFailure : public std::runtime_error {
 public:
  HostFailure(HostId host, uint32_t phase)
      : std::runtime_error("injected crash of host " + std::to_string(host) +
                           " in phase " + std::to_string(phase)),
        host(host),
        phase(phase) {}

  HostId host;
  uint32_t phase;
};

class NetworkStalled : public std::runtime_error {
 public:
  explicit NetworkStalled(std::string report)
      : std::runtime_error(std::move(report)) {}
};

class SendRetriesExhausted : public std::runtime_error {
 public:
  SendRetriesExhausted(HostId from, HostId to, Tag tag, uint32_t attempts);

  HostId from;
  HostId to;
  Tag tag;
  uint32_t attempts;
};

// Traffic touching a host the membership view has evicted (see
// Network::evict). Raised eagerly at the send/recv call — an evicted host
// can never answer, so retrying or waiting out a timeout would only burn
// budget. `host` is the evicted party, `from` the caller.
class HostEvicted : public std::runtime_error {
 public:
  HostEvicted(HostId from, HostId host, Tag tag, uint64_t epoch);

  HostId from;
  HostId host;
  Tag tag;
  uint64_t epoch;
};

// A CRC-framed message whose frame failed verification at the receiving
// mailbox (wire corruption). The corrupt frame is discarded — it never
// reaches the application — and the error surfaces on the SENDER side like
// a link-layer NACK, so sendReliable can retransmit a clean copy
// transparently. Escapes to the caller only once the retry budget is spent
// (or on a bare send()).
class MessageCorrupt : public std::runtime_error {
 public:
  MessageCorrupt(HostId from, HostId to, Tag tag);

  HostId from;
  HostId to;
  Tag tag;
};

// Human-readable name of a message tag (for stall reports and errors).
std::string tagName(Tag tag);

// Runtime fault state. Thread-safe; shared (via shared_ptr) by every
// Network of a resilient run so that occurrence counters and fired-crash
// flags persist across recovery attempts.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Consulted for every cross-host send. Returns the action to apply (or
  // nullopt for clean delivery) and advances the occurrence counters.
  struct SendDecision {
    FaultAction action;
    uint32_t delayScans = 0;
  };
  std::optional<SendDecision> onSend(HostId from, HostId to, Tag tag);

  // A network crossing by `host` (send/recv/barrier entry or an explicit
  // fault point). Throws HostFailure if a scheduled crash is due, or — for
  // a host a permanent crash already took down — immediately (a dead
  // machine does not boot for the next recovery attempt).
  void onCrossing(HostId host);

  // Partitioner phase announcements; resets the host's crossing counter.
  void enterPhase(HostId host, uint32_t phase);

  // Whether a permanent crash has fired for `host` (it will fail every
  // future crossing). The degraded-mode driver uses this to tell an
  // evictable loss from a transient, retryable one.
  bool isPermanentlyDown(HostId host) const;
  std::vector<HostId> permanentlyDownHosts() const;

  void countRetry();
  void countDuplicateSuppressed();

  FaultStats stats() const;

 private:
  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::vector<uint64_t> faultMatches_;  // per message fault: matches so far
  std::vector<bool> crashFired_;
  std::vector<bool> permanentlyDown_;  // indexed by host id (grown on demand)
  std::map<HostId, uint32_t> hostPhase_;
  std::map<HostId, uint64_t> hostOps_;
  FaultStats stats_;
};

// Seeded random fault plan for the fuzzer: a handful of drop/duplicate/
// delay/corrupt faults over the partitioner's tags plus at most `maxCrashes`
// scheduled host crashes. With `allowPermanent`, roughly a third of the
// generated crashes are permanent (the host never reboots), exercising the
// degraded-mode eviction path.
FaultPlan randomFaultPlan(uint64_t seed, uint32_t numHosts,
                          uint32_t maxMessageFaults = 6,
                          uint32_t maxCrashes = 1,
                          bool allowPermanent = false);

// Projects a fault plan onto a shrunk host set after evictions:
// `survivors[newRank]` is the original id of the host now running as
// `newRank`. Faults and crashes pinned to an evicted host are dropped;
// the rest have their host ids remapped (kAnyHost stays wildcarded). The
// degraded-mode driver feeds the result to the fresh injector of each
// re-partition epoch, so a second permanent crash still fires at its
// survivor rank.
FaultPlan remapFaultPlan(const FaultPlan& plan,
                         const std::vector<HostId>& survivors);

}  // namespace cusp::comm
