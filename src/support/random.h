// Deterministic, seedable random number generation.
//
// Graph generators and tests must be reproducible across runs, platforms and
// thread counts, so we avoid std::mt19937's unspecified distribution behaviour
// and implement splitmix64 (state scrambler) and xoshiro256** (bulk
// generation) directly. Both are public-domain algorithms by Blackman/Vigna.
#pragma once

#include <cstdint>
#include <limits>

namespace cusp::support {

// splitmix64: excellent single-step mixer; used to seed xoshiro and to hash
// integers into well-distributed 64-bit values.
inline uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless hash of a 64-bit value (splitmix64 finalizer).
inline uint64_t hashU64(uint64_t x) {
  uint64_t s = x;
  return splitmix64(s);
}

// xoshiro256**: fast, high-quality 64-bit PRNG.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return next(); }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t nextBounded(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    unsigned __int128 product =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<uint64_t>(product >> 64);
  }

  // Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace cusp::support
