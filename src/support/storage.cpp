#include "support/storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "support/random.h"

namespace cusp::support {

namespace {

// Which operation class a fault kind belongs to; a fault's occurrence
// counter only advances on operations of its own class.
StorageOp opOf(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kWriteFail:
    case StorageFaultKind::kTornWrite:
    case StorageFaultKind::kEnospc:
      return StorageOp::kWrite;
    case StorageFaultKind::kRenameFail:
      return StorageOp::kRename;
    case StorageFaultKind::kReadFail:
    case StorageFaultKind::kBitRot:
      return StorageOp::kRead;
  }
  return StorageOp::kWrite;
}

std::mutex& globalMutex() {
  static std::mutex m;
  return m;
}

std::shared_ptr<StorageFaultInjector>& globalInjector() {
  static std::shared_ptr<StorageFaultInjector> injector;
  return injector;
}

std::mutex& fenceMutex() {
  static std::mutex m;
  return m;
}

std::shared_ptr<WriteFence>& globalFence() {
  static std::shared_ptr<WriteFence> fence;
  return fence;
}

std::optional<StorageFault> consult(StorageOp op, const std::string& path) {
  auto injector = storageFaults();
  if (!injector) {
    return std::nullopt;
  }
  return injector->onOp(op, path);
}

// Best-effort fsync of the directory containing `path`, making a preceding
// rename durable. Failure here loses durability, not consistency (the
// rename either survives the crash or the old state does), so it does not
// fail the commit.
void fsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return;
  }
  ::fsync(fd);
  ::close(fd);
}

// Writes `size` bytes of `data` to `path` and makes them durable
// (fwrite + fflush + fsync). Returns false on any failure, removing the
// partial file.
bool writeDurable(const std::string& path, const void* data, size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  bool ok = size == 0 || std::fwrite(data, 1, size, f) == size;
  if (ok && std::fflush(f) != 0) {
    ok = false;
  }
  if (ok && ::fsync(fileno(f)) != 0) {
    ok = false;
  }
  if (std::fclose(f) != 0) {
    ok = false;
  }
  if (!ok) {
    std::remove(path.c_str());
  }
  return ok;
}

}  // namespace

const char* storageFaultKindName(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kWriteFail:
      return "write-fail";
    case StorageFaultKind::kTornWrite:
      return "torn-write";
    case StorageFaultKind::kEnospc:
      return "enospc";
    case StorageFaultKind::kRenameFail:
      return "rename-fail";
    case StorageFaultKind::kReadFail:
      return "read-fail";
    case StorageFaultKind::kBitRot:
      return "bit-rot";
  }
  return "unknown";
}

StorageError::StorageError(Kind kind, std::string path,
                           const std::string& detail)
    : std::runtime_error("storage error [" + path + "]: " + detail),
      kind(kind),
      path(std::move(path)) {}

const char* StorageError::kindName() const {
  switch (kind) {
    case Kind::kWriteFailed:
      return "write-failed";
    case Kind::kNoSpace:
      return "no-space";
    case Kind::kRenameFailed:
      return "rename-failed";
    case Kind::kReadFailed:
      return "read-failed";
  }
  return "unknown";
}

StorageFaultInjector::StorageFaultInjector(StorageFaultPlan plan)
    : plan_(std::move(plan)), matches_(plan_.faults.size(), 0) {}

std::optional<StorageFault> StorageFaultInjector::onOp(
    StorageOp op, const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<StorageFault> decision;
  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    const StorageFault& fault = plan_.faults[i];
    if (opOf(fault.kind) != op) {
      continue;
    }
    if (!fault.pathSubstring.empty() &&
        path.find(fault.pathSubstring) == std::string::npos) {
      continue;
    }
    const uint64_t seen = matches_[i]++;
    if (decision.has_value()) {
      continue;  // first due fault wins, but every counter advances
    }
    if (seen < fault.occurrence || seen >= fault.occurrence + fault.repeat) {
      continue;
    }
    decision = fault;
    switch (fault.kind) {
      case StorageFaultKind::kWriteFail:
        ++stats_.writeFailures;
        break;
      case StorageFaultKind::kTornWrite:
        ++stats_.tornWrites;
        break;
      case StorageFaultKind::kEnospc:
        ++stats_.enospcFailures;
        break;
      case StorageFaultKind::kRenameFail:
        ++stats_.renameFailures;
        break;
      case StorageFaultKind::kReadFail:
        ++stats_.readFailures;
        break;
      case StorageFaultKind::kBitRot:
        ++stats_.bitRotsInjected;
        break;
    }
  }
  return decision;
}

StorageFaultStats StorageFaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::shared_ptr<StorageFaultInjector> storageFaults() {
  std::lock_guard<std::mutex> lock(globalMutex());
  return globalInjector();
}

void attachStorageFaults(std::shared_ptr<StorageFaultInjector> injector) {
  std::lock_guard<std::mutex> lock(globalMutex());
  globalInjector() = std::move(injector);
}

void detachStorageFaults() {
  std::lock_guard<std::mutex> lock(globalMutex());
  globalInjector().reset();
}

ScopedStorageFaults::ScopedStorageFaults(StorageFaultPlan plan)
    : injector_(std::make_shared<StorageFaultInjector>(std::move(plan))) {
  std::lock_guard<std::mutex> lock(globalMutex());
  previous_ = globalInjector();
  globalInjector() = injector_;
}

ScopedStorageFaults::~ScopedStorageFaults() {
  std::lock_guard<std::mutex> lock(globalMutex());
  globalInjector() = previous_;
}

uint64_t WriteFence::advance(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  epoch_ = std::max(epoch_, epoch);
  return epoch_;
}

uint64_t WriteFence::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

void WriteFence::fence(uint32_t host) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fenced_.size() <= host) {
    fenced_.resize(host + 1, false);
  }
  fenced_[host] = true;
}

void WriteFence::lift(uint32_t host) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (host < fenced_.size()) {
    fenced_[host] = false;
  }
}

bool WriteFence::isFenced(uint32_t host) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return host < fenced_.size() && fenced_[host];
}

std::vector<uint32_t> WriteFence::fencedHosts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint32_t> hosts;
  for (uint32_t h = 0; h < fenced_.size(); ++h) {
    if (fenced_[h]) {
      hosts.push_back(h);
    }
  }
  return hosts;
}

uint64_t WriteFence::fencedWriteAttempts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fencedWriteAttempts_;
}

void WriteFence::countFencedWriteAttempt() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++fencedWriteAttempts_;
}

std::shared_ptr<WriteFence> writeFence() {
  std::lock_guard<std::mutex> lock(fenceMutex());
  return globalFence();
}

void attachWriteFence(std::shared_ptr<WriteFence> fence) {
  std::lock_guard<std::mutex> lock(fenceMutex());
  globalFence() = std::move(fence);
}

void detachWriteFence() {
  std::lock_guard<std::mutex> lock(fenceMutex());
  globalFence().reset();
}

ScopedWriteFence::ScopedWriteFence() : fence_(std::make_shared<WriteFence>()) {
  std::lock_guard<std::mutex> lock(fenceMutex());
  previous_ = globalFence();
  globalFence() = fence_;
}

ScopedWriteFence::~ScopedWriteFence() {
  std::lock_guard<std::mutex> lock(fenceMutex());
  globalFence() = previous_;
}

void atomicWriteFile(const std::string& path, const void* data, size_t size) {
  const std::string tmpPath = path + ".tmp";
  const auto writeFault = consult(StorageOp::kWrite, path);
  if (writeFault.has_value() &&
      (writeFault->kind == StorageFaultKind::kWriteFail ||
       writeFault->kind == StorageFaultKind::kEnospc)) {
    // The write dies partway: leave a torn tmp behind as crash debris (the
    // GC sweep is responsible for it) and never touch the final file.
    writeDurable(tmpPath, data, size / 2);
    if (writeFault->kind == StorageFaultKind::kEnospc) {
      throw StorageError(StorageError::Kind::kNoSpace, path,
                         "injected ENOSPC");
    }
    throw StorageError(StorageError::Kind::kWriteFailed, path,
                       "injected write failure");
  }
  size_t writeSize = size;
  if (writeFault.has_value() &&
      writeFault->kind == StorageFaultKind::kTornWrite) {
    // Silent torn write: the commit below "succeeds" with a truncated
    // image. The consumer's CRC check is what must catch this.
    writeSize = std::min<size_t>(size, writeFault->tornBytes);
  }
  if (!writeDurable(tmpPath, data, writeSize)) {
    throw StorageError(StorageError::Kind::kWriteFailed, path,
                       "cannot write " + tmpPath);
  }
  const auto renameFault = consult(StorageOp::kRename, path);
  if (renameFault.has_value() &&
      renameFault->kind == StorageFaultKind::kRenameFail) {
    // Crash between tmp-write and rename: the durable tmp is orphaned.
    throw StorageError(StorageError::Kind::kRenameFailed, path,
                       "injected rename failure");
  }
  if (std::rename(tmpPath.c_str(), path.c_str()) != 0) {
    std::remove(tmpPath.c_str());
    throw StorageError(StorageError::Kind::kRenameFailed, path,
                       "rename from " + tmpPath + " failed");
  }
  fsyncParentDir(path);
}

void atomicWriteFile(const std::string& path,
                     const std::vector<uint8_t>& bytes) {
  atomicWriteFile(path, bytes.data(), bytes.size());
}

std::optional<std::vector<uint8_t>> readFileBytes(const std::string& path) {
  const auto fault = consult(StorageOp::kRead, path);
  if (fault.has_value() && fault->kind == StorageFaultKind::kReadFail) {
    throw StorageError(StorageError::Kind::kReadFailed, path,
                       "injected read failure");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  const long size = std::ftell(f);
  if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t got =
      bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) {
    return std::nullopt;
  }
  if (fault.has_value() && fault->kind == StorageFaultKind::kBitRot &&
      !bytes.empty()) {
    // Flip one deterministically chosen byte of the image at rest.
    const uint64_t index =
        hashU64(bytes.size() ^ (fault->occurrence * 0x9E3779B97F4A7C15ULL)) %
        bytes.size();
    bytes[index] ^= 0x40;
  }
  return bytes;
}

std::optional<std::vector<uint8_t>> readFileRange(const std::string& path,
                                                  uint64_t offset,
                                                  uint64_t length) {
  const auto fault = consult(StorageOp::kRead, path);
  if (fault.has_value() && fault->kind == StorageFaultKind::kReadFail) {
    throw StorageError(StorageError::Kind::kReadFailed, path,
                       "injected read failure");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  if (offset > static_cast<uint64_t>(std::numeric_limits<long>::max()) ||
      std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(length));
  const size_t got =
      bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) {
    return std::nullopt;  // file shorter than offset + length: truncation
  }
  if (fault.has_value() && fault->kind == StorageFaultKind::kBitRot &&
      !bytes.empty()) {
    // Same deterministic byte choice as readFileBytes, salted with the
    // offset so distinct windows of one file rot at distinct positions.
    const uint64_t index =
        hashU64((bytes.size() ^ offset) ^
                (fault->occurrence * 0x9E3779B97F4A7C15ULL)) %
        bytes.size();
    bytes[index] ^= 0x40;
  }
  return bytes;
}

StorageFaultPlan randomStorageFaultPlan(uint64_t seed, uint32_t numHosts,
                                        uint32_t maxFaults) {
  Rng rng(seed * 0xD1B54A32D192ED03ULL + 3);
  StorageFaultPlan plan;
  if (numHosts == 0 || maxFaults == 0) {
    return plan;
  }
  const uint64_t count = rng.nextBounded(maxFaults + 1);
  static const StorageFaultKind kKinds[] = {
      StorageFaultKind::kWriteFail,  StorageFaultKind::kTornWrite,
      StorageFaultKind::kEnospc,     StorageFaultKind::kRenameFail,
      StorageFaultKind::kReadFail,   StorageFaultKind::kBitRot,
  };
  for (uint64_t i = 0; i < count; ++i) {
    StorageFault fault;
    fault.kind = kKinds[rng.nextBounded(std::size(kKinds))];
    // Pin each fault to one host's checkpoint files so that the per-fault
    // occurrence counter sees a deterministic stream even when all host
    // threads are writing concurrently.
    fault.pathSubstring =
        "h" + std::to_string(rng.nextBounded(numHosts)) + ".p";
    fault.occurrence = rng.nextBounded(4);
    fault.repeat = 1 + static_cast<uint32_t>(rng.nextBounded(2));
    fault.tornBytes = rng.nextBounded(96);
    plan.faults.push_back(std::move(fault));
  }
  return plan;
}

}  // namespace cusp::support
