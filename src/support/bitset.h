// Concurrent fixed-capacity dynamic bitset.
//
// Used to track "dirty" vertices in the analytics engine's master/mirror
// synchronization and to record createMirror flags during edge assignment.
// Set/test are safe under concurrent writers (atomic fetch_or on 64-bit
// words); resize and reset are not concurrent with writers.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace cusp::support {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(uint64_t numBits) { resize(numBits); }

  DynamicBitset(const DynamicBitset& other) { copyFrom(other); }
  DynamicBitset& operator=(const DynamicBitset& other) {
    if (this != &other) {
      copyFrom(other);
    }
    return *this;
  }
  DynamicBitset(DynamicBitset&&) = default;
  DynamicBitset& operator=(DynamicBitset&&) = default;

  void resize(uint64_t numBits) {
    numBits_ = numBits;
    words_ = std::vector<std::atomic<uint64_t>>((numBits + 63) / 64);
  }

  uint64_t size() const { return numBits_; }

  // Thread-safe. Returns true if the bit was newly set.
  bool set(uint64_t index) {
    const uint64_t mask = 1ULL << (index & 63);
    const uint64_t old =
        words_[index >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (old & mask) == 0;
  }

  // Thread-safe with concurrent set() on other bits; plain read.
  bool test(uint64_t index) const {
    const uint64_t mask = 1ULL << (index & 63);
    return (words_[index >> 6].load(std::memory_order_relaxed) & mask) != 0;
  }

  // Not thread-safe with concurrent set().
  void clear(uint64_t index) {
    const uint64_t mask = 1ULL << (index & 63);
    words_[index >> 6].fetch_and(~mask, std::memory_order_relaxed);
  }

  void resetAll() {
    for (auto& word : words_) {
      word.store(0, std::memory_order_relaxed);
    }
  }

  uint64_t count() const {
    uint64_t total = 0;
    for (const auto& word : words_) {
      total += static_cast<uint64_t>(
          __builtin_popcountll(word.load(std::memory_order_relaxed)));
    }
    return total;
  }

  bool any() const {
    for (const auto& word : words_) {
      if (word.load(std::memory_order_relaxed) != 0) {
        return true;
      }
    }
    return false;
  }

  // Appends the indices of all set bits to `out` in ascending order.
  void collectSetBits(std::vector<uint64_t>& out) const {
    for (uint64_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w].load(std::memory_order_relaxed);
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        const uint64_t index = (w << 6) + static_cast<uint64_t>(bit);
        if (index < numBits_) {
          out.push_back(index);
        }
        word &= word - 1;
      }
    }
  }

 private:
  void copyFrom(const DynamicBitset& other) {
    numBits_ = other.numBits_;
    words_ = std::vector<std::atomic<uint64_t>>(other.words_.size());
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i].store(other.words_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
  }

  uint64_t numBits_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace cusp::support
