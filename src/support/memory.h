// cusp::support — the process-wide memory governor: hard budget caps with
// reserve/release accounting, deterministic allocation-fault injection, and
// the spill codec the partitioner uses to push cold state to disk.
//
// The runtime trusted memory unconditionally until this layer existed:
// GraphFile::load sized buffers for the whole graph, the partitioner held
// every phase's state resident, and a std::bad_alloc anywhere aborted the
// run. The governor turns memory into a budgeted resource, mirroring the
// interconnect (comm::FaultPlan) and storage (support::StorageFaultPlan)
// seams:
//
//  * MemoryBudget — a shared cap with atomic reserve/release accounting.
//    Consumers reserve BEFORE allocating, so an over-budget request fails
//    as a typed MemoryPressure exception at a recoverable point instead of
//    an unannotated bad_alloc mid-allocation. totalBytes == 0 means
//    accounting-only (nothing ever fails); reserveOverdraft() is for state
//    that must be resident regardless (the final partition arrays) — it
//    counts toward in-use/peak but cannot fail, so the gauges stay honest
//    without making required allocations un-completable.
//
//  * MemoryFaultPlan — deterministic, seedable memory chaos, shaped like
//    StorageFaultPlan: faults match by (context substring, occurrence) and
//    either fail the matching reservation (kAllocFail) or shrink the
//    budget's cap (kBudgetShrink), modeling a co-tenant eating the box's
//    RAM mid-run. Contexts are strings like "partition.window.h3", pinned
//    per host so multi-threaded runs replay deterministically.
//
//  * BudgetedVector<T> — a std::vector wrapper that charges its capacity
//    against the attached budget before every growth, used by the hot
//    containers of the partitioning pipeline.
//
//  * Spill codec — delta+varint compression (support/varint.h) for edge
//    windows pushed through the storage seam (support/storage.h), with a
//    CRC32 footer so at-rest bit rot is caught on restore.
//
// The budget attaches process-wide (like obs::attach and the storage fault
// injector) so every consumer — graph loader, partitioner, comm aggregation
// buffers — shares one cap without threading a handle through a dozen call
// signatures. memoryBudgetAttached() is a lock-free flag so unbudgeted hot
// paths pay one relaxed atomic load and nothing else.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace cusp::support {

// Structured out-of-budget failure. The resilient driver classifies this
// into its degradation ladder (stream windows instead of caching them ->
// spill cold state -> restart from checkpoints with smaller read chunks)
// instead of dying.
class MemoryPressure : public std::runtime_error {
 public:
  MemoryPressure(uint64_t requestedBytes, uint64_t totalBytes,
                 uint64_t inUseBytes, std::string context);

  uint64_t requestedBytes;
  uint64_t totalBytes;
  uint64_t inUseBytes;
  std::string context;
};

enum class MemoryFaultKind : uint8_t {
  kAllocFail,     // the matching reservation fails (MemoryPressure)
  kBudgetShrink,  // the cap drops to shrinkToBytes before the reservation
                  // is evaluated (a co-tenant took the RAM); the pending
                  // reservation then succeeds or fails against the new cap
};

const char* memoryFaultKindName(MemoryFaultKind kind);

// Matches the `occurrence`-th (0-based) reservation whose context contains
// `contextSubstring`, and the following `repeat - 1` matches of the same
// shape. Contexts are stable strings ("partition.window.h3"), so a plan
// replays identically for a given program; faults pinned to one host's
// contexts stay deterministic under multi-threaded runs.
struct MemoryFault {
  MemoryFaultKind kind = MemoryFaultKind::kAllocFail;
  std::string contextSubstring;  // empty = any reservation
  uint64_t occurrence = 0;
  uint32_t repeat = 1;
  uint64_t shrinkToBytes = 0;  // kBudgetShrink: new cap; 0 = halve current
};

struct MemoryFaultPlan {
  std::vector<MemoryFault> faults;

  bool empty() const { return faults.empty(); }
};

struct MemoryFaultStats {
  uint64_t allocFailuresInjected = 0;
  uint64_t budgetShrinksInjected = 0;
};

// Runtime fault state; thread-safe, shared for the duration of a chaos run
// so occurrence counters persist across recovery attempts (mirroring
// StorageFaultInjector's lifetime contract).
class MemoryFaultInjector {
 public:
  explicit MemoryFaultInjector(MemoryFaultPlan plan);

  // Consulted once per (non-overdraft) reservation. Advances the occurrence
  // counter of every fault whose predicate matches and returns the first
  // fault due to fire (or nullopt for a clean reservation).
  std::optional<MemoryFault> onReserve(std::string_view context);

  MemoryFaultStats stats() const;

 private:
  mutable std::mutex mutex_;
  MemoryFaultPlan plan_;
  std::vector<uint64_t> matches_;  // per fault: predicate matches so far
  MemoryFaultStats stats_;
};

struct MemoryBudgetStats {
  uint64_t totalBytes = 0;  // 0 = accounting only, nothing fails
  uint64_t inUseBytes = 0;
  uint64_t peakBytes = 0;
  uint64_t spillBytes = 0;         // cumulative bytes spilled to disk
  uint64_t commBacklogBytes = 0;   // last-reported comm buffer backlog
  uint64_t reserveFailures = 0;    // over-budget + injected alloc failures
  uint64_t shrinks = 0;            // injected + explicit cap shrinks
};

// The budget itself. All counters are atomics; reserve/release are safe to
// call from every host thread concurrently. The injector consult takes the
// injector's mutex, which is fine at the intended granularity (reservations
// happen per window/chunk/buffer, not per element).
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t totalBytes,
                        std::shared_ptr<MemoryFaultInjector> injector = {});

  uint64_t totalBytes() const {
    return total_.load(std::memory_order_relaxed);
  }
  uint64_t inUseBytes() const {
    return inUse_.load(std::memory_order_relaxed);
  }
  uint64_t peakBytes() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t spillBytes() const {
    return spill_.load(std::memory_order_relaxed);
  }

  // False when the reservation would exceed the cap or an injected
  // allocation failure fires; the caller degrades (streams instead of
  // caching, flushes a buffer early) instead of allocating.
  bool tryReserve(uint64_t bytes, std::string_view context);

  // Throwing variant: MemoryPressure on failure.
  void reserve(uint64_t bytes, std::string_view context);

  // For bounded transient working state that is the *mechanism* of staying
  // under budget (a streaming chunk buffer, a spill restore buffer):
  // refusing it cannot reduce memory — the resident alternative is strictly
  // larger — so the cap does not fail it even when overdraft state (final
  // partition arrays) already sits above the cap. Injected faults still
  // apply: kAllocFail throws MemoryPressure (feeding the chaos ladder),
  // kBudgetShrink drops the cap before charging.
  void reserveSpillable(uint64_t bytes, std::string_view context);

  // Accounting-only reservation for state that must be resident regardless
  // of the cap (the final partition arrays). Never fails, never consults
  // the injector; in-use and peak still move so the gauges stay honest.
  void reserveOverdraft(uint64_t bytes);

  void release(uint64_t bytes);

  // Cumulative spill accounting (mirrored to the mem.spill_bytes gauge).
  void noteSpill(uint64_t bytes) {
    spill_.fetch_add(bytes, std::memory_order_relaxed);
  }

  // Last-observed comm buffer backlog (aggregation buffers + mailboxes);
  // counted into pressure decisions but not into inUse (the bytes are
  // charged by their owners).
  void noteCommBacklog(uint64_t bytes) {
    commBacklog_.store(bytes, std::memory_order_relaxed);
  }

  // Shrinks the cap (never grows it; a shrink below in-use does not fail
  // existing reservations — new ones fail until usage drains).
  void shrinkTo(uint64_t newTotalBytes);

  // True when usage is within 1/8 of the cap — the signal consumers use to
  // degrade early (flush aggregation buffers) before reservations start
  // failing outright.
  bool underPressure() const;

  MemoryBudgetStats stats() const;

  const std::shared_ptr<MemoryFaultInjector>& faultInjector() const {
    return injector_;
  }

 private:
  std::atomic<uint64_t> total_;
  std::atomic<uint64_t> inUse_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> spill_{0};
  std::atomic<uint64_t> commBacklog_{0};
  std::atomic<uint64_t> reserveFailures_{0};
  std::atomic<uint64_t> shrinks_{0};
  std::shared_ptr<MemoryFaultInjector> injector_;
};

// --- process-wide attachment (mirrors obs::attach / attachStorageFaults) ---

// Current budget; nullptr when detached (the default — every primitive is
// then unbudgeted plain allocation).
std::shared_ptr<MemoryBudget> memoryBudget();

// Lock-free attached check for hot paths.
bool memoryBudgetAttached();

void attachMemoryBudget(std::shared_ptr<MemoryBudget> budget);
void detachMemoryBudget();

// RAII attach of a fresh budget (optionally with a fault plan); restores
// the previous budget on destruction so scopes nest.
class ScopedMemoryBudget {
 public:
  explicit ScopedMemoryBudget(uint64_t totalBytes, MemoryFaultPlan plan = {});
  ScopedMemoryBudget(const ScopedMemoryBudget&) = delete;
  ScopedMemoryBudget& operator=(const ScopedMemoryBudget&) = delete;
  ~ScopedMemoryBudget();

  const std::shared_ptr<MemoryBudget>& budget() const { return budget_; }
  MemoryBudgetStats stats() const { return budget_->stats(); }

 private:
  std::shared_ptr<MemoryBudget> budget_;
  std::shared_ptr<MemoryBudget> previous_;
};

// Seeded random memory-fault plan for the fuzzer: up to `maxFaults` faults
// over both kinds, each pinned to one host's contexts ("h<r>") so
// multi-threaded runs replay deterministically. shrinkToBytes == 0 (halve)
// keeps random shrinks meaningful at any budget scale.
MemoryFaultPlan randomMemoryFaultPlan(uint64_t seed, uint32_t numHosts,
                                      uint32_t maxFaults = 4);

// --- BudgetedVector ---------------------------------------------------------

// A std::vector that charges its capacity against the process budget before
// every growth. The budget is captured at construction (null if none is
// attached then), so charge/release pairing is consistent even if the
// process budget changes mid-life. With overdraft=true growth cannot fail
// (reserveOverdraft) — for containers that must succeed, like the final
// CSR arrays.
template <typename T>
class BudgetedVector {
 public:
  explicit BudgetedVector(std::string context, bool overdraft = false)
      : budget_(memoryBudgetAttached() ? memoryBudget() : nullptr),
        context_(std::move(context)),
        overdraft_(overdraft) {}

  BudgetedVector(BudgetedVector&& other) noexcept
      : budget_(std::move(other.budget_)),
        context_(std::move(other.context_)),
        overdraft_(other.overdraft_),
        charged_(other.charged_),
        v_(std::move(other.v_)) {
    other.charged_ = 0;
  }

  BudgetedVector& operator=(BudgetedVector&& other) noexcept {
    if (this != &other) {
      releaseAll();
      budget_ = std::move(other.budget_);
      context_ = std::move(other.context_);
      overdraft_ = other.overdraft_;
      charged_ = other.charged_;
      v_ = std::move(other.v_);
      other.charged_ = 0;
    }
    return *this;
  }

  BudgetedVector(const BudgetedVector&) = delete;
  BudgetedVector& operator=(const BudgetedVector&) = delete;

  ~BudgetedVector() { releaseAll(); }

  size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  T* data() { return v_.data(); }
  const T* data() const { return v_.data(); }
  T& operator[](size_t i) { return v_[i]; }
  const T& operator[](size_t i) const { return v_[i]; }
  T& back() { return v_.back(); }
  auto begin() { return v_.begin(); }
  auto end() { return v_.end(); }
  auto begin() const { return v_.begin(); }
  auto end() const { return v_.end(); }

  void reserve(size_t n) {
    chargeTo(std::max(n, v_.capacity()));
    v_.reserve(n);
  }

  void resize(size_t n) {
    chargeTo(std::max(n, v_.capacity()));
    v_.resize(n);
  }

  void resize(size_t n, const T& value) {
    chargeTo(std::max(n, v_.capacity()));
    v_.resize(n, value);
  }

  void assign(size_t n, const T& value) {
    chargeTo(std::max(n, v_.capacity()));
    v_.assign(n, value);
  }

  template <typename It>
  void assign(It first, It last) {
    const size_t n = static_cast<size_t>(std::distance(first, last));
    chargeTo(std::max(n, v_.capacity()));
    v_.assign(first, last);
  }

  void push_back(const T& value) {
    if (v_.size() == v_.capacity()) {
      chargeTo(std::max<size_t>(4, v_.capacity() * 2));
    }
    v_.push_back(value);
  }

  void clear() { v_.clear(); }  // keeps capacity and its charge

  // Releases the budget charge and hands out the underlying vector (for
  // sinks that take std::vector by value, e.g. CsrGraph's constructor).
  std::vector<T> takeVector() {
    std::vector<T> out = std::move(v_);
    v_ = std::vector<T>();
    releaseAll();
    return out;
  }

  const std::vector<T>& vector() const { return v_; }

 private:
  void chargeTo(size_t capacity) {
    const uint64_t want = static_cast<uint64_t>(capacity) * sizeof(T);
    if (!budget_ || want <= charged_) {
      return;
    }
    const uint64_t delta = want - charged_;
    if (overdraft_) {
      budget_->reserveOverdraft(delta);
    } else {
      budget_->reserve(delta, context_);
    }
    charged_ = want;
  }

  void releaseAll() {
    if (budget_ && charged_ > 0) {
      budget_->release(charged_);
    }
    charged_ = 0;
  }

  std::shared_ptr<MemoryBudget> budget_;
  std::string context_;
  bool overdraft_ = false;
  uint64_t charged_ = 0;
  std::vector<T> v_;
};

// --- spill codec -------------------------------------------------------------

// Delta+varint encoding of one edge-window segment (destinations plus
// optional per-edge weights). Destinations are zigzag-delta coded — windows
// are not sorted, but consecutive destinations are strongly correlated on
// real graphs, so deltas stay short. The image carries a magic, the counts,
// and a CRC32 footer; decode validates all three.
std::vector<uint8_t> encodeEdgeSegment(const uint64_t* dests, size_t count,
                                       const uint32_t* weights);

struct DecodedEdgeSegment {
  std::vector<uint64_t> dests;
  std::vector<uint32_t> weights;  // empty when the segment had none
};

// Throws MemoryPressure never; throws std::runtime_error on a malformed or
// corrupt image (bad magic, truncation, CRC mismatch).
DecodedEdgeSegment decodeEdgeSegment(const std::vector<uint8_t>& image);

// Writes one compressed segment through the storage seam (durable atomic
// commit; injected storage faults apply) and accounts the spilled bytes to
// the attached budget. Returns the on-disk image size.
uint64_t spillEdgeSegment(const std::string& path, const uint64_t* dests,
                          size_t count, const uint32_t* weights);

// Reads a spilled segment back; nullopt when the file is missing.
std::optional<DecodedEdgeSegment> restoreEdgeSegment(const std::string& path);

// --- shared CLI --------------------------------------------------------------

// Consumes a `--memory-budget <MB>` / `--memory-budget=<MB>` flag from
// argv (like obs::MetricsCli consumes --metrics-out) and, when present,
// attaches a process-wide budget of that many megabytes for the program's
// lifetime. Examples and benches share this so every tool gains budgeted
// mode with one line.
class MemoryBudgetCli {
 public:
  MemoryBudgetCli(int& argc, char** argv);

  bool enabled() const { return scope_ != nullptr; }
  uint64_t budgetBytes() const { return budgetBytes_; }

 private:
  uint64_t budgetBytes_ = 0;
  std::unique_ptr<ScopedMemoryBudget> scope_;
};

}  // namespace cusp::support
