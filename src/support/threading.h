// Shared-memory parallel loop constructs, in the style of Galois' do_all.
//
// CuSP runs every phase of partitioning with intra-host parallelism: master
// assignment, edge assignment and graph construction all iterate over vertex
// or edge ranges with thread-safe updates (paper Section IV-C1). We provide:
//
//   * ThreadPool      — a persistent pool of worker threads.
//   * parallelFor     — chunked dynamic-scheduled loop over [begin, end).
//   * onEach          — run a function once per thread (thread id, count).
//
// Work distribution uses an atomic chunk counter, which gives the same
// load-balancing benefit as work stealing for loop-shaped work: a thread that
// finishes its chunk simply grabs the next one. The *calling* thread always
// participates, so parallelFor(…, threads = 1) runs inline with zero
// synchronization — important because the simulated cluster runs one thread
// per logical host and defaults to one worker per host.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cusp::support {

// A persistent pool of workers executing submitted jobs. Each job is a
// function of the worker index. The pool is intentionally simple: one mutex,
// one condition variable, jobs executed to completion before run() returns.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned numWorkers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned numWorkers() const { return static_cast<unsigned>(workers_.size()); }

  // Runs fn(workerIndex) on every pool worker plus the calling thread
  // (callers pass a fn that partitions work by index over numWorkers()+1
  // participants). Blocks until all invocations return. Not re-entrant.
  void runOnAll(const std::function<void(unsigned)>& fn);

 private:
  void workerLoop(unsigned index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;
};

// Chunked dynamic-scheduled parallel loop: calls fn(i) for every i in
// [begin, end). `numThreads` includes the calling thread; numThreads <= 1
// runs inline. Exceptions thrown by fn on any thread are rethrown on the
// caller (first one wins).
void parallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t)>& fn,
                 unsigned numThreads = 1, uint64_t chunkSize = 0);

// Block-scheduled variant handing each thread one contiguous [lo, hi) slice;
// fn(threadId, lo, hi). Useful when per-thread state (e.g. thread-local send
// buffers) should see a contiguous range.
void parallelForBlocked(
    uint64_t begin, uint64_t end,
    const std::function<void(unsigned, uint64_t, uint64_t)>& fn,
    unsigned numThreads = 1);

// Runs fn(threadId, numThreads) once on each of `numThreads` threads
// (including the caller).
void onEach(const std::function<void(unsigned, unsigned)>& fn,
            unsigned numThreads = 1);

// Default intra-host parallelism: hardware_concurrency clamped to >= 1.
unsigned defaultThreadCount();

}  // namespace cusp::support
