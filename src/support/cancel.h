// Cooperative job cancellation for the service layer.
//
// A CancelToken is shared between a controller (the cuspd daemon, a test)
// and the pipeline running the job. The controller requests cancellation or
// arms a wall-clock deadline; the pipeline calls check() at its natural
// consistency points — partitioner phase boundaries and analytics superstep
// boundaries — and unwinds with JobCancelled. The token is deliberately NOT
// a fault: core::classifyFault does not recognize JobCancelled, so the
// resilient drivers rethrow it immediately instead of burning recovery
// attempts re-running a job nobody wants anymore.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace cusp::support {

// Thrown from CancelToken::check() at a cancellation point. `byDeadline`
// distinguishes an operator cancel from an expired per-job deadline (the
// service maps them to different structured job errors).
class JobCancelled : public std::runtime_error {
 public:
  JobCancelled(const std::string& context, bool byDeadline)
      : std::runtime_error((byDeadline ? "job deadline exceeded at "
                                       : "job cancelled at ") +
                           context),
        byDeadline_(byDeadline) {}

  bool byDeadline() const { return byDeadline_; }

 private:
  bool byDeadline_;
};

// Thread-safe; a check is two relaxed loads plus one steady_clock read when
// a deadline is armed, cheap enough for per-superstep use from every host
// thread of a run.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  // Request cancellation: the next check() on any thread throws.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // Arm (or rearm) a deadline `seconds` from now; check() throws once it
  // has passed. <= 0 fires on the next check.
  void armDeadline(double seconds) {
    const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now().time_since_epoch())
                         .count();
    deadlineNanos_.store(
        now + static_cast<int64_t>(seconds * 1e9), std::memory_order_relaxed);
  }

  bool cancelRequested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool deadlineExceeded() const {
    const int64_t d = deadlineNanos_.load(std::memory_order_relaxed);
    if (d == 0) {
      return false;
    }
    const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now().time_since_epoch())
                         .count();
    return now >= d;
  }

  bool expired() const { return cancelRequested() || deadlineExceeded(); }

  // Cooperative cancellation point: throws JobCancelled naming `context`
  // when cancellation was requested or the armed deadline has passed.
  void check(const std::string& context) const {
    if (cancelRequested()) {
      throw JobCancelled(context, /*byDeadline=*/false);
    }
    if (deadlineExceeded()) {
      throw JobCancelled(context, /*byDeadline=*/true);
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadlineNanos_{0};  // steady-clock ns; 0 = unarmed
};

}  // namespace cusp::support
