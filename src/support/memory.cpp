#include "support/memory.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "support/crc32.h"
#include "support/random.h"
#include "support/storage.h"
#include "support/varint.h"

namespace cusp::support {

namespace {

std::string formatPressure(uint64_t requestedBytes, uint64_t totalBytes,
                           uint64_t inUseBytes, const std::string& context) {
  std::ostringstream os;
  os << "memory pressure: reservation of " << requestedBytes
     << " bytes refused (budget " << totalBytes << ", in use " << inUseBytes
     << ", context '" << context << "')";
  return os.str();
}

}  // namespace

MemoryPressure::MemoryPressure(uint64_t requestedBytes, uint64_t totalBytes,
                               uint64_t inUseBytes, std::string context)
    : std::runtime_error(
          formatPressure(requestedBytes, totalBytes, inUseBytes, context)),
      requestedBytes(requestedBytes),
      totalBytes(totalBytes),
      inUseBytes(inUseBytes),
      context(std::move(context)) {}

const char* memoryFaultKindName(MemoryFaultKind kind) {
  switch (kind) {
    case MemoryFaultKind::kAllocFail:
      return "alloc-fail";
    case MemoryFaultKind::kBudgetShrink:
      return "budget-shrink";
  }
  return "unknown";
}

// --- MemoryFaultInjector -----------------------------------------------------

MemoryFaultInjector::MemoryFaultInjector(MemoryFaultPlan plan)
    : plan_(std::move(plan)), matches_(plan_.faults.size(), 0) {}

std::optional<MemoryFault> MemoryFaultInjector::onReserve(
    std::string_view context) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<MemoryFault> due;
  for (size_t i = 0; i < plan_.faults.size(); ++i) {
    const MemoryFault& fault = plan_.faults[i];
    if (!fault.contextSubstring.empty() &&
        context.find(fault.contextSubstring) == std::string_view::npos) {
      continue;
    }
    const uint64_t match = matches_[i]++;
    if (match < fault.occurrence ||
        match >= fault.occurrence + fault.repeat) {
      continue;
    }
    if (!due) {
      due = fault;
      switch (fault.kind) {
        case MemoryFaultKind::kAllocFail:
          ++stats_.allocFailuresInjected;
          break;
        case MemoryFaultKind::kBudgetShrink:
          ++stats_.budgetShrinksInjected;
          break;
      }
    }
  }
  return due;
}

MemoryFaultStats MemoryFaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// --- MemoryBudget ------------------------------------------------------------

MemoryBudget::MemoryBudget(uint64_t totalBytes,
                           std::shared_ptr<MemoryFaultInjector> injector)
    : total_(totalBytes), injector_(std::move(injector)) {}

bool MemoryBudget::tryReserve(uint64_t bytes, std::string_view context) {
  if (injector_) {
    if (auto fault = injector_->onReserve(context)) {
      switch (fault->kind) {
        case MemoryFaultKind::kAllocFail:
          reserveFailures_.fetch_add(1, std::memory_order_relaxed);
          return false;
        case MemoryFaultKind::kBudgetShrink: {
          const uint64_t current = total_.load(std::memory_order_relaxed);
          if (current > 0) {
            const uint64_t target =
                fault->shrinkToBytes > 0 ? fault->shrinkToBytes : current / 2;
            shrinkTo(target);
          }
          break;  // the pending reservation runs against the new cap
        }
      }
    }
  }
  const uint64_t total = total_.load(std::memory_order_relaxed);
  const uint64_t now =
      inUse_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (total > 0 && now > total) {
    inUse_.fetch_sub(bytes, std::memory_order_relaxed);
    reserveFailures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryBudget::reserve(uint64_t bytes, std::string_view context) {
  if (!tryReserve(bytes, context)) {
    throw MemoryPressure(bytes, total_.load(std::memory_order_relaxed),
                         inUse_.load(std::memory_order_relaxed),
                         std::string(context));
  }
}

void MemoryBudget::reserveSpillable(uint64_t bytes,
                                    std::string_view context) {
  if (injector_) {
    if (auto fault = injector_->onReserve(context)) {
      switch (fault->kind) {
        case MemoryFaultKind::kAllocFail:
          reserveFailures_.fetch_add(1, std::memory_order_relaxed);
          throw MemoryPressure(bytes, total_.load(std::memory_order_relaxed),
                               inUse_.load(std::memory_order_relaxed),
                               std::string(context));
        case MemoryFaultKind::kBudgetShrink: {
          const uint64_t current = total_.load(std::memory_order_relaxed);
          if (current > 0) {
            const uint64_t target =
                fault->shrinkToBytes > 0 ? fault->shrinkToBytes : current / 2;
            shrinkTo(target);
          }
          break;
        }
      }
    }
  }
  reserveOverdraft(bytes);
}

void MemoryBudget::reserveOverdraft(uint64_t bytes) {
  const uint64_t now =
      inUse_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryBudget::release(uint64_t bytes) {
  inUse_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryBudget::shrinkTo(uint64_t newTotalBytes) {
  uint64_t current = total_.load(std::memory_order_relaxed);
  for (;;) {
    if (current == 0 || newTotalBytes >= current) {
      return;  // never grows; 0 means unlimited accounting-only mode
    }
    if (total_.compare_exchange_weak(current, newTotalBytes,
                                     std::memory_order_relaxed)) {
      shrinks_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

bool MemoryBudget::underPressure() const {
  const uint64_t total = total_.load(std::memory_order_relaxed);
  if (total == 0) {
    return false;
  }
  const uint64_t used = inUse_.load(std::memory_order_relaxed) +
                        commBacklog_.load(std::memory_order_relaxed);
  return used >= total - total / 8;
}

MemoryBudgetStats MemoryBudget::stats() const {
  MemoryBudgetStats s;
  s.totalBytes = total_.load(std::memory_order_relaxed);
  s.inUseBytes = inUse_.load(std::memory_order_relaxed);
  s.peakBytes = peak_.load(std::memory_order_relaxed);
  s.spillBytes = spill_.load(std::memory_order_relaxed);
  s.commBacklogBytes = commBacklog_.load(std::memory_order_relaxed);
  s.reserveFailures = reserveFailures_.load(std::memory_order_relaxed);
  s.shrinks = shrinks_.load(std::memory_order_relaxed);
  return s;
}

// --- process-wide attachment -------------------------------------------------

namespace {

std::mutex gBudgetMutex;
std::shared_ptr<MemoryBudget> gBudget;
std::atomic<bool> gBudgetAttached{false};

}  // namespace

std::shared_ptr<MemoryBudget> memoryBudget() {
  std::lock_guard<std::mutex> lock(gBudgetMutex);
  return gBudget;
}

bool memoryBudgetAttached() {
  return gBudgetAttached.load(std::memory_order_acquire);
}

void attachMemoryBudget(std::shared_ptr<MemoryBudget> budget) {
  std::lock_guard<std::mutex> lock(gBudgetMutex);
  gBudget = std::move(budget);
  gBudgetAttached.store(gBudget != nullptr, std::memory_order_release);
}

void detachMemoryBudget() { attachMemoryBudget(nullptr); }

ScopedMemoryBudget::ScopedMemoryBudget(uint64_t totalBytes,
                                       MemoryFaultPlan plan) {
  std::shared_ptr<MemoryFaultInjector> injector;
  if (!plan.empty()) {
    injector = std::make_shared<MemoryFaultInjector>(std::move(plan));
  }
  budget_ = std::make_shared<MemoryBudget>(totalBytes, std::move(injector));
  previous_ = memoryBudget();
  attachMemoryBudget(budget_);
}

ScopedMemoryBudget::~ScopedMemoryBudget() { attachMemoryBudget(previous_); }

MemoryFaultPlan randomMemoryFaultPlan(uint64_t seed, uint32_t numHosts,
                                      uint32_t maxFaults) {
  Rng rng(hashU64(seed ^ 0x6d656d6f72790000ULL));  // "memory"
  MemoryFaultPlan plan;
  const uint32_t count =
      maxFaults == 0 ? 0 : static_cast<uint32_t>(rng.nextBounded(maxFaults + 1));
  for (uint32_t i = 0; i < count; ++i) {
    MemoryFault fault;
    fault.kind = rng.nextBounded(3) == 0 ? MemoryFaultKind::kBudgetShrink
                                         : MemoryFaultKind::kAllocFail;
    // Pin each fault to one host's reservation contexts so multi-threaded
    // runs replay deterministically (wildcard contexts would count a
    // thread-interleaving-dependent global order).
    const uint64_t host = numHosts > 0 ? rng.nextBounded(numHosts) : 0;
    fault.contextSubstring = "h" + std::to_string(host);
    fault.occurrence = rng.nextBounded(4);
    fault.repeat = 1 + static_cast<uint32_t>(rng.nextBounded(2));
    fault.shrinkToBytes = 0;  // halve — meaningful at any budget scale
    plan.faults.push_back(std::move(fault));
  }
  return plan;
}

// --- spill codec -------------------------------------------------------------

namespace {

// "MSP1" (memory spill v1), little-endian u64, high bytes zero — matching
// the CGR1/CDG1 magic style.
constexpr uint64_t kSpillMagic = 0x000000003150534dULL;

uint64_t zigzagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t zigzagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

}  // namespace

std::vector<uint8_t> encodeEdgeSegment(const uint64_t* dests, size_t count,
                                       const uint32_t* weights) {
  std::vector<uint8_t> out;
  out.reserve(16 + count * 2);
  appendVarint(out, kSpillMagic);
  appendVarint(out, count);
  appendVarint(out, weights != nullptr ? 1 : 0);
  // Destinations within a window are unsorted, but consecutive values are
  // strongly correlated on real graphs — zigzag-coded deltas stay short.
  uint64_t previous = 0;
  for (size_t i = 0; i < count; ++i) {
    appendVarint(out, zigzagEncode(static_cast<int64_t>(dests[i] - previous)));
    previous = dests[i];
  }
  if (weights != nullptr) {
    for (size_t i = 0; i < count; ++i) {
      appendVarint(out, weights[i]);
    }
  }
  appendCrcFooter(out);
  return out;
}

DecodedEdgeSegment decodeEdgeSegment(const std::vector<uint8_t>& image) {
  std::vector<uint8_t> bytes = image;
  switch (verifyAndStripCrcFooter(bytes)) {
    case CrcFooterStatus::kVerified:
      break;
    case CrcFooterStatus::kAbsent:
      throw std::runtime_error("spill segment: missing CRC footer");
    case CrcFooterStatus::kMismatch:
      throw std::runtime_error("spill segment: CRC mismatch");
  }
  size_t offset = 0;
  if (readVarint(bytes, offset) != kSpillMagic) {
    throw std::runtime_error("spill segment: bad magic");
  }
  const uint64_t count = readVarint(bytes, offset);
  const uint64_t hasWeights = readVarint(bytes, offset);
  if (hasWeights > 1) {
    throw std::runtime_error("spill segment: bad weights flag");
  }
  // Each encoded edge is >= 1 byte; reject counts the image cannot hold
  // before sizing buffers from them.
  if (count > bytes.size()) {
    throw std::runtime_error("spill segment: implausible edge count");
  }
  DecodedEdgeSegment segment;
  segment.dests.reserve(count);
  uint64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    previous += static_cast<uint64_t>(zigzagDecode(readVarint(bytes, offset)));
    segment.dests.push_back(previous);
  }
  if (hasWeights != 0) {
    segment.weights.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t w = readVarint(bytes, offset);
      if (w > std::numeric_limits<uint32_t>::max()) {
        throw std::runtime_error("spill segment: weight exceeds 32 bits");
      }
      segment.weights.push_back(static_cast<uint32_t>(w));
    }
  }
  if (offset != bytes.size()) {
    throw std::runtime_error("spill segment: trailing bytes");
  }
  return segment;
}

uint64_t spillEdgeSegment(const std::string& path, const uint64_t* dests,
                          size_t count, const uint32_t* weights) {
  const std::vector<uint8_t> image = encodeEdgeSegment(dests, count, weights);
  atomicWriteFile(path, image);
  if (memoryBudgetAttached()) {
    if (auto budget = memoryBudget()) {
      budget->noteSpill(image.size());
    }
  }
  return image.size();
}

std::optional<DecodedEdgeSegment> restoreEdgeSegment(const std::string& path) {
  auto bytes = readFileBytes(path);
  if (!bytes) {
    return std::nullopt;
  }
  return decodeEdgeSegment(*bytes);
}

// --- shared CLI --------------------------------------------------------------

MemoryBudgetCli::MemoryBudgetCli(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool matched = false;
    if (arg.rfind("--memory-budget=", 0) == 0) {
      value = arg.substr(std::strlen("--memory-budget="));
      matched = true;
    } else if (arg == "--memory-budget" && i + 1 < argc) {
      value = argv[++i];
      matched = true;
    }
    if (!matched) {
      argv[out++] = argv[i];
      continue;
    }
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value.empty()) {
      throw std::invalid_argument("--memory-budget: expected a size in MB, got '" +
                                  value + "'");
    }
    budgetBytes_ = static_cast<uint64_t>(mb) * 1024 * 1024;
  }
  argc = out;
  if (budgetBytes_ > 0) {
    scope_ = std::make_unique<ScopedMemoryBudget>(budgetBytes_);
  }
}

}  // namespace cusp::support
