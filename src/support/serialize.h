// Byte-buffer serialization for inter-host messages.
//
// The simulated network moves opaque byte buffers between hosts, exactly as
// MPI would, so every piece of partitioning metadata and every edge batch is
// explicitly serialized. This keeps communication volume measurable (paper
// Table V) and keeps the message-buffering optimization (paper Section
// IV-D3, Fig. 7) meaningful: a SendBuffer accumulates serialized records and
// is shipped as one message when full.
//
// Supported types: trivially-copyable values, std::vector<trivially
// copyable>, std::vector<std::string>, std::string, std::pair, and nested
// vectors thereof via recursive overloads.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace cusp::support {

class SendBuffer {
 public:
  SendBuffer() = default;

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const uint8_t* data() const { return data_.data(); }
  void clear() { data_.clear(); }
  void reserve(size_t bytes) { data_.reserve(bytes); }

  void appendBytes(const void* src, size_t len) {
    if (len == 0) {  // both pointers may be null on empty buffers
      return;
    }
    const size_t offset = data_.size();
    data_.resize(offset + len);
    std::memcpy(data_.data() + offset, src, len);
  }

  std::vector<uint8_t> release() { return std::move(data_); }

 private:
  std::vector<uint8_t> data_;
};

class RecvBuffer {
 public:
  RecvBuffer() = default;
  explicit RecvBuffer(std::vector<uint8_t> data) : data_(std::move(data)) {}

  size_t size() const { return data_.size(); }
  size_t remaining() const { return data_.size() - offset_; }
  bool exhausted() const { return offset_ >= data_.size(); }

  void readBytes(void* dst, size_t len) {
    if (remaining() < len) {
      throw std::out_of_range("RecvBuffer: read past end of message");
    }
    std::memcpy(dst, data_.data() + offset_, len);
    offset_ += len;
  }

 private:
  std::vector<uint8_t> data_;
  size_t offset_ = 0;
};

// --- Scalar (trivially copyable) ---

template <typename T>
  requires std::is_trivially_copyable_v<T>
void serialize(SendBuffer& buf, const T& value) {
  buf.appendBytes(&value, sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void deserialize(RecvBuffer& buf, T& value) {
  buf.readBytes(&value, sizeof(T));
}

// --- std::string ---

inline void serialize(SendBuffer& buf, const std::string& value) {
  const uint64_t len = value.size();
  buf.appendBytes(&len, sizeof(len));
  buf.appendBytes(value.data(), value.size());
}

inline void deserialize(RecvBuffer& buf, std::string& value) {
  uint64_t len = 0;
  buf.readBytes(&len, sizeof(len));
  value.resize(len);
  if (len > 0) {
    buf.readBytes(value.data(), len);
  }
}

// --- std::pair ---

template <typename A, typename B>
void serialize(SendBuffer& buf, const std::pair<A, B>& value) {
  serialize(buf, value.first);
  serialize(buf, value.second);
}

template <typename A, typename B>
void deserialize(RecvBuffer& buf, std::pair<A, B>& value) {
  deserialize(buf, value.first);
  deserialize(buf, value.second);
}

// --- std::vector ---

template <typename T>
  requires std::is_trivially_copyable_v<T>
void serialize(SendBuffer& buf, const std::vector<T>& values) {
  const uint64_t count = values.size();
  buf.appendBytes(&count, sizeof(count));
  if (count > 0) {
    buf.appendBytes(values.data(), count * sizeof(T));
  }
}

template <typename T>
  requires(!std::is_trivially_copyable_v<T>)
void serialize(SendBuffer& buf, const std::vector<T>& values) {
  const uint64_t count = values.size();
  buf.appendBytes(&count, sizeof(count));
  for (const auto& value : values) {
    serialize(buf, value);
  }
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void deserialize(RecvBuffer& buf, std::vector<T>& values) {
  uint64_t count = 0;
  buf.readBytes(&count, sizeof(count));
  if (count * sizeof(T) > buf.remaining()) {
    throw std::out_of_range("RecvBuffer: vector length exceeds message size");
  }
  values.resize(count);
  if (count > 0) {
    buf.readBytes(values.data(), count * sizeof(T));
  }
}

template <typename T>
  requires(!std::is_trivially_copyable_v<T>)
void deserialize(RecvBuffer& buf, std::vector<T>& values) {
  uint64_t count = 0;
  buf.readBytes(&count, sizeof(count));
  values.clear();
  values.reserve(count < (1u << 20) ? count : 0);
  for (uint64_t i = 0; i < count; ++i) {
    T value;
    deserialize(buf, value);
    values.push_back(std::move(value));
  }
}

// Variadic convenience: gSerialize/gDeserialize in Galois style.
template <typename... Ts>
void serializeAll(SendBuffer& buf, const Ts&... values) {
  (serialize(buf, values), ...);
}

template <typename... Ts>
void deserializeAll(RecvBuffer& buf, Ts&... values) {
  (deserialize(buf, values), ...);
}

}  // namespace cusp::support
