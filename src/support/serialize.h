// Byte-buffer serialization for inter-host messages.
//
// The simulated network moves opaque byte buffers between hosts, exactly as
// MPI would, so every piece of partitioning metadata and every edge batch is
// explicitly serialized. This keeps communication volume measurable (paper
// Table V) and keeps the message-buffering optimization (paper Section
// IV-D3, Fig. 7) meaningful: a SendBuffer accumulates serialized records and
// is shipped as one message when full.
//
// The serialize overloads are generic over any byte sink exposing
// appendBytes(const void*, size_t): a plain SendBuffer, or the network's
// zero-copy comm::PackedWriter which serializes straight into the
// per-destination aggregation buffer with no intermediate per-message
// vector.
//
// Supported types: trivially-copyable values, std::vector<trivially
// copyable>, std::vector<std::string>, std::string, std::pair, and nested
// vectors thereof via recursive overloads.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace cusp::support {

// Anything serialize() can write into: SendBuffer, comm::PackedWriter, ...
template <typename B>
concept ByteSink = requires(B& b, const void* p, size_t n) {
  b.appendBytes(p, n);
};

class SendBuffer {
 public:
  SendBuffer() = default;

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  const uint8_t* data() const { return data_.data(); }
  void clear() { data_.clear(); }
  void reserve(size_t bytes) { data_.reserve(bytes); }

  void appendBytes(const void* src, size_t len) {
    if (len == 0) {  // both pointers may be null on empty buffers
      return;
    }
    const size_t offset = data_.size();
    data_.resize(offset + len);
    std::memcpy(data_.data() + offset, src, len);
  }

  std::vector<uint8_t> release() { return std::move(data_); }

 private:
  std::vector<uint8_t> data_;
};

// Read-side buffer. Two storage modes share one read API:
//  * owned — the buffer holds the message bytes itself (legacy per-message
//    delivery);
//  * shared view — a (blob, base, length) window into a multi-message packet
//    blob kept alive by shared_ptr, so unpacking a packet hands every
//    message a zero-copy view instead of a per-message copy.
class RecvBuffer {
 public:
  RecvBuffer() = default;
  explicit RecvBuffer(std::vector<uint8_t> data)
      : owned_(std::move(data)), len_(owned_.size()) {}
  RecvBuffer(std::shared_ptr<const std::vector<uint8_t>> blob, size_t base,
             size_t len)
      : blob_(std::move(blob)), base_(base), len_(len) {
    if (blob_ == nullptr || base_ + len_ > blob_->size()) {
      throw std::out_of_range("RecvBuffer: view outside packet blob");
    }
  }

  size_t size() const { return len_; }
  size_t remaining() const { return len_ - offset_; }
  bool exhausted() const { return offset_ >= len_; }

  void readBytes(void* dst, size_t len) {
    if (remaining() < len) {
      throw std::out_of_range("RecvBuffer: read past end of message");
    }
    std::memcpy(dst, data() + offset_, len);
    offset_ += len;
  }

 private:
  // Pointer computed on demand so default copy/move stay correct for both
  // storage modes.
  const uint8_t* data() const {
    return blob_ != nullptr ? blob_->data() + base_ : owned_.data();
  }

  std::vector<uint8_t> owned_;
  std::shared_ptr<const std::vector<uint8_t>> blob_;
  size_t base_ = 0;
  size_t len_ = 0;
  size_t offset_ = 0;
};

// --- Scalar (trivially copyable) ---

template <ByteSink Buf, typename T>
  requires std::is_trivially_copyable_v<T>
void serialize(Buf& buf, const T& value) {
  buf.appendBytes(&value, sizeof(T));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void deserialize(RecvBuffer& buf, T& value) {
  buf.readBytes(&value, sizeof(T));
}

// --- std::string ---

template <ByteSink Buf>
void serialize(Buf& buf, const std::string& value) {
  const uint64_t len = value.size();
  buf.appendBytes(&len, sizeof(len));
  buf.appendBytes(value.data(), value.size());
}

inline void deserialize(RecvBuffer& buf, std::string& value) {
  uint64_t len = 0;
  buf.readBytes(&len, sizeof(len));
  value.resize(len);
  if (len > 0) {
    buf.readBytes(value.data(), len);
  }
}

// --- std::pair ---

template <ByteSink Buf, typename A, typename B>
void serialize(Buf& buf, const std::pair<A, B>& value) {
  serialize(buf, value.first);
  serialize(buf, value.second);
}

template <typename A, typename B>
void deserialize(RecvBuffer& buf, std::pair<A, B>& value) {
  deserialize(buf, value.first);
  deserialize(buf, value.second);
}

// --- std::vector ---

template <ByteSink Buf, typename T>
  requires std::is_trivially_copyable_v<T>
void serialize(Buf& buf, const std::vector<T>& values) {
  const uint64_t count = values.size();
  buf.appendBytes(&count, sizeof(count));
  if (count > 0) {
    buf.appendBytes(values.data(), count * sizeof(T));
  }
}

template <ByteSink Buf, typename T>
  requires(!std::is_trivially_copyable_v<T>)
void serialize(Buf& buf, const std::vector<T>& values) {
  const uint64_t count = values.size();
  buf.appendBytes(&count, sizeof(count));
  for (const auto& value : values) {
    serialize(buf, value);
  }
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void deserialize(RecvBuffer& buf, std::vector<T>& values) {
  uint64_t count = 0;
  buf.readBytes(&count, sizeof(count));
  if (count * sizeof(T) > buf.remaining()) {
    throw std::out_of_range("RecvBuffer: vector length exceeds message size");
  }
  values.resize(count);
  if (count > 0) {
    buf.readBytes(values.data(), count * sizeof(T));
  }
}

template <typename T>
  requires(!std::is_trivially_copyable_v<T>)
void deserialize(RecvBuffer& buf, std::vector<T>& values) {
  uint64_t count = 0;
  buf.readBytes(&count, sizeof(count));
  values.clear();
  values.reserve(count < (1u << 20) ? count : 0);
  for (uint64_t i = 0; i < count; ++i) {
    T value;
    deserialize(buf, value);
    values.push_back(std::move(value));
  }
}

// Variadic convenience: gSerialize/gDeserialize in Galois style.
template <ByteSink Buf, typename... Ts>
void serializeAll(Buf& buf, const Ts&... values) {
  (serialize(buf, values), ...);
}

template <typename... Ts>
void deserializeAll(RecvBuffer& buf, Ts&... values) {
  (deserialize(buf, values), ...);
}

}  // namespace cusp::support
