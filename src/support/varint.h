// LEB128 varint and delta coding for communication payload compression.
//
// Graph construction ships (source, destinations...) batches whose ids are
// dense 64-bit integers; sorting a record's destinations and delta+varint
// coding them cuts the construction-phase volume severalfold (ablation in
// bench_ablation_optimizations). Encoding is unsigned LEB128: 7 bits per
// byte, high bit = continuation.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "support/serialize.h"

namespace cusp::support {

inline void appendVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

// Reads one varint starting at `offset`, advancing it. Throws on overrun
// or on a value wider than 64 bits.
inline uint64_t readVarint(const std::vector<uint8_t>& in, size_t& offset) {
  uint64_t value = 0;
  int shift = 0;
  for (;;) {
    if (offset >= in.size()) {
      throw std::out_of_range("varint: truncated input");
    }
    const uint8_t byte = in[offset++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0)) {
      throw std::overflow_error("varint: value exceeds 64 bits");
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
}

// Delta+varint encodes a SORTED id sequence (deltas are non-negative).
inline std::vector<uint8_t> encodeSortedIds(
    const std::vector<uint64_t>& sortedIds) {
  std::vector<uint8_t> out;
  out.reserve(sortedIds.size() * 2);
  appendVarint(out, sortedIds.size());
  uint64_t previous = 0;
  for (uint64_t id : sortedIds) {
    if (id < previous) {
      throw std::invalid_argument("encodeSortedIds: input not sorted");
    }
    appendVarint(out, id - previous);
    previous = id;
  }
  return out;
}

inline std::vector<uint64_t> decodeSortedIds(const std::vector<uint8_t>& in,
                                             size_t& offset) {
  const uint64_t count = readVarint(in, offset);
  std::vector<uint64_t> ids;
  ids.reserve(count < (1u << 20) ? count : 0);
  uint64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    previous += readVarint(in, offset);
    ids.push_back(previous);
  }
  return ids;
}

// Serialization adapters so compressed blocks travel through SendBuffer /
// RecvBuffer like any other field.
inline void serializeVarintBlock(SendBuffer& buf,
                                 const std::vector<uint8_t>& block) {
  serialize(buf, block);
}

inline std::vector<uint8_t> deserializeVarintBlock(RecvBuffer& buf) {
  std::vector<uint8_t> block;
  deserialize(buf, block);
  return block;
}

}  // namespace cusp::support
