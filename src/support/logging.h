// Minimal thread-safe logging for the CuSP runtime.
//
// All output funnels through a single mutex so interleaved host threads do
// not shred each other's lines. Verbosity is a process-wide setting; the
// default prints warnings and errors only, which keeps test and benchmark
// output readable.
#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace cusp::support {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

namespace detail {
inline std::mutex& logMutex() {
  static std::mutex m;
  return m;
}
inline LogLevel& logLevelRef() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}
}  // namespace detail

inline void setLogLevel(LogLevel level) { detail::logLevelRef() = level; }
inline LogLevel logLevel() { return detail::logLevelRef(); }

inline void logLine(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) > static_cast<int>(detail::logLevelRef())) {
    return;
  }
  const char* prefix = "";
  switch (level) {
    case LogLevel::kError: prefix = "[error] "; break;
    case LogLevel::kWarn:  prefix = "[warn]  "; break;
    case LogLevel::kInfo:  prefix = "[info]  "; break;
    case LogLevel::kDebug: prefix = "[debug] "; break;
  }
  std::lock_guard<std::mutex> lock(detail::logMutex());
  std::fprintf(stderr, "%s%.*s\n", prefix, static_cast<int>(msg.size()),
               msg.data());
}

// Stream-style helpers: LOG_INFO() << "x = " << x;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { logLine(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace cusp::support

#define CUSP_LOG_ERROR() ::cusp::support::LogStream(::cusp::support::LogLevel::kError)
#define CUSP_LOG_WARN()  ::cusp::support::LogStream(::cusp::support::LogLevel::kWarn)
#define CUSP_LOG_INFO()  ::cusp::support::LogStream(::cusp::support::LogLevel::kInfo)
#define CUSP_LOG_DEBUG() ::cusp::support::LogStream(::cusp::support::LogLevel::kDebug)
