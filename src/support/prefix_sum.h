// Sequential and parallel (two-pass) prefix sums.
//
// CuSP uses prefix sums wherever a compacted ordered write is needed without
// fine-grain synchronization (paper Section IV-C2): building CSR row offsets,
// assigning write cursors for received edges, compacting sparse vectors. The
// parallel form is the classic two-pass algorithm: each thread sums a block,
// an exclusive scan over the block sums gives each thread its write base,
// then each thread scans its block again.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/threading.h"

namespace cusp::support {

// Exclusive prefix sum: out[i] = sum of in[0..i-1]; out has size
// in.size() + 1 so out.back() is the grand total.
template <typename T>
std::vector<T> exclusivePrefixSum(std::span<const T> in) {
  std::vector<T> out(in.size() + 1);
  T running{};
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = running;
    running += in[i];
  }
  out[in.size()] = running;
  return out;
}

template <typename T>
std::vector<T> exclusivePrefixSum(const std::vector<T>& in) {
  return exclusivePrefixSum(std::span<const T>(in));
}

// In-place inclusive prefix sum.
template <typename T>
void inclusivePrefixSumInPlace(std::vector<T>& values) {
  T running{};
  for (auto& value : values) {
    running += value;
    value = running;
  }
}

// Parallel exclusive prefix sum (two passes). Falls back to the sequential
// form for small inputs or a single thread.
template <typename T>
std::vector<T> parallelExclusivePrefixSum(std::span<const T> in,
                                          unsigned numThreads) {
  const size_t n = in.size();
  if (numThreads <= 1 || n < 4096) {
    return exclusivePrefixSum(in);
  }
  std::vector<T> out(n + 1);
  std::vector<T> blockSums(numThreads, T{});
  // Pass 1: per-thread block totals.
  parallelForBlocked(0, n,
                     [&](unsigned tid, uint64_t lo, uint64_t hi) {
                       T sum{};
                       for (uint64_t i = lo; i < hi; ++i) {
                         sum += in[i];
                       }
                       blockSums[tid] = sum;
                     },
                     numThreads);
  // Exclusive scan of block sums (cheap, sequential).
  std::vector<T> blockBases(numThreads + 1, T{});
  for (unsigned t = 0; t < numThreads; ++t) {
    blockBases[t + 1] = blockBases[t] + blockSums[t];
  }
  // Pass 2: per-thread scan starting from its base.
  parallelForBlocked(0, n,
                     [&](unsigned tid, uint64_t lo, uint64_t hi) {
                       T running = blockBases[tid];
                       for (uint64_t i = lo; i < hi; ++i) {
                         out[i] = running;
                         running += in[i];
                       }
                     },
                     numThreads);
  out[n] = blockBases[numThreads];
  return out;
}

template <typename T>
std::vector<T> parallelExclusivePrefixSum(const std::vector<T>& in,
                                          unsigned numThreads) {
  return parallelExclusivePrefixSum(std::span<const T>(in), numThreads);
}

}  // namespace cusp::support
