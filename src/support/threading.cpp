#include "support/threading.h"

#include <algorithm>
#include <exception>

namespace cusp::support {

ThreadPool::ThreadPool(unsigned numWorkers) {
  workers_.reserve(numWorkers);
  for (unsigned i = 0; i < numWorkers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::runOnAll(const std::function<void(unsigned)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    remaining_ = static_cast<unsigned>(workers_.size());
    ++generation_;
  }
  wake_.notify_all();
  // The caller participates as participant index numWorkers().
  fn(numWorkers());
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void ThreadPool::workerLoop(unsigned index) {
  uint64_t seenGeneration = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seenGeneration);
      });
      if (shutdown_) {
        return;
      }
      seenGeneration = generation_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) {
        done_.notify_all();
      }
    }
  }
}

namespace {

// Runs body(threadId) on `numThreads` threads including the caller, joining
// before returning and rethrowing the first captured exception.
void forkJoin(unsigned numThreads,
              const std::function<void(unsigned)>& body) {
  if (numThreads <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(numThreads - 1);
  std::exception_ptr firstError;
  std::mutex errorMutex;
  auto guarded = [&](unsigned tid) {
    try {
      body(tid);
    } catch (...) {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) {
        firstError = std::current_exception();
      }
    }
  };
  for (unsigned t = 1; t < numThreads; ++t) {
    threads.emplace_back(guarded, t);
  }
  guarded(0);
  for (auto& thread : threads) {
    thread.join();
  }
  if (firstError) {
    std::rethrow_exception(firstError);
  }
}

}  // namespace

void parallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t)>& fn, unsigned numThreads,
                 uint64_t chunkSize) {
  if (begin >= end) {
    return;
  }
  const uint64_t count = end - begin;
  if (numThreads <= 1 || count == 1) {
    for (uint64_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  if (chunkSize == 0) {
    // Aim for ~8 chunks per thread so stragglers can be absorbed.
    chunkSize = std::max<uint64_t>(1, count / (8ull * numThreads));
  }
  std::atomic<uint64_t> next{begin};
  forkJoin(numThreads, [&](unsigned) {
    for (;;) {
      const uint64_t lo = next.fetch_add(chunkSize, std::memory_order_relaxed);
      if (lo >= end) {
        break;
      }
      const uint64_t hi = std::min(end, lo + chunkSize);
      for (uint64_t i = lo; i < hi; ++i) {
        fn(i);
      }
    }
  });
}

void parallelForBlocked(
    uint64_t begin, uint64_t end,
    const std::function<void(unsigned, uint64_t, uint64_t)>& fn,
    unsigned numThreads) {
  if (begin > end) {
    throw std::invalid_argument("parallelForBlocked: begin > end");
  }
  const uint64_t count = end - begin;
  if (numThreads <= 1) {
    fn(0, begin, end);
    return;
  }
  forkJoin(numThreads, [&](unsigned tid) {
    const uint64_t lo = begin + count * tid / numThreads;
    const uint64_t hi = begin + count * (tid + 1) / numThreads;
    fn(tid, lo, hi);
  });
}

void onEach(const std::function<void(unsigned, unsigned)>& fn,
            unsigned numThreads) {
  if (numThreads == 0) {
    numThreads = 1;
  }
  forkJoin(numThreads, [&](unsigned tid) { fn(tid, numThreads); });
}

unsigned defaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace cusp::support
